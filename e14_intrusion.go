package zeiot

import (
	"context"
	"fmt"

	"zeiot/internal/cnn"
	"zeiot/internal/intrusion"
	"zeiot/internal/modality"
	"zeiot/internal/rng"
)

// RunE14Intrusion implements use case (iii) of §III.C — "detecting
// intrusion of wild animals" and classifying humans versus animals — with
// the CNN-over-UWB approach of ref. [46]: range–time radar maps where gait
// frequency and body extent separate bipeds from quadrupeds, classified by
// the same CNN family MicroDeep distributes.
func RunE14Intrusion(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	seed := h.cfg.Seed
	root := rng.New(seed)
	// The intrusion modality adapter; its campaign path reproduces the
	// historical intrusion.GenerateDataset draws byte-for-byte, and the
	// inlined train/eval below keeps TrainAndEvaluate's stream names
	// ("data"/"net"/"fit") while gaining the harness's parallel training,
	// batch-kernel, and recorder support (FitParallel is bit-identical to
	// the serial Fit the package helper ran).
	mod := modality.NewIntrusion()
	cfg := mod.Cfg
	mapsPerClass := h.cfg.scaled(60)
	samples := mod.Campaign(mapsPerClass, root.Split("data"))
	cut := len(samples) * 3 / 4
	train, test := samples[:cut], samples[cut:]
	h.mark(StageDataset)

	net := intrusion.NewDetector(cfg, root.Split("net"))
	net.SetBatchKernel(h.cfg.BatchKernel)
	net.SetRecorder(h.cfg.Recorder, "intrusion_", test)
	net.FitParallel(train, 8, 16, h.cfg.workers(), cnn.NewSGD(0.02, 0.9), root.Split("fit"))
	h.mark(StageTrain)

	correct := 0
	hits := make([]int, intrusion.NumClasses())
	totals := make([]int, intrusion.NumClasses())
	for _, s := range test {
		got := net.Predict(s.Input)
		totals[s.Label]++
		if got == s.Label {
			correct++
			hits[s.Label]++
		}
	}
	recall := make([]float64, intrusion.NumClasses())
	for c := range recall {
		if totals[c] > 0 {
			recall[c] = float64(hits[c]) / float64(totals[c])
		}
	}
	acc := float64(correct) / float64(len(test))
	res := &Result{
		ID:         "e14",
		Title:      "Animal intrusion detection: CNN on range-time maps",
		PaperClaim: "use case (iii) via ref [46]: UWB + CNN classifies humans and animals",
		Header:     []string{"class", "recall"},
		Summary: map[string]float64{
			"accuracy":      acc,
			"recall_empty":  recall[intrusion.ClassEmpty],
			"recall_human":  recall[intrusion.ClassHuman],
			"recall_animal": recall[intrusion.ClassAnimal],
		},
		Notes: fmt.Sprintf("%d×%d range-time maps at %g Hz, %d maps/class, CNN = conv+pool+2 dense",
			cfg.RangeBins, cfg.Frames, cfg.FrameHz, mapsPerClass),
	}
	for c := 0; c < intrusion.NumClasses(); c++ {
		res.Rows = append(res.Rows, []string{intrusion.Class(c).String(), pct(recall[c])})
	}
	res.Rows = append(res.Rows, []string{"overall accuracy", pct(acc)})
	h.mark(StageEval)
	return h.finish(res), nil
}
