package zeiot

import (
	"fmt"

	"zeiot/internal/intrusion"
	"zeiot/internal/rng"
)

// RunE14Intrusion implements use case (iii) of §III.C — "detecting
// intrusion of wild animals" and classifying humans versus animals — with
// the CNN-over-UWB approach of ref. [46]: range–time radar maps where gait
// frequency and body extent separate bipeds from quadrupeds, classified by
// the same CNN family MicroDeep distributes.
func RunE14Intrusion(seed uint64) (*Result, error) {
	root := rng.New(seed)
	cfg := intrusion.DefaultConfig()
	cfg.Seed = seed
	acc, recall, err := intrusion.TrainAndEvaluate(cfg, 60, 8, root)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:         "e14",
		Title:      "Animal intrusion detection: CNN on range-time maps",
		PaperClaim: "use case (iii) via ref [46]: UWB + CNN classifies humans and animals",
		Header:     []string{"class", "recall"},
		Summary: map[string]float64{
			"accuracy":      acc,
			"recall_empty":  recall[intrusion.ClassEmpty],
			"recall_human":  recall[intrusion.ClassHuman],
			"recall_animal": recall[intrusion.ClassAnimal],
		},
		Notes: fmt.Sprintf("%d×%d range-time maps at %g Hz, 60 maps/class, CNN = conv+pool+2 dense",
			cfg.RangeBins, cfg.Frames, cfg.FrameHz),
	}
	for c := 0; c < intrusion.NumClasses(); c++ {
		res.Rows = append(res.Rows, []string{intrusion.Class(c).String(), pct(recall[c])})
	}
	res.Rows = append(res.Rows, []string{"overall accuracy", pct(acc)})
	return res, nil
}
