package zeiot

import (
	"context"
	"fmt"

	"zeiot/internal/intrusion"
	"zeiot/internal/rng"
)

// RunE14Intrusion implements use case (iii) of §III.C — "detecting
// intrusion of wild animals" and classifying humans versus animals — with
// the CNN-over-UWB approach of ref. [46]: range–time radar maps where gait
// frequency and body extent separate bipeds from quadrupeds, classified by
// the same CNN family MicroDeep distributes.
func RunE14Intrusion(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	seed := h.cfg.Seed
	root := rng.New(seed)
	cfg := intrusion.DefaultConfig()
	cfg.Seed = seed
	mapsPerClass := h.cfg.scaled(60)
	acc, recall, err := intrusion.TrainAndEvaluate(cfg, mapsPerClass, 8, root)
	if err != nil {
		return nil, err
	}
	h.mark(StageTrain)
	res := &Result{
		ID:         "e14",
		Title:      "Animal intrusion detection: CNN on range-time maps",
		PaperClaim: "use case (iii) via ref [46]: UWB + CNN classifies humans and animals",
		Header:     []string{"class", "recall"},
		Summary: map[string]float64{
			"accuracy":      acc,
			"recall_empty":  recall[intrusion.ClassEmpty],
			"recall_human":  recall[intrusion.ClassHuman],
			"recall_animal": recall[intrusion.ClassAnimal],
		},
		Notes: fmt.Sprintf("%d×%d range-time maps at %g Hz, %d maps/class, CNN = conv+pool+2 dense",
			cfg.RangeBins, cfg.Frames, cfg.FrameHz, mapsPerClass),
	}
	for c := 0; c < intrusion.NumClasses(); c++ {
		res.Rows = append(res.Rows, []string{intrusion.Class(c).String(), pct(recall[c])})
	}
	res.Rows = append(res.Rows, []string{"overall accuracy", pct(acc)})
	h.mark(StageEval)
	return h.finish(res), nil
}
