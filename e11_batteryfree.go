package zeiot

import (
	"context"
	"fmt"
	"math"

	"zeiot/internal/microdeep"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
	"zeiot/internal/schedule"
)

// RunE11BatteryFree implements the paper's closing §IV.C sentence — "we
// can reduce the electric power of wireless communication by using ambient
// backscatter; this is our on-going future work" — by putting MicroDeep's
// per-sample traffic on an energy budget. For each radio technology we
// compute every node's communication energy per sample, combine it with a
// harvested power budget to get the energy-sustainable sampling rate at
// the bottleneck node, and intersect it with the TDMA schedule's latency
// bound (internal/schedule) to get the achievable end-to-end rate.
func RunE11BatteryFree(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	seed := h.cfg.Seed
	root := rng.New(seed)
	net := loungeNet(root.Split("net"))
	w := loungeWSN()
	model, err := microdeep.Build(net, w, microdeep.StrategyBalanced)
	if err != nil {
		return nil, err
	}

	// Per-node scalars moved per sample (forward sensing pass).
	w.ResetCounters()
	if _, err := microdeep.ChargeForward(model.Graph, model.Assign, w); err != nil {
		return nil, err
	}
	costs := w.Costs() // tx+rx scalars per node

	// TDMA bound: one 32-bit scalar per slot entry is pessimistic; a slot
	// carries one transfer (vector) so slot time = scalars × bit time. Use
	// the plan directly for the schedule and size slots for the largest
	// transfer.
	plan, err := microdeep.Plan(model.Graph, model.Assign, w)
	if err != nil {
		return nil, err
	}
	sched, err := schedule.Build(plan, w, schedule.Options{Channels: 4, InterferenceHops: 1})
	if err != nil {
		return nil, err
	}
	maxScalars := 0
	for _, tr := range plan {
		if tr.Scalars > maxScalars {
			maxScalars = tr.Scalars
		}
	}
	h.observeWSN("wsn_", w)
	h.observePlanCache("model_", model.Graph)
	h.mark(StageCharge)

	const (
		bitsPerScalar = 32
		harvestW      = 100e-6 // 100 µW ambient harvest per node
		computeJ      = 5e-9   // energy per multiply-accumulate
	)
	// Compute energy per node per sample: units hosted × (rough) MACs per
	// unit. Conv unit ≈ 9 inputs; dense unit ≈ fan-in; use width-weighted
	// 10 MACs/unit as a uniform estimate.
	units := microdeep.UnitsPerNode(model.Graph, model.Assign, w.NumNodes())
	maxUnits := 0
	for _, u := range units {
		if u > maxUnits {
			maxUnits = u
		}
	}
	computePerSampleJ := float64(maxUnits) * 10 * computeJ

	res := &Result{
		ID:         "e11",
		Title:      "Battery-free MicroDeep: sustainable sampling rate by radio",
		PaperClaim: "§IV.C future work: backscatter communication makes MicroDeep's radio energy negligible",
		Header:     []string{"radio", "bottleneck µJ/sample", "energy-bound rate", "schedule-bound rate", "achievable"},
		Summary:    map[string]float64{},
	}
	maxCost := 0
	for _, c := range costs {
		if c > maxCost {
			maxCost = c
		}
	}
	for _, r := range radio.StandardRadios() {
		commJ := float64(maxCost*bitsPerScalar) * r.JoulesPerBit()
		perSampleJ := commJ + computePerSampleJ
		energyRate := harvestW / perSampleJ
		slotSec := float64(maxScalars*bitsPerScalar) / r.BitRate
		schedRate := math.Inf(1)
		if sched.Slots > 0 {
			schedRate = 1 / (float64(sched.Slots) * slotSec)
		}
		achievable := math.Min(energyRate, schedRate)
		res.Rows = append(res.Rows, []string{
			r.Tech,
			fmt.Sprintf("%.2f", perSampleJ*1e6),
			fmt.Sprintf("%.2f Hz", energyRate),
			fmt.Sprintf("%.2f Hz", schedRate),
			fmt.Sprintf("%.2f Hz", achievable),
		})
		res.Summary["rate_"+r.Tech] = achievable
		res.Summary["energy_rate_"+r.Tech] = energyRate
	}
	ratio := res.Summary["rate_backscatter"] / math.Max(res.Summary["rate_wifi"], 1e-12)
	res.Summary["backscatter_speedup"] = ratio
	res.Rows = append(res.Rows, []string{
		"backscatter / wifi", "", "", "", fmt.Sprintf("%.0fx", ratio),
	})
	res.Notes = fmt.Sprintf("100 µW harvest/node, %d-slot TDMA round on 4 channels, bottleneck node moves %d scalars/sample, hosts %d units",
		sched.Slots, maxCost, maxUnits)
	h.mark(StageEval)

	// Lossy-link dimension (only with fault injection enabled): replay the
	// forward plan through the reliable transport and put the actual
	// per-attempt traffic — retransmissions included — on the same harvest
	// budget, so the energy-bound sampling rate reflects what marginal
	// backscatter links really cost.
	if lc := h.cfg.Loss; lc.Enabled {
		w.ResetCounters()
		fm := faultModelFor(seed, lc.DropProb, lc.Burst)
		st, err := microdeep.ChargeForwardReliable(model.Graph, model.Assign, w, fm, retryPolicyFor(lc.MaxRetries))
		if err != nil {
			return nil, err
		}
		st.Record(h.cfg.Recorder, "loss_")
		lossyMax := w.MaxCost()
		overhead := float64(lossyMax) / math.Max(float64(maxCost), 1)
		for _, r := range radio.StandardRadios() {
			commJ := float64(lossyMax*bitsPerScalar) * r.JoulesPerBit()
			perSampleJ := commJ + computePerSampleJ
			energyRate := harvestW / perSampleJ
			res.Rows = append(res.Rows, []string{
				r.Tech + " +loss",
				fmt.Sprintf("%.2f", perSampleJ*1e6),
				fmt.Sprintf("%.2f Hz", energyRate),
				"", "",
			})
			res.Summary["energy_rate_"+r.Tech+"_loss"] = energyRate
		}
		res.Summary["retx_overhead"] = overhead
		res.Summary["loss_lost_transfers"] = float64(st.Lost)
		res.Rows = append(res.Rows, []string{
			"retx overhead", "", "", "", fmt.Sprintf("%.2fx", overhead),
		})
		res.Notes += fmt.Sprintf("; loss rows: %.0f%% per-link drops, ≤%d retries/hop, bottleneck moves %d scalars/sample (%d/%d transfers lost, %d retransmissions)",
			100*lc.DropProb, lc.MaxRetries, lossyMax, st.Lost, st.Transfers, st.Retries)
		h.mark(StageEval)
	}
	return h.finish(res), nil
}
