package zeiot_test

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"zeiot"
)

// marshalStripped renders a Result as canonical JSON with the
// nondeterministic Timings field removed, for byte-for-byte comparison.
func marshalStripped(t *testing.T, r *zeiot.Result) []byte {
	t.Helper()
	r.Timings = nil
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestConcurrentMixedConfigs is the headline guarantee of the RunConfig
// engine: two e1 runs with different configs — serial training vs 4-worker
// training with fault injection enabled — executing simultaneously from
// separate goroutines each produce byte-for-byte the result the same config
// produces alone. Before per-run configs this was impossible to even
// express: worker count and loss settings were process globals, so
// concurrent mixed-config runs raced. Run under -race (ci.sh does) this
// also proves the engine shares no mutable state between runs.
func TestConcurrentMixedConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the fall-detection CNNs four times")
	}
	lossy := zeiot.DefaultLossConfig()
	lossy.Enabled = true
	cfgs := []*zeiot.RunConfig{
		{Seed: 1, TrainWorkers: 1, SampleScale: 0.5},
		{Seed: 1, TrainWorkers: 4, SampleScale: 0.5, Loss: lossy},
	}

	e, err := zeiot.FindExperiment("e1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Serial baselines, one config at a time.
	want := make([][]byte, len(cfgs))
	for i, cfg := range cfgs {
		r, err := e.Run(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = marshalStripped(t, r)
	}

	// The same configs concurrently, sharing nothing but the registry.
	got := make([][]byte, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg *zeiot.RunConfig) {
			defer wg.Done()
			r, err := e.Run(ctx, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			r.Timings = nil
			got[i], errs[i] = json.Marshal(r)
		}(i, cfg)
	}
	wg.Wait()

	for i := range cfgs {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if string(got[i]) != string(want[i]) {
			t.Errorf("config %d: concurrent result diverged from its serial baseline\nserial:     %s\nconcurrent: %s",
				i, want[i], got[i])
		}
	}

	// For e1 the two configs must converge on the same bytes: parallel
	// training is bit-identical to serial at any worker count, and e1 has
	// no fault-injection path, so enabling Loss must not perturb any of its
	// rng streams. Divergence here means a worker-dependent reduction or a
	// stray Loss consumer leaked into the experiment.
	if string(want[0]) != string(want[1]) {
		t.Error("worker count or unused loss config moved e1's results:\n" +
			"serial: " + string(want[0]) + "\n4-worker+loss: " + string(want[1]))
	}
}
