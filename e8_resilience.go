package zeiot

import (
	"fmt"
	"sort"

	"zeiot/internal/cnn"
	"zeiot/internal/dataset"
	"zeiot/internal/geom"
	"zeiot/internal/microdeep"
	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

// RunE8Resilience implements the §V research challenge the paper states
// but does not evaluate: "a part of tiny IoT devices may be broken — the
// development of resilient distributed machine learning mechanisms in the
// environments containing such broken IoT devices". We train the lounge
// CNN, then kill growing fractions of nodes and measure accuracy (i) with
// the assignment left as-is (dead sites output zeros) and (ii) after
// reassigning the surviving computation, so only the dead sensors' inputs
// are lost.
func RunE8Resilience(seed uint64) (*Result, error) {
	root := rng.New(seed)
	cfg := dataset.DefaultLoungeConfig()
	cfg.Seed = seed
	cfg.Samples = 700
	cfg.NoiseC = 0.8
	samples, err := dataset.GenerateLounge(cfg)
	if err != nil {
		return nil, err
	}
	cut := len(samples) * 3 / 4
	train, test := samples[:cut], samples[cut:]

	sNet := root.Split("net")
	net := loungeNet(sNet)
	w := loungeWSN()
	model, err := microdeep.Build(net, w, microdeep.StrategyBalanced)
	if err != nil {
		return nil, err
	}
	model.Fit(train, 6, 16, cnn.NewSGD(0.02, 0.9), sNet.Split("fit"))

	evaluate := func(assign *microdeep.Assignment, dead map[int]bool, deadSites map[int]bool) (float64, error) {
		ex := microdeep.NewExecutor(model.Graph)
		ex.Assign = assign
		ex.DeadNodes = dead
		ex.DeadSites = deadSites
		correct := 0
		for _, s := range test {
			out, err := ex.Forward(s.Input)
			if err != nil {
				return 0, err
			}
			if out.Argmax() == s.Label {
				correct++
			}
		}
		return float64(correct) / float64(len(test)), nil
	}

	res := &Result{
		ID:         "e8",
		Title:      "Accuracy under broken devices, with and without reassignment",
		PaperClaim: "open challenge in §V (resilient distributed ML with broken devices)",
		Header:     []string{"failed nodes", "accuracy (as-is)", "accuracy (reassigned)"},
		Summary:    map[string]float64{},
	}
	// Failures are spatially correlated — a region losing its energy
	// harvest takes every device in it down together — so the k failed
	// nodes are those nearest a corner of the field. Results average over
	// all four corners: which region the trained model happens to lean on
	// varies with the training draw.
	minP, maxP := fieldCorners(w)
	corners := []geom.Point{
		minP,
		{X: maxP.X, Y: minP.Y},
		{X: minP.X, Y: maxP.Y},
		maxP,
	}
	orderFrom := func(corner geom.Point) []int {
		order := make([]int, w.NumNodes())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			di := geom.Dist(w.Node(order[i]).Pos, corner)
			dj := geom.Dist(w.Node(order[j]).Pos, corner)
			if di != dj {
				return di < dj
			}
			return order[i] < order[j]
		})
		return order
	}
	fractions := []float64{0, 0.05, 0.1, 0.2, 0.3}
	for _, frac := range fractions {
		k := int(frac * float64(w.NumNodes()))
		asIsSum, reassignedSum := 0.0, 0.0
		for _, corner := range corners {
			dead := make(map[int]bool, k)
			for _, n := range orderFrom(corner)[:k] {
				dead[n] = true
			}
			asIs, err := evaluate(&model.Assign, dead, nil)
			if err != nil {
				return nil, err
			}
			// Reassignment: recompute the balanced assignment on the
			// surviving network; dead sensors' inputs stay lost but every
			// unit runs.
			reassigned := asIs
			if k > 0 {
				wFail := loungeWSN()
				for n := range dead {
					wFail.Fail(n)
				}
				if !wFail.Connected() {
					return nil, fmt.Errorf("zeiot: failure pattern partitions the WSN")
				}
				newAssign, err := microdeep.AssignBalanced(model.Graph, wFail, microdeep.DefaultBalanceOptions())
				if err != nil {
					return nil, err
				}
				// Under the new assignment every compute site moved to a
				// live node, but the dead sensors' readings are still
				// gone: silence the input sites whose original sensor
				// (per the pre-failure assignment) died.
				deadSites := make(map[int]bool)
				for _, sid := range model.Graph.Stages[0].Sites {
					if dead[model.Assign.NodeOf[sid]] {
						deadSites[sid] = true
					}
				}
				reassigned, err = evaluate(&newAssign, nil, deadSites)
				if err != nil {
					return nil, err
				}
			}
			asIsSum += asIs
			reassignedSum += reassigned
		}
		asIs := asIsSum / float64(len(corners))
		reassigned := reassignedSum / float64(len(corners))
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d (%.0f%%)", k, 100*frac), pct(asIs), pct(reassigned),
		})
		res.Summary[fmt.Sprintf("acc_asis_%.0f", 100*frac)] = asIs
		res.Summary[fmt.Sprintf("acc_reassigned_%.0f", 100*frac)] = reassigned
	}
	res.Notes = fmt.Sprintf("%d-node WSN, %d test samples, averaged over 4 failure corners; reassignment recomputes the balanced placement on survivors", w.NumNodes(), len(test))
	return res, nil
}

// fieldCorners returns the bounding box of the node field.
func fieldCorners(w *wsn.Network) (minP, maxP geom.Point) {
	minP = w.Node(0).Pos
	maxP = w.Node(0).Pos
	for _, nd := range w.Nodes() {
		if nd.Pos.X < minP.X {
			minP.X = nd.Pos.X
		}
		if nd.Pos.Y < minP.Y {
			minP.Y = nd.Pos.Y
		}
		if nd.Pos.X > maxP.X {
			maxP.X = nd.Pos.X
		}
		if nd.Pos.Y > maxP.Y {
			maxP.Y = nd.Pos.Y
		}
	}
	return minP, maxP
}
