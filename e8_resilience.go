package zeiot

import (
	"context"
	"fmt"
	"sort"

	"zeiot/internal/cnn"
	"zeiot/internal/dataset"
	"zeiot/internal/geom"
	"zeiot/internal/microdeep"
	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

// RunE8Resilience implements the §V research challenge the paper states
// but does not evaluate: "a part of tiny IoT devices may be broken — the
// development of resilient distributed machine learning mechanisms in the
// environments containing such broken IoT devices". We train the lounge
// CNN, then kill growing fractions of nodes and measure accuracy (i) with
// the assignment left as-is (dead sites output zeros) and (ii) after
// reassigning the surviving computation, so only the dead sensors' inputs
// are lost.
//
// With fault injection enabled (zeiotbench -loss) the experiment gains the
// failure mode real backscatter links actually have — marginal, lossy
// links rather than clean node death: a sweep over per-link drop rates
// measuring accuracy and peak per-sample comm cost with the reliable
// transport's retries on and off. Undelivered transfers degrade gracefully
// to zero inputs at the consuming site.
func RunE8Resilience(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	seed := h.cfg.Seed
	root := rng.New(seed)
	cfg := dataset.DefaultLoungeConfig()
	cfg.Seed = seed
	cfg.Samples = h.cfg.scaled(700)
	cfg.NoiseC = 0.8
	samples, err := dataset.GenerateLounge(cfg)
	if err != nil {
		return nil, err
	}
	cut := len(samples) * 3 / 4
	train, test := samples[:cut], samples[cut:]
	h.mark(StageDataset)

	sNet := root.Split("net")
	net := loungeNet(sNet)
	w := loungeWSN()
	model, err := microdeep.Build(net, w, microdeep.StrategyBalanced)
	if err != nil {
		return nil, err
	}
	model.SetRecorder(h.cfg.Recorder, "model_", test)
	model.FitParallel(train, 6, 16, h.cfg.workers(), cnn.NewSGD(0.02, 0.9), sNet.Split("fit"))
	h.mark(StageTrain)

	evaluate := func(assign *microdeep.Assignment, dead map[int]bool, deadSites map[int]bool) (float64, error) {
		ex := microdeep.NewExecutor(model.Graph)
		ex.Assign = assign
		ex.DeadNodes = dead
		ex.DeadSites = deadSites
		correct := 0
		for _, s := range test {
			out, err := ex.Forward(s.Input)
			if err != nil {
				return 0, err
			}
			if out.Argmax() == s.Label {
				correct++
			}
		}
		return float64(correct) / float64(len(test)), nil
	}

	res := &Result{
		ID:         "e8",
		Title:      "Accuracy under broken devices, with and without reassignment",
		PaperClaim: "open challenge in §V (resilient distributed ML with broken devices)",
		Header:     []string{"failed nodes", "accuracy (as-is)", "accuracy (reassigned)"},
		Summary:    map[string]float64{},
	}
	// Failures are spatially correlated — a region losing its energy
	// harvest takes every device in it down together — so the k failed
	// nodes are those nearest a corner of the field. Results average over
	// all four corners: which region the trained model happens to lean on
	// varies with the training draw.
	minP, maxP := fieldCorners(w)
	corners := []geom.Point{
		minP,
		{X: maxP.X, Y: minP.Y},
		{X: minP.X, Y: maxP.Y},
		maxP,
	}
	orderFrom := func(corner geom.Point) []int {
		order := make([]int, w.NumNodes())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			di := geom.Dist(w.Node(order[i]).Pos, corner)
			dj := geom.Dist(w.Node(order[j]).Pos, corner)
			if di != dj {
				return di < dj
			}
			return order[i] < order[j]
		})
		return order
	}
	fractions := []float64{0, 0.05, 0.1, 0.2, 0.3}
	for _, frac := range fractions {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		k := int(frac * float64(w.NumNodes()))
		asIsSum, reassignedSum := 0.0, 0.0
		for _, corner := range corners {
			dead := make(map[int]bool, k)
			for _, n := range orderFrom(corner)[:k] {
				dead[n] = true
			}
			asIs, err := evaluate(&model.Assign, dead, nil)
			if err != nil {
				return nil, err
			}
			// Reassignment: recompute the balanced assignment on the
			// surviving network; dead sensors' inputs stay lost but every
			// unit runs.
			reassigned := asIs
			if k > 0 {
				wFail := loungeWSN()
				for n := range dead {
					wFail.Fail(n)
				}
				if !wFail.Connected() {
					return nil, fmt.Errorf("zeiot: failure pattern partitions the WSN")
				}
				newAssign, err := microdeep.AssignBalanced(model.Graph, wFail, microdeep.DefaultBalanceOptions())
				if err != nil {
					return nil, err
				}
				// Under the new assignment every compute site moved to a
				// live node, but the dead sensors' readings are still
				// gone: silence the input sites whose original sensor
				// (per the pre-failure assignment) died.
				deadSites := make(map[int]bool)
				for _, sid := range model.Graph.Stages[0].Sites {
					if dead[model.Assign.NodeOf[sid]] {
						deadSites[sid] = true
					}
				}
				reassigned, err = evaluate(&newAssign, nil, deadSites)
				if err != nil {
					return nil, err
				}
			}
			asIsSum += asIs
			reassignedSum += reassigned
		}
		asIs := asIsSum / float64(len(corners))
		reassigned := reassignedSum / float64(len(corners))
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d (%.0f%%)", k, 100*frac), pct(asIs), pct(reassigned),
		})
		res.Summary[fmt.Sprintf("acc_asis_%.0f", 100*frac)] = asIs
		res.Summary[fmt.Sprintf("acc_reassigned_%.0f", 100*frac)] = reassigned
	}
	res.Notes = fmt.Sprintf("%d-node WSN, %d test samples, averaged over 4 failure corners; reassignment recomputes the balanced placement on survivors", w.NumNodes(), len(test))
	h.mark(StageEval)

	// Loss-rate sweep (only with fault injection enabled, so the default
	// run stays byte-identical to the loss-free implementation): the same
	// trained model evaluated through the lossy reliable transport at
	// growing per-link drop rates, with retries on and off. Accuracy shows
	// the graceful degradation of zeroed undelivered inputs; the peak
	// per-node comm cost per sample counts every transmission attempt, so
	// retries buy accuracy with visible energy.
	if lc := h.cfg.Loss; lc.Enabled {
		evaluateLossy := func(rate float64, retries int, recPrefix string) (float64, float64, error) {
			wLoss := loungeWSN()
			ex := microdeep.NewExecutor(model.Graph)
			ex.Assign = &model.Assign
			ex.Net = wLoss
			ex.Faults = faultModelFor(seed, rate, lc.Burst)
			ex.Retry = retryPolicyFor(retries)
			correct := 0
			for _, s := range test {
				out, err := ex.Forward(s.Input)
				if err != nil {
					return 0, 0, err
				}
				if out.Argmax() == s.Label {
					correct++
				}
			}
			ex.Stats.Record(h.cfg.Recorder, recPrefix)
			acc := float64(correct) / float64(len(test))
			cost := float64(wLoss.MaxCost()) / float64(len(test))
			return acc, cost, nil
		}
		for _, rate := range []float64{0.05, 0.1, 0.2, 0.3} {
			pctKey := fmt.Sprintf("%.0f", 100*rate)
			accRetry, costRetry, err := evaluateLossy(rate, lc.MaxRetries, "loss_"+pctKey+"_retry_")
			if err != nil {
				return nil, err
			}
			accBare, costBare, err := evaluateLossy(rate, 0, "loss_"+pctKey+"_noretry_")
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("loss %s%%", pctKey),
				pct(accRetry), pct(accBare),
				fmt.Sprintf("retry cost %.1f", costRetry),
				fmt.Sprintf("no-retry cost %.1f", costBare),
			})
			res.Summary["acc_loss_"+pctKey+"_retry"] = accRetry
			res.Summary["acc_loss_"+pctKey+"_noretry"] = accBare
			res.Summary["cost_loss_"+pctKey+"_retry"] = costRetry
			res.Summary["cost_loss_"+pctKey+"_noretry"] = costBare
		}
		mode := "independent drops"
		if lc.Burst {
			mode = "Gilbert-Elliott bursts"
		}
		res.Notes += fmt.Sprintf("; loss sweep: %s, reliable transport with ≤%d retries/hop vs none, loss rows read (acc retry, acc no-retry, peak cost/sample)", mode, lc.MaxRetries)
		h.mark(StageEval)
	}
	return h.finish(res), nil
}

// fieldCorners returns the bounding box of the node field.
func fieldCorners(w *wsn.Network) (minP, maxP geom.Point) {
	minP = w.Node(0).Pos
	maxP = w.Node(0).Pos
	for _, nd := range w.Nodes() {
		if nd.Pos.X < minP.X {
			minP.X = nd.Pos.X
		}
		if nd.Pos.Y < minP.Y {
			minP.Y = nd.Pos.Y
		}
		if nd.Pos.X > maxP.X {
			maxP.X = nd.Pos.X
		}
		if nd.Pos.Y > maxP.Y {
			maxP.Y = nd.Pos.Y
		}
	}
	return minP, maxP
}
