package zeiot

import (
	"context"
	"fmt"

	"zeiot/internal/cnn"
	"zeiot/internal/microdeep"
	"zeiot/internal/modality"
	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

// RunE1FallCommCost regenerates Fig. 10: the fall-detection CNN on the
// IR-sensor array, comparing (a) the accuracy-optimal parameter set with
// the natural coordinate assignment against (b) the feasible parameter set
// with the heuristic balanced assignment and local weight updates.
// The paper reports 91.875% vs 89.7275% accuracy and max communication
// cost 360 vs 210 (−40%).
func RunE1FallCommCost(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	seed := h.cfg.Seed
	root := rng.New(seed)
	// The gait modality at experiment grade (0.55 sensor noise, as on the
	// real film array). The campaign stream is a fresh root-seeded stream —
	// the historical GenerateGaitStreams(cfg.Seed) derivation — while the
	// window balancing draws from the run's named split.
	mod := modality.NewGait()
	mod.Cfg.Streams = h.cfg.scaled(mod.Cfg.Streams)
	cfg := mod.Cfg
	samples, err := mod.Campaign(1.0, rng.New(seed), root.Split("balance"))
	if err != nil {
		return nil, err
	}
	cut := len(samples) * 3 / 4
	train, test := samples[:cut], samples[cut:]
	h.mark(StageDataset)

	w := wsn.NewGrid(cfg.Rows, cfg.Cols, 1)
	repeats := h.cfg.repeatsOr(1)

	// (a) optimal parameter set: bigger CNN, coordinate assignment,
	// synchronized (exact) training.
	var mOpt *microdeep.Model
	accOpt, err := h.trainAveraged(root, "optimal", repeats, func(sOpt *rng.Stream) (float64, error) {
		optimal := cnn.NewNetwork([]int{cfg.WindowFrames, cfg.Rows, cfg.Cols},
			cnn.NewConv2D(cfg.WindowFrames, 8, 3, 3, 1, 1, sOpt.Split("c")),
			cnn.NewReLU(),
			cnn.NewMaxPool2D(2, 2),
			cnn.NewFlatten(),
			cnn.NewDense(8*4*4, 32, sOpt.Split("d1")),
			cnn.NewReLU(),
			cnn.NewDense(32, 2, sOpt.Split("d2")),
		)
		m, err := microdeep.Build(optimal, w, microdeep.StrategyCoordinate)
		if err != nil {
			return 0, err
		}
		m.SetBatchKernel(h.cfg.BatchKernel)
		m.SetRecorder(h.cfg.Recorder, "optimal_", test)
		m.FitParallel(train, 8, 16, h.cfg.workers(), cnn.NewSGD(0.02, 0.9), sOpt.Split("fit"))
		h.mark(StageTrain)
		mOpt = m
		acc := m.Evaluate(test)
		h.mark(StageEval)
		return acc, nil
	})
	if err != nil {
		return nil, err
	}
	// The Fig. 10 cost counts the per-sample forward+backward traffic;
	// weight-synchronization traffic is per training step and reported
	// separately below.
	costOpt, err := mOpt.CostPerSample(false)
	if err != nil {
		return nil, err
	}
	syncOpt, err := mOpt.CostPerSample(true)
	if err != nil {
		return nil, err
	}
	h.mark(StageCharge)

	// (b) feasible parameter set: WSN-sized CNN, balanced heuristic,
	// local weight updates (no kernel synchronization traffic).
	var mFea *microdeep.Model
	accFea, err := h.trainAveraged(root, "feasible", repeats, func(sFea *rng.Stream) (float64, error) {
		feasible := cnn.NewNetwork([]int{cfg.WindowFrames, cfg.Rows, cfg.Cols},
			cnn.NewConv2D(cfg.WindowFrames, 6, 3, 3, 1, 1, sFea.Split("c")),
			cnn.NewReLU(),
			cnn.NewMaxPool2D(2, 2),
			cnn.NewFlatten(),
			cnn.NewDense(6*4*4, 24, sFea.Split("d1")),
			cnn.NewReLU(),
			cnn.NewDense(24, 2, sFea.Split("d2")),
		)
		m, err := microdeep.Build(feasible, w, microdeep.StrategyBalanced)
		if err != nil {
			return 0, err
		}
		m.EnableLocalUpdate()
		m.SetBatchKernel(h.cfg.BatchKernel) // no-op with local updates (replica convs)
		m.SetRecorder(h.cfg.Recorder, "feasible_", test)
		m.FitParallel(train, 12, 16, h.cfg.workers(), cnn.NewSGD(0.02, 0.9), sFea.Split("fit"))
		h.mark(StageTrain)
		mFea = m
		acc := m.Evaluate(test)
		h.mark(StageEval)
		return acc, nil
	})
	if err != nil {
		return nil, err
	}
	costFea, err := mFea.CostPerSample(false)
	if err != nil {
		return nil, err
	}
	h.mark(StageCharge)

	h.observeWSN("wsn_", w)
	h.observePlanCache("optimal_", mOpt.Graph)
	h.observePlanCache("feasible_", mFea.Graph)

	reduction := 1 - float64(costFea.Max)/float64(costOpt.Max)
	res := &Result{
		ID:         "e1",
		Title:      "Fall detection: per-node communication cost and accuracy",
		PaperClaim: "optimal 91.875%/max 360 vs heuristic 89.73%/max 210 (-40%)",
		Header:     []string{"setting", "accuracy", "max cost", "mean cost", "total cost", "max units/node"},
		Summary: map[string]float64{
			"acc_optimal":    accOpt,
			"acc_feasible":   accFea,
			"max_cost_opt":   float64(costOpt.Max),
			"max_cost_fea":   float64(costFea.Max),
			"cost_reduction": reduction,
			"windows":        float64(len(samples)),
		},
		Notes: fmt.Sprintf("%d streams, %d balanced windows, %d-node array; replica divergence %.4f",
			cfg.Streams, len(samples), w.NumNodes(), mFea.ReplicaDivergence()),
	}
	maxUnits := func(m *microdeep.Model) int {
		units := microdeep.UnitsPerNode(m.Graph, m.Assign, w.NumNodes())
		best := 0
		for _, u := range units {
			if u > best {
				best = u
			}
		}
		return best
	}
	res.Rows = append(res.Rows,
		[]string{"(a) optimal + coordinate", pct(accOpt), fi(costOpt.Max), f1(costOpt.Mean), fi(costOpt.Total), fi(maxUnits(mOpt))},
		[]string{"(b) feasible + heuristic", pct(accFea), fi(costFea.Max), f1(costFea.Mean), fi(costFea.Total), fi(maxUnits(mFea))},
		[]string{"reduction", pct(accOpt - accFea), pct(reduction), "", "", ""},
		[]string{"(a) + weight sync / step", "", fi(syncOpt.Max), "", fi(syncOpt.Total), ""},
		[]string{"(b) local updates / step", "", fi(costFea.Max), "", fi(costFea.Total), ""},
	)
	res.Summary["sync_max_cost_opt"] = float64(syncOpt.Max)

	// Optional int8 accuracy-vs-cost row: how the optimal model fares under
	// fixed-point inference (the arithmetic a zero-energy node can afford).
	// Runs strictly after the float results above, so default summaries keep
	// their bytes.
	if h.cfg.Quantize {
		qacc, agree, err := h.quantEval("optimal_", mOpt.Net, train, test)
		if err != nil {
			return nil, err
		}
		h.mark(StageEval)
		res.Rows = append(res.Rows,
			[]string{"(a) optimal, int8 inference", pct(qacc), fi(costOpt.Max), "", "", ""})
		res.Summary["acc_optimal_quant"] = qacc
		res.Summary["quant_agreement"] = agree
	}
	return h.finish(res), nil
}
