package zeiot

import (
	"context"
	"fmt"
	"math"

	"zeiot/internal/csi"
	"zeiot/internal/ml"
	"zeiot/internal/rng"
)

// RunE5CSILocalization regenerates the §IV.B CSI-learning result of ref.
// [8]: device-free localization of a person over seven positions from the
// 624 compressed-beamforming-angle features, evaluated across six
// behaviour × antenna-orientation patterns. The paper reports ~96%
// accuracy for the walking/divergent pattern.
func RunE5CSILocalization(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	seed := h.cfg.Seed
	root := rng.New(seed)
	positions := csi.SevenPositions()
	samplesPerPosition := h.cfg.scaled(32)

	res := &Result{
		ID:         "e5",
		Title:      "CSI localization accuracy across six patterns",
		PaperClaim: "~96% for 7 positions, best when walking with divergent antennas",
		Header:     []string{"pattern", "accuracy", "features"},
		Summary:    map[string]float64{},
	}
	best, bestName := -1.0, ""
	worst := 2.0
	for pi, pattern := range csi.PaperPatterns() {
		room := csi.DefaultRoom(pattern)
		stream := root.Split(fmt.Sprintf("pattern-%d", pi))
		var data ml.Dataset
		for posIdx, pos := range positions {
			for s := 0; s < samplesPerPosition; s++ {
				feat, err := room.Feedback.Features(room.Snapshot(pos, stream))
				if err != nil {
					return nil, err
				}
				data.X = append(data.X, feat)
				data.Y = append(data.Y, posIdx)
			}
		}
		h.mark(StageDataset)
		cm, err := ml.CrossValidate(ml.KNN{K: 3}, data, 4, stream.Split("cv"))
		if err != nil {
			return nil, err
		}
		h.mark(StageEval)
		acc := cm.Accuracy()
		res.Rows = append(res.Rows, []string{pattern.Name, pct(acc), fi(room.Feedback.NumFeatures())})
		key := "acc_" + sanitizeKey(pattern.Name)
		res.Summary[key] = acc
		if acc > best {
			best, bestName = acc, pattern.Name
		}
		worst = math.Min(worst, acc)
	}
	res.Summary["acc_best"] = best
	res.Summary["acc_worst"] = worst
	res.Rows = append(res.Rows, []string{"best: " + bestName, pct(best), "624"})

	// Ablation: classifier choice on the best pattern. Ref. [8]'s learning
	// system is classifier-agnostic; the angles themselves carry the
	// signal.
	bestPattern := csi.PaperPatterns()[0]
	room := csi.DefaultRoom(bestPattern)
	ablStream := root.Split("classifier-ablation")
	var abl ml.Dataset
	for posIdx, pos := range positions {
		for s := 0; s < samplesPerPosition; s++ {
			feat, err := room.Feedback.Features(room.Snapshot(pos, ablStream))
			if err != nil {
				return nil, err
			}
			abl.X = append(abl.X, feat)
			abl.Y = append(abl.Y, posIdx)
		}
	}
	h.mark(StageDataset)
	for _, clf := range []struct {
		name    string
		trainer ml.Trainer
	}{
		{"knn(k=3)", ml.KNN{K: 3}},
		{"gaussian-nb", ml.GaussianNB{}},
		{"softmax", ml.Softmax{LR: 0.3, Epochs: 150, Seed: seed}},
	} {
		cm, err := ml.CrossValidate(clf.trainer, abl, 4, ablStream.Split("cv-"+clf.name))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{"ablation " + clf.name, pct(cm.Accuracy()), "624"})
		res.Summary["abl_"+sanitizeKey(clf.name)] = cm.Accuracy()
	}
	h.mark(StageEval)
	res.Notes = fmt.Sprintf("%d samples per position, 4-fold CV, k-NN over standardized angles; ablation on walk/divergent", samplesPerPosition)
	return h.finish(res), nil
}

func sanitizeKey(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '/' || r == ' ' || r == '+' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}
