package zeiot_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"zeiot"
)

// TestGoldenDefaultConfig is the in-process half of the ci.sh golden smoke:
// running an experiment under DefaultRunConfig() (what a nil config means)
// must reproduce the checked-in golden JSON byte for byte, after stripping
// Timings — the one nondeterministic Result field, which cmd/zeiotbench
// also omits unless -timings is given. Any rng-stream or formatting drift
// anywhere in the stack fails this even if no unit test covers it.
func TestGoldenDefaultConfig(t *testing.T) {
	cases := []struct {
		id     string
		golden string
	}{
		{"e1", "e1_seed1.golden.json"},
		{"e7", "e7_seed1.golden.json"},
		{"e17", "e17_seed1.golden.json"},
		{"e18", "e18_seed1.golden.json"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			if tc.id != "e7" && testing.Short() {
				t.Skip("trains CNNs")
			}
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			e, err := zeiot.FindExperiment(tc.id)
			if err != nil {
				t.Fatal(err)
			}
			r, err := e.Run(context.Background(), nil)
			if err != nil {
				t.Fatal(err)
			}
			r.Timings = nil
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			enc.SetIndent("", "  ")
			if err := enc.Encode([]*zeiot.Result{r}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s under DefaultRunConfig diverged from %s;\nregenerate with: go run ./cmd/zeiotbench -e %s -seed 1 -json > testdata/%s",
					tc.id, tc.golden, tc.id, tc.golden)
			}
		})
	}
}
