package zeiot_test

import (
	"context"
	"strings"
	"testing"

	"zeiot"
)

// runE18 runs the cross-modal matrix on a modality subset at reduced sample
// scale (the full 9-modality matrix trains 9 CNNs; tests pick their rows).
func runE18(t *testing.T, modalities []string, workers int) *zeiot.Result {
	t.Helper()
	rc := &zeiot.RunConfig{
		Seed:         1,
		SampleScale:  0.5,
		TrainWorkers: workers,
		Modalities:   modalities,
	}
	res, err := zeiot.RunE18CrossModal(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestE18Deterministic runs a three-row slice of the matrix (one image-like
// modality, one feature vector, one fused pair) serially and with four
// training workers and requires the Summary maps to match exactly — the
// matrix's accuracy/latency/energy numbers must not move with the worker
// count.
func TestE18Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three CNNs twice")
	}
	mods := []string{"gait", "har", "gait+vitals"}
	a := runE18(t, mods, 1)
	b := runE18(t, mods, 4)
	if len(a.Summary) != len(b.Summary) {
		t.Fatalf("summary sizes differ: %d vs %d", len(a.Summary), len(b.Summary))
	}
	for k, va := range a.Summary {
		vb, ok := b.Summary[k]
		if !ok {
			t.Fatalf("summary key %q missing from the 4-worker run", k)
		}
		if va != vb {
			t.Errorf("summary[%q] differs: serial %v, 4 workers %v", k, va, vb)
		}
	}
	if got := a.Summary["fused_pairs"]; got != 1 {
		t.Errorf("fused_pairs = %v, want 1", got)
	}
	for _, k := range []string{"acc_gait", "ops_har", "latency_ms_gait_vitals", "energy_uj_gait"} {
		if _, ok := a.Summary[k]; !ok {
			t.Errorf("matrix did not produce summary key %q", k)
		}
	}
}

// TestE18FilterInvariance checks the -modalities contract: per-modality rng
// streams are derived by name, so filtering changes which rows appear but
// never the values of the rows that remain. The har row of a {gait, har}
// run must equal the har row of a {har} run, column for column and summary
// key for summary key.
func TestE18FilterInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("trains CNNs")
	}
	full := runE18(t, []string{"gait", "har"}, 1)
	only := runE18(t, []string{"har"}, 1)

	harRow := func(r *zeiot.Result) []string {
		for _, row := range r.Rows {
			if row[0] == "har" {
				return row
			}
		}
		t.Fatalf("no har row in %v", r.Rows)
		return nil
	}
	fr, or := harRow(full), harRow(only)
	for i := range fr {
		if fr[i] != or[i] {
			t.Errorf("har row column %d differs under filtering: %q vs %q", i, fr[i], or[i])
		}
	}
	for k, v := range only.Summary {
		if strings.HasPrefix(k, "acc_") || strings.HasPrefix(k, "ops_") {
			if full.Summary[k] != v {
				t.Errorf("summary[%q] differs under filtering: %v vs %v", k, full.Summary[k], v)
			}
		}
	}
}

// TestE18UnknownModality requires Validate to reject modality names the
// registry does not know, naming the offender.
func TestE18UnknownModality(t *testing.T) {
	rc := &zeiot.RunConfig{Seed: 1, Modalities: []string{"gait", "sonar"}}
	if err := rc.Validate(); err == nil {
		t.Fatal("Validate accepted unknown modality \"sonar\"")
	} else if !strings.Contains(err.Error(), "sonar") {
		t.Errorf("error %q does not name the unknown modality", err)
	}
}
