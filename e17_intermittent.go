package zeiot

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"os"

	"zeiot/internal/cnn"
	"zeiot/internal/harvest"
	"zeiot/internal/microdeep"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
	"zeiot/internal/wsn"
)

// E17 is the intermittent-power runtime experiment: the paper's zero-energy
// devices compute on whatever ambient power they harvest, so learning on
// them is not a loop over epochs but a loop over ticks — train when the
// capacitor can fund a batch, brown out when it cannot, checkpoint so a
// power failure costs progress, never correctness.
//
// Phase A sweeps mean harvest power across trace profiles and trains the
// same CNN on each budget through a capacitor-gated cnn.Trainer: one batch
// per tick at most, each batch funded from the store or skipped. A run
// killed by RunConfig.Checkpoint resumes from its checkpoint file to a
// byte-identical result — the property the kill/resume tests pin.
//
// Phase B distributes the CNN over a harvest-powered 8×8 field: each node's
// capacitor trace becomes brownout windows on a wsn.LinkFaultModel, and the
// microdeep executor's compute-fault path measures what intermittent
// availability does to distributed inference accuracy.

// Phase A energy model. A 10 ms tick matches the charging granularity of
// the §IV.A backscatter MAC; the capacitor thresholds mirror the
// backscatter.Harvester hysteresis at µJ scale; the 32 µJ batch cost is the
// E11 compute scale (5 nJ/unit) applied to one 16-sample batch of the e17
// net. At most one batch fits in a tick, so every checkpoint lands on a
// batch boundary by construction.
const (
	e17TickSeconds   = 0.01
	e17CapJ          = 100e-6
	e17OnJ           = 50e-6
	e17OffJ          = 10e-6
	e17IdleJ         = 0.2e-6
	e17BatchJ        = 32e-6
	e17DeadlineTicks = 16_000 // 160 simulated seconds per sweep point

	// 10 epochs over 240 training samples is 150 batches ≈ 4.8 mJ of
	// compute: more than the 25 µW point can harvest before the deadline
	// (≈ 4 mJ), comfortably less than the 200 µW point's budget — so the
	// sweep spans did-not-finish through finished-with-slack.
	e17SampleCount = 300
	e17Epochs      = 10
	e17Batch       = 16

	// Phase B field: per-node mean harvest power, per-tick sensing cost
	// (deliberately above the 80 µW − idle net income, so nodes oscillate),
	// and the simulated window horizon the inference pass walks through.
	e17FieldMeanW = 80e-6
	e17SenseJ     = 1e-6
	e17FieldTicks = 2000
)

// e17RatesUW is the Phase A mean-harvest-power sweep in µW, multiplied by
// RunConfig.Harvest.PowerScale. The low end cannot finish training before
// the deadline; the high end finishes with duty cycle to spare.
var e17RatesUW = []float64{25, 50, 100, 200}

// e17Net builds the 8×8 occupancy CNN every sweep point trains: small
// enough that a µW budget can move it, deep enough that brownouts and
// checkpoints exercise conv, pool, and dense state.
func e17Net(stream *rng.Stream) *cnn.Network {
	return cnn.NewNetwork([]int{1, 8, 8},
		cnn.NewConv2D(1, 4, 3, 3, 1, 1, stream.Split("c")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(2, 2),
		cnn.NewFlatten(),
		cnn.NewDense(4*4*4, 16, stream.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(16, 2, stream.Split("d2")),
	)
}

// e17Dataset synthesizes the two-class 8×8 occupancy maps: a bright 3×3
// blob over sensor noise, class = which half of the field it sits in.
func e17Dataset(stream *rng.Stream, n int) []cnn.Sample {
	out := make([]cnn.Sample, n)
	for i := range out {
		label := i % 2
		data := make([]float64, 8*8)
		for j := range data {
			data[j] = 0.55 * stream.Norm()
		}
		cx := 1 + stream.Intn(2)
		if label == 1 {
			cx += 4
		}
		cy := 1 + stream.Intn(4)
		for dy := 0; dy < 3; dy++ {
			for dx := 0; dx < 3; dx++ {
				data[(cy+dy)*8+(cx+dx)] += 0.5 + 0.3*stream.Float64()
			}
		}
		out[i] = cnn.Sample{Input: tensor.FromSlice(data, 1, 8, 8), Label: label}
	}
	return out
}

// e17Point is one finished sweep point, in both the checkpoint file and the
// result table. All fields exported for gob.
type e17Point struct {
	RateUW    float64
	Profile   string
	Completed bool
	Ticks     uint64
	Batches   int
	Brownouts uint64
	Duty      float64
	Loss      float64
	Acc       float64
}

// e17Checkpoint is the whole-experiment snapshot a simulated power failure
// writes: the config echo that must match on resume, the finished points,
// and the in-flight point's harvest node plus trainer checkpoint (which
// itself embeds weights, optimizer state, and rng stream position).
type e17Checkpoint struct {
	Version     int
	Seed        uint64
	SampleScale float64
	PowerScale  float64
	Profile     string
	Point       int
	Node        harvest.Node
	Trainer     []byte
	Done        []e17Point
}

const e17CheckpointVersion = 1

func saveE17Checkpoint(path string, ck *e17Checkpoint) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return fmt.Errorf("zeiot: encoding e17 checkpoint: %w", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("zeiot: writing e17 checkpoint: %w", err)
	}
	return nil
}

func loadE17Checkpoint(path string) (*e17Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("zeiot: reading e17 checkpoint: %w", err)
	}
	ck := new(e17Checkpoint)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(ck); err != nil {
		return nil, fmt.Errorf("zeiot: decoding e17 checkpoint %q: %w", path, err)
	}
	if ck.Version != e17CheckpointVersion {
		return nil, fmt.Errorf("zeiot: e17 checkpoint %q is version %d, this build reads %d", path, ck.Version, e17CheckpointVersion)
	}
	return ck, nil
}

// e17PointSpec identifies one sweep point; every rng stream and harvest
// trace of the point derives from (root seed, label), so a resumed run
// rebuilds byte-identical state without replaying earlier points.
type e17PointSpec struct {
	// RateUW is the point's mean harvest power in µW (already PowerScale-
	// multiplied); summary keys and labels render it directly so scale 1
	// yields clean "rf_25uW"-style names with no float round-trip residue.
	RateUW  float64
	Profile harvest.Profile
	Label   string
}

func e17Points(scale float64, profiles []harvest.Profile) []e17PointSpec {
	var out []e17PointSpec
	for _, uw := range e17RatesUW {
		for _, p := range profiles {
			out = append(out, e17PointSpec{
				RateUW:  uw * scale,
				Profile: p,
				Label:   fmt.Sprintf("%s_%guW", p, uw*scale),
			})
		}
	}
	return out
}

func (spec e17PointSpec) node(seed uint64, index int) *harvest.Node {
	return &harvest.Node{
		Trace:       harvest.Trace{Seed: rng.Mix64(seed + 0xE17A), Node: index, Profile: spec.Profile, MeanW: spec.RateUW * 1e-6},
		Cap:         harvest.Capacitor{CapJ: e17CapJ, OnJ: e17OnJ, OffJ: e17OffJ},
		TickSeconds: e17TickSeconds,
		IdleDrawJ:   e17IdleJ,
	}
}

// RunE17Intermittent runs the intermittent-power experiment: the Phase A
// harvest sweep with optional kill/resume, then the Phase B brownout field.
// With RunConfig.Checkpoint.KillAfterBatches set, the run stops at that
// batch, writes its checkpoint, and returns ErrKilled; with Resume set it
// starts from the checkpoint and finishes byte-identically.
func RunE17Intermittent(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	seed := h.cfg.Seed
	scale := h.cfg.Harvest.powerScale()
	profiles := h.cfg.Harvest.profiles()

	total := h.cfg.scaled(e17SampleCount)
	if total < 5 {
		total = 5 // keep both splits non-empty under extreme -samples
	}
	data := e17Dataset(rng.New(seed).Split("e17-data"), total)
	cut := total * 4 / 5
	train, eval := data[:cut], data[cut:]
	h.mark(StageDataset)

	points := e17Points(scale, profiles)
	var done []e17Point
	startPoint := 0
	var resumeCK *e17Checkpoint
	if h.cfg.Checkpoint.Resume {
		resumeCK, err = loadE17Checkpoint(h.cfg.Checkpoint.Path)
		if err != nil {
			return nil, err
		}
		if resumeCK.Seed != seed || resumeCK.SampleScale != h.cfg.SampleScale ||
			resumeCK.PowerScale != scale || resumeCK.Profile != h.cfg.Harvest.Profile {
			return nil, fmt.Errorf("zeiot: e17 checkpoint %q was written under a different config (seed %d scale %g power %g profile %q); rerun with the original flags",
				h.cfg.Checkpoint.Path, resumeCK.Seed, resumeCK.SampleScale, resumeCK.PowerScale, resumeCK.Profile)
		}
		if resumeCK.Point >= len(points) {
			return nil, fmt.Errorf("zeiot: e17 checkpoint %q points at sweep index %d of %d", h.cfg.Checkpoint.Path, resumeCK.Point, len(points))
		}
		done = resumeCK.Done
		startPoint = resumeCK.Point
	}

	batchesThisRun := 0
	killAt := h.cfg.Checkpoint.KillAfterBatches
	for pi := startPoint; pi < len(points); pi++ {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		spec := points[pi]
		var tr *cnn.Trainer
		var node *harvest.Node
		if resumeCK != nil && pi == startPoint {
			tr, err = cnn.ResumeTrainer(bytes.NewReader(resumeCK.Trainer), train, h.cfg.workers())
			if err != nil {
				return nil, fmt.Errorf("zeiot: resuming e17 trainer: %w", err)
			}
			n := resumeCK.Node
			node = &n
		} else {
			net := e17Net(rng.New(seed).Split("e17-net-" + spec.Label))
			tr = cnn.NewTrainer(net, cnn.NewSGD(0.05, 0.9), rng.New(seed).Split("e17-fit-"+spec.Label),
				train, e17Epochs, e17Batch, h.cfg.workers())
			node = spec.node(seed, pi)
		}

		// The intermittent loop: harvest a tick, then train exactly as much
		// as the capacitor can fund. Each funded batch is one Trainer step,
		// so the trainer always rests at a batch boundary — the clean
		// checkpoint cut a real intermittent runtime must engineer.
		for node.Tick < e17DeadlineTicks && !tr.Done() {
			on := node.StepTick()
			if on && node.TrySpend(e17BatchJ) {
				tr.Step(1)
				batchesThisRun++
				if killAt > 0 && batchesThisRun >= killAt {
					var tb bytes.Buffer
					if err := tr.Save(&tb); err != nil {
						return nil, fmt.Errorf("zeiot: saving e17 trainer: %w", err)
					}
					ck := &e17Checkpoint{
						Version:     e17CheckpointVersion,
						Seed:        seed,
						SampleScale: h.cfg.SampleScale,
						PowerScale:  scale,
						Profile:     h.cfg.Harvest.Profile,
						Point:       pi,
						Node:        *node,
						Trainer:     tb.Bytes(),
						Done:        done,
					}
					if err := saveE17Checkpoint(h.cfg.Checkpoint.Path, ck); err != nil {
						return nil, err
					}
					return nil, fmt.Errorf("%w: e17 stopped after %d batches at sweep point %s; rerun with -resume -checkpoint %s",
						ErrKilled, batchesThisRun, spec.Label, h.cfg.Checkpoint.Path)
				}
			}
		}
		h.mark(StageTrain)
		p := e17Point{
			RateUW:    spec.RateUW,
			Profile:   spec.Profile.String(),
			Completed: tr.Done(),
			Ticks:     node.Tick,
			Batches:   tr.BatchesRun(),
			Brownouts: node.Brownouts,
			Duty:      node.DutyCycle(),
			Loss:      tr.LastLoss(),
			Acc:       tr.Net().Evaluate(eval),
		}
		h.mark(StageEval)
		done = append(done, p)
		if rec := h.cfg.Recorder; rec != nil {
			rec.Gauge("harvest_duty_"+spec.Label, p.Duty)
			rec.Gauge("harvest_brownouts_"+spec.Label, float64(p.Brownouts))
			rec.Gauge("harvest_batches_"+spec.Label, float64(p.Batches))
		}
	}

	// Phase B: the same CNN distributed over a harvest-powered 8×8 field.
	// Train it steadily (the gateway has mains power; the field does not),
	// prove the distributed checkpoint round-trips, then push inference
	// through the field's brownout schedule.
	w := wsn.NewGrid(8, 8, 1)
	mdOpt := cnn.NewSGD(0.05, 0.9)
	mdNet := e17Net(rng.New(seed).Split("e17-md-net"))
	model, err := microdeep.Build(mdNet, w, microdeep.StrategyBalanced)
	if err != nil {
		return nil, err
	}
	model.SetBatchKernel(h.cfg.BatchKernel)
	model.FitParallel(train, 2, e17Batch, h.cfg.workers(), mdOpt, rng.New(seed).Split("e17-md-fit"))
	h.mark(StageTrain)

	selfCheck, err := e17SelfCheck(seed, model, mdOpt, w, eval)
	if err != nil {
		return nil, err
	}

	// Simulate every field node's capacitor and register its dark intervals
	// as brownout windows, shared by the link and compute fault layers.
	fm := wsn.NewLinkFaultModel(wsn.FaultConfig{})
	windows := 0
	var offTicks uint64
	for i := 0; i < w.NumNodes(); i++ {
		n := &harvest.Node{
			Trace:       harvest.Trace{Seed: rng.Mix64(seed + 0xB0F1E1D), Node: i, Profile: profiles[i%len(profiles)], MeanW: e17FieldMeanW * scale},
			Cap:         harvest.Capacitor{CapJ: e17CapJ, OnJ: e17OnJ, OffJ: e17OffJ},
			TickSeconds: e17TickSeconds,
			IdleDrawJ:   e17IdleJ,
		}
		inOff := false
		var runStart uint64
		for t := uint64(0); t < e17FieldTicks; t++ {
			on := n.StepTick()
			if on {
				n.TrySpend(e17SenseJ)
			}
			if !on {
				if !inOff {
					inOff, runStart = true, t
				}
				offTicks++
			} else if inOff {
				fm.AddBrownout(wsn.Brownout{Node: i, Start: runStart, End: t})
				windows++
				inOff = false
			}
		}
		if inOff {
			fm.AddBrownout(wsn.Brownout{Node: i, Start: runStart, End: e17FieldTicks})
			windows++
		}
	}
	availability := 1 - float64(offTicks)/float64(uint64(w.NumNodes())*e17FieldTicks)
	h.mark(StageCharge)

	// Inference walks the eval set through the window timeline: sample k
	// runs at tick k*stride, so accuracy averages over the field's cold
	// start, brownouts, and bright spells alike.
	ex := model.DistributedExecutor()
	ex.Assign = &model.Assign
	stride := uint64(e17FieldTicks / len(eval))
	if stride == 0 {
		stride = 1
	}
	cleanOK, brownOK := 0, 0
	for k, s := range eval {
		ex.ComputeFaults = nil
		out, err := ex.Forward(s.Input)
		if err != nil {
			return nil, err
		}
		if argmax(out.Data()) == s.Label {
			cleanOK++
		}
		ex.ComputeFaults = fm
		ex.ComputeTick = uint64(k) * stride
		out, err = ex.Forward(s.Input)
		if err != nil {
			return nil, err
		}
		if argmax(out.Data()) == s.Label {
			brownOK++
		}
	}
	ex.ComputeFaults = nil
	accClean := float64(cleanOK) / float64(len(eval))
	accBrown := float64(brownOK) / float64(len(eval))
	h.mark(StageEval)
	if rec := h.cfg.Recorder; rec != nil {
		rec.Gauge("field_availability", availability)
		rec.Gauge("field_brownout_windows", float64(windows))
	}

	header := []string{"profile", "harvest µW", "duty", "brownouts", "batches", "done", "loss", "accuracy"}
	rows := make([][]string, 0, len(done)+3)
	sum := map[string]float64{}
	for _, p := range done {
		doneCell := "no"
		completed := 0.0
		if p.Completed {
			doneCell, completed = "yes", 1
		}
		rows = append(rows, []string{p.Profile, f1(p.RateUW), pct(p.Duty), fi(int(p.Brownouts)), fi(p.Batches), doneCell, f3(p.Loss), pct(p.Acc)})
		key := fmt.Sprintf("%s_%guW", p.Profile, p.RateUW)
		sum["duty_"+key] = p.Duty
		sum["batches_"+key] = float64(p.Batches)
		sum["completed_"+key] = completed
		sum["brownouts_"+key] = float64(p.Brownouts)
		sum["acc_"+key] = p.Acc
	}
	fieldUW := e17FieldMeanW * scale * 1e6
	selfCell := "no"
	if selfCheck {
		selfCell = "yes"
	}
	rows = append(rows,
		[]string{"field clean", f1(fieldUW), "-", "-", "-", "-", "-", pct(accClean)},
		[]string{"field brownout", f1(fieldUW), pct(availability), fi(windows), "-", "-", "-", pct(accBrown)},
		[]string{"ckpt selfcheck", "-", "-", "-", "-", selfCell, "-", "-"},
	)
	sum["acc_clean"] = accClean
	sum["acc_brownout"] = accBrown
	sum["availability"] = availability
	sum["brownout_windows"] = float64(windows)
	sum["checkpoint_selfcheck"] = boolGauge(selfCheck)

	res := &Result{
		ID:         "e17",
		Title:      "Intermittent-power runtime: harvest-gated training and brownout inference",
		PaperClaim: "zero-energy devices compute on harvested µW budgets (§I) — implemented as capacitor-gated training with checkpointed resume",
		Header:     header,
		Rows:       rows,
		Summary:    sum,
		Notes: fmt.Sprintf("phase A trains the 8×8 CNN one funded batch per %dms tick (batch %.0fµJ, idle %.1fµJ, cap %.0f/%.0f/%.0fµJ hysteresis, deadline %d ticks); "+
			"phase B converts %d field nodes' capacitor traces into brownout windows shared by the link and compute fault layers",
			int(e17TickSeconds*1000), e17BatchJ*1e6, e17IdleJ*1e6, e17CapJ*1e6, e17OnJ*1e6, e17OffJ*1e6, e17DeadlineTicks, w.NumNodes()),
	}
	return h.finish(res), nil
}

// e17SelfCheck round-trips the distributed model through its training
// checkpoint into a differently-initialized replica and requires identical
// distributed outputs — the in-run canary for the cnn/microdeep checkpoint
// stack that the unit tests pin in detail.
func e17SelfCheck(seed uint64, model *microdeep.Model, opt *cnn.SGD, w *wsn.Network, eval []cnn.Sample) (bool, error) {
	var buf bytes.Buffer
	if err := model.SaveTraining(&buf, opt); err != nil {
		return false, fmt.Errorf("zeiot: e17 self-check save: %w", err)
	}
	other, err := microdeep.Build(e17Net(rng.New(seed).Split("e17-md-net2")), w, microdeep.StrategyBalanced)
	if err != nil {
		return false, err
	}
	if _, err := other.RestoreTraining(bytes.NewReader(buf.Bytes()), cnn.NewSGD(0.05, 0.9)); err != nil {
		return false, fmt.Errorf("zeiot: e17 self-check restore: %w", err)
	}
	n := len(eval)
	if n > 8 {
		n = 8
	}
	for _, s := range eval[:n] {
		a, err := model.ForwardDistributed(s.Input)
		if err != nil {
			return false, err
		}
		b, err := other.ForwardDistributed(s.Input)
		if err != nil {
			return false, err
		}
		if !tensor.Equal(a, b, 0) {
			return false, nil
		}
	}
	return true, nil
}

func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
