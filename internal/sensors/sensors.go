// Package sensors models the zero-energy sensing devices of §III.A and
// §III.C: transducers that convert a physical quantity directly into an
// antenna impedance state, so the measurement can be read out by observing
// backscattered Wi-Fi — no battery, no ADC, no radio.
//
//   - BimetallicSwitch — the paper's Fig. 2(b) temperature sensor: a
//     bimetallic strip opens/closes the RF switch at a threshold
//     temperature, with mechanical hysteresis.
//   - IRFilmPixel — a film-type infra-red pixel (Fig. 9's array) whose
//     conductance, quantized to a few impedance states, follows incident
//     body heat.
//   - SpringAccelerometer — a spring-mass harvesting accelerometer for the
//     slope-monitoring use case (v): vibration drives a resonant contact
//     whose chatter frequency encodes the excitation amplitude.
//
// Every device implements Device: physical input in, impedance state out.
package sensors

import (
	"fmt"
	"math"
)

// Device is a zero-energy transducer: it maps the current physical input
// to one of States() discrete antenna impedance states. A reader recovers
// the state by demodulating the backscattered signal.
type Device interface {
	// Step advances the device with the current physical input and
	// returns the impedance state it presents.
	Step(input float64) int
	// States returns the number of distinguishable impedance states.
	States() int
}

// BimetallicSwitch toggles its RF switch when temperature crosses a
// threshold, with hysteresis from the strip's mechanical snap.
type BimetallicSwitch struct {
	// OnAboveC closes the switch; OffBelowC re-opens it (OffBelowC <
	// OnAboveC).
	OnAboveC, OffBelowC float64
	closed              bool
}

var _ Device = (*BimetallicSwitch)(nil)

// NewBimetallicSwitch validates thresholds and returns the switch (open).
func NewBimetallicSwitch(onAboveC, offBelowC float64) (*BimetallicSwitch, error) {
	if offBelowC >= onAboveC {
		return nil, fmt.Errorf("sensors: hysteresis requires off %v < on %v", offBelowC, onAboveC)
	}
	return &BimetallicSwitch{OnAboveC: onAboveC, OffBelowC: offBelowC}, nil
}

// Step implements Device: input is temperature in °C.
func (b *BimetallicSwitch) Step(tempC float64) int {
	if tempC >= b.OnAboveC {
		b.closed = true
	} else if tempC <= b.OffBelowC {
		b.closed = false
	}
	if b.closed {
		return 1
	}
	return 0
}

// States implements Device.
func (b *BimetallicSwitch) States() int { return 2 }

// IRFilmPixel quantizes incident IR flux into impedance levels. Flux is
// normalized to [0,1] (body heat saturates the film at 1).
type IRFilmPixel struct {
	// Levels is the number of impedance states (≥ 2).
	Levels int
}

var _ Device = (*IRFilmPixel)(nil)

// Step implements Device: input is normalized IR flux.
func (p *IRFilmPixel) Step(flux float64) int {
	if p.Levels < 2 {
		panic("sensors: IRFilmPixel needs >= 2 levels")
	}
	if flux < 0 {
		flux = 0
	}
	if flux > 1 {
		flux = 1
	}
	state := int(flux * float64(p.Levels))
	if state == p.Levels {
		state = p.Levels - 1
	}
	return state
}

// States implements Device.
func (p *IRFilmPixel) States() int { return p.Levels }

// SpringAccelerometer is a resonant spring-mass contact: sinusoidal ground
// excitation above the contact threshold makes the mass chatter, and the
// chatter rate grows with excitation amplitude. Step is called once per
// sample tick with the instantaneous ground acceleration.
type SpringAccelerometer struct {
	// NaturalHz is the resonant frequency; DampingRatio the damper.
	NaturalHz    float64
	DampingRatio float64
	// ContactG is the displacement threshold (in normalized units) where
	// the contact closes.
	ContactG float64
	// TickSec is the simulation step.
	TickSec float64

	pos, vel float64
}

var _ Device = (*SpringAccelerometer)(nil)

// NewSpringAccelerometer returns a device with the given resonance.
func NewSpringAccelerometer(naturalHz, dampingRatio, contactG, tickSec float64) (*SpringAccelerometer, error) {
	if naturalHz <= 0 || dampingRatio < 0 || contactG <= 0 || tickSec <= 0 {
		return nil, fmt.Errorf("sensors: invalid accelerometer params")
	}
	return &SpringAccelerometer{NaturalHz: naturalHz, DampingRatio: dampingRatio, ContactG: contactG, TickSec: tickSec}, nil
}

// Step implements Device: input is ground acceleration; the state is 1
// while the proof mass deflection exceeds the contact threshold.
func (s *SpringAccelerometer) Step(accel float64) int {
	w := 2 * math.Pi * s.NaturalHz
	// Semi-implicit Euler of x'' + 2ζω x' + ω² x = -a(t).
	s.vel += s.TickSec * (-accel - 2*s.DampingRatio*w*s.vel - w*w*s.pos)
	s.pos += s.TickSec * s.vel
	if math.Abs(s.pos) >= s.ContactG {
		return 1
	}
	return 0
}

// States implements Device.
func (s *SpringAccelerometer) States() int { return 2 }

// ChatterRate runs the accelerometer over a sinusoidal excitation of the
// given amplitude and frequency for duration seconds and returns the
// fraction of ticks the contact is closed — the quantity a backscatter
// reader measures to estimate vibration strength.
func (s *SpringAccelerometer) ChatterRate(amplitude, freqHz, durationSec float64) float64 {
	s.pos, s.vel = 0, 0
	ticks := int(durationSec / s.TickSec)
	closed := 0
	for i := 0; i < ticks; i++ {
		tSec := float64(i) * s.TickSec
		a := amplitude * math.Sin(2*math.Pi*freqHz*tSec)
		closed += s.Step(a)
	}
	if ticks == 0 {
		return 0
	}
	return float64(closed) / float64(ticks)
}

// FlowMeter is the Printed Wi-Fi water meter of ref. [36] (§II.B): water
// flow spins a 3D-printed turbine whose gear toggles the antenna impedance
// once per revolution, so the reader sees an on/off pattern whose rate
// encodes the flow.
type FlowMeter struct {
	// LitersPerRev is the volume that passes per turbine revolution.
	LitersPerRev float64
	// TogglesPerRev is how many impedance flips the gear produces per
	// revolution (2 for a half-shaded disc).
	TogglesPerRev int

	angle float64 // revolutions, fractional
	state int
}

var _ Device = (*FlowMeter)(nil)

// NewFlowMeter validates and returns a flow meter.
func NewFlowMeter(litersPerRev float64, togglesPerRev int) (*FlowMeter, error) {
	if litersPerRev <= 0 || togglesPerRev < 1 {
		return nil, fmt.Errorf("sensors: invalid flow meter (%v L/rev, %d toggles)", litersPerRev, togglesPerRev)
	}
	return &FlowMeter{LitersPerRev: litersPerRev, TogglesPerRev: togglesPerRev}, nil
}

// Step implements Device: input is the volume (litres) that flowed since
// the previous step. The state flips TogglesPerRev times per revolution.
func (f *FlowMeter) Step(liters float64) int {
	if liters < 0 {
		liters = 0
	}
	f.angle += liters / f.LitersPerRev
	// State = parity of completed toggle intervals.
	f.state = int(f.angle*float64(f.TogglesPerRev)) % 2
	return f.state
}

// States implements Device.
func (f *FlowMeter) States() int { return 2 }

// CountToggles replays a flow series (litres per tick) and returns the
// number of impedance transitions — what the Wi-Fi receiver counts.
func (f *FlowMeter) CountToggles(flow []float64) int {
	prev := f.state
	toggles := 0
	for _, v := range flow {
		s := f.Step(v)
		if s != prev {
			toggles++
			prev = s
		}
	}
	return toggles
}

// VolumeFromToggles inverts the count: each toggle corresponds to
// LitersPerRev/TogglesPerRev litres.
func (f *FlowMeter) VolumeFromToggles(toggles int) float64 {
	return float64(toggles) * f.LitersPerRev / float64(f.TogglesPerRev)
}
