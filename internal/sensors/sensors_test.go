package sensors

import (
	"testing"
)

func TestBimetallicValidation(t *testing.T) {
	if _, err := NewBimetallicSwitch(25, 25); err == nil {
		t.Fatal("equal thresholds accepted")
	}
	if _, err := NewBimetallicSwitch(25, 30); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
}

func TestBimetallicHysteresis(t *testing.T) {
	b, err := NewBimetallicSwitch(28, 24)
	if err != nil {
		t.Fatal(err)
	}
	if b.States() != 2 {
		t.Fatalf("states = %d", b.States())
	}
	// Heating: stays open until 28.
	if b.Step(20) != 0 || b.Step(26) != 0 {
		t.Fatal("closed below threshold")
	}
	if b.Step(28.5) != 1 {
		t.Fatal("did not close above threshold")
	}
	// Cooling: stays closed until 24 (hysteresis band).
	if b.Step(26) != 1 {
		t.Fatal("opened inside hysteresis band")
	}
	if b.Step(23) != 0 {
		t.Fatal("did not open below release threshold")
	}
	// Re-entering the band from below keeps it open.
	if b.Step(26) != 0 {
		t.Fatal("closed inside band from below")
	}
}

func TestIRFilmQuantization(t *testing.T) {
	p := &IRFilmPixel{Levels: 4}
	cases := []struct {
		flux float64
		want int
	}{
		{-0.5, 0}, {0, 0}, {0.24, 0}, {0.26, 1}, {0.5, 2}, {0.76, 3}, {1.0, 3}, {2.0, 3},
	}
	for _, c := range cases {
		if got := p.Step(c.flux); got != c.want {
			t.Fatalf("Step(%v) = %d, want %d", c.flux, got, c.want)
		}
	}
	if p.States() != 4 {
		t.Fatalf("States = %d", p.States())
	}
}

func TestIRFilmMonotone(t *testing.T) {
	p := &IRFilmPixel{Levels: 8}
	prev := -1
	for f := 0.0; f <= 1.0; f += 0.01 {
		s := p.Step(f)
		if s < prev {
			t.Fatalf("quantization not monotone at flux %v", f)
		}
		prev = s
	}
}

func TestAccelerometerValidation(t *testing.T) {
	if _, err := NewSpringAccelerometer(0, 0.1, 0.5, 0.001); err == nil {
		t.Fatal("zero natural frequency accepted")
	}
	if _, err := NewSpringAccelerometer(10, 0.1, 0, 0.001); err == nil {
		t.Fatal("zero contact threshold accepted")
	}
}

func TestAccelerometerChatterGrowsWithAmplitude(t *testing.T) {
	a, err := NewSpringAccelerometer(5, 0.05, 0.002, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	quiet := a.ChatterRate(0.1, 5, 4)
	strong := a.ChatterRate(4.0, 5, 4)
	if strong <= quiet {
		t.Fatalf("chatter did not grow: quiet %v strong %v", quiet, strong)
	}
	if strong <= 0 {
		t.Fatal("strong excitation produced no chatter")
	}
}

func TestAccelerometerResonancePeaks(t *testing.T) {
	a, err := NewSpringAccelerometer(5, 0.05, 0.002, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	atResonance := a.ChatterRate(0.5, 5, 4)
	offResonance := a.ChatterRate(0.5, 20, 4)
	if atResonance <= offResonance {
		t.Fatalf("no resonance peak: at %v off %v", atResonance, offResonance)
	}
}

func TestAccelerometerSilentWithoutInput(t *testing.T) {
	a, err := NewSpringAccelerometer(5, 0.05, 0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if rate := a.ChatterRate(0, 5, 2); rate != 0 {
		t.Fatalf("chatter with zero input: %v", rate)
	}
}

func TestDeviceInterfaces(t *testing.T) {
	devices := []Device{
		&IRFilmPixel{Levels: 2},
		mustSwitch(t),
		mustAccel(t),
	}
	for _, d := range devices {
		if d.States() < 2 {
			t.Fatalf("%T has %d states", d, d.States())
		}
		s := d.Step(0)
		if s < 0 || s >= d.States() {
			t.Fatalf("%T returned state %d of %d", d, s, d.States())
		}
	}
}

func mustSwitch(t *testing.T) *BimetallicSwitch {
	t.Helper()
	b, err := NewBimetallicSwitch(28, 24)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustAccel(t *testing.T) *SpringAccelerometer {
	t.Helper()
	a, err := NewSpringAccelerometer(5, 0.05, 0.002, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFlowMeterValidation(t *testing.T) {
	if _, err := NewFlowMeter(0, 2); err == nil {
		t.Fatal("zero liters/rev accepted")
	}
	if _, err := NewFlowMeter(1, 0); err == nil {
		t.Fatal("zero toggles accepted")
	}
}

func TestFlowMeterCountsVolume(t *testing.T) {
	f, err := NewFlowMeter(0.5, 2) // half litre per rev, 2 toggles/rev
	if err != nil {
		t.Fatal(err)
	}
	// 10 litres in 1000 ticks = 20 revolutions = 40 toggles.
	flow := make([]float64, 1000)
	for i := range flow {
		flow[i] = 0.01
	}
	// Floating-point accumulation may leave the final toggle a hair short.
	toggles := f.CountToggles(flow)
	if toggles < 39 || toggles > 40 {
		t.Fatalf("toggles = %d, want 39-40", toggles)
	}
	vol := f.VolumeFromToggles(toggles)
	if vol < 9.7 || vol > 10.01 {
		t.Fatalf("volume = %v L, want ~10", vol)
	}
}

func TestFlowMeterZeroFlowIsSilent(t *testing.T) {
	f, err := NewFlowMeter(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	flow := make([]float64, 100)
	if got := f.CountToggles(flow); got != 0 {
		t.Fatalf("zero flow toggled %d times", got)
	}
	// Negative inputs are clamped.
	if f.Step(-5) != 0 {
		t.Fatal("negative flow moved the gear")
	}
}

func TestFlowMeterRateProportional(t *testing.T) {
	count := func(rate float64) int {
		f, err := NewFlowMeter(0.5, 2)
		if err != nil {
			t.Fatal(err)
		}
		flow := make([]float64, 500)
		for i := range flow {
			flow[i] = rate
		}
		return f.CountToggles(flow)
	}
	slow := count(0.005)
	fast := count(0.01)
	if fast < slow*2-1 || fast > slow*2+1 {
		t.Fatalf("doubling flow: %d -> %d toggles", slow, fast)
	}
}
