package wsn

import (
	"testing"

	"zeiot/internal/geom"
)

func TestRadioPlanLinkBudget(t *testing.T) {
	plan := DefaultRadioPlan()
	a := geom.Point{X: 0, Y: 0}
	near := plan.LinkBudgetDBm(a, geom.Point{X: 2, Y: 0})
	far := plan.LinkBudgetDBm(a, geom.Point{X: 20, Y: 0})
	if far >= near {
		t.Fatal("budget not decreasing with distance")
	}
	if !plan.Usable(a, geom.Point{X: 2, Y: 0}) {
		t.Fatal("2 m link should close")
	}
	if plan.Usable(a, geom.Point{X: 500, Y: 0}) {
		t.Fatal("500 m link should not close")
	}
}

func TestWallAttenuatesLink(t *testing.T) {
	plan := DefaultRadioPlan()
	a, b := geom.Point{X: 0, Y: 0}, geom.Point{X: 4, Y: 0}
	open := plan.LinkBudgetDBm(a, b)
	plan.Walls = []Wall{{A: geom.Point{X: 2, Y: -1}, B: geom.Point{X: 2, Y: 1}, LossDB: 15}}
	blocked := plan.LinkBudgetDBm(a, b)
	if open-blocked != 15 {
		t.Fatalf("wall loss = %v dB, want 15", open-blocked)
	}
	// A wall parallel to the link (not crossing) costs nothing.
	plan.Walls = []Wall{{A: geom.Point{X: 0, Y: 2}, B: geom.Point{X: 4, Y: 2}, LossDB: 15}}
	if plan.LinkBudgetDBm(a, b) != open {
		t.Fatal("non-crossing wall attenuated link")
	}
}

func TestNewFromRadioPlanConnectivity(t *testing.T) {
	// Two clusters of nodes separated by a heavy wall: without the wall
	// one component, with it two (until a relay is placed at the gap).
	positions := []geom.Point{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0},
		{X: 8, Y: 0}, {X: 10, Y: 0}, {X: 12, Y: 0},
	}
	plan := DefaultRadioPlan()
	open := NewFromRadioPlan(positions, plan)
	if !open.Connected() {
		t.Fatal("open-space chain not connected")
	}
	plan.Walls = []Wall{{A: geom.Point{X: 6, Y: -5}, B: geom.Point{X: 6, Y: 5}, LossDB: 40}}
	walled := NewFromRadioPlan(positions, plan)
	if walled.Connected() {
		t.Fatal("40 dB wall did not partition the network")
	}
	// The design-support loop: the gap needs a relay whose links do not
	// cross the wall... which is impossible for a full wall, but a door
	// (shorter wall) lets a relay through.
	plan.Walls = []Wall{{A: geom.Point{X: 6, Y: -5}, B: geom.Point{X: 6, Y: 0.5}, LossDB: 40}}
	withDoor := NewFromRadioPlan(append(positions, geom.Point{X: 6, Y: 2}), plan)
	if !withDoor.Connected() {
		t.Fatal("relay behind the door gap did not restore connectivity")
	}
}

func TestRadioPlanNetworkSupportsRoutingAndFailure(t *testing.T) {
	// Default plan closes links up to ~27 m, so a 20 m pitch forms a
	// chain with adjacent-only links.
	positions := []geom.Point{
		{X: 0, Y: 0}, {X: 20, Y: 0}, {X: 40, Y: 0}, {X: 60, Y: 0},
	}
	n := NewFromRadioPlan(positions, DefaultRadioPlan())
	if n.Linked(0, 2) {
		t.Fatal("40 m link should not close under the default plan")
	}
	if _, err := n.Send(0, 3, 2); err != nil {
		t.Fatal(err)
	}
	if n.TotalCost() == 0 {
		t.Fatal("no cost recorded")
	}
	n.Fail(1)
	n.Fail(2)
	if _, err := n.Send(0, 3, 2); err == nil {
		t.Fatal("send succeeded across failed relays")
	}
}

func TestSegmentsIntersectCases(t *testing.T) {
	cases := []struct {
		a, b, c, d geom.Point
		want       bool
	}{
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 4, Y: 0}, geom.Point{X: 2, Y: -1}, geom.Point{X: 2, Y: 1}, true},  // crossing
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 4, Y: 0}, geom.Point{X: 5, Y: -1}, geom.Point{X: 5, Y: 1}, false}, // beyond end
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 4, Y: 0}, geom.Point{X: 4, Y: 0}, geom.Point{X: 6, Y: 2}, true},   // touching endpoint
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 4, Y: 0}, geom.Point{X: 1, Y: 0}, geom.Point{X: 3, Y: 0}, true},   // collinear overlap
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 4, Y: 0}, geom.Point{X: 0, Y: 1}, geom.Point{X: 4, Y: 1}, false},  // parallel
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 4, Y: 4}, geom.Point{X: 0, Y: 4}, geom.Point{X: 4, Y: 0}, true},   // diagonal X
	}
	for i, tc := range cases {
		if got := geom.SegmentsIntersect(tc.a, tc.b, tc.c, tc.d); got != tc.want {
			t.Fatalf("case %d: SegmentsIntersect = %v, want %v", i, got, tc.want)
		}
	}
}

func TestSuggestRelaysBridgesGap(t *testing.T) {
	// Two clusters 40 m apart; default plan closes ~27 m links, so one
	// midpoint relay (20 m from each side) bridges them.
	positions := []geom.Point{
		{X: 0, Y: 0}, {X: 5, Y: 0},
		{X: 45, Y: 0}, {X: 50, Y: 0},
	}
	plan := DefaultRadioPlan()
	if NewFromRadioPlan(positions, plan).Connected() {
		t.Fatal("test premise broken: already connected")
	}
	relays, net, err := SuggestRelays(positions, plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(relays) != 1 {
		t.Fatalf("relays = %d, want 1", len(relays))
	}
	if !net.Connected() {
		t.Fatal("repaired network not connected")
	}
}

func TestSuggestRelaysAlreadyConnected(t *testing.T) {
	positions := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}
	relays, net, err := SuggestRelays(positions, DefaultRadioPlan(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(relays) != 0 || !net.Connected() {
		t.Fatalf("unexpected relays %v", relays)
	}
}

func TestSuggestRelaysBudgetExhausted(t *testing.T) {
	// 200 m gap needs several relays; budget of 1 must fail cleanly.
	positions := []geom.Point{{X: 0, Y: 0}, {X: 200, Y: 0}}
	if _, _, err := SuggestRelays(positions, DefaultRadioPlan(), 1); err == nil {
		t.Fatal("budget-exhausted repair reported success")
	}
	// But a generous budget succeeds by chaining relays.
	relays, net, err := SuggestRelays(positions, DefaultRadioPlan(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Connected() {
		t.Fatal("chained relays did not connect")
	}
	if len(relays) < 3 {
		t.Fatalf("only %d relays for a 200 m gap", len(relays))
	}
}
