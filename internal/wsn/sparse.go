package wsn

import (
	"math"
	"sort"

	"zeiot/internal/geom"
)

// csr is a compressed sparse row view of the structural connectivity graph:
// the neighbours of node i are list[off[i]:off[i+1]], sorted ascending. The
// structure ignores Failed flags — it records which links exist physically,
// and traversals filter dead endpoints at query time, so a Fail/Recover flip
// never has to touch the adjacency at all.
type csr struct {
	off  []int32
	list []int32
}

func (c *csr) neighbors(i int) []int32 { return c.list[c.off[i]:c.off[i+1]] }

// contains reports whether j is a structural neighbour of i (binary search
// over the sorted row).
func (c *csr) contains(i, j int) bool {
	row := c.neighbors(i)
	k := sort.Search(len(row), func(m int) bool { return row[m] >= int32(j) })
	return k < len(row) && row[k] == int32(j)
}

// MaxLinkDist returns an upper bound on the distance at which a link under
// this plan can close: the range where bare path loss (no walls — walls only
// subtract further) eats the whole budget. Used to size the spatial hash
// cells of the sparse adjacency builder.
func (p RadioPlan) MaxLinkDist() float64 {
	allow := p.TxDBm - p.SensitivityDBm - p.FadeMarginDB - p.Model.RefLossDB
	if allow <= 0 || p.Model.Exponent <= 0 {
		return p.Model.RefDist
	}
	return p.Model.RefDist * math.Pow(10, allow/(10*p.Model.Exponent))
}

// maxLinkDist returns the link-distance cutoff for the network's
// connectivity predicate (fixed range or radio-plan budget).
func (n *Network) maxLinkDist() float64 {
	if n.plan != nil {
		return n.plan.MaxLinkDist()
	}
	return n.maxRange
}

// buildCSR derives the structural adjacency from node positions with a
// uniform spatial hash: cells of side maxDist, so every candidate neighbour
// of a node lies in its 3×3 cell block. Total work is O(N·deg) instead of
// the dense builder's O(N²) pair scan.
func buildCSR(nodes []*Node, link func(a, b *Node) bool, maxDist float64) csr {
	n := len(nodes)
	if n == 0 {
		return csr{off: make([]int32, 1)}
	}
	if maxDist <= 0 {
		maxDist = 1
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, nd := range nodes {
		minX = math.Min(minX, nd.Pos.X)
		minY = math.Min(minY, nd.Pos.Y)
		maxX = math.Max(maxX, nd.Pos.X)
		maxY = math.Max(maxY, nd.Pos.Y)
	}
	cols := int((maxX-minX)/maxDist) + 1
	rows := int((maxY-minY)/maxDist) + 1
	cellOf := func(p geom.Point) int {
		cx := int((p.X - minX) / maxDist)
		cy := int((p.Y - minY) / maxDist)
		return cy*cols + cx
	}
	// Counting sort of node ids by cell.
	start := make([]int32, rows*cols+1)
	for _, nd := range nodes {
		start[cellOf(nd.Pos)+1]++
	}
	for c := 1; c < len(start); c++ {
		start[c] += start[c-1]
	}
	ids := make([]int32, n)
	fill := append([]int32(nil), start[:len(start)-1]...)
	for i, nd := range nodes {
		c := cellOf(nd.Pos)
		ids[fill[c]] = int32(i)
		fill[c]++
	}
	// Enumerate each candidate pair once via a half neighbourhood (same
	// cell i<j, then E, SW, S, SE cells), append both directions.
	tmp := make([][]int32, n)
	maxDistSq := maxDist * maxDist
	tryPair := func(a, b int32) {
		pa, pb := nodes[a].Pos, nodes[b].Pos
		dx, dy := pa.X-pb.X, pa.Y-pb.Y
		if dx*dx+dy*dy > maxDistSq {
			return
		}
		if !link(nodes[a], nodes[b]) {
			return
		}
		tmp[a] = append(tmp[a], b)
		tmp[b] = append(tmp[b], a)
	}
	half := [4][2]int{{1, 0}, {-1, 1}, {0, 1}, {1, 1}}
	for cy := 0; cy < rows; cy++ {
		for cx := 0; cx < cols; cx++ {
			c := cy*cols + cx
			cell := ids[start[c]:start[c+1]]
			for ai, a := range cell {
				for _, b := range cell[ai+1:] {
					tryPair(a, b)
				}
			}
			for _, d := range half {
				nx, ny := cx+d[0], cy+d[1]
				if nx < 0 || nx >= cols || ny >= rows {
					continue
				}
				nc := ny*cols + nx
				other := ids[start[nc]:start[nc+1]]
				for _, a := range cell {
					for _, b := range other {
						tryPair(a, b)
					}
				}
			}
		}
	}
	// Flatten into CSR with ascending rows (matches the dense builder's
	// ascending-j neighbour order, which every BFS tie-break relies on).
	out := csr{off: make([]int32, n+1)}
	total := 0
	for i := range tmp {
		total += len(tmp[i])
	}
	out.list = make([]int32, 0, total)
	for i := range tmp {
		row := tmp[i]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		out.list = append(out.list, row...)
		out.off[i+1] = int32(len(out.list))
	}
	return out
}
