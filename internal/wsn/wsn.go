// Package wsn simulates the wireless sensor networks the paper's systems
// run on: nodes at XY coordinates (Fig. 8), a connectivity graph derived
// from radio range, hop-count routing, and per-node communication counters.
//
// The counters are the paper's Fig. 10 metric: the "communication cost" of
// a node is the number of scalar values it transmits (originating plus
// forwarding) during a pass of the distributed computation. The package
// also provides the two synchronized RSSI measurements of ref. [66]
// (inter-node RSSI and surrounding RSSI), node-failure injection for the
// resilience experiment (E8), and the lossy-link fault layer of fault.go —
// a deterministic seeded LinkFaultModel (independent drops, Gilbert-Elliott
// bursts, per-node brownout windows) with a reliable SendReliable path that
// charges every retransmission.
package wsn

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"zeiot/internal/geom"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
)

// ErrUnreachable is returned when no route exists between two nodes.
var ErrUnreachable = errors.New("wsn: no route between nodes")

// Node is one sensor node.
type Node struct {
	ID     int
	Pos    geom.Point
	Failed bool
	// TxScalars counts scalar values this node transmitted (as source or
	// forwarder); RxScalars counts values it received (as destination or
	// forwarder).
	TxScalars int
	RxScalars int
}

// networkSeq issues process-unique network identities; see Network.ID.
var networkSeq atomic.Uint64

// Network is a static multi-hop sensor network.
type Network struct {
	// id is a process-unique identity assigned at construction. Caches key
	// on it instead of the *Network pointer, so a freed network's reused
	// address can never alias a live cache entry.
	id       uint64
	nodes    []*Node
	maxRange float64
	plan     *RadioPlan
	adj      [][]int
	hops     [][]int
	next     [][]int
	dirty    bool
	// Dense-core scratch, reused across rebuilds: the flat backing arrays of
	// hops/next and the BFS queue. nil until the first rebuild sizes them.
	hopsBuf []int
	nextBuf []int
	queue   []int
	// denseRebuilds counts full all-pairs rebuilds (RebuildStats).
	denseRebuilds uint64
	// sh is the hierarchical sharded routing core (shard.go). When non-nil,
	// every routing query dispatches to it and the dense tables above stay
	// empty; small networks keep sh nil and the original dense path.
	sh *shardCore
	// epoch counts topology changes (Fail/Recover that actually flip a
	// node's state). Callers that cache route- or plan-derived data key it
	// on TopologyEpoch and invalidate when the value moves.
	epoch uint64
	// routes memoizes Route results as views into routeArena (index
	// i*len(nodes)+j). The arena is replaced — never truncated — on
	// rebuild, so previously handed-out route slices stay valid snapshots.
	routes     [][]int
	routeArena []int
	// routeHits/routeMisses count Route's memo outcomes over the network's
	// lifetime (cumulative across topology rebuilds). Plain integers rather
	// than a recorder hook: Route is a hot path and an increment is free,
	// so the observability layer reads them on demand instead of being
	// called per lookup.
	routeHits   uint64
	routeMisses uint64
}

// New builds a network from node positions; two live nodes are linked when
// within maxRange metres of each other. At AutoShardThreshold nodes and
// above it switches to the hierarchical sharded core (see shard.go), which
// answers the same queries exactly without dense N×N tables.
func New(positions []geom.Point, maxRange float64) *Network {
	if len(positions) >= AutoShardThreshold {
		return NewSharded(positions, maxRange, ShardOptions{})
	}
	if maxRange <= 0 {
		panic("wsn: non-positive range")
	}
	n := &Network{id: networkSeq.Add(1), maxRange: maxRange}
	for i, p := range positions {
		n.nodes = append(n.nodes, &Node{ID: i, Pos: p})
	}
	n.rebuild()
	return n
}

// NewGrid builds a rows×cols grid with the given spacing in metres and
// radio range 1.5×spacing. That range includes the four axial neighbours at
// 1×spacing and the four diagonal neighbours at √2·spacing ≈ 1.41·spacing,
// matching the mesh-like deployments of Fig. 8.
func NewGrid(rows, cols int, spacing float64) *Network {
	if rows <= 0 || cols <= 0 {
		panic("wsn: non-positive grid dims")
	}
	positions := make([]geom.Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			positions = append(positions, geom.Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return New(positions, 1.5*spacing)
}

// NumNodes returns the node count, including failed nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Node returns the node with the given id.
func (n *Network) Node(id int) *Node { return n.nodes[id] }

// Nodes returns all nodes. The slice must not be modified.
func (n *Network) Nodes() []*Node { return n.nodes }

// Live returns the ids of non-failed nodes.
func (n *Network) Live() []int {
	var out []int
	for _, nd := range n.nodes {
		if !nd.Failed {
			out = append(out, nd.ID)
		}
	}
	return out
}

// Fail marks a node as broken; it stops linking and forwarding. On the
// sharded core this is incremental: only the node's shard epoch (and the
// per-source overlay caches) are invalidated, never the whole table set.
func (n *Network) Fail(id int) {
	if !n.nodes[id].Failed {
		n.nodes[id].Failed = true
		n.epoch++
		if n.sh != nil {
			n.sh.flip(id, false)
		} else {
			n.dirty = true
		}
	}
}

// Recover brings a failed node back.
func (n *Network) Recover(id int) {
	if n.nodes[id].Failed {
		n.nodes[id].Failed = false
		n.epoch++
		if n.sh != nil {
			n.sh.flip(id, true)
		} else {
			n.dirty = true
		}
	}
}

// ID returns this network's process-unique identity: a monotonic counter
// assigned at construction and never reused, safe to key caches on where a
// raw pointer could alias a freed network's recycled address.
func (n *Network) ID() uint64 { return n.id }

// TopologyEpoch returns a counter that advances on every effective Fail or
// Recover. Two calls returning the same value bracket a window in which
// the connectivity graph — and therefore every hop count and route — was
// unchanged, so derived caches keyed on it stay coherent.
func (n *Network) TopologyEpoch() uint64 { return n.epoch }

func (n *Network) rebuild() {
	size := len(n.nodes)
	n.denseRebuilds++
	// First rebuild sizes the scratch; later rebuilds (topology flips)
	// reuse it. Safe because HopsTable and Neighbors hand out views that
	// are only valid until the next topology change — unlike Route's arena,
	// whose slices must survive rebuilds and therefore stay freshly
	// allocated (see below).
	if n.adj == nil {
		n.adj = make([][]int, size)
		flat := make([]int, 2*size*size)
		n.hopsBuf, n.nextBuf = flat[:size*size], flat[size*size:]
		n.hops = make([][]int, size)
		n.next = make([][]int, size)
		for s := 0; s < size; s++ {
			n.hops[s] = n.hopsBuf[s*size : (s+1)*size : (s+1)*size]
			n.next[s] = n.nextBuf[s*size : (s+1)*size : (s+1)*size]
		}
		n.queue = make([]int, 0, size)
		n.routes = make([][]int, size*size)
	}
	for i := 0; i < size; i++ {
		n.adj[i] = n.adj[i][:0]
		if n.nodes[i].Failed {
			continue
		}
		for j := 0; j < size; j++ {
			if i == j || n.nodes[j].Failed {
				continue
			}
			if n.linkExists(n.nodes[i], n.nodes[j]) {
				n.adj[i] = append(n.adj[i], j)
			}
		}
	}
	// BFS from every node for hop counts and first-hop routing.
	queue := n.queue
	for s := 0; s < size; s++ {
		h := n.hops[s]
		nx := n.next[s]
		for i := range h {
			h[i] = -1
			nx[i] = -1
		}
		if n.nodes[s].Failed {
			continue
		}
		h[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range n.adj[u] {
				if h[v] != -1 {
					continue
				}
				h[v] = h[u] + 1
				if u == s {
					nx[v] = v
				} else {
					nx[v] = nx[u]
				}
				queue = append(queue, v)
			}
		}
	}
	n.queue = queue[:0]
	// Reset the route memo. The arena is freshly allocated rather than
	// truncated: route slices handed out before the rebuild must keep
	// their contents.
	clear(n.routes)
	n.routeArena = nil
	n.dirty = false
}

func (n *Network) ensure() {
	if n.dirty {
		n.rebuild()
	}
}

// Linked reports whether i and j share a direct link. Adjacency rows are
// sorted ascending (the dense builder scans j ascending; CSR rows are
// sorted), so this is a binary search instead of the old linear scan —
// the difference matters in dense deployments where degree approaches N.
func (n *Network) Linked(i, j int) bool {
	if n.sh != nil {
		return n.sh.linked(i, j)
	}
	n.ensure()
	row := n.adj[i]
	k := sort.SearchInts(row, j)
	return k < len(row) && row[k] == j
}

// Neighbors returns the direct neighbours of i. The slice is shared with
// the network and valid until the next topology change; callers must treat
// it as read-only. On the sharded core it is allocated per call.
func (n *Network) Neighbors(i int) []int {
	if n.sh != nil {
		return n.sh.liveNeighbors(i, nil)
	}
	n.ensure()
	return n.adj[i]
}

// Hops returns the hop distance between i and j, or -1 if unreachable.
func (n *Network) Hops(i, j int) int {
	if n.sh != nil {
		return n.sh.hops(i, j)
	}
	n.ensure()
	return n.hops[i][j]
}

// HopsTable returns the full hop-distance matrix indexed [from][to], with
// -1 for unreachable pairs. The table is shared with the network and valid
// until the next topology change; callers must treat it as read-only.
// Sharded networks materialize the matrix on demand — at crowd scale that
// is quadratic, so scale-aware callers should use HopsRow or Hops instead.
func (n *Network) HopsTable() [][]int {
	if n.sh != nil {
		out := make([][]int, len(n.nodes))
		for i := range out {
			out[i] = n.sh.hopsRow(i)
		}
		return out
	}
	n.ensure()
	return n.hops
}

// HopsRow returns hop distances from src to every node (-1 unreachable).
// The row is shared and valid until the next topology change; callers must
// treat it as read-only. Unlike HopsTable this stays cheap on the sharded
// core: one per-source state serves the whole row.
func (n *Network) HopsRow(src int) []int {
	if n.sh != nil {
		return n.sh.hopsRow(src)
	}
	n.ensure()
	return n.hops[src]
}

// Route returns the node sequence from i to j inclusive. The slice is a
// memoized view shared by every caller asking for the same pair under the
// current topology; it must be treated as read-only.
func (n *Network) Route(i, j int) ([]int, error) {
	if n.sh != nil {
		return n.sh.route(i, j)
	}
	n.ensure()
	if n.hops[i][j] < 0 {
		return nil, fmt.Errorf("%w: %d -> %d", ErrUnreachable, i, j)
	}
	idx := i*len(n.nodes) + j
	if r := n.routes[idx]; r != nil {
		n.routeHits++
		return r, nil
	}
	n.routeMisses++
	start := len(n.routeArena)
	n.routeArena = append(n.routeArena, i)
	cur := i
	for cur != j {
		cur = n.next[cur][j]
		n.routeArena = append(n.routeArena, cur)
	}
	r := n.routeArena[start:len(n.routeArena):len(n.routeArena)]
	n.routes[idx] = r
	return r, nil
}

// RouteCacheStats returns the cumulative hit/miss counts of the route memo
// over the network's lifetime. A rebuild (Fail/Recover) empties the memo but
// keeps the counters, so the numbers describe every lookup the network ever
// served.
func (n *Network) RouteCacheStats() (hits, misses uint64) {
	return n.routeHits, n.routeMisses
}

// RouteCacheStats is defined below; RebuildStats complements it with how
// much routing state has been recomputed over the network's lifetime:
// full all-pairs (dense) or structural (sharded) builds, per-shard table
// builds, and per-source overlay builds. On the dense core only full moves;
// on the sharded core full stays at 1 — flips must never force another —
// while shard and overlay count the incremental repair work.
func (n *Network) RebuildStats() (full, shard, overlay uint64) {
	if n.sh != nil {
		return n.sh.fullBuilds, n.sh.shardBuilds, n.sh.overlayBuilds
	}
	return n.denseRebuilds, 0, 0
}

// Sharded reports whether this network runs on the hierarchical core.
func (n *Network) Sharded() bool { return n.sh != nil }

// NumShards returns the shard count (0 for dense networks).
func (n *Network) NumShards() int {
	if n.sh == nil {
		return 0
	}
	return len(n.sh.shards)
}

// ShardOf returns the shard index of a node, or -1 on dense networks.
func (n *Network) ShardOf(id int) int {
	if n.sh == nil {
		return -1
	}
	return int(n.sh.shardOf[id])
}

// ShardEpoch returns the given shard's epoch: it advances only when a node
// of that shard flips, so caches keyed on the epochs of the shards they
// touch survive unrelated churn (0 for dense networks).
func (n *Network) ShardEpoch(shard int) uint64 {
	if n.sh == nil {
		return 0
	}
	return n.sh.shards[shard].epoch
}

// RecoverGen advances on every effective Recover. Caches that key on
// touched-shard epochs must also key on this: a recovery can shorten routes
// in shards it does not belong to, whereas a Fail cannot (0 for dense
// networks, whose TopologyEpoch keying already covers both).
func (n *Network) RecoverGen() uint64 {
	if n.sh == nil {
		return 0
	}
	return n.sh.recoverGen
}

// Connected reports whether all live nodes form one component.
func (n *Network) Connected() bool {
	if n.sh != nil {
		return n.sh.connected()
	}
	n.ensure()
	live := n.Live()
	if len(live) <= 1 {
		return true
	}
	s := live[0]
	for _, v := range live[1:] {
		if n.hops[s][v] < 0 {
			return false
		}
	}
	return true
}

// Send transfers scalars values from node from to node to along the hop
// route, charging every transmitting node's TxScalars and every receiving
// node's RxScalars. Sending to self is free. It returns the number of hops
// used.
func (n *Network) Send(from, to, scalars int) (int, error) {
	if scalars < 0 {
		panic("wsn: negative scalar count")
	}
	if from == to || scalars == 0 {
		return 0, nil
	}
	route, err := n.Route(from, to)
	if err != nil {
		return 0, err
	}
	for k := 0; k+1 < len(route); k++ {
		n.nodes[route[k]].TxScalars += scalars
		n.nodes[route[k+1]].RxScalars += scalars
	}
	return len(route) - 1, nil
}

// ResetCounters zeroes all communication counters.
func (n *Network) ResetCounters() {
	for _, nd := range n.nodes {
		nd.TxScalars = 0
		nd.RxScalars = 0
	}
}

// Cost returns the node's communication cost: scalars transmitted plus
// scalars received. Sensor radios burn comparable energy in both
// directions, so the Fig. 10 "communication cost of a sensor node" counts
// all radio activity.
func (nd *Node) Cost() int { return nd.TxScalars + nd.RxScalars }

// Costs returns each node's communication cost (the Fig. 10 metric).
func (n *Network) Costs() []int {
	out := make([]int, len(n.nodes))
	for i, nd := range n.nodes {
		out[i] = nd.Cost()
	}
	return out
}

// MaxCost returns the maximum per-node communication cost.
func (n *Network) MaxCost() int {
	maxC := 0
	for _, nd := range n.nodes {
		if c := nd.Cost(); c > maxC {
			maxC = c
		}
	}
	return maxC
}

// TotalCost returns the sum of per-node communication costs.
func (n *Network) TotalCost() int {
	t := 0
	for _, nd := range n.nodes {
		t += nd.Cost()
	}
	return t
}

// LinkRSSI is one directed live-link measurement of ref. [66]'s inter-node
// RSSI: the dBm received at To from From. MeasureInterNode returns a slice
// with one entry per directed live link; non-links simply have no entry.
type LinkRSSI struct {
	From, To int
	DBm      float64
}

// MeasureInterNode returns one synchronized sweep of inter-node RSSI over
// all live links: txDBm through model, minus body attenuation for every
// person whose body (radius bodyR) cuts the line of sight.
func (n *Network) MeasureInterNode(model radio.LogDistance, txDBm float64, people []geom.Point, bodyR float64, stream *rng.Stream) []LinkRSSI {
	n.ensure()
	var out []LinkRSSI
	var scratch []int
	for i := range n.nodes {
		if n.nodes[i].Failed {
			continue
		}
		var nbrs []int
		if n.sh != nil {
			scratch = n.sh.liveNeighbors(i, scratch[:0])
			nbrs = scratch
		} else {
			nbrs = n.adj[i]
		}
		for _, j := range nbrs {
			rssi := model.RSSI(txDBm, 0, 0, geom.Dist(n.nodes[i].Pos, n.nodes[j].Pos), stream)
			rssi -= radio.ObstructionLossDB(n.nodes[i].Pos, n.nodes[j].Pos, people, bodyR)
			out = append(out, LinkRSSI{From: i, To: j, DBm: rssi})
		}
	}
	return out
}

// MeasureSurrounding returns, per live node, the aggregate power (dBm)
// received from external transmitters (e.g. the phones people carry) — the
// surrounding RSSI of ref. [66]. Nodes out of range of every device report
// the noise floor.
func (n *Network) MeasureSurrounding(model radio.LogDistance, deviceTxDBm float64, devices []geom.Point, noiseDBm float64, stream *rng.Stream) []float64 {
	out := make([]float64, len(n.nodes))
	for i, nd := range n.nodes {
		total := radio.DBmToMilliwatts(noiseDBm)
		if !nd.Failed {
			for _, d := range devices {
				rssi := model.RSSI(deviceTxDBm, 0, 0, geom.Dist(nd.Pos, d), stream)
				total += radio.DBmToMilliwatts(rssi)
			}
		}
		out[i] = radio.MilliwattsToDBm(total)
	}
	return out
}
