package wsn

import (
	"math"
	"testing"

	"zeiot/internal/geom"
)

// TestLinkFaultModelDeterminism replays an interleaved attempt sequence on
// two models built from the same config and requires identical outcomes —
// the property every reproducible loss sweep rests on — and checks that a
// different seed actually changes the sequence.
func TestLinkFaultModelDeterminism(t *testing.T) {
	cfg := FaultConfig{Seed: 42, DropProb: 0.3}
	attempts := func(m *LinkFaultModel) []bool {
		var out []bool
		for i := 0; i < 500; i++ {
			out = append(out, m.Attempt(i%4, (i+1)%4))
		}
		return out
	}
	a := attempts(NewLinkFaultModel(cfg))
	b := attempts(NewLinkFaultModel(cfg))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d differs between identically seeded models", i)
		}
	}

	m := NewLinkFaultModel(cfg)
	first := attempts(m)
	m.Reset()
	if m.Clock() != 0 {
		t.Fatalf("Reset left clock at %d", m.Clock())
	}
	second := attempts(m)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("attempt %d differs after Reset", i)
		}
	}

	other := attempts(NewLinkFaultModel(FaultConfig{Seed: 43, DropProb: 0.3}))
	same := 0
	for i := range a {
		if a[i] == other[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical outcome sequences")
	}
}

// TestLinkFaultModelRates checks the empirical loss rate of both channel
// flavours against the configured rate: i.i.d. drops directly, and the
// Gilbert-Elliott parameters of GilbertElliottFor, whose stationary rate is
// constructed to equal p.
func TestLinkFaultModelRates(t *testing.T) {
	const n = 20000
	for _, p := range []float64{0.05, 0.1, 0.2} {
		for _, burst := range []bool{false, true} {
			cfg := FaultConfig{Seed: 7}
			if burst {
				cfg.Burst = GilbertElliottFor(p)
			} else {
				cfg.DropProb = p
			}
			m := NewLinkFaultModel(cfg)
			lost := 0
			for i := 0; i < n; i++ {
				if !m.Attempt(0, 1) {
					lost++
				}
			}
			got := float64(lost) / n
			if math.Abs(got-p) > 0.02 {
				t.Errorf("p=%v burst=%v: empirical loss %.4f", p, burst, got)
			}
		}
	}
}

// TestBrownoutWindow verifies that attempts touching a browned-out node
// fail for exactly the configured tick window, on both link directions,
// and that the loss draws of later attempts are unperturbed by the window.
func TestBrownoutWindow(t *testing.T) {
	m := NewLinkFaultModel(FaultConfig{
		Seed:      1,
		Brownouts: []Brownout{{Node: 1, Start: 10, End: 20}},
	})
	for i := 0; i < 40; i++ {
		from, to := 0, 1
		if i%2 == 1 {
			from, to = 1, 2
		}
		got := m.Attempt(from, to)
		want := i < 10 || i >= 20 // DropProb 0: only the window loses
		if got != want {
			t.Fatalf("attempt %d (tick %d): delivered=%v, want %v", i, i, got, want)
		}
	}

	// A browned-out attempt consumes no loss draw, so after the window the
	// link's loss process resumes exactly where it would have started: the
	// brownout model's attempt 5+i matches the reference's attempt i.
	ref := NewLinkFaultModel(FaultConfig{Seed: 9, DropProb: 0.5})
	bo := NewLinkFaultModel(FaultConfig{Seed: 9, DropProb: 0.5,
		Brownouts: []Brownout{{Node: 0, Start: 0, End: 5}}})
	var refOut, boOut []bool
	for i := 0; i < 100; i++ {
		refOut = append(refOut, ref.Attempt(0, 1))
		boOut = append(boOut, bo.Attempt(0, 1))
	}
	for i := 5; i < 100; i++ {
		if boOut[i] != refOut[i-5] {
			t.Fatalf("post-window attempt %d does not resume the loss process", i)
		}
	}
}

// TestSendReliableNilModelMatchesSend requires the disabled fault layer to
// be a strict no-op: identical counters and hop counts as Send.
func TestSendReliableNilModelMatchesSend(t *testing.T) {
	a := NewGrid(4, 4, 1)
	b := NewGrid(4, 4, 1)
	for from := 0; from < a.NumNodes(); from++ {
		for to := 0; to < a.NumNodes(); to++ {
			hops, err := a.Send(from, to, 3)
			if err != nil {
				t.Fatal(err)
			}
			d, err := b.SendReliable(from, to, 3, nil, DefaultRetryPolicy())
			if err != nil {
				t.Fatal(err)
			}
			if !d.Delivered || d.Hops != hops || d.Retries != 0 || d.BackoffSlots != 0 {
				t.Fatalf("%d->%d: delivery %+v, Send hops %d", from, to, d, hops)
			}
		}
	}
	for i := range a.Nodes() {
		na, nb := a.Node(i), b.Node(i)
		if na.TxScalars != nb.TxScalars || na.RxScalars != nb.RxScalars {
			t.Fatalf("node %d counters diverge: Send %d/%d, SendReliable %d/%d",
				i, na.TxScalars, na.RxScalars, nb.TxScalars, nb.RxScalars)
		}
	}
}

// TestSendReliableChargesRetries pins the retry accounting on a single
// always-lossy hop: every attempt charges the transmitter, the receiver is
// never charged, and the backoff doubles up to its cap.
func TestSendReliableChargesRetries(t *testing.T) {
	n := NewGrid(1, 2, 1)
	m := NewLinkFaultModel(FaultConfig{Seed: 3, DropProb: 1})
	rp := RetryPolicy{MaxRetries: 4, BackoffBase: 1, BackoffCap: 4}
	d, err := n.SendReliable(0, 1, 10, m, rp)
	if err != nil {
		t.Fatal(err)
	}
	if d.Delivered {
		t.Fatal("delivered through a DropProb=1 link")
	}
	if d.Attempts != 5 || d.Retries != 4 {
		t.Fatalf("attempts/retries = %d/%d, want 5/4", d.Attempts, d.Retries)
	}
	// Backoff after failed attempts 0..3 (none after the final attempt):
	// 1 + 2 + 4 + 4(capped) = 11 slots.
	if d.BackoffSlots != 11 {
		t.Fatalf("backoff slots = %d, want 11", d.BackoffSlots)
	}
	if tx := n.Node(0).TxScalars; tx != 50 {
		t.Fatalf("transmitter charged %d scalars, want 5 attempts × 10 = 50", tx)
	}
	if rx := n.Node(1).RxScalars; rx != 0 {
		t.Fatalf("receiver charged %d scalars for zero deliveries", rx)
	}

	// A lossless model delivers first try with Send-equal charges.
	n2 := NewGrid(1, 2, 1)
	d, err = n2.SendReliable(0, 1, 10, NewLinkFaultModel(FaultConfig{Seed: 3}), rp)
	if err != nil || !d.Delivered || d.Attempts != 1 {
		t.Fatalf("lossless delivery = %+v, err %v", d, err)
	}
	if n2.Node(0).TxScalars != 10 || n2.Node(1).RxScalars != 10 {
		t.Fatalf("lossless charges %d/%d, want 10/10", n2.Node(0).TxScalars, n2.Node(1).RxScalars)
	}
}

// TestSendReliableRetryPolicyClamp pins the attempt and energy accounting
// at MaxRetries ∈ {-1, 0, 1}. The regression: a negative MaxRetries used to
// skip the attempt loop entirely, returning Delivered=false with zero Tx
// charged — silently wrong energy bookkeeping that also contradicted the
// "0 disables retries" doc. Negatives now clamp to 0, so -1 and 0 behave
// identically: exactly one attempt, charged.
func TestSendReliableRetryPolicyClamp(t *testing.T) {
	cases := []struct {
		maxRetries   int
		wantAttempts int
	}{
		{-1, 1},
		{0, 1},
		{1, 2},
	}
	for _, tc := range cases {
		// Always-lossy link: every allowed attempt runs and fails.
		n := NewGrid(1, 2, 1)
		m := NewLinkFaultModel(FaultConfig{Seed: 9, DropProb: 1})
		d, err := n.SendReliable(0, 1, 10, m, RetryPolicy{MaxRetries: tc.maxRetries, BackoffBase: 1})
		if err != nil {
			t.Fatal(err)
		}
		if d.Delivered {
			t.Fatalf("MaxRetries %d: delivered through a DropProb=1 link", tc.maxRetries)
		}
		if d.Attempts != tc.wantAttempts || d.Retries != tc.wantAttempts-1 {
			t.Errorf("MaxRetries %d: attempts/retries = %d/%d, want %d/%d",
				tc.maxRetries, d.Attempts, d.Retries, tc.wantAttempts, tc.wantAttempts-1)
		}
		if tx := n.Node(0).TxScalars; tx != 10*tc.wantAttempts {
			t.Errorf("MaxRetries %d: transmitter charged %d scalars, want %d attempts × 10 = %d",
				tc.maxRetries, tx, tc.wantAttempts, 10*tc.wantAttempts)
		}
		if rx := n.Node(1).RxScalars; rx != 0 {
			t.Errorf("MaxRetries %d: receiver charged %d scalars for zero deliveries", tc.maxRetries, rx)
		}

		// Lossless link: every policy delivers on the first attempt with
		// Send-equal charges, negatives included.
		n2 := NewGrid(1, 2, 1)
		d, err = n2.SendReliable(0, 1, 10, NewLinkFaultModel(FaultConfig{Seed: 9}), RetryPolicy{MaxRetries: tc.maxRetries})
		if err != nil || !d.Delivered || d.Attempts != 1 {
			t.Fatalf("MaxRetries %d lossless: delivery %+v, err %v", tc.maxRetries, d, err)
		}
		if n2.Node(0).TxScalars != 10 || n2.Node(1).RxScalars != 10 {
			t.Errorf("MaxRetries %d lossless: charges %d/%d, want 10/10",
				tc.maxRetries, n2.Node(0).TxScalars, n2.Node(1).RxScalars)
		}
	}
}

// TestSendReliableMultiHop checks that a mid-route retry exhaustion keeps
// the upstream charges (the energy was spent) and reports the partial hop
// count.
func TestSendReliableMultiHop(t *testing.T) {
	n := NewGrid(1, 3, 1) // 0 - 1 - 2 chain
	// Brownout node 2 forever: hop 0→1 succeeds, hop 1→2 exhausts retries.
	m := NewLinkFaultModel(FaultConfig{
		Seed:      5,
		Brownouts: []Brownout{{Node: 2, Start: 0, End: math.MaxUint64}},
	})
	rp := RetryPolicy{MaxRetries: 2, BackoffBase: 1, BackoffCap: 8}
	d, err := n.SendReliable(0, 2, 4, m, rp)
	if err != nil {
		t.Fatal(err)
	}
	if d.Delivered || d.Hops != 1 {
		t.Fatalf("delivery %+v, want undelivered after 1 hop", d)
	}
	if d.Attempts != 1+3 {
		t.Fatalf("attempts = %d, want 1 (hop ok) + 3 (exhausted)", d.Attempts)
	}
	if n.Node(0).TxScalars != 4 || n.Node(1).RxScalars != 4 {
		t.Fatalf("first hop charges %d/%d, want 4/4", n.Node(0).TxScalars, n.Node(1).RxScalars)
	}
	if n.Node(1).TxScalars != 12 || n.Node(2).RxScalars != 0 {
		t.Fatalf("second hop charges %d tx / %d rx, want 12/0", n.Node(1).TxScalars, n.Node(2).RxScalars)
	}
}

// TestNetworkIDUnique guards the cache-identity contract: every
// constructed network — either constructor — gets a fresh, nonzero ID.
func TestNetworkIDUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		var n *Network
		if i%2 == 0 {
			n = NewGrid(2, 2, 1)
		} else {
			var pos []geom.Point
			for _, nd := range NewGrid(2, 2, 1).Nodes() {
				pos = append(pos, nd.Pos)
			}
			n = NewFromRadioPlan(pos, DefaultRadioPlan())
		}
		id := n.ID()
		if id == 0 || seen[id] {
			t.Fatalf("network %d: id %d (zero or reused)", i, id)
		}
		seen[id] = true
	}
}

// TestBrownoutWindowEdges pins the half-open [Start, End) semantics at its
// edges: an empty window (End == Start) never fires, adjacent windows cover
// a contiguous outage with no gap and no double-counted boundary tick, and
// End itself is always powered.
func TestBrownoutWindowEdges(t *testing.T) {
	m := NewLinkFaultModel(FaultConfig{
		Seed: 3,
		Brownouts: []Brownout{
			{Node: 0, Start: 5, End: 5},   // empty: must never fire
			{Node: 1, Start: 10, End: 15}, // adjacent pair: contiguous [10, 20)
			{Node: 1, Start: 15, End: 20},
		},
	})
	for tick := uint64(0); tick < 30; tick++ {
		if m.BrownedOut(0, tick) {
			t.Fatalf("empty window fired at tick %d", tick)
		}
		want := tick >= 10 && tick < 20
		if got := m.BrownedOut(1, tick); got != want {
			t.Fatalf("adjacent windows: BrownedOut(1, %d) = %v, want %v", tick, got, want)
		}
	}

	// The same edges drive Attempt: with DropProb 0, only ticks in [10, 20)
	// fail, and the boundary ticks 9 and 20 deliver.
	for tick := uint64(0); tick < 30; tick++ {
		got := m.Attempt(1, 2)
		want := tick < 10 || tick >= 20
		if got != want {
			t.Fatalf("Attempt at tick %d: delivered=%v, want %v", tick, got, want)
		}
	}
}

// TestAddBrownout checks windows registered after construction behave
// identically to configured ones — the path the harvest runtime uses — and
// that draw preservation holds: an added window fails attempts without
// consuming loss draws.
func TestAddBrownout(t *testing.T) {
	ref := NewLinkFaultModel(FaultConfig{Seed: 17, DropProb: 0.5})
	m := NewLinkFaultModel(FaultConfig{Seed: 17, DropProb: 0.5})
	m.AddBrownout(Brownout{Node: 4, Start: 0, End: 7})
	m.AddBrownout(Brownout{Node: 4, Start: 9, End: 9}) // empty: inert

	if !m.BrownedOut(4, 6) || m.BrownedOut(4, 7) || m.BrownedOut(4, 9) {
		t.Fatal("AddBrownout window boundaries wrong")
	}
	if m.BrownedOut(5, 3) {
		t.Fatal("AddBrownout leaked onto another node")
	}

	var refOut, out []bool
	for i := 0; i < 60; i++ {
		refOut = append(refOut, ref.Attempt(4, 5))
		out = append(out, m.Attempt(4, 5))
	}
	for i := 0; i < 7; i++ {
		if out[i] {
			t.Fatalf("attempt %d inside added window delivered", i)
		}
	}
	for i := 7; i < 60; i++ {
		if out[i] != refOut[i-7] {
			t.Fatalf("attempt %d after added window does not resume the loss process", i)
		}
	}
}
