package wsn

import (
	"errors"
	"testing"
	"testing/quick"

	"zeiot/internal/geom"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
)

func TestGridConnectivity(t *testing.T) {
	n := NewGrid(3, 4, 1)
	if n.NumNodes() != 12 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
	if !n.Connected() {
		t.Fatal("grid not connected")
	}
	// Axial neighbours linked; diagonals too (dist √2 < 1.5).
	if !n.Linked(0, 1) || !n.Linked(0, 4) || !n.Linked(0, 5) {
		t.Fatal("expected links missing")
	}
	// Distance-2 nodes not linked.
	if n.Linked(0, 2) {
		t.Fatal("unexpected long link")
	}
}

func TestHopsMetricProperties(t *testing.T) {
	n := NewGrid(4, 4, 1)
	// Symmetry and triangle inequality on a sample of triples.
	err := quick.Check(func(a, b, c uint8) bool {
		i, j, k := int(a)%16, int(b)%16, int(c)%16
		if n.Hops(i, j) != n.Hops(j, i) {
			return false
		}
		return n.Hops(i, k) <= n.Hops(i, j)+n.Hops(j, k)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Hops(0, 0) != 0 {
		t.Fatal("self distance != 0")
	}
	// Corner to corner on 4x4 with diagonal links: 3 hops.
	if n.Hops(0, 15) != 3 {
		t.Fatalf("corner-corner hops = %d", n.Hops(0, 15))
	}
}

func TestRouteValidity(t *testing.T) {
	n := NewGrid(4, 4, 1)
	route, err := n.Route(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if route[0] != 0 || route[len(route)-1] != 15 {
		t.Fatalf("route endpoints %v", route)
	}
	if len(route)-1 != n.Hops(0, 15) {
		t.Fatalf("route length %d != hops %d", len(route)-1, n.Hops(0, 15))
	}
	for k := 0; k+1 < len(route); k++ {
		if !n.Linked(route[k], route[k+1]) {
			t.Fatalf("route uses non-link %d-%d", route[k], route[k+1])
		}
	}
}

func TestSendChargesRoute(t *testing.T) {
	n := NewGrid(1, 4, 1) // chain with range 1.5: links 0-1,1-2,2-3 only
	hops, err := n.Send(0, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if hops != 3 {
		t.Fatalf("hops = %d", hops)
	}
	// 0 and the two forwarders each transmit 10 scalars.
	if n.Node(0).TxScalars != 10 || n.Node(1).TxScalars != 10 || n.Node(2).TxScalars != 10 {
		t.Fatalf("tx costs = %v", n.Costs())
	}
	if n.Node(3).TxScalars != 0 {
		t.Fatal("destination charged for transmit")
	}
	if n.Node(3).RxScalars != 10 || n.Node(1).RxScalars != 10 {
		t.Fatal("rx accounting wrong")
	}
	// Cost = tx + rx: endpoints 10 each, forwarders 20 each.
	if n.Node(0).Cost() != 10 || n.Node(1).Cost() != 20 || n.Node(3).Cost() != 10 {
		t.Fatalf("costs = %v", n.Costs())
	}
	if n.TotalCost() != 60 || n.MaxCost() != 20 {
		t.Fatalf("TotalCost=%d MaxCost=%d", n.TotalCost(), n.MaxCost())
	}
}

func TestSendToSelfFree(t *testing.T) {
	n := NewGrid(2, 2, 1)
	hops, err := n.Send(1, 1, 100)
	if err != nil || hops != 0 {
		t.Fatalf("self send: hops=%d err=%v", hops, err)
	}
	if n.TotalCost() != 0 {
		t.Fatal("self send charged")
	}
}

func TestResetCounters(t *testing.T) {
	n := NewGrid(1, 3, 1)
	if _, err := n.Send(0, 2, 5); err != nil {
		t.Fatal(err)
	}
	n.ResetCounters()
	if n.TotalCost() != 0 {
		t.Fatal("counters not reset")
	}
}

func TestFailureReroutesAndPartitions(t *testing.T) {
	// 3x3 grid: failing the whole middle column except via diagonals...
	// Use a 1x5 chain: failing node 2 partitions it.
	n := NewGrid(1, 5, 1)
	if n.Hops(0, 4) != 4 {
		t.Fatalf("chain hops = %d", n.Hops(0, 4))
	}
	n.Fail(2)
	if n.Connected() {
		t.Fatal("chain still connected after cutting middle")
	}
	if _, err := n.Send(0, 4, 1); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	n.Recover(2)
	if !n.Connected() {
		t.Fatal("recover did not restore connectivity")
	}
	if _, err := n.Send(0, 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFailureReroutesAroundNode(t *testing.T) {
	n := NewGrid(3, 3, 1)
	n.Fail(4)                   // centre
	route, err := n.Route(3, 5) // left-middle to right-middle
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range route {
		if v == 4 {
			t.Fatal("route passes through failed node")
		}
	}
}

func TestLiveExcludesFailed(t *testing.T) {
	n := NewGrid(2, 2, 1)
	n.Fail(3)
	live := n.Live()
	if len(live) != 3 {
		t.Fatalf("live = %v", live)
	}
	for _, id := range live {
		if id == 3 {
			t.Fatal("failed node listed live")
		}
	}
}

func TestMeasureInterNodeDetectsBlockingPerson(t *testing.T) {
	n := NewGrid(1, 2, 2) // two nodes 2 m apart
	model := radio.LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2.5}
	clear := n.MeasureInterNode(model, 0, nil, 0.3, nil)
	person := []geom.Point{{X: 1, Y: 0}}
	blocked := n.MeasureInterNode(model, 0, person, 0.3, nil)
	if len(clear) != 2 || len(blocked) != 2 {
		t.Fatalf("link counts: %d, %d", len(clear), len(blocked))
	}
	drop := clear[0].DBm - blocked[0].DBm
	if drop != radio.BodyAttenuationDB {
		t.Fatalf("body drop = %v dB", drop)
	}
}

func TestMeasureSurroundingScalesWithDevices(t *testing.T) {
	n := NewGrid(1, 1, 1)
	model := radio.LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2.5}
	noise := -95.0
	none := n.MeasureSurrounding(model, 10, nil, noise, nil)
	if none[0] != noise {
		t.Fatalf("no devices: %v, want noise floor", none[0])
	}
	one := n.MeasureSurrounding(model, 10, []geom.Point{{X: 2, Y: 0}}, noise, nil)
	two := n.MeasureSurrounding(model, 10, []geom.Point{{X: 2, Y: 0}, {X: 0, Y: 2}}, noise, nil)
	if !(two[0] > one[0] && one[0] > none[0]) {
		t.Fatalf("surrounding RSSI not increasing: %v %v %v", none[0], one[0], two[0])
	}
}

func TestFailedNodeMeasuresNothing(t *testing.T) {
	n := NewGrid(1, 2, 2)
	n.Fail(0)
	model := radio.LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2.5}
	links := n.MeasureInterNode(model, 0, nil, 0.3, nil)
	if len(links) != 0 {
		t.Fatalf("failed-node links measured: %v", links)
	}
	sur := n.MeasureSurrounding(model, 10, []geom.Point{{X: 1, Y: 0}}, -95, nil)
	if sur[0] != -95 {
		t.Fatal("failed node reported device power")
	}
}

func TestDeterministicMeasurementWithSeed(t *testing.T) {
	n := NewGrid(2, 2, 1)
	model := radio.Indoor24GHz()
	a := n.MeasureInterNode(model, 0, nil, 0.3, rng.New(5))
	b := n.MeasureInterNode(model, 0, nil, 0.3, rng.New(5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different measurements")
		}
	}
}
