package wsn

import (
	"fmt"
	"math"

	"zeiot/internal/geom"
	"zeiot/internal/radio"
)

// Wall is a static obstacle (partition, shelving, concrete) that
// attenuates every radio link crossing it. Walls are the "3D map and
// obstacle information" input of the paper's §V design-support challenge,
// reduced to the 2-D plane the simulators use.
type Wall struct {
	A, B   geom.Point
	LossDB float64
}

// RadioPlan derives link existence from a propagation model instead of a
// fixed range: a link exists when the deterministic received power — path
// loss plus the losses of every wall the link crosses, minus a fade margin
// — stays above the receiver sensitivity.
type RadioPlan struct {
	Model radio.LogDistance
	// TxDBm is the node transmit power; SensitivityDBm the receive
	// threshold; FadeMarginDB headroom for shadowing/fading.
	TxDBm          float64
	SensitivityDBm float64
	FadeMarginDB   float64
	Walls          []Wall
}

// DefaultRadioPlan returns a 0 dBm / −90 dBm ZigBee-class plan with a
// 10 dB fade margin and no walls.
func DefaultRadioPlan() RadioPlan {
	return RadioPlan{
		Model:          radio.LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2.8},
		TxDBm:          0,
		SensitivityDBm: -90,
		FadeMarginDB:   10,
	}
}

// LinkBudgetDBm returns the deterministic received power of the a→b link,
// wall losses included.
func (p RadioPlan) LinkBudgetDBm(a, b geom.Point) float64 {
	rssi := p.TxDBm - p.Model.PathLossDB(geom.Dist(a, b))
	for _, wall := range p.Walls {
		if geom.SegmentsIntersect(a, b, wall.A, wall.B) {
			rssi -= wall.LossDB
		}
	}
	return rssi
}

// Usable reports whether the a→b link closes with the fade margin.
func (p RadioPlan) Usable(a, b geom.Point) bool {
	return p.LinkBudgetDBm(a, b) >= p.SensitivityDBm+p.FadeMarginDB
}

// NewFromRadioPlan builds a network whose links are exactly the usable
// ones under the plan — the automated network-construction step of the
// design-support environment. At AutoShardThreshold nodes and above it
// switches to the hierarchical sharded core.
func NewFromRadioPlan(positions []geom.Point, plan RadioPlan) *Network {
	if len(positions) >= AutoShardThreshold {
		return NewShardedFromRadioPlan(positions, plan, ShardOptions{})
	}
	n := &Network{id: networkSeq.Add(1), maxRange: -1, plan: &plan}
	for i, p := range positions {
		n.nodes = append(n.nodes, &Node{ID: i, Pos: p})
	}
	n.rebuild()
	return n
}

// linkExists is the connectivity predicate shared by rebuild.
func (n *Network) linkExists(a, b *Node) bool {
	if n.plan != nil {
		return n.plan.Usable(a.Pos, b.Pos)
	}
	return geom.Dist(a.Pos, b.Pos) <= n.maxRange
}

// SuggestRelays proposes relay positions that reconnect a partitioned
// deployment under the plan: while more than one component exists, it
// places a relay at the midpoint of the closest inter-component node pair
// (walking the midpoint toward whichever side it cannot reach until both
// links close), up to maxRelays. It returns the relay positions and the
// repaired network, or an error when the gap cannot be bridged within the
// budget — the automated "recovery method" step of the paper's §V
// design-support loop.
func SuggestRelays(positions []geom.Point, plan RadioPlan, maxRelays int) ([]geom.Point, *Network, error) {
	all := append([]geom.Point(nil), positions...)
	var relays []geom.Point
	for len(relays) <= maxRelays {
		net := NewFromRadioPlan(all, plan)
		comp := components(net)
		if comp <= 1 {
			return relays, net, nil
		}
		if len(relays) == maxRelays {
			break
		}
		a, b, found := closestCrossPair(net)
		if !found {
			break
		}
		// Scan candidate positions along the a→b segment. A spot reaching
		// both sides wins outright; otherwise take the spot reaching one
		// side that pushes farthest into the gap (so wide gaps bridge by
		// chaining relays across iterations).
		at := func(t float64) geom.Point {
			return geom.Point{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}
		}
		var best geom.Point
		bestScore := 0
		bestReach := -1.0
		for i := 1; i < 40; i++ {
			t := float64(i) / 40
			cand := at(t)
			fromA := plan.Usable(cand, a)
			fromB := plan.Usable(cand, b)
			switch {
			case fromA && fromB:
				best, bestScore = cand, 2
			case bestScore == 2:
				// keep the both-sides winner
			case fromA && t > bestReach:
				best, bestScore, bestReach = cand, 1, t
			case fromB && (1-t) > bestReach:
				best, bestScore, bestReach = cand, 1, 1-t
			}
			if bestScore == 2 {
				break
			}
		}
		if bestScore == 0 {
			return relays, nil, fmt.Errorf("wsn: no relay position reaches either side of the gap")
		}
		relays = append(relays, best)
		all = append(all, best)
	}
	return relays, nil, fmt.Errorf("wsn: still partitioned after %d relays", maxRelays)
}

// components counts connected components over live nodes.
func components(n *Network) int {
	n.ensure()
	seen := make(map[int]bool)
	count := 0
	for _, id := range n.Live() {
		if seen[id] {
			continue
		}
		count++
		stack := []int{id}
		seen[id] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range n.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return count
}

// closestCrossPair returns the closest pair of live nodes in different
// components.
func closestCrossPair(n *Network) (a, b geom.Point, found bool) {
	live := n.Live()
	bestD := math.Inf(1)
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			u, v := live[i], live[j]
			if n.Hops(u, v) >= 0 {
				continue // same component
			}
			d := geom.Dist(n.Node(u).Pos, n.Node(v).Pos)
			if d < bestD {
				bestD = d
				a, b = n.Node(u).Pos, n.Node(v).Pos
				found = true
			}
		}
	}
	return a, b, found
}
