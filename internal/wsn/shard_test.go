package wsn

import (
	"testing"

	"zeiot/internal/geom"
	"zeiot/internal/rng"
)

// checkShardedMatchesDense asserts, for every (i, j) pair, that the sharded
// network's hop distances equal the dense reference's, and that sharded
// routes are valid shortest paths (endpoints, length == hops, consecutive
// structural links, no failed nodes). Route node sequences are not compared
// byte-for-byte: multiple shortest paths can exist and the two cores break
// ties differently — the metric, not the tie-break, is the contract.
func checkShardedMatchesDense(t *testing.T, sharded, dense *Network, tag string) {
	t.Helper()
	size := dense.NumNodes()
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			want := dense.Hops(i, j)
			got := sharded.Hops(i, j)
			if got != want {
				t.Fatalf("%s: Hops(%d,%d) = %d, dense = %d", tag, i, j, got, want)
			}
			if want < 0 {
				if _, err := sharded.Route(i, j); err == nil {
					t.Fatalf("%s: Route(%d,%d) succeeded on unreachable pair", tag, i, j)
				}
				continue
			}
			route, err := sharded.Route(i, j)
			if err != nil {
				t.Fatalf("%s: Route(%d,%d): %v", tag, i, j, err)
			}
			if route[0] != i || route[len(route)-1] != j {
				t.Fatalf("%s: Route(%d,%d) endpoints %v", tag, i, j, route)
			}
			if len(route)-1 != want {
				t.Fatalf("%s: Route(%d,%d) length %d != hops %d (%v)", tag, i, j, len(route)-1, want, route)
			}
			for k, v := range route {
				if sharded.Node(v).Failed {
					t.Fatalf("%s: Route(%d,%d) passes failed node %d", tag, i, j, v)
				}
				if k > 0 && !dense.Linked(route[k-1], v) {
					t.Fatalf("%s: Route(%d,%d) uses non-link %d-%d", tag, i, j, route[k-1], v)
				}
			}
		}
	}
}

// shardedDensePair builds the same random deployment on both cores. Small
// shard targets force several shards even at test sizes.
func shardedDensePair(seed uint64, nodes int, area, maxRange float64) (*Network, *Network) {
	s := rng.New(seed)
	positions := make([]geom.Point, nodes)
	for i := range positions {
		positions[i] = geom.Point{X: s.Float64() * area, Y: s.Float64() * area}
	}
	sharded := NewSharded(positions, maxRange, ShardOptions{TargetShardSize: 8})
	dense := New(positions, maxRange)
	return sharded, dense
}

// TestShardedMatchesDenseUnderChurn is the PR 7 incremental-repair property
// test: random Fail/Recover sequences, full pairwise agreement with a dense
// reference at every step. Run under -race by ci.sh.
func TestShardedMatchesDenseUnderChurn(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		sharded, dense := shardedDensePair(seed, 60, 12, 2.4)
		checkShardedMatchesDense(t, sharded, dense, "initial")
		churn := rng.New(seed).Split("churn")
		var failed []int
		for step := 0; step < 25; step++ {
			if len(failed) > 0 && churn.Float64() < 0.4 {
				k := churn.Intn(len(failed))
				id := failed[k]
				failed = append(failed[:k], failed[k+1:]...)
				sharded.Recover(id)
				dense.Recover(id)
			} else {
				id := churn.Intn(sharded.NumNodes())
				if !sharded.Node(id).Failed {
					failed = append(failed, id)
				}
				sharded.Fail(id)
				dense.Fail(id)
			}
			checkShardedMatchesDense(t, sharded, dense, "churn step")
		}
	}
}

// TestShardedGridMatchesDense covers the regular-grid geometry the
// experiments use (diagonal links, corner cases of the tiling).
func TestShardedGridMatchesDense(t *testing.T) {
	sharded := NewGridSharded(7, 9, 1, ShardOptions{TargetShardSize: 8})
	dense := NewGrid(7, 9, 1)
	checkShardedMatchesDense(t, sharded, dense, "grid")
	for _, id := range []int{0, 31, 32, 40, 62} {
		sharded.Fail(id)
		dense.Fail(id)
	}
	checkShardedMatchesDense(t, sharded, dense, "grid after fails")
	sharded.Recover(32)
	dense.Recover(32)
	checkShardedMatchesDense(t, sharded, dense, "grid after recover")
}

// FuzzShardedChurn drives arbitrary flip sequences from fuzz input bytes:
// each byte flips node b % N (Fail if live, Recover if failed), checking a
// sample of pairs against the dense reference after every flip.
func FuzzShardedChurn(f *testing.F) {
	f.Add([]byte{3, 17, 3, 40, 41, 42, 17})
	f.Add([]byte{0, 0, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, flips []byte) {
		if len(flips) > 64 {
			flips = flips[:64]
		}
		sharded, dense := shardedDensePair(7, 48, 10, 2.2)
		size := dense.NumNodes()
		for _, b := range flips {
			id := int(b) % size
			if sharded.Node(id).Failed {
				sharded.Recover(id)
				dense.Recover(id)
			} else {
				sharded.Fail(id)
				dense.Fail(id)
			}
			for p := 0; p < size; p += 5 {
				q := (p*13 + int(b)) % size
				if got, want := sharded.Hops(p, q), dense.Hops(p, q); got != want {
					t.Fatalf("Hops(%d,%d) = %d, dense = %d", p, q, got, want)
				}
			}
		}
		checkShardedMatchesDense(t, sharded, dense, "final")
	})
}

// TestShardedIncrementalRepair verifies the PR 7 repair contract directly:
// flips never trigger another full structural build, only the flipped
// node's shard epoch moves, and unrelated shards' tables are not rebuilt.
func TestShardedIncrementalRepair(t *testing.T) {
	n := NewGridSharded(20, 20, 1, ShardOptions{TargetShardSize: 25})
	if !n.Sharded() {
		t.Fatal("expected sharded core")
	}
	// Warm every shard's tables and the corner source's overlay state.
	n.HopsRow(0)
	full0, shard0, _ := n.RebuildStats()
	if full0 != 1 {
		t.Fatalf("full builds after warm-up = %d, want 1", full0)
	}
	if shard0 == 0 {
		t.Fatal("warm-up built no shard tables")
	}
	victim := 399 // opposite corner from source 0
	vs := n.ShardOf(victim)
	epochs := make([]uint64, n.NumShards())
	for s := range epochs {
		epochs[s] = n.ShardEpoch(s)
	}
	n.Fail(victim)
	for s := range epochs {
		want := epochs[s]
		if s == vs {
			want++
		}
		if got := n.ShardEpoch(s); got != want {
			t.Fatalf("shard %d epoch = %d, want %d", s, got, want)
		}
	}
	if n.RecoverGen() != 0 {
		t.Fatalf("RecoverGen moved on Fail")
	}
	// Re-query: only the victim's shard may rebuild its tables (the
	// overlay re-runs, but per-shard work is bounded to the touched shard).
	_, sBefore, _ := n.RebuildStats()
	n.HopsRow(0)
	full1, sAfter, _ := n.RebuildStats()
	if full1 != 1 {
		t.Fatalf("flip triggered a full rebuild (full = %d)", full1)
	}
	if rebuilt := sAfter - sBefore; rebuilt != 1 {
		t.Fatalf("flip rebuilt %d shard tables, want 1", rebuilt)
	}
	n.Recover(victim)
	if n.RecoverGen() != 1 {
		t.Fatalf("RecoverGen = %d after Recover, want 1", n.RecoverGen())
	}
}

// TestShardedRouteMemoSurvivesUnrelatedFail pins the cache-survival
// property the plan cache builds on: a Fail in a shard a memoized route
// never touches must not evict it (a Recover must, anywhere).
func TestShardedRouteMemoSurvivesUnrelatedFail(t *testing.T) {
	n := NewGridSharded(20, 20, 1, ShardOptions{TargetShardSize: 25})
	// Route along the top edge; churn the bottom-right corner.
	if _, err := n.Route(0, 19); err != nil {
		t.Fatal(err)
	}
	hits0, miss0 := n.RouteCacheStats()
	n.Fail(399)
	if _, err := n.Route(0, 19); err != nil {
		t.Fatal(err)
	}
	hits1, miss1 := n.RouteCacheStats()
	if hits1 != hits0+1 || miss1 != miss0 {
		t.Fatalf("unrelated Fail evicted route memo: hits %d→%d misses %d→%d", hits0, hits1, miss0, miss1)
	}
	n.Recover(399)
	if _, err := n.Route(0, 19); err != nil {
		t.Fatal(err)
	}
	hits2, miss2 := n.RouteCacheStats()
	if miss2 != miss1+1 {
		t.Fatalf("Recover did not invalidate route memo: hits %d→%d misses %d→%d", hits1, hits2, miss1, miss2)
	}
}

// TestAutoShardThreshold pins the facade contract: experiment-scale
// networks stay dense (byte-identical results), crowd-scale ones shard.
func TestAutoShardThreshold(t *testing.T) {
	if NewGrid(5, 10, 1).Sharded() {
		t.Fatal("small grid sharded; experiment results would change")
	}
	positions := make([]geom.Point, AutoShardThreshold)
	for i := range positions {
		positions[i] = geom.Point{X: float64(i % 64), Y: float64(i / 64)}
	}
	if !New(positions, 1.5).Sharded() {
		t.Fatal("threshold-size network not sharded")
	}
	if !NewFromRadioPlan(positions, DefaultRadioPlan()).Sharded() {
		t.Fatal("threshold-size radio-plan network not sharded")
	}
}

// TestRebuildSteadyStateAllocFree pins the rebuild() scratch reuse: after
// the first build sizes the buffers, topology flips must rebuild the dense
// tables without allocating.
func TestRebuildSteadyStateAllocFree(t *testing.T) {
	n := NewGrid(8, 8, 1)
	// Warm: first rebuild allocates the scratch, the flip cycle below
	// re-sizes adjacency rows to their steady-state capacities.
	n.Fail(9)
	_ = n.Hops(0, 63)
	n.Recover(9)
	_ = n.Hops(0, 63)
	allocs := testing.AllocsPerRun(20, func() {
		n.Fail(9)
		_ = n.Hops(0, 63)
		n.Recover(9)
		_ = n.Hops(0, 63)
	})
	if allocs != 0 {
		t.Fatalf("steady-state rebuild allocates %.1f objects/cycle, want 0", allocs)
	}
}

// TestShardedSendMatchesDenseCharges checks the facade end-to-end: Send on
// the sharded core charges the same totals as dense (route lengths agree
// even when the chosen shortest paths differ).
func TestShardedSendMatchesDenseCharges(t *testing.T) {
	sharded := NewGridSharded(6, 6, 1, ShardOptions{TargetShardSize: 9})
	dense := NewGrid(6, 6, 1)
	for _, pair := range [][2]int{{0, 35}, {5, 30}, {14, 21}} {
		sh, err := sharded.Send(pair[0], pair[1], 7)
		if err != nil {
			t.Fatal(err)
		}
		dh, err := dense.Send(pair[0], pair[1], 7)
		if err != nil {
			t.Fatal(err)
		}
		if sh != dh {
			t.Fatalf("Send(%v) hops sharded %d dense %d", pair, sh, dh)
		}
	}
	if sharded.TotalCost() != dense.TotalCost() {
		t.Fatalf("TotalCost sharded %d dense %d", sharded.TotalCost(), dense.TotalCost())
	}
}
