package wsn

import (
	"math"

	"zeiot/internal/rng"
)

// This file models what E8's binary node death cannot: marginal links. Real
// backscatter deployments fail soft — harvest-driven brownouts and lossy,
// bursty links dominate over clean node loss — so the fault layer provides
// a deterministic, seeded per-link loss process plus a reliable Send path
// (ack/retry with bounded exponential backoff) whose energy accounting
// charges every transmission attempt, retransmissions included. With a nil
// model the reliable path is a strict no-op relative to Send.

// GilbertElliott parameterizes the classic two-state burst-loss channel:
// the link alternates between a good and a bad state with per-attempt
// transition probabilities, and drops frames with a state-dependent
// probability. Bursts model the correlated fades a marginal backscatter
// link actually sees, which independent drops understate.
type GilbertElliott struct {
	// PGoodBad and PBadGood are the per-attempt transition probabilities
	// good→bad and bad→good.
	PGoodBad, PBadGood float64
	// DropGood and DropBad are the frame-loss probabilities in each state.
	DropGood, DropBad float64
}

// GilbertElliottFor returns burst parameters whose stationary loss rate is
// p (exactly, for p ≤ 0.28; clamped above): short bad bursts (mean length
// 2 attempts) occupy 1/6 of the time with a 3.5p loss rate, the good state
// loses p/2.
func GilbertElliottFor(p float64) *GilbertElliott {
	return &GilbertElliott{
		PGoodBad: 0.1,
		PBadGood: 0.5,
		DropGood: p / 2,
		DropBad:  math.Min(1, 3.5*p),
	}
}

// Brownout is a per-node harvest-failure window: every transmission attempt
// whose transmitter or receiver is browned out fails. Windows are expressed
// in model ticks; the fault model's clock advances by one on every
// link-level attempt, so a window deterministically covers a contiguous run
// of the transmission sequence.
type Brownout struct {
	Node int
	// Start and End bound the window as the half-open tick interval
	// [Start, End).
	Start, End uint64
}

// FaultConfig configures a LinkFaultModel.
type FaultConfig struct {
	// Seed drives every per-link loss stream. The model is fully
	// deterministic given Seed and the per-link sequence of attempts: each
	// directed link owns an independent substream derived from (Seed, from,
	// to), so outcomes on one link never depend on traffic elsewhere.
	Seed uint64
	// DropProb is the independent per-attempt loss probability, used when
	// Burst is nil.
	DropProb float64
	// Burst, when non-nil, replaces the independent drops with a
	// Gilbert-Elliott burst-loss channel.
	Burst *GilbertElliott
	// Brownouts lists per-node harvest-failure windows.
	Brownouts []Brownout
}

// linkState is the per-directed-link loss process: its RNG substream and,
// under a burst model, the current Gilbert-Elliott state.
type linkState struct {
	stream *rng.Stream
	bad    bool
}

// LinkFaultModel is a deterministic, seeded link-loss process. It is not
// safe for concurrent use; the experiments drive it from their (serial)
// charging and evaluation loops.
type LinkFaultModel struct {
	cfg    FaultConfig
	links  map[uint64]*linkState
	clock  uint64
	byNode map[int][]Brownout
}

// NewLinkFaultModel returns a fault model for cfg.
func NewLinkFaultModel(cfg FaultConfig) *LinkFaultModel {
	m := &LinkFaultModel{cfg: cfg, links: make(map[uint64]*linkState)}
	if len(cfg.Brownouts) > 0 {
		m.byNode = make(map[int][]Brownout)
		for _, b := range cfg.Brownouts {
			m.byNode[b.Node] = append(m.byNode[b.Node], b)
		}
	}
	return m
}

// state returns (creating on first use) the loss process of the from→to
// link. The substream seed mixes the model seed with the link identity
// through one SplitMix64-style round so adjacent links decorrelate.
func (m *LinkFaultModel) state(from, to int) *linkState {
	key := uint64(uint32(from))<<32 | uint64(uint32(to))
	st := m.links[key]
	if st == nil {
		s := rng.New(m.cfg.Seed ^ (key*0x9e3779b97f4a7c15 + 0x94d049bb133111eb))
		s.Uint64()
		st = &linkState{stream: s}
		m.links[key] = st
	}
	return st
}

func (m *LinkFaultModel) brownedOut(node int, tick uint64) bool {
	for _, b := range m.byNode[node] {
		if tick >= b.Start && tick < b.End {
			return true
		}
	}
	return false
}

// BrownedOut reports whether node is inside a brownout window at tick.
// Callers with their own clock — the intermittent-compute runtime asks about
// *compute* ticks, not link-attempt ticks — use this to make a node's outages
// visible beyond the Attempt path.
func (m *LinkFaultModel) BrownedOut(node int, tick uint64) bool {
	return m.byNode != nil && m.brownedOut(node, tick)
}

// AddBrownout appends a brownout window after construction. The harvest
// runtime discovers windows by simulating each node's capacitor and then
// registers them here so the communication and compute layers agree on when
// a node is dark. Windows with End <= Start are inert (the half-open
// interval [Start, End) is empty) but tolerated.
func (m *LinkFaultModel) AddBrownout(b Brownout) {
	m.cfg.Brownouts = append(m.cfg.Brownouts, b)
	if m.byNode == nil {
		m.byNode = make(map[int][]Brownout)
	}
	m.byNode[b.Node] = append(m.byNode[b.Node], b)
}

// Attempt simulates one link-level transmission from→to, advancing the
// model clock and the link's loss process, and reports whether the frame
// arrived. Brownouts fail the attempt without consuming a loss draw, so a
// window changes only its own outcomes, not the draws of later attempts.
func (m *LinkFaultModel) Attempt(from, to int) bool {
	tick := m.clock
	m.clock++
	if m.byNode != nil && (m.brownedOut(from, tick) || m.brownedOut(to, tick)) {
		return false
	}
	st := m.state(from, to)
	if ge := m.cfg.Burst; ge != nil {
		if st.bad {
			if st.stream.Bool(ge.PBadGood) {
				st.bad = false
			}
		} else if st.stream.Bool(ge.PGoodBad) {
			st.bad = true
		}
		drop := ge.DropGood
		if st.bad {
			drop = ge.DropBad
		}
		return !st.stream.Bool(drop)
	}
	return !st.stream.Bool(m.cfg.DropProb)
}

// Clock returns the number of attempts the model has processed.
func (m *LinkFaultModel) Clock() uint64 { return m.clock }

// Reset restores the model to its initial state: clock zero, every link's
// loss process rewound to its seed.
func (m *LinkFaultModel) Reset() {
	m.clock = 0
	m.links = make(map[uint64]*linkState)
}

// RetryPolicy bounds the reliable transport's per-hop retransmissions.
type RetryPolicy struct {
	// MaxRetries is the number of retransmissions allowed per hop after the
	// first attempt; 0 disables retries.
	MaxRetries int
	// BackoffBase is the backoff in slots after the first failed attempt;
	// it doubles per retry up to BackoffCap (≤ 0 means uncapped). Backoff
	// models latency, not energy: it accumulates in Delivery.BackoffSlots
	// and charges no scalars.
	BackoffBase int
	BackoffCap  int
}

// DefaultRetryPolicy returns the policy the experiments use: up to three
// retransmissions per hop with 1-slot base backoff capped at 8 slots.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, BackoffBase: 1, BackoffCap: 8}
}

// Delivery is the outcome of one reliable end-to-end transfer.
type Delivery struct {
	// Delivered reports whether the payload reached the destination. False
	// means some hop exhausted its retries; the scalars charged up to that
	// point stay charged (the energy was spent).
	Delivered bool
	// Hops counts the hops the payload successfully traversed.
	Hops int
	// Attempts counts link-level transmissions, retransmissions included.
	Attempts int
	// Retries counts the retransmissions alone.
	Retries int
	// BackoffSlots accumulates the backoff waits between retransmissions.
	BackoffSlots int
}

// SendReliable transfers scalars values from→to hop by hop under the link
// fault model: each hop is attempted up to 1+rp.MaxRetries times with
// exponential backoff, the transmitter's TxScalars is charged on every
// attempt (energy is spent whether or not the frame arrives), and the
// receiver's RxScalars only on success. A hop that exhausts its retries
// abandons the transfer with Delivered=false. A negative MaxRetries is
// clamped to 0 — "0 disables retries" is the policy floor; the unclamped
// value used to skip the attempt loop entirely and report an undelivered
// transfer with zero energy charged. With fm == nil the call charges
// exactly what Send charges and always delivers, so the fault layer
// disabled is a strict no-op.
func (n *Network) SendReliable(from, to, scalars int, fm *LinkFaultModel, rp RetryPolicy) (Delivery, error) {
	if scalars < 0 {
		panic("wsn: negative scalar count")
	}
	if rp.MaxRetries < 0 {
		rp.MaxRetries = 0
	}
	if from == to || scalars == 0 {
		return Delivery{Delivered: true}, nil
	}
	route, err := n.Route(from, to)
	if err != nil {
		return Delivery{}, err
	}
	d := Delivery{Delivered: true}
	for k := 0; k+1 < len(route); k++ {
		u, v := route[k], route[k+1]
		if fm == nil {
			n.nodes[u].TxScalars += scalars
			n.nodes[v].RxScalars += scalars
			d.Attempts++
			d.Hops++
			continue
		}
		hopOK := false
		backoff := rp.BackoffBase
		for attempt := 0; attempt <= rp.MaxRetries; attempt++ {
			n.nodes[u].TxScalars += scalars
			d.Attempts++
			if attempt > 0 {
				d.Retries++
			}
			if fm.Attempt(u, v) {
				n.nodes[v].RxScalars += scalars
				hopOK = true
				break
			}
			if attempt < rp.MaxRetries {
				d.BackoffSlots += backoff
				backoff *= 2
				if rp.BackoffCap > 0 && backoff > rp.BackoffCap {
					backoff = rp.BackoffCap
				}
			}
		}
		if !hopOK {
			d.Delivered = false
			return d, nil
		}
		d.Hops++
	}
	return d, nil
}
