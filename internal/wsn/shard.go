package wsn

import (
	"fmt"
	"math"

	"zeiot/internal/geom"
)

// This file implements the hierarchical routing core behind large Networks
// (PR 7). The deployment area is tiled into shards; nodes with a structural
// link into another shard are that shard's gateways. Exact hop distances are
// composed CRP-style from three ingredients, each built lazily and cached
// under fine-grained epochs:
//
//   - per-shard tables: for every gateway of a shard, a BFS over the shard's
//     live nodes giving intra-shard distances and next-hop parents;
//   - an overlay graph over gateways only: clique edges between a shard's
//     gateways weighted by intra-shard distance, plus unit cross edges for
//     structural links between shards;
//   - per-source state: an intra-shard BFS from the source plus one Dijkstra
//     over the overlay, giving exact source→gateway distances.
//
// Hops(s,t) is then min(intra-shard direct, min over gateways g of t's shard
// of dist(s,g) + intraShard(g,t)), which is exact: any shortest path
// decomposes into maximal same-shard runs whose endpoints are gateways, so
// the overlay relaxations dominate it, and every overlay path is realizable.
//
// Fail/Recover never rebuild adjacency (the CSR is structural; traversals
// filter dead nodes). A flip bumps only its shard's epoch — invalidating
// that shard's tables and any route whose path touches the shard — plus a
// global version that invalidates per-source overlay states. Recover
// additionally bumps recoverGen, because a recovery can shorten paths
// anywhere and cached routes elsewhere would silently stop being shortest;
// Fail alone cannot (removing edges only lengthens alternatives, so an
// untouched cached route stays shortest).

// AutoShardThreshold is the node count at or above which New and
// NewFromRadioPlan switch to the sharded core automatically. Every paper
// experiment runs far below it, keeping their dense-path results
// byte-identical; crowd-scale scenarios cross it and shard.
const AutoShardThreshold = 4096

// defaultShardTarget is the intended node count per shard tile.
const defaultShardTarget = 1024

// shardRouteMemoLimit bounds the sharded route memo; on overflow the memo is
// cleared wholesale (same policy as the microdeep plan cache).
const shardRouteMemoLimit = 8192

// srcCacheLimit bounds the number of per-source overlay states retained.
const srcCacheLimit = 64

// ShardOptions configures the sharded routing core.
type ShardOptions struct {
	// TargetShardSize is the intended node count per shard tile; 0 uses
	// defaultShardTarget.
	TargetShardSize int
}

// shardState is one tile's lazily built routing tables.
type shardState struct {
	nodes []int32 // member node ids, ascending
	gws   []int32 // gateway node ids, ascending (structural property)
	// epoch advances on every effective flip of a member node; built is the
	// epoch the tables below were computed at.
	epoch      uint64
	built      uint64
	haveTables bool
	// dist[r][l] is the live intra-shard hop distance from gateway rank r to
	// local node l (-1 unreachable or dead); next[r][l] is the global id of
	// the neighbour one hop closer to that gateway.
	dist [][]int32
	next [][]int32
}

// srcState caches one source's exact routing state: an intra-shard BFS and
// an overlay Dijkstra. Valid while version matches the core's.
type srcState struct {
	src     int32
	version uint64
	// intraDist/intraPrev are BFS results over the source's shard (local
	// indices; prev holds global ids one hop closer to the source).
	intraDist []int32
	intraPrev []int32
	// gwDist/gwPrev are exact distances source→gateway over the whole live
	// network (global gateway indices; prev -1 for seeds).
	gwDist []int32
	gwPrev []int32
	// row is the lazily materialized full hops row (HopsRow).
	row []int
}

// shardRoute is one memoized route with its validity signature: the epochs
// of every shard the path touches, plus the recover generation.
type shardRoute struct {
	path       []int
	recoverGen uint64
	shards     []int32
	epochs     []uint64
}

type shardCore struct {
	net *Network
	adj csr
	// shardOf/localOf map node id → shard index and index within the shard.
	shardOf []int32
	localOf []int32
	shards  []*shardState
	// gwIdxOf maps node id → global gateway index (-1 for non-gateways);
	// gwNodes/gwRank are the inverse and the gateway's rank in its shard.
	gwIdxOf []int32
	gwNodes []int32
	gwRank  []int32

	// version advances on every effective flip; recoverGen on every
	// effective Recover (see the file comment for why they differ).
	version    uint64
	recoverGen uint64

	// Rebuild counters surfaced via Network.RebuildStats: fullBuilds counts
	// structural CSR constructions (1 for the network's lifetime — flips
	// must never force another), shardBuilds per-shard table (re)builds,
	// overlayBuilds per-source overlay Dijkstra runs.
	fullBuilds    uint64
	shardBuilds   uint64
	overlayBuilds uint64

	srcCache map[int32]*srcState
	routes   map[uint64]*shardRoute

	// scratch
	q    []int32
	heap []uint64
}

// NewSharded builds a network on the hierarchical sharded core regardless of
// size. Routing results (hop distances, route validity) match New exactly;
// only the internal representation and incremental-repair behaviour differ.
func NewSharded(positions []geom.Point, maxRange float64, opts ShardOptions) *Network {
	if maxRange <= 0 {
		panic("wsn: non-positive range")
	}
	n := &Network{id: networkSeq.Add(1), maxRange: maxRange}
	for i, p := range positions {
		n.nodes = append(n.nodes, &Node{ID: i, Pos: p})
	}
	n.sh = newShardCore(n, opts)
	return n
}

// NewShardedFromRadioPlan is NewFromRadioPlan on the sharded core.
func NewShardedFromRadioPlan(positions []geom.Point, plan RadioPlan, opts ShardOptions) *Network {
	n := &Network{id: networkSeq.Add(1), maxRange: -1, plan: &plan}
	for i, p := range positions {
		n.nodes = append(n.nodes, &Node{ID: i, Pos: p})
	}
	n.sh = newShardCore(n, opts)
	return n
}

// NewGridSharded is NewGrid on the sharded core (same geometry and range).
func NewGridSharded(rows, cols int, spacing float64, opts ShardOptions) *Network {
	if rows <= 0 || cols <= 0 {
		panic("wsn: non-positive grid dims")
	}
	positions := make([]geom.Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			positions = append(positions, geom.Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return NewSharded(positions, 1.5*spacing, opts)
}

func newShardCore(n *Network, opts ShardOptions) *shardCore {
	target := opts.TargetShardSize
	if target <= 0 {
		target = defaultShardTarget
	}
	sc := &shardCore{net: n}
	sc.adj = buildCSR(n.nodes, n.linkExists, n.maxLinkDist())
	sc.fullBuilds = 1

	size := len(n.nodes)
	// Tile the bounding box into a k×k grid sized for ~target nodes/tile.
	k := int(math.Ceil(math.Sqrt(float64(size) / float64(target))))
	if k < 1 {
		k = 1
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, nd := range n.nodes {
		minX = math.Min(minX, nd.Pos.X)
		minY = math.Min(minY, nd.Pos.Y)
		maxX = math.Max(maxX, nd.Pos.X)
		maxY = math.Max(maxY, nd.Pos.Y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	tile := func(v, lo, span float64) int {
		if span <= 0 {
			return 0
		}
		t := int(float64(k) * (v - lo) / span)
		if t >= k {
			t = k - 1
		}
		return t
	}
	sc.shardOf = make([]int32, size)
	sc.localOf = make([]int32, size)
	sc.shards = make([]*shardState, k*k)
	for s := range sc.shards {
		sc.shards[s] = &shardState{}
	}
	for i, nd := range n.nodes {
		s := int32(tile(nd.Pos.Y, minY, spanY)*k + tile(nd.Pos.X, minX, spanX))
		sc.shardOf[i] = s
		st := sc.shards[s]
		sc.localOf[i] = int32(len(st.nodes))
		st.nodes = append(st.nodes, int32(i))
	}
	// Gateways: nodes with at least one structural cross-shard link.
	// Scanning node ids ascending keeps gwNodes and every shard's gws sorted.
	sc.gwIdxOf = make([]int32, size)
	for i := 0; i < size; i++ {
		sc.gwIdxOf[i] = -1
		gw := false
		for _, v := range sc.adj.neighbors(i) {
			if sc.shardOf[v] != sc.shardOf[i] {
				gw = true
				break
			}
		}
		if gw {
			sc.gwIdxOf[i] = int32(len(sc.gwNodes))
			sc.gwNodes = append(sc.gwNodes, int32(i))
			st := sc.shards[sc.shardOf[i]]
			sc.gwRank = append(sc.gwRank, int32(len(st.gws)))
			st.gws = append(st.gws, int32(i))
		}
	}
	sc.srcCache = make(map[int32]*srcState)
	sc.routes = make(map[uint64]*shardRoute)
	return sc
}

// flip records one effective Fail/Recover: only the flipped node's shard
// epoch moves (plus the global version and, for Recover, recoverGen).
func (sc *shardCore) flip(id int, recovered bool) {
	sc.version++
	sc.shards[sc.shardOf[id]].epoch++
	if recovered {
		sc.recoverGen++
	}
}

// ensureShard (re)builds one shard's gateway tables if its epoch moved.
func (sc *shardCore) ensureShard(s int32) *shardState {
	st := sc.shards[s]
	if st.haveTables && st.built == st.epoch {
		return st
	}
	sc.shardBuilds++
	nloc := len(st.nodes)
	if st.dist == nil {
		st.dist = make([][]int32, len(st.gws))
		st.next = make([][]int32, len(st.gws))
		for r := range st.gws {
			st.dist[r] = make([]int32, nloc)
			st.next[r] = make([]int32, nloc)
		}
	}
	nodes := sc.net.nodes
	for r, g := range st.gws {
		dist, next := st.dist[r], st.next[r]
		for l := range dist {
			dist[l] = -1
			next[l] = -1
		}
		if nodes[g].Failed {
			continue
		}
		// BFS from the gateway over the shard's live members. Neighbour
		// order is ascending (CSR rows are sorted), matching the dense
		// builder's tie-breaks.
		q := sc.q[:0]
		lg := sc.localOf[g]
		dist[lg] = 0
		q = append(q, lg)
		for head := 0; head < len(q); head++ {
			lu := q[head]
			gu := st.nodes[lu]
			for _, gv := range sc.adj.neighbors(int(gu)) {
				if sc.shardOf[gv] != s || nodes[gv].Failed {
					continue
				}
				lv := sc.localOf[gv]
				if dist[lv] != -1 {
					continue
				}
				dist[lv] = dist[lu] + 1
				next[lv] = gu
				q = append(q, lv)
			}
		}
		sc.q = q[:0]
	}
	st.built = st.epoch
	st.haveTables = true
	return st
}

// cached returns the valid per-source state for src, or nil.
func (sc *shardCore) cached(src int32) *srcState {
	if st := sc.srcCache[src]; st != nil && st.version == sc.version {
		return st
	}
	return nil
}

// ensureSrc returns the per-source overlay state for a live source, building
// it (intra-shard BFS + overlay Dijkstra) on miss or staleness.
func (sc *shardCore) ensureSrc(src int32) *srcState {
	if st := sc.cached(src); st != nil {
		return st
	}
	sc.overlayBuilds++
	if len(sc.srcCache) >= srcCacheLimit {
		clear(sc.srcCache)
	}
	nodes := sc.net.nodes
	si := sc.shardOf[src]
	S := sc.ensureShard(si)
	st := &srcState{src: src, version: sc.version}
	// Intra-shard BFS from the source.
	st.intraDist = make([]int32, len(S.nodes))
	st.intraPrev = make([]int32, len(S.nodes))
	for l := range st.intraDist {
		st.intraDist[l] = -1
		st.intraPrev[l] = -1
	}
	q := sc.q[:0]
	ls := sc.localOf[src]
	st.intraDist[ls] = 0
	q = append(q, ls)
	for head := 0; head < len(q); head++ {
		lu := q[head]
		gu := S.nodes[lu]
		for _, gv := range sc.adj.neighbors(int(gu)) {
			if sc.shardOf[gv] != si || nodes[gv].Failed {
				continue
			}
			lv := sc.localOf[gv]
			if st.intraDist[lv] != -1 {
				continue
			}
			st.intraDist[lv] = st.intraDist[lu] + 1
			st.intraPrev[lv] = gu
			q = append(q, lv)
		}
	}
	sc.q = q[:0]
	// Overlay Dijkstra over gateways. Heap keys pack (dist, gateway index)
	// so ties break on the lower index — fully deterministic.
	ngw := len(sc.gwNodes)
	st.gwDist = make([]int32, ngw)
	st.gwPrev = make([]int32, ngw)
	for i := range st.gwDist {
		st.gwDist[i] = -1
		st.gwPrev[i] = -1
	}
	h := sc.heap[:0]
	for _, g := range S.gws {
		if d := st.intraDist[sc.localOf[g]]; d >= 0 {
			gi := sc.gwIdxOf[g]
			st.gwDist[gi] = d
			h = heapPush(h, uint64(uint32(d))<<32|uint64(uint32(gi)))
		}
	}
	for len(h) > 0 {
		var key uint64
		key, h = heapPop(h)
		d := int32(key >> 32)
		gi := int32(uint32(key))
		if d > st.gwDist[gi] {
			continue // stale heap entry
		}
		g := sc.gwNodes[gi]
		T := sc.ensureShard(sc.shardOf[g])
		// Clique edges: intra-shard distances to the shard's other gateways.
		r := sc.gwRank[gi]
		drow := T.dist[r]
		for _, g2 := range T.gws {
			if g2 == g {
				continue
			}
			w := drow[sc.localOf[g2]]
			if w < 0 {
				continue
			}
			gi2 := sc.gwIdxOf[g2]
			if nd := d + w; st.gwDist[gi2] < 0 || nd < st.gwDist[gi2] {
				st.gwDist[gi2] = nd
				st.gwPrev[gi2] = gi
				h = heapPush(h, uint64(uint32(nd))<<32|uint64(uint32(gi2)))
			}
		}
		// Cross edges: unit-weight structural links into other shards.
		if nodes[g].Failed {
			continue
		}
		for _, v := range sc.adj.neighbors(int(g)) {
			if sc.shardOf[v] == sc.shardOf[g] || nodes[v].Failed {
				continue
			}
			gi2 := sc.gwIdxOf[v] // cross-linked ⇒ v is a gateway
			if nd := d + 1; st.gwDist[gi2] < 0 || nd < st.gwDist[gi2] {
				st.gwDist[gi2] = nd
				st.gwPrev[gi2] = gi
				h = heapPush(h, uint64(uint32(nd))<<32|uint64(uint32(gi2)))
			}
		}
	}
	sc.heap = h[:0]
	sc.srcCache[src] = st
	return st
}

// distFrom returns the exact hop distance from st.src to t (-1 unreachable).
func (sc *shardCore) distFrom(st *srcState, t int32) int {
	if sc.net.nodes[t].Failed {
		return -1
	}
	if t == st.src {
		return 0
	}
	if st.row != nil {
		return st.row[t]
	}
	best := int32(-1)
	ti := sc.shardOf[t]
	if ti == sc.shardOf[st.src] {
		if d := st.intraDist[sc.localOf[t]]; d >= 0 {
			best = d
		}
	}
	T := sc.ensureShard(ti)
	lt := sc.localOf[t]
	for r, g := range T.gws {
		dg := st.gwDist[sc.gwIdxOf[g]]
		if dg < 0 {
			continue
		}
		dt := T.dist[r][lt]
		if dt < 0 {
			continue
		}
		if c := dg + dt; best < 0 || c < best {
			best = c
		}
	}
	return int(best)
}

// hops answers Network.Hops on the sharded core, preferring whichever
// endpoint already has cached per-source state (hop distances are symmetric).
func (sc *shardCore) hops(i, j int) int {
	nodes := sc.net.nodes
	if nodes[i].Failed || nodes[j].Failed {
		return -1
	}
	if i == j {
		return 0
	}
	if sc.cached(int32(i)) == nil && sc.cached(int32(j)) != nil {
		i, j = j, i
	}
	return sc.distFrom(sc.ensureSrc(int32(i)), int32(j))
}

// hopsRow answers Network.HopsRow: the full distance row from src,
// materialized once per (source, version) and cached on the source state.
func (sc *shardCore) hopsRow(src int) []int {
	size := len(sc.net.nodes)
	if sc.net.nodes[src].Failed {
		row := make([]int, size)
		for i := range row {
			row[i] = -1
		}
		return row
	}
	st := sc.ensureSrc(int32(src))
	if st.row == nil {
		row := make([]int, size)
		for t := range row {
			row[t] = sc.distFrom(st, int32(t))
		}
		st.row = row
	}
	return st.row
}

// pathFrom reconstructs one shortest path st.src → t as global node ids, or
// nil when unreachable. The realizing candidate is chosen deterministically:
// the direct intra-shard path if it attains the distance, else the
// lowest-ranked gateway of t's shard that does.
func (sc *shardCore) pathFrom(st *srcState, t int32) []int {
	total := sc.distFrom(st, t)
	if total < 0 {
		return nil
	}
	if t == st.src {
		return []int{int(st.src)}
	}
	ti := sc.shardOf[t]
	si := sc.shardOf[st.src]
	if ti == si {
		if d := st.intraDist[sc.localOf[t]]; d == int32(total) {
			// Walk intraPrev from t back to the source, then reverse.
			path := make([]int, 0, total+1)
			for cur := t; ; {
				path = append(path, int(cur))
				if cur == st.src {
					break
				}
				cur = st.intraPrev[sc.localOf[cur]]
			}
			reverseInts(path)
			return path
		}
	}
	T := sc.ensureShard(ti)
	lt := sc.localOf[t]
	for r, g := range T.gws {
		dg := st.gwDist[sc.gwIdxOf[g]]
		if dg < 0 {
			continue
		}
		dt := T.dist[r][lt]
		if dt < 0 || dg+dt != int32(total) {
			continue
		}
		path := sc.unpackToGateway(st, sc.gwIdxOf[g])
		// Final leg: gateway → t inside t's shard, via the next-toward-g
		// parents (they chain t → g, so collect and append reversed).
		if g != t {
			leg := make([]int32, 0, dt+1)
			for cur := t; cur != g; cur = T.next[r][sc.localOf[cur]] {
				leg = append(leg, cur)
			}
			for k := len(leg) - 1; k >= 0; k-- {
				path = append(path, int(leg[k]))
			}
		}
		return path
	}
	return nil // unreachable given total >= 0; defensive
}

// unpackToGateway expands the overlay predecessor chain into the concrete
// node path st.src → gateway gi.
func (sc *shardCore) unpackToGateway(st *srcState, gi int32) []int {
	// Collect the gateway chain seed → ... → gi.
	chain := []int32{gi}
	for st.gwPrev[chain[len(chain)-1]] >= 0 {
		chain = append(chain, st.gwPrev[chain[len(chain)-1]])
	}
	reverseInt32s(chain)
	// Intra-shard prefix: source → first gateway.
	g0 := sc.gwNodes[chain[0]]
	var path []int
	if g0 == st.src {
		path = []int{int(st.src)}
	} else {
		for cur := g0; ; {
			path = append(path, int(cur))
			if cur == st.src {
				break
			}
			cur = st.intraPrev[sc.localOf[cur]]
		}
		reverseInts(path)
	}
	// Expand each overlay edge. Same shard ⇒ clique edge (walk the target
	// gateway's parent tree); different shard ⇒ unit cross link.
	for k := 0; k+1 < len(chain); k++ {
		ga := sc.gwNodes[chain[k]]
		gb := sc.gwNodes[chain[k+1]]
		if sc.shardOf[ga] != sc.shardOf[gb] {
			path = append(path, int(gb))
			continue
		}
		T := sc.ensureShard(sc.shardOf[ga])
		rb := sc.gwRank[chain[k+1]]
		for cur := ga; cur != gb; {
			cur = T.next[rb][sc.localOf[cur]]
			path = append(path, int(cur))
		}
	}
	return path
}

// route answers Network.Route on the sharded core, with a memo whose
// validity signature is the touched shards' epochs plus recoverGen.
func (sc *shardCore) route(i, j int) ([]int, error) {
	n := sc.net
	key := uint64(uint32(i))<<32 | uint64(uint32(j))
	if e := sc.routes[key]; e != nil && sc.routeValid(e) {
		n.routeHits++
		return e.path, nil
	}
	n.routeMisses++
	nodes := n.nodes
	if nodes[i].Failed || nodes[j].Failed {
		return nil, fmt.Errorf("%w: %d -> %d", ErrUnreachable, i, j)
	}
	var path []int
	if i != j && sc.cached(int32(i)) == nil && sc.cached(int32(j)) != nil {
		// Build from the cached endpoint and reverse (hop metric symmetric).
		path = sc.pathFrom(sc.ensureSrc(int32(j)), int32(i))
		reverseInts(path)
	} else {
		path = sc.pathFrom(sc.ensureSrc(int32(i)), int32(j))
	}
	if path == nil {
		return nil, fmt.Errorf("%w: %d -> %d", ErrUnreachable, i, j)
	}
	e := &shardRoute{path: path, recoverGen: sc.recoverGen}
	for _, v := range path {
		s := sc.shardOf[v]
		known := false
		for _, ps := range e.shards {
			if ps == s {
				known = true
				break
			}
		}
		if !known {
			e.shards = append(e.shards, s)
			e.epochs = append(e.epochs, sc.shards[s].epoch)
		}
	}
	if len(sc.routes) >= shardRouteMemoLimit {
		clear(sc.routes)
	}
	sc.routes[key] = e
	return path, nil
}

func (sc *shardCore) routeValid(e *shardRoute) bool {
	if e.recoverGen != sc.recoverGen {
		return false
	}
	for k, s := range e.shards {
		if sc.shards[s].epoch != e.epochs[k] {
			return false
		}
	}
	return true
}

// linked answers Network.Linked: both endpoints live and structurally
// adjacent (binary search over the sorted CSR row).
func (sc *shardCore) linked(i, j int) bool {
	nodes := sc.net.nodes
	if nodes[i].Failed || nodes[j].Failed {
		return false
	}
	return sc.adj.contains(i, j)
}

// liveNeighbors appends i's live neighbours to buf and returns it.
func (sc *shardCore) liveNeighbors(i int, buf []int) []int {
	nodes := sc.net.nodes
	if nodes[i].Failed {
		return buf
	}
	for _, v := range sc.adj.neighbors(i) {
		if !nodes[v].Failed {
			buf = append(buf, int(v))
		}
	}
	return buf
}

// connected answers Network.Connected with one flood fill over live nodes.
func (sc *shardCore) connected() bool {
	nodes := sc.net.nodes
	first := -1
	live := 0
	for i, nd := range nodes {
		if !nd.Failed {
			live++
			if first < 0 {
				first = i
			}
		}
	}
	if live <= 1 {
		return true
	}
	seen := make([]bool, len(nodes))
	q := sc.q[:0]
	seen[first] = true
	q = append(q, int32(first))
	count := 1
	for head := 0; head < len(q); head++ {
		u := q[head]
		for _, v := range sc.adj.neighbors(int(u)) {
			if seen[v] || nodes[v].Failed {
				continue
			}
			seen[v] = true
			count++
			q = append(q, v)
		}
	}
	sc.q = q[:0]
	return count == live
}

// --- small helpers ---

func reverseInts(s []int) {
	for a, b := 0, len(s)-1; a < b; a, b = a+1, b-1 {
		s[a], s[b] = s[b], s[a]
	}
}

func reverseInt32s(s []int32) {
	for a, b := 0, len(s)-1; a < b; a, b = a+1, b-1 {
		s[a], s[b] = s[b], s[a]
	}
}

// heapPush/heapPop maintain a binary min-heap over packed (dist<<32 | index)
// keys — allocation-free and with deterministic tie-breaking by index.
func heapPush(h []uint64, v uint64) []uint64 {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func heapPop(h []uint64) (uint64, []uint64) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top, h
}
