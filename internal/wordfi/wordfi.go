// Package wordfi implements Word-Fi-style handwriting recognition (§II.B,
// ref [38]): a passive backscatter tag on the pen is phase-tracked by RFID
// readers while the user writes, and the recovered pen trajectory is
// classified into letters.
//
// The pipeline mirrors the cited system: ground-truth strokes → wrapped
// phase streams at ≥3 readers (internal/rfid) → tracked trajectory →
// scale/translation-invariant stroke features (direction histogram, start/
// end geometry, turning) → k-NN classifier.
package wordfi

import (
	"fmt"
	"math"

	"zeiot/internal/geom"
	"zeiot/internal/ml"
	"zeiot/internal/rfid"
	"zeiot/internal/rng"
)

// Letters supported by the built-in stroke alphabet.
var Letters = []rune{'C', 'L', 'M', 'O', 'V', 'Z'}

// strokePath returns the pen path of a letter as normalized waypoints in a
// unit box (x right, y up).
func strokePath(letter rune) ([]geom.Point, error) {
	switch letter {
	case 'C':
		var pts []geom.Point
		for i := 0; i <= 12; i++ {
			// Arc from top-right around the left side to bottom-right.
			ang := math.Pi/3 + float64(i)/12*4*math.Pi/3
			pts = append(pts, geom.Point{X: 0.5 + 0.5*math.Cos(ang), Y: 0.5 + 0.5*math.Sin(ang)})
		}
		return pts, nil
	case 'L':
		return []geom.Point{{X: 0, Y: 1}, {X: 0, Y: 0}, {X: 1, Y: 0}}, nil
	case 'M':
		return []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 0.5, Y: 0.4}, {X: 1, Y: 1}, {X: 1, Y: 0}}, nil
	case 'O':
		var pts []geom.Point
		for i := 0; i <= 16; i++ {
			ang := math.Pi/2 + float64(i)/16*2*math.Pi
			pts = append(pts, geom.Point{X: 0.5 + 0.5*math.Cos(ang), Y: 0.5 + 0.5*math.Sin(ang)})
		}
		return pts, nil
	case 'V':
		return []geom.Point{{X: 0, Y: 1}, {X: 0.5, Y: 0}, {X: 1, Y: 1}}, nil
	case 'Z':
		return []geom.Point{{X: 0, Y: 1}, {X: 1, Y: 1}, {X: 0, Y: 0}, {X: 1, Y: 0}}, nil
	default:
		return nil, fmt.Errorf("wordfi: unsupported letter %q", letter)
	}
}

// Config describes the capture setup.
type Config struct {
	Readers []rfid.Reader
	// Origin is the writing area's lower-left corner; SizeM the letter
	// height/width in metres.
	Origin geom.Point
	SizeM  float64
	// StepM is the pen movement per phase sample (must stay below λ/4 for
	// unambiguous tracking).
	StepM float64
	// WobbleM is per-sample hand tremor.
	WobbleM float64
}

// DefaultConfig returns a desk-scale setup with four readers.
func DefaultConfig() Config {
	readers := []rfid.Reader{
		rfid.UHFReader(geom.Point{X: -0.5, Y: -0.5}),
		rfid.UHFReader(geom.Point{X: 1.5, Y: -0.5}),
		rfid.UHFReader(geom.Point{X: 0.5, Y: 1.5}),
		rfid.UHFReader(geom.Point{X: -0.5, Y: 1.2}),
	}
	for i := range readers {
		readers[i].PhaseNoise = 0.05
		readers[i].Offset = 0.3 * float64(i+1)
	}
	return Config{
		Readers: readers,
		Origin:  geom.Point{X: 0.3, Y: 0.3},
		SizeM:   0.25,
		StepM:   0.01,
		WobbleM: 0.0015,
	}
}

// Write simulates writing one letter: it returns the true pen trajectory
// and the per-reader wrapped phase streams.
func Write(cfg Config, letter rune, stream *rng.Stream) (truth []geom.Point, phases [][]float64, err error) {
	path, err := strokePath(letter)
	if err != nil {
		return nil, nil, err
	}
	// Densify the waypoint path to StepM-sized pen steps with tremor and
	// per-writer slant/scale variation.
	scale := cfg.SizeM * (0.9 + 0.2*stream.Float64())
	slant := stream.NormMeanStd(0, 0.06)
	place := func(p geom.Point) geom.Point {
		return geom.Point{
			X: cfg.Origin.X + scale*(p.X+slant*p.Y),
			Y: cfg.Origin.Y + scale*p.Y,
		}
	}
	pos := place(path[0])
	truth = append(truth, pos)
	for _, wp := range path[1:] {
		target := place(wp)
		for geom.Dist(pos, target) > cfg.StepM {
			dir := target.Sub(pos)
			dir = dir.Scale(cfg.StepM / dir.Norm())
			pos = pos.Add(dir).Add(geom.Point{
				X: stream.NormMeanStd(0, cfg.WobbleM),
				Y: stream.NormMeanStd(0, cfg.WobbleM),
			})
			truth = append(truth, pos)
		}
		pos = target
		truth = append(truth, pos)
	}
	phases = make([][]float64, len(cfg.Readers))
	for ri, r := range cfg.Readers {
		phases[ri] = make([]float64, len(truth))
		for i, p := range truth {
			phases[ri][i] = r.Phase(p, stream)
		}
	}
	return truth, phases, nil
}

// Track recovers the pen trajectory from the phase streams, starting from
// the known pen-down position (Word-Fi anchors on the tag's resting pose).
func Track(cfg Config, start geom.Point, phases [][]float64) ([]geom.Point, error) {
	tracker, err := rfid.NewTracker(cfg.Readers, start)
	if err != nil {
		return nil, err
	}
	if len(phases) != len(cfg.Readers) {
		return nil, fmt.Errorf("wordfi: %d phase streams for %d readers", len(phases), len(cfg.Readers))
	}
	n := len(phases[0])
	out := make([]geom.Point, 0, n)
	sample := make([]float64, len(cfg.Readers))
	for i := 0; i < n; i++ {
		for ri := range cfg.Readers {
			sample[ri] = phases[ri][i]
		}
		p, err := tracker.Observe(sample)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Features converts a trajectory into a scale/translation-invariant
// vector: an 8-bin direction histogram over arc length, total turning,
// aspect ratio, and normalized start→end displacement.
func Features(traj []geom.Point) []float64 {
	const bins = 8
	hist := make([]float64, bins)
	total := 0.0
	turning := 0.0
	prevAng := math.NaN()
	minP, maxP := traj[0], traj[0]
	for i := 1; i < len(traj); i++ {
		d := traj[i].Sub(traj[i-1])
		l := d.Norm()
		if l < 1e-9 {
			continue
		}
		ang := math.Atan2(d.Y, d.X)
		bin := int((ang + math.Pi) / (2 * math.Pi) * bins)
		if bin == bins {
			bin = bins - 1
		}
		hist[bin] += l
		total += l
		if !math.IsNaN(prevAng) {
			da := ang - prevAng
			for da > math.Pi {
				da -= 2 * math.Pi
			}
			for da < -math.Pi {
				da += 2 * math.Pi
			}
			turning += da
		}
		prevAng = ang
		minP.X = math.Min(minP.X, traj[i].X)
		minP.Y = math.Min(minP.Y, traj[i].Y)
		maxP.X = math.Max(maxP.X, traj[i].X)
		maxP.Y = math.Max(maxP.Y, traj[i].Y)
	}
	out := make([]float64, 0, bins+4)
	for _, h := range hist {
		if total > 0 {
			out = append(out, h/total)
		} else {
			out = append(out, 0)
		}
	}
	w := maxP.X - minP.X
	h := maxP.Y - minP.Y
	aspect := 1.0
	if h > 1e-9 {
		aspect = w / h
	}
	se := traj[len(traj)-1].Sub(traj[0])
	norm := math.Max(total, 1e-9)
	out = append(out, turning/(2*math.Pi), aspect, se.X/norm, se.Y/norm)
	return out
}

// Recognizer classifies tracked letters.
type Recognizer struct {
	cfg Config
	std *ml.Standardizer
	clf ml.Classifier
}

// Train builds a recognizer from samplesPerLetter tracked writings of each
// letter.
func Train(cfg Config, samplesPerLetter int, stream *rng.Stream) (*Recognizer, error) {
	if samplesPerLetter < 2 {
		return nil, fmt.Errorf("wordfi: need >= 2 samples per letter, got %d", samplesPerLetter)
	}
	var data ml.Dataset
	for li, letter := range Letters {
		for i := 0; i < samplesPerLetter; i++ {
			truth, phases, err := Write(cfg, letter, stream.Split(fmt.Sprintf("w-%c-%d", letter, i)))
			if err != nil {
				return nil, err
			}
			traj, err := Track(cfg, truth[0], phases)
			if err != nil {
				return nil, err
			}
			data.X = append(data.X, Features(traj))
			data.Y = append(data.Y, li)
		}
	}
	std := ml.FitStandardizer(data)
	clf, err := ml.KNN{K: 3}.Fit(std.Apply(data))
	if err != nil {
		return nil, fmt.Errorf("wordfi: fitting classifier: %w", err)
	}
	return &Recognizer{cfg: cfg, std: std, clf: clf}, nil
}

// Classify recognizes one tracked trajectory.
func (r *Recognizer) Classify(traj []geom.Point) rune {
	one := ml.Dataset{X: [][]float64{Features(traj)}, Y: []int{0}}
	return Letters[r.clf.Predict(r.std.Apply(one).X[0])]
}

// Evaluate writes trials fresh letters each and returns the accuracy.
func (r *Recognizer) Evaluate(trials int, stream *rng.Stream) (float64, error) {
	correct, total := 0, 0
	for _, letter := range Letters {
		for i := 0; i < trials; i++ {
			truth, phases, err := Write(r.cfg, letter, stream.Split(fmt.Sprintf("e-%c-%d", letter, i)))
			if err != nil {
				return 0, err
			}
			traj, err := Track(r.cfg, truth[0], phases)
			if err != nil {
				return 0, err
			}
			if r.Classify(traj) == letter {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total), nil
}
