package wordfi

import (
	"math"
	"testing"

	"zeiot/internal/geom"
	"zeiot/internal/rng"
)

func TestStrokePaths(t *testing.T) {
	for _, letter := range Letters {
		path, err := strokePath(letter)
		if err != nil {
			t.Fatalf("%c: %v", letter, err)
		}
		if len(path) < 3 {
			t.Fatalf("%c: only %d waypoints", letter, len(path))
		}
		for _, p := range path {
			if p.X < -0.01 || p.X > 1.01 || p.Y < -0.01 || p.Y > 1.01 {
				t.Fatalf("%c: waypoint %v outside unit box", letter, p)
			}
		}
	}
	if _, err := strokePath('Q'); err == nil {
		t.Fatal("unsupported letter accepted")
	}
}

func TestWriteProducesDensePath(t *testing.T) {
	cfg := DefaultConfig()
	truth, phases, err := Write(cfg, 'Z', rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) < 20 {
		t.Fatalf("trajectory only %d points", len(truth))
	}
	if len(phases) != len(cfg.Readers) {
		t.Fatalf("phase streams = %d", len(phases))
	}
	for i := 1; i < len(truth); i++ {
		if geom.Dist(truth[i], truth[i-1]) > 0.05 {
			t.Fatalf("pen jumped %.3f m at step %d", geom.Dist(truth[i], truth[i-1]), i)
		}
	}
}

func TestTrackFollowsPen(t *testing.T) {
	cfg := DefaultConfig()
	truth, phases, err := Write(cfg, 'O', rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	traj, err := Track(cfg, truth[0], phases)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != len(truth) {
		t.Fatalf("tracked %d of %d points", len(traj), len(truth))
	}
	worst := 0.0
	for i := range traj {
		worst = math.Max(worst, geom.Dist(traj[i], truth[i]))
	}
	if worst > 0.03 {
		t.Fatalf("max tracking error %.3f m", worst)
	}
}

func TestFeaturesInvariantToScaleAndTranslation(t *testing.T) {
	base := []geom.Point{{X: 0, Y: 1}, {X: 0, Y: 0}, {X: 1, Y: 0}} // an L
	shifted := make([]geom.Point, len(base))
	for i, p := range base {
		shifted[i] = geom.Point{X: 3*p.X + 10, Y: 3*p.Y - 4}
	}
	fa := Features(base)
	fb := Features(shifted)
	for i := range fa {
		if math.Abs(fa[i]-fb[i]) > 1e-9 {
			t.Fatalf("feature %d not invariant: %v vs %v", i, fa[i], fb[i])
		}
	}
}

func TestFeaturesDistinguishTurning(t *testing.T) {
	// A circle has ~±2π total turning; a straight line none.
	var circle []geom.Point
	for i := 0; i <= 32; i++ {
		ang := float64(i) / 32 * 2 * math.Pi
		circle = append(circle, geom.Point{X: math.Cos(ang), Y: math.Sin(ang)})
	}
	line := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	turnCircle := Features(circle)[8]
	turnLine := Features(line)[8]
	if math.Abs(turnCircle) < 0.8 {
		t.Fatalf("circle turning = %v, want ~±1", turnCircle)
	}
	if math.Abs(turnLine) > 0.05 {
		t.Fatalf("line turning = %v, want ~0", turnLine)
	}
}

func TestRecognizerAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	stream := rng.New(3)
	r, err := Train(cfg, 8, stream.Split("train"))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := r.Evaluate(5, stream.Split("eval"))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("letter accuracy = %.3f", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(DefaultConfig(), 1, rng.New(1)); err == nil {
		t.Fatal("1 sample per letter accepted")
	}
}
