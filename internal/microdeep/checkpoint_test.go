package microdeep

import (
	"bytes"
	"strings"
	"testing"

	"zeiot/internal/cnn"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
	"zeiot/internal/wsn"
)

func checkpointTrainSamples(seed uint64, n int) []cnn.Sample {
	s := rng.New(seed)
	out := make([]cnn.Sample, n)
	for i := range out {
		out[i] = cnn.Sample{Input: randInput(s), Label: i % 2}
	}
	return out
}

func buildLocalUpdateModel(t *testing.T, seed uint64, gossipEvery int) *Model {
	t.Helper()
	m, err := Build(testNet(seed), wsn.NewGrid(6, 6, 1), StrategyBalanced)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableLocalUpdate()
	m.SetGossip(gossipEvery)
	return m
}

// requireSameModel fails unless the two models' shared network parameters
// AND every per-position kernel replica are bit-identical.
func requireSameModel(t *testing.T, a, b *Model, ctx string) {
	t.Helper()
	la, lb := a.Net.Layers(), b.Net.Layers()
	for i := range la {
		pa, ok := la[i].(cnn.ParamLayer)
		if !ok {
			continue
		}
		pb := lb[i].(cnn.ParamLayer)
		for j, ta := range pa.Params() {
			if !tensor.Equal(ta, pb.Params()[j], 0) {
				t.Fatalf("%s: layer %d param %d differs", ctx, i, j)
			}
		}
	}
	if len(a.replicas) != len(b.replicas) {
		t.Fatalf("%s: replica stage count %d vs %d", ctx, len(a.replicas), len(b.replicas))
	}
	for i := range a.replicas {
		ra, rb := a.replicas[i], b.replicas[i]
		if len(ra.kernels) != len(rb.kernels) {
			t.Fatalf("%s: stage %d kernel count %d vs %d", ctx, i, len(ra.kernels), len(rb.kernels))
		}
		for p := range ra.kernels {
			if !tensor.Equal(ra.kernels[p], rb.kernels[p], 0) {
				t.Fatalf("%s: stage %d kernel %d differs", ctx, i, p)
			}
		}
	}
}

// TestModelSaveRestoreBitIdentity checkpoints a local-update model mid-run
// and requires the restored model to finish training bit-identically to the
// uninterrupted one — replicas, momentum, gossip phase, and shuffles all
// included. The gossip cadence (every 3 steps, with 6 steps/epoch) straddles
// the save point, so a dropped step counter would fire gossip on the wrong
// step and diverge immediately.
func TestModelSaveRestoreBitIdentity(t *testing.T) {
	samples := checkpointTrainSamples(71, 44) // 44 % 8 != 0: partial batch every epoch

	ref := buildLocalUpdateModel(t, 14, 3)
	refOpt := cnn.NewSGD(0.05, 0.9)
	refStream := rng.New(77).Split("fit")
	ref.Fit(samples, 2, 8, refOpt, refStream)

	var ck bytes.Buffer
	if err := ref.SaveTraining(&ck, refOpt, refStream); err != nil {
		t.Fatal(err)
	}
	ref.Fit(samples, 3, 8, refOpt, refStream) // uninterrupted continuation

	// A fresh process rebuilds the model the same way (different init seed is
	// fine — every weight is overwritten) and restores the checkpoint.
	res := buildLocalUpdateModel(t, 99, 0) // gossip cadence comes from the checkpoint
	resOpt := cnn.NewSGD(0.05, 0.9)
	streams, err := res.RestoreTraining(bytes.NewReader(ck.Bytes()), resOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 1 {
		t.Fatalf("RestoreTraining returned %d streams, want 1", len(streams))
	}
	if res.gossipEvery != 3 || res.stepCount != ref.stepCount-18 {
		t.Fatalf("restored gossip cadence/phase = %d/%d", res.gossipEvery, res.stepCount)
	}
	res.FitParallel(samples, 3, 8, 4, resOpt, streams[0]) // resumed, parallel for good measure

	requireSameModel(t, ref, res, "restored local-update model")
	if ref.stepCount != res.stepCount {
		t.Fatalf("step counters diverged: %d vs %d", ref.stepCount, res.stepCount)
	}

	// The restored replicas stay wired into the conv hooks: the distributed
	// executor must see the restored kernels, not stale clones.
	in := randInput(rng.New(123))
	want := res.Net.Forward(in)
	got, err := res.ForwardDistributed(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, got, 1e-9) {
		t.Fatalf("distributed forward diverged after restore: %v vs %v", want, got)
	}
}

// TestModelRestoreRejectsMismatch covers the rejection paths: mode mismatch
// and garbage bytes.
func TestModelRestoreRejectsMismatch(t *testing.T) {
	samples := checkpointTrainSamples(73, 24)

	src := buildLocalUpdateModel(t, 15, 0)
	opt := cnn.NewSGD(0.05, 0.9)
	src.Fit(samples, 1, 8, opt, rng.New(5).Split("fit"))
	var ck bytes.Buffer
	if err := src.SaveTraining(&ck, opt, rng.New(5)); err != nil {
		t.Fatal(err)
	}

	shared, err := Build(testNet(16), wsn.NewGrid(6, 6, 1), StrategyBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shared.RestoreTraining(bytes.NewReader(ck.Bytes()), cnn.NewSGD(0.05, 0.9)); err == nil {
		t.Error("shared-weight model accepted a local-update checkpoint")
	} else if !strings.Contains(err.Error(), "local-update") {
		t.Errorf("mode-mismatch error %q does not mention local-update", err)
	}

	if _, err := src.RestoreTraining(bytes.NewReader([]byte("garbage")), opt); err == nil {
		t.Error("RestoreTraining accepted garbage bytes")
	}
}
