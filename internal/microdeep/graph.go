// Package microdeep implements the paper's core contribution: MicroDeep
// [7], a distributed CNN executed by a wireless sensor network.
//
// The CNN's neurons ("units") are mapped onto XY coordinates over the
// sensor field (the paper's Fig. 8), assigned to sensor nodes, and the
// forward and backward passes are carried out by exchanging activation and
// gradient values over multi-hop WSN links. The package provides:
//
//   - a unit graph extracted from a cnn.Network (sites, dependency edges);
//   - two assignment strategies: coordinate-nearest (the natural XY
//     mapping) and the paper's balanced heuristic that equalizes units per
//     node while maximizing the correspondence of CNN links and WSN links;
//   - per-node communication-cost accounting (the Fig. 10 metric);
//   - a distributed forward executor whose output is exactly equal to the
//     centralized CNN (property-tested), so the only accuracy-relevant
//     approximation is the local weight-update mode;
//   - the local update mode itself: per-node replicas of shared
//     convolution kernels trained without gradient aggregation,
//     "sacrificing some accuracy" to eliminate weight-synchronization
//     traffic, as §IV.C describes.
package microdeep

import (
	"fmt"
	"math"

	"zeiot/internal/cnn"
	"zeiot/internal/geom"
)

// StageKind discriminates the computational stages of the unit graph.
type StageKind int

// Stage kinds.
const (
	StageInput StageKind = iota + 1
	StageConv
	StagePool
	StageDense
)

func (k StageKind) String() string {
	switch k {
	case StageInput:
		return "input"
	case StageConv:
		return "conv"
	case StagePool:
		return "pool"
	case StageDense:
		return "dense"
	default:
		return fmt.Sprintf("StageKind(%d)", int(k))
	}
}

// Site is a group of CNN units sharing one spatial position: all channels
// of a conv/pool output at (y, x), or a single dense neuron. A site is the
// unit of placement — its Width scalar outputs always live together on one
// node.
type Site struct {
	ID    int
	Stage int
	// Y, X are the spatial indices within the stage; dense sites use
	// (0, i).
	Y, X int
	// Coord is the site's normalized position in [0,1]² over the sensor
	// field.
	Coord geom.Point
	// Width is the number of scalar values the site produces per sample.
	Width int
	// Deps are the site IDs whose outputs this site reads.
	Deps []int
}

// Stage describes one computational stage of the graph.
type Stage struct {
	Kind StageKind
	// H, W, C are the output dims; dense stages have H=1, W=#neurons, C=1.
	H, W, C int
	// Conv/Pool/AvgPool/Dense point at the owning layer for weight access
	// and pooling semantics.
	Conv    *cnn.Conv2D
	Pool    *cnn.MaxPool2D
	AvgPool *cnn.AvgPool2D
	Dense   *cnn.Dense
	// FusedReLU records that a ReLU immediately follows and is evaluated
	// in place on the producing node (no extra units or traffic).
	FusedReLU bool
	// Sites lists the site IDs belonging to this stage in (y,x) order.
	Sites []int
}

// Graph is the unit graph of a CNN: sites grouped into stages with
// dependency edges, ready for assignment onto a WSN. A Graph must not be
// copied after first use: it owns its plan cache (see plancache.go).
type Graph struct {
	Stages []Stage
	Sites  []Site

	// plans memoizes transfer plans for this graph, keyed on the target
	// network's identity and topology epoch plus the assignment hash; the
	// cache dies with the graph.
	plans planCache
}

// NumSites returns the total number of sites.
func (g *Graph) NumSites() int { return len(g.Sites) }

// PlanCacheStats returns the cumulative hit/miss counts of this graph's
// transfer-plan cache (see plancache.go). A forced recompute after a hash
// collision counts as a miss.
func (g *Graph) PlanCacheStats() (hits, misses uint64) {
	g.plans.mu.Lock()
	defer g.plans.mu.Unlock()
	return g.plans.hits, g.plans.misses
}

// NumUnits returns the total number of scalar units (sum of site widths)
// excluding the input stage, i.e. the neurons the WSN must compute.
func (g *Graph) NumUnits() int {
	n := 0
	for _, s := range g.Sites {
		if s.Stage > 0 {
			n += s.Width
		}
	}
	return n
}

func normCoord(y, x, h, w int) geom.Point {
	return geom.Point{X: (float64(x) + 0.5) / float64(w), Y: (float64(y) + 0.5) / float64(h)}
}

// BuildGraph extracts the unit graph from net. Supported layer sequences
// are Conv2D, MaxPool2D, Dense with optional ReLU after Conv2D/Dense and a
// single Flatten before the first Dense — exactly the CNN family the paper
// uses (one conv, one pool, two fully-connected layers in §IV.C).
func BuildGraph(net *cnn.Network) (*Graph, error) {
	g := &Graph{}
	in := net.InShape()
	if len(in) != 3 {
		return nil, fmt.Errorf("microdeep: input shape %v, want (C,H,W)", in)
	}
	// Input stage: one site per sensor cell.
	addStage := func(st Stage) int {
		g.Stages = append(g.Stages, st)
		return len(g.Stages) - 1
	}
	addSite := func(stageIdx, y, x, width int, coord geom.Point, deps []int) int {
		id := len(g.Sites)
		g.Sites = append(g.Sites, Site{ID: id, Stage: stageIdx, Y: y, X: x, Coord: coord, Width: width, Deps: deps})
		g.Stages[stageIdx].Sites = append(g.Stages[stageIdx].Sites, id)
		return id
	}
	inputStage := addStage(Stage{Kind: StageInput, C: in[0], H: in[1], W: in[2]})
	// siteAt maps the previous stage's (y,x) to site ID.
	prevIdx := make([][]int, in[1])
	for y := 0; y < in[1]; y++ {
		prevIdx[y] = make([]int, in[2])
		for x := 0; x < in[2]; x++ {
			prevIdx[y][x] = addSite(inputStage, y, x, in[0], normCoord(y, x, in[1], in[2]), nil)
		}
	}
	prevShape := []int{in[0], in[1], in[2]}
	prevDense := []int(nil) // site IDs when previous stage is dense

	layers := net.Layers()
	for li := 0; li < len(layers); li++ {
		switch l := layers[li].(type) {
		case *cnn.Conv2D:
			if prevDense != nil {
				return nil, fmt.Errorf("microdeep: conv after dense unsupported")
			}
			out := l.OutShape(prevShape)
			st := addStage(Stage{Kind: StageConv, C: out[0], H: out[1], W: out[2], Conv: l})
			if li+1 < len(layers) {
				if _, ok := layers[li+1].(*cnn.ReLU); ok {
					g.Stages[st].FusedReLU = true
					li++
				}
			}
			newIdx := make([][]int, out[1])
			for oy := 0; oy < out[1]; oy++ {
				newIdx[oy] = make([]int, out[2])
				for ox := 0; ox < out[2]; ox++ {
					y0, y1, x0, x1 := l.Receptive(oy, ox)
					var deps []int
					for y := y0; y <= y1; y++ {
						if y < 0 || y >= prevShape[1] {
							continue
						}
						for x := x0; x <= x1; x++ {
							if x < 0 || x >= prevShape[2] {
								continue
							}
							deps = append(deps, prevIdx[y][x])
						}
					}
					newIdx[oy][ox] = addSite(st, oy, ox, out[0], normCoord(oy, ox, out[1], out[2]), deps)
				}
			}
			prevIdx, prevShape = newIdx, out
		case *cnn.MaxPool2D:
			if prevDense != nil {
				return nil, fmt.Errorf("microdeep: pool after dense unsupported")
			}
			out := l.OutShape(prevShape)
			st := addStage(Stage{Kind: StagePool, C: out[0], H: out[1], W: out[2], Pool: l})
			newIdx := poolSites(g, addSite, st, l, out, prevShape, prevIdx)
			prevIdx, prevShape = newIdx, out
		case *cnn.AvgPool2D:
			if prevDense != nil {
				return nil, fmt.Errorf("microdeep: pool after dense unsupported")
			}
			out := l.OutShape(prevShape)
			st := addStage(Stage{Kind: StagePool, C: out[0], H: out[1], W: out[2], AvgPool: l})
			newIdx := poolSites(g, addSite, st, l, out, prevShape, prevIdx)
			prevIdx, prevShape = newIdx, out
		case *cnn.Flatten:
			// No units: flattening is a bookkeeping step. The following
			// dense layer reads the spatial sites directly.
		case *cnn.ReLU:
			// A ReLU not fused into conv/dense above (e.g. after pool):
			// element-wise on the producing node, no units or traffic.
			if len(g.Stages) > 0 {
				g.Stages[len(g.Stages)-1].FusedReLU = true
			}
		case *cnn.Dense:
			var deps []int
			if prevDense != nil {
				deps = prevDense
			} else {
				for y := 0; y < prevShape[1]; y++ {
					deps = append(deps, prevIdx[y]...)
				}
			}
			st := addStage(Stage{Kind: StageDense, H: 1, W: l.Out, C: 1, Dense: l})
			if li+1 < len(layers) {
				if _, ok := layers[li+1].(*cnn.ReLU); ok {
					g.Stages[st].FusedReLU = true
					li++
				}
			}
			// Dense sites spread over a √n×√n virtual grid so the
			// coordinate assigner scatters them across the field.
			side := int(math.Ceil(math.Sqrt(float64(l.Out))))
			ids := make([]int, l.Out)
			for o := 0; o < l.Out; o++ {
				coord := normCoord(o/side, o%side, side, side)
				ids[o] = addSite(st, 0, o, 1, coord, deps)
			}
			prevDense = ids
			prevShape = nil
		default:
			return nil, fmt.Errorf("microdeep: unsupported layer %T", l)
		}
	}
	return g, nil
}

// poolSites adds one site per pooling output position with its window
// dependencies, for either pooling flavour.
func poolSites(g *Graph, addSite func(stageIdx, y, x, width int, coord geom.Point, deps []int) int, st int, l cnn.SpatialLayer, out, prevShape []int, prevIdx [][]int) [][]int {
	newIdx := make([][]int, out[1])
	for oy := 0; oy < out[1]; oy++ {
		newIdx[oy] = make([]int, out[2])
		for ox := 0; ox < out[2]; ox++ {
			y0, y1, x0, x1 := l.Receptive(oy, ox)
			var deps []int
			for y := y0; y <= y1 && y < prevShape[1]; y++ {
				for x := x0; x <= x1 && x < prevShape[2]; x++ {
					deps = append(deps, prevIdx[y][x])
				}
			}
			newIdx[oy][ox] = addSite(st, oy, ox, out[0], normCoord(oy, ox, out[1], out[2]), deps)
		}
	}
	_ = g
	return newIdx
}
