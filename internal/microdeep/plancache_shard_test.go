package microdeep

import (
	"testing"

	"zeiot/internal/wsn"
)

// TestPlanCacheSurvivesUnrelatedShardChurn pins the PR 7 cache contract on
// sharded networks: a Fail in a shard none of the plan's consulted routes
// touch must be a cache hit; a flip inside a touched shard, or any Recover,
// must recompute.
func TestPlanCacheSurvivesUnrelatedShardChurn(t *testing.T) {
	g, err := BuildGraph(testNet(1))
	if err != nil {
		t.Fatal(err)
	}
	// 12×12 grid, 16 shards of ≤9 nodes. Sites land in the field's interior;
	// corner node 143's shard is far from every consulted route.
	w := wsn.NewGridSharded(12, 12, 1, wsn.ShardOptions{TargetShardSize: 9})
	if !w.Sharded() {
		t.Fatal("expected sharded core")
	}
	a, err := AssignBalanced(g, w, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan0, err := Plan(g, a, w)
	if err != nil {
		t.Fatal(err)
	}
	_, miss0 := g.PlanCacheStats()

	// Find a node whose shard hosts no assigned site — churn there must
	// not evict the plan. (Routes could still traverse such a shard, so
	// pick the victim from shards the recomputed-touch signature excludes:
	// assert behaviourally via the hit counter instead of reimplementing
	// the signature.)
	victim := -1
	used := make(map[int]bool)
	for _, tr := range plan0 {
		used[w.ShardOf(tr.From)] = true
		used[w.ShardOf(tr.To)] = true
	}
	for _, n := range a.NodeOf {
		used[w.ShardOf(n)] = true
	}
	for id := w.NumNodes() - 1; id >= 0; id-- {
		if !used[w.ShardOf(id)] {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Skip("every shard hosts plan traffic; cannot pick an unrelated victim")
	}
	w.Fail(victim)
	hitsBefore, _ := g.PlanCacheStats()
	plan1, err := Plan(g, a, w)
	if err != nil {
		t.Fatal(err)
	}
	hitsAfter, missAfter := g.PlanCacheStats()
	if hitsAfter != hitsBefore+1 || missAfter != miss0 {
		t.Fatalf("unrelated Fail evicted plan cache: hits %d→%d misses %d→%d",
			hitsBefore, hitsAfter, miss0, missAfter)
	}
	if len(plan1) != len(plan0) {
		t.Fatalf("cached plan changed length: %d vs %d", len(plan1), len(plan0))
	}

	// A Recover anywhere must invalidate (recoveries can shorten routes in
	// shards they do not belong to).
	w.Recover(victim)
	if _, err := Plan(g, a, w); err != nil {
		t.Fatal(err)
	}
	_, missRecover := g.PlanCacheStats()
	if missRecover != missAfter+1 {
		t.Fatalf("Recover did not invalidate plan cache: misses %d→%d", missAfter, missRecover)
	}

	// A Fail inside a touched shard must invalidate; the recomputed plan
	// must avoid the failed node.
	inPlan := plan0[len(plan0)/2].From
	w.Fail(inPlan)
	_, missBefore := g.PlanCacheStats()
	plan2, err := Plan(g, a, w)
	if err == nil {
		for _, tr := range plan2 {
			if tr.From == inPlan || tr.To == inPlan {
				t.Fatalf("recomputed plan still routes through failed node %d", inPlan)
			}
		}
	}
	_, missFail := g.PlanCacheStats()
	if missFail != missBefore+1 {
		t.Fatalf("touched-shard Fail did not invalidate plan cache: misses %d→%d", missBefore, missFail)
	}
}

// TestPlanShardedMatchesDense checks that planning over the sharded core
// yields the same total cost as over an identical dense network (shortest
// paths may differ node-by-node, but lengths — and therefore plan costs —
// must agree).
func TestPlanShardedMatchesDense(t *testing.T) {
	g, err := BuildGraph(testNet(2))
	if err != nil {
		t.Fatal(err)
	}
	sharded := wsn.NewGridSharded(6, 6, 1, wsn.ShardOptions{TargetShardSize: 9})
	dense := wsn.NewGrid(6, 6, 1)
	as, err := AssignBalanced(g, sharded, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	ad, err := AssignBalanced(g, dense, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Same geometry, same hop metric ⇒ identical assignments.
	for i := range as.NodeOf {
		if as.NodeOf[i] != ad.NodeOf[i] {
			t.Fatalf("assignment diverges at site %d: %d vs %d", i, as.NodeOf[i], ad.NodeOf[i])
		}
	}
	cs, err := ChargeForward(g, as, sharded)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := ChargeForward(g, ad, dense)
	if err != nil {
		t.Fatal(err)
	}
	if cs != cd {
		t.Fatalf("forward charge sharded %d dense %d", cs, cd)
	}
}
