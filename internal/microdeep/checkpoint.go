package microdeep

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"zeiot/internal/cnn"
	"zeiot/internal/rng"
)

// modelBlob is the gob wire format of a MicroDeep training checkpoint. The
// underlying CNN (weights, optimizer state for the shared parameters, rng
// stream positions) rides along as an embedded cnn training blob; the
// MicroDeep-specific state is the local-update machinery — per-position conv
// kernel replicas, their momentum buffers, and the gossip step counter whose
// phase decides when the next neighbour-averaging round fires.
type modelBlob struct {
	Version     int
	Net         []byte
	LocalUpdate bool
	GossipEvery int
	StepCount   int
	Replicas    []replicaBlob
}

// replicaBlob captures one conv stage's per-position kernels plus their SGD
// velocity buffers (nil entries: the kernel was never stepped).
type replicaBlob struct {
	Stage   int
	W       int
	Kernels [][]float64
	Vel     [][]float64
}

const modelBlobVersion = 1

// SaveTraining checkpoints the model mid-training: the CNN's weights and
// the optimizer state for its shared parameters, every local-update kernel
// replica with its momentum, the gossip cadence and step phase, and the
// positions of the given rng streams. RestoreTraining into an identically
// built model resumes bit-identically — including firing the next gossip
// round on the same optimizer step as the uninterrupted run.
func (m *Model) SaveTraining(w io.Writer, opt *cnn.SGD, streams ...*rng.Stream) error {
	var nb bytes.Buffer
	if err := m.Net.SaveTraining(&nb, opt, streams...); err != nil {
		return err
	}
	blob := modelBlob{
		Version:     modelBlobVersion,
		Net:         nb.Bytes(),
		LocalUpdate: m.localUpdate,
		GossipEvery: m.gossipEvery,
		StepCount:   m.stepCount,
	}
	for _, r := range m.replicas {
		rb := replicaBlob{Stage: r.stage, W: r.w, Vel: opt.VelocitySnapshot(r.kernels)}
		for _, k := range r.kernels {
			rb.Kernels = append(rb.Kernels, append([]float64(nil), k.Data()...))
		}
		blob.Replicas = append(blob.Replicas, rb)
	}
	return gob.NewEncoder(w).Encode(blob)
}

// RestoreTraining loads a checkpoint written by SaveTraining into this model,
// which must have been built the same way (same network architecture, same
// WSN/assignment, EnableLocalUpdate called iff it was on the saved model).
// Kernel data is copied into the model's existing replica tensors — pointer
// identity is preserved, so the conv hooks and any cached distributed
// executor stay valid — and opt receives the saved momentum for both shared
// parameters and replicas. It returns streams positioned exactly where the
// saved ones were.
func (m *Model) RestoreTraining(r io.Reader, opt *cnn.SGD) ([]*rng.Stream, error) {
	var blob modelBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("microdeep: decoding checkpoint: %w", err)
	}
	if blob.Version < 1 || blob.Version > modelBlobVersion {
		return nil, fmt.Errorf("microdeep: unsupported checkpoint version %d", blob.Version)
	}
	if blob.LocalUpdate != m.localUpdate {
		return nil, fmt.Errorf("microdeep: checkpoint local-update mode %v, model has %v", blob.LocalUpdate, m.localUpdate)
	}
	if blob.StepCount < 0 || blob.GossipEvery < 0 {
		return nil, fmt.Errorf("microdeep: checkpoint has negative step count %d or gossip cadence %d", blob.StepCount, blob.GossipEvery)
	}
	if len(blob.Replicas) != len(m.replicas) {
		return nil, fmt.Errorf("microdeep: checkpoint has %d replica stages, model has %d", len(blob.Replicas), len(m.replicas))
	}
	streams, err := m.Net.RestoreTraining(bytes.NewReader(blob.Net), opt)
	if err != nil {
		return nil, err
	}
	for i, rb := range blob.Replicas {
		rep := m.replicas[i]
		if rb.Stage != rep.stage || rb.W != rep.w || len(rb.Kernels) != len(rep.kernels) {
			return nil, fmt.Errorf("microdeep: replica stage %d mismatch (stage %d/%d, w %d/%d, kernels %d/%d)",
				i, rb.Stage, rep.stage, rb.W, rep.w, len(rb.Kernels), len(rep.kernels))
		}
		for p, kd := range rb.Kernels {
			if len(kd) != rep.kernels[p].Size() {
				return nil, fmt.Errorf("microdeep: replica stage %d kernel %d has %d elements, model has %d",
					i, p, len(kd), rep.kernels[p].Size())
			}
			copy(rep.kernels[p].Data(), kd)
		}
		if err := opt.RestoreVelocity(rep.kernels, rb.Vel); err != nil {
			return nil, err
		}
	}
	m.gossipEvery = blob.GossipEvery
	m.stepCount = blob.StepCount
	return streams, nil
}
