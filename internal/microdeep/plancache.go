package microdeep

import (
	"sync"

	"zeiot/internal/wsn"
)

// The plan cache memoizes Plan results. A transfer plan depends on exactly
// three inputs — the dependency graph, the site-to-node assignment, and the
// network topology — and the hot cost paths (CostPerSample, the experiment
// sweeps, E8's resilience probes) recompute it with identical inputs over
// and over.
//
// The cache lives on the Graph whose plans it stores, so its lifetime is
// owned: entries die with the graph instead of pinning every graph and
// network ever planned in a package-global map, and a freed graph's reused
// address can never resurface a stale entry (the old global cache keyed on
// the raw *Graph pointer and could). Networks are identified by their
// process-unique wsn.Network.ID — a monotonic counter, never reused — plus
// the network's TopologyEpoch, so a Fail/Recover invalidates every plan
// derived from the old connectivity without any explicit hook.
//
// Assignments are value slices, so the key carries an FNV-1a hash of
// NodeOf and each entry keeps its own copy of the slice: a hash hit is
// confirmed element-wise before the cached plan is reused, making a hash
// collision a forced miss instead of a wrong plan.

// planCacheLimit bounds each graph's cache; when full it is cleared
// wholesale (the working set of distinct (network, assignment, epoch)
// triples in one experiment is far below the limit, so eviction order
// never matters).
const planCacheLimit = 64

type planKey struct {
	net   uint64 // wsn.Network.ID — process-unique, never reused
	epoch uint64
	n     int
	hash  uint64
}

type planEntry struct {
	nodeOf []int
	plan   []Transfer
	// Sharded-network validity signature (see planFor): the epochs of every
	// shard any consulted route touched, plus the recover generation.
	sharded    bool
	touched    shardTouch
	recoverGen uint64
}

// shardTouch records which shards a plan computation's routes traversed,
// with the epoch each shard had at computation time. On sharded networks a
// cached plan stays valid exactly while those epochs (and RecoverGen) hold:
// a Fail in an untouched shard cannot change any consulted route (it only
// removes edges elsewhere), so the plan survives unrelated churn.
type shardTouch struct {
	shards []int
	epochs []uint64
}

func (t *shardTouch) reset() {
	t.shards = t.shards[:0]
	t.epochs = t.epochs[:0]
}

// addRoute folds one consulted route's shards into the set.
func (t *shardTouch) addRoute(w *wsn.Network, route []int) {
	for _, v := range route {
		s := w.ShardOf(v)
		known := false
		for _, ps := range t.shards {
			if ps == s {
				known = true
				break
			}
		}
		if !known {
			t.shards = append(t.shards, s)
			t.epochs = append(t.epochs, w.ShardEpoch(s))
		}
	}
}

func (t *shardTouch) valid(w *wsn.Network) bool {
	for k, s := range t.shards {
		if w.ShardEpoch(s) != t.epochs[k] {
			return false
		}
	}
	return true
}

func (t *shardTouch) clone() shardTouch {
	return shardTouch{
		shards: append([]int(nil), t.shards...),
		epochs: append([]uint64(nil), t.epochs...),
	}
}

// planCache is the per-Graph plan memo. The mutex guards the map and the
// scratch bitsets computePlan dedups in (experiments plan the same graph
// from concurrent goroutines).
type planCache struct {
	mu sync.Mutex
	m  map[planKey]*planEntry
	// hits/misses count planFor outcomes over the cache's lifetime (a
	// hash collision forces a recompute and counts as a miss). Read via
	// Graph.PlanCacheStats by the observability layer.
	hits, misses uint64
	// rawSeen/edgeSeen are the reusable dedup bitsets computePlan
	// scratches in; touchScratch collects shard signatures on sharded
	// networks.
	rawSeen, edgeSeen bitset
	touchScratch      shardTouch
}

// hashNodeOf is FNV-1a over the assignment vector, mixing each node id as
// a 64-bit word.
func hashNodeOf(nodeOf []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range nodeOf {
		x := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	return h
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// planFor returns the (possibly cached) transfer plan for g under a on w.
// The returned slice is shared with the cache and must be treated as
// read-only; the exported Plan copies it before handing it out.
//
// Dense networks key on TopologyEpoch: any flip anywhere invalidates (the
// dense core rebuilds everything anyway). Sharded networks key with epoch 0
// and validate entries against the fine-grained signature computePlan
// collected — the epochs of every shard a consulted route touched, plus
// RecoverGen — so the cache survives churn in shards the plan never sees.
func planFor(g *Graph, a Assignment, w *wsn.Network) ([]Transfer, error) {
	sharded := w.Sharded()
	key := planKey{net: w.ID(), n: len(a.NodeOf), hash: hashNodeOf(a.NodeOf)}
	if !sharded {
		key.epoch = w.TopologyEpoch()
	}
	c := &g.plans
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok && equalInts(e.nodeOf, a.NodeOf) {
		if !e.sharded || (e.recoverGen == w.RecoverGen() && e.touched.valid(w)) {
			c.hits++
			return e.plan, nil
		}
	}
	c.misses++
	var touch *shardTouch
	if sharded {
		c.touchScratch.reset()
		touch = &c.touchScratch
	}
	plan, err := computePlan(g, a, w, &c.rawSeen, &c.edgeSeen, touch)
	if err != nil {
		return nil, err
	}
	if c.m == nil {
		c.m = make(map[planKey]*planEntry)
	} else if len(c.m) >= planCacheLimit {
		clear(c.m)
	}
	e := &planEntry{nodeOf: append([]int(nil), a.NodeOf...), plan: plan}
	if sharded {
		e.sharded = true
		e.touched = touch.clone()
		e.recoverGen = w.RecoverGen()
	}
	c.m[key] = e
	return plan, nil
}

// bitset is a reusable flat bit vector with O(touched) clearing: testSet
// records which words it dirtied so reset only rewrites those.
type bitset struct {
	words   []uint64
	touched []int
}

// ensure sizes the bitset for n bits and clears it. Touched indices may
// come from a previous, larger sizing, so the clear happens at full
// capacity before truncating.
func (b *bitset) ensure(n int) {
	nw := (n + 63) >> 6
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
		b.touched = b.touched[:0]
		return
	}
	b.words = b.words[:cap(b.words)]
	b.reset()
	b.words = b.words[:nw]
}

// testSet reports whether bit i was already set, setting it either way.
func (b *bitset) testSet(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m != 0 {
		return true
	}
	if b.words[w] == 0 {
		b.touched = append(b.touched, w)
	}
	b.words[w] |= m
	return false
}

// reset clears every touched word.
func (b *bitset) reset() {
	for _, w := range b.touched {
		b.words[w] = 0
	}
	b.touched = b.touched[:0]
}
