package microdeep

import (
	"math"
	"testing"

	"zeiot/internal/cnn"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
	"zeiot/internal/wsn"
)

func testNet(seed uint64) *cnn.Network {
	s := rng.New(seed)
	return cnn.NewNetwork([]int{1, 6, 6},
		cnn.NewConv2D(1, 4, 3, 3, 1, 1, s.Split("conv")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(2, 2),
		cnn.NewFlatten(),
		cnn.NewDense(36, 8, s.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(8, 2, s.Split("d2")),
	)
}

func randInput(s *rng.Stream) *tensor.Tensor {
	in := tensor.New(1, 6, 6)
	d := in.Data()
	for i := range d {
		d[i] = s.NormMeanStd(0, 1)
	}
	return in
}

func TestBuildGraphStructure(t *testing.T) {
	g, err := BuildGraph(testNet(1))
	if err != nil {
		t.Fatal(err)
	}
	// Stages: input, conv(+relu), pool, dense(+relu), dense.
	if len(g.Stages) != 5 {
		t.Fatalf("stages = %d", len(g.Stages))
	}
	kinds := []StageKind{StageInput, StageConv, StagePool, StageDense, StageDense}
	for i, k := range kinds {
		if g.Stages[i].Kind != k {
			t.Fatalf("stage %d kind = %v, want %v", i, g.Stages[i].Kind, k)
		}
	}
	if !g.Stages[1].FusedReLU || !g.Stages[3].FusedReLU || g.Stages[2].FusedReLU {
		t.Fatal("ReLU fusion wrong")
	}
	// Site counts: 36 input + 36 conv + 9 pool + 8 + 2.
	if len(g.Sites) != 36+36+9+8+2 {
		t.Fatalf("sites = %d", len(g.Sites))
	}
	// Units: 36*4 conv + 9*4 pool + 8 + 2 = 190.
	if g.NumUnits() != 36*4+9*4+8+2 {
		t.Fatalf("units = %d", g.NumUnits())
	}
	// Interior conv site has 9 deps; corner has 4 (padding).
	conv := g.Stages[1]
	corner := g.Sites[conv.Sites[0]]
	if len(corner.Deps) != 4 {
		t.Fatalf("corner conv deps = %d", len(corner.Deps))
	}
	center := g.Sites[conv.Sites[1*6+1]]
	if len(center.Deps) != 9 {
		t.Fatalf("center conv deps = %d", len(center.Deps))
	}
	// Pool sites have 4 deps; dense sites depend on all 9 pool sites.
	pool := g.Sites[g.Stages[2].Sites[0]]
	if len(pool.Deps) != 4 {
		t.Fatalf("pool deps = %d", len(pool.Deps))
	}
	d1 := g.Sites[g.Stages[3].Sites[0]]
	if len(d1.Deps) != 9 {
		t.Fatalf("dense1 deps = %d", len(d1.Deps))
	}
	d2 := g.Sites[g.Stages[4].Sites[0]]
	if len(d2.Deps) != 8 {
		t.Fatalf("dense2 deps = %d", len(d2.Deps))
	}
}

func TestDistributedForwardEqualsCentralized(t *testing.T) {
	// The headline invariant: site-by-site distributed execution produces
	// exactly the centralized logits, across several random networks and
	// inputs.
	for seed := uint64(1); seed <= 5; seed++ {
		net := testNet(seed)
		g, err := BuildGraph(net)
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExecutor(g)
		s := rng.New(seed * 100)
		for trial := 0; trial < 10; trial++ {
			in := randInput(s)
			want := net.Forward(in)
			got, err := ex.Forward(in)
			if err != nil {
				t.Fatal(err)
			}
			if !tensor.Equal(want, got, 1e-9) {
				t.Fatalf("seed %d trial %d: centralized %v != distributed %v", seed, trial, want, got)
			}
		}
	}
}

func TestAssignCoordinatePinsInputsToSensors(t *testing.T) {
	net := testNet(2)
	g, _ := BuildGraph(net)
	w := wsn.NewGrid(6, 6, 1)
	a, err := AssignByCoordinate(g, w)
	if err != nil {
		t.Fatal(err)
	}
	// With a 6x6 sensor grid matching the 6x6 input, input site (y,x) must
	// live on node y*6+x.
	for _, sid := range g.Stages[0].Sites {
		s := g.Sites[sid]
		if a.NodeOf[sid] != s.Y*6+s.X {
			t.Fatalf("input site (%d,%d) on node %d", s.Y, s.X, a.NodeOf[sid])
		}
	}
	for _, n := range a.NodeOf {
		if n < 0 || n >= w.NumNodes() {
			t.Fatalf("site assigned to invalid node %d", n)
		}
	}
}

func TestAssignBalancedImprovesBalanceAndCorrespondence(t *testing.T) {
	net := testNet(3)
	g, _ := BuildGraph(net)
	w := wsn.NewGrid(6, 6, 1)
	coord, err := AssignByCoordinate(g, w)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := AssignBalanced(g, w, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(a Assignment) int {
		m := 0
		for _, v := range UnitsPerNode(g, a, w.NumNodes()) {
			if v > m {
				m = v
			}
		}
		return m
	}
	if maxOf(bal) > maxOf(coord) {
		t.Fatalf("balanced max load %d > coordinate %d", maxOf(bal), maxOf(coord))
	}
	if LinkCorrespondence(g, bal, w) < LinkCorrespondence(g, coord, w)-0.05 {
		t.Fatalf("balanced correspondence %.3f much worse than coordinate %.3f",
			LinkCorrespondence(g, bal, w), LinkCorrespondence(g, coord, w))
	}
	// Input sites stay pinned.
	for _, sid := range g.Stages[0].Sites {
		if bal.NodeOf[sid] != coord.NodeOf[sid] {
			t.Fatal("balanced assignment moved an input site")
		}
	}
}

func chargeBoth(t *testing.T, g *Graph, a Assignment, w *wsn.Network) CostReport {
	t.Helper()
	w.ResetCounters()
	if _, err := ChargeForward(g, a, w); err != nil {
		t.Fatal(err)
	}
	if _, err := ChargeBackward(g, a, w); err != nil {
		t.Fatal(err)
	}
	return Report(w)
}

// TestFeasibleHeuristicReducesPeakCost reproduces the Fig. 10 comparison in
// miniature: an accuracy-optimal CNN with the natural coordinate assignment
// (a) versus a feasible, WSN-sized CNN with the balanced heuristic (b). The
// peak per-node cost of (b) must be substantially lower.
func TestFeasibleHeuristicReducesPeakCost(t *testing.T) {
	s := rng.New(4)
	w := wsn.NewGrid(6, 6, 1)
	optimal := cnn.NewNetwork([]int{1, 6, 6},
		cnn.NewConv2D(1, 8, 3, 3, 1, 1, s.Split("c1")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(2, 2),
		cnn.NewFlatten(),
		cnn.NewDense(72, 16, s.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(16, 2, s.Split("d2")),
	)
	feasible := testNet(4) // 4 channels, dense 8
	gOpt, err := BuildGraph(optimal)
	if err != nil {
		t.Fatal(err)
	}
	gFea, err := BuildGraph(feasible)
	if err != nil {
		t.Fatal(err)
	}
	aOpt, err := AssignByCoordinate(gOpt, w)
	if err != nil {
		t.Fatal(err)
	}
	aFea, err := AssignBalanced(gFea, w, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	optRep := chargeBoth(t, gOpt, aOpt, w)
	feaRep := chargeBoth(t, gFea, aFea, w)
	if float64(feaRep.Max) > 0.75*float64(optRep.Max) {
		t.Fatalf("feasible+heuristic max %d not well below optimal %d", feaRep.Max, optRep.Max)
	}
}

// TestBalancedCostStaysComparable guards against the balanced heuristic
// exploding traffic on a matched grid where the coordinate mapping is
// already near-optimal for communication.
func TestBalancedCostStaysComparable(t *testing.T) {
	net := testNet(4)
	g, _ := BuildGraph(net)
	w := wsn.NewGrid(6, 6, 1)
	coord, _ := AssignByCoordinate(g, w)
	bal, _ := AssignBalanced(g, w, DefaultBalanceOptions())
	coordRep := chargeBoth(t, g, coord, w)
	balRep := chargeBoth(t, g, bal, w)
	if float64(balRep.Max) > 2*float64(coordRep.Max) {
		t.Fatalf("balanced max cost %d more than doubles coordinate %d", balRep.Max, coordRep.Max)
	}
}

func TestChargeForwardPicksCheaperPlan(t *testing.T) {
	// Site 0 (width 3, node 0) feeds dense sites 1 and 2, both on node 1.
	// Raw shipping would move the 3-wide vector once (cost 3); in-network
	// aggregation moves one width-1 partial sum per consumer (cost 2), so
	// the aggregation plan must win.
	g := &Graph{
		Sites: []Site{
			{ID: 0, Stage: 0, Width: 3},
			{ID: 1, Stage: 1, Width: 1, Deps: []int{0}},
			{ID: 2, Stage: 1, Width: 1, Deps: []int{0}},
		},
		Stages: []Stage{{Kind: StageInput, Sites: []int{0}}, {Kind: StageDense, Sites: []int{1, 2}}},
	}
	w := wsn.NewGrid(1, 2, 1)
	a := Assignment{NodeOf: []int{0, 1, 1}}
	total, err := ChargeForward(g, a, w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 {
		t.Fatalf("total scalar-hops = %d, want 2 (aggregated partial sums)", total)
	}
	if w.Node(0).TxScalars != 2 || w.Node(1).RxScalars != 2 {
		t.Fatalf("counters tx=%d rx=%d", w.Node(0).TxScalars, w.Node(1).RxScalars)
	}
}

func TestChargeForwardRawWinsForWideConsumers(t *testing.T) {
	// One width-1 dep feeding a single width-4 conv-like consumer on the
	// other node: aggregation would ship a 4-wide partial, raw ships the
	// 1-wide input. Raw must win.
	g := &Graph{
		Sites: []Site{
			{ID: 0, Stage: 0, Width: 1},
			{ID: 1, Stage: 1, Width: 4, Deps: []int{0}},
		},
		Stages: []Stage{{Kind: StageInput, Sites: []int{0}}, {Kind: StageConv, Sites: []int{1}}},
	}
	w := wsn.NewGrid(1, 2, 1)
	a := Assignment{NodeOf: []int{0, 1}}
	total, err := ChargeForward(g, a, w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 {
		t.Fatalf("total scalar-hops = %d, want 1 (raw input shipping)", total)
	}
}

func TestChargeSameNodeIsFree(t *testing.T) {
	net := testNet(5)
	g, _ := BuildGraph(net)
	// Single-node network: everything co-located, zero traffic.
	w := wsn.NewGrid(1, 1, 1)
	a, err := AssignByCoordinate(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ChargeForward(g, a, w); err != nil {
		t.Fatal(err)
	}
	if w.TotalCost() != 0 {
		t.Fatalf("single-node deployment charged %d", w.TotalCost())
	}
}

func TestCentralizedBaselineConcentratesTraffic(t *testing.T) {
	// The §IV.C "peak traffic" claim holds when the CNN reduces data as it
	// flows (pooling shrinks the field faster than channels grow): the
	// sink of a ship-everything deployment then carries far more traffic
	// than any node of the distributed one. Use a 12×12 field with an
	// aggressively pooling CNN, as in the lounge experiment's geometry.
	s := rng.New(6)
	net := cnn.NewNetwork([]int{1, 12, 12},
		cnn.NewConv2D(1, 2, 3, 3, 1, 1, s.Split("c")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(4, 4),
		cnn.NewFlatten(),
		cnn.NewDense(18, 4, s.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(4, 2, s.Split("d2")),
	)
	g, err := BuildGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	w := wsn.NewGrid(12, 12, 1)
	if _, err := ChargeCentralized(g, w, 0); err != nil {
		t.Fatal(err)
	}
	central := Report(w)

	w.ResetCounters()
	bal, err := AssignBalanced(g, w, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ChargeForward(g, bal, w); err != nil {
		t.Fatal(err)
	}
	dist := Report(w)
	if dist.Max >= central.Max {
		t.Fatalf("distributed max %d >= centralized max %d", dist.Max, central.Max)
	}
}

func TestModelBuildStrategies(t *testing.T) {
	w := wsn.NewGrid(6, 6, 1)
	for _, strat := range []Strategy{StrategyCoordinate, StrategyBalanced} {
		m, err := Build(testNet(7), w, strat)
		if err != nil {
			t.Fatalf("strategy %d: %v", strat, err)
		}
		if m.Graph.NumSites() == 0 {
			t.Fatal("empty graph")
		}
	}
	if _, err := Build(testNet(7), w, Strategy(99)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestLocalUpdateTrainingDivergesReplicas(t *testing.T) {
	s := rng.New(2025)
	var samples []cnn.Sample
	for i := 0; i < 120; i++ {
		in := tensor.New(1, 6, 6)
		label := i % 2
		x := s.Intn(3)
		if label == 1 {
			x += 3
		}
		in.Set(1, 0, s.Intn(6), x)
		samples = append(samples, cnn.Sample{Input: in, Label: label})
	}
	w := wsn.NewGrid(6, 6, 1)
	m, err := Build(testNet(8), w, StrategyBalanced)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableLocalUpdate()
	if m.ReplicaCount() == 0 {
		t.Fatal("no replicas created")
	}
	if m.ReplicaDivergence() > 1e-12 {
		t.Fatalf("replicas diverged before training: %v", m.ReplicaDivergence())
	}
	opt := cnn.NewSGD(0.05, 0.9)
	m.Fit(samples, 10, 8, opt, s.Split("train"))
	if m.ReplicaDivergence() < 1e-9 {
		t.Fatalf("independent updates did not diverge replicas: %v", m.ReplicaDivergence())
	}
	if acc := m.Evaluate(samples); acc < 0.85 {
		t.Fatalf("local-update training accuracy = %.3f", acc)
	}
}

func TestDistributedForwardMatchesInReplicaMode(t *testing.T) {
	s := rng.New(11)
	w := wsn.NewGrid(6, 6, 1)
	m, err := Build(testNet(9), w, StrategyBalanced)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableLocalUpdate()
	// Perturb one replica so replicas genuinely differ.
	var samples []cnn.Sample
	for i := 0; i < 40; i++ {
		samples = append(samples, cnn.Sample{Input: randInput(s), Label: i % 2})
	}
	m.Fit(samples, 3, 8, cnn.NewSGD(0.05, 0.9), s.Split("t"))
	for trial := 0; trial < 5; trial++ {
		in := randInput(s)
		want := m.Net.Forward(in) // hooks make this the replica-aware result
		got, err := m.ForwardDistributed(in)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(want, got, 1e-9) {
			t.Fatalf("replica-mode distributed forward diverged: %v vs %v", want, got)
		}
	}
}

func TestCostPerSampleSyncVsLocal(t *testing.T) {
	w := wsn.NewGrid(6, 6, 1)
	m, err := Build(testNet(10), w, StrategyBalanced)
	if err != nil {
		t.Fatal(err)
	}
	syncRep, err := m.CostPerSample(true)
	if err != nil {
		t.Fatal(err)
	}
	localRep, err := m.CostPerSample(false)
	if err != nil {
		t.Fatal(err)
	}
	if localRep.Total >= syncRep.Total {
		t.Fatalf("local total %d >= sync total %d", localRep.Total, syncRep.Total)
	}
	if localRep.Max > syncRep.Max {
		t.Fatalf("local max %d > sync max %d", localRep.Max, syncRep.Max)
	}
}

func TestAssignmentAvoidsFailedNodes(t *testing.T) {
	net := testNet(12)
	g, _ := BuildGraph(net)
	w := wsn.NewGrid(6, 6, 1)
	w.Fail(14)
	w.Fail(15)
	for _, build := range []func() (Assignment, error){
		func() (Assignment, error) { return AssignByCoordinate(g, w) },
		func() (Assignment, error) { return AssignBalanced(g, w, DefaultBalanceOptions()) },
	} {
		a, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for sid, n := range a.NodeOf {
			if n == 14 || n == 15 {
				t.Fatalf("site %d assigned to failed node %d", sid, n)
			}
		}
	}
}

func TestUnitsPerNodeTotal(t *testing.T) {
	net := testNet(13)
	g, _ := BuildGraph(net)
	w := wsn.NewGrid(6, 6, 1)
	a, _ := AssignBalanced(g, w, DefaultBalanceOptions())
	sum := 0
	for _, v := range UnitsPerNode(g, a, w.NumNodes()) {
		sum += v
	}
	if sum != g.NumUnits() {
		t.Fatalf("units per node sum %d != total units %d", sum, g.NumUnits())
	}
}

func TestLinkCorrespondenceBounds(t *testing.T) {
	net := testNet(14)
	g, _ := BuildGraph(net)
	w := wsn.NewGrid(6, 6, 1)
	a, _ := AssignBalanced(g, w, DefaultBalanceOptions())
	lc := LinkCorrespondence(g, a, w)
	if lc < 0 || lc > 1 || math.IsNaN(lc) {
		t.Fatalf("correspondence = %v", lc)
	}
	// Single node: trivially 1.
	w1 := wsn.NewGrid(1, 1, 1)
	a1, _ := AssignByCoordinate(g, w1)
	if LinkCorrespondence(g, a1, w1) != 1 {
		t.Fatal("single-node correspondence != 1")
	}
}

func TestExecutorDeadNodesDegradeGracefully(t *testing.T) {
	net := testNet(21)
	g, err := BuildGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	w := wsn.NewGrid(6, 6, 1)
	a, err := AssignBalanced(g, w, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(77)
	in := randInput(s)

	healthy := NewExecutor(g)
	healthy.Assign = &a
	healthy.DeadNodes = map[int]bool{}
	got, err := healthy.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := net.Forward(in)
	if !tensor.Equal(want, got, 1e-9) {
		t.Fatal("empty dead set changed the output")
	}

	broken := NewExecutor(g)
	broken.Assign = &a
	broken.DeadNodes = map[int]bool{0: true, 7: true, 14: true}
	out, err := broken.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Equal(want, out, 1e-9) {
		t.Fatal("killing three nodes left the output bit-identical")
	}
	for _, v := range out.Data() {
		if v != v { // NaN check
			t.Fatal("dead nodes produced NaN output")
		}
	}
}

func TestAvgPoolDistributedEquivalence(t *testing.T) {
	s := rng.New(41)
	net := cnn.NewNetwork([]int{1, 6, 6},
		cnn.NewConv2D(1, 3, 3, 3, 1, 1, s.Split("c")),
		cnn.NewReLU(),
		cnn.NewAvgPool2D(2, 2),
		cnn.NewFlatten(),
		cnn.NewDense(27, 2, s.Split("d")),
	)
	g, err := BuildGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(g)
	for trial := 0; trial < 10; trial++ {
		in := randInput(s)
		want := net.Forward(in)
		got, err := ex.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(want, got, 1e-9) {
			t.Fatalf("avg-pool distributed forward diverged: %v vs %v", want, got)
		}
	}
}

func TestGossipReducesDivergence(t *testing.T) {
	s := rng.New(43)
	var samples []cnn.Sample
	for i := 0; i < 120; i++ {
		in := tensor.New(1, 6, 6)
		label := i % 2
		x := s.Intn(3)
		if label == 1 {
			x += 3
		}
		in.Set(1, 0, s.Intn(6), x)
		samples = append(samples, cnn.Sample{Input: in, Label: label})
	}
	w := wsn.NewGrid(6, 6, 1)
	run := func(gossip int) float64 {
		m, err := Build(testNet(44), w, StrategyBalanced)
		if err != nil {
			t.Fatal(err)
		}
		m.EnableLocalUpdate()
		m.SetGossip(gossip)
		m.Fit(samples, 8, 8, cnn.NewSGD(0.05, 0.9), rng.New(45))
		return m.ReplicaDivergence()
	}
	pure := run(0)
	gossiped := run(2)
	if gossiped >= pure {
		t.Fatalf("gossip divergence %.4f not below pure local %.4f", gossiped, pure)
	}
	if gossiped <= 0 {
		t.Fatal("gossip fully collapsed divergence (suspicious)")
	}
}
