package microdeep

import (
	"fmt"

	"zeiot/internal/wsn"
)

// ChargeForward charges w's per-node counters with the traffic of one
// distributed forward pass under assignment a. Per stage it uses the
// cheaper of two transfer plans and returns the total scalar-hops charged:
//
//   - raw shipping: every dependency site's output vector travels once to
//     each distinct node hosting one of its consumers (deduplicated
//     broadcast); or
//   - in-network aggregation: because every stage's unit is an associative
//     reduction over its inputs (weighted partial sums for conv and dense,
//     running max for pool), each node on the routing tree toward the
//     consumer forwards one partial aggregate of the consumer's width
//     instead of the raw inputs. This is what keeps MicroDeep's per-node
//     peak traffic a small fraction of a ship-everything deployment.
func ChargeForward(g *Graph, a Assignment, w *wsn.Network) (int, error) {
	return charge(g, a, w, false)
}

// ChargeBackward charges the traffic of one distributed backward pass: the
// transpose of the forward plan. Under raw shipping, consumer nodes return
// aggregated activation gradients to each producer; under aggregation, the
// consumer's error signal is broadcast down the same routing tree (one
// vector of the consumer's width per tree edge) and each node applies it to
// its local partial. Weight-gradient traffic is charged separately (see
// ChargeWeightSync) because the local-update mode eliminates it.
func ChargeBackward(g *Graph, a Assignment, w *wsn.Network) (int, error) {
	return charge(g, a, w, true)
}

// Transfer is one single-hop link transmission of the distributed forward
// pass: From transmits Scalars values to its direct neighbour To during the
// processing of stage Stage. The full per-sample traffic is the ordered
// list Plan returns; ChargeForward/ChargeBackward apply it to the
// counters, and package-external schedulers (internal/schedule) turn it
// into collision-free TDMA rounds.
type Transfer struct {
	From, To int
	Scalars  int
	Stage    int
}

// Plan computes the forward-pass link transmissions for g under a. Per
// stage it picks the cheaper of raw dependency shipping (deduplicated per
// (dep, consumer-node) and expanded hop by hop) and in-network aggregation
// (one partial-aggregate vector per routing-tree edge); see ChargeForward
// for why both plans are available. The order is deterministic: stages in
// graph order, transfers in site/dependency order.
//
// Plans are memoized per (graph, assignment, topology epoch) — see
// plancache.go — so repeated calls with unchanged inputs replay the cached
// list. The returned slice is a fresh copy the caller owns.
func Plan(g *Graph, a Assignment, w *wsn.Network) ([]Transfer, error) {
	plan, err := planFor(g, a, w)
	if err != nil {
		return nil, err
	}
	return append([]Transfer(nil), plan...), nil
}

// computePlan builds the transfer plan from scratch. rawSeen and edgeSeen
// are caller-provided scratch bitsets (reused across calls to avoid the
// per-stage map churn the dedup otherwise costs). touch, when non-nil,
// collects the shards of every consulted route — both candidate plans, not
// just the winner, because a flip on a rejected candidate's route can flip
// the cost comparison itself — for the sharded plan-cache signature.
func computePlan(g *Graph, a Assignment, w *wsn.Network, rawSeen, edgeSeen *bitset, touch *shardTouch) ([]Transfer, error) {
	numNodes := w.NumNodes()
	rawSeen.ensure(len(g.Sites) * numNodes)
	edgeSeen.ensure(numNodes * numNodes)
	var plan []Transfer
	for si := 1; si < len(g.Stages); si++ {
		st := g.Stages[si]
		// Plan A: raw shipping, deduplicated per (dep, consumer node).
		rawSeen.reset()
		var rawPlan []Transfer
		rawCost := 0
		for _, sid := range st.Sites {
			tn := a.NodeOf[sid]
			for _, dep := range g.Sites[sid].Deps {
				dn := a.NodeOf[dep]
				if dn == tn {
					continue
				}
				if rawSeen.testSet(dep*numNodes + tn) {
					continue
				}
				route, err := w.Route(dn, tn)
				if err != nil {
					return nil, fmt.Errorf("microdeep: planning site %d: %w", dep, err)
				}
				if touch != nil {
					touch.addRoute(w, route)
				}
				width := g.Sites[dep].Width
				for k := 0; k+1 < len(route); k++ {
					rawPlan = append(rawPlan, Transfer{From: route[k], To: route[k+1], Scalars: width, Stage: si})
					rawCost += width
				}
			}
		}
		// Plan B: per-consumer aggregation trees (union of routes from
		// every dependency's node to the consumer's node), edges ordered
		// leaf-to-root so partial aggregates flow correctly.
		var aggPlan []Transfer
		aggCost := 0
		for _, sid := range st.Sites {
			tn := a.NodeOf[sid]
			edgeSeen.reset()
			var edges []Transfer
			for _, dep := range g.Sites[sid].Deps {
				dn := a.NodeOf[dep]
				if dn == tn {
					continue
				}
				route, err := w.Route(dn, tn)
				if err != nil {
					return nil, fmt.Errorf("microdeep: planning site %d: %w", sid, err)
				}
				if touch != nil {
					touch.addRoute(w, route)
				}
				for k := 0; k+1 < len(route); k++ {
					if edgeSeen.testSet(route[k]*numNodes + route[k+1]) {
						continue
					}
					edges = append(edges, Transfer{From: route[k], To: route[k+1], Scalars: g.Sites[sid].Width, Stage: si})
				}
			}
			aggPlan = append(aggPlan, edges...)
			aggCost += len(edges) * g.Sites[sid].Width
		}
		if rawCost <= aggCost {
			plan = append(plan, rawPlan...)
		} else {
			plan = append(plan, aggPlan...)
		}
	}
	return plan, nil
}

func charge(g *Graph, a Assignment, w *wsn.Network, reverse bool) (int, error) {
	plan, err := planFor(g, a, w)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, tr := range plan {
		from, to := tr.From, tr.To
		if reverse {
			from, to = to, from
		}
		w.Node(from).TxScalars += tr.Scalars
		w.Node(to).RxScalars += tr.Scalars
		total += tr.Scalars
	}
	return total, nil
}

// ChargeForwardReliable replays the forward transfer plan link by link
// through the lossy-link fault model with per-hop retries, charging the
// actual Tx/Rx scalars of every transmission attempt (retransmissions
// included) on w's counters — the Fig. 10 comm-cost metric under loss. A
// transfer that exhausts its retries stays lost; its upstream attempts
// remain charged because that energy was spent. With fm == nil the charges
// are exactly ChargeForward's, so the disabled fault layer is a strict
// no-op. It returns the aggregate delivery stats.
func ChargeForwardReliable(g *Graph, a Assignment, w *wsn.Network, fm *wsn.LinkFaultModel, rp wsn.RetryPolicy) (DeliveryStats, error) {
	plan, err := planFor(g, a, w)
	if err != nil {
		return DeliveryStats{}, err
	}
	var st DeliveryStats
	for _, tr := range plan {
		// Plan transfers are single-hop link transmissions, so SendReliable
		// resolves to one direct hop with its retry loop.
		d, err := w.SendReliable(tr.From, tr.To, tr.Scalars, fm, rp)
		if err != nil {
			return st, err
		}
		st.add(d)
	}
	return st, nil
}

// ChargeWeightSync charges the gradient-aggregation traffic a fully
// synchronized distributed training step needs for shared convolution
// kernels: every node hosting conv sites ships its kernel gradient to the
// coordinator node and receives the averaged kernel back. The local-update
// mode (the paper's "weights updated independently by each sensor node")
// avoids exactly this traffic.
func ChargeWeightSync(g *Graph, a Assignment, w *wsn.Network, coordinator int) (int, error) {
	total := 0
	for _, st := range g.Stages {
		if st.Kind != StageConv {
			continue
		}
		kernelSize := st.Conv.Weight().Size() + st.Conv.Bias().Size()
		hosts := make(map[int]bool)
		for _, sid := range st.Sites {
			hosts[a.NodeOf[sid]] = true
		}
		for n := range hosts {
			if n == coordinator {
				continue
			}
			up, err := w.Send(n, coordinator, kernelSize)
			if err != nil {
				return total, err
			}
			down, err := w.Send(coordinator, n, kernelSize)
			if err != nil {
				return total, err
			}
			total += (up + down) * kernelSize
		}
	}
	return total, nil
}

// ChargeCentralized charges the traffic of the paper's "standard CNN"
// deployment: every sensor ships its raw reading to a single sink node that
// runs the whole network. This is the baseline whose peak per-node traffic
// MicroDeep reduces to ~13% in §IV.C.
func ChargeCentralized(g *Graph, w *wsn.Network, sink int) (int, error) {
	total := 0
	for _, st := range g.Stages {
		if st.Kind != StageInput {
			continue
		}
		minP, maxP := fieldBox(w)
		for _, sid := range st.Sites {
			s := g.Sites[sid]
			src := nearestLiveNode(w, toField(s.Coord, minP, maxP))
			hops, err := w.Send(src, sink, s.Width)
			if err != nil {
				return total, err
			}
			total += hops * s.Width
		}
	}
	return total, nil
}

// CostReport summarizes per-node communication cost after charging.
type CostReport struct {
	PerNode []int
	Max     int
	Total   int
	Mean    float64
}

// Report snapshots w's counters into a CostReport.
func Report(w *wsn.Network) CostReport {
	costs := w.Costs()
	r := CostReport{PerNode: costs}
	live := 0
	for _, nd := range w.Nodes() {
		c := nd.Cost()
		if c > r.Max {
			r.Max = c
		}
		r.Total += c
		if !nd.Failed {
			live++
		}
	}
	if live > 0 {
		r.Mean = float64(r.Total) / float64(live)
	}
	return r
}
