package microdeep_test

import (
	"fmt"

	"zeiot/internal/cnn"
	"zeiot/internal/microdeep"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
	"zeiot/internal/wsn"
)

// Example deploys a small CNN over a 4×4 sensor grid, verifies the
// distributed forward pass matches the centralized one, and reads the
// per-sample communication cost.
func Example() {
	s := rng.New(1)
	net := cnn.NewNetwork([]int{1, 4, 4},
		cnn.NewConv2D(1, 2, 3, 3, 1, 1, s.Split("conv")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(2, 2),
		cnn.NewFlatten(),
		cnn.NewDense(8, 2, s.Split("dense")),
	)
	grid := wsn.NewGrid(4, 4, 1)
	model, err := microdeep.Build(net, grid, microdeep.StrategyBalanced)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	in := tensor.New(1, 4, 4)
	in.Set(1, 0, 1, 2)
	central := model.Net.Forward(in)
	distributed, err := model.ForwardDistributed(in)
	if err != nil {
		fmt.Println("forward:", err)
		return
	}
	fmt.Println("identical:", tensor.Equal(central, distributed, 1e-9))

	cost, err := model.CostPerSample(false)
	if err != nil {
		fmt.Println("cost:", err)
		return
	}
	fmt.Println("total cost positive:", cost.Total > 0)
	// Output:
	// identical: true
	// total cost positive: true
}

// ExamplePlan turns a deployment into link-level transfers, the input for
// the TDMA scheduler in internal/schedule.
func ExamplePlan() {
	s := rng.New(2)
	net := cnn.NewNetwork([]int{1, 4, 4},
		cnn.NewConv2D(1, 2, 3, 3, 1, 1, s.Split("conv")),
		cnn.NewFlatten(),
		cnn.NewDense(32, 2, s.Split("dense")),
	)
	grid := wsn.NewGrid(4, 4, 1)
	model, err := microdeep.Build(net, grid, microdeep.StrategyCoordinate)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	plan, err := microdeep.Plan(model.Graph, model.Assign, grid)
	if err != nil {
		fmt.Println("plan:", err)
		return
	}
	allLinks := true
	for _, tr := range plan {
		if !grid.Linked(tr.From, tr.To) {
			allLinks = false
		}
	}
	fmt.Println("transfers over real links:", allLinks)
	// Output:
	// transfers over real links: true
}
