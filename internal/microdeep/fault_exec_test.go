package microdeep

import (
	"testing"

	"zeiot/internal/geom"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
	"zeiot/internal/wsn"
)

// lossyExecutor builds a (graph, assignment, network) triple and an executor
// wired for lossy execution with the given fault config and retry policy.
func lossyExecutor(t *testing.T, cfg wsn.FaultConfig, rp wsn.RetryPolicy) (*Executor, *Graph, func(*tensor.Tensor) *tensor.Tensor) {
	t.Helper()
	net := testNet(21)
	g, err := BuildGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	w := wsn.NewGrid(6, 6, 1)
	a, err := AssignBalanced(g, w, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(g)
	ex.Assign = &a
	ex.Net = w
	ex.Faults = wsn.NewLinkFaultModel(cfg)
	ex.Retry = rp
	return ex, g, net.Forward
}

// TestExecutorLossyZeroDropBitIdentical requires the lossy path with a
// zero-loss fault model to reproduce the fault-free distributed forward
// pass bit for bit (and the centralized pass to float tolerance): the
// transport runs — transfers are counted and charged — but nothing is
// lost, so the numbers cannot move.
func TestExecutorLossyZeroDropBitIdentical(t *testing.T) {
	ex, g, central := lossyExecutor(t, wsn.FaultConfig{Seed: 1}, wsn.DefaultRetryPolicy())
	plain := NewExecutor(g)
	s := rng.New(77)
	for i := 0; i < 5; i++ {
		in := randInput(s)
		got, err := ex.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(want, got, 0) {
			t.Fatalf("sample %d: zero-loss lossy forward drifted from the fault-free executor", i)
		}
		if !tensor.Equal(central(in), got, 1e-9) {
			t.Fatalf("sample %d: zero-loss lossy forward drifted from centralized", i)
		}
	}
	if ex.Stats.Transfers == 0 {
		t.Fatal("lossy executor counted no transfers")
	}
	if ex.Stats.Lost != 0 || ex.Stats.Retries != 0 {
		t.Fatalf("zero-loss run recorded %d losses, %d retries", ex.Stats.Lost, ex.Stats.Retries)
	}
	if ex.Net.MaxCost() == 0 {
		t.Fatal("lossy executor charged no communication")
	}
}

// TestExecutorLossyTotalLossDegradesGracefully drops every link-level
// attempt with retries off: the pass must still complete — consuming sites
// compute on zero inputs — with every transfer reported lost and finite
// outputs.
func TestExecutorLossyTotalLossDegradesGracefully(t *testing.T) {
	ex, _, central := lossyExecutor(t, wsn.FaultConfig{Seed: 1, DropProb: 1}, wsn.RetryPolicy{})
	in := randInput(rng.New(77))
	out, err := ex.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Transfers == 0 || ex.Stats.Lost != ex.Stats.Transfers {
		t.Fatalf("stats %+v: want every transfer lost", ex.Stats)
	}
	for _, v := range out.Data() {
		if v != v {
			t.Fatal("total loss produced NaN output")
		}
	}
	if tensor.Equal(central(in), out, 1e-9) {
		t.Fatal("losing every transfer left the output identical to centralized")
	}
}

// TestExecutorLossyDeterministic runs the same lossy evaluation twice from
// fresh models, executors, and fault models: outputs, delivery stats, and
// charged counters must match exactly.
func TestExecutorLossyDeterministic(t *testing.T) {
	run := func() ([]*tensor.Tensor, DeliveryStats, int) {
		cfg := wsn.FaultConfig{Seed: 9, Burst: wsn.GilbertElliottFor(0.2)}
		ex, _, _ := lossyExecutor(t, cfg, wsn.RetryPolicy{MaxRetries: 2, BackoffBase: 1, BackoffCap: 8})
		s := rng.New(123)
		var outs []*tensor.Tensor
		for i := 0; i < 10; i++ {
			out, err := ex.Forward(randInput(s))
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, out)
		}
		return outs, ex.Stats, ex.Net.MaxCost()
	}
	outA, statsA, costA := run()
	outB, statsB, costB := run()
	if statsA != statsB {
		t.Fatalf("delivery stats differ across identical runs: %+v vs %+v", statsA, statsB)
	}
	if costA != costB {
		t.Fatalf("charged peak cost differs across identical runs: %d vs %d", costA, costB)
	}
	if statsA.Lost == 0 || statsA.Retries == 0 {
		t.Fatalf("stats %+v: the 20%% burst channel should lose and retry", statsA)
	}
	for i := range outA {
		if !tensor.Equal(outA[i], outB[i], 0) {
			t.Fatalf("sample %d output differs across identical runs", i)
		}
	}
}

// TestPlanCachePerGraphLifetime is the regression test for the old
// package-global plan cache, which keyed entries on raw *Graph /
// *wsn.Network pointers: it pinned every planned graph forever, and a freed
// object's reused address could serve a stale plan. The cache now lives on
// the Graph and identifies networks by a process-unique ID, so fresh
// networks — however the allocator places them — always miss, and each
// graph's entries are invisible to every other graph.
func TestPlanCachePerGraphLifetime(t *testing.T) {
	g, err := BuildGraph(testNet(31))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		// Each iteration drops its network; a reused allocation address
		// must not resurrect the previous iteration's entry.
		w := wsn.NewGrid(6, 6, 1)
		if seen[w.ID()] {
			t.Fatalf("iteration %d: network ID %d reused", i, w.ID())
		}
		seen[w.ID()] = true
		a, err := AssignBalanced(g, w, DefaultBalanceOptions())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Plan(g, a, w); err != nil {
			t.Fatal(err)
		}
		if got := len(g.plans.m); got != i+1 {
			t.Fatalf("iteration %d: cache holds %d entries, want %d (fresh network must miss)", i, got, i+1)
		}
	}

	// A second graph with identical structure keeps a fully separate cache.
	g2, err := BuildGraph(testNet(31))
	if err != nil {
		t.Fatal(err)
	}
	w := wsn.NewGrid(6, 6, 1)
	a2, err := AssignBalanced(g2, w, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(g2, a2, w); err != nil {
		t.Fatal(err)
	}
	if len(g2.plans.m) != 1 {
		t.Fatalf("second graph's cache holds %d entries, want 1", len(g2.plans.m))
	}
	if len(g.plans.m) != 8 {
		t.Fatalf("planning on the second graph disturbed the first graph's cache (%d entries)", len(g.plans.m))
	}
	for key := range g2.plans.m {
		if _, shared := g.plans.m[key]; shared {
			t.Fatal("two distinct graphs share a cache entry")
		}
	}
}

// TestPlanCacheDistinguishesTopologies plans one graph on two networks with
// identical node layout but different connectivity: both plans are cached
// under distinct keys and each replay matches a cold recompute.
func TestPlanCacheDistinguishesTopologies(t *testing.T) {
	g, err := BuildGraph(testNet(31))
	if err != nil {
		t.Fatal(err)
	}
	wide := wsn.NewGrid(6, 6, 1) // range 1.5: axial and diagonal links
	// Same node layout under a radio plan whose link budget closes at
	// 1 m (−40 dBm axial) but not √2 m (−44.2 dBm diagonal): axial-only.
	var pos []geom.Point
	for _, nd := range wide.Nodes() {
		pos = append(pos, nd.Pos)
	}
	plan := wsn.DefaultRadioPlan()
	plan.SensitivityDBm = -52
	plan.FadeMarginDB = 10
	narrow := wsn.NewFromRadioPlan(pos, plan)
	if narrow.Linked(0, 1) == false || narrow.Linked(0, 7) {
		t.Fatal("radio plan did not produce the axial-only topology")
	}
	a, err := AssignBalanced(g, wide, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	planWide, err := Plan(g, a, wide)
	if err != nil {
		t.Fatal(err)
	}
	planNarrow, err := Plan(g, a, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.plans.m) != 2 {
		t.Fatalf("cache holds %d entries, want one per topology", len(g.plans.m))
	}
	// Replays must serve each topology its own plan.
	again, err := Plan(g, a, wide)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(planWide) {
		t.Fatal("replay on the wide topology returned a different plan")
	}
	_ = planNarrow
}
