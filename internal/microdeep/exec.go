package microdeep

import (
	"fmt"
	"math"

	"zeiot/internal/obs"
	"zeiot/internal/tensor"
	"zeiot/internal/wsn"
)

// Executor runs the distributed forward pass site by site, exactly as the
// sensor nodes would: each site's output vector is computed from its
// dependencies' vectors using the owning layer's weights. The numeric
// result is identical to the centralized cnn.Network forward pass — the
// package's property tests enforce this — so distribution itself costs no
// accuracy, only communication.
//
// An Executor reuses internal per-site value buffers across Forward calls
// and is therefore not safe for concurrent use; give each goroutine its own
// Executor. The tensor returned by Forward is freshly allocated and owned
// by the caller.
type Executor struct {
	graph *Graph
	// KernelFor, when non-nil, selects the convolution kernel used for a
	// conv site (replica mode); nil uses the layer's shared weights.
	KernelFor func(stage int, s Site) *tensor.Tensor
	// Assign and DeadNodes, when set together, model broken devices (the
	// §V resilience challenge): a site assigned to a dead node produces
	// zeros — its value simply never appears on the network. DeadSites
	// silences individual sites directly (e.g. the readings of sensors
	// that died before a reassignment moved their compute elsewhere).
	Assign    *Assignment
	DeadNodes map[int]bool
	DeadSites map[int]bool
	// Net, Faults, and Retry (with Assign set) enable lossy execution — the
	// §V broken-devices challenge extended from dead nodes to marginal
	// links: every cross-node dependency transfer goes through
	// Net.SendReliable under the fault model, charging the actual
	// per-attempt Tx/Rx scalars on Net's counters. A transfer that
	// exhausts its retries degrades gracefully: the consuming site computes
	// on a zero input instead of the whole pass erroring. Outcomes are
	// deduplicated per (producer site, consumer node) within one Forward,
	// mirroring the planner's broadcast dedup. With Faults == nil the
	// executor is byte-identical to the fault-free path.
	Net    *wsn.Network
	Faults *wsn.LinkFaultModel
	Retry  wsn.RetryPolicy
	// Stats accumulates delivery outcomes across Forward calls while lossy
	// execution is active.
	Stats DeliveryStats
	// ComputeFaults and ComputeTick (with Assign set) extend brownouts from
	// the link layer to compute: a site whose node is browned out at
	// ComputeTick behaves exactly like a dead node for that pass — its value
	// is zero and never appears on the network. The caller advances
	// ComputeTick per pass (the harvest runtime uses its own tick counter,
	// distinct from the fault model's link-attempt clock).
	ComputeFaults *wsn.LinkFaultModel
	ComputeTick   uint64
	// values[sid] is a view into arena holding the site's output vector;
	// both are scratch reused across Forward calls.
	values [][]float64
	arena  []float64
	// Lossy-execution scratch: delivered memoizes outcomes per (producer
	// site, consumer node) for the current Forward; lostDeps/lostVals
	// record the value views swapped out for zeroBuf while one site
	// computes.
	delivered map[int]bool
	lostDeps  []int
	lostVals  [][]float64
	zeroBuf   []float64
}

// DeliveryStats aggregates reliable-transport outcomes over the transfers
// of one or more passes.
type DeliveryStats struct {
	// Transfers counts end-to-end deliveries attempted; Lost the ones that
	// exhausted their retries.
	Transfers, Lost int
	// Attempts counts link-level transmissions (retransmissions included);
	// Retries the retransmissions alone; BackoffSlots the accumulated
	// backoff waits.
	Attempts, Retries, BackoffSlots int
}

// Record publishes the rollup as gauges under prefix (transfers, lost,
// attempts, retries, backoff_slots); a no-op with a nil recorder. Gauges
// rather than counters so re-recording the same accumulated stats is
// idempotent.
func (s *DeliveryStats) Record(r obs.Recorder, prefix string) {
	if r == nil {
		return
	}
	r.Gauge(prefix+"transfers", float64(s.Transfers))
	r.Gauge(prefix+"lost", float64(s.Lost))
	r.Gauge(prefix+"attempts", float64(s.Attempts))
	r.Gauge(prefix+"retries", float64(s.Retries))
	r.Gauge(prefix+"backoff_slots", float64(s.BackoffSlots))
}

func (s *DeliveryStats) add(d wsn.Delivery) {
	s.Transfers++
	if !d.Delivered {
		s.Lost++
	}
	s.Attempts += d.Attempts
	s.Retries += d.Retries
	s.BackoffSlots += d.BackoffSlots
}

func (e *Executor) siteDead(sid int) bool {
	if e.DeadSites[sid] {
		return true
	}
	if e.Assign == nil {
		return false
	}
	if len(e.DeadNodes) > 0 && e.DeadNodes[e.Assign.NodeOf[sid]] {
		return true
	}
	return e.ComputeFaults != nil && e.ComputeFaults.BrownedOut(e.Assign.NodeOf[sid], e.ComputeTick)
}

// NewExecutor returns an executor for g with shared weights.
func NewExecutor(g *Graph) *Executor { return &Executor{graph: g} }

// ensureArena carves one flat backing buffer into per-site value slices so a
// Forward pass performs no per-site allocation.
func (e *Executor) ensureArena() {
	if e.values != nil {
		clear(e.arena)
		return
	}
	g := e.graph
	total := 0
	for _, s := range g.Sites {
		total += s.Width
	}
	e.arena = make([]float64, total)
	e.values = make([][]float64, len(g.Sites))
	off := 0
	for i, s := range g.Sites {
		e.values[i] = e.arena[off : off+s.Width]
		off += s.Width
	}
}

// Forward computes the network output for input (shape must match the input
// stage) and returns the final stage's outputs as a flat tensor (for a
// dense head: the logits).
func (e *Executor) Forward(input *tensor.Tensor) (*tensor.Tensor, error) {
	g := e.graph
	inSt := g.Stages[0]
	shape := input.Shape()
	if len(shape) != 3 || shape[0] != inSt.C || shape[1] != inSt.H || shape[2] != inSt.W {
		return nil, fmt.Errorf("microdeep: input shape %v, want (%d,%d,%d)", shape, inSt.C, inSt.H, inSt.W)
	}
	e.ensureArena()
	values := e.values
	ind := input.Data()
	for _, sid := range inSt.Sites {
		s := g.Sites[sid]
		if e.siteDead(sid) {
			continue // arena is pre-zeroed
		}
		v := values[sid]
		for c := 0; c < inSt.C; c++ {
			v[c] = ind[(c*inSt.H+s.Y)*inSt.W+s.X]
		}
	}
	lossy := e.Faults != nil && e.Assign != nil && e.Net != nil
	if lossy {
		if e.delivered == nil {
			e.delivered = make(map[int]bool)
		} else {
			clear(e.delivered)
		}
	}
	for si := 1; si < len(g.Stages); si++ {
		st := g.Stages[si]
		prev := g.Stages[si-1]
		for _, sid := range st.Sites {
			s := g.Sites[sid]
			if e.siteDead(sid) {
				continue // arena is pre-zeroed
			}
			if lossy {
				e.lossApply(sid)
			}
			out := values[sid]
			switch st.Kind {
			case StageConv:
				e.convSite(si, st, s, values, out)
			case StagePool:
				poolSite(st, s, values, out)
			case StageDense:
				denseSite(st, prev, s, g, values, out)
			default:
				return nil, fmt.Errorf("microdeep: cannot execute stage kind %v", st.Kind)
			}
			if lossy {
				e.lossRestore()
			}
			if st.FusedReLU {
				for i, v := range out {
					if v < 0 {
						out[i] = 0
					}
				}
			}
		}
	}
	last := g.Stages[len(g.Stages)-1]
	n := 0
	for _, sid := range last.Sites {
		n += len(values[sid])
	}
	flat := make([]float64, 0, n)
	for _, sid := range last.Sites {
		flat = append(flat, values[sid]...)
	}
	return tensor.FromSlice(flat, len(flat)), nil
}

// lossApply runs the reliable transport for every cross-node dependency of
// site sid, swapping the value views of undelivered dependencies to a
// shared zero buffer so the site computes on zero inputs. lossRestore must
// run after the site's compute. Outcomes memoize per (producer site,
// consumer node): all consumers co-located on one node share a single
// broadcast delivery, exactly like the planner's raw-shipping dedup.
func (e *Executor) lossApply(sid int) {
	s := e.graph.Sites[sid]
	tn := e.Assign.NodeOf[sid]
	numNodes := e.Net.NumNodes()
	for _, dep := range s.Deps {
		dn := e.Assign.NodeOf[dep]
		if dn == tn {
			continue
		}
		key := dep*numNodes + tn
		ok, seen := e.delivered[key]
		if !seen {
			width := e.graph.Sites[dep].Width
			d, err := e.Net.SendReliable(dn, tn, width, e.Faults, e.Retry)
			if err != nil {
				// No route (e.g. a failure partitioned the network): the
				// value can never arrive — treat as lost.
				e.Stats.Transfers++
				e.Stats.Lost++
				ok = false
			} else {
				e.Stats.add(d)
				ok = d.Delivered
			}
			e.delivered[key] = ok
		}
		if !ok {
			width := e.graph.Sites[dep].Width
			if len(e.zeroBuf) < width {
				e.zeroBuf = make([]float64, width)
			}
			e.lostDeps = append(e.lostDeps, dep)
			e.lostVals = append(e.lostVals, e.values[dep])
			e.values[dep] = e.zeroBuf[:width]
		}
	}
}

// lossRestore undoes lossApply's zero-buffer swaps.
func (e *Executor) lossRestore() {
	for i, dep := range e.lostDeps {
		e.values[dep] = e.lostVals[i]
		e.lostVals[i] = nil
	}
	e.lostDeps = e.lostDeps[:0]
	e.lostVals = e.lostVals[:0]
}

func (e *Executor) convSite(stage int, st Stage, s Site, values [][]float64, out []float64) {
	conv := st.Conv
	kernel := conv.Weight()
	if e.KernelFor != nil {
		if k := e.KernelFor(stage, s); k != nil {
			kernel = k
		}
	}
	kd := kernel.Data()
	bd := conv.Bias().Data()
	khkw := conv.KH * conv.KW
	kcs := conv.InC * khkw
	copy(out, bd[:st.C])
	y0, _, x0, _ := conv.Receptive(s.Y, s.X)
	for _, dep := range s.Deps {
		d := e.graph.Sites[dep]
		kOff := (d.Y-y0)*conv.KW + (d.X - x0)
		dv := values[dep]
		for oc := 0; oc < st.C; oc++ {
			for ic := 0; ic < conv.InC; ic++ {
				out[oc] += kd[oc*kcs+ic*khkw+kOff] * dv[ic]
			}
		}
	}
}

func poolSite(st Stage, s Site, values [][]float64, out []float64) {
	if st.AvgPool != nil {
		clear(out)
		for _, dep := range s.Deps {
			dv := values[dep]
			for c := 0; c < st.C; c++ {
				out[c] += dv[c]
			}
		}
		inv := 1 / float64(len(s.Deps))
		for c := range out {
			out[c] *= inv
		}
		return
	}
	for c := range out {
		out[c] = math.Inf(-1)
	}
	for _, dep := range s.Deps {
		dv := values[dep]
		for c := 0; c < st.C; c++ {
			if dv[c] > out[c] {
				out[c] = dv[c]
			}
		}
	}
}

func denseSite(st Stage, prev Stage, s Site, g *Graph, values [][]float64, out []float64) {
	dense := st.Dense
	o := s.X
	w := dense.Weight()
	wd := w.Data()
	inW := w.Dim(1)
	sum := dense.Params()[1].Data()[o] // bias
	for _, dep := range s.Deps {
		d := g.Sites[dep]
		dv := values[dep]
		if prev.Kind == StageDense {
			sum += wd[o*inW+d.X] * dv[0]
		} else {
			// Flattened (C,H,W) layout: index = (c*H + y)*W + x.
			for c := 0; c < prev.C; c++ {
				idx := (c*prev.H+d.Y)*prev.W + d.X
				sum += wd[o*inW+idx] * dv[c]
			}
		}
	}
	out[0] = sum
}
