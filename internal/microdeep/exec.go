package microdeep

import (
	"fmt"
	"math"

	"zeiot/internal/tensor"
)

// Executor runs the distributed forward pass site by site, exactly as the
// sensor nodes would: each site's output vector is computed from its
// dependencies' vectors using the owning layer's weights. The numeric
// result is identical to the centralized cnn.Network forward pass — the
// package's property tests enforce this — so distribution itself costs no
// accuracy, only communication.
//
// An Executor reuses internal per-site value buffers across Forward calls
// and is therefore not safe for concurrent use; give each goroutine its own
// Executor. The tensor returned by Forward is freshly allocated and owned
// by the caller.
type Executor struct {
	graph *Graph
	// KernelFor, when non-nil, selects the convolution kernel used for a
	// conv site (replica mode); nil uses the layer's shared weights.
	KernelFor func(stage int, s Site) *tensor.Tensor
	// Assign and DeadNodes, when set together, model broken devices (the
	// §V resilience challenge): a site assigned to a dead node produces
	// zeros — its value simply never appears on the network. DeadSites
	// silences individual sites directly (e.g. the readings of sensors
	// that died before a reassignment moved their compute elsewhere).
	Assign    *Assignment
	DeadNodes map[int]bool
	DeadSites map[int]bool
	// values[sid] is a view into arena holding the site's output vector;
	// both are scratch reused across Forward calls.
	values [][]float64
	arena  []float64
}

func (e *Executor) siteDead(sid int) bool {
	if e.DeadSites[sid] {
		return true
	}
	if e.Assign == nil || len(e.DeadNodes) == 0 {
		return false
	}
	return e.DeadNodes[e.Assign.NodeOf[sid]]
}

// NewExecutor returns an executor for g with shared weights.
func NewExecutor(g *Graph) *Executor { return &Executor{graph: g} }

// ensureArena carves one flat backing buffer into per-site value slices so a
// Forward pass performs no per-site allocation.
func (e *Executor) ensureArena() {
	if e.values != nil {
		clear(e.arena)
		return
	}
	g := e.graph
	total := 0
	for _, s := range g.Sites {
		total += s.Width
	}
	e.arena = make([]float64, total)
	e.values = make([][]float64, len(g.Sites))
	off := 0
	for i, s := range g.Sites {
		e.values[i] = e.arena[off : off+s.Width]
		off += s.Width
	}
}

// Forward computes the network output for input (shape must match the input
// stage) and returns the final stage's outputs as a flat tensor (for a
// dense head: the logits).
func (e *Executor) Forward(input *tensor.Tensor) (*tensor.Tensor, error) {
	g := e.graph
	inSt := g.Stages[0]
	shape := input.Shape()
	if len(shape) != 3 || shape[0] != inSt.C || shape[1] != inSt.H || shape[2] != inSt.W {
		return nil, fmt.Errorf("microdeep: input shape %v, want (%d,%d,%d)", shape, inSt.C, inSt.H, inSt.W)
	}
	e.ensureArena()
	values := e.values
	ind := input.Data()
	for _, sid := range inSt.Sites {
		s := g.Sites[sid]
		if e.siteDead(sid) {
			continue // arena is pre-zeroed
		}
		v := values[sid]
		for c := 0; c < inSt.C; c++ {
			v[c] = ind[(c*inSt.H+s.Y)*inSt.W+s.X]
		}
	}
	for si := 1; si < len(g.Stages); si++ {
		st := g.Stages[si]
		prev := g.Stages[si-1]
		for _, sid := range st.Sites {
			s := g.Sites[sid]
			if e.siteDead(sid) {
				continue // arena is pre-zeroed
			}
			out := values[sid]
			switch st.Kind {
			case StageConv:
				e.convSite(si, st, s, values, out)
			case StagePool:
				poolSite(st, s, values, out)
			case StageDense:
				denseSite(st, prev, s, g, values, out)
			default:
				return nil, fmt.Errorf("microdeep: cannot execute stage kind %v", st.Kind)
			}
			if st.FusedReLU {
				for i, v := range out {
					if v < 0 {
						out[i] = 0
					}
				}
			}
		}
	}
	last := g.Stages[len(g.Stages)-1]
	n := 0
	for _, sid := range last.Sites {
		n += len(values[sid])
	}
	flat := make([]float64, 0, n)
	for _, sid := range last.Sites {
		flat = append(flat, values[sid]...)
	}
	return tensor.FromSlice(flat, len(flat)), nil
}

func (e *Executor) convSite(stage int, st Stage, s Site, values [][]float64, out []float64) {
	conv := st.Conv
	kernel := conv.Weight()
	if e.KernelFor != nil {
		if k := e.KernelFor(stage, s); k != nil {
			kernel = k
		}
	}
	kd := kernel.Data()
	bd := conv.Bias().Data()
	khkw := conv.KH * conv.KW
	kcs := conv.InC * khkw
	copy(out, bd[:st.C])
	y0, _, x0, _ := conv.Receptive(s.Y, s.X)
	for _, dep := range s.Deps {
		d := e.graph.Sites[dep]
		kOff := (d.Y-y0)*conv.KW + (d.X - x0)
		dv := values[dep]
		for oc := 0; oc < st.C; oc++ {
			for ic := 0; ic < conv.InC; ic++ {
				out[oc] += kd[oc*kcs+ic*khkw+kOff] * dv[ic]
			}
		}
	}
}

func poolSite(st Stage, s Site, values [][]float64, out []float64) {
	if st.AvgPool != nil {
		clear(out)
		for _, dep := range s.Deps {
			dv := values[dep]
			for c := 0; c < st.C; c++ {
				out[c] += dv[c]
			}
		}
		inv := 1 / float64(len(s.Deps))
		for c := range out {
			out[c] *= inv
		}
		return
	}
	for c := range out {
		out[c] = math.Inf(-1)
	}
	for _, dep := range s.Deps {
		dv := values[dep]
		for c := 0; c < st.C; c++ {
			if dv[c] > out[c] {
				out[c] = dv[c]
			}
		}
	}
}

func denseSite(st Stage, prev Stage, s Site, g *Graph, values [][]float64, out []float64) {
	dense := st.Dense
	o := s.X
	w := dense.Weight()
	wd := w.Data()
	inW := w.Dim(1)
	sum := dense.Params()[1].Data()[o] // bias
	for _, dep := range s.Deps {
		d := g.Sites[dep]
		dv := values[dep]
		if prev.Kind == StageDense {
			sum += wd[o*inW+d.X] * dv[0]
		} else {
			// Flattened (C,H,W) layout: index = (c*H + y)*W + x.
			for c := 0; c < prev.C; c++ {
				idx := (c*prev.H+d.Y)*prev.W + d.X
				sum += wd[o*inW+idx] * dv[c]
			}
		}
	}
	out[0] = sum
}
