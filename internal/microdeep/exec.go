package microdeep

import (
	"fmt"
	"math"

	"zeiot/internal/tensor"
)

// Executor runs the distributed forward pass site by site, exactly as the
// sensor nodes would: each site's output vector is computed from its
// dependencies' vectors using the owning layer's weights. The numeric
// result is identical to the centralized cnn.Network forward pass — the
// package's property tests enforce this — so distribution itself costs no
// accuracy, only communication.
type Executor struct {
	graph *Graph
	// KernelFor, when non-nil, selects the convolution kernel used for a
	// conv site (replica mode); nil uses the layer's shared weights.
	KernelFor func(stage int, s Site) *tensor.Tensor
	// Assign and DeadNodes, when set together, model broken devices (the
	// §V resilience challenge): a site assigned to a dead node produces
	// zeros — its value simply never appears on the network. DeadSites
	// silences individual sites directly (e.g. the readings of sensors
	// that died before a reassignment moved their compute elsewhere).
	Assign    *Assignment
	DeadNodes map[int]bool
	DeadSites map[int]bool
}

func (e *Executor) siteDead(sid int) bool {
	if e.DeadSites[sid] {
		return true
	}
	if e.Assign == nil || len(e.DeadNodes) == 0 {
		return false
	}
	return e.DeadNodes[e.Assign.NodeOf[sid]]
}

// NewExecutor returns an executor for g with shared weights.
func NewExecutor(g *Graph) *Executor { return &Executor{graph: g} }

// Forward computes the network output for input (shape must match the input
// stage) and returns the final stage's outputs as a flat tensor (for a
// dense head: the logits).
func (e *Executor) Forward(input *tensor.Tensor) (*tensor.Tensor, error) {
	g := e.graph
	inSt := g.Stages[0]
	shape := input.Shape()
	if len(shape) != 3 || shape[0] != inSt.C || shape[1] != inSt.H || shape[2] != inSt.W {
		return nil, fmt.Errorf("microdeep: input shape %v, want (%d,%d,%d)", shape, inSt.C, inSt.H, inSt.W)
	}
	values := make([][]float64, len(g.Sites))
	for _, sid := range inSt.Sites {
		s := g.Sites[sid]
		v := make([]float64, inSt.C)
		if !e.siteDead(sid) {
			for c := 0; c < inSt.C; c++ {
				v[c] = input.At(c, s.Y, s.X)
			}
		}
		values[sid] = v
	}
	for si := 1; si < len(g.Stages); si++ {
		st := g.Stages[si]
		prev := g.Stages[si-1]
		for _, sid := range st.Sites {
			s := g.Sites[sid]
			if e.siteDead(sid) {
				values[sid] = make([]float64, s.Width)
				continue
			}
			var out []float64
			switch st.Kind {
			case StageConv:
				out = e.convSite(si, st, s, values)
			case StagePool:
				out = poolSite(st, s, g, values)
			case StageDense:
				out = denseSite(st, prev, s, g, values)
			default:
				return nil, fmt.Errorf("microdeep: cannot execute stage kind %v", st.Kind)
			}
			if st.FusedReLU {
				for i, v := range out {
					if v < 0 {
						out[i] = 0
					}
				}
			}
			values[sid] = out
		}
	}
	last := g.Stages[len(g.Stages)-1]
	var flat []float64
	for _, sid := range last.Sites {
		flat = append(flat, values[sid]...)
	}
	return tensor.FromSlice(flat, len(flat)), nil
}

func (e *Executor) convSite(stage int, st Stage, s Site, values [][]float64) []float64 {
	conv := st.Conv
	kernel := conv.Weight()
	if e.KernelFor != nil {
		if k := e.KernelFor(stage, s); k != nil {
			kernel = k
		}
	}
	out := make([]float64, st.C)
	for oc := 0; oc < st.C; oc++ {
		out[oc] = conv.Bias().At(oc)
	}
	y0, _, x0, _ := conv.Receptive(s.Y, s.X)
	for _, dep := range s.Deps {
		d := e.graph.Sites[dep]
		ky, kx := d.Y-y0, d.X-x0
		dv := values[dep]
		for oc := 0; oc < st.C; oc++ {
			for ic := 0; ic < conv.InC; ic++ {
				out[oc] += kernel.At(oc, ic, ky, kx) * dv[ic]
			}
		}
	}
	return out
}

func poolSite(st Stage, s Site, g *Graph, values [][]float64) []float64 {
	out := make([]float64, st.C)
	if st.AvgPool != nil {
		for _, dep := range s.Deps {
			dv := values[dep]
			for c := 0; c < st.C; c++ {
				out[c] += dv[c]
			}
		}
		inv := 1 / float64(len(s.Deps))
		for c := range out {
			out[c] *= inv
		}
		return out
	}
	for c := range out {
		out[c] = math.Inf(-1)
	}
	for _, dep := range s.Deps {
		dv := values[dep]
		for c := 0; c < st.C; c++ {
			if dv[c] > out[c] {
				out[c] = dv[c]
			}
		}
	}
	_ = g
	return out
}

func denseSite(st Stage, prev Stage, s Site, g *Graph, values [][]float64) []float64 {
	dense := st.Dense
	o := s.X
	sum := dense.Params()[1].At(o) // bias
	w := dense.Weight()
	for _, dep := range s.Deps {
		d := g.Sites[dep]
		dv := values[dep]
		if prev.Kind == StageDense {
			sum += w.At(o, d.X) * dv[0]
		} else {
			// Flattened (C,H,W) layout: index = (c*H + y)*W + x.
			for c := 0; c < prev.C; c++ {
				idx := (c*prev.H+d.Y)*prev.W + d.X
				sum += w.At(o, idx) * dv[c]
			}
		}
	}
	return []float64{sum}
}
