package microdeep

import (
	"testing"
	"testing/quick"

	"zeiot/internal/cnn"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
	"zeiot/internal/wsn"
)

// randomNet builds a random small CNN from three geometry bytes: input
// size 5..8, conv channels 2..5, dense width 4..11, with a random pooling
// flavour.
func randomNet(t *testing.T, a, b, c uint8) (*cnn.Network, int) {
	t.Helper()
	size := 5 + int(a%4)
	channels := 2 + int(b%4)
	hidden := 4 + int(c%8)
	s := rng.New(uint64(a)<<16 | uint64(b)<<8 | uint64(c))
	var pool cnn.Layer = cnn.NewMaxPool2D(2, 2)
	if c%2 == 1 {
		pool = cnn.NewAvgPool2D(2, 2)
	}
	half := size / 2
	net := cnn.NewNetwork([]int{1, size, size},
		cnn.NewConv2D(1, channels, 3, 3, 1, 1, s.Split("c")),
		cnn.NewReLU(),
		pool,
		cnn.NewFlatten(),
		cnn.NewDense(channels*half*half, hidden, s.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(hidden, 2, s.Split("d2")),
	)
	return net, size
}

// TestPropertyDistributedEquivalence: for random CNN geometries and random
// inputs, the site-by-site distributed executor matches the centralized
// forward pass exactly.
func TestPropertyDistributedEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(a, b, c uint8) bool {
		net, size := randomNet(t, a, b, c)
		g, err := BuildGraph(net)
		if err != nil {
			t.Logf("BuildGraph: %v", err)
			return false
		}
		ex := NewExecutor(g)
		s := rng.New(uint64(a) + uint64(b)*257 + uint64(c)*65537)
		in := tensor.New(1, size, size)
		d := in.Data()
		for i := range d {
			d[i] = s.NormMeanStd(0, 1)
		}
		want := net.Forward(in)
		got, err := ex.Forward(in)
		if err != nil {
			t.Logf("Forward: %v", err)
			return false
		}
		return tensor.Equal(want, got, 1e-9)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAssignmentInvariants: assignments place every site on a live
// node, pin input sites to their sensors, and conserve the unit count.
func TestPropertyAssignmentInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(a, b, c, gridSel uint8) bool {
		net, _ := randomNet(t, a, b, c)
		g, err := BuildGraph(net)
		if err != nil {
			return false
		}
		rows := 3 + int(gridSel%4)
		cols := 3 + int(gridSel/4%4)
		w := wsn.NewGrid(rows, cols, 1)
		for _, strat := range []Strategy{StrategyCoordinate, StrategyBalanced} {
			var asg Assignment
			switch strat {
			case StrategyCoordinate:
				asg, err = AssignByCoordinate(g, w)
			case StrategyBalanced:
				asg, err = AssignBalanced(g, w, DefaultBalanceOptions())
			}
			if err != nil {
				t.Logf("assign: %v", err)
				return false
			}
			if len(asg.NodeOf) != len(g.Sites) {
				return false
			}
			for _, n := range asg.NodeOf {
				if n < 0 || n >= w.NumNodes() || w.Node(n).Failed {
					return false
				}
			}
			sum := 0
			for _, u := range UnitsPerNode(g, asg, w.NumNodes()) {
				if u < 0 {
					return false
				}
				sum += u
			}
			if sum != g.NumUnits() {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPlanTransfersAreLinks: every planned transfer runs over an
// existing one-hop link, and applying the plan conserves scalars (total tx
// equals total rx).
func TestPropertyPlanTransfersAreLinks(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(a, b, c uint8) bool {
		net, _ := randomNet(t, a, b, c)
		g, err := BuildGraph(net)
		if err != nil {
			return false
		}
		w := wsn.NewGrid(4, 5, 1)
		asg, err := AssignBalanced(g, w, DefaultBalanceOptions())
		if err != nil {
			return false
		}
		plan, err := Plan(g, asg, w)
		if err != nil {
			t.Logf("plan: %v", err)
			return false
		}
		for _, tr := range plan {
			if tr.From == tr.To || !w.Linked(tr.From, tr.To) || tr.Scalars <= 0 {
				return false
			}
			if tr.Stage < 1 || tr.Stage >= len(g.Stages) {
				return false
			}
		}
		w.ResetCounters()
		if _, err := ChargeForward(g, asg, w); err != nil {
			return false
		}
		tx, rx := 0, 0
		for _, nd := range w.Nodes() {
			tx += nd.TxScalars
			rx += nd.RxScalars
		}
		return tx == rx
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
