package microdeep

import (
	"fmt"
	"math"

	"zeiot/internal/cnn"
	"zeiot/internal/obs"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
	"zeiot/internal/wsn"
)

// Strategy selects how units are assigned to nodes.
type Strategy int

// Assignment strategies.
const (
	// StrategyCoordinate is the natural XY mapping (Fig. 10(a) setting).
	StrategyCoordinate Strategy = iota + 1
	// StrategyBalanced is the paper's heuristic: equalized unit counts and
	// maximized CNN-link/WSN-link correspondence (Fig. 10(b) setting).
	StrategyBalanced
)

// Model is a MicroDeep deployment: a CNN, its unit graph, an assignment
// onto a WSN, and (optionally) per-node replicas of shared conv kernels for
// the local weight-update training mode.
type Model struct {
	Net    *cnn.Network
	Graph  *Graph
	Assign Assignment
	WSN    *wsn.Network

	// localUpdate reports whether per-node conv kernel replicas are
	// installed.
	localUpdate bool
	replicas    []*convReplica
	// repByStage indexes replicas by stage id for O(1) lookup on the
	// distributed-executor path.
	repByStage []*convReplica
	// exec is the cached distributed executor used by ForwardDistributed;
	// it is invalidated when EnableLocalUpdate changes the kernel hooks.
	exec *Executor
	// gossipEvery > 0 averages each conv unit's kernel with its four
	// spatial neighbours every that-many optimizer steps — one-hop-only
	// traffic that pulls the locally connected kernels back toward a
	// shared filter.
	gossipEvery int
	stepCount   int
	// rec, when non-nil, receives per-epoch training curves and gossip
	// counters from Fit/FitParallel (see SetRecorder).
	rec       obs.Recorder
	recPrefix string
	recEval   []cnn.Sample
}

// convReplica holds the per-unit kernels of one conv stage: position
// (oy, ox) owns kernels[oy*w+ox], a locally connected layer.
type convReplica struct {
	stage   int
	conv    *cnn.Conv2D
	w       int
	kernels []*tensor.Tensor
	grads   []*tensor.Tensor
	// gossipBuf and divBuf are scratch reused across gossip rounds and
	// divergence measurements (both used to clone per position per call).
	gossipBuf []*tensor.Tensor
	divBuf    *tensor.Tensor
}

// Build constructs a MicroDeep model for net deployed on w using the given
// assignment strategy.
func Build(net *cnn.Network, w *wsn.Network, strategy Strategy) (*Model, error) {
	g, err := BuildGraph(net)
	if err != nil {
		return nil, err
	}
	var a Assignment
	switch strategy {
	case StrategyCoordinate:
		a, err = AssignByCoordinate(g, w)
	case StrategyBalanced:
		a, err = AssignBalanced(g, w, DefaultBalanceOptions())
	default:
		return nil, fmt.Errorf("microdeep: unknown strategy %d", strategy)
	}
	if err != nil {
		return nil, err
	}
	return &Model{Net: net, Graph: g, Assign: a, WSN: w}, nil
}

// EnableLocalUpdate switches the model to the paper's local weight-update
// mode ("weights of units are updated independently by each sensor node to
// avoid communication overhead, sacrificing some accuracy"): every conv
// unit position gets its own kernel — a locally connected layer — trained
// only on its own gradient and never synchronized with the other
// positions. This removes the kernel-aggregation traffic of synchronized
// shared-weight training (see ChargeWeightSync) and costs some accuracy
// because spatial weight sharing is lost.
func (m *Model) EnableLocalUpdate() {
	if m.localUpdate {
		return
	}
	m.localUpdate = true
	m.repByStage = make([]*convReplica, len(m.Graph.Stages))
	for si, st := range m.Graph.Stages {
		if st.Kind != StageConv {
			continue
		}
		r := &convReplica{
			stage:   si,
			conv:    st.Conv,
			w:       st.W,
			kernels: make([]*tensor.Tensor, st.H*st.W),
			grads:   make([]*tensor.Tensor, st.H*st.W),
		}
		for p := range r.kernels {
			r.kernels[p] = st.Conv.Weight().Clone()
			r.grads[p] = tensor.New(st.Conv.Weight().Shape()...)
		}
		r.conv.SetReplicaTable(r.kernels, r.grads, r.w)
		m.replicas = append(m.replicas, r)
		m.repByStage[si] = r
	}
	// The hook change invalidates any cached shadow stacks and executor.
	m.Net.ResetParallelState()
	m.exec = nil
}

// LocalUpdate reports whether the local weight-update mode is active.
func (m *Model) LocalUpdate() bool { return m.localUpdate }

// SetBatchKernel routes the underlying network's training through the
// batched im2col/GEMM engine with blocks of k samples (bit-identical to the
// per-sample path; see cnn.Network.SetBatchKernel). In local-update mode the
// per-position kernel replicas cannot share a GEMM, so the setting is a
// documented no-op there: training keeps the per-sample replica path.
func (m *Model) SetBatchKernel(k int) { m.Net.SetBatchKernel(k) }

// ReplicaCount returns the number of conv kernel replicas across stages
// (zero when local update is disabled).
func (m *Model) ReplicaCount() int {
	n := 0
	for _, r := range m.replicas {
		n += len(r.kernels)
	}
	return n
}

// ReplicaDivergence returns the mean L2 distance between every conv replica
// and the mean kernel of its stage — a measure of how far independent local
// updates have drifted apart. The per-kernel distance accumulates in the
// same element order as the Clone/Sub/L2 sequence it replaces, so the value
// is bit-identical while allocating only one reused mean buffer per stage.
func (m *Model) ReplicaDivergence() float64 {
	if len(m.replicas) == 0 {
		return 0
	}
	total, count := 0.0, 0
	for _, r := range m.replicas {
		if r.divBuf == nil {
			r.divBuf = tensor.New(r.conv.Weight().Shape()...)
		}
		mean := r.divBuf
		mean.Zero()
		for _, k := range r.kernels {
			mean.AddInPlace(k)
		}
		mean.ScaleInPlace(1 / float64(len(r.kernels)))
		md := mean.Data()
		for _, k := range r.kernels {
			sum := 0.0
			for i, kv := range k.Data() {
				d := kv - md[i]
				sum += d * d
			}
			total += math.Sqrt(sum)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

func (m *Model) zeroReplicaGrads() {
	for _, r := range m.replicas {
		for _, g := range r.grads {
			g.Zero()
		}
	}
}

func (m *Model) stepReplicas(opt *cnn.SGD, batch int) {
	for _, r := range m.replicas {
		for p, k := range r.kernels {
			opt.StepOne(k, r.grads[p], batch)
		}
	}
	m.stepCount++
	if m.gossipEvery > 0 && m.stepCount%m.gossipEvery == 0 {
		m.gossip()
		if m.rec != nil {
			m.rec.Add(m.recPrefix+"gossip_rounds", 1)
		}
	}
}

// SetRecorder attaches an observability recorder: Fit and FitParallel then
// record one training-loss point per epoch under <prefix>train_loss, an
// accuracy point per epoch under <prefix>eval_acc when eval is non-empty,
// and — in local-update mode — a replica-divergence point per epoch under
// <prefix>replica_divergence. Gossip rounds accumulate in the counter
// <prefix>gossip_rounds. None of this consumes randomness or reorders a
// reduction, so trained weights and every experiment summary are identical
// with the recorder attached or not. A nil recorder (the default) disables
// recording with zero overhead.
func (m *Model) SetRecorder(r obs.Recorder, prefix string, eval []cnn.Sample) {
	m.rec = r
	m.recPrefix = prefix
	m.recEval = eval
}

// observeEpoch publishes one epoch's curve points; a no-op without a
// recorder. Runs strictly between epochs, outside any worker goroutine.
func (m *Model) observeEpoch(loss float64) {
	if m.rec == nil {
		return
	}
	m.rec.Observe(m.recPrefix+"train_loss", loss)
	if len(m.recEval) > 0 {
		m.rec.Observe(m.recPrefix+"eval_acc", m.Evaluate(m.recEval))
	}
	if m.localUpdate {
		m.rec.Observe(m.recPrefix+"replica_divergence", m.ReplicaDivergence())
	}
}

// SetGossip enables neighbour averaging of the per-unit kernels every
// `every` optimizer steps (0 disables). Must be used with local updates.
func (m *Model) SetGossip(every int) { m.gossipEvery = every }

// gossipNeighbors are the four spatial neighbour offsets averaged by gossip.
var gossipNeighbors = [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}

// gossip replaces each position's kernel with the mean of itself and its
// four spatial neighbours — a single one-hop exchange per conv unit. The
// next-value buffers are allocated once per replica and reused: gossip runs
// inside the training loop, where the per-position clones it replaced were
// the dominant allocation source.
func (m *Model) gossip() {
	for _, r := range m.replicas {
		h := len(r.kernels) / r.w
		if r.gossipBuf == nil {
			r.gossipBuf = make([]*tensor.Tensor, len(r.kernels))
			for p := range r.gossipBuf {
				r.gossipBuf[p] = tensor.New(r.kernels[p].Shape()...)
			}
		}
		for y := 0; y < h; y++ {
			for x := 0; x < r.w; x++ {
				avg := r.gossipBuf[y*r.w+x]
				copy(avg.Data(), r.kernels[y*r.w+x].Data())
				count := 1.0
				for _, d := range gossipNeighbors {
					ny, nx := y+d[0], x+d[1]
					if ny < 0 || ny >= h || nx < 0 || nx >= r.w {
						continue
					}
					avg.AddInPlace(r.kernels[ny*r.w+nx])
					count++
				}
				avg.ScaleInPlace(1 / count)
			}
		}
		for p, k := range r.gossipBuf {
			copy(r.kernels[p].Data(), k.Data())
		}
	}
}

// TrainEpoch runs one epoch of mini-batch SGD. In local-update mode the
// conv kernels train as independent per-node replicas; otherwise training
// is numerically identical to the centralized CNN.
func (m *Model) TrainEpoch(samples []cnn.Sample, perm []int, batch int, opt *cnn.SGD) float64 {
	if !m.localUpdate {
		return m.Net.TrainEpoch(samples, perm, batch, opt)
	}
	if batch <= 0 {
		panic("microdeep: non-positive batch size")
	}
	total, count, inBatch := 0.0, 0, 0
	m.Net.ZeroGrads()
	m.zeroReplicaGrads()
	for _, idx := range perm {
		s := samples[idx]
		logits := m.Net.Forward(s.Input)
		loss, grad := cnn.CrossEntropy(logits, s.Label)
		total += loss
		count++
		m.Net.Backward(grad)
		inBatch++
		if inBatch == batch {
			opt.StepNetwork(m.Net, inBatch) // dense layers + conv biases
			m.stepReplicas(opt, inBatch)
			m.Net.ZeroGrads()
			m.zeroReplicaGrads()
			inBatch = 0
		}
	}
	if inBatch > 0 {
		opt.StepNetwork(m.Net, inBatch)
		m.stepReplicas(opt, inBatch)
		m.Net.ZeroGrads()
		m.zeroReplicaGrads()
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// TrainEpochParallel is TrainEpoch with the forward passes of each
// mini-batch sharded across worker goroutines (workers <= 0 selects
// runtime.NumCPU()). The shadow layer stacks share the canonical per-unit
// kernel replicas — read-only during forwards — and the backward passes
// reduce gradients (including the per-position replica grads) sequentially
// in sample order, so the trained weights, replica kernels, gossip schedule,
// and returned loss are bit-identical to TrainEpoch at any worker count.
func (m *Model) TrainEpochParallel(samples []cnn.Sample, perm []int, batch, workers int, opt *cnn.SGD) float64 {
	if !m.localUpdate {
		return m.Net.TrainEpochParallel(samples, perm, batch, workers, opt)
	}
	if batch <= 0 {
		panic("microdeep: non-positive batch size")
	}
	m.Net.ZeroGrads()
	m.zeroReplicaGrads()
	loss, ok := m.Net.TrainEpochParallelFunc(samples, perm, batch, workers, func(bsz int) {
		opt.StepNetwork(m.Net, bsz) // dense layers + conv biases
		m.stepReplicas(opt, bsz)
		m.Net.ZeroGrads()
		m.zeroReplicaGrads()
	})
	if !ok {
		return m.TrainEpoch(samples, perm, batch, opt)
	}
	return loss
}

// Fit trains for the given number of epochs with a fresh shuffle per epoch.
func (m *Model) Fit(samples []cnn.Sample, epochs, batch int, opt *cnn.SGD, stream *rng.Stream) float64 {
	loss := 0.0
	for e := 0; e < epochs; e++ {
		loss = m.TrainEpoch(samples, stream.Perm(len(samples)), batch, opt)
		m.observeEpoch(loss)
	}
	return loss
}

// FitParallel is Fit using TrainEpochParallel; it consumes the stream
// identically to Fit, so at the same seed the trained model is bit-identical
// to the sequential path.
func (m *Model) FitParallel(samples []cnn.Sample, epochs, batch, workers int, opt *cnn.SGD, stream *rng.Stream) float64 {
	loss := 0.0
	for e := 0; e < epochs; e++ {
		loss = m.TrainEpochParallel(samples, stream.Perm(len(samples)), batch, workers, opt)
		m.observeEpoch(loss)
	}
	return loss
}

// Evaluate returns accuracy using the model's effective weights (replicas
// included via the conv hooks).
func (m *Model) Evaluate(samples []cnn.Sample) float64 { return m.Net.Evaluate(samples) }

// ForwardDistributed runs the site-by-site distributed executor, returning
// the final-stage outputs. It does not charge communication; call
// ChargeForward/ChargeBackward for cost accounting. The executor (and its
// value arena) is cached on the model and reused across calls;
// EnableLocalUpdate invalidates it.
func (m *Model) ForwardDistributed(input *tensor.Tensor) (*tensor.Tensor, error) {
	return m.DistributedExecutor().Forward(input)
}

// DistributedExecutor returns the model's cached distributed executor,
// creating it on first use. Callers that need fault-injected passes — dead
// nodes, lossy links, or the harvest runtime's compute brownouts
// (ComputeFaults/ComputeTick) — configure the returned executor directly;
// ForwardDistributed then runs under that configuration. The cache is
// invalidated by EnableLocalUpdate, which discards any configuration.
func (m *Model) DistributedExecutor() *Executor {
	if m.exec == nil {
		ex := NewExecutor(m.Graph)
		if m.localUpdate {
			byStage := m.repByStage
			ex.KernelFor = func(stage int, s Site) *tensor.Tensor {
				r := byStage[stage]
				if r == nil {
					return nil
				}
				return r.kernels[s.Y*r.w+s.X]
			}
		}
		m.exec = ex
	}
	return m.exec
}

// CostPerSample charges m.WSN with one forward+backward pass and returns
// the report. When syncWeights is true the weight-aggregation traffic of
// synchronized training is included (coordinator = node 0); local-update
// mode omits it, which is exactly the saving the paper claims.
func (m *Model) CostPerSample(syncWeights bool) (CostReport, error) {
	m.WSN.ResetCounters()
	if _, err := ChargeForward(m.Graph, m.Assign, m.WSN); err != nil {
		return CostReport{}, err
	}
	if _, err := ChargeBackward(m.Graph, m.Assign, m.WSN); err != nil {
		return CostReport{}, err
	}
	if syncWeights {
		live := m.WSN.Live()
		if len(live) == 0 {
			return CostReport{}, fmt.Errorf("microdeep: no live nodes")
		}
		if _, err := ChargeWeightSync(m.Graph, m.Assign, m.WSN, live[0]); err != nil {
			return CostReport{}, err
		}
	}
	return Report(m.WSN), nil
}
