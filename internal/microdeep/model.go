package microdeep

import (
	"fmt"

	"zeiot/internal/cnn"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
	"zeiot/internal/wsn"
)

// Strategy selects how units are assigned to nodes.
type Strategy int

// Assignment strategies.
const (
	// StrategyCoordinate is the natural XY mapping (Fig. 10(a) setting).
	StrategyCoordinate Strategy = iota + 1
	// StrategyBalanced is the paper's heuristic: equalized unit counts and
	// maximized CNN-link/WSN-link correspondence (Fig. 10(b) setting).
	StrategyBalanced
)

// Model is a MicroDeep deployment: a CNN, its unit graph, an assignment
// onto a WSN, and (optionally) per-node replicas of shared conv kernels for
// the local weight-update training mode.
type Model struct {
	Net    *cnn.Network
	Graph  *Graph
	Assign Assignment
	WSN    *wsn.Network

	// localUpdate reports whether per-node conv kernel replicas are
	// installed.
	localUpdate bool
	replicas    []*convReplica
	// gossipEvery > 0 averages each conv unit's kernel with its four
	// spatial neighbours every that-many optimizer steps — one-hop-only
	// traffic that pulls the locally connected kernels back toward a
	// shared filter.
	gossipEvery int
	stepCount   int
}

// convReplica holds the per-unit kernels of one conv stage: position
// (oy, ox) owns kernels[oy*w+ox], a locally connected layer.
type convReplica struct {
	stage   int
	conv    *cnn.Conv2D
	w       int
	kernels []*tensor.Tensor
	grads   []*tensor.Tensor
}

// Build constructs a MicroDeep model for net deployed on w using the given
// assignment strategy.
func Build(net *cnn.Network, w *wsn.Network, strategy Strategy) (*Model, error) {
	g, err := BuildGraph(net)
	if err != nil {
		return nil, err
	}
	var a Assignment
	switch strategy {
	case StrategyCoordinate:
		a, err = AssignByCoordinate(g, w)
	case StrategyBalanced:
		a, err = AssignBalanced(g, w, DefaultBalanceOptions())
	default:
		return nil, fmt.Errorf("microdeep: unknown strategy %d", strategy)
	}
	if err != nil {
		return nil, err
	}
	return &Model{Net: net, Graph: g, Assign: a, WSN: w}, nil
}

// EnableLocalUpdate switches the model to the paper's local weight-update
// mode ("weights of units are updated independently by each sensor node to
// avoid communication overhead, sacrificing some accuracy"): every conv
// unit position gets its own kernel — a locally connected layer — trained
// only on its own gradient and never synchronized with the other
// positions. This removes the kernel-aggregation traffic of synchronized
// shared-weight training (see ChargeWeightSync) and costs some accuracy
// because spatial weight sharing is lost.
func (m *Model) EnableLocalUpdate() {
	if m.localUpdate {
		return
	}
	m.localUpdate = true
	for si, st := range m.Graph.Stages {
		if st.Kind != StageConv {
			continue
		}
		r := &convReplica{
			stage:   si,
			conv:    st.Conv,
			w:       st.W,
			kernels: make([]*tensor.Tensor, st.H*st.W),
			grads:   make([]*tensor.Tensor, st.H*st.W),
		}
		for p := range r.kernels {
			r.kernels[p] = st.Conv.Weight().Clone()
			r.grads[p] = tensor.New(st.Conv.Weight().Shape()...)
		}
		rep := r
		rep.conv.SetReplicaHooks(
			func(oy, ox int) *tensor.Tensor { return rep.kernels[oy*rep.w+ox] },
			func(oy, ox int) *tensor.Tensor { return rep.grads[oy*rep.w+ox] },
		)
		m.replicas = append(m.replicas, r)
	}
}

// LocalUpdate reports whether the local weight-update mode is active.
func (m *Model) LocalUpdate() bool { return m.localUpdate }

// ReplicaCount returns the number of conv kernel replicas across stages
// (zero when local update is disabled).
func (m *Model) ReplicaCount() int {
	n := 0
	for _, r := range m.replicas {
		n += len(r.kernels)
	}
	return n
}

// ReplicaDivergence returns the mean L2 distance between every conv replica
// and the mean kernel of its stage — a measure of how far independent local
// updates have drifted apart.
func (m *Model) ReplicaDivergence() float64 {
	if len(m.replicas) == 0 {
		return 0
	}
	total, count := 0.0, 0
	for _, r := range m.replicas {
		mean := tensor.New(r.conv.Weight().Shape()...)
		for _, k := range r.kernels {
			mean.AddInPlace(k)
		}
		mean.ScaleInPlace(1 / float64(len(r.kernels)))
		for _, k := range r.kernels {
			d := k.Clone()
			d.SubInPlace(mean)
			total += d.L2()
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

func (m *Model) zeroReplicaGrads() {
	for _, r := range m.replicas {
		for _, g := range r.grads {
			g.Zero()
		}
	}
}

func (m *Model) stepReplicas(opt *cnn.SGD, batch int) {
	for _, r := range m.replicas {
		for p, k := range r.kernels {
			opt.Step([]*tensor.Tensor{k}, []*tensor.Tensor{r.grads[p]}, batch)
		}
	}
	m.stepCount++
	if m.gossipEvery > 0 && m.stepCount%m.gossipEvery == 0 {
		m.gossip()
	}
}

// SetGossip enables neighbour averaging of the per-unit kernels every
// `every` optimizer steps (0 disables). Must be used with local updates.
func (m *Model) SetGossip(every int) { m.gossipEvery = every }

// gossip replaces each position's kernel with the mean of itself and its
// four spatial neighbours — a single one-hop exchange per conv unit.
func (m *Model) gossip() {
	for _, r := range m.replicas {
		h := len(r.kernels) / r.w
		next := make([]*tensor.Tensor, len(r.kernels))
		for y := 0; y < h; y++ {
			for x := 0; x < r.w; x++ {
				avg := r.kernels[y*r.w+x].Clone()
				count := 1.0
				for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					ny, nx := y+d[0], x+d[1]
					if ny < 0 || ny >= h || nx < 0 || nx >= r.w {
						continue
					}
					avg.AddInPlace(r.kernels[ny*r.w+nx])
					count++
				}
				avg.ScaleInPlace(1 / count)
				next[y*r.w+x] = avg
			}
		}
		for p, k := range next {
			copy(r.kernels[p].Data(), k.Data())
		}
	}
}

// TrainEpoch runs one epoch of mini-batch SGD. In local-update mode the
// conv kernels train as independent per-node replicas; otherwise training
// is numerically identical to the centralized CNN.
func (m *Model) TrainEpoch(samples []cnn.Sample, perm []int, batch int, opt *cnn.SGD) float64 {
	if !m.localUpdate {
		return m.Net.TrainEpoch(samples, perm, batch, opt)
	}
	if batch <= 0 {
		panic("microdeep: non-positive batch size")
	}
	total, count, inBatch := 0.0, 0, 0
	m.Net.ZeroGrads()
	m.zeroReplicaGrads()
	for _, idx := range perm {
		s := samples[idx]
		logits := m.Net.Forward(s.Input)
		loss, grad := cnn.CrossEntropy(logits, s.Label)
		total += loss
		count++
		m.Net.Backward(grad)
		inBatch++
		if inBatch == batch {
			opt.StepNetwork(m.Net, inBatch) // dense layers + conv biases
			m.stepReplicas(opt, inBatch)
			m.Net.ZeroGrads()
			m.zeroReplicaGrads()
			inBatch = 0
		}
	}
	if inBatch > 0 {
		opt.StepNetwork(m.Net, inBatch)
		m.stepReplicas(opt, inBatch)
		m.Net.ZeroGrads()
		m.zeroReplicaGrads()
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Fit trains for the given number of epochs with a fresh shuffle per epoch.
func (m *Model) Fit(samples []cnn.Sample, epochs, batch int, opt *cnn.SGD, stream *rng.Stream) float64 {
	loss := 0.0
	for e := 0; e < epochs; e++ {
		loss = m.TrainEpoch(samples, stream.Perm(len(samples)), batch, opt)
	}
	return loss
}

// Evaluate returns accuracy using the model's effective weights (replicas
// included via the conv hooks).
func (m *Model) Evaluate(samples []cnn.Sample) float64 { return m.Net.Evaluate(samples) }

// ForwardDistributed runs the site-by-site distributed executor, returning
// the final-stage outputs. It does not charge communication; call
// ChargeForward/ChargeBackward for cost accounting.
func (m *Model) ForwardDistributed(input *tensor.Tensor) (*tensor.Tensor, error) {
	ex := NewExecutor(m.Graph)
	if m.localUpdate {
		ex.KernelFor = func(stage int, s Site) *tensor.Tensor {
			for _, r := range m.replicas {
				if r.stage == stage {
					return r.kernels[s.Y*r.w+s.X]
				}
			}
			return nil
		}
	}
	return ex.Forward(input)
}

// CostPerSample charges m.WSN with one forward+backward pass and returns
// the report. When syncWeights is true the weight-aggregation traffic of
// synchronized training is included (coordinator = node 0); local-update
// mode omits it, which is exactly the saving the paper claims.
func (m *Model) CostPerSample(syncWeights bool) (CostReport, error) {
	m.WSN.ResetCounters()
	if _, err := ChargeForward(m.Graph, m.Assign, m.WSN); err != nil {
		return CostReport{}, err
	}
	if _, err := ChargeBackward(m.Graph, m.Assign, m.WSN); err != nil {
		return CostReport{}, err
	}
	if syncWeights {
		live := m.WSN.Live()
		if len(live) == 0 {
			return CostReport{}, fmt.Errorf("microdeep: no live nodes")
		}
		if _, err := ChargeWeightSync(m.Graph, m.Assign, m.WSN, live[0]); err != nil {
			return CostReport{}, err
		}
	}
	return Report(m.WSN), nil
}
