package microdeep

import (
	"fmt"
	"testing"

	"zeiot/internal/cnn"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
	"zeiot/internal/wsn"
)

// parallelTestSamples builds the separable toy set the other training tests
// use: class 1 lights a cell in the right half of the 6×6 field.
func parallelTestSamples(s *rng.Stream, n int) []cnn.Sample {
	var samples []cnn.Sample
	for i := 0; i < n; i++ {
		in := tensor.New(1, 6, 6)
		label := i % 2
		x := s.Intn(3)
		if label == 1 {
			x += 3
		}
		in.Set(1, 0, s.Intn(6), x)
		samples = append(samples, cnn.Sample{Input: in, Label: label})
	}
	return samples
}

func localUpdateModel(t *testing.T) *Model {
	t.Helper()
	w := wsn.NewGrid(6, 6, 1)
	m, err := Build(testNet(21), w, StrategyBalanced)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableLocalUpdate()
	m.SetGossip(2)
	return m
}

// TestTrainEpochParallelReplicaBitIdentical trains a local-update model with
// gossip serially and with the data-parallel path at several worker counts,
// requiring bit-identical results at tolerance zero: the returned loss, every
// shared network parameter, and every per-position kernel replica. The
// parallel path shards forwards over shadow stacks that read the canonical
// replicas and reduces all gradients in sample order, so any drift is a
// reordering bug rather than float noise.
func TestTrainEpochParallelReplicaBitIdentical(t *testing.T) {
	samples := parallelTestSamples(rng.New(77), 96)
	const epochs, batch = 2, 8

	ref := localUpdateModel(t)
	refLoss := ref.Fit(samples, epochs, batch, cnn.NewSGD(0.05, 0.9), rng.New(5).Split("fit"))

	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			m := localUpdateModel(t)
			loss := m.FitParallel(samples, epochs, batch, workers, cnn.NewSGD(0.05, 0.9), rng.New(5).Split("fit"))
			if loss != refLoss {
				t.Errorf("final-epoch loss %v != sequential %v", loss, refLoss)
			}
			// Shared parameters (dense layers, conv biases).
			refLayers, gotLayers := ref.Net.Layers(), m.Net.Layers()
			for i := range refLayers {
				pa, ok := refLayers[i].(cnn.ParamLayer)
				if !ok {
					continue
				}
				pb := gotLayers[i].(cnn.ParamLayer)
				ta, tb := pa.Params(), pb.Params()
				for j := range ta {
					if !tensor.Equal(ta[j], tb[j], 0) {
						t.Errorf("layer %d (%s) param %d differs from sequential result", i, refLayers[i].Name(), j)
					}
				}
			}
			// Per-position kernel replicas (including the gossip schedule:
			// with gossipEvery=2 and 12 batches/epoch, gossip fires mid-run).
			if len(m.replicas) != len(ref.replicas) {
				t.Fatalf("replica group count %d != %d", len(m.replicas), len(ref.replicas))
			}
			for ri, ra := range ref.replicas {
				rb := m.replicas[ri]
				if len(ra.kernels) != len(rb.kernels) {
					t.Fatalf("replica count %d != %d in group %d", len(rb.kernels), len(ra.kernels), ri)
				}
				for p := range ra.kernels {
					if !tensor.Equal(ra.kernels[p], rb.kernels[p], 0) {
						t.Errorf("replica group %d position %d kernel differs from sequential result", ri, p)
					}
				}
			}
		})
	}
}

// TestPlanCacheInvalidation checks the (graph, assignment, topology-epoch)
// plan cache end to end: repeated charges replay the cached plan, a
// Fail/Recover advances the epoch and forces a re-plan, and every charged
// cost equals what a cold network — same topology, no cache history —
// produces.
func TestPlanCacheInvalidation(t *testing.T) {
	build := func() (*Model, *wsn.Network) {
		w := wsn.NewGrid(6, 6, 1)
		m, err := Build(testNet(31), w, StrategyBalanced)
		if err != nil {
			t.Fatal(err)
		}
		return m, w
	}
	m, w := build()

	charge := func(mm *Model) (int, int) {
		mm.WSN.ResetCounters()
		fwd, err := ChargeForward(mm.Graph, mm.Assign, mm.WSN)
		if err != nil {
			t.Fatal(err)
		}
		bwd, err := ChargeBackward(mm.Graph, mm.Assign, mm.WSN)
		if err != nil {
			t.Fatal(err)
		}
		return fwd + bwd, Report(mm.WSN).Max
	}

	total0, max0 := charge(m)
	// Second charge replays the cached plan: identical costs.
	total1, max1 := charge(m)
	if total0 != total1 || max0 != max1 {
		t.Fatalf("cached replay changed costs: %d/%d vs %d/%d", total0, max0, total1, max1)
	}

	// Kill a node the plan routes through; the epoch must advance and the
	// new charges must match a cold network with the same failure.
	epoch0 := w.TopologyEpoch()
	const failed = 14 // interior node of the 6×6 grid
	w.Fail(failed)
	if w.TopologyEpoch() != epoch0+1 {
		t.Fatalf("Fail did not advance topology epoch: %d -> %d", epoch0, w.TopologyEpoch())
	}
	w.Fail(failed) // no state change: epoch must hold
	if w.TopologyEpoch() != epoch0+1 {
		t.Fatal("failing an already-failed node advanced the epoch")
	}
	// Re-assign around the failure, as E8 does.
	assign, err := AssignBalanced(m.Graph, w, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	m.Assign = assign
	totalF, maxF := charge(m)

	cold, cw := build()
	cw.Fail(failed)
	coldAssign, err := AssignBalanced(cold.Graph, cw, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	cold.Assign = coldAssign
	coldTotal, coldMax := charge(cold)
	if totalF != coldTotal || maxF != coldMax {
		t.Fatalf("post-failure charges %d/%d != cold re-plan %d/%d", totalF, maxF, coldTotal, coldMax)
	}
	for i, n := range assign.NodeOf {
		if n != coldAssign.NodeOf[i] {
			t.Fatalf("site %d assigned to %d, cold network assigned %d", i, n, coldAssign.NodeOf[i])
		}
		if n == failed {
			t.Fatalf("site %d still assigned to failed node", i)
		}
	}

	// Recovery advances the epoch again and restores the original costs.
	w.Recover(failed)
	if w.TopologyEpoch() != epoch0+2 {
		t.Fatalf("Recover did not advance topology epoch: %d", w.TopologyEpoch())
	}
	assign, err = AssignBalanced(m.Graph, w, DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	m.Assign = assign
	totalR, maxR := charge(m)
	if totalR != total0 || maxR != max0 {
		t.Fatalf("post-recovery charges %d/%d != original %d/%d", totalR, maxR, total0, max0)
	}
}

// TestPlanReturnsOwnedCopy guards the cache against aliasing: mutating the
// slice Plan hands out must not corrupt the cached plan.
func TestPlanReturnsOwnedCopy(t *testing.T) {
	w := wsn.NewGrid(6, 6, 1)
	m, err := Build(testNet(32), w, StrategyBalanced)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Plan(m.Graph, m.Assign, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) == 0 {
		t.Fatal("empty plan")
	}
	saved := p1[0]
	p1[0] = Transfer{From: -1, To: -1, Scalars: -1, Stage: -1}
	p2, err := Plan(m.Graph, m.Assign, w)
	if err != nil {
		t.Fatal(err)
	}
	if p2[0] != saved {
		t.Fatalf("cached plan corrupted by caller mutation: %+v", p2[0])
	}
}
