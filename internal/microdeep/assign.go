package microdeep

import (
	"fmt"
	"math"

	"zeiot/internal/geom"
	"zeiot/internal/wsn"
)

// Assignment maps every site of a Graph to a WSN node.
type Assignment struct {
	// NodeOf[siteID] is the owning node ID.
	NodeOf []int
}

// fieldBox returns the bounding box of the live nodes.
func fieldBox(w *wsn.Network) (minP, maxP geom.Point) {
	minP = geom.Point{X: math.Inf(1), Y: math.Inf(1)}
	maxP = geom.Point{X: math.Inf(-1), Y: math.Inf(-1)}
	for _, nd := range w.Nodes() {
		if nd.Failed {
			continue
		}
		minP.X = math.Min(minP.X, nd.Pos.X)
		minP.Y = math.Min(minP.Y, nd.Pos.Y)
		maxP.X = math.Max(maxP.X, nd.Pos.X)
		maxP.Y = math.Max(maxP.Y, nd.Pos.Y)
	}
	return minP, maxP
}

// toField maps a normalized [0,1]² coordinate into the node field.
func toField(c geom.Point, minP, maxP geom.Point) geom.Point {
	return geom.Point{
		X: minP.X + c.X*(maxP.X-minP.X),
		Y: minP.Y + c.Y*(maxP.Y-minP.Y),
	}
}

func nearestLiveNode(w *wsn.Network, p geom.Point) int {
	best, bestD := -1, math.Inf(1)
	for _, nd := range w.Nodes() {
		if nd.Failed {
			continue
		}
		d := geom.Dist(nd.Pos, p)
		if d < bestD {
			best, bestD = nd.ID, d
		}
	}
	return best
}

// AssignByCoordinate implements the paper's natural XY mapping (Fig. 8):
// every site goes to the live node nearest its field coordinate. It is the
// assignment used with the "optimal parameter set" of Fig. 10(a).
func AssignByCoordinate(g *Graph, w *wsn.Network) (Assignment, error) {
	if len(w.Live()) == 0 {
		return Assignment{}, fmt.Errorf("microdeep: no live nodes")
	}
	minP, maxP := fieldBox(w)
	nodeOf := make([]int, len(g.Sites))
	for i, s := range g.Sites {
		nodeOf[i] = nearestLiveNode(w, toField(s.Coord, minP, maxP))
	}
	return Assignment{NodeOf: nodeOf}, nil
}

// BalanceOptions tunes AssignBalanced.
type BalanceOptions struct {
	// LoadFactor sets the hard per-node unit cap to
	// ceil(LoadFactor · totalUnits / liveNodes). 1.0 enforces strict
	// equalization; larger values trade balance for locality.
	LoadFactor float64
	// LoadWeight softly penalizes load below the cap, spreading units
	// even before any node saturates (units per scalar-hop of traffic).
	LoadWeight float64
}

// DefaultBalanceOptions returns the options used in the paper experiments.
func DefaultBalanceOptions() BalanceOptions {
	return BalanceOptions{LoadFactor: 1.3, LoadWeight: 0.5}
}

// AssignBalanced implements the paper's heuristic assignment: equalize the
// number of units per node while maximizing the correspondence of CNN links
// and WSN links (Fig. 10(b)).
//
// The coordinate mapping of Fig. 8 is already the locality optimum — every
// unit sits on the node nearest its receptive field — so the heuristic
// starts there and repairs the load imbalance: while any node exceeds the
// per-node unit cap ceil(LoadFactor·units/liveNodes), the overloaded
// node's computational site whose relocation costs the least extra
// traffic moves to the under-cap node minimizing
//
//	Σ_dep hops(node(dep), n)·width(dep) + Σ_cons hops(n, node(cons))·width(site) + LoadWeight·load(n).
//
// Input sites are pinned to their sensors and never move. Ties break
// toward the lower node ID, so the assignment is deterministic.
func AssignBalanced(g *Graph, w *wsn.Network, opts BalanceOptions) (Assignment, error) {
	live := w.Live()
	if len(live) == 0 {
		return Assignment{}, fmt.Errorf("microdeep: no live nodes")
	}
	if opts.LoadFactor <= 0 {
		opts.LoadFactor = 1.0
	}
	a, err := AssignByCoordinate(g, w)
	if err != nil {
		return Assignment{}, err
	}
	nodeOf := a.NodeOf
	capU := int(math.Ceil(opts.LoadFactor * float64(g.NumUnits()) / float64(len(live))))
	if capU < 1 {
		capU = 1
	}
	load := make([]int, w.NumNodes())
	for i, s := range g.Sites {
		if s.Stage == 0 {
			continue
		}
		load[nodeOf[i]] += s.Width
	}
	// consumers[sid] lists the sites reading sid's output.
	consumers := make([][]int, len(g.Sites))
	for _, s := range g.Sites {
		for _, dep := range s.Deps {
			consumers[dep] = append(consumers[dep], s.ID)
		}
	}
	// commAt scores hosting site s on node n (math.Inf if unreachable). It
	// indexes per-source hop rows directly and sums integer scalar-hops
	// — hop counts and widths are small, so the products stay far below
	// 2^53 and the integer total converts to exactly the float64 the
	// original incremental float summation produced. HopsRow instead of
	// HopsTable keeps this sparse-friendly: on the sharded core only the
	// rows of candidate nodes materialize, never the full N×N matrix (and
	// on the dense core the row is the same shared table slice as before).
	// Scratch for the per-site (node, weight) aggregation: deps and
	// consumers grouped by their current host so commAt does one table
	// lookup per distinct node instead of one per edge.
	var aggNode, aggWeight []int
	aggregate := func(s Site) {
		aggNode = aggNode[:0]
		aggWeight = aggWeight[:0]
		add := func(n, weight int) {
			for i, an := range aggNode {
				if an == n {
					aggWeight[i] += weight
					return
				}
			}
			aggNode = append(aggNode, n)
			aggWeight = append(aggWeight, weight)
		}
		for _, dep := range s.Deps {
			add(nodeOf[dep], g.Sites[dep].Width)
		}
		// Consumer hops are symmetric on the undirected WSN graph
		// (hops[n][m] == hops[m][n]), so consumers aggregate into the
		// same per-node buckets.
		for _, c := range consumers[s.ID] {
			add(nodeOf[c], s.Width)
		}
	}
	commAt := func(n int) float64 {
		comm := 0
		hrow := w.HopsRow(n)
		for i, an := range aggNode {
			h := hrow[an]
			if h < 0 {
				return math.Inf(1)
			}
			comm += h * aggWeight[i]
		}
		return float64(comm)
	}
	for {
		// Most-loaded node above the cap.
		over := -1
		for _, n := range live {
			if load[n] > capU && (over < 0 || load[n] > load[over]) {
				over = n
			}
		}
		if over < 0 {
			return Assignment{NodeOf: nodeOf}, nil
		}
		// Cheapest (site, destination) relocation off the overloaded node.
		bestSite, bestDst := -1, -1
		bestDelta := math.Inf(1)
		for _, s := range g.Sites {
			if s.Stage == 0 || nodeOf[s.ID] != over {
				continue
			}
			aggregate(s)
			from := commAt(over)
			for _, n := range live {
				if n == over || load[n]+s.Width > capU {
					continue
				}
				to := commAt(n)
				if math.IsInf(to, 1) {
					continue
				}
				delta := to - from + opts.LoadWeight*float64(load[n])
				if delta < bestDelta || (delta == bestDelta && (n < bestDst || (n == bestDst && s.ID < bestSite))) {
					bestSite, bestDst, bestDelta = s.ID, n, delta
				}
			}
		}
		if bestSite < 0 {
			// No legal move (every other node full): accept the residual
			// imbalance rather than thrash.
			return Assignment{NodeOf: nodeOf}, nil
		}
		load[over] -= g.Sites[bestSite].Width
		load[bestDst] += g.Sites[bestSite].Width
		nodeOf[bestSite] = bestDst
	}
}

// UnitsPerNode returns how many scalar units (site widths, excluding the
// input stage) each node hosts under a.
func UnitsPerNode(g *Graph, a Assignment, numNodes int) []int {
	out := make([]int, numNodes)
	for i, s := range g.Sites {
		if s.Stage == 0 {
			continue
		}
		out[a.NodeOf[i]] += s.Width
	}
	return out
}

// LinkCorrespondence returns the fraction of CNN dependency edges whose
// endpoints sit on the same node or on directly linked nodes — the quantity
// the paper's heuristic maximizes.
func LinkCorrespondence(g *Graph, a Assignment, w *wsn.Network) float64 {
	total, good := 0, 0
	for _, s := range g.Sites {
		for _, dep := range s.Deps {
			total++
			u, v := a.NodeOf[dep], a.NodeOf[s.ID]
			if u == v || w.Linked(u, v) {
				good++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(good) / float64(total)
}
