//go:build !race

package cnn

import (
	"testing"

	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// The race detector instruments allocations, so these steady-state alloc
// budgets only hold in normal builds (hence the build tag above).

func allocNet(seed uint64) (*Network, *tensor.Tensor) {
	s := rng.New(seed)
	net := NewNetwork([]int{1, 17, 25},
		NewConv2D(1, 4, 3, 3, 1, 1, s.Split("c")),
		NewReLU(),
		NewMaxPool2D(3, 3),
		NewFlatten(),
		NewDense(4*5*8, 16, s.Split("d1")),
		NewReLU(),
		NewDense(16, 2, s.Split("d2")),
	)
	in := tensor.New(1, 17, 25)
	d := in.Data()
	for i := range d {
		d[i] = s.NormMeanStd(0, 1)
	}
	return net, in
}

// TestForwardAllocFree guards the scratch-buffer design: once warmed, a full
// network forward pass must not allocate (budget ≤ 2 allows for runtime
// noise like stack growth, not for per-layer buffers).
func TestForwardAllocFree(t *testing.T) {
	net, in := allocNet(1)
	net.Forward(in) // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		net.Forward(in)
	})
	if allocs > 2 {
		t.Errorf("Network.Forward allocates %.1f objects/op after warm-up, want <= 2", allocs)
	}
}

// TestConvBackwardAllocFree guards Conv2D's backward scratch reuse.
func TestConvBackwardAllocFree(t *testing.T) {
	s := rng.New(2)
	c := NewConv2D(1, 4, 3, 3, 1, 1, s.Split("c"))
	in := tensor.New(1, 17, 25)
	d := in.Data()
	for i := range d {
		d[i] = s.NormMeanStd(0, 1)
	}
	out := c.Forward(in)
	gradOut := tensor.New(out.Shape()...)
	g := gradOut.Data()
	for i := range g {
		g[i] = s.NormMeanStd(0, 1)
	}
	c.Backward(gradOut) // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		c.Forward(in)
		c.Backward(gradOut)
	})
	if allocs > 2 {
		t.Errorf("Conv2D Forward+Backward allocates %.1f objects/op after warm-up, want <= 2", allocs)
	}
}

// TestTrainEpochBatchedAllocSteadyState pins the batched training path's
// steady-state allocation budget: after the first epoch builds the kernel
// slots and per-layer scratch, later epochs must stay within a small
// fixed budget (worker goroutine bookkeeping, not per-sample or per-block
// buffers — the im2col patch, GEMM outputs and winner lists are all reused).
func TestTrainEpochBatchedAllocSteadyState(t *testing.T) {
	net, _ := allocNet(3)
	s := rng.New(11)
	samples := make([]Sample, 64)
	for i := range samples {
		in := tensor.New(1, 17, 25)
		d := in.Data()
		for j := range d {
			d[j] = s.NormMeanStd(0, 1)
		}
		samples[i] = Sample{Input: in, Label: i % 2}
	}
	perm := make([]int, len(samples))
	for i := range perm {
		perm[i] = i
	}
	opt := NewSGD(0.01, 0.9)
	net.TrainEpochBatched(samples, perm, 16, 8, opt) // warm slots and scratch
	allocs := testing.AllocsPerRun(20, func() {
		net.TrainEpochBatched(samples, perm, 16, 8, opt)
	})
	if allocs > 64 {
		t.Errorf("TrainEpochBatched allocates %.1f objects/epoch after warm-up, want <= 64", allocs)
	}
}

// TestQuantForwardAllocFree guards the quantized pipeline's build-time
// buffer sizing: once warmed, Forward and Classify must not allocate at all.
func TestQuantForwardAllocFree(t *testing.T) {
	net, in := allocNet(5)
	qn, err := QuantizeNetwork(net, []Sample{{Input: in, Label: 0}})
	if err != nil {
		t.Fatal(err)
	}
	qn.Forward(in) // warm (build-time buffers only)
	allocs := testing.AllocsPerRun(100, func() {
		qn.Forward(in)
		qn.Classify(in)
	})
	if allocs != 0 {
		t.Errorf("quantized Forward+Classify allocates %.1f objects/op after warm-up, want 0", allocs)
	}
}
