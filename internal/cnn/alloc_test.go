//go:build !race

package cnn

import (
	"testing"

	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// The race detector instruments allocations, so these steady-state alloc
// budgets only hold in normal builds (hence the build tag above).

func allocNet(seed uint64) (*Network, *tensor.Tensor) {
	s := rng.New(seed)
	net := NewNetwork([]int{1, 17, 25},
		NewConv2D(1, 4, 3, 3, 1, 1, s.Split("c")),
		NewReLU(),
		NewMaxPool2D(3, 3),
		NewFlatten(),
		NewDense(4*5*8, 16, s.Split("d1")),
		NewReLU(),
		NewDense(16, 2, s.Split("d2")),
	)
	in := tensor.New(1, 17, 25)
	d := in.Data()
	for i := range d {
		d[i] = s.NormMeanStd(0, 1)
	}
	return net, in
}

// TestForwardAllocFree guards the scratch-buffer design: once warmed, a full
// network forward pass must not allocate (budget ≤ 2 allows for runtime
// noise like stack growth, not for per-layer buffers).
func TestForwardAllocFree(t *testing.T) {
	net, in := allocNet(1)
	net.Forward(in) // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		net.Forward(in)
	})
	if allocs > 2 {
		t.Errorf("Network.Forward allocates %.1f objects/op after warm-up, want <= 2", allocs)
	}
}

// TestConvBackwardAllocFree guards Conv2D's backward scratch reuse.
func TestConvBackwardAllocFree(t *testing.T) {
	s := rng.New(2)
	c := NewConv2D(1, 4, 3, 3, 1, 1, s.Split("c"))
	in := tensor.New(1, 17, 25)
	d := in.Data()
	for i := range d {
		d[i] = s.NormMeanStd(0, 1)
	}
	out := c.Forward(in)
	gradOut := tensor.New(out.Shape()...)
	g := gradOut.Data()
	for i := range g {
		g[i] = s.NormMeanStd(0, 1)
	}
	c.Backward(gradOut) // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		c.Forward(in)
		c.Backward(gradOut)
	})
	if allocs > 2 {
		t.Errorf("Conv2D Forward+Backward allocates %.1f objects/op after warm-up, want <= 2", allocs)
	}
}
