package cnn

import (
	"math"
	"testing"

	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// trainedQuantPair returns a lightly trained float network, a quantized
// copy calibrated on its training inputs, and the training samples.
func trainedQuantPair(t *testing.T) (*Network, *QuantizedNetwork, []Sample) {
	t.Helper()
	net := buildTinyNet(31)
	samples := spatialSamples(301, 60, 1, 6, 6, 3)
	net.Fit(samples, 6, 8, NewSGD(0.05, 0.9), rng.New(17).Split("fit"))
	qn, err := QuantizeNetwork(net, samples)
	if err != nil {
		t.Fatal(err)
	}
	return net, qn, samples
}

func TestQuantRequantizeRounding(t *testing.T) {
	// mult = 2^24 is the identity multiplier.
	id := int64(1) << qShift
	cases := []struct {
		acc  int32
		want int8
	}{
		{0, 0}, {1, 1}, {-1, -1}, {126, 126},
		{127, 127}, {128, 127}, {1 << 20, 127}, // saturation
		{-127, -127}, {-128, -127}, {-(1 << 20), -127},
	}
	for _, c := range cases {
		if got := requantize(c.acc, id); got != c.want {
			t.Fatalf("requantize(%d, id) = %d, want %d", c.acc, got, c.want)
		}
	}
	// Half multiplier: round-half-up at the .5 boundary.
	half := id / 2
	if got := requantize(1, half); got != 1 { // 0.5 rounds up
		t.Fatalf("requantize(1, half) = %d, want 1", got)
	}
	if got := requantize(-1, half); got != 0 { // -0.5 rounds up to 0
		t.Fatalf("requantize(-1, half) = %d, want 0", got)
	}
	if got := requantize(3, half); got != 2 { // 1.5 rounds up
		t.Fatalf("requantize(3, half) = %d, want 2", got)
	}
}

func TestQuantRoundTripErrorBound(t *testing.T) {
	// quantize→dequantize of any value inside the calibrated range must land
	// within scale/2 of the original.
	s := rng.New(41)
	for trial := 0; trial < 200; trial++ {
		maxabs := math.Abs(s.NormMeanStd(0, 10)) + 1e-3
		scale := qscale(maxabs)
		v := s.Float64()*2*maxabs - maxabs
		q := clampRound8(v / scale)
		back := float64(q) * scale
		if math.Abs(back-v) > scale/2+1e-12 {
			t.Fatalf("round trip |%g - %g| = %g > scale/2 = %g", v, back, math.Abs(back-v), scale/2)
		}
	}
}

func TestQuantizeNetworkValidates(t *testing.T) {
	net := buildTinyNet(1)
	if _, err := QuantizeNetwork(net, nil); err == nil {
		t.Fatal("empty calibration set accepted")
	}
	// Network not ending in Dense.
	s := rng.New(2)
	relu := NewNetwork([]int{4}, NewDense(4, 3, s.Split("d")), NewReLU())
	calib := flatSamples(1, 4, 4, 3)
	if _, err := QuantizeNetwork(relu, calib); err == nil {
		t.Fatal("relu-terminated network accepted")
	}
	// Replica-hooked conv.
	s2 := rng.New(3)
	conv := NewConv2D(1, 2, 3, 3, 1, 1, s2.Split("c"))
	kernels := make([]*tensor.Tensor, 36)
	grads := make([]*tensor.Tensor, 36)
	for i := range kernels {
		kernels[i], grads[i] = conv.Params()[0], conv.Grads()[0]
	}
	conv.SetReplicaTable(kernels, grads, 6)
	rep := NewNetwork([]int{1, 6, 6}, conv, NewFlatten(), NewDense(2*6*6, 3, s2.Split("d")))
	if _, err := QuantizeNetwork(rep, spatialSamples(5, 3, 1, 6, 6, 3)); err == nil {
		t.Fatal("replica-hooked conv accepted")
	}
}

// TestQuantAgreesWithFloat is the deterministic version of the ISSUE's
// property: on random inputs drawn from the calibration distribution, the
// int8 network must classify like the float network on at least 95% of
// inputs.
func TestQuantAgreesWithFloat(t *testing.T) {
	net, qn, _ := trainedQuantPair(t)
	s := rng.New(73)
	agree, n := 0, 400
	for i := 0; i < n; i++ {
		in := randomInput(s, 1, 6, 6)
		if qn.Classify(in) == net.Predict(in) {
			agree++
		}
	}
	if frac := float64(agree) / float64(n); frac < 0.95 {
		t.Fatalf("quantized agreement %.3f < 0.95 (%d/%d)", frac, agree, n)
	}
}

func TestQuantAccuracyClose(t *testing.T) {
	net, qn, samples := trainedQuantPair(t)
	floatAcc := net.Evaluate(samples)
	correct := 0
	for _, smp := range samples {
		if qn.Classify(smp.Input) == smp.Label {
			correct++
		}
	}
	quantAcc := float64(correct) / float64(len(samples))
	if math.Abs(quantAcc-floatAcc) > 0.05 {
		t.Fatalf("quantized accuracy %.3f vs float %.3f: drift > 5 points", quantAcc, floatAcc)
	}
}

func TestQuantForwardMatchesClassify(t *testing.T) {
	_, qn, samples := trainedQuantPair(t)
	for _, smp := range samples[:20] {
		logits := qn.Forward(smp.Input)
		best := 0
		ld := logits.Data()
		for i, v := range ld {
			if v > ld[best] {
				best = i
			}
		}
		if got := qn.Classify(smp.Input); got != best {
			t.Fatalf("Classify %d != Forward argmax %d", got, best)
		}
	}
}

func TestQuantAvgPoolNetwork(t *testing.T) {
	// Exercise qAvgPool (and its rounded mean) end to end.
	net := buildFullNet(7)
	samples := spatialSamples(311, 40, 1, 8, 8, 2)
	net.Fit(samples, 4, 8, NewSGD(0.05, 0.9), rng.New(23).Split("fit"))
	qn, err := QuantizeNetwork(net, samples)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, smp := range samples {
		if qn.Classify(smp.Input) == net.Predict(smp.Input) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(samples)); frac < 0.9 {
		t.Fatalf("avgpool-net quantized agreement %.3f < 0.9", frac)
	}
}

func TestQuantDeterministic(t *testing.T) {
	net, _, samples := trainedQuantPair(t)
	qa, err := QuantizeNetwork(net, samples)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := QuantizeNetwork(net, samples)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(99)
	for i := 0; i < 50; i++ {
		in := randomInput(s, 1, 6, 6)
		if qa.Classify(in) != qb.Classify(in) {
			t.Fatal("two quantizations of the same network diverge")
		}
		if !tensor.Equal(qa.Forward(in), qb.Forward(in), 0) {
			t.Fatal("quantized Forward not bit-deterministic")
		}
	}
}

// TestQuantFusedMatchesReference pins the optimized integer pipeline (fused
// conv block, SWAR dense) to the plain layered lowering bit for bit: both
// compute the same integers by construction, on inputs far outside the
// calibrated range included.
func TestQuantFusedMatchesReference(t *testing.T) {
	for _, seed := range []uint64{31, 77} {
		net := buildTinyNet(seed)
		samples := spatialSamples(301+seed, 60, 1, 6, 6, 3)
		net.Fit(samples, 4, 8, NewSGD(0.05, 0.9), rng.New(17).Split("fit"))
		fused, err := QuantizeNetwork(net, samples)
		if err != nil {
			t.Fatal(err)
		}
		quantDisableFusion = true
		plain, err := QuantizeNetwork(net, samples)
		quantDisableFusion = false
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range fused.layers {
			if _, ok := l.(*qConvReLUPool); ok {
				goto hasFused
			}
		}
		t.Fatal("fused quantization did not build a qConvReLUPool block")
	hasFused:
		s := rng.New(1000 + seed)
		for i := 0; i < 200; i++ {
			in := randomInput(s, 1, 6, 6)
			if i%5 == 0 { // push activations outside the calibrated range
				d := in.Data()
				for j := range d {
					d[j] *= 40
				}
			}
			if !tensor.Equal(fused.Forward(in), plain.Forward(in), 0) {
				t.Fatalf("seed %d input %d: fused forward diverges from layered reference", seed, i)
			}
			if fused.Classify(in) != plain.Classify(in) {
				t.Fatalf("seed %d input %d: fused classify diverges", seed, i)
			}
		}
	}
}
