package cnn

// Int8 fixed-point inference (Neuro.ZERO-style). A trained float network is
// lowered once into a QuantizedNetwork whose forward pass runs entirely on
// int8 activations and weights with int32 accumulators — the arithmetic a
// zero-energy harvester-class MCU can afford — and whose per-layer
// activation scales are calibrated adaptively from float forward passes over
// a calibration set.
//
// Quantization is per-tensor symmetric: value ≈ q·scale with q ∈ [-127,127]
// and zero-point 0, so the inner loops are plain multiply-accumulates with
// no zero-point cross terms. Weights use their own maxabs/127 scale per
// layer; activations use the maxabs/127 of the layer's float outputs over
// the calibration set; biases are pre-scaled to the accumulator's scale
// (inScale·wScale) as int32. Between layers the int32 accumulator is
// rescaled to the next activation scale with a fixed-point multiplier
// (round(m·2^24), round-half-up, saturating to ±127) — no floating point
// anywhere on the inference path. ReLU, max pooling and flatten operate
// directly on int8 (scale passes through unchanged); average pooling uses a
// rounded integer mean. The final Dense layer skips requantization and
// keeps its int32 accumulators: Classify is an integer argmax, and Forward
// dequantizes the logits into a reused float tensor.
//
// Accumulators hold sums of at most ±16129 (127·127) per term, so layers up
// to ~130k inputs per output are overflow-safe in int32 — far beyond the
// layer sizes the experiments use.
//
// Once constructed, Forward/Classify allocate nothing: all buffers are
// sized at build time.

import (
	"errors"
	"fmt"
	"math"

	"zeiot/internal/tensor"
)

// qShift is the fixed-point fraction width of requantization multipliers.
const qShift = 24

// qlayer is one stage of the quantized inference stack.
type qlayer interface {
	qforward(in []int8) []int8
}

// quantDisableFusion turns off the fused conv block and the SWAR dense path
// so tests can compare the optimized integer pipeline against the plain
// reference layers bit for bit. Both paths compute the same integers; only
// the instruction schedule differs.
var quantDisableFusion bool

// requantize rescales an int32 accumulator to the next activation scale:
// round-half-up fixed-point multiply, saturating to the symmetric int8
// range.
func requantize(acc int32, mult int64) int8 {
	v := (int64(acc)*mult + 1<<(qShift-1)) >> qShift
	return int8(min(max(v, -127), 127))
}

// qscale returns the symmetric per-tensor scale for a maximum magnitude.
func qscale(maxabs float64) float64 {
	if maxabs <= 0 {
		return 1
	}
	return maxabs / 127
}

func clampRound8(v float64) int8 {
	r := math.Round(v)
	if r > 127 {
		return 127
	}
	if r < -127 {
		return -127
	}
	return int8(r)
}

// quantizeInput is clampRound8(v*inv) over a slice, restructured for the hot
// path: clamping in the float domain first keeps the float→int conversion in
// range, and for |t| ≤ 127 the sum t+copysign(0.5, t) is exact, so truncation
// equals math.Round's round-half-away-from-zero — identical int8 results for
// every finite input.
func quantizeInput(dst []int8, src []float64, inv float64) {
	dst = dst[:len(src)]
	for i, v := range src {
		t := v * inv
		if t > 127 {
			t = 127
		}
		if t < -127 {
			t = -127
		}
		dst[i] = int8(int32(t + math.Copysign(0.5, t)))
	}
}

func maxAbs(data []float64) float64 {
	m := 0.0
	for _, v := range data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// qConv is an int8 convolution with int32 accumulation.
type qConv struct {
	inC, inH, inW    int
	outC, outH, outW int
	kh, kw           int
	stride, pad      int
	w    []int8  // (outC, inC, kh, kw), at wScale
	b    []int32 // at inScale·wScale
	mult int64
	out  []int8
}

func (c *qConv) qforward(in []int8) []int8 {
	khkw := c.kh * c.kw
	kcs := c.inC * khkw
	idx := 0
	for oc := 0; oc < c.outC; oc++ {
		kocBase := oc * kcs
		for oy := 0; oy < c.outH; oy++ {
			ky0, ky1 := kernelWindow(oy, c.stride, c.pad, c.kh, c.inH)
			iyBase := oy*c.stride - c.pad
			for ox := 0; ox < c.outW; ox++ {
				kx0, kx1 := kernelWindow(ox, c.stride, c.pad, c.kw, c.inW)
				ixBase := ox*c.stride - c.pad
				acc := c.b[oc]
				for ic := 0; ic < c.inC; ic++ {
					icBase := ic * c.inH * c.inW
					kicBase := kocBase + ic*khkw
					for ky := ky0; ky < ky1; ky++ {
						iOff := icBase + (iyBase+ky)*c.inW + ixBase
						kOff := kicBase + ky*c.kw
						for kx := kx0; kx < kx1; kx++ {
							acc += int32(c.w[kOff+kx]) * int32(in[iOff+kx])
						}
					}
				}
				c.out[idx] = requantize(acc, c.mult)
				idx++
			}
		}
	}
	return c.out
}

// ---------------------------------------------------------------------------
// Fused Conv2D+ReLU+MaxPool2D block
//
// The hot experiment topology starts with a single-channel 3×3/stride-1/pad-1
// convolution feeding ReLU and a max pool. The fused block computes the same
// integers as qConv→qReLU→qMaxPool but restructured for the scalar core:
//
//   - Offset domain: with u = x+128 ∈ [0,255] and w' = w+128 ∈ [1,255], every
//     product u·w' is non-negative and fits 17 bits, so one 64-bit multiply
//     accumulates two output channels at once (w'_a in the low lane, w'_b in
//     the high lane: Σu·w' ≤ 9·255·255 never carries across bit 32). The true
//     accumulator is recovered per lane from
//       Σw·x = Σw'u − 128·Σu − 128·Σw' + 9·16384,
//     where Σu is a 3×3 box sum shared by every output channel and
//     −128·Σw' + 9·16384 folds into a per-channel constant with the bias.
//   - Halo: pad-1 zeros quantize to u = 128, so a one-cell halo of 128s makes
//     every window a full nine-term window — no edge variants, and the Σu
//     plane is a plain separable box filter over the haloed input.
//   - Int32-domain pooling: requantization is monotone (the multiplier is
//     non-negative), so max-pooling the int32 accumulators and requantizing
//     only each window's winner equals requantizing everything first; ReLU
//     commutes with max the same way and becomes a clamp-low-at-zero on the
//     requantized winner. Only pooled survivors pay the fixed-point rescale,
//     and conv rows the pool never reads are not computed at all.
type qConvReLUPool struct {
	inH, inW       int // single-channel input plane
	outC           int
	hEff, wEff     int // conv output rows/cols the pool actually reads
	pSize, pStride int
	poolH, poolW   int
	mult           int64
	w2             []uint64 // per oc pair: 9 packed offset weights w'a | w'b<<32
	c              []int64  // per oc: bias − 128·Σw' + 9·16384
	u              []int64  // haloed offset input (inH+2)×(inW+2), border fixed at 128
	rs             []int64  // horizontal 3-sums over haloed rows, (hEff+2)×wEff
	s              []int64  // 3×3 box sums Σu, hEff×wEff
	accA, accB     []int32  // conv accumulator planes for the current oc pair
	out            []int8
}

// newQConvReLUPool lowers the three-layer stack; the activation scale is the
// conv's calibrated output scale (ReLU and max pool pass scale through).
func newQConvReLUPool(t *Conv2D, p *MaxPool2D, inShape []int, inScale, convActMax float64) (*qConvReLUPool, []int, float64) {
	convOut := t.OutShape(inShape)
	poolOut := p.OutShape(convOut)
	h, w := inShape[1], inShape[2]
	outC := convOut[0]
	hEff := (poolOut[1]-1)*p.Stride + p.Size
	if hEff > convOut[1] {
		hEff = convOut[1]
	}
	wEff := (poolOut[2]-1)*p.Stride + p.Size
	if wEff > convOut[2] {
		wEff = convOut[2]
	}
	wd := t.weight.Data()
	ws := qscale(maxAbs(wd))
	outScale := qscale(convActMax)
	bd := t.bias.Data()
	np := (outC + 1) / 2
	q := &qConvReLUPool{
		inH: h, inW: w, outC: outC,
		hEff: hEff, wEff: wEff,
		pSize: p.Size, pStride: p.Stride,
		poolH: poolOut[1], poolW: poolOut[2],
		mult: int64(math.Round(inScale * ws / outScale * (1 << qShift))),
		w2:   make([]uint64, np*9),
		c:    make([]int64, outC),
		u:    make([]int64, (h+2)*(w+2)),
		rs:   make([]int64, (hEff+2)*wEff),
		s:    make([]int64, hEff*wEff),
		accA: make([]int32, hEff*wEff),
		accB: make([]int32, hEff*wEff),
		out:  make([]int8, outC*poolOut[1]*poolOut[2]),
	}
	for i := range q.u {
		q.u[i] = 128 // interior is overwritten every forward; the halo stays
	}
	for oc := 0; oc < outC; oc++ {
		sw := int64(0)
		for k := 0; k < 9; k++ {
			qw := int64(clampRound8(wd[oc*9+k] / ws))
			sw += qw + 128
			lane := oc & 1
			q.w2[(oc/2)*9+k] |= uint64(qw+128) << (32 * lane)
		}
		q.c[oc] = int64(int32(math.Round(bd[oc]/(inScale*ws)))) - 128*sw + 9*16384
	}
	if outC%2 == 1 { // duplicate the tail channel into the idle high lane
		for k := 0; k < 9; k++ {
			v := q.w2[(outC/2)*9+k]
			q.w2[(outC/2)*9+k] = v | v<<32
		}
	}
	return q, poolOut, outScale
}

func (q *qConvReLUPool) qforward(in []int8) []int8 {
	h, w, wEff := q.inH, q.inW, q.wEff
	hw := w + 2
	for y := 0; y < h; y++ {
		src := in[y*w : (y+1)*w]
		dst := q.u[(y+1)*hw+1:][:len(src)]
		for x, v := range src {
			dst[x] = int64(v) + 128
		}
	}
	// Separable box filter for the Σu plane: horizontal 3-sums per haloed
	// row, then vertical 3-sums down the columns. Loads go highest index
	// first so one bounds check covers each row.
	for y := 0; y < q.hEff+2; y++ {
		row := q.u[y*hw : y*hw+wEff+2]
		dst := q.rs[y*wEff : y*wEff+wEff]
		for x := range dst {
			v2 := row[x+2]
			v0, v1 := row[x], row[x+1]
			dst[x] = v0 + v1 + v2
		}
	}
	for y := 0; y < q.hEff; y++ {
		dst := q.s[y*wEff : y*wEff+wEff]
		r0 := q.rs[y*wEff:][:len(dst)]
		r1 := q.rs[(y+1)*wEff:][:len(dst)]
		r2 := q.rs[(y+2)*wEff:][:len(dst)]
		for x := range dst {
			dst[x] = r0[x] + r1[x] + r2[x]
		}
	}
	np := (q.outC + 1) / 2
	for pi := 0; pi < np; pi++ {
		ocA := 2 * pi
		ocB := ocA + 1
		kw := q.w2[pi*9 : pi*9+9 : pi*9+9]
		k0, k1, k2 := kw[0], kw[1], kw[2]
		k3, k4, k5 := kw[3], kw[4], kw[5]
		k6, k7, k8 := kw[6], kw[7], kw[8]
		cA := q.c[ocA]
		cB := cA
		if ocB < q.outC {
			cB = q.c[ocB]
		}
		idx := 0
		for y := 0; y < q.hEff; y++ {
			r0 := q.u[y*hw : y*hw+wEff+2]
			r1 := q.u[(y+1)*hw : (y+1)*hw+wEff+2]
			r2 := q.u[(y+2)*hw : (y+2)*hw+wEff+2]
			sr := q.s[y*wEff : y*wEff+wEff]
			aA := q.accA[idx:][:len(sr)]
			aB := q.accB[idx:][:len(sr)]
			// Unroll by two: adjacent windows share six of their nine input
			// loads, and the two accumulator chains run independently.
			x := 0
			for ; x+1 < len(sr); x += 2 {
				a3 := uint64(r0[x+3])
				a0, a1, a2 := uint64(r0[x]), uint64(r0[x+1]), uint64(r0[x+2])
				b3 := uint64(r1[x+3])
				b0, b1, b2 := uint64(r1[x]), uint64(r1[x+1]), uint64(r1[x+2])
				c3 := uint64(r2[x+3])
				c0, c1, c2 := uint64(r2[x]), uint64(r2[x+1]), uint64(r2[x+2])
				acc := k0*a0 + k1*a1 + k2*a2
				acc += k3*b0 + k4*b1 + k5*b2
				acc += k6*c0 + k7*c1 + k8*c2
				acc2 := k0*a1 + k1*a2 + k2*a3
				acc2 += k3*b1 + k4*b2 + k5*b3
				acc2 += k6*c1 + k7*c2 + k8*c3
				corr := sr[x] << 7
				corr2 := sr[x+1] << 7
				aA[x] = int32(int64(uint32(acc)) - corr + cA)
				aB[x] = int32(int64(acc>>32) - corr + cB)
				aA[x+1] = int32(int64(uint32(acc2)) - corr2 + cA)
				aB[x+1] = int32(int64(acc2>>32) - corr2 + cB)
			}
			for ; x < len(sr); x++ {
				a2 := uint64(r0[x+2])
				a0, a1 := uint64(r0[x]), uint64(r0[x+1])
				b2 := uint64(r1[x+2])
				b0, b1 := uint64(r1[x]), uint64(r1[x+1])
				c2 := uint64(r2[x+2])
				c0, c1 := uint64(r2[x]), uint64(r2[x+1])
				acc := k0*a0 + k1*a1 + k2*a2
				acc += k3*b0 + k4*b1 + k5*b2
				acc += k6*c0 + k7*c1 + k8*c2
				corr := sr[x] << 7
				aA[x] = int32(int64(uint32(acc)) - corr + cA)
				aB[x] = int32(int64(acc>>32) - corr + cB)
			}
			idx += wEff
		}
		q.poolPlane(q.accA, ocA)
		if ocB < q.outC {
			q.poolPlane(q.accB, ocB)
		}
	}
	return q.out
}

// poolPlane max-pools one channel's int32 conv accumulators and requantizes
// each window's winner, clamping negatives to zero (the fused ReLU).
func (q *qConvReLUPool) poolPlane(acc []int32, oc int) {
	idx := oc * q.poolH * q.poolW
	for py := 0; py < q.poolH; py++ {
		iy0 := py * q.pStride
		ky1 := q.pSize
		if iy0+ky1 > q.hEff {
			ky1 = q.hEff - iy0
		}
		for px := 0; px < q.poolW; px++ {
			ix0 := px * q.pStride
			kx1 := q.pSize
			if ix0+kx1 > q.wEff {
				kx1 = q.wEff - ix0
			}
			o := iy0*q.wEff + ix0
			var best int32
			// Unclipped 2×2/3×3 windows take a fully unrolled balanced max
			// tree (CMOVs — a compare-and-track branch on the running max is
			// data-dependent and mispredicts); anything clipped or larger
			// falls back to the scanning loop.
			switch {
			case ky1 == 3 && kx1 == 3:
				wE := q.wEff
				r2 := acc[o+2*wE : o+2*wE+3]
				r0, r1 := acc[o:o+3], acc[o+wE:o+wE+3]
				best = max(max(r0[0], r0[1]), max(r0[2], r1[0]))
				best = max(best, max(r1[1], r1[2]))
				best = max(best, max(r2[0], max(r2[1], r2[2])))
			case ky1 == 2 && kx1 == 2:
				wE := q.wEff
				r1 := acc[o+wE : o+wE+2]
				r0 := acc[o : o+2]
				best = max(max(r0[0], r0[1]), max(r1[0], r1[1]))
			default:
				best = acc[o]
				for ky := 0; ky < ky1; ky++ {
					row := (iy0+ky)*q.wEff + ix0
					for _, v := range acc[row : row+kx1] {
						best = max(best, v)
					}
				}
			}
			q.out[idx] = max(requantize(best, q.mult), 0)
			idx++
		}
	}
}

// qDense is an int8 fully-connected layer. The network's final Dense keeps
// its int32 accumulators (requant false); interior ones rescale to int8.
// When the input fits the SWAR overflow bound, forward32 runs the same
// offset-domain dual-channel scheme as the fused conv block: one 64-bit
// multiply per input feeds two output channels, with Σu computed once and
// the remaining correction folded into per-channel constants.
type qDense struct {
	in, out int
	w       []int8
	b       []int32
	mult    int64
	requant bool
	out8    []int8
	out32   []int32
	w2      []uint64 // per oc pair: in packed offset weights w'a | w'b<<32
	c       []int64  // per oc: bias − 128·Σw' + in·16384
	u       []uint64 // offset input x+128
}

// qDenseSwarMaxIn bounds the SWAR dense input width: each 32-bit lane
// accumulates at most in·255·255, which must stay below 2^32.
const qDenseSwarMaxIn = 66052

// initSwar packs the offset-weight pairs; no-op when the input is too wide
// for the lane bound (forward32 then keeps the scalar path).
func (d *qDense) initSwar() {
	if d.in > qDenseSwarMaxIn {
		return
	}
	np := (d.out + 1) / 2
	d.w2 = make([]uint64, np*d.in)
	d.c = make([]int64, d.out)
	d.u = make([]uint64, d.in)
	for o := 0; o < d.out; o++ {
		sw := int64(0)
		row := d.w[o*d.in : (o+1)*d.in]
		lane := uint(32 * (o & 1))
		dst := d.w2[(o/2)*d.in : (o/2+1)*d.in]
		for i, w := range row {
			wp := int64(w) + 128
			sw += wp
			dst[i] |= uint64(wp) << lane
		}
		d.c[o] = int64(d.b[o]) - 128*sw + int64(d.in)*16384
	}
	if d.out%2 == 1 {
		dst := d.w2[(d.out/2)*d.in : (d.out/2+1)*d.in]
		for i, v := range dst {
			dst[i] = v | v<<32
		}
	}
}

func (d *qDense) qforward(in []int8) []int8 {
	d.forward32(in)
	for o, acc := range d.out32 {
		d.out8[o] = requantize(acc, d.mult)
	}
	return d.out8
}

func (d *qDense) forward32(in []int8) []int32 {
	if d.w2 == nil {
		for o := 0; o < d.out; o++ {
			row := d.w[o*d.in : (o+1)*d.in]
			acc := d.b[o]
			for i, w := range row {
				acc += int32(w) * int32(in[i])
			}
			d.out32[o] = acc
		}
		return d.out32
	}
	u := d.u[:d.in]
	su := int64(0)
	for i, v := range in[:d.in] {
		uv := int64(v) + 128
		u[i] = uint64(uv)
		su += uv
	}
	corr := su << 7
	np := (d.out + 1) / 2
	for p := 0; p < np; p++ {
		row := d.w2[p*d.in : (p+1)*d.in]
		ur := u[:len(row)]
		acc := uint64(0)
		i := 0
		for ; i+3 < len(row); i += 4 {
			w3 := row[i+3]
			w0, w1, w2 := row[i], row[i+1], row[i+2]
			u3 := ur[i+3]
			u0, u1, u2 := ur[i], ur[i+1], ur[i+2]
			acc += w0*u0 + w1*u1 + w2*u2 + w3*u3
		}
		for ; i < len(row); i++ {
			acc += row[i] * ur[i]
		}
		oA := 2 * p
		d.out32[oA] = int32(int64(uint32(acc)) - corr + d.c[oA])
		if oB := oA + 1; oB < d.out {
			d.out32[oB] = int32(int64(acc>>32) - corr + d.c[oB])
		}
	}
	return d.out32
}

// qReLU clamps negatives in place; the activation scale passes through.
type qReLU struct{}

func (qReLU) qforward(in []int8) []int8 {
	for i, v := range in {
		if v < 0 {
			in[i] = 0
		}
	}
	return in
}

// qMaxPool is an int8 max pool; max commutes with the monotone
// quantization, so the scale passes through.
type qMaxPool struct {
	ch, inH, inW int
	outH, outW   int
	size, stride int
	out          []int8
}

func (p *qMaxPool) qforward(in []int8) []int8 {
	idx := 0
	for c := 0; c < p.ch; c++ {
		cBase := c * p.inH * p.inW
		for oy := 0; oy < p.outH; oy++ {
			iy0 := oy * p.stride
			ky1 := p.size
			if iy0+ky1 > p.inH {
				ky1 = p.inH - iy0
			}
			for ox := 0; ox < p.outW; ox++ {
				ix0 := ox * p.stride
				kx1 := p.size
				if ix0+kx1 > p.inW {
					kx1 = p.inW - ix0
				}
				best := in[cBase+iy0*p.inW+ix0]
				for ky := 0; ky < ky1; ky++ {
					row := cBase + (iy0+ky)*p.inW + ix0
					for _, v := range in[row : row+kx1] {
						if v > best {
							best = v
						}
					}
				}
				p.out[idx] = best
				idx++
			}
		}
	}
	return p.out
}

// qAvgPool is a rounded integer mean (round-half-up); like the float layer,
// clipped windows average over the cells present, and the scale passes
// through.
type qAvgPool struct {
	ch, inH, inW int
	outH, outW   int
	size, stride int
	out          []int8
}

func (p *qAvgPool) qforward(in []int8) []int8 {
	idx := 0
	for c := 0; c < p.ch; c++ {
		cBase := c * p.inH * p.inW
		for oy := 0; oy < p.outH; oy++ {
			iy0 := oy * p.stride
			ky1 := p.size
			if iy0+ky1 > p.inH {
				ky1 = p.inH - iy0
			}
			for ox := 0; ox < p.outW; ox++ {
				ix0 := ox * p.stride
				kx1 := p.size
				if ix0+kx1 > p.inW {
					kx1 = p.inW - ix0
				}
				sum := int32(0)
				for ky := 0; ky < ky1; ky++ {
					row := cBase + (iy0+ky)*p.inW + ix0
					for _, v := range in[row : row+kx1] {
						sum += int32(v)
					}
				}
				count := int32(ky1 * kx1)
				// Floor((2·sum + count) / (2·count)) = round-half-up mean.
				num := 2*sum + count
				den := 2 * count
				q := num / den
				if num < 0 && num%den != 0 {
					q--
				}
				if q > 127 {
					q = 127
				}
				if q < -127 {
					q = -127
				}
				p.out[idx] = int8(q)
				idx++
			}
		}
	}
	return p.out
}

// qFlatten is a no-op: single-sample activations are already contiguous in
// (C, H, W) row-major order.
type qFlatten struct{}

func (qFlatten) qforward(in []int8) []int8 { return in }

// QuantizedNetwork is an int8 fixed-point inference copy of a trained
// Network. It shares nothing with the source network; Forward and Classify
// allocate nothing. A QuantizedNetwork is not safe for concurrent use.
type QuantizedNetwork struct {
	inShape    []int
	inScale    float64
	inBuf      []int8
	layers     []qlayer
	last       *qDense
	logitScale float64
	outF       *tensor.Tensor
}

// QuantizeNetwork lowers a trained float network to int8 fixed point,
// calibrating each layer's activation scale from float forward passes over
// calib (which must be non-empty and representative of inference inputs).
// The source network is only read — its weights are unchanged — but its
// forward scratch is clobbered by the calibration passes. Networks with
// per-position kernel replicas or layers outside the built-in set cannot be
// quantized; the network must end in a Dense layer (the integer logits).
func QuantizeNetwork(n *Network, calib []Sample) (*QuantizedNetwork, error) {
	if len(calib) == 0 {
		return nil, errors.New("cnn: quantization needs a non-empty calibration set")
	}
	if len(n.layers) == 0 {
		return nil, errors.New("cnn: cannot quantize an empty network")
	}
	// Calibrate: per-layer output magnitude over the calibration set.
	actMax := make([]float64, len(n.layers))
	inMax := 0.0
	for _, s := range calib {
		if m := maxAbs(s.Input.Data()); m > inMax {
			inMax = m
		}
		x := s.Input
		for li, l := range n.layers {
			x = l.Forward(x)
			if m := maxAbs(x.Data()); m > actMax[li] {
				actMax[li] = m
			}
		}
	}

	shape := append([]int(nil), n.inShape...)
	scale := qscale(inMax)
	vol := 1
	for _, d := range shape {
		vol *= d
	}
	q := &QuantizedNetwork{
		inShape: append([]int(nil), n.inShape...),
		inScale: scale,
		inBuf:   make([]int8, vol),
	}
	for li := 0; li < len(n.layers); li++ {
		l := n.layers[li]
		lastLayer := li == len(n.layers)-1
		// Fused fast path: a single-channel 3×3/stride-1/pad-1 conv feeding
		// ReLU and a max pool lowers to one block that pools in the int32
		// accumulator domain (bit-identical to the layered lowering; see the
		// qConvReLUPool comment).
		if !quantDisableFusion && li+2 < len(n.layers) {
			if t, ok := l.(*Conv2D); ok && t.kernelFor == nil &&
				t.InC == 1 && t.KH == 3 && t.KW == 3 && t.Stride == 1 && t.Pad == 1 {
				if _, ok := n.layers[li+1].(*ReLU); ok {
					if p, ok := n.layers[li+2].(*MaxPool2D); ok {
						blk, outShape, outScale := newQConvReLUPool(t, p, shape, scale, actMax[li])
						q.layers = append(q.layers, blk)
						shape, scale = outShape, outScale
						li += 2
						continue
					}
				}
			}
		}
		switch t := l.(type) {
		case *Conv2D:
			if t.kernelFor != nil {
				return nil, errors.New("cnn: cannot quantize a conv with per-position kernel replicas")
			}
			if lastLayer {
				return nil, errors.New("cnn: quantized network must end in a dense layer")
			}
			wd := t.weight.Data()
			ws := qscale(maxAbs(wd))
			qw := make([]int8, len(wd))
			for i, v := range wd {
				qw[i] = clampRound8(v / ws)
			}
			bd := t.bias.Data()
			qb := make([]int32, len(bd))
			for i, v := range bd {
				qb[i] = int32(math.Round(v / (scale * ws)))
			}
			outScale := qscale(actMax[li])
			out := t.OutShape(shape)
			qc := &qConv{
				inC: shape[0], inH: shape[1], inW: shape[2],
				outC: out[0], outH: out[1], outW: out[2],
				kh: t.KH, kw: t.KW, stride: t.Stride, pad: t.Pad,
				w: qw, b: qb,
				mult: int64(math.Round(scale * ws / outScale * (1 << qShift))),
				out:  make([]int8, out[0]*out[1]*out[2]),
			}
			q.layers = append(q.layers, qc)
			shape, scale = out, outScale
		case *Dense:
			wd := t.weight.Data()
			ws := qscale(maxAbs(wd))
			qw := make([]int8, len(wd))
			for i, v := range wd {
				qw[i] = clampRound8(v / ws)
			}
			bd := t.bias.Data()
			qb := make([]int32, len(bd))
			for i, v := range bd {
				qb[i] = int32(math.Round(v / (scale * ws)))
			}
			qd := &qDense{
				in: t.In, out: t.Out,
				w: qw, b: qb,
				out32: make([]int32, t.Out),
			}
			if !quantDisableFusion {
				qd.initSwar()
			}
			if lastLayer {
				q.last = qd
				q.logitScale = scale * ws
			} else {
				outScale := qscale(actMax[li])
				qd.requant = true
				qd.mult = int64(math.Round(scale * ws / outScale * (1 << qShift)))
				qd.out8 = make([]int8, t.Out)
				q.layers = append(q.layers, qd)
				scale = outScale
			}
			shape = t.OutShape(shape)
		case *ReLU:
			if lastLayer {
				return nil, errors.New("cnn: quantized network must end in a dense layer")
			}
			q.layers = append(q.layers, qReLU{})
		case *MaxPool2D:
			if lastLayer {
				return nil, errors.New("cnn: quantized network must end in a dense layer")
			}
			out := t.OutShape(shape)
			q.layers = append(q.layers, &qMaxPool{
				ch: shape[0], inH: shape[1], inW: shape[2],
				outH: out[1], outW: out[2],
				size: t.Size, stride: t.Stride,
				out: make([]int8, out[0]*out[1]*out[2]),
			})
			shape = out
		case *AvgPool2D:
			if lastLayer {
				return nil, errors.New("cnn: quantized network must end in a dense layer")
			}
			out := t.OutShape(shape)
			q.layers = append(q.layers, &qAvgPool{
				ch: shape[0], inH: shape[1], inW: shape[2],
				outH: out[1], outW: out[2],
				size: t.Size, stride: t.Stride,
				out: make([]int8, out[0]*out[1]*out[2]),
			})
			shape = out
		case *Flatten:
			if lastLayer {
				return nil, errors.New("cnn: quantized network must end in a dense layer")
			}
			q.layers = append(q.layers, qFlatten{})
			shape = t.OutShape(shape)
		default:
			return nil, fmt.Errorf("cnn: cannot quantize layer %q", l.Name())
		}
	}
	if q.last == nil {
		return nil, errors.New("cnn: quantized network must end in a dense layer")
	}
	q.outF = tensor.New(q.last.out)
	return q, nil
}

// InScale returns the input quantization scale (input ≈ int8·InScale).
func (q *QuantizedNetwork) InScale() float64 { return q.inScale }

// forwardInt runs the integer pipeline and returns the int32 logit
// accumulators (scratch owned by the network).
func (q *QuantizedNetwork) forwardInt(in *tensor.Tensor) []int32 {
	d := in.Data()
	if len(d) != len(q.inBuf) {
		panic(fmt.Sprintf("cnn: quantized input size %d, want %d", len(d), len(q.inBuf)))
	}
	quantizeInput(q.inBuf, d, 1/q.inScale)
	x := q.inBuf
	for _, l := range q.layers {
		x = l.qforward(x)
	}
	return q.last.forward32(x)
}

// Classify returns the argmax class of the integer logits (first index on
// ties). It allocates nothing.
func (q *QuantizedNetwork) Classify(in *tensor.Tensor) int {
	logits := q.forwardInt(in)
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// Forward returns the dequantized logits. The returned tensor is scratch
// owned by the network, overwritten by the next Forward call; the call
// allocates nothing.
func (q *QuantizedNetwork) Forward(in *tensor.Tensor) *tensor.Tensor {
	logits := q.forwardInt(in)
	out := q.outF.Data()
	for i, v := range logits {
		out[i] = float64(v) * q.logitScale
	}
	return q.outF
}
