package cnn

import (
	"encoding/gob"
	"fmt"
	"io"

	"zeiot/internal/rng"
)

// Trainer is Fit broken into resumable mini-batch steps for intermittent
// execution: a harvest-powered node trains one batch whenever its capacitor
// can fund it, and a power loss between batches checkpoints and later
// resumes with results bit-identical to an uninterrupted Fit at the same
// seed.
//
// The identity argument: Fit consumes the stream only through one Perm per
// epoch, steps the optimizer at fixed batch boundaries, and accumulates the
// epoch loss in sample order. Trainer preserves all three exactly — the
// cursor only ever rests at a batch boundary (where gradients are zero, so
// no partial accumulation needs saving), the permutation is recomputed on
// resume from the stream state captured at epoch start, and chunked training
// reuses the same per-sample forward/backward/reduce order as
// TrainEpoch/TrainEpochParallel at any worker count.
//
// Trainer always uses the per-sample training paths; a batch kernel
// configured on the network (SetBatchKernel) is ignored — the im2col blocks
// do not checkpoint at batch granularity.
type Trainer struct {
	net     *Network
	opt     Optimizer
	stream  *rng.Stream
	samples []Sample
	epochs  int
	batch   int
	workers int

	epoch      int   // completed epochs
	cursor     int   // sample cursor within the current epoch (batch-aligned)
	perm       []int // current epoch's shuffle; nil until the epoch starts
	epochStart rng.State
	lossSum    float64
	lossCount  int
	lastLoss   float64
	batches    int // lifetime mini-batches run (kill-switch accounting)
}

// NewTrainer returns a trainer that will run `epochs` epochs of mini-batch
// SGD over samples, shuffled per epoch from stream, exactly as
// net.FitParallel(samples, epochs, batch, workers, opt, stream) would.
func NewTrainer(net *Network, opt Optimizer, stream *rng.Stream, samples []Sample, epochs, batch, workers int) *Trainer {
	if batch <= 0 {
		panic("cnn: non-positive batch size")
	}
	return &Trainer{net: net, opt: opt, stream: stream, samples: samples,
		epochs: epochs, batch: batch, workers: workers}
}

// Net returns the network under training.
func (t *Trainer) Net() *Network { return t.net }

// Done reports whether every epoch has completed.
func (t *Trainer) Done() bool { return t.epoch >= t.epochs || len(t.samples) == 0 }

// EpochsCompleted returns the number of fully trained epochs.
func (t *Trainer) EpochsCompleted() int { return t.epoch }

// BatchesRun returns the lifetime mini-batch count, checkpoints included.
func (t *Trainer) BatchesRun() int { return t.batches }

// LastLoss returns the mean training loss of the most recently completed
// epoch — after the final epoch, the value Fit would have returned.
func (t *Trainer) LastLoss() float64 { return t.lastLoss }

// beginEpoch records the stream position (so resume can recompute the
// shuffle) and draws the epoch's permutation.
func (t *Trainer) beginEpoch() {
	t.epochStart = t.stream.State()
	t.perm = t.stream.Perm(len(t.samples))
	t.cursor = 0
	t.lossSum = 0
	t.lossCount = 0
	t.net.ZeroGrads()
}

// Step trains up to maxBatches mini-batches, crossing epoch boundaries as
// needed, and returns the number actually run (0 when Done). Calling
// Step(k) repeatedly until Done is bit-identical to one Fit call.
func (t *Trainer) Step(maxBatches int) int {
	ran := 0
	for ran < maxBatches && !t.Done() {
		if t.perm == nil {
			t.beginEpoch()
		}
		want := maxBatches - ran
		end := t.cursor + want*t.batch
		if end > len(t.perm) {
			end = len(t.perm)
		}
		chunk := t.perm[t.cursor:end]
		ran += (len(chunk) + t.batch - 1) / t.batch
		t.trainChunk(chunk)
		t.cursor = end
		if t.cursor == len(t.perm) {
			if t.lossCount > 0 {
				t.lastLoss = t.lossSum / float64(t.lossCount)
			}
			t.net.observeEpoch(t.lastLoss)
			t.epoch++
			t.perm = nil
			t.cursor = 0
		}
	}
	return ran
}

// trainChunk trains one batch-aligned slice of the epoch's permutation,
// accumulating the loss total. Gradients are zero on entry and on exit
// (batch boundaries), which is what makes the cursor checkpointable.
func (t *Trainer) trainChunk(chunk []int) {
	t.batches += (len(chunk) + t.batch - 1) / t.batch
	if t.workers != 1 {
		total, count, ok := t.net.trainChunkParallel(t.samples, chunk, t.batch, t.workers, func(bsz int) {
			t.opt.StepNetwork(t.net, bsz)
			t.net.ZeroGrads()
		})
		if ok {
			t.lossSum += total
			t.lossCount += count
			return
		}
	}
	inBatch := 0
	for _, idx := range chunk {
		s := t.samples[idx]
		logits := t.net.Forward(s.Input)
		loss, grad := CrossEntropy(logits, s.Label)
		t.lossSum += loss
		t.lossCount++
		t.net.Backward(grad)
		inBatch++
		if inBatch == t.batch {
			t.opt.StepNetwork(t.net, inBatch)
			t.net.ZeroGrads()
			inBatch = 0
		}
	}
	if inBatch > 0 {
		t.opt.StepNetwork(t.net, inBatch)
		t.net.ZeroGrads()
	}
}

// trainerBlob is the gob wire format of the training cursor.
type trainerBlob struct {
	Version    int
	Epochs     int
	Batch      int
	NSamples   int
	Epoch      int
	Cursor     int
	Started    bool // whether the current epoch's shuffle has been drawn
	LossSum    float64
	LossCount  int
	LastLoss   float64
	Batches    int
	EpochStart rng.State
}

// trainerCheckpoint bundles the cursor with the network/optimizer/stream
// blob in one gob value so one encoder/decoder pair handles the file.
type trainerCheckpoint struct {
	Version int
	Trainer trainerBlob
	Net     *netBlob
}

// Save checkpoints the trainer: network weights, optimizer state, stream
// position, and the epoch/sample cursor. The sample data itself is not
// serialized — datasets are regenerated deterministically from their seed —
// so ResumeTrainer takes the samples as an argument and validates the count.
func (t *Trainer) Save(w io.Writer) error {
	if t.perm != nil && t.cursor%t.batch != 0 && t.cursor != len(t.perm) {
		return fmt.Errorf("cnn: trainer cursor %d not at a batch boundary", t.cursor)
	}
	nb, err := t.net.blob(t.opt)
	if err != nil {
		return err
	}
	nb.Streams = []rng.State{t.stream.State()}
	ck := trainerCheckpoint{
		Version: blobVersion,
		Trainer: trainerBlob{
			Version: blobVersion, Epochs: t.epochs, Batch: t.batch, NSamples: len(t.samples),
			Epoch: t.epoch, Cursor: t.cursor, Started: t.perm != nil,
			LossSum: t.lossSum, LossCount: t.lossCount, LastLoss: t.lastLoss,
			Batches: t.batches, EpochStart: t.epochStart,
		},
		Net: nb,
	}
	return gob.NewEncoder(w).Encode(ck)
}

// ResumeTrainer rebuilds a trainer from a checkpoint written by Save. The
// caller supplies the (deterministically regenerated) samples and the worker
// count — worker count never changes results, so a run may resume with a
// different one. Continuing the returned trainer to completion yields
// weights bit-identical to the uninterrupted run.
func ResumeTrainer(r io.Reader, samples []Sample, workers int) (*Trainer, error) {
	var ck trainerCheckpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("cnn: decoding trainer checkpoint: %w", err)
	}
	tb := ck.Trainer
	if tb.Version < 1 || tb.Version > blobVersion {
		return nil, fmt.Errorf("cnn: unsupported trainer checkpoint version %d", tb.Version)
	}
	if tb.NSamples != len(samples) {
		return nil, fmt.Errorf("cnn: checkpoint trained on %d samples, caller supplied %d", tb.NSamples, len(samples))
	}
	if tb.Batch <= 0 || tb.Epochs < 0 || tb.Epoch < 0 || tb.Cursor < 0 || tb.Cursor > tb.NSamples {
		return nil, fmt.Errorf("cnn: trainer checkpoint cursor out of range (epoch=%d cursor=%d batch=%d)", tb.Epoch, tb.Cursor, tb.Batch)
	}
	if ck.Net == nil {
		return nil, fmt.Errorf("cnn: trainer checkpoint has no network blob")
	}
	net, blob, err := decodeNetBlob(ck.Net)
	if err != nil {
		return nil, err
	}
	if blob.Opt == nil || len(blob.Streams) != 1 {
		return nil, fmt.Errorf("cnn: trainer checkpoint missing optimizer or stream state")
	}
	opt, err := restoreOptimizer(net, blob.Opt)
	if err != nil {
		return nil, err
	}
	t := &Trainer{
		net: net, opt: opt, stream: rng.FromState(blob.Streams[0]), samples: samples,
		epochs: tb.Epochs, batch: tb.Batch, workers: workers,
		epoch: tb.Epoch, cursor: tb.Cursor,
		lossSum: tb.LossSum, lossCount: tb.LossCount, lastLoss: tb.LastLoss,
		batches: tb.Batches, epochStart: tb.EpochStart,
	}
	if tb.Started {
		// Recompute the in-flight epoch's shuffle from the stream position
		// recorded at epoch start; the main stream already sits after the
		// draw, so this replays no state.
		t.perm = rng.FromState(tb.EpochStart).Perm(len(samples))
		if tb.Cursor > len(t.perm) {
			return nil, fmt.Errorf("cnn: trainer checkpoint cursor %d beyond epoch length %d", tb.Cursor, len(t.perm))
		}
	}
	return t, nil
}
