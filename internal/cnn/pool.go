package cnn

import (
	"fmt"

	"zeiot/internal/tensor"
)

// MaxPool2D is a max pooling layer over (channels, height, width) input.
type MaxPool2D struct {
	Size, Stride int
	inShape      []int
	argmax       []int // flat input index of each output's max
}

var (
	_ Layer        = (*MaxPool2D)(nil)
	_ SpatialLayer = (*MaxPool2D)(nil)
)

// NewMaxPool2D returns a pooling layer with the given window size and
// stride. A stride of 0 defaults to the window size (non-overlapping).
func NewMaxPool2D(size, stride int) *MaxPool2D {
	if size <= 0 {
		panic("cnn: non-positive pool size")
	}
	if stride == 0 {
		stride = size
	}
	if stride < 0 {
		panic("cnn: negative pool stride")
	}
	return &MaxPool2D{Size: size, Stride: stride}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool%dx%d", p.Size, p.Size) }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("cnn: pool input shape %v, want 3-d", in))
	}
	oh := (in[1]-p.Size)/p.Stride + 1
	ow := (in[2]-p.Size)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: pool output collapses for input %v", in))
	}
	return []int{in[0], oh, ow}
}

// Receptive implements SpatialLayer.
func (p *MaxPool2D) Receptive(oy, ox int) (y0, y1, x0, x1 int) {
	y0 = oy * p.Stride
	x0 = ox * p.Stride
	return y0, y0 + p.Size - 1, x0, x0 + p.Size - 1
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	p.inShape = append(p.inShape[:0], in.Shape()...)
	outShape := p.OutShape(in.Shape())
	ch, oh, ow := outShape[0], outShape[1], outShape[2]
	h, w := in.Dim(1), in.Dim(2)
	out := tensor.New(ch, oh, ow)
	if cap(p.argmax) < out.Size() {
		p.argmax = make([]int, out.Size())
	}
	p.argmax = p.argmax[:out.Size()]
	idx := 0
	for c := 0; c < ch; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := in.At(c, oy*p.Stride, ox*p.Stride)
				bestFlat := (c*h+oy*p.Stride)*w + ox*p.Stride
				for ky := 0; ky < p.Size; ky++ {
					iy := oy*p.Stride + ky
					if iy >= h {
						break
					}
					for kx := 0; kx < p.Size; kx++ {
						ix := ox*p.Stride + kx
						if ix >= w {
							break
						}
						v := in.At(c, iy, ix)
						if v > best {
							best = v
							bestFlat = (c*h+iy)*w + ix
						}
					}
				}
				out.Set(best, c, oy, ox)
				p.argmax[idx] = bestFlat
				idx++
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(p.inShape) == 0 {
		panic("cnn: MaxPool2D backward before forward")
	}
	gradIn := tensor.New(p.inShape...)
	gi := gradIn.Data()
	for i, g := range gradOut.Data() {
		gi[p.argmax[i]] += g
	}
	return gradIn
}
