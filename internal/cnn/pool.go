package cnn

import (
	"fmt"

	"zeiot/internal/tensor"
)

// MaxPool2D is a max pooling layer over (channels, height, width) input.
type MaxPool2D struct {
	Size, Stride int
	inShape      []int
	lastIn       *tensor.Tensor
	out, gradIn  *tensor.Tensor
	// Batched-path scratch (see batch.go). spw is the reused sparse winner
	// list for the fused first-layer backward.
	bInShape      []int
	lastInB       *tensor.Tensor
	outB, gradInB *tensor.Tensor
	spw           []sparseWinner
	// bkts are per-window-row emission buckets indexed by a winner's row
	// offset inside its window; concatenating them in order after each
	// window row yields winners sorted by (y, x) without a comparison sort.
	bkts [3][]sparseWinner
}

var (
	_ Layer        = (*MaxPool2D)(nil)
	_ SpatialLayer = (*MaxPool2D)(nil)
)

// NewMaxPool2D returns a pooling layer with the given window size and
// stride. A stride of 0 defaults to the window size (non-overlapping).
func NewMaxPool2D(size, stride int) *MaxPool2D {
	if size <= 0 {
		panic("cnn: non-positive pool size")
	}
	if stride == 0 {
		stride = size
	}
	if stride < 0 {
		panic("cnn: negative pool stride")
	}
	return &MaxPool2D{Size: size, Stride: stride}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool%dx%d", p.Size, p.Size) }

// shadow implements shadowLayer.
func (p *MaxPool2D) shadow() Layer { return &MaxPool2D{Size: p.Size, Stride: p.Stride} }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("cnn: pool input shape %v, want 3-d", in))
	}
	oh := (in[1]-p.Size)/p.Stride + 1
	ow := (in[2]-p.Size)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: pool output collapses for input %v", in))
	}
	return []int{in[0], oh, ow}
}

// Receptive implements SpatialLayer.
func (p *MaxPool2D) Receptive(oy, ox int) (y0, y1, x0, x1 int) {
	y0 = oy * p.Stride
	x0 = ox * p.Stride
	return y0, y0 + p.Size - 1, x0, x0 + p.Size - 1
}

// Forward implements Layer. The returned tensor is owned by the layer until
// its next Forward call; the input must stay unmodified until Backward runs
// (Backward re-derives each window's argmax from the cached input instead of
// maintaining an index array on the forward hot path, where the
// data-dependent compare-and-track branch dominated the cost).
func (p *MaxPool2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	if in.Dims() != 3 {
		panic(fmt.Sprintf("cnn: pool input shape %v, want 3-d", in.Shape()))
	}
	p.inShape = append(p.inShape[:0], in.Shape()...)
	p.lastIn = in
	ch, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	// Inline OutShape: building the shape slice would allocate per call.
	oh := (h-p.Size)/p.Stride + 1
	ow := (w-p.Size)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: pool output collapses for input %v", in.Shape()))
	}
	p.out = tensor.Ensure(p.out, ch, oh, ow)
	ind := in.Data()
	outd := p.out.Data()
	// Windows never clip: the output extent guarantees iy0+Size <= h and
	// ix0+Size <= w, so the common 2×2 and 3×3 sizes unroll without bounds
	// logic. The max chain folds left exactly like the general loop.
	switch {
	case p.Size == 2:
		idx := 0
		for c := 0; c < ch; c++ {
			cBase := c * h * w
			for oy := 0; oy < oh; oy++ {
				row := cBase + oy*p.Stride*w
				for ox := 0; ox < ow; ox++ {
					o := row + ox*p.Stride
					best := ind[o]
					best = max(best, ind[o+1])
					best = max(best, ind[o+w])
					best = max(best, ind[o+w+1])
					outd[idx] = best
					idx++
				}
			}
		}
		return p.out
	case p.Size == 3:
		idx := 0
		for c := 0; c < ch; c++ {
			cBase := c * h * w
			for oy := 0; oy < oh; oy++ {
				row := cBase + oy*p.Stride*w
				for ox := 0; ox < ow; ox++ {
					o := row + ox*p.Stride
					best := ind[o]
					best = max(best, ind[o+1])
					best = max(best, ind[o+2])
					best = max(best, ind[o+w])
					best = max(best, ind[o+w+1])
					best = max(best, ind[o+w+2])
					best = max(best, ind[o+2*w])
					best = max(best, ind[o+2*w+1])
					best = max(best, ind[o+2*w+2])
					outd[idx] = best
					idx++
				}
			}
		}
		return p.out
	}
	idx := 0
	for c := 0; c < ch; c++ {
		cBase := c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy * p.Stride
			ky1 := p.Size
			if iy0+ky1 > h {
				ky1 = h - iy0
			}
			for ox := 0; ox < ow; ox++ {
				ix0 := ox * p.Stride
				kx1 := p.Size
				if ix0+kx1 > w {
					kx1 = w - ix0
				}
				best := ind[cBase+iy0*w+ix0]
				for ky := 0; ky < ky1; ky++ {
					row := cBase + (iy0+ky)*w + ix0
					for _, v := range ind[row : row+kx1] {
						best = max(best, v)
					}
				}
				outd[idx] = best
				idx++
			}
		}
	}
	return p.out
}

// Backward implements Layer. The returned gradient tensor is owned by the
// layer until its next Backward call. The routed input index is the first
// window element equal to the stored maximum — the same element the
// strict-greater tracking of a fused argmax would keep.
func (p *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(p.inShape) == 0 || p.lastIn == nil {
		panic("cnn: MaxPool2D backward before forward")
	}
	p.gradIn = tensor.Ensure(p.gradIn, p.inShape...)
	p.gradIn.Zero()
	gi := p.gradIn.Data()
	ind := p.lastIn.Data()
	outd := p.out.Data()
	god := gradOut.Data()
	ch, h, w := p.inShape[0], p.inShape[1], p.inShape[2]
	oh := (h-p.Size)/p.Stride + 1
	ow := (w-p.Size)/p.Stride + 1
	// Mirror Forward's unclipped 2×2/3×3 fast paths: scan the window in the
	// same order for the first element equal to the stored maximum.
	switch {
	case p.Size == 2:
		idx := 0
		for c := 0; c < ch; c++ {
			cBase := c * h * w
			for oy := 0; oy < oh; oy++ {
				row := cBase + oy*p.Stride*w
				for ox := 0; ox < ow; ox++ {
					g := god[idx]
					if g == 0 {
						idx++
						continue
					}
					o := row + ox*p.Stride
					best := outd[idx]
					t := o
					switch {
					case ind[o] == best:
					case ind[o+1] == best:
						t = o + 1
					case ind[o+w] == best:
						t = o + w
					case ind[o+w+1] == best:
						t = o + w + 1
					}
					gi[t] += g
					idx++
				}
			}
		}
		return p.gradIn
	case p.Size == 3:
		idx := 0
		for c := 0; c < ch; c++ {
			cBase := c * h * w
			for oy := 0; oy < oh; oy++ {
				row := cBase + oy*p.Stride*w
				for ox := 0; ox < ow; ox++ {
					g := god[idx]
					if g == 0 {
						idx++
						continue
					}
					o := row + ox*p.Stride
					best := outd[idx]
					t := o
					switch {
					case ind[o] == best:
					case ind[o+1] == best:
						t = o + 1
					case ind[o+2] == best:
						t = o + 2
					case ind[o+w] == best:
						t = o + w
					case ind[o+w+1] == best:
						t = o + w + 1
					case ind[o+w+2] == best:
						t = o + w + 2
					case ind[o+2*w] == best:
						t = o + 2*w
					case ind[o+2*w+1] == best:
						t = o + 2*w + 1
					case ind[o+2*w+2] == best:
						t = o + 2*w + 2
					}
					gi[t] += g
					idx++
				}
			}
		}
		return p.gradIn
	}
	idx := 0
	for c := 0; c < ch; c++ {
		cBase := c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy * p.Stride
			ky1 := p.Size
			if iy0+ky1 > h {
				ky1 = h - iy0
			}
			for ox := 0; ox < ow; ox++ {
				g := god[idx]
				if g == 0 {
					idx++
					continue
				}
				ix0 := ox * p.Stride
				kx1 := p.Size
				if ix0+kx1 > w {
					kx1 = w - ix0
				}
				best := outd[idx]
				bestFlat := cBase + iy0*w + ix0
			find:
				for ky := 0; ky < ky1; ky++ {
					row := cBase + (iy0+ky)*w + ix0
					for kx := 0; kx < kx1; kx++ {
						if ind[row+kx] == best {
							bestFlat = row + kx
							break find
						}
					}
				}
				gi[bestFlat] += g
				idx++
			}
		}
	}
	return p.gradIn
}
