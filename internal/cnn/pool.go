package cnn

import (
	"fmt"

	"zeiot/internal/tensor"
)

// MaxPool2D is a max pooling layer over (channels, height, width) input.
type MaxPool2D struct {
	Size, Stride int
	inShape      []int
	argmax       []int // flat input index of each output's max
	out, gradIn  *tensor.Tensor
}

var (
	_ Layer        = (*MaxPool2D)(nil)
	_ SpatialLayer = (*MaxPool2D)(nil)
)

// NewMaxPool2D returns a pooling layer with the given window size and
// stride. A stride of 0 defaults to the window size (non-overlapping).
func NewMaxPool2D(size, stride int) *MaxPool2D {
	if size <= 0 {
		panic("cnn: non-positive pool size")
	}
	if stride == 0 {
		stride = size
	}
	if stride < 0 {
		panic("cnn: negative pool stride")
	}
	return &MaxPool2D{Size: size, Stride: stride}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool%dx%d", p.Size, p.Size) }

// shadow implements shadowLayer.
func (p *MaxPool2D) shadow() Layer { return &MaxPool2D{Size: p.Size, Stride: p.Stride} }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("cnn: pool input shape %v, want 3-d", in))
	}
	oh := (in[1]-p.Size)/p.Stride + 1
	ow := (in[2]-p.Size)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: pool output collapses for input %v", in))
	}
	return []int{in[0], oh, ow}
}

// Receptive implements SpatialLayer.
func (p *MaxPool2D) Receptive(oy, ox int) (y0, y1, x0, x1 int) {
	y0 = oy * p.Stride
	x0 = ox * p.Stride
	return y0, y0 + p.Size - 1, x0, x0 + p.Size - 1
}

// Forward implements Layer. The returned tensor is owned by the layer until
// its next Forward call.
func (p *MaxPool2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	if in.Dims() != 3 {
		panic(fmt.Sprintf("cnn: pool input shape %v, want 3-d", in.Shape()))
	}
	p.inShape = append(p.inShape[:0], in.Shape()...)
	ch, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	// Inline OutShape: building the shape slice would allocate per call.
	oh := (h-p.Size)/p.Stride + 1
	ow := (w-p.Size)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: pool output collapses for input %v", in.Shape()))
	}
	p.out = tensor.Ensure(p.out, ch, oh, ow)
	ind := in.Data()
	outd := p.out.Data()
	if cap(p.argmax) < len(outd) {
		p.argmax = make([]int, len(outd))
	}
	p.argmax = p.argmax[:len(outd)]
	idx := 0
	for c := 0; c < ch; c++ {
		cBase := c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy * p.Stride
			ky1 := p.Size
			if iy0+ky1 > h {
				ky1 = h - iy0
			}
			for ox := 0; ox < ow; ox++ {
				ix0 := ox * p.Stride
				kx1 := p.Size
				if ix0+kx1 > w {
					kx1 = w - ix0
				}
				bestFlat := cBase + iy0*w + ix0
				best := ind[bestFlat]
				for ky := 0; ky < ky1; ky++ {
					row := cBase + (iy0+ky)*w + ix0
					for kx := 0; kx < kx1; kx++ {
						v := ind[row+kx]
						if v > best {
							best = v
							bestFlat = row + kx
						}
					}
				}
				outd[idx] = best
				p.argmax[idx] = bestFlat
				idx++
			}
		}
	}
	return p.out
}

// Backward implements Layer. The returned gradient tensor is owned by the
// layer until its next Backward call.
func (p *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(p.inShape) == 0 {
		panic("cnn: MaxPool2D backward before forward")
	}
	p.gradIn = tensor.Ensure(p.gradIn, p.inShape...)
	p.gradIn.Zero()
	gi := p.gradIn.Data()
	for i, g := range gradOut.Data() {
		gi[p.argmax[i]] += g
	}
	return p.gradIn
}
