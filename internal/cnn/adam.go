package cnn

import (
	"math"

	"zeiot/internal/tensor"
)

// Adam is the Adam optimizer (Kingma & Ba, 2015) with bias correction.
// Per-parameter first and second moment estimates live in the optimizer,
// keyed by parameter tensor, like SGD's velocities.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	step                  int
	m, v                  map[*tensor.Tensor]*tensor.Tensor
}

// NewAdam returns an Adam optimizer with the standard defaults
// (β1 = 0.9, β2 = 0.999, ε = 1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*tensor.Tensor]*tensor.Tensor),
		v: make(map[*tensor.Tensor]*tensor.Tensor),
	}
}

// Reset drops all moment estimates and the step counter, releasing the
// buffers for garbage collection when the trained networks are retired.
func (a *Adam) Reset() {
	a.step = 0
	clear(a.m)
	clear(a.v)
}

// Release drops the moment estimates of the given parameter tensors (see
// SGD.Release).
func (a *Adam) Release(params ...*tensor.Tensor) {
	for _, p := range params {
		delete(a.m, p)
		delete(a.v, p)
	}
}

// StateSize returns the number of parameter tensors the optimizer currently
// holds moment buffers for (exposed for leak tests).
func (a *Adam) StateSize() int { return len(a.m) }

// Step applies one Adam update with gradients averaged over batch.
func (a *Adam) Step(params, grads []*tensor.Tensor, batch int) {
	if len(params) != len(grads) {
		panic("cnn: params/grads length mismatch")
	}
	if batch <= 0 {
		batch = 1
	}
	a.step++
	inv := 1.0 / float64(batch)
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		g := grads[i]
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Shape()...)
		}
		v := a.v[p]
		pd, gd, md, vd := p.Data(), g.Data(), m.Data(), v.Data()
		for j := range pd {
			grad := gd[j] * inv
			md[j] = a.Beta1*md[j] + (1-a.Beta1)*grad
			vd[j] = a.Beta2*vd[j] + (1-a.Beta2)*grad*grad
			mHat := md[j] / c1
			vHat := vd[j] / c2
			pd[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// StepNetwork applies Step to every parameterized layer of n.
func (a *Adam) StepNetwork(n *Network, batch int) {
	for _, l := range n.layers {
		if pl, ok := l.(ParamLayer); ok {
			a.Step(pl.Params(), pl.Grads(), batch)
		}
	}
}
