package cnn

import (
	"fmt"
	"math"

	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// Dense is a fully connected layer over 1-D input. Weights are shaped
// (out, in).
type Dense struct {
	In, Out      int
	weight, bias *tensor.Tensor
	gradW, gradB *tensor.Tensor
	lastIn       *tensor.Tensor
	out, gradIn  *tensor.Tensor
	// Batched-path scratch (see batch.go): packed (B,Out) outputs and
	// (B,In) input gradients, the transposed weight/gradient blocks the
	// batched GEMMs consume, a cached 2-D view of gradW, and the packed
	// input reference kept for backwardBatch.
	outB, gradInB *tensor.Tensor
	wT, godT, gw2 *tensor.Tensor
	lastInB       *tensor.Tensor
	// wTok marks wT as in sync with weight; the batched engine clears it
	// after every optimizer step so the transpose is rebuilt at most once
	// per step instead of once per block.
	wTok bool
}

var (
	_ Layer      = (*Dense)(nil)
	_ ParamLayer = (*Dense)(nil)
)

// NewDense builds a fully connected layer with He-initialized weights drawn
// from stream.
func NewDense(in, out int, stream *rng.Stream) *Dense {
	if in <= 0 || out <= 0 {
		panic("cnn: invalid Dense geometry")
	}
	d := &Dense{
		In: in, Out: out,
		weight: tensor.New(out, in),
		bias:   tensor.New(out),
		gradW:  tensor.New(out, in),
		gradB:  tensor.New(out),
	}
	std := math.Sqrt(2.0 / float64(in))
	w := d.weight.Data()
	for i := range w {
		w[i] = stream.NormMeanStd(0, std)
	}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.In, d.Out) }

// Params implements ParamLayer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.weight, d.bias} }

// Grads implements ParamLayer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.gradW, d.gradB} }

// ZeroGrads implements ParamLayer.
func (d *Dense) ZeroGrads() {
	d.gradW.Zero()
	d.gradB.Zero()
}

// Weight returns the (out, in) weight matrix.
func (d *Dense) Weight() *tensor.Tensor { return d.weight }

// shadow implements shadowLayer.
func (d *Dense) shadow() Layer {
	return &Dense{
		In: d.In, Out: d.Out,
		weight: d.weight, bias: d.bias, gradW: d.gradW, gradB: d.gradB,
	}
}

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int {
	if len(in) != 1 || in[0] != d.In {
		panic(fmt.Sprintf("cnn: dense input shape %v, want (%d)", in, d.In))
	}
	return []int{d.Out}
}

// Forward implements Layer. The returned tensor is owned by the layer until
// its next Forward call; the input must stay unmodified until Backward runs.
func (d *Dense) Forward(in *tensor.Tensor) *tensor.Tensor {
	if in.Dims() != 1 || in.Dim(0) != d.In {
		panic(fmt.Sprintf("cnn: dense forward shape %v, want (%d)", in.Shape(), d.In))
	}
	d.lastIn = in
	d.out = tensor.Ensure(d.out, d.Out)
	od := d.out.Data()
	wd := d.weight.Data()
	bd := d.bias.Data()
	xd := in.Data()
	for o := 0; o < d.Out; o++ {
		sum := 0.0
		row := wd[o*d.In : (o+1)*d.In]
		x := xd[:len(row)]
		for p, w := range row {
			sum += w * x[p]
		}
		od[o] = sum + bd[o]
	}
	return d.out
}

// BackwardNoInputGrad implements inputGradSkipper: parameter gradients only,
// for use when d is the stack's first layer.
func (d *Dense) BackwardNoInputGrad(gradOut *tensor.Tensor) {
	d.backwardParams(gradOut)
}

// backwardParams accumulates the weight and bias gradients for gradOut.
func (d *Dense) backwardParams(gradOut *tensor.Tensor) {
	if d.lastIn == nil {
		panic("cnn: Dense backward before forward")
	}
	d.gradB.AddInPlace(gradOut)
	gw := d.gradW.Data()
	in := d.lastIn.Data()
	go2 := gradOut.Data()
	for o := 0; o < d.Out; o++ {
		g := go2[o]
		if g == 0 {
			continue
		}
		row := gw[o*d.In : (o+1)*d.In]
		x := in[:len(row)]
		for i := range row {
			row[i] += g * x[i]
		}
	}
}

// Backward implements Layer. The returned gradient tensor is owned by the
// layer until its next Backward call.
func (d *Dense) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	d.backwardParams(gradOut)
	go2 := gradOut.Data()
	d.gradIn = tensor.Ensure(d.gradIn, d.In)
	d.gradIn.Zero()
	gi := d.gradIn.Data()
	wd := d.weight.Data()
	for o := 0; o < d.Out; o++ {
		g := go2[o]
		if g == 0 {
			continue
		}
		row := wd[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			gi[i] += g * row[i]
		}
	}
	return d.gradIn
}
