package cnn

import (
	"fmt"
	"math"

	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// Conv2D is a 2-D convolution over (channels, height, width) input with
// stride and zero padding. Weights are shaped (outC, inC, kh, kw); the bias
// has one entry per output channel.
type Conv2D struct {
	InC, OutC    int
	KH, KW       int
	Stride       int
	Pad          int
	weight, bias *tensor.Tensor
	gradW, gradB *tensor.Tensor
	lastIn       *tensor.Tensor
	// kernelFor, when non-nil, returns the kernel replica to use at output
	// position (oy, ox) instead of the shared weight tensor. Package
	// microdeep installs this hook to emulate per-node weight replicas;
	// the matching gradient routing goes through gradFor.
	kernelFor func(oy, ox int) *tensor.Tensor
	gradFor   func(oy, ox int) *tensor.Tensor
}

var (
	_ Layer        = (*Conv2D)(nil)
	_ ParamLayer   = (*Conv2D)(nil)
	_ SpatialLayer = (*Conv2D)(nil)
)

// NewConv2D builds a convolution layer with He-initialized weights drawn
// from stream.
func NewConv2D(inC, outC, kh, kw, stride, pad int, stream *rng.Stream) *Conv2D {
	if inC <= 0 || outC <= 0 || kh <= 0 || kw <= 0 || stride <= 0 || pad < 0 {
		panic("cnn: invalid Conv2D geometry")
	}
	c := &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		weight: tensor.New(outC, inC, kh, kw),
		bias:   tensor.New(outC),
		gradW:  tensor.New(outC, inC, kh, kw),
		gradB:  tensor.New(outC),
	}
	std := math.Sqrt(2.0 / float64(inC*kh*kw))
	w := c.weight.Data()
	for i := range w {
		w[i] = stream.NormMeanStd(0, std)
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv%dx%d(%d->%d)", c.KH, c.KW, c.InC, c.OutC)
}

// Params implements ParamLayer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.weight, c.bias} }

// Grads implements ParamLayer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gradW, c.gradB} }

// ZeroGrads implements ParamLayer.
func (c *Conv2D) ZeroGrads() {
	c.gradW.Zero()
	c.gradB.Zero()
}

// Weight returns the shared kernel tensor (outC, inC, kh, kw).
func (c *Conv2D) Weight() *tensor.Tensor { return c.weight }

// Bias returns the bias tensor (outC).
func (c *Conv2D) Bias() *tensor.Tensor { return c.bias }

// SetReplicaHooks installs per-position kernel selection: kernelFor supplies
// the weight tensor used when computing output position (oy, ox) and gradFor
// the tensor its weight gradients accumulate into. Both tensors must have
// the layer's (outC, inC, kh, kw) shape. Passing nil, nil restores shared
// weights.
func (c *Conv2D) SetReplicaHooks(kernelFor, gradFor func(oy, ox int) *tensor.Tensor) {
	c.kernelFor = kernelFor
	c.gradFor = gradFor
}

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("cnn: conv input shape %v, want (%d,H,W)", in, c.InC))
	}
	oh := (in[1]+2*c.Pad-c.KH)/c.Stride + 1
	ow := (in[2]+2*c.Pad-c.KW)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: conv output collapses for input %v", in))
	}
	return []int{c.OutC, oh, ow}
}

// Receptive implements SpatialLayer.
func (c *Conv2D) Receptive(oy, ox int) (y0, y1, x0, x1 int) {
	y0 = oy*c.Stride - c.Pad
	x0 = ox*c.Stride - c.Pad
	return y0, y0 + c.KH - 1, x0, x0 + c.KW - 1
}

// Forward implements Layer.
func (c *Conv2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	c.lastIn = in.Clone()
	outShape := c.OutShape(in.Shape())
	oh, ow := outShape[1], outShape[2]
	h, w := in.Dim(1), in.Dim(2)
	out := tensor.New(c.OutC, oh, ow)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			kernel := c.weight
			if c.kernelFor != nil {
				kernel = c.kernelFor(oy, ox)
			}
			for oc := 0; oc < c.OutC; oc++ {
				sum := c.bias.At(oc)
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.KH; ky++ {
						iy := oy*c.Stride - c.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.KW; kx++ {
							ix := ox*c.Stride - c.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							sum += kernel.At(oc, ic, ky, kx) * in.At(ic, iy, ix)
						}
					}
				}
				out.Set(sum, oc, oy, ox)
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		panic("cnn: Conv2D backward before forward")
	}
	in := c.lastIn
	h, w := in.Dim(1), in.Dim(2)
	oh, ow := gradOut.Dim(1), gradOut.Dim(2)
	gradIn := tensor.New(c.InC, h, w)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			kernel := c.weight
			gw := c.gradW
			if c.kernelFor != nil {
				kernel = c.kernelFor(oy, ox)
				gw = c.gradFor(oy, ox)
			}
			for oc := 0; oc < c.OutC; oc++ {
				g := gradOut.At(oc, oy, ox)
				if g == 0 {
					continue
				}
				c.gradB.Data()[oc] += g
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.KH; ky++ {
						iy := oy*c.Stride - c.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.KW; kx++ {
							ix := ox*c.Stride - c.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							gw.Set(gw.At(oc, ic, ky, kx)+g*in.At(ic, iy, ix), oc, ic, ky, kx)
							gradIn.Set(gradIn.At(ic, iy, ix)+g*kernel.At(oc, ic, ky, kx), ic, iy, ix)
						}
					}
				}
			}
		}
	}
	return gradIn
}
