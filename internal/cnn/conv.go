package cnn

import (
	"fmt"
	"math"

	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// Conv2D is a 2-D convolution over (channels, height, width) input with
// stride and zero padding. Weights are shaped (outC, inC, kh, kw); the bias
// has one entry per output channel.
type Conv2D struct {
	InC, OutC    int
	KH, KW       int
	Stride       int
	Pad          int
	weight, bias *tensor.Tensor
	gradW, gradB *tensor.Tensor
	lastIn       *tensor.Tensor
	// out and gradIn are reusable scratch buffers (see the package comment
	// on buffer ownership); accBuf holds one running sum per output channel
	// for the input-load-hoisting forward fast path.
	out, gradIn *tensor.Tensor
	accBuf      []float64
	// nzOC/nzG collect the output channels with nonzero gradient at one
	// position so the backward inner loops visit only those (after max-pool
	// routing most channel gradients are zero).
	nzOC []int
	nzG  []float64
	// kernelFor, when non-nil, returns the kernel replica to use at output
	// position (oy, ox) instead of the shared weight tensor. Package
	// microdeep installs this hook to emulate per-node weight replicas;
	// the matching gradient routing goes through gradFor.
	kernelFor func(oy, ox int) *tensor.Tensor
	gradFor   func(oy, ox int) *tensor.Tensor
	// repK/repG, when set via SetReplicaTable, hold the same per-position
	// replicas as the hooks but as flat tables (position oy*repW+ox) that
	// the fast paths index directly instead of through an indirect call.
	repK, repG []*tensor.Tensor
	repW       int
	// Batched-path scratch (see batch.go): the packed (C,B,H,W) output and
	// input-gradient blocks, the im2col patch matrix, cached 2-D GEMM views
	// over the weight/output storage, and the packed input reference kept
	// for backwardBatch.
	outB, gradInB *tensor.Tensor
	patch         *tensor.Tensor
	w2, out2      *tensor.Tensor
	lastInB       *tensor.Tensor
}

var (
	_ Layer        = (*Conv2D)(nil)
	_ ParamLayer   = (*Conv2D)(nil)
	_ SpatialLayer = (*Conv2D)(nil)
)

// NewConv2D builds a convolution layer with He-initialized weights drawn
// from stream.
func NewConv2D(inC, outC, kh, kw, stride, pad int, stream *rng.Stream) *Conv2D {
	if inC <= 0 || outC <= 0 || kh <= 0 || kw <= 0 || stride <= 0 || pad < 0 {
		panic("cnn: invalid Conv2D geometry")
	}
	c := &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		weight: tensor.New(outC, inC, kh, kw),
		bias:   tensor.New(outC),
		gradW:  tensor.New(outC, inC, kh, kw),
		gradB:  tensor.New(outC),
	}
	std := math.Sqrt(2.0 / float64(inC*kh*kw))
	w := c.weight.Data()
	for i := range w {
		w[i] = stream.NormMeanStd(0, std)
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv%dx%d(%d->%d)", c.KH, c.KW, c.InC, c.OutC)
}

// Params implements ParamLayer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.weight, c.bias} }

// Grads implements ParamLayer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gradW, c.gradB} }

// ZeroGrads implements ParamLayer.
func (c *Conv2D) ZeroGrads() {
	c.gradW.Zero()
	c.gradB.Zero()
}

// Weight returns the shared kernel tensor (outC, inC, kh, kw).
func (c *Conv2D) Weight() *tensor.Tensor { return c.weight }

// Bias returns the bias tensor (outC).
func (c *Conv2D) Bias() *tensor.Tensor { return c.bias }

// SetReplicaHooks installs per-position kernel selection: kernelFor supplies
// the weight tensor used when computing output position (oy, ox) and gradFor
// the tensor its weight gradients accumulate into. Both tensors must have
// the layer's (outC, inC, kh, kw) shape. Passing nil, nil restores shared
// weights.
func (c *Conv2D) SetReplicaHooks(kernelFor, gradFor func(oy, ox int) *tensor.Tensor) {
	c.kernelFor = kernelFor
	c.gradFor = gradFor
	c.repK, c.repG, c.repW = nil, nil, 0
}

// SetReplicaTable installs per-position kernel replicas as direct tables:
// output position (oy, ox) uses kernels[oy*w+ox] and accumulates its weight
// gradients into grads[oy*w+ox]. It is equivalent to SetReplicaHooks with
// indexing closures, but lets the convolution fast paths look replicas up
// without an indirect call per output position.
func (c *Conv2D) SetReplicaTable(kernels, grads []*tensor.Tensor, w int) {
	if len(kernels) != len(grads) || w <= 0 {
		panic("cnn: invalid replica table")
	}
	c.repK, c.repG, c.repW = kernels, grads, w
	c.kernelFor = func(oy, ox int) *tensor.Tensor { return kernels[oy*w+ox] }
	c.gradFor = func(oy, ox int) *tensor.Tensor { return grads[oy*w+ox] }
}

// shadow implements shadowLayer: the clone shares parameters, gradients and
// replica hooks with c but owns its forward/backward scratch.
func (c *Conv2D) shadow() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, KH: c.KH, KW: c.KW, Stride: c.Stride, Pad: c.Pad,
		weight: c.weight, bias: c.bias, gradW: c.gradW, gradB: c.gradB,
		kernelFor: c.kernelFor, gradFor: c.gradFor,
		repK: c.repK, repG: c.repG, repW: c.repW,
	}
}

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("cnn: conv input shape %v, want (%d,H,W)", in, c.InC))
	}
	oh := (in[1]+2*c.Pad-c.KH)/c.Stride + 1
	ow := (in[2]+2*c.Pad-c.KW)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: conv output collapses for input %v", in))
	}
	return []int{c.OutC, oh, ow}
}

// Receptive implements SpatialLayer.
func (c *Conv2D) Receptive(oy, ox int) (y0, y1, x0, x1 int) {
	y0 = oy*c.Stride - c.Pad
	x0 = ox*c.Stride - c.Pad
	return y0, y0 + c.KH - 1, x0, x0 + c.KW - 1
}

// kernelWindow returns the in-range [k0, k1) slice of kernel offsets for an
// output coordinate o against input extent n (clipping the zero padding).
func kernelWindow(o, stride, pad, ksize, n int) (k0, k1 int) {
	k0 = pad - o*stride
	if k0 < 0 {
		k0 = 0
	}
	k1 = n - o*stride + pad
	if k1 > ksize {
		k1 = ksize
	}
	return k0, k1
}

// Forward implements Layer. The returned tensor and the cached input are
// owned by the layer until its next Forward call; the input must stay
// unmodified until Backward runs.
func (c *Conv2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	if in.Dims() != 3 || in.Dim(0) != c.InC {
		panic(fmt.Sprintf("cnn: conv input shape %v, want (%d,H,W)", in.Shape(), c.InC))
	}
	c.lastIn = in
	h, w := in.Dim(1), in.Dim(2)
	// Inline OutShape: building the shape slice would allocate per call.
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: conv output collapses for input %v", in.Shape()))
	}
	c.out = tensor.Ensure(c.out, c.OutC, oh, ow)
	if len(c.accBuf) < c.OutC {
		c.accBuf = make([]float64, c.OutC)
	}
	ind := in.Data()
	outd := c.out.Data()
	if c.KH == 3 && c.KW == 3 && c.Stride == 1 {
		c.forward3x3(ind, outd, h, w, oh, ow)
		return c.out
	}
	biasd := c.bias.Data()
	khkw := c.KH * c.KW
	kcs := c.InC * khkw // kernel stride per output channel
	for oy := 0; oy < oh; oy++ {
		ky0, ky1 := kernelWindow(oy, c.Stride, c.Pad, c.KH, h)
		iyBase := oy*c.Stride - c.Pad
		for ox := 0; ox < ow; ox++ {
			kernel := c.weight
			if c.kernelFor != nil {
				kernel = c.kernelFor(oy, ox)
			}
			kd := kernel.Data()
			kx0, kx1 := kernelWindow(ox, c.Stride, c.Pad, c.KW, w)
			ixBase := ox*c.Stride - c.Pad
			for oc := 0; oc < c.OutC; oc++ {
				sum := biasd[oc]
				kocBase := oc * kcs
				for ic := 0; ic < c.InC; ic++ {
					icBase := ic * h * w
					kicBase := kocBase + ic*khkw
					for ky := ky0; ky < ky1; ky++ {
						iOff := icBase + (iyBase+ky)*w + ixBase
						irow := ind[iOff+kx0 : iOff+kx1]
						krow := kd[kicBase+ky*c.KW+kx0 : kicBase+ky*c.KW+kx1]
						for i, kv := range krow {
							sum += kv * irow[i]
						}
					}
				}
				outd[(oc*oh+oy)*ow+ox] = sum
			}
		}
	}
	return c.out
}

// backward3x3 is the 3×3/stride-1 backward fast path. The outer
// (oy, ox, oc, ic) loop order of the general path is preserved exactly —
// gradB, gradW, and gradIn are shared accumulators, so the order of
// contributions across output positions is what fixes the float bits.
// Within one (oc, ic) block every touched gradW/gradIn element receives
// exactly one contribution, so the full window unrolls freely. A nil gid
// skips the input-gradient half entirely (first-layer backward); the
// single-input-channel interior additionally hoists the 9 input loads (and,
// with gid, the 9 running input-gradient sums: each element still receives
// the same additions in the same oc order, only the intermediate store
// round-trips disappear — float64 stores are exact, so the bits match).
func (c *Conv2D) backward3x3(ind, gid, god, gbd []float64, h, w, oh, ow int) {
	kcs := c.InC * 9
	chw := h * w
	if len(c.nzOC) < c.OutC {
		c.nzOC = make([]int, c.OutC)
		c.nzG = make([]float64, c.OutC)
	}
	for oy := 0; oy < oh; oy++ {
		ky0, ky1 := kernelWindow(oy, 1, c.Pad, 3, h)
		iyBase := oy - c.Pad
		fullRow := ky0 == 0 && ky1 == 3
		ohow := oh * ow
		oyBase := oy * ow
		for ox := 0; ox < ow; ox++ {
			// Skip positions whose output gradient is zero in every channel
			// (frequent after max-pool routing) before touching the replica
			// tables: zero-gradient channels contribute nothing below.
			goBase := oyBase + ox
			any := false
			for oc := 0; oc < c.OutC; oc++ {
				if god[oc*ohow+goBase] != 0 {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			kernel := c.weight
			gw := c.gradW
			if c.repK != nil {
				kernel = c.repK[oy*c.repW+ox]
				gw = c.repG[oy*c.repW+ox]
			} else if c.kernelFor != nil {
				kernel = c.kernelFor(oy, ox)
				gw = c.gradFor(oy, ox)
			}
			kd := kernel.Data()
			gwd := gw.Data()
			kx0, kx1 := kernelWindow(ox, 1, c.Pad, 3, w)
			ixBase := ox - c.Pad
			if fullRow && kx0 == 0 && kx1 == 3 {
				if c.InC == 1 {
					o := iyBase*w + ixBase
					i0 := ind[o : o+3]
					i1 := ind[o+w : o+w+3]
					i2 := ind[o+2*w : o+2*w+3]
					x0, x1, x2 := i0[0], i0[1], i0[2]
					y0, y1, y2 := i1[0], i1[1], i1[2]
					z0, z1, z2 := i2[0], i2[1], i2[2]
					if gid == nil {
						for oc := 0; oc < c.OutC; oc++ {
							g := god[(oc*oh+oy)*ow+ox]
							if g == 0 {
								continue
							}
							gbd[oc] += g
							gk := gwd[oc*9 : oc*9+9]
							gk[0] += g * x0
							gk[1] += g * x1
							gk[2] += g * x2
							gk[3] += g * y0
							gk[4] += g * y1
							gk[5] += g * y2
							gk[6] += g * z0
							gk[7] += g * z1
							gk[8] += g * z2
						}
						continue
					}
					g0 := gid[o : o+3]
					g1 := gid[o+w : o+w+3]
					g2 := gid[o+2*w : o+2*w+3]
					d0, d1, d2 := g0[0], g0[1], g0[2]
					e0, e1, e2 := g1[0], g1[1], g1[2]
					f0, f1, f2 := g2[0], g2[1], g2[2]
					for oc := 0; oc < c.OutC; oc++ {
						g := god[(oc*oh+oy)*ow+ox]
						if g == 0 {
							continue
						}
						gbd[oc] += g
						k := kd[oc*9 : oc*9+9]
						gk := gwd[oc*9 : oc*9+9]
						gk[0] += g * x0
						gk[1] += g * x1
						gk[2] += g * x2
						gk[3] += g * y0
						gk[4] += g * y1
						gk[5] += g * y2
						gk[6] += g * z0
						gk[7] += g * z1
						gk[8] += g * z2
						d0 += g * k[0]
						d1 += g * k[1]
						d2 += g * k[2]
						e0 += g * k[3]
						e1 += g * k[4]
						e2 += g * k[5]
						f0 += g * k[6]
						f1 += g * k[7]
						f2 += g * k[8]
					}
					g0[0], g0[1], g0[2] = d0, d1, d2
					g1[0], g1[1], g1[2] = e0, e1, e2
					g2[0], g2[1], g2[2] = f0, f1, f2
					continue
				}
				if gid == nil {
					// First-layer multi-channel interior: no input gradient,
					// and every gradW element receives exactly one
					// contribution per position, so input channels iterate
					// outermost and the 9 input loads are shared across all
					// output channels. gradB accumulates first, in oc order,
					// while collecting the nonzero channels so the inner loop
					// visits only those (in the same ascending-oc order the
					// skip-on-zero loop would).
					nz := 0
					for oc := 0; oc < c.OutC; oc++ {
						g := god[oc*ohow+goBase]
						if g != 0 {
							gbd[oc] += g
							c.nzOC[nz] = oc
							c.nzG[nz] = g
							nz++
						}
					}
					nzOC, nzG := c.nzOC[:nz], c.nzG[:nz]
					for ic := 0; ic < c.InC; ic++ {
						o := ic*chw + iyBase*w + ixBase
						x0, x1, x2 := ind[o], ind[o+1], ind[o+2]
						y0, y1, y2 := ind[o+w], ind[o+w+1], ind[o+w+2]
						z0, z1, z2 := ind[o+2*w], ind[o+2*w+1], ind[o+2*w+2]
						ko := ic * 9
						for j, oc := range nzOC {
							g := nzG[j]
							gk := gwd[oc*kcs+ko : oc*kcs+ko+9]
							gk[0] += g * x0
							gk[1] += g * x1
							gk[2] += g * x2
							gk[3] += g * y0
							gk[4] += g * y1
							gk[5] += g * y2
							gk[6] += g * z0
							gk[7] += g * z1
							gk[8] += g * z2
						}
					}
					continue
				}
				for oc := 0; oc < c.OutC; oc++ {
					g := god[(oc*oh+oy)*ow+ox]
					if g == 0 {
						continue
					}
					gbd[oc] += g
					kocBase := oc * kcs
					for ic := 0; ic < c.InC; ic++ {
						o := ic*chw + iyBase*w + ixBase
						kOff := kocBase + ic*9
						k := kd[kOff : kOff+9]
						gk := gwd[kOff : kOff+9]
						i0 := ind[o : o+3]
						i1 := ind[o+w : o+w+3]
						i2 := ind[o+2*w : o+2*w+3]
						gk[0] += g * i0[0]
						gk[1] += g * i0[1]
						gk[2] += g * i0[2]
						gk[3] += g * i1[0]
						gk[4] += g * i1[1]
						gk[5] += g * i1[2]
						gk[6] += g * i2[0]
						gk[7] += g * i2[1]
						gk[8] += g * i2[2]
						if gid == nil {
							continue
						}
						g0 := gid[o : o+3]
						g1 := gid[o+w : o+w+3]
						g2 := gid[o+2*w : o+2*w+3]
						g0[0] += g * k[0]
						g0[1] += g * k[1]
						g0[2] += g * k[2]
						g1[0] += g * k[3]
						g1[1] += g * k[4]
						g1[2] += g * k[5]
						g2[0] += g * k[6]
						g2[1] += g * k[7]
						g2[2] += g * k[8]
					}
				}
				continue
			}
			// Clipped window: unroll on the in-range kx count; the
			// gradW/gradIn update interleaving per kx matches the general
			// loop exactly.
			kxn := kx1 - kx0
			for oc := 0; oc < c.OutC; oc++ {
				g := god[(oc*oh+oy)*ow+ox]
				if g == 0 {
					continue
				}
				gbd[oc] += g
				kocBase := oc * kcs
				for ic := 0; ic < c.InC; ic++ {
					icBase := ic * chw
					kicBase := kocBase + ic*9
					for ky := ky0; ky < ky1; ky++ {
						iOff := icBase + (iyBase+ky)*w + ixBase + kx0
						kOff := kicBase + ky*3 + kx0
						if gid == nil {
							switch kxn {
							case 3:
								gwd[kOff] += g * ind[iOff]
								gwd[kOff+1] += g * ind[iOff+1]
								gwd[kOff+2] += g * ind[iOff+2]
							case 2:
								gwd[kOff] += g * ind[iOff]
								gwd[kOff+1] += g * ind[iOff+1]
							default:
								gwd[kOff] += g * ind[iOff]
							}
							continue
						}
						switch kxn {
						case 3:
							gwd[kOff] += g * ind[iOff]
							gid[iOff] += g * kd[kOff]
							gwd[kOff+1] += g * ind[iOff+1]
							gid[iOff+1] += g * kd[kOff+1]
							gwd[kOff+2] += g * ind[iOff+2]
							gid[iOff+2] += g * kd[kOff+2]
						case 2:
							gwd[kOff] += g * ind[iOff]
							gid[iOff] += g * kd[kOff]
							gwd[kOff+1] += g * ind[iOff+1]
							gid[iOff+1] += g * kd[kOff+1]
						default:
							gwd[kOff] += g * ind[iOff]
							gid[iOff] += g * kd[kOff]
						}
					}
				}
			}
		}
	}
}

// forward3x3 is the 3×3/stride-1 fast path. Per output value it performs
// the accumulation in exactly the general loop's order — bias first, then
// input channels in order, each contributing its kernel window row by row —
// so the result is bit-identical; only the loop structure changes. With
// shared weights the kernel row is hoisted into registers and streamed along
// the full-window output columns; replica mode and the padded borders use
// the unrolled per-position helper.
func (c *Conv2D) forward3x3(ind, outd []float64, h, w, oh, ow int) {
	biasd := c.bias.Data()
	kcs := c.InC * 9
	// Full 3×3 kx-window columns: ox-Pad in [0, w-3].
	xlo, xhi := c.Pad, ow-c.Pad
	if xhi > xlo+w-2 {
		xhi = xlo + w - 2
	}
	if xhi < xlo {
		xhi = xlo
	}
	chw := h * w
	var kd []float64
	if c.kernelFor == nil {
		kd = c.weight.Data()
	}
	for oy := 0; oy < oh; oy++ {
		ky0, ky1 := kernelWindow(oy, 1, c.Pad, 3, h)
		iyBase := oy - c.Pad
		fullRow := ky0 == 0 && ky1 == 3
		if fullRow && c.kernelFor == nil {
			// Shared weights: hoist each (oc, ic) kernel row and stream it
			// along the interior columns.
			for oc := 0; oc < c.OutC; oc++ {
				outRow := outd[(oc*oh+oy)*ow : (oc*oh+oy)*ow+ow]
				b := biasd[oc]
				for ox := xlo; ox < xhi; ox++ {
					outRow[ox] = b
				}
				kocBase := oc * kcs
				for ic := 0; ic < c.InC; ic++ {
					k := kd[kocBase+ic*9 : kocBase+ic*9+9]
					k0, k1, k2 := k[0], k[1], k[2]
					k3, k4, k5 := k[3], k[4], k[5]
					k6, k7, k8 := k[6], k[7], k[8]
					base := ic*chw + iyBase*w
					r0 := ind[base : base+w]
					r1 := ind[base+w : base+2*w]
					r2 := ind[base+2*w : base+3*w]
					for ox := xlo; ox < xhi; ox++ {
						ix := ox - c.Pad
						acc := outRow[ox]
						acc += k0 * r0[ix]
						acc += k1 * r0[ix+1]
						acc += k2 * r0[ix+2]
						acc += k3 * r1[ix]
						acc += k4 * r1[ix+1]
						acc += k5 * r1[ix+2]
						acc += k6 * r2[ix]
						acc += k7 * r2[ix+1]
						acc += k8 * r2[ix+2]
						outRow[ox] = acc
					}
				}
			}
			for ox := 0; ox < xlo; ox++ {
				c.forwardPoint3x3(ind, outd, h, w, oh, ow, oy, ox)
			}
			for ox := xhi; ox < ow; ox++ {
				c.forwardPoint3x3(ind, outd, h, w, oh, ow, oy, ox)
			}
			continue
		}
		if fullRow && c.kernelFor != nil && c.InC == 1 {
			// Replica mode, single input channel (the locally connected
			// layers MicroDeep trains): resolve the per-position kernel once
			// and hoist the 9 input loads across output channels. The
			// per-element accumulation order (bias, then the unrolled window)
			// matches forwardPoint3x3 exactly.
			base := iyBase * w
			r0 := ind[base : base+w]
			r1 := ind[base+w : base+2*w]
			r2 := ind[base+2*w : base+3*w]
			for ox := 0; ox < xlo; ox++ {
				c.forwardPoint3x3(ind, outd, h, w, oh, ow, oy, ox)
			}
			var krow []*tensor.Tensor
			if c.repK != nil {
				krow = c.repK[oy*c.repW : oy*c.repW+c.repW]
			}
			for ox := xlo; ox < xhi; ox++ {
				var kt *tensor.Tensor
				if krow != nil {
					kt = krow[ox]
				} else {
					kt = c.kernelFor(oy, ox)
				}
				kd := kt.Data()
				ix := ox - c.Pad
				x0, x1, x2 := r0[ix], r0[ix+1], r0[ix+2]
				y0, y1, y2 := r1[ix], r1[ix+1], r1[ix+2]
				z0, z1, z2 := r2[ix], r2[ix+1], r2[ix+2]
				for oc := 0; oc < c.OutC; oc++ {
					k := kd[oc*9 : oc*9+9]
					sum := biasd[oc]
					sum += k[0] * x0
					sum += k[1] * x1
					sum += k[2] * x2
					sum += k[3] * y0
					sum += k[4] * y1
					sum += k[5] * y2
					sum += k[6] * z0
					sum += k[7] * z1
					sum += k[8] * z2
					outd[(oc*oh+oy)*ow+ox] = sum
				}
			}
			for ox := xhi; ox < ow; ox++ {
				c.forwardPoint3x3(ind, outd, h, w, oh, ow, oy, ox)
			}
			continue
		}
		if fullRow && c.kernelFor != nil {
			// Replica mode, multi-channel interior: iterate input channels
			// outermost so the 9 input loads are shared across all output
			// channels, with one running sum per output channel in accBuf.
			// Each output element still accumulates bias first, then its
			// window terms in (ic, ky, kx) ascending order — the exact
			// sequence of forwardPoint3x3 — so the bits are identical.
			acc := c.accBuf[:c.OutC]
			for ox := 0; ox < xlo; ox++ {
				c.forwardPoint3x3(ind, outd, h, w, oh, ow, oy, ox)
			}
			oyBase := oy * ow
			var krow []*tensor.Tensor
			if c.repK != nil {
				krow = c.repK[oy*c.repW : oy*c.repW+c.repW]
			}
			for ox := xlo; ox < xhi; ox++ {
				var kt *tensor.Tensor
				if krow != nil {
					kt = krow[ox]
				} else {
					kt = c.kernelFor(oy, ox)
				}
				kd := kt.Data()
				ix := ox - c.Pad
				copy(acc, biasd[:c.OutC])
				for ic := 0; ic < c.InC; ic++ {
					o := ic*chw + iyBase*w + ix
					x0, x1, x2 := ind[o], ind[o+1], ind[o+2]
					y0, y1, y2 := ind[o+w], ind[o+w+1], ind[o+w+2]
					z0, z1, z2 := ind[o+2*w], ind[o+2*w+1], ind[o+2*w+2]
					ko := ic * 9
					for oc := range acc {
						k := kd[oc*kcs+ko : oc*kcs+ko+9]
						a := acc[oc]
						a += k[0] * x0
						a += k[1] * x1
						a += k[2] * x2
						a += k[3] * y0
						a += k[4] * y1
						a += k[5] * y2
						a += k[6] * z0
						a += k[7] * z1
						a += k[8] * z2
						acc[oc] = a
					}
				}
				for oc, a := range acc {
					outd[oc*oh*ow+oyBase+ox] = a
				}
			}
			for ox := xhi; ox < ow; ox++ {
				c.forwardPoint3x3(ind, outd, h, w, oh, ow, oy, ox)
			}
			continue
		}
		// Clipped ky rows (top/bottom padding): the interior columns still
		// have a full kx window, so stream (shared weights) or hoist input
		// loads (replica mode) over the in-range kernel rows; only the
		// corner/edge columns fall back to the per-position helper. Per
		// element the terms still accumulate in (ic, ky, kx) ascending
		// order.
		if c.kernelFor == nil {
			for oc := 0; oc < c.OutC; oc++ {
				outRow := outd[(oc*oh+oy)*ow : (oc*oh+oy)*ow+ow]
				b := biasd[oc]
				for ox := xlo; ox < xhi; ox++ {
					outRow[ox] = b
				}
				kocBase := oc * kcs
				for ic := 0; ic < c.InC; ic++ {
					for ky := ky0; ky < ky1; ky++ {
						kOff := kocBase + ic*9 + ky*3
						k0, k1, k2 := kd[kOff], kd[kOff+1], kd[kOff+2]
						rBase := ic*chw + (iyBase+ky)*w
						r := ind[rBase : rBase+w]
						for ox := xlo; ox < xhi; ox++ {
							ix := ox - c.Pad
							a := outRow[ox]
							a += k0 * r[ix]
							a += k1 * r[ix+1]
							a += k2 * r[ix+2]
							outRow[ox] = a
						}
					}
				}
			}
			for ox := 0; ox < xlo; ox++ {
				c.forwardPoint3x3(ind, outd, h, w, oh, ow, oy, ox)
			}
			for ox := xhi; ox < ow; ox++ {
				c.forwardPoint3x3(ind, outd, h, w, oh, ow, oy, ox)
			}
			continue
		}
		acc := c.accBuf[:c.OutC]
		for ox := 0; ox < xlo; ox++ {
			c.forwardPoint3x3(ind, outd, h, w, oh, ow, oy, ox)
		}
		oyBase := oy * ow
		var krow []*tensor.Tensor
		if c.repK != nil {
			krow = c.repK[oy*c.repW : oy*c.repW+c.repW]
		}
		for ox := xlo; ox < xhi; ox++ {
			var kt *tensor.Tensor
			if krow != nil {
				kt = krow[ox]
			} else {
				kt = c.kernelFor(oy, ox)
			}
			kdr := kt.Data()
			ix := ox - c.Pad
			copy(acc, biasd[:c.OutC])
			for ic := 0; ic < c.InC; ic++ {
				for ky := ky0; ky < ky1; ky++ {
					o := ic*chw + (iyBase+ky)*w + ix
					v0, v1, v2 := ind[o], ind[o+1], ind[o+2]
					kk := ic*9 + ky*3
					for oc := range acc {
						kb := oc*kcs + kk
						a := acc[oc]
						a += kdr[kb] * v0
						a += kdr[kb+1] * v1
						a += kdr[kb+2] * v2
						acc[oc] = a
					}
				}
			}
			for oc, a := range acc {
				outd[oc*oh*ow+oyBase+ox] = a
			}
		}
		for ox := xhi; ox < ow; ox++ {
			c.forwardPoint3x3(ind, outd, h, w, oh, ow, oy, ox)
		}
	}
}

// forwardPoint3x3 computes all output channels of one 3×3/stride-1 output
// position, clipping the kernel window against the padding and resolving the
// per-position replica kernel when installed. The window is unrolled when
// fully in range.
func (c *Conv2D) forwardPoint3x3(ind, outd []float64, h, w, oh, ow, oy, ox int) {
	kernel := c.weight
	if c.repK != nil {
		kernel = c.repK[oy*c.repW+ox]
	} else if c.kernelFor != nil {
		kernel = c.kernelFor(oy, ox)
	}
	kd := kernel.Data()
	biasd := c.bias.Data()
	kcs := c.InC * 9
	ky0, ky1 := kernelWindow(oy, 1, c.Pad, 3, h)
	kx0, kx1 := kernelWindow(ox, 1, c.Pad, 3, w)
	iyBase := oy - c.Pad
	ixBase := ox - c.Pad
	chw := h * w
	if ky0 == 0 && ky1 == 3 && kx0 == 0 && kx1 == 3 {
		for oc := 0; oc < c.OutC; oc++ {
			sum := biasd[oc]
			kocBase := oc * kcs
			for ic := 0; ic < c.InC; ic++ {
				k := kd[kocBase+ic*9 : kocBase+ic*9+9]
				o := ic*chw + iyBase*w + ixBase
				r0 := ind[o : o+3]
				r1 := ind[o+w : o+w+3]
				r2 := ind[o+2*w : o+2*w+3]
				sum += k[0] * r0[0]
				sum += k[1] * r0[1]
				sum += k[2] * r0[2]
				sum += k[3] * r1[0]
				sum += k[4] * r1[1]
				sum += k[5] * r1[2]
				sum += k[6] * r2[0]
				sum += k[7] * r2[1]
				sum += k[8] * r2[2]
			}
			outd[(oc*oh+oy)*ow+ox] = sum
		}
		return
	}
	// Clipped window: unroll on the in-range kx count instead of building a
	// subslice pair per kernel row. Terms still accumulate in ascending kx
	// order.
	kxn := kx1 - kx0
	for oc := 0; oc < c.OutC; oc++ {
		sum := biasd[oc]
		kocBase := oc * kcs
		for ic := 0; ic < c.InC; ic++ {
			icBase := ic * chw
			kicBase := kocBase + ic*9
			for ky := ky0; ky < ky1; ky++ {
				iOff := icBase + (iyBase+ky)*w + ixBase + kx0
				kOff := kicBase + ky*3 + kx0
				switch kxn {
				case 3:
					sum += kd[kOff] * ind[iOff]
					sum += kd[kOff+1] * ind[iOff+1]
					sum += kd[kOff+2] * ind[iOff+2]
				case 2:
					sum += kd[kOff] * ind[iOff]
					sum += kd[kOff+1] * ind[iOff+1]
				default:
					sum += kd[kOff] * ind[iOff]
				}
			}
		}
		outd[(oc*oh+oy)*ow+ox] = sum
	}
}

// Backward implements Layer. The returned gradient tensor is owned by the
// layer until its next Backward call.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		panic("cnn: Conv2D backward before forward")
	}
	h, w := c.lastIn.Dim(1), c.lastIn.Dim(2)
	c.gradIn = tensor.Ensure(c.gradIn, c.InC, h, w)
	c.gradIn.Zero()
	c.backwardInto(c.gradIn.Data(), gradOut)
	return c.gradIn
}

// BackwardNoInputGrad implements inputGradSkipper: it accumulates the
// parameter gradients of Backward while skipping the input-gradient half,
// which the stack's first layer never needs.
func (c *Conv2D) BackwardNoInputGrad(gradOut *tensor.Tensor) {
	if c.lastIn == nil {
		panic("cnn: Conv2D backward before forward")
	}
	c.backwardInto(nil, gradOut)
}

// backwardInto accumulates parameter gradients for gradOut and, when gid is
// non-nil, the input gradient into gid (which must be zeroed by the caller).
func (c *Conv2D) backwardInto(gid []float64, gradOut *tensor.Tensor) {
	in := c.lastIn
	h, w := in.Dim(1), in.Dim(2)
	oh, ow := gradOut.Dim(1), gradOut.Dim(2)
	ind := in.Data()
	god := gradOut.Data()
	gbd := c.gradB.Data()
	if c.KH == 3 && c.KW == 3 && c.Stride == 1 {
		c.backward3x3(ind, gid, god, gbd, h, w, oh, ow)
		return
	}
	khkw := c.KH * c.KW
	kcs := c.InC * khkw
	for oy := 0; oy < oh; oy++ {
		ky0, ky1 := kernelWindow(oy, c.Stride, c.Pad, c.KH, h)
		iyBase := oy*c.Stride - c.Pad
		for ox := 0; ox < ow; ox++ {
			kernel := c.weight
			gw := c.gradW
			if c.kernelFor != nil {
				kernel = c.kernelFor(oy, ox)
				gw = c.gradFor(oy, ox)
			}
			kd := kernel.Data()
			gwd := gw.Data()
			kx0, kx1 := kernelWindow(ox, c.Stride, c.Pad, c.KW, w)
			ixBase := ox*c.Stride - c.Pad
			for oc := 0; oc < c.OutC; oc++ {
				g := god[(oc*oh+oy)*ow+ox]
				if g == 0 {
					continue
				}
				gbd[oc] += g
				kocBase := oc * kcs
				for ic := 0; ic < c.InC; ic++ {
					icBase := ic * h * w
					kicBase := kocBase + ic*khkw
					for ky := ky0; ky < ky1; ky++ {
						iOff := icBase + (iyBase+ky)*w + ixBase
						kOff := kicBase + ky*c.KW
						if gid == nil {
							for kx := kx0; kx < kx1; kx++ {
								gwd[kOff+kx] += g * ind[iOff+kx]
							}
							continue
						}
						for kx := kx0; kx < kx1; kx++ {
							gwd[kOff+kx] += g * ind[iOff+kx]
							gid[iOff+kx] += g * kd[kOff+kx]
						}
					}
				}
			}
		}
	}
}
