package cnn

import (
	"fmt"
	"math"

	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// Conv2D is a 2-D convolution over (channels, height, width) input with
// stride and zero padding. Weights are shaped (outC, inC, kh, kw); the bias
// has one entry per output channel.
type Conv2D struct {
	InC, OutC    int
	KH, KW       int
	Stride       int
	Pad          int
	weight, bias *tensor.Tensor
	gradW, gradB *tensor.Tensor
	lastIn       *tensor.Tensor
	// out and gradIn are reusable scratch buffers (see the package comment
	// on buffer ownership).
	out, gradIn *tensor.Tensor
	// kernelFor, when non-nil, returns the kernel replica to use at output
	// position (oy, ox) instead of the shared weight tensor. Package
	// microdeep installs this hook to emulate per-node weight replicas;
	// the matching gradient routing goes through gradFor.
	kernelFor func(oy, ox int) *tensor.Tensor
	gradFor   func(oy, ox int) *tensor.Tensor
}

var (
	_ Layer        = (*Conv2D)(nil)
	_ ParamLayer   = (*Conv2D)(nil)
	_ SpatialLayer = (*Conv2D)(nil)
)

// NewConv2D builds a convolution layer with He-initialized weights drawn
// from stream.
func NewConv2D(inC, outC, kh, kw, stride, pad int, stream *rng.Stream) *Conv2D {
	if inC <= 0 || outC <= 0 || kh <= 0 || kw <= 0 || stride <= 0 || pad < 0 {
		panic("cnn: invalid Conv2D geometry")
	}
	c := &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		weight: tensor.New(outC, inC, kh, kw),
		bias:   tensor.New(outC),
		gradW:  tensor.New(outC, inC, kh, kw),
		gradB:  tensor.New(outC),
	}
	std := math.Sqrt(2.0 / float64(inC*kh*kw))
	w := c.weight.Data()
	for i := range w {
		w[i] = stream.NormMeanStd(0, std)
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv%dx%d(%d->%d)", c.KH, c.KW, c.InC, c.OutC)
}

// Params implements ParamLayer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.weight, c.bias} }

// Grads implements ParamLayer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gradW, c.gradB} }

// ZeroGrads implements ParamLayer.
func (c *Conv2D) ZeroGrads() {
	c.gradW.Zero()
	c.gradB.Zero()
}

// Weight returns the shared kernel tensor (outC, inC, kh, kw).
func (c *Conv2D) Weight() *tensor.Tensor { return c.weight }

// Bias returns the bias tensor (outC).
func (c *Conv2D) Bias() *tensor.Tensor { return c.bias }

// SetReplicaHooks installs per-position kernel selection: kernelFor supplies
// the weight tensor used when computing output position (oy, ox) and gradFor
// the tensor its weight gradients accumulate into. Both tensors must have
// the layer's (outC, inC, kh, kw) shape. Passing nil, nil restores shared
// weights.
func (c *Conv2D) SetReplicaHooks(kernelFor, gradFor func(oy, ox int) *tensor.Tensor) {
	c.kernelFor = kernelFor
	c.gradFor = gradFor
}

// shadow implements shadowLayer: the clone shares parameters, gradients and
// replica hooks with c but owns its forward/backward scratch.
func (c *Conv2D) shadow() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, KH: c.KH, KW: c.KW, Stride: c.Stride, Pad: c.Pad,
		weight: c.weight, bias: c.bias, gradW: c.gradW, gradB: c.gradB,
		kernelFor: c.kernelFor, gradFor: c.gradFor,
	}
}

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	if len(in) != 3 || in[0] != c.InC {
		panic(fmt.Sprintf("cnn: conv input shape %v, want (%d,H,W)", in, c.InC))
	}
	oh := (in[1]+2*c.Pad-c.KH)/c.Stride + 1
	ow := (in[2]+2*c.Pad-c.KW)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: conv output collapses for input %v", in))
	}
	return []int{c.OutC, oh, ow}
}

// Receptive implements SpatialLayer.
func (c *Conv2D) Receptive(oy, ox int) (y0, y1, x0, x1 int) {
	y0 = oy*c.Stride - c.Pad
	x0 = ox*c.Stride - c.Pad
	return y0, y0 + c.KH - 1, x0, x0 + c.KW - 1
}

// kernelWindow returns the in-range [k0, k1) slice of kernel offsets for an
// output coordinate o against input extent n (clipping the zero padding).
func kernelWindow(o, stride, pad, ksize, n int) (k0, k1 int) {
	k0 = pad - o*stride
	if k0 < 0 {
		k0 = 0
	}
	k1 = n - o*stride + pad
	if k1 > ksize {
		k1 = ksize
	}
	return k0, k1
}

// Forward implements Layer. The returned tensor and the cached input are
// owned by the layer until its next Forward call; the input must stay
// unmodified until Backward runs.
func (c *Conv2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	if in.Dims() != 3 || in.Dim(0) != c.InC {
		panic(fmt.Sprintf("cnn: conv input shape %v, want (%d,H,W)", in.Shape(), c.InC))
	}
	c.lastIn = in
	h, w := in.Dim(1), in.Dim(2)
	// Inline OutShape: building the shape slice would allocate per call.
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: conv output collapses for input %v", in.Shape()))
	}
	c.out = tensor.Ensure(c.out, c.OutC, oh, ow)
	ind := in.Data()
	outd := c.out.Data()
	biasd := c.bias.Data()
	khkw := c.KH * c.KW
	kcs := c.InC * khkw // kernel stride per output channel
	for oy := 0; oy < oh; oy++ {
		ky0, ky1 := kernelWindow(oy, c.Stride, c.Pad, c.KH, h)
		iyBase := oy*c.Stride - c.Pad
		for ox := 0; ox < ow; ox++ {
			kernel := c.weight
			if c.kernelFor != nil {
				kernel = c.kernelFor(oy, ox)
			}
			kd := kernel.Data()
			kx0, kx1 := kernelWindow(ox, c.Stride, c.Pad, c.KW, w)
			ixBase := ox*c.Stride - c.Pad
			for oc := 0; oc < c.OutC; oc++ {
				sum := biasd[oc]
				kocBase := oc * kcs
				for ic := 0; ic < c.InC; ic++ {
					icBase := ic * h * w
					kicBase := kocBase + ic*khkw
					for ky := ky0; ky < ky1; ky++ {
						iOff := icBase + (iyBase+ky)*w + ixBase
						irow := ind[iOff+kx0 : iOff+kx1]
						krow := kd[kicBase+ky*c.KW+kx0 : kicBase+ky*c.KW+kx1]
						for i, kv := range krow {
							sum += kv * irow[i]
						}
					}
				}
				outd[(oc*oh+oy)*ow+ox] = sum
			}
		}
	}
	return c.out
}

// Backward implements Layer. The returned gradient tensor is owned by the
// layer until its next Backward call.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		panic("cnn: Conv2D backward before forward")
	}
	in := c.lastIn
	h, w := in.Dim(1), in.Dim(2)
	oh, ow := gradOut.Dim(1), gradOut.Dim(2)
	c.gradIn = tensor.Ensure(c.gradIn, c.InC, h, w)
	c.gradIn.Zero()
	ind := in.Data()
	gid := c.gradIn.Data()
	god := gradOut.Data()
	gbd := c.gradB.Data()
	khkw := c.KH * c.KW
	kcs := c.InC * khkw
	for oy := 0; oy < oh; oy++ {
		ky0, ky1 := kernelWindow(oy, c.Stride, c.Pad, c.KH, h)
		iyBase := oy*c.Stride - c.Pad
		for ox := 0; ox < ow; ox++ {
			kernel := c.weight
			gw := c.gradW
			if c.kernelFor != nil {
				kernel = c.kernelFor(oy, ox)
				gw = c.gradFor(oy, ox)
			}
			kd := kernel.Data()
			gwd := gw.Data()
			kx0, kx1 := kernelWindow(ox, c.Stride, c.Pad, c.KW, w)
			ixBase := ox*c.Stride - c.Pad
			for oc := 0; oc < c.OutC; oc++ {
				g := god[(oc*oh+oy)*ow+ox]
				if g == 0 {
					continue
				}
				gbd[oc] += g
				kocBase := oc * kcs
				for ic := 0; ic < c.InC; ic++ {
					icBase := ic * h * w
					kicBase := kocBase + ic*khkw
					for ky := ky0; ky < ky1; ky++ {
						iOff := icBase + (iyBase+ky)*w + ixBase
						kOff := kicBase + ky*c.KW
						for kx := kx0; kx < kx1; kx++ {
							gwd[kOff+kx] += g * ind[iOff+kx]
							gid[iOff+kx] += g * kd[kOff+kx]
						}
					}
				}
			}
		}
	}
	return c.gradIn
}
