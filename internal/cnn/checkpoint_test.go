package cnn

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"zeiot/internal/rng"
)

// checkpointSamples builds a deterministic dataset whose size (42) is not a
// multiple of the batch sizes used below, so the epoch-end partial batch is
// always exercised.
func checkpointSamples(seed uint64, n int) []Sample {
	s := rng.New(seed)
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{Input: randomInput(s, 1, 6, 6), Label: i % 3}
	}
	return out
}

// TestSaveTrainingRoundTripSGD is the satellite-1 regression pin: training k
// epochs, checkpointing via SaveTraining, and training n more epochs on the
// loaded copy must be bit-identical to training k+n epochs uninterrupted.
// The pre-fix Save dropped the SGD velocity and the stream position, so the
// resumed run diverged on its first momentum update and first reshuffle.
func TestSaveTrainingRoundTripSGD(t *testing.T) {
	samples := checkpointSamples(11, 42)

	ref := buildTinyNet(7)
	refOpt := NewSGD(0.05, 0.9)
	refStream := rng.New(21).Split("fit")
	ref.Fit(samples, 2, 8, refOpt, refStream)

	var buf bytes.Buffer
	if err := ref.SaveTraining(&buf, refOpt, refStream); err != nil {
		t.Fatal(err)
	}

	ref.Fit(samples, 3, 8, refOpt, refStream) // uninterrupted continuation

	net2, opt2, streams, err := LoadTraining(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sgd2, ok := opt2.(*SGD)
	if !ok {
		t.Fatalf("LoadTraining returned optimizer %T, want *SGD", opt2)
	}
	if sgd2.LR != refOpt.LR || sgd2.Momentum != refOpt.Momentum {
		t.Fatalf("restored SGD hyperparameters %v/%v, want %v/%v", sgd2.LR, sgd2.Momentum, refOpt.LR, refOpt.Momentum)
	}
	if len(streams) != 1 {
		t.Fatalf("LoadTraining returned %d streams, want 1", len(streams))
	}
	net2.Fit(samples, 3, 8, sgd2, streams[0]) // resumed continuation

	requireSameParams(t, ref, net2, "SGD resume after SaveTraining")
}

// TestSaveTrainingRoundTripAdam pins the same invariant for Adam, whose
// checkpoint additionally carries the step counter (bias correction) and
// both moment maps. A dropped step count would inflate the bias-corrected
// learning rate on the first resumed update.
func TestSaveTrainingRoundTripAdam(t *testing.T) {
	samples := checkpointSamples(13, 42)

	trainEpochs := func(n *Network, opt Optimizer, stream *rng.Stream, epochs, batch int) {
		tr := NewTrainer(n, opt, stream, samples, epochs, batch, 1)
		for !tr.Done() {
			tr.Step(1)
		}
	}

	ref := buildTinyNet(9)
	refOpt := NewAdam(0.002)
	refStream := rng.New(23).Split("fit")
	trainEpochs(ref, refOpt, refStream, 2, 8)

	var buf bytes.Buffer
	if err := ref.SaveTraining(&buf, refOpt, refStream); err != nil {
		t.Fatal(err)
	}
	stepAtSave := refOpt.StepCount()
	trainEpochs(ref, refOpt, refStream, 2, 8)

	net2, opt2, streams, err := LoadTraining(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	adam2, ok := opt2.(*Adam)
	if !ok {
		t.Fatalf("LoadTraining returned optimizer %T, want *Adam", opt2)
	}
	if stepAtSave == 0 {
		t.Fatal("reference Adam had no steps at save time; test is vacuous")
	}
	if adam2.StepCount() != stepAtSave {
		t.Fatalf("restored Adam step count %d, saved at %d", adam2.StepCount(), stepAtSave)
	}
	trainEpochs(net2, adam2, streams[0], 2, 8)

	requireSameParams(t, ref, net2, "Adam resume after SaveTraining")
}

// TestTrainerMatchesFit checks the resumable trainer IS Fit: irregular Step
// chunk sizes, serial or parallel, must land on the identical weights and
// final epoch loss as one FitParallel call.
func TestTrainerMatchesFit(t *testing.T) {
	samples := checkpointSamples(17, 42)
	const epochs, batch = 3, 8

	ref := buildTinyNet(5)
	refLoss := ref.FitParallel(samples, epochs, batch, 4, NewSGD(0.05, 0.9), rng.New(31).Split("fit"))

	for _, workers := range []int{1, 4} {
		net := buildTinyNet(5)
		tr := NewTrainer(net, NewSGD(0.05, 0.9), rng.New(31).Split("fit"), samples, epochs, batch, workers)
		chunks := []int{1, 3, 2, 5, 1, 7} // deliberately misaligned with epoch length (6 batches)
		for i := 0; !tr.Done(); i++ {
			tr.Step(chunks[i%len(chunks)])
		}
		requireSameParams(t, ref, net, "trainer vs Fit")
		if tr.LastLoss() != refLoss {
			t.Errorf("workers=%d: trainer final loss %v, Fit returned %v", workers, tr.LastLoss(), refLoss)
		}
		if tr.EpochsCompleted() != epochs {
			t.Errorf("workers=%d: EpochsCompleted() = %d, want %d", workers, tr.EpochsCompleted(), epochs)
		}
		if want := epochs * 6; tr.BatchesRun() != want {
			t.Errorf("workers=%d: BatchesRun() = %d, want %d", workers, tr.BatchesRun(), want)
		}
	}
}

// TestTrainerSaveResumeBitIdentity kills a trainer mid-epoch at a batch
// boundary, resumes from the checkpoint — with a different worker count, as
// a crashed node restarting well may choose — and requires the finished
// weights, loss, and batch accounting to match the uninterrupted run.
func TestTrainerSaveResumeBitIdentity(t *testing.T) {
	samples := checkpointSamples(19, 42)
	const epochs, batch = 3, 8

	ref := buildTinyNet(3)
	refTr := NewTrainer(ref, NewSGD(0.05, 0.9), rng.New(37).Split("fit"), samples, epochs, batch, 1)
	for !refTr.Done() {
		refTr.Step(4)
	}

	for _, killAfter := range []int{1, 4, 6, 7, 11} { // mid-epoch, at epoch end, one into next epoch…
		net := buildTinyNet(3)
		tr := NewTrainer(net, NewSGD(0.05, 0.9), rng.New(37).Split("fit"), samples, epochs, batch, 4)
		for tr.BatchesRun() < killAfter && !tr.Done() {
			tr.Step(1)
		}
		var ck bytes.Buffer
		if err := tr.Save(&ck); err != nil {
			t.Fatalf("killAfter=%d: Save: %v", killAfter, err)
		}

		resumed, err := ResumeTrainer(bytes.NewReader(ck.Bytes()), samples, 1)
		if err != nil {
			t.Fatalf("killAfter=%d: ResumeTrainer: %v", killAfter, err)
		}
		if resumed.BatchesRun() != killAfter {
			t.Fatalf("killAfter=%d: resumed BatchesRun() = %d", killAfter, resumed.BatchesRun())
		}
		for !resumed.Done() {
			resumed.Step(3)
		}

		requireSameParams(t, ref, resumed.Net(), "resumed trainer")
		if resumed.LastLoss() != refTr.LastLoss() {
			t.Errorf("killAfter=%d: resumed loss %v, uninterrupted %v", killAfter, resumed.LastLoss(), refTr.LastLoss())
		}
		if resumed.BatchesRun() != refTr.BatchesRun() {
			t.Errorf("killAfter=%d: resumed BatchesRun() = %d, uninterrupted %d", killAfter, resumed.BatchesRun(), refTr.BatchesRun())
		}
	}
}

// TestResumeTrainerValidation covers the rejection paths: garbage bytes and
// a dataset whose size disagrees with the checkpoint.
func TestResumeTrainerValidation(t *testing.T) {
	if _, err := ResumeTrainer(bytes.NewReader([]byte("junk")), nil, 1); err == nil {
		t.Error("ResumeTrainer accepted garbage bytes")
	}

	samples := checkpointSamples(23, 42)
	net := buildTinyNet(2)
	tr := NewTrainer(net, NewSGD(0.05, 0.9), rng.New(41).Split("fit"), samples, 2, 8, 1)
	tr.Step(2)
	var ck bytes.Buffer
	if err := tr.Save(&ck); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeTrainer(bytes.NewReader(ck.Bytes()), samples[:30], 1); err == nil {
		t.Error("ResumeTrainer accepted a dataset of the wrong size")
	} else if !strings.Contains(err.Error(), "samples") {
		t.Errorf("wrong-size error %q does not mention samples", err)
	}
}

// mutateBlob round-trips a saved network through the wire struct, applies
// the mutation, and re-encodes — producing a structurally valid gob whose
// geometry lies about its weights.
func mutateBlob(t *testing.T, net *Network, mutate func(*netBlob)) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	n, blob, err := decodeBlob(bytes.NewReader(buf.Bytes()))
	if err != nil || n == nil {
		t.Fatalf("decoding own blob: %v", err)
	}
	mutate(blob)
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadRejectsTamperedGeometry is the satellite-2 pin: a blob whose
// geometry fields disagree with its saved weights must be rejected with a
// descriptive error, not silently reinterpreted (or panicked on). The
// pre-fix loader validated only the flat parameter size, so swapping KH/KW
// on a non-square kernel loaded "successfully" as a different network.
func TestLoadRejectsTamperedGeometry(t *testing.T) {
	s := rng.New(43)
	net := NewNetwork([]int{1, 6, 8},
		NewConv2D(1, 2, 3, 5, 1, 1, s.Split("conv")), // non-square kernel: KH/KW swap preserves flat size
		NewReLU(),
		NewFlatten(),
		NewDense(2*6*6, 4, s.Split("d")), // 72×4: In/Out swap preserves flat size
	)

	cases := []struct {
		name   string
		mutate func(*netBlob)
		want   string
	}{
		{"conv KH/KW swapped", func(b *netBlob) {
			b.Layers[0].KH, b.Layers[0].KW = b.Layers[0].KW, b.Layers[0].KH
		}, "geometry fields disagree"},
		{"dense In/Out swapped", func(b *netBlob) {
			b.Layers[3].In, b.Layers[3].Out = b.Layers[3].Out, b.Layers[3].In
		}, "geometry fields disagree"},
		{"negative conv stride", func(b *netBlob) {
			b.Layers[0].Stride = -1
		}, "invalid conv geometry"},
		{"zero dense output", func(b *netBlob) {
			b.Layers[3].Out = 0
		}, "invalid dense geometry"},
		{"unknown layer kind", func(b *netBlob) {
			b.Layers[1].Kind = "transformer"
		}, "unknown layer kind"},
		{"truncated weights", func(b *netBlob) {
			b.Layers[0].Params[0] = b.Layers[0].Params[0][:5]
			b.Layers[0].ParamShapes[0] = []int{5}
		}, "size"},
		{"oversized dense", func(b *netBlob) {
			b.Layers[3].In, b.Layers[3].Out = 1<<13, 1<<13
		}, "limit"},
		{"future version", func(b *netBlob) {
			b.Version = blobVersion + 1
		}, "unsupported blob version"},
		{"bad input shape", func(b *netBlob) {
			b.InShape = []int{1, -6, 8}
		}, "non-positive dimension"},
	}
	for _, tc := range cases {
		data := mutateBlob(t, net, tc.mutate)
		loaded, err := Load(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: Load accepted the tampered blob (net=%v)", tc.name, loaded.InShape())
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestLoadLegacyV0Blob checks the versioned loader still accepts the PR-2-era
// format: no Version field (gob decodes it as 0), no per-parameter shapes, no
// training state.
func TestLoadLegacyV0Blob(t *testing.T) {
	net := buildTinyNet(29)
	data := mutateBlob(t, net, func(b *netBlob) {
		b.Version = 0
		b.Opt = nil
		b.Streams = nil
		for i := range b.Layers {
			b.Layers[i].ParamShapes = nil
		}
	})
	loaded, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Load rejected a legacy v0 blob: %v", err)
	}
	requireSameParams(t, net, loaded, "legacy v0 blob")
}
