package cnn

import (
	"fmt"

	"zeiot/internal/tensor"
)

// Optimizer state is keyed by parameter-tensor pointer, so it cannot be
// serialized directly: a checkpoint names parameters positionally instead.
// The accessors here snapshot and restore optimizer state against an ordered
// parameter list — the network's Params() order for whole-network
// checkpoints, a replica kernel list for MicroDeep's local-update mode. A
// nil slice in a snapshot means "no state yet" (the optimizer lazily creates
// buffers on first step), which restores to exactly that: absent state, so a
// resumed run's first step behaves like the uninterrupted run's next step.

// paramTensors returns the network's parameter tensors in layer order — the
// canonical positional order the serialized formats use.
func (n *Network) paramTensors() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range n.layers {
		if pl, ok := l.(ParamLayer); ok {
			out = append(out, pl.Params()...)
		}
	}
	return out
}

// VelocitySnapshot returns a copy of the momentum buffers for params, in
// order. Entries without accumulated state (the parameter was never stepped)
// are nil.
func (s *SGD) VelocitySnapshot(params []*tensor.Tensor) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		if v, ok := s.velocity[p]; ok {
			out[i] = append([]float64(nil), v.Data()...)
		}
	}
	return out
}

// RestoreVelocity installs a snapshot taken with VelocitySnapshot against
// params (same order). Nil entries clear any existing state for that
// parameter.
func (s *SGD) RestoreVelocity(params []*tensor.Tensor, vel [][]float64) error {
	if len(vel) != len(params) {
		return fmt.Errorf("cnn: velocity snapshot has %d entries for %d params", len(vel), len(params))
	}
	for i, p := range params {
		if vel[i] == nil {
			delete(s.velocity, p)
			continue
		}
		if len(vel[i]) != p.Size() {
			return fmt.Errorf("cnn: velocity %d has %d elements, param has %d", i, len(vel[i]), p.Size())
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Shape()...)
			s.velocity[p] = v
		}
		copy(v.Data(), vel[i])
	}
	return nil
}

// StepCount returns the number of Step calls applied so far (the t in the
// bias-correction terms).
func (a *Adam) StepCount() int { return a.step }

// SetStepCount restores the step counter from a checkpoint.
func (a *Adam) SetStepCount(n int) error {
	if n < 0 {
		return fmt.Errorf("cnn: negative Adam step count %d", n)
	}
	a.step = n
	return nil
}

// MomentSnapshot returns copies of the first and second moment estimates for
// params, in order; nil entries mean no accumulated state.
func (a *Adam) MomentSnapshot(params []*tensor.Tensor) (m, v [][]float64) {
	m = make([][]float64, len(params))
	v = make([][]float64, len(params))
	for i, p := range params {
		if mb, ok := a.m[p]; ok {
			m[i] = append([]float64(nil), mb.Data()...)
			v[i] = append([]float64(nil), a.v[p].Data()...)
		}
	}
	return m, v
}

// RestoreMoments installs a snapshot taken with MomentSnapshot against
// params (same order). Nil entries clear any existing state.
func (a *Adam) RestoreMoments(params []*tensor.Tensor, m, v [][]float64) error {
	if len(m) != len(params) || len(v) != len(params) {
		return fmt.Errorf("cnn: moment snapshot has %d/%d entries for %d params", len(m), len(v), len(params))
	}
	for i, p := range params {
		if m[i] == nil || v[i] == nil {
			if m[i] != nil || v[i] != nil {
				return fmt.Errorf("cnn: moment snapshot %d has only one of m/v", i)
			}
			delete(a.m, p)
			delete(a.v, p)
			continue
		}
		if len(m[i]) != p.Size() || len(v[i]) != p.Size() {
			return fmt.Errorf("cnn: moment %d has %d/%d elements, param has %d", i, len(m[i]), len(v[i]), p.Size())
		}
		mb, ok := a.m[p]
		if !ok {
			mb = tensor.New(p.Shape()...)
			a.m[p] = mb
			a.v[p] = tensor.New(p.Shape()...)
		}
		copy(mb.Data(), m[i])
		copy(a.v[p].Data(), v[i])
	}
	return nil
}
