package cnn

import (
	"math"
	"testing"

	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// numericalGrad estimates dLoss/dtheta for parameter element (t, i) by
// central differences, where loss = CrossEntropy(net.Forward(in), label).
func numericalGrad(n *Network, in *tensor.Tensor, label int, t *tensor.Tensor, i int) float64 {
	const h = 1e-5
	orig := t.Data()[i]
	t.Data()[i] = orig + h
	lp, _ := CrossEntropy(n.Forward(in), label)
	t.Data()[i] = orig - h
	lm, _ := CrossEntropy(n.Forward(in), label)
	t.Data()[i] = orig
	return (lp - lm) / (2 * h)
}

func buildTinyNet(seed uint64) *Network {
	s := rng.New(seed)
	conv := NewConv2D(1, 2, 3, 3, 1, 1, s.Split("conv"))
	pool := NewMaxPool2D(2, 2)
	flat := NewFlatten()
	// input 1x6x6 -> conv(pad1) 2x6x6 -> pool 2x3x3 -> 18 -> dense 8 -> dense 3
	d1 := NewDense(18, 8, s.Split("d1"))
	d2 := NewDense(8, 3, s.Split("d2"))
	return NewNetwork([]int{1, 6, 6}, conv, NewReLU(), pool, flat, d1, NewReLU(), d2)
}

func randomInput(s *rng.Stream, shape ...int) *tensor.Tensor {
	in := tensor.New(shape...)
	d := in.Data()
	for i := range d {
		d[i] = s.NormMeanStd(0, 1)
	}
	return in
}

func TestGradientCheckAllLayers(t *testing.T) {
	n := buildTinyNet(1)
	s := rng.New(99)
	in := randomInput(s, 1, 6, 6)
	label := 1

	n.ZeroGrads()
	logits := n.Forward(in)
	_, grad := CrossEntropy(logits, label)
	n.Backward(grad)

	checked := 0
	for _, l := range n.Layers() {
		pl, ok := l.(ParamLayer)
		if !ok {
			continue
		}
		params, grads := pl.Params(), pl.Grads()
		for pi, p := range params {
			// Check a handful of elements per tensor.
			stride := p.Size()/5 + 1
			for i := 0; i < p.Size(); i += stride {
				want := numericalGrad(n, in, label, p, i)
				got := grads[pi].Data()[i]
				if math.Abs(want-got) > 1e-4*(1+math.Abs(want)) {
					t.Errorf("%s param %d elem %d: analytic %.8f numeric %.8f", l.Name(), pi, i, got, want)
				}
				checked++
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only checked %d gradient elements", checked)
	}
}

func TestGradientCheckInputGrad(t *testing.T) {
	// Input gradient via backprop must match numeric differentiation of the
	// loss with respect to the input.
	n := buildTinyNet(2)
	s := rng.New(7)
	in := randomInput(s, 1, 6, 6)
	label := 0

	n.ZeroGrads()
	_, grad := CrossEntropy(n.Forward(in), label)
	g := grad
	layers := n.Layers()
	for i := len(layers) - 1; i >= 0; i-- {
		g = layers[i].Backward(g)
	}
	const h = 1e-5
	for i := 0; i < in.Size(); i += 7 {
		orig := in.Data()[i]
		in.Data()[i] = orig + h
		lp, _ := CrossEntropy(n.Forward(in), label)
		in.Data()[i] = orig - h
		lm, _ := CrossEntropy(n.Forward(in), label)
		in.Data()[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(want-g.Data()[i]) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("input grad elem %d: analytic %.8f numeric %.8f", i, g.Data()[i], want)
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	s := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		logits := randomInput(s, 10)
		logits.ScaleInPlace(20) // stress stability
		p := Softmax(logits)
		sum := p.Sum()
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("softmax sums to %v", sum)
		}
		for _, v := range p.Data() {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("softmax produced %v", v)
			}
		}
		if p.Argmax() != logits.Argmax() {
			t.Fatal("softmax changed argmax")
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	logits := tensor.FromSlice([]float64{1, 2, 3}, 3)
	shifted := tensor.FromSlice([]float64{101, 102, 103}, 3)
	if !tensor.Equal(Softmax(logits), Softmax(shifted), 1e-12) {
		t.Fatal("softmax not shift invariant")
	}
}

func TestCrossEntropyGradientSumsToZero(t *testing.T) {
	s := rng.New(5)
	logits := randomInput(s, 6)
	_, grad := CrossEntropy(logits, 2)
	if math.Abs(grad.Sum()) > 1e-9 {
		t.Fatalf("CE gradient sums to %v, want 0", grad.Sum())
	}
}

func TestConvOutShape(t *testing.T) {
	s := rng.New(1)
	cases := []struct {
		inC, outC, k, stride, pad int
		in, want                  []int
	}{
		{1, 4, 3, 1, 0, []int{1, 8, 8}, []int{4, 6, 6}},
		{1, 4, 3, 1, 1, []int{1, 8, 8}, []int{4, 8, 8}},
		{2, 3, 3, 2, 1, []int{2, 9, 9}, []int{3, 5, 5}},
	}
	for _, tc := range cases {
		c := NewConv2D(tc.inC, tc.outC, tc.k, tc.k, tc.stride, tc.pad, s)
		got := c.OutShape(tc.in)
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("OutShape(%v) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}

func TestConvKnownValues(t *testing.T) {
	// 1x1 kernel = per-pixel scaling.
	s := rng.New(1)
	c := NewConv2D(1, 1, 1, 1, 1, 0, s)
	c.Weight().Set(2, 0, 0, 0, 0)
	c.Bias().Set(1, 0)
	in := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	out := c.Forward(in)
	want := tensor.FromSlice([]float64{3, 5, 7, 9}, 1, 2, 2)
	if !tensor.Equal(out, want, 1e-12) {
		t.Fatalf("conv 1x1 = %v", out)
	}
}

func TestConvReceptive(t *testing.T) {
	s := rng.New(1)
	c := NewConv2D(1, 1, 3, 3, 2, 1, s)
	y0, y1, x0, x1 := c.Receptive(1, 2)
	if y0 != 1 || y1 != 3 || x0 != 3 || x1 != 5 {
		t.Fatalf("Receptive = (%d,%d,%d,%d)", y0, y1, x0, x1)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	in := tensor.FromSlice([]float64{
		1, 5, 2, 0,
		3, 4, 1, 1,
		0, 0, 9, 2,
		0, 0, 3, 8,
	}, 1, 4, 4)
	out := p.Forward(in)
	want := tensor.FromSlice([]float64{5, 2, 0, 9}, 1, 2, 2)
	if !tensor.Equal(out, want, 0) {
		t.Fatalf("pool forward = %v", out)
	}
	grad := tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 2, 2)
	gin := p.Backward(grad)
	// Gradient must land exactly on the argmax positions.
	if gin.At(0, 0, 1) != 1 || gin.At(0, 2, 2) != 1 {
		t.Fatalf("pool backward = %v", gin)
	}
	if gin.Sum() != 4 {
		t.Fatalf("pool backward total = %v", gin.Sum())
	}
}

func TestPoolTieBreaksToFirst(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	in := tensor.FromSlice([]float64{7, 7, 7, 7}, 1, 2, 2)
	p.Forward(in)
	gin := p.Backward(tensor.FromSlice([]float64{1}, 1, 1, 1))
	if gin.At(0, 0, 0) != 1 {
		t.Fatalf("tie did not route to first element: %v", gin)
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU()
	in := tensor.FromSlice([]float64{-1, 0, 2}, 3)
	out := r.Forward(in)
	if out.At(0) != 0 || out.At(1) != 0 || out.At(2) != 2 {
		t.Fatalf("relu = %v", out)
	}
	gin := r.Backward(tensor.FromSlice([]float64{5, 5, 5}, 3))
	if gin.At(0) != 0 || gin.At(2) != 5 {
		t.Fatalf("relu backward = %v", gin)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	in := randomInput(rng.New(1), 2, 3, 4)
	out := f.Forward(in)
	if out.Dims() != 1 || out.Dim(0) != 24 {
		t.Fatalf("flatten shape = %v", out.Shape())
	}
	back := f.Backward(out)
	if !tensor.Equal(back, in, 0) {
		t.Fatal("flatten backward not inverse")
	}
}

func TestDeterministicInitialization(t *testing.T) {
	a := buildTinyNet(42)
	b := buildTinyNet(42)
	in := randomInput(rng.New(0), 1, 6, 6)
	if !tensor.Equal(a.Forward(in), b.Forward(in), 0) {
		t.Fatal("same seed produced different networks")
	}
	c := buildTinyNet(43)
	if tensor.Equal(a.Forward(in), c.Forward(in), 1e-9) {
		t.Fatal("different seeds produced identical networks")
	}
}

// TestLearnsToyProblem verifies the full train loop can fit a simple
// linearly-separable spatial task: is the bright blob on the left or the
// right half of the image?
func TestLearnsToyProblem(t *testing.T) {
	s := rng.New(2026)
	var samples []Sample
	for i := 0; i < 200; i++ {
		in := tensor.New(1, 6, 6)
		label := i % 2
		x := s.Intn(3)
		if label == 1 {
			x += 3
		}
		y := s.Intn(6)
		in.Set(1, 0, y, x)
		// Mild noise.
		for j := 0; j < 3; j++ {
			in.Set(in.At(0, s.Intn(6), s.Intn(6))+0.1*s.Norm(), 0, s.Intn(6), s.Intn(6))
		}
		samples = append(samples, Sample{Input: in, Label: label})
	}
	net := NewNetwork([]int{1, 6, 6},
		NewConv2D(1, 4, 3, 3, 1, 1, s.Split("c")),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewDense(36, 2, s.Split("d")),
	)
	opt := NewSGD(0.05, 0.9)
	net.Fit(samples, 15, 8, opt, s.Split("train"))
	acc := net.Evaluate(samples)
	if acc < 0.95 {
		t.Fatalf("toy accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestTrainLossDecreases(t *testing.T) {
	s := rng.New(77)
	var samples []Sample
	for i := 0; i < 60; i++ {
		in := randomInput(s, 1, 6, 6)
		label := 0
		if in.Sum() > 0 {
			label = 1
		}
		samples = append(samples, Sample{Input: in, Label: label})
	}
	net := buildTinyNet(5)
	opt := NewSGD(0.02, 0.9)
	first := net.TrainEpoch(samples, s.Perm(len(samples)), 4, opt)
	var last float64
	for e := 0; e < 20; e++ {
		last = net.TrainEpoch(samples, s.Perm(len(samples)), 4, opt)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %.4f last %.4f", first, last)
	}
}

func TestSGDWeightDecayShrinksParams(t *testing.T) {
	s := rng.New(9)
	d := NewDense(4, 4, s)
	opt := NewSGD(0.1, 0)
	opt.Decay = 0.5
	before := d.Weight().L2()
	d.ZeroGrads()
	opt.Step(d.Params(), d.Grads(), 1)
	after := d.Weight().L2()
	if after >= before {
		t.Fatalf("decay did not shrink weights: %v -> %v", before, after)
	}
}

func TestReplicaHooksMatchSharedWhenIdentical(t *testing.T) {
	// Installing replica hooks that all return the shared kernel must not
	// change the forward output.
	s := rng.New(31)
	c := NewConv2D(1, 3, 3, 3, 1, 1, s)
	in := randomInput(s, 1, 5, 5)
	// Clone: layer outputs are reusable scratch, and the second Forward
	// below would otherwise overwrite (and alias) the first result.
	want := c.Forward(in).Clone()
	c.SetReplicaHooks(
		func(oy, ox int) *tensor.Tensor { return c.Weight() },
		func(oy, ox int) *tensor.Tensor { return c.Grads()[0] },
	)
	got := c.Forward(in)
	if !tensor.Equal(want, got, 0) {
		t.Fatal("identity replica hooks changed output")
	}
}
