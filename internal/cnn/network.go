package cnn

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"zeiot/internal/obs"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// Network is an ordered stack of layers trained with softmax cross-entropy.
//
// A Network is not safe for concurrent use; TrainEpochParallel manages its
// own internal worker goroutines over shadow layer stacks.
type Network struct {
	layers  []Layer
	inShape []int
	// slots are cached shadow networks (one per in-flight sample) used by
	// TrainEpochParallel; they share parameter and gradient tensors with
	// this network but own their scratch buffers.
	slots []*Network
	// rec, when non-nil, receives per-epoch training curves from Fit and
	// FitParallel (see SetRecorder). Shadow networks never carry it.
	rec       obs.Recorder
	recPrefix string
	recEval   []Sample
	// batchKernel, when > 1, routes Fit, FitParallel and TrainEpochParallel
	// through the batched im2col/GEMM engine in batch.go; bslots caches its
	// per-block state (see SetBatchKernel).
	batchKernel int
	bslots      []*batchSlot
}

// NewNetwork returns a network accepting inputs of the given shape.
func NewNetwork(inShape []int, layers ...Layer) *Network {
	n := &Network{layers: layers, inShape: append([]int(nil), inShape...)}
	// Validate the stack once up front so geometry errors surface at
	// construction, not mid-training.
	shape := n.inShape
	for _, l := range layers {
		shape = l.OutShape(shape)
	}
	return n
}

// Layers returns the layer stack.
func (n *Network) Layers() []Layer { return n.layers }

// InShape returns the input shape.
func (n *Network) InShape() []int { return n.inShape }

// OutShape returns the final output shape.
func (n *Network) OutShape() []int {
	shape := n.inShape
	for _, l := range n.layers {
		shape = l.OutShape(shape)
	}
	return shape
}

// Forward runs all layers and returns the logits. The returned tensor is
// scratch owned by the final layer: it is valid until the next Forward call
// (Clone it to keep it).
func (n *Network) Forward(in *tensor.Tensor) *tensor.Tensor {
	x := in
	for _, l := range n.layers {
		x = l.Forward(x)
	}
	return x
}

// inputGradSkipper is implemented by layers that can run a cheaper backward
// pass when their input gradient is not needed. The stack's first layer
// qualifies: nothing consumes dLoss/dInput of the network input.
type inputGradSkipper interface {
	BackwardNoInputGrad(gradOut *tensor.Tensor)
}

// Backward propagates dLoss/dLogits through all layers, accumulating
// parameter gradients. The first layer's input gradient is never consumed,
// so layers that support it skip that half of their backward work.
func (n *Network) Backward(gradLogits *tensor.Tensor) {
	g := gradLogits
	for i := len(n.layers) - 1; i >= 1; i-- {
		g = n.layers[i].Backward(g)
	}
	if len(n.layers) == 0 {
		return
	}
	if s, ok := n.layers[0].(inputGradSkipper); ok {
		s.BackwardNoInputGrad(g)
		return
	}
	n.layers[0].Backward(g)
}

// ZeroGrads clears gradients in every parameterized layer.
func (n *Network) ZeroGrads() {
	for _, l := range n.layers {
		if pl, ok := l.(ParamLayer); ok {
			pl.ZeroGrads()
		}
	}
}

// Predict returns the argmax class for in.
func (n *Network) Predict(in *tensor.Tensor) int {
	return n.Forward(in).Argmax()
}

// shadowNet returns a network sharing every parameter and gradient tensor
// with n but owning per-layer scratch state, or nil if any layer does not
// support shadowing (external Layer implementations).
func (n *Network) shadowNet() *Network {
	layers := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		s, ok := l.(shadowLayer)
		if !ok {
			return nil
		}
		layers[i] = s.shadow()
	}
	return &Network{layers: layers, inShape: n.inShape}
}

// Softmax returns the softmax of logits, computed stably.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	out := logits.Clone()
	data := out.Data()
	maxV := out.Max()
	sum := 0.0
	for i, v := range data {
		e := math.Exp(v - maxV)
		data[i] = e
		sum += e
	}
	for i := range data {
		data[i] /= sum
	}
	return out
}

// CrossEntropy returns the softmax cross-entropy loss for logits against the
// integer label and the gradient dLoss/dLogits.
func CrossEntropy(logits *tensor.Tensor, label int) (loss float64, grad *tensor.Tensor) {
	if label < 0 || label >= logits.Size() {
		panic(fmt.Sprintf("cnn: label %d for %d classes", label, logits.Size()))
	}
	probs := Softmax(logits)
	p := probs.Data()[label]
	const eps = 1e-12
	loss = -math.Log(p + eps)
	grad = probs
	grad.Data()[label] -= 1
	return loss, grad
}

// Sample is one labelled training example.
type Sample struct {
	Input *tensor.Tensor
	Label int
}

// SGD is a stochastic gradient descent optimizer with classical momentum
// and optional L2 weight decay.
type SGD struct {
	LR       float64
	Momentum float64
	Decay    float64
	velocity map[*tensor.Tensor]*tensor.Tensor
}

// NewSGD returns an optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*tensor.Tensor]*tensor.Tensor)}
}

// Reset drops all per-parameter momentum state, releasing the buffers for
// garbage collection. Use it when every network the optimizer touched is
// retired; the next Step starts from zero velocity.
func (s *SGD) Reset() {
	clear(s.velocity)
}

// Release drops the momentum state of the given parameter tensors. Long
// multi-trial experiments that retire networks (or MicroDeep kernel
// replicas) while keeping one optimizer alive should release the retired
// parameters so their velocity buffers do not accumulate.
func (s *SGD) Release(params ...*tensor.Tensor) {
	for _, p := range params {
		delete(s.velocity, p)
	}
}

// ReleaseNetwork drops the momentum state of every parameter of n.
func (s *SGD) ReleaseNetwork(n *Network) {
	for _, l := range n.layers {
		if pl, ok := l.(ParamLayer); ok {
			s.Release(pl.Params()...)
		}
	}
}

// StateSize returns the number of parameter tensors the optimizer currently
// holds momentum buffers for (exposed for leak tests).
func (s *SGD) StateSize() int { return len(s.velocity) }

// Step applies one update: p -= lr*(g/batch + decay*p), with momentum.
func (s *SGD) Step(params, grads []*tensor.Tensor, batch int) {
	if len(params) != len(grads) {
		panic("cnn: params/grads length mismatch")
	}
	for i, p := range params {
		s.StepOne(p, grads[i], batch)
	}
}

// StepOne applies Step's update rule to a single parameter tensor. Callers
// updating many small tensors (MicroDeep's per-position kernel replicas)
// use it to avoid building slice pairs per tensor.
func (s *SGD) StepOne(p, g *tensor.Tensor, batch int) {
	if batch <= 0 {
		batch = 1
	}
	inv := 1.0 / float64(batch)
	v, ok := s.velocity[p]
	if !ok {
		v = tensor.New(p.Shape()...)
		s.velocity[p] = v
	}
	pd, gd, vd := p.Data(), g.Data(), v.Data()
	gd = gd[:len(pd)]
	vd = vd[:len(pd)]
	mom, lr, dec := s.Momentum, s.LR, s.Decay
	for j := range pd {
		step := gd[j]*inv + dec*pd[j]
		nv := mom*vd[j] - lr*step
		vd[j] = nv
		pd[j] += nv
	}
}

// StepNetwork applies Step to every parameterized layer of n.
func (s *SGD) StepNetwork(n *Network, batch int) {
	for _, l := range n.layers {
		if pl, ok := l.(ParamLayer); ok {
			s.Step(pl.Params(), pl.Grads(), batch)
		}
	}
}

// TrainEpoch runs one epoch of mini-batch SGD over samples in the order
// given by perm (pass stream.Perm(len(samples))). It returns the mean loss.
func (n *Network) TrainEpoch(samples []Sample, perm []int, batch int, opt *SGD) float64 {
	if batch <= 0 {
		panic("cnn: non-positive batch size")
	}
	total := 0.0
	count := 0
	n.ZeroGrads()
	inBatch := 0
	for _, idx := range perm {
		s := samples[idx]
		logits := n.Forward(s.Input)
		loss, grad := CrossEntropy(logits, s.Label)
		total += loss
		count++
		n.Backward(grad)
		inBatch++
		if inBatch == batch {
			opt.StepNetwork(n, inBatch)
			n.ZeroGrads()
			inBatch = 0
		}
	}
	if inBatch > 0 {
		opt.StepNetwork(n, inBatch)
		n.ZeroGrads()
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// ResetParallelState drops the cached shadow networks used by the parallel
// training paths. Call it after structurally changing the layer stack's
// hooks (e.g. installing conv replica hooks): stale shadows would otherwise
// keep the old configuration.
func (n *Network) ResetParallelState() { n.slots, n.bslots = nil, nil }

// TrainEpochParallelFunc is the engine behind TrainEpochParallel and
// microdeep's parallel local-update training. Each mini-batch's forward
// passes are sharded across worker goroutines (workers <= 0 selects
// runtime.NumCPU()) over cached shadow layer stacks sharing the canonical
// parameter tensors; the backward passes then reduce their gradients
// sequentially in sample order — the same elementary accumulation order as
// TrainEpoch — so the result is bit-identical to the sequential path at any
// worker count. step runs at every batch boundary with the batch's sample
// count; the caller applies its optimizer there and zeroes its gradient
// state (none of it is zeroed here, including up front — callers zero their
// own state before the first sample). Returns ok=false, having done
// nothing, when the stack cannot shadow or the effective worker count is 1;
// the caller should then run its serial path.
func (n *Network) TrainEpochParallelFunc(samples []Sample, perm []int, batch, workers int, step func(bsz int)) (loss float64, ok bool) {
	total, count, ok := n.trainChunkParallel(samples, perm, batch, workers, step)
	if !ok {
		return 0, false
	}
	if count == 0 {
		return 0, true
	}
	return total / float64(count), true
}

// trainChunkParallel is TrainEpochParallelFunc returning the raw loss total
// and sample count instead of their quotient. The resumable Trainer
// (checkpoint.go) accumulates totals across chunks of an epoch, so it needs
// the exact sum — recovering it as mean×count would reintroduce a float
// rounding step and break the bit-identity contract with TrainEpoch.
func (n *Network) trainChunkParallel(samples []Sample, perm []int, batch, workers int, step func(bsz int)) (total float64, count int, ok bool) {
	if batch <= 0 {
		panic("cnn: non-positive batch size")
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > batch {
		workers = batch
	}
	if workers == 1 {
		return 0, 0, false
	}
	for len(n.slots) < batch {
		sn := n.shadowNet()
		if sn == nil {
			// A layer without shadow support.
			return 0, 0, false
		}
		n.slots = append(n.slots, sn)
	}
	logits := make([]*tensor.Tensor, batch)
	for start := 0; start < len(perm); start += batch {
		end := start + batch
		if end > len(perm) {
			end = len(perm)
		}
		bsz := end - start
		w := workers
		if w > bsz {
			w = bsz
		}
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for j := g; j < bsz; j += w {
					logits[j] = n.slots[j].Forward(samples[perm[start+j]].Input)
				}
			}(g)
		}
		wg.Wait()
		// Sequential reduction in sample order: backward accumulates into
		// the shared gradient tensors exactly as TrainEpoch would.
		for j := 0; j < bsz; j++ {
			s := samples[perm[start+j]]
			sampleLoss, grad := CrossEntropy(logits[j], s.Label)
			total += sampleLoss
			count++
			n.slots[j].Backward(grad)
		}
		step(bsz)
	}
	return total, count, true
}

// TrainEpochParallel is TrainEpoch with each mini-batch's forward passes
// sharded across worker goroutines (workers <= 0 selects runtime.NumCPU()).
// Every in-flight sample runs on its own shadow layer stack sharing the
// canonical parameter tensors, and the backward passes then reduce their
// gradients sequentially in sample order — the same elementary accumulation
// order as TrainEpoch — so the result is bit-identical to the sequential
// path at every worker count.
func (n *Network) TrainEpochParallel(samples []Sample, perm []int, batch, workers int, opt *SGD) float64 {
	n.ZeroGrads()
	step := func(bsz int) {
		opt.StepNetwork(n, bsz)
		n.ZeroGrads()
	}
	// A configured batch kernel routes through the batched im2col/GEMM
	// engine (bit-identical; see batch.go) at any worker count, including 1.
	if n.batchKernel > 1 {
		if loss, ok := n.trainEpochBatched(samples, perm, batch, n.batchKernel, workers, step); ok {
			return loss
		}
	}
	loss, ok := n.TrainEpochParallelFunc(samples, perm, batch, workers, step)
	if !ok {
		return n.TrainEpoch(samples, perm, batch, opt)
	}
	return loss
}

// Evaluate returns classification accuracy over samples.
func (n *Network) Evaluate(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if n.Predict(s.Input) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// SetRecorder attaches an observability recorder: Fit and FitParallel then
// record one training-loss point per epoch under <prefix>train_loss and —
// when eval is non-empty — one accuracy point per epoch under
// <prefix>eval_acc. Evaluation consumes no randomness, so attaching a
// recorder never changes the trained weights or any rng stream; it only
// spends wall time on the held-out passes. A nil recorder (the default)
// disables recording with zero overhead.
func (n *Network) SetRecorder(r obs.Recorder, prefix string, eval []Sample) {
	n.rec = r
	n.recPrefix = prefix
	n.recEval = eval
}

// observeEpoch publishes one epoch's curve points; a no-op without a
// recorder. It runs strictly between epochs — never inside the parallel
// forward workers — so recorder calls are sequential per network.
func (n *Network) observeEpoch(loss float64) {
	if n.rec == nil {
		return
	}
	n.rec.Observe(n.recPrefix+"train_loss", loss)
	if len(n.recEval) > 0 {
		n.rec.Observe(n.recPrefix+"eval_acc", n.Evaluate(n.recEval))
	}
}

// Fit trains for epochs epochs with a fresh shuffle per epoch and returns
// the final training loss.
func (n *Network) Fit(samples []Sample, epochs, batch int, opt *SGD, stream *rng.Stream) float64 {
	loss := 0.0
	for e := 0; e < epochs; e++ {
		if n.batchKernel > 1 {
			loss = n.TrainEpochBatched(samples, stream.Perm(len(samples)), batch, n.batchKernel, opt)
		} else {
			loss = n.TrainEpoch(samples, stream.Perm(len(samples)), batch, opt)
		}
		n.observeEpoch(loss)
	}
	return loss
}

// FitParallel is Fit using TrainEpochParallel; it consumes the stream
// identically to Fit, so at the same seed the trained weights are
// bit-identical to the sequential path.
func (n *Network) FitParallel(samples []Sample, epochs, batch, workers int, opt *SGD, stream *rng.Stream) float64 {
	loss := 0.0
	for e := 0; e < epochs; e++ {
		loss = n.TrainEpochParallel(samples, stream.Perm(len(samples)), batch, workers, opt)
		n.observeEpoch(loss)
	}
	return loss
}
