package cnn

import (
	"testing"

	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// trainRef trains net for epochs epochs through the per-sample reference
// path with a deterministic permutation stream and returns the final loss.
func trainRef(net *Network, samples []Sample, epochs, batch int, opt *SGD) float64 {
	s := rng.New(424242)
	loss := 0.0
	for e := 0; e < epochs; e++ {
		loss = net.TrainEpoch(samples, s.Perm(len(samples)), batch, opt)
	}
	return loss
}

// trainBatched trains net through TrainEpochBatched with the same
// permutation stream as trainRef.
func trainBatched(net *Network, samples []Sample, epochs, batch, kernel int, opt *SGD) float64 {
	s := rng.New(424242)
	loss := 0.0
	for e := 0; e < epochs; e++ {
		loss = net.TrainEpochBatched(samples, s.Perm(len(samples)), batch, kernel, opt)
	}
	return loss
}

// requireSameParams fails unless every parameter tensor of a and b is
// bit-identical (tolerance zero).
func requireSameParams(t *testing.T, a, b *Network, ctx string) {
	t.Helper()
	for li, l := range a.Layers() {
		pa, ok := l.(ParamLayer)
		if !ok {
			continue
		}
		pb := b.Layers()[li].(ParamLayer)
		for pi, ta := range pa.Params() {
			if !tensor.Equal(ta, pb.Params()[pi], 0) {
				t.Fatalf("%s: layer %d (%s) param %d differs from reference", ctx, li, l.Name(), pi)
			}
		}
	}
}

func spatialSamples(seed uint64, n, ch, h, w, classes int) []Sample {
	s := rng.New(seed)
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{Input: randomInput(s, ch, h, w), Label: i % classes}
	}
	return out
}

func flatSamples(seed uint64, n, f, classes int) []Sample {
	s := rng.New(seed)
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{Input: randomInput(s, f), Label: i % classes}
	}
	return out
}

// batchNets returns the architectures the bit-identity suite covers: padded
// 3×3 convs with max pooling (the fast paths), a stride-2 5×5 conv (the
// general im2col/scatter path), average pooling, and a dense-only stack on
// flat input.
func batchNets() map[string]struct {
	build   func() *Network
	samples []Sample
} {
	return map[string]struct {
		build   func() *Network
		samples []Sample
	}{
		"conv3x3-maxpool": {
			build:   func() *Network { return buildTinyNet(11) },
			samples: spatialSamples(101, 23, 1, 6, 6, 3),
		},
		"conv5x5-stride2": {
			build: func() *Network {
				s := rng.New(12)
				return NewNetwork([]int{2, 9, 9},
					NewConv2D(2, 3, 5, 5, 2, 1, s.Split("c")),
					NewReLU(),
					NewFlatten(),
					NewDense(3*4*4, 4, s.Split("d")),
				)
			},
			samples: spatialSamples(102, 19, 2, 9, 9, 4),
		},
		"conv-avgpool": {
			build:   func() *Network { return buildFullNet(13) },
			samples: spatialSamples(103, 21, 1, 8, 8, 2),
		},
		"dense-only": {
			build: func() *Network {
				s := rng.New(14)
				return NewNetwork([]int{10},
					NewDense(10, 16, s.Split("d1")),
					NewReLU(),
					NewDense(16, 5, s.Split("d2")),
				)
			},
			samples: flatSamples(104, 33, 10, 5),
		},
	}
}

func TestTrainEpochBatchedBitIdentical(t *testing.T) {
	for name, tc := range batchNets() {
		t.Run(name, func(t *testing.T) {
			ref := tc.build()
			refLoss := trainRef(ref, tc.samples, 3, 8, NewSGD(0.05, 0.9))
			// Kernel 16 exceeds the batch size of 8; 3 and 5 leave partial
			// blocks. All must reproduce the reference bits exactly.
			for _, kernel := range []int{2, 3, 5, 16} {
				net := tc.build()
				loss := trainBatched(net, tc.samples, 3, 8, kernel, NewSGD(0.05, 0.9))
				if loss != refLoss {
					t.Fatalf("kernel %d: loss %.17g != reference %.17g", kernel, loss, refLoss)
				}
				requireSameParams(t, net, ref, "kernel "+string(rune('0'+kernel)))
			}
		})
	}
}

// TestTrainEpochParallelUsesBatchKernel exercises the batched engine
// composed with worker parallelism (run under -race it also checks the
// shadow-slot forwards never share state).
func TestTrainEpochParallelUsesBatchKernel(t *testing.T) {
	for name, tc := range batchNets() {
		t.Run(name, func(t *testing.T) {
			ref := tc.build()
			refLoss := trainRef(ref, tc.samples, 3, 8, NewSGD(0.05, 0.9))
			for _, workers := range []int{1, 2, 4} {
				net := tc.build()
				net.SetBatchKernel(2)
				opt := NewSGD(0.05, 0.9)
				s := rng.New(424242)
				loss := 0.0
				for e := 0; e < 3; e++ {
					loss = net.TrainEpochParallel(tc.samples, s.Perm(len(tc.samples)), 8, workers, opt)
				}
				if loss != refLoss {
					t.Fatalf("workers %d: loss %.17g != reference %.17g", workers, loss, refLoss)
				}
				requireSameParams(t, net, ref, name)
			}
		})
	}
}

// TestFitRoutesThroughBatchKernel pins the Fit routing: a configured batch
// kernel must leave Fit's results bit-identical.
func TestFitRoutesThroughBatchKernel(t *testing.T) {
	ref := buildTinyNet(11)
	samples := spatialSamples(101, 23, 1, 6, 6, 3)
	refLoss := ref.Fit(samples, 3, 8, NewSGD(0.05, 0.9), rng.New(9).Split("fit"))

	net := buildTinyNet(11)
	net.SetBatchKernel(8)
	loss := net.Fit(samples, 3, 8, NewSGD(0.05, 0.9), rng.New(9).Split("fit"))
	if loss != refLoss {
		t.Fatalf("batched Fit loss %.17g != reference %.17g", loss, refLoss)
	}
	requireSameParams(t, net, ref, "fit")
}

// TestBatchedFallsBackOnReplicaConv pins the replica-mode fallback: a conv
// with per-position kernel tables cannot run batched, and TrainEpochBatched
// must silently use the per-sample path instead.
func TestBatchedFallsBackOnReplicaConv(t *testing.T) {
	build := func(replica bool) *Network {
		s := rng.New(21)
		conv := NewConv2D(1, 2, 3, 3, 1, 1, s.Split("c"))
		net := NewNetwork([]int{1, 6, 6}, conv, NewReLU(), NewFlatten(), NewDense(2*6*6, 3, s.Split("d")))
		if replica {
			// One shared replica per output position: numerically identical
			// to the plain conv, but it must force the per-sample path.
			oh, ow := 6, 6
			kernels := make([]*tensor.Tensor, oh*ow)
			grads := make([]*tensor.Tensor, oh*ow)
			for i := range kernels {
				kernels[i] = conv.Params()[0]
				grads[i] = conv.Grads()[0]
			}
			conv.SetReplicaTable(kernels, grads, ow)
		}
		return net
	}
	samples := spatialSamples(201, 12, 1, 6, 6, 3)

	ref := build(false)
	refLoss := trainRef(ref, samples, 2, 4, NewSGD(0.05, 0.9))

	net := build(true)
	if net.batchable() {
		t.Fatal("replica-hooked conv reported batchable")
	}
	loss := trainBatched(net, samples, 2, 4, 8, NewSGD(0.05, 0.9))
	if loss != refLoss {
		t.Fatalf("fallback loss %.17g != reference %.17g", loss, refLoss)
	}
	requireSameParams(t, net, ref, "replica fallback")
}
