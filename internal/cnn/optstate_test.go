package cnn

import (
	"testing"

	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// TestSGDReleaseNetwork checks that optimizer state for a retired network can
// be pruned: experiments like e2 train several throwaway networks with one
// optimizer lifetime each, and without Release/Reset the velocity map keeps
// every dead network's parameters alive.
func TestSGDReleaseNetwork(t *testing.T) {
	opt := NewSGD(0.01, 0.9)
	net, in := allocNetAnyBuild(1)
	samples := []Sample{{Input: in, Label: 1}}
	net.TrainEpoch(samples, []int{0}, 1, opt)
	if opt.StateSize() == 0 {
		t.Fatal("momentum SGD retained no velocity state after a step")
	}
	opt.ReleaseNetwork(net)
	if got := opt.StateSize(); got != 0 {
		t.Errorf("StateSize() = %d after ReleaseNetwork, want 0", got)
	}

	net2, _ := allocNetAnyBuild(2)
	net2.TrainEpoch(samples, []int{0}, 1, opt)
	if opt.StateSize() == 0 {
		t.Fatal("optimizer unusable after ReleaseNetwork")
	}
	opt.Reset()
	if got := opt.StateSize(); got != 0 {
		t.Errorf("StateSize() = %d after Reset, want 0", got)
	}
}

// TestSGDResetRestartsMomentum checks Reset gives the same trajectory as a
// brand-new optimizer (i.e. it really clears the velocity, not just the map).
func TestSGDResetRestartsMomentum(t *testing.T) {
	samples := []Sample{}
	s := rng.New(3)
	for i := 0; i < 8; i++ {
		in := tensor.New(1, 17, 25)
		d := in.Data()
		for j := range d {
			d[j] = s.NormMeanStd(0, 1)
		}
		samples = append(samples, Sample{Input: in, Label: i % 2})
	}
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}

	reused := NewSGD(0.01, 0.9)
	warm, _ := allocNetAnyBuild(4)
	warm.TrainEpoch(samples, perm, 4, reused) // build up velocity
	reused.Reset()
	a, _ := allocNetAnyBuild(5)
	a.TrainEpoch(samples, perm, 4, reused)

	b, _ := allocNetAnyBuild(5)
	b.TrainEpoch(samples, perm, 4, NewSGD(0.01, 0.9))

	la, lb := a.Layers(), b.Layers()
	for i := range la {
		pa, ok := la[i].(ParamLayer)
		if !ok {
			continue
		}
		pb := lb[i].(ParamLayer)
		for j, ta := range pa.Params() {
			if !tensor.Equal(ta, pb.Params()[j], 0) {
				t.Errorf("layer %d param %d: reset optimizer diverges from fresh optimizer", i, j)
			}
		}
	}
}

func TestAdamResetAndRelease(t *testing.T) {
	opt := NewAdam(0.001)
	net, in := allocNetAnyBuild(6)
	_, grad := CrossEntropy(net.Forward(in), 0)
	net.Backward(grad)
	opt.StepNetwork(net, 1)
	if opt.StateSize() == 0 {
		t.Fatal("Adam retained no moment state after a step")
	}
	for _, l := range net.Layers() {
		if pl, ok := l.(ParamLayer); ok {
			opt.Release(pl.Params()...)
		}
	}
	if got := opt.StateSize(); got != 0 {
		t.Errorf("StateSize() = %d after releasing all params, want 0", got)
	}
	opt.Reset()
	if got := opt.StateSize(); got != 0 {
		t.Errorf("StateSize() = %d after Reset, want 0", got)
	}
}

// allocNetAnyBuild mirrors alloc_test's allocNet without the !race build tag
// so the optimizer-state tests also run under the race detector.
func allocNetAnyBuild(seed uint64) (*Network, *tensor.Tensor) {
	s := rng.New(seed)
	net := NewNetwork([]int{1, 17, 25},
		NewConv2D(1, 4, 3, 3, 1, 1, s.Split("c")),
		NewReLU(),
		NewMaxPool2D(3, 3),
		NewFlatten(),
		NewDense(4*5*8, 16, s.Split("d1")),
		NewReLU(),
		NewDense(16, 2, s.Split("d2")),
	)
	in := tensor.New(1, 17, 25)
	d := in.Data()
	for i := range d {
		d[i] = s.NormMeanStd(0, 1)
	}
	return net, in
}
