package cnn

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

func buildFullNet(seed uint64) *Network {
	s := rng.New(seed)
	return NewNetwork([]int{1, 8, 8},
		NewConv2D(1, 3, 3, 3, 1, 1, s.Split("c")),
		NewReLU(),
		NewAvgPool2D(2, 2),
		NewFlatten(),
		NewDense(3*4*4, 8, s.Split("d1")),
		NewReLU(),
		NewDense(8, 2, s.Split("d2")),
	)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := buildFullNet(1)
	s := rng.New(5)
	// Train a little so weights are not just init values.
	var samples []Sample
	for i := 0; i < 40; i++ {
		samples = append(samples, Sample{Input: randomInput(s, 1, 8, 8), Label: i % 2})
	}
	net.Fit(samples, 3, 8, NewSGD(0.02, 0.9), s.Split("fit"))

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		in := randomInput(s, 1, 8, 8)
		if !tensor.Equal(net.Forward(in), loaded.Forward(in), 0) {
			t.Fatal("loaded network diverges from original")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input decoded")
	}
}

func TestAvgPoolForwardKnown(t *testing.T) {
	p := NewAvgPool2D(2, 2)
	in := tensor.FromSlice([]float64{
		1, 3, 5, 7,
		1, 3, 5, 7,
		2, 2, 8, 8,
		2, 2, 8, 8,
	}, 1, 4, 4)
	out := p.Forward(in)
	want := tensor.FromSlice([]float64{2, 6, 2, 8}, 1, 2, 2)
	if !tensor.Equal(out, want, 1e-12) {
		t.Fatalf("avg pool = %v", out)
	}
}

func TestAvgPoolOverlappingStride(t *testing.T) {
	// 3x3 input with 2x2 windows at stride 1: four overlapping windows.
	p := NewAvgPool2D(2, 1)
	in := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	out := p.Forward(in)
	want := tensor.FromSlice([]float64{3, 4, 6, 7}, 1, 2, 2)
	if !tensor.Equal(out, want, 1e-12) {
		t.Fatalf("avg pool stride-1 = %v", out)
	}
	// Backward conserves total gradient mass.
	gin := p.Backward(tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 2, 2))
	if math.Abs(gin.Sum()-4) > 1e-12 {
		t.Fatalf("gradient mass = %v, want 4", gin.Sum())
	}
}

func TestAvgPoolGradientCheck(t *testing.T) {
	s := rng.New(3)
	net := NewNetwork([]int{1, 5, 5},
		NewAvgPool2D(2, 2),
		NewFlatten(),
		NewDense(4, 2, s.Split("d")),
	)
	in := randomInput(s, 1, 5, 5)
	net.ZeroGrads()
	_, grad := CrossEntropy(net.Forward(in), 1)
	g := grad
	layers := net.Layers()
	for i := len(layers) - 1; i >= 0; i-- {
		g = layers[i].Backward(g)
	}
	const h = 1e-5
	for i := 0; i < in.Size(); i += 3 {
		orig := in.Data()[i]
		in.Data()[i] = orig + h
		lp, _ := CrossEntropy(net.Forward(in), 1)
		in.Data()[i] = orig - h
		lm, _ := CrossEntropy(net.Forward(in), 1)
		in.Data()[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(want-g.Data()[i]) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("avg pool input grad %d: analytic %v numeric %v", i, g.Data()[i], want)
		}
	}
}

func TestAdamConvergesFasterThanPlainSGD(t *testing.T) {
	s := rng.New(7)
	var samples []Sample
	for i := 0; i < 150; i++ {
		in := tensor.New(1, 6, 6)
		label := i % 2
		x := s.Intn(3)
		if label == 1 {
			x += 3
		}
		in.Set(1, 0, s.Intn(6), x)
		samples = append(samples, Sample{Input: in, Label: label})
	}
	lossAfter := func(opt interface {
		StepNetwork(*Network, int)
	}) float64 {
		net := buildTinyNet(9)
		loss := 0.0
		stream := rng.New(11)
		for e := 0; e < 4; e++ {
			perm := stream.Perm(len(samples))
			total, count := 0.0, 0
			net.ZeroGrads()
			batch := 0
			for _, idx := range perm {
				sm := samples[idx]
				l, grad := CrossEntropy(net.Forward(sm.Input), sm.Label)
				total += l
				count++
				net.Backward(grad)
				batch++
				if batch == 10 {
					opt.StepNetwork(net, batch)
					net.ZeroGrads()
					batch = 0
				}
			}
			if batch > 0 {
				opt.StepNetwork(net, batch)
				net.ZeroGrads()
			}
			loss = total / float64(count)
		}
		return loss
	}
	sgdLoss := lossAfter(NewSGD(0.01, 0))
	adamLoss := lossAfter(NewAdam(0.01))
	if adamLoss >= sgdLoss {
		t.Fatalf("adam loss %.4f not below momentum-free SGD %.4f after 4 epochs", adamLoss, sgdLoss)
	}
}

func TestAdamStateIsPerParameter(t *testing.T) {
	s := rng.New(13)
	d1 := NewDense(3, 3, s)
	d2 := NewDense(3, 3, s)
	opt := NewAdam(0.1)
	d1.ZeroGrads()
	d2.ZeroGrads()
	d1.Grads()[0].Fill(1)
	before2 := d2.Weight().Clone()
	opt.Step(d1.Params(), d1.Grads(), 1)
	if tensor.Equal(d1.Weight(), before2, 0) {
		t.Fatal("step did not move d1")
	}
	if !tensor.Equal(d2.Weight(), before2, 0) {
		t.Fatal("stepping d1 moved d2")
	}
}
