package cnn

import (
	"encoding/gob"
	"fmt"
	"io"

	"zeiot/internal/rng"
)

// blobVersion is the current wire-format version. Version 0 blobs (written
// before the format carried a Version field — gob leaves the missing field
// zero) still decode: they carry weights only, with no per-parameter shape
// record, no optimizer state, and no rng stream positions.
const blobVersion = 1

// maxBlobTensor bounds the element count of any single tensor a blob may
// describe (16M float64s = 128 MiB). Decoding validates sizes against this
// before any allocation, so a corrupted or adversarial blob cannot drive the
// loader into a huge allocation or an integer-overflowed geometry.
const maxBlobTensor = 1 << 24

// netBlob is the gob wire format of a network: layer specs plus parameter
// data, enough to rebuild an identical network without retraining — and,
// since version 1, optionally the training state (optimizer moments and rng
// stream positions) needed to *continue* training bit-identically.
type netBlob struct {
	InShape []int
	Layers  []layerBlob
	// Version is the wire-format version (0 for legacy blobs).
	Version int
	// Opt, when non-nil, carries the optimizer state captured by
	// SaveTraining.
	Opt *optBlob
	// Streams carries the positions of the rng streams passed to
	// SaveTraining, in argument order.
	Streams []rng.State
}

type layerBlob struct {
	Kind string
	// Conv fields.
	InC, OutC, KH, KW, Stride, Pad int
	// Pool fields.
	Size, PoolStride int
	// Dense fields.
	In, Out int
	// Params holds each parameter tensor's data in Params() order.
	Params [][]float64
	// ParamShapes records each parameter tensor's full shape (version ≥ 1).
	// Load rejects a blob whose recorded shapes disagree with the geometry
	// fields — the defense against a tampered blob whose swapped KH/KW or
	// edited Stride/Pad would otherwise reinterpret the same flat data as a
	// different network.
	ParamShapes [][]int
}

// optBlob is the serialized optimizer state: hyperparameters plus the
// per-parameter buffers in network Params() order (nil entries mean the
// optimizer had not touched that parameter yet).
type optBlob struct {
	Kind                string // "sgd" or "adam"
	LR, Momentum, Decay float64
	Beta1, Beta2, Eps   float64
	Step                int
	Vel                 [][]float64 // SGD momentum buffers
	M, V                [][]float64 // Adam moment estimates
}

// Optimizer is the interface SGD and Adam share; SaveTraining accepts either.
type Optimizer interface {
	StepNetwork(n *Network, batch int)
}

// Save writes the network (architecture and weights) to w.
func (n *Network) Save(w io.Writer) error {
	blob, err := n.blob(nil)
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(blob)
}

// SaveTraining writes the network plus everything needed to resume training
// bit-identically: the optimizer's state (SGD momentum, or Adam moments and
// step count) and the positions of the given rng streams (typically the fit
// stream, so the resumed run replays the same shuffles). LoadTraining is the
// inverse.
func (n *Network) SaveTraining(w io.Writer, opt Optimizer, streams ...*rng.Stream) error {
	blob, err := n.blob(opt)
	if err != nil {
		return err
	}
	for _, s := range streams {
		blob.Streams = append(blob.Streams, s.State())
	}
	return gob.NewEncoder(w).Encode(blob)
}

// blob builds the wire representation of n, including opt's state when
// non-nil.
func (n *Network) blob(opt Optimizer) (*netBlob, error) {
	blob := &netBlob{InShape: append([]int(nil), n.inShape...), Version: blobVersion}
	for _, l := range n.layers {
		var lb layerBlob
		switch v := l.(type) {
		case *Conv2D:
			lb = layerBlob{Kind: "conv", InC: v.InC, OutC: v.OutC, KH: v.KH, KW: v.KW, Stride: v.Stride, Pad: v.Pad}
		case *MaxPool2D:
			lb = layerBlob{Kind: "maxpool", Size: v.Size, PoolStride: v.Stride}
		case *AvgPool2D:
			lb = layerBlob{Kind: "avgpool", Size: v.Size, PoolStride: v.Stride}
		case *Dense:
			lb = layerBlob{Kind: "dense", In: v.In, Out: v.Out}
		case *ReLU:
			lb = layerBlob{Kind: "relu"}
		case *Flatten:
			lb = layerBlob{Kind: "flatten"}
		default:
			return nil, fmt.Errorf("cnn: cannot serialize layer %T", l)
		}
		if pl, ok := l.(ParamLayer); ok {
			for _, p := range pl.Params() {
				lb.Params = append(lb.Params, append([]float64(nil), p.Data()...))
				lb.ParamShapes = append(lb.ParamShapes, append([]int(nil), p.Shape()...))
			}
		}
		blob.Layers = append(blob.Layers, lb)
	}
	if opt != nil {
		params := n.paramTensors()
		switch o := opt.(type) {
		case *SGD:
			blob.Opt = &optBlob{
				Kind: "sgd", LR: o.LR, Momentum: o.Momentum, Decay: o.Decay,
				Vel: o.VelocitySnapshot(params),
			}
		case *Adam:
			m, v := o.MomentSnapshot(params)
			blob.Opt = &optBlob{
				Kind: "adam", LR: o.LR, Beta1: o.Beta1, Beta2: o.Beta2, Eps: o.Eps,
				Step: o.StepCount(), M: m, V: v,
			}
		default:
			return nil, fmt.Errorf("cnn: cannot serialize optimizer %T", opt)
		}
	}
	return blob, nil
}

// validateLayerBlob rejects impossible layer geometry before any constructor
// runs. The constructors panic on invalid geometry — correct for programming
// errors, wrong for untrusted input — so the decoder screens every field
// first and returns descriptive errors instead.
func validateLayerBlob(i int, lb layerBlob) error {
	switch lb.Kind {
	case "conv":
		if lb.InC <= 0 || lb.OutC <= 0 || lb.KH <= 0 || lb.KW <= 0 || lb.Stride <= 0 || lb.Pad < 0 {
			return fmt.Errorf("cnn: layer %d: invalid conv geometry (inC=%d outC=%d kh=%d kw=%d stride=%d pad=%d)",
				i, lb.InC, lb.OutC, lb.KH, lb.KW, lb.Stride, lb.Pad)
		}
		if n := int64(lb.InC) * int64(lb.OutC) * int64(lb.KH) * int64(lb.KW); n > maxBlobTensor {
			return fmt.Errorf("cnn: layer %d: conv kernel has %d weights (limit %d)", i, n, maxBlobTensor)
		}
	case "maxpool", "avgpool":
		if lb.Size <= 0 || lb.PoolStride <= 0 {
			return fmt.Errorf("cnn: layer %d: invalid pool geometry (size=%d stride=%d)", i, lb.Size, lb.PoolStride)
		}
	case "dense":
		if lb.In <= 0 || lb.Out <= 0 {
			return fmt.Errorf("cnn: layer %d: invalid dense geometry (in=%d out=%d)", i, lb.In, lb.Out)
		}
		if n := int64(lb.In) * int64(lb.Out); n > maxBlobTensor {
			return fmt.Errorf("cnn: layer %d: dense has %d weights (limit %d)", i, n, maxBlobTensor)
		}
	case "relu", "flatten":
	default:
		return fmt.Errorf("cnn: unknown layer kind %q at %d", lb.Kind, i)
	}
	return nil
}

// decodeBlob decodes and fully validates a netBlob, rebuilding the network.
// Geometry errors — including shape-propagation failures that would panic in
// the constructors — come back as errors, never panics, so the decoder is
// safe on untrusted bytes (FuzzLoad enforces this).
func decodeBlob(r io.Reader) (*Network, *netBlob, error) {
	blob := new(netBlob)
	if err := gob.NewDecoder(r).Decode(blob); err != nil {
		return nil, nil, fmt.Errorf("cnn: decoding network: %w", err)
	}
	n, _, err := decodeNetBlob(blob)
	return n, blob, err
}

// decodeNetBlob validates an already-gob-decoded blob and rebuilds the
// network; the trainer checkpoint format embeds a netBlob inside a larger
// gob value and enters here directly.
func decodeNetBlob(blob *netBlob) (n *Network, _ *netBlob, err error) {
	if blob.Version < 0 || blob.Version > blobVersion {
		return nil, nil, fmt.Errorf("cnn: unsupported blob version %d (max %d)", blob.Version, blobVersion)
	}
	if len(blob.InShape) == 0 || len(blob.InShape) > 4 {
		return nil, nil, fmt.Errorf("cnn: blob input shape %v is unusable", blob.InShape)
	}
	inSize := int64(1)
	for _, d := range blob.InShape {
		if d <= 0 {
			return nil, nil, fmt.Errorf("cnn: blob input shape %v has a non-positive dimension", blob.InShape)
		}
		if inSize *= int64(d); inSize > maxBlobTensor {
			return nil, nil, fmt.Errorf("cnn: blob input shape %v exceeds %d elements", blob.InShape, maxBlobTensor)
		}
	}
	for i, lb := range blob.Layers {
		if err := validateLayerBlob(i, lb); err != nil {
			return nil, nil, err
		}
	}
	// The stack builds under a recover guard: per-field validation above
	// rules out the constructor panics, but shape propagation through
	// NewNetwork can still collapse (e.g. a pool larger than its input), and
	// that must surface as a decode error, not a crash.
	defer func() {
		if rec := recover(); rec != nil {
			n, err = nil, fmt.Errorf("cnn: blob describes an invalid network: %v", rec)
		}
	}()
	// Weights are overwritten below, so the init stream is irrelevant.
	stream := rng.New(0)
	var layers []Layer
	for i, lb := range blob.Layers {
		var l Layer
		switch lb.Kind {
		case "conv":
			l = NewConv2D(lb.InC, lb.OutC, lb.KH, lb.KW, lb.Stride, lb.Pad, stream)
		case "maxpool":
			l = NewMaxPool2D(lb.Size, lb.PoolStride)
		case "avgpool":
			l = NewAvgPool2D(lb.Size, lb.PoolStride)
		case "dense":
			l = NewDense(lb.In, lb.Out, stream)
		case "relu":
			l = NewReLU()
		case "flatten":
			l = NewFlatten()
		}
		if pl, ok := l.(ParamLayer); ok {
			params := pl.Params()
			if len(params) != len(lb.Params) {
				return nil, nil, fmt.Errorf("cnn: layer %d has %d params, blob has %d", i, len(params), len(lb.Params))
			}
			if blob.Version >= 1 && len(lb.ParamShapes) != len(params) {
				return nil, nil, fmt.Errorf("cnn: layer %d has %d params, blob records %d shapes", i, len(params), len(lb.ParamShapes))
			}
			for pi, p := range params {
				if len(lb.Params[pi]) != p.Size() {
					return nil, nil, fmt.Errorf("cnn: layer %d param %d size %d, blob has %d", i, pi, p.Size(), len(lb.Params[pi]))
				}
				if blob.Version >= 1 && !shapesEqual(lb.ParamShapes[pi], p.Shape()) {
					return nil, nil, fmt.Errorf("cnn: layer %d param %d shape %v, blob recorded %v (geometry fields disagree with the saved weights)",
						i, pi, p.Shape(), lb.ParamShapes[pi])
				}
				copy(p.Data(), lb.Params[pi])
			}
		}
		layers = append(layers, l)
	}
	return NewNetwork(blob.InShape, layers...), blob, nil
}

func shapesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// restoreOptimizer rebuilds the optimizer from ob against the network's
// parameter tensors.
func restoreOptimizer(n *Network, ob *optBlob) (Optimizer, error) {
	params := n.paramTensors()
	switch ob.Kind {
	case "sgd":
		o := NewSGD(ob.LR, ob.Momentum)
		o.Decay = ob.Decay
		if err := o.RestoreVelocity(params, ob.Vel); err != nil {
			return nil, err
		}
		return o, nil
	case "adam":
		o := NewAdam(ob.LR)
		o.Beta1, o.Beta2, o.Eps = ob.Beta1, ob.Beta2, ob.Eps
		if err := o.SetStepCount(ob.Step); err != nil {
			return nil, err
		}
		if err := o.RestoreMoments(params, ob.M, ob.V); err != nil {
			return nil, err
		}
		return o, nil
	default:
		return nil, fmt.Errorf("cnn: unknown optimizer kind %q", ob.Kind)
	}
}

// Load reads a network previously written by Save (any blob version). Any
// training state in the blob is ignored; use LoadTraining to recover it.
func Load(r io.Reader) (*Network, error) {
	n, _, err := decodeBlob(r)
	return n, err
}

// LoadTraining reads a blob written by SaveTraining and returns the rebuilt
// network, the restored optimizer (nil if the blob carries none), and fresh
// streams positioned exactly where the saved ones were. Training the result
// is bit-identical to continuing the original run.
func LoadTraining(r io.Reader) (*Network, Optimizer, []*rng.Stream, error) {
	n, blob, err := decodeBlob(r)
	if err != nil {
		return nil, nil, nil, err
	}
	var opt Optimizer
	if blob.Opt != nil {
		if opt, err = restoreOptimizer(n, blob.Opt); err != nil {
			return nil, nil, nil, err
		}
	}
	streams := make([]*rng.Stream, len(blob.Streams))
	for i, st := range blob.Streams {
		streams[i] = rng.FromState(st)
	}
	return n, opt, streams, nil
}

// RestoreTraining reads a blob written by SaveTraining *into* an existing
// network with the same architecture: parameter data is copied into n's own
// tensors (pointer identity preserved — conv replica hooks and cached
// executors stay valid) and the optimizer state is rebuilt keyed to those
// tensors. It returns the restored streams. MicroDeep's checkpoint path uses
// this; standalone callers usually want LoadTraining.
func (n *Network) RestoreTraining(r io.Reader, opt Optimizer) ([]*rng.Stream, error) {
	loaded, blob, err := decodeBlob(r)
	if err != nil {
		return nil, err
	}
	// Architecture must match exactly: same layer kinds, geometry, and
	// parameter shapes. Comparing the two blob-built stacks layer by layer
	// via their parameter tensors is sufficient — decodeBlob already proved
	// the loaded geometry self-consistent.
	lp, np := loaded.paramTensors(), n.paramTensors()
	if len(loaded.layers) != len(n.layers) || len(lp) != len(np) {
		return nil, fmt.Errorf("cnn: checkpoint network has %d layers/%d params, target has %d/%d",
			len(loaded.layers), len(lp), len(n.layers), len(np))
	}
	for i := range lp {
		if !shapesEqual(lp[i].Shape(), np[i].Shape()) {
			return nil, fmt.Errorf("cnn: checkpoint param %d shape %v, target has %v", i, lp[i].Shape(), np[i].Shape())
		}
	}
	for i := range lp {
		copy(np[i].Data(), lp[i].Data())
	}
	if blob.Opt != nil {
		if opt == nil {
			return nil, fmt.Errorf("cnn: checkpoint carries %s optimizer state but no optimizer was supplied", blob.Opt.Kind)
		}
		switch o := opt.(type) {
		case *SGD:
			if blob.Opt.Kind != "sgd" {
				return nil, fmt.Errorf("cnn: checkpoint has %s state, optimizer is SGD", blob.Opt.Kind)
			}
			o.LR, o.Momentum, o.Decay = blob.Opt.LR, blob.Opt.Momentum, blob.Opt.Decay
			if err := o.RestoreVelocity(np, blob.Opt.Vel); err != nil {
				return nil, err
			}
		case *Adam:
			if blob.Opt.Kind != "adam" {
				return nil, fmt.Errorf("cnn: checkpoint has %s state, optimizer is Adam", blob.Opt.Kind)
			}
			o.LR, o.Beta1, o.Beta2, o.Eps = blob.Opt.LR, blob.Opt.Beta1, blob.Opt.Beta2, blob.Opt.Eps
			if err := o.SetStepCount(blob.Opt.Step); err != nil {
				return nil, err
			}
			if err := o.RestoreMoments(np, blob.Opt.M, blob.Opt.V); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("cnn: cannot restore into optimizer %T", opt)
		}
	}
	streams := make([]*rng.Stream, len(blob.Streams))
	for i, st := range blob.Streams {
		streams[i] = rng.FromState(st)
	}
	return streams, nil
}
