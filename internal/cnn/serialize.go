package cnn

import (
	"encoding/gob"
	"fmt"
	"io"

	"zeiot/internal/rng"
)

// netBlob is the gob wire format of a network: layer specs plus parameter
// data, enough to rebuild an identical network without retraining.
type netBlob struct {
	InShape []int
	Layers  []layerBlob
}

type layerBlob struct {
	Kind string
	// Conv fields.
	InC, OutC, KH, KW, Stride, Pad int
	// Pool fields.
	Size, PoolStride int
	// Dense fields.
	In, Out int
	// Params holds each parameter tensor's data in Params() order.
	Params [][]float64
}

// Save writes the network (architecture and weights) to w.
func (n *Network) Save(w io.Writer) error {
	blob := netBlob{InShape: append([]int(nil), n.inShape...)}
	for _, l := range n.layers {
		var lb layerBlob
		switch v := l.(type) {
		case *Conv2D:
			lb = layerBlob{Kind: "conv", InC: v.InC, OutC: v.OutC, KH: v.KH, KW: v.KW, Stride: v.Stride, Pad: v.Pad}
		case *MaxPool2D:
			lb = layerBlob{Kind: "maxpool", Size: v.Size, PoolStride: v.Stride}
		case *AvgPool2D:
			lb = layerBlob{Kind: "avgpool", Size: v.Size, PoolStride: v.Stride}
		case *Dense:
			lb = layerBlob{Kind: "dense", In: v.In, Out: v.Out}
		case *ReLU:
			lb = layerBlob{Kind: "relu"}
		case *Flatten:
			lb = layerBlob{Kind: "flatten"}
		default:
			return fmt.Errorf("cnn: cannot serialize layer %T", l)
		}
		if pl, ok := l.(ParamLayer); ok {
			for _, p := range pl.Params() {
				lb.Params = append(lb.Params, append([]float64(nil), p.Data()...))
			}
		}
		blob.Layers = append(blob.Layers, lb)
	}
	return gob.NewEncoder(w).Encode(blob)
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	var blob netBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("cnn: decoding network: %w", err)
	}
	if len(blob.InShape) == 0 {
		return nil, fmt.Errorf("cnn: blob has no input shape")
	}
	// Weights are overwritten below, so the init stream is irrelevant.
	stream := rng.New(0)
	var layers []Layer
	for i, lb := range blob.Layers {
		var l Layer
		switch lb.Kind {
		case "conv":
			l = NewConv2D(lb.InC, lb.OutC, lb.KH, lb.KW, lb.Stride, lb.Pad, stream)
		case "maxpool":
			l = NewMaxPool2D(lb.Size, lb.PoolStride)
		case "avgpool":
			l = NewAvgPool2D(lb.Size, lb.PoolStride)
		case "dense":
			l = NewDense(lb.In, lb.Out, stream)
		case "relu":
			l = NewReLU()
		case "flatten":
			l = NewFlatten()
		default:
			return nil, fmt.Errorf("cnn: unknown layer kind %q at %d", lb.Kind, i)
		}
		if pl, ok := l.(ParamLayer); ok {
			params := pl.Params()
			if len(params) != len(lb.Params) {
				return nil, fmt.Errorf("cnn: layer %d has %d params, blob has %d", i, len(params), len(lb.Params))
			}
			for pi, p := range params {
				if len(lb.Params[pi]) != p.Size() {
					return nil, fmt.Errorf("cnn: layer %d param %d size %d, blob has %d", i, pi, p.Size(), len(lb.Params[pi]))
				}
				copy(p.Data(), lb.Params[pi])
			}
		}
		layers = append(layers, l)
	}
	return NewNetwork(blob.InShape, layers...), nil
}
