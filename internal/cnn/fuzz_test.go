package cnn

import (
	"bytes"
	"math"
	"testing"

	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// FuzzLoad feeds arbitrary bytes to the model decoder: it must never panic,
// only return errors for garbage.
func FuzzLoad(f *testing.F) {
	// Seed with a valid blob and some mutations of it.
	net := buildTinyNet(1)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not a gob at all"))
	if len(valid) > 10 {
		truncated := append([]byte(nil), valid[:len(valid)/2]...)
		f.Add(truncated)
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/3] ^= 0xff
		f.Add(flipped)
	}
	// A v1 training blob (optimizer state + stream positions) and a mutation
	// of it: the training-state decode paths must be panic-free too.
	opt := NewSGD(0.05, 0.9)
	samples := fuzzQuantSamples()[:8]
	net.Fit(samples[:6], 1, 2, opt, rng.New(5).Split("fit"))
	var tbuf bytes.Buffer
	if err := net.SaveTraining(&tbuf, opt, rng.New(5)); err != nil {
		f.Fatal(err)
	}
	training := tbuf.Bytes()
	f.Add(training)
	if len(training) > 10 {
		mangled := append([]byte(nil), training...)
		mangled[2*len(mangled)/3] ^= 0xff
		f.Add(mangled)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejection is the expected path for garbage
		}
		// A successful load must produce a usable network.
		if loaded == nil || len(loaded.InShape()) == 0 {
			t.Fatal("Load returned success with unusable network")
		}
	})
}

// FuzzQuantizedClassify drives a fixed trained quantized network with
// arbitrary inputs (including NaN/Inf-free extremes far outside the
// calibrated range): Classify must never panic, must stay in class range,
// and the input quantizer's round trip must stay within half a scale step
// for in-range values.
func FuzzQuantizedClassify(f *testing.F) {
	net := buildTinyNet(31)
	samples := fuzzQuantSamples()
	net.Fit(samples, 4, 8, NewSGD(0.05, 0.9), rng.New(17).Split("fit"))
	qn, err := QuantizeNetwork(net, samples)
	if err != nil {
		f.Fatal(err)
	}
	nclass := net.OutShape()[0]
	f.Add(0.0, 1.0, -1.0, 0.5)
	f.Add(1e6, -1e6, 1e-9, -1e-9)
	f.Add(127.0, -127.0, 3.14, -2.71)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		in := tensor.New(1, 6, 6)
		id := in.Data()
		seed := []float64{a, b, c, d}
		for i := range id {
			id[i] = seed[i%4] * (1 + float64(i)/36)
		}
		cls := qn.Classify(in)
		if cls < 0 || cls >= nclass {
			t.Fatalf("Classify = %d, want [0,%d)", cls, nclass)
		}
		// Round-trip bound on the input quantizer for in-range values.
		scale := qn.InScale()
		limit := 127 * scale
		for _, v := range id {
			if math.Abs(v) > limit {
				continue
			}
			q := clampRound8(v / scale)
			if diff := math.Abs(float64(q)*scale - v); diff > scale/2+1e-12 {
				t.Fatalf("round trip error %g > scale/2 = %g for %g", diff, scale/2, v)
			}
		}
	})
}

func fuzzQuantSamples() []Sample {
	s := rng.New(301)
	out := make([]Sample, 40)
	for i := range out {
		out[i] = Sample{Input: randomInput(s, 1, 6, 6), Label: i % 3}
	}
	return out
}
