package cnn

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the model decoder: it must never panic,
// only return errors for garbage.
func FuzzLoad(f *testing.F) {
	// Seed with a valid blob and some mutations of it.
	net := buildTinyNet(1)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not a gob at all"))
	if len(valid) > 10 {
		truncated := append([]byte(nil), valid[:len(valid)/2]...)
		f.Add(truncated)
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/3] ^= 0xff
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejection is the expected path for garbage
		}
		// A successful load must produce a usable network.
		if loaded == nil || len(loaded.InShape()) == 0 {
			t.Fatal("Load returned success with unusable network")
		}
	})
}
