// Package cnn implements a small, from-scratch convolutional neural network:
// Conv2D, MaxPool2D, Dense, ReLU, softmax cross-entropy, and SGD with
// momentum. It is the "standard CNN" baseline of the paper and the numeric
// core that package microdeep distributes across a wireless sensor network.
//
// Tensors flow through layers in (channels, height, width) layout; Dense
// layers operate on flattened 1-D activations. All layers record what they
// need during Forward so Backward can run without re-supplying inputs;
// a network therefore processes one sample at a time (mini-batches are
// accumulated by the optimizer), which keeps the per-unit computation model
// identical to the distributed execution in package microdeep.
//
// # Buffer ownership
//
// Layers keep reusable scratch arenas: the tensor returned by Forward (and
// by Backward) is owned by the layer and is overwritten by that layer's next
// Forward (Backward) call, and a layer caches a reference to — not a copy
// of — its forward input. Consequently: (1) results that must outlive the
// next call have to be Clone()d; (2) an input must stay unmodified until the
// matching Backward has run; (3) a layer instance may appear at most once in
// a network. This is what keeps the steady-state hot path allocation-free.
// For concurrent training, TrainEpochParallel gives every in-flight sample
// its own shadow layer stack (see shadowLayer).
package cnn

import (
	"fmt"
	"math"

	"zeiot/internal/tensor"
)

// Layer is one stage of the network.
type Layer interface {
	// Forward computes the layer output for in, caching whatever Backward
	// needs. The returned tensor is scratch owned by the layer (see the
	// package comment on buffer ownership).
	Forward(in *tensor.Tensor) *tensor.Tensor
	// Backward consumes dLoss/dOutput and returns dLoss/dInput, also
	// accumulating parameter gradients where applicable. The returned
	// tensor is scratch owned by the layer.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// OutShape returns the output shape for a given input shape.
	OutShape(in []int) []int
	// Name returns a short human-readable layer name.
	Name() string
}

// ParamLayer is a layer with trainable parameters.
type ParamLayer interface {
	Layer
	// Params returns the parameter tensors (mutated by optimizers).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned with Params. Gradients
	// accumulate across Backward calls until ZeroGrads.
	Grads() []*tensor.Tensor
	// ZeroGrads clears accumulated gradients.
	ZeroGrads()
}

// SpatialLayer is a layer whose output units sit at (channel, y, x)
// coordinates and read a bounded receptive field of input units. Package
// microdeep uses this to build the CNN unit graph it assigns to sensor
// nodes.
type SpatialLayer interface {
	Layer
	// Receptive returns, for output position (oy, ox), the inclusive input
	// window [y0,y1]×[x0,x1] it reads (all input channels).
	Receptive(oy, ox int) (y0, y1, x0, x1 int)
}

// shadowLayer is implemented by every built-in layer. shadow returns a
// layer that shares parameter and gradient tensors (and replica hooks) with
// the receiver but owns its forward/backward scratch state, so several
// samples can be in flight concurrently while gradients still reduce into
// the one canonical set of tensors.
type shadowLayer interface {
	shadow() Layer
}

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	out, gradIn *tensor.Tensor
	// Batched-path scratch (see batch.go).
	outB, gradInB *tensor.Tensor
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// shadow implements shadowLayer.
func (r *ReLU) shadow() Layer { return &ReLU{} }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer. The pass mask Backward needs is recovered from
// the cached output (out[i] > 0 exactly when in[i] > 0), so no separate mask
// array is maintained. The select is computed with bit masks: the sign test
// on activation-sized arrays is data-dependent, and the mispredicted branch
// was costing more than the arithmetic it guarded.
func (r *ReLU) Forward(in *tensor.Tensor) *tensor.Tensor {
	r.out = tensor.Ensure(r.out, in.Shape()...)
	data := r.out.Data()
	for i, v := range in.Data() {
		t := math.Float64bits(v)
		// keep = 1 iff v > 0: nonzero (t|-t has the top bit set) and the
		// sign bit clear. t&-keep is then v's bits or +0.
		keep := ((t | -t) >> 63) &^ (t >> 63)
		data[i] = math.Float64frombits(t & -keep)
	}
	return r.out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if r.out == nil || r.out.Size() != gradOut.Size() {
		panic(fmt.Sprintf("cnn: ReLU backward before forward (grad %d)", gradOut.Size()))
	}
	r.gradIn = tensor.Ensure(r.gradIn, gradOut.Shape()...)
	data := r.gradIn.Data()
	outd := r.out.Data()
	for i, g := range gradOut.Data() {
		// out is v or +0, so "did the unit fire" is just out != 0; the same
		// branchless select passes g through or writes +0.
		t := math.Float64bits(outd[i])
		mask := -((t | -t) >> 63)
		data[i] = math.Float64frombits(math.Float64bits(g) & mask)
	}
	return r.gradIn
}

// Flatten reshapes any input to a 1-D vector. Forward and Backward return
// zero-copy views over the input and gradient data respectively.
type Flatten struct {
	inShape     []int
	out, gradIn *tensor.Tensor
	// Batched-path scratch (see batch.go).
	bInShape      []int
	outB, gradInB *tensor.Tensor
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// shadow implements shadowLayer.
func (f *Flatten) shadow() Layer { return &Flatten{} }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// sameBacking reports whether two slices share the same backing array start
// and length — the cheap test that lets Flatten reuse its cached view.
func sameBacking(a, b []float64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// Forward implements Layer.
func (f *Flatten) Forward(in *tensor.Tensor) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], in.Shape()...)
	d := in.Data()
	if f.out == nil || !sameBacking(f.out.Data(), d) {
		f.out = tensor.FromSlice(d, len(d))
	}
	return f.out
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	d := gradOut.Data()
	if f.gradIn == nil || !sameBacking(f.gradIn.Data(), d) || !shapeEq(f.gradIn.Shape(), f.inShape) {
		f.gradIn = tensor.FromSlice(d, f.inShape...)
	}
	return f.gradIn
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
