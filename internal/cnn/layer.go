// Package cnn implements a small, from-scratch convolutional neural network:
// Conv2D, MaxPool2D, Dense, ReLU, softmax cross-entropy, and SGD with
// momentum. It is the "standard CNN" baseline of the paper and the numeric
// core that package microdeep distributes across a wireless sensor network.
//
// Tensors flow through layers in (channels, height, width) layout; Dense
// layers operate on flattened 1-D activations. All layers record what they
// need during Forward so Backward can run without re-supplying inputs;
// a network therefore processes one sample at a time (mini-batches are
// accumulated by the optimizer), which keeps the per-unit computation model
// identical to the distributed execution in package microdeep.
package cnn

import (
	"fmt"

	"zeiot/internal/tensor"
)

// Layer is one stage of the network.
type Layer interface {
	// Forward computes the layer output for in, caching whatever Backward
	// needs.
	Forward(in *tensor.Tensor) *tensor.Tensor
	// Backward consumes dLoss/dOutput and returns dLoss/dInput, also
	// accumulating parameter gradients where applicable.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// OutShape returns the output shape for a given input shape.
	OutShape(in []int) []int
	// Name returns a short human-readable layer name.
	Name() string
}

// ParamLayer is a layer with trainable parameters.
type ParamLayer interface {
	Layer
	// Params returns the parameter tensors (mutated by optimizers).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned with Params. Gradients
	// accumulate across Backward calls until ZeroGrads.
	Grads() []*tensor.Tensor
	// ZeroGrads clears accumulated gradients.
	ZeroGrads()
}

// SpatialLayer is a layer whose output units sit at (channel, y, x)
// coordinates and read a bounded receptive field of input units. Package
// microdeep uses this to build the CNN unit graph it assigns to sensor
// nodes.
type SpatialLayer interface {
	Layer
	// Receptive returns, for output position (oy, ox), the inclusive input
	// window [y0,y1]×[x0,x1] it reads (all input channels).
	Receptive(oy, ox int) (y0, y1, x0, x1 int)
}

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Layer.
func (r *ReLU) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	data := out.Data()
	if cap(r.mask) < len(data) {
		r.mask = make([]bool, len(data))
	}
	r.mask = r.mask[:len(data)]
	for i, v := range data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(r.mask) != gradOut.Size() {
		panic(fmt.Sprintf("cnn: ReLU backward before forward (mask %d, grad %d)", len(r.mask), gradOut.Size()))
	}
	in := gradOut.Clone()
	data := in.Data()
	for i := range data {
		if !r.mask[i] {
			data[i] = 0
		}
	}
	return in
}

// Flatten reshapes any input to a 1-D vector.
type Flatten struct {
	inShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// Forward implements Layer.
func (f *Flatten) Forward(in *tensor.Tensor) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], in.Shape()...)
	return in.Clone().Reshape(in.Size())
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Clone().Reshape(f.inShape...)
}
