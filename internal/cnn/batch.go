package cnn

// Batched training engine: im2col/GEMM kernels that process a block of B
// samples per layer call instead of one, bit-identical to the per-sample
// path.
//
// # Packed layouts
//
// Spatial activations travel as 4-D (C, B, H, W) tensors — channel-major
// with the batch dimension second, so each (channel, sample) plane is a
// contiguous H×W run and the flattened (C, B·H·W) view is exactly the GEMM
// output layout of the convolution. Flat activations travel as 2-D (B, F)
// tensors, one row per sample. Flatten converts between the two.
//
// # Bit-identity argument
//
// TrainEpoch is the reference. Its result is fixed by the per-element
// elementary accumulation order: every output/gradient tensor element is an
// independent accumulator, float64 stores are exact (no extended precision),
// so any reorganization that feeds each element the same terms in the same
// order produces the same bits. The batched kernels preserve that order
// everywhere:
//
//   - Conv forward: each output element is seeded with its bias and then
//     receives its im2col column terms in ascending (ic, ky, kx) order via
//     MatMulAddInto — the serial loop's exact order. Padding cells hold 0 in
//     the patch matrix, so the GEMM adds w·0 terms the serial path skips;
//     adding ±0 never changes a sum that is not -0.0, and the running sums
//     here cannot reach -0.0 (IEEE-754 round-to-nearest only yields -0.0
//     from (-0.0)+(-0.0)).
//   - Conv backward: gradB/gradW/gradIn keep the serial sparse loops with
//     the block's samples outermost, so each element sees its contributions
//     in (sample, oy, ox, oc) order — the order TrainEpoch produces across
//     consecutive samples.
//   - Dense: forward, the weight-gradient GEMM and the input-gradient GEMM
//     all accumulate in ascending feature/sample/output order, matching the
//     serial loops term for term (zero-skip differences are ±0 no-ops as
//     above, on accumulators that start at +0).
//   - ReLU/pooling/flatten: element-wise or per-plane operations applied in
//     the serial scan order; only the memory layout changes.
//
// Within one optimizer mini-batch the engine runs kernel-sized blocks in
// ascending sample order, so gradients accumulate across blocks exactly as
// they do across samples. When composed with workers, the forward passes of
// a mini-batch's blocks run concurrently on shadow layer stacks (as in
// TrainEpochParallelFunc), and the backward reductions then run sequentially
// in block order — hence bit-identical at any worker count.

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"zeiot/internal/tensor"
)

// batchLayer is implemented by layers that can process a packed block of
// samples in one call. forwardBatch consumes a packed batch (spatial
// (C,B,H,W) or flat (B,F)) and returns the packed outputs; backwardBatch
// consumes packed output gradients, accumulates parameter gradients in the
// same per-element order as per-sample Backward over the block's samples in
// order, and returns the packed input gradients (nil when withInGrad is
// false). Both return scratch owned by the layer, with the same ownership
// rules as Forward/Backward.
type batchLayer interface {
	supportsBatch() bool
	forwardBatch(in *tensor.Tensor) *tensor.Tensor
	backwardBatch(gradOut *tensor.Tensor, withInGrad bool) *tensor.Tensor
}

// ensureView2 returns a cached 2-D tensor viewing data, rebuilding the
// wrapper only when the backing array or shape changed (so steady-state
// blocks allocate nothing).
func ensureView2(v *tensor.Tensor, data []float64, r, c int) *tensor.Tensor {
	if v != nil && sameBacking(v.Data(), data) && v.Dim(0) == r && v.Dim(1) == c {
		return v
	}
	return tensor.FromSlice(data, r, c)
}

// ---------------------------------------------------------------------------
// Conv2D

// supportsBatch implements batchLayer: per-position kernel replicas (the
// MicroDeep local-update mode) make a shared-weight GEMM impossible, so
// hooked layers fall back to the per-sample paths.
func (c *Conv2D) supportsBatch() bool { return c.kernelFor == nil }

// im2col packs the batched input (InC, B, H, W) into the patch matrix
// (InC·KH·KW, B·oh·ow): row q = (ic, ky, kx) holds, for every flattened
// output position p = (b, oy, ox), the input value under that kernel offset,
// with zeros where the window reads padding.
func (c *Conv2D) im2col(ind []float64, bsz, h, w, oh, ow int) {
	pd := c.patch.Data()
	bp := bsz * oh * ow
	q := 0
	for ic := 0; ic < c.InC; ic++ {
		for ky := 0; ky < c.KH; ky++ {
			for kx := 0; kx < c.KW; kx++ {
				qrow := pd[q*bp : (q+1)*bp]
				q++
				for b := 0; b < bsz; b++ {
					plane := ind[(ic*bsz+b)*h*w : (ic*bsz+b+1)*h*w]
					for oy := 0; oy < oh; oy++ {
						dst := qrow[(b*oh+oy)*ow : (b*oh+oy)*ow+ow]
						iy := oy*c.Stride - c.Pad + ky
						if iy < 0 || iy >= h {
							clear(dst)
							continue
						}
						row := plane[iy*w : (iy+1)*w]
						if c.Stride == 1 {
							// In-range columns: 0 <= ox-Pad+kx < w.
							lo := c.Pad - kx
							if lo < 0 {
								lo = 0
							}
							hi := w + c.Pad - kx
							if hi > ow {
								hi = ow
							}
							if hi < lo {
								hi = lo
							}
							clear(dst[:lo])
							copy(dst[lo:hi], row[lo-c.Pad+kx:hi-c.Pad+kx])
							clear(dst[hi:])
							continue
						}
						for ox := range dst {
							ix := ox*c.Stride - c.Pad + kx
							if ix < 0 || ix >= w {
								dst[ox] = 0
							} else {
								dst[ox] = row[ix]
							}
						}
					}
				}
			}
		}
	}
}

// forwardBatch implements batchLayer: one bias-seeded GEMM
// (OutC, CKK) × (CKK, B·oh·ow) per block.
func (c *Conv2D) forwardBatch(in *tensor.Tensor) *tensor.Tensor {
	return c.forwardBatchImpl(in, false)
}

// forwardBatchReLU is forwardBatch with the following ReLU layer fused into
// the GEMM's final store (see forwardBatchAll); the returned block already
// holds the activated values.
func (c *Conv2D) forwardBatchReLU(in *tensor.Tensor) *tensor.Tensor {
	return c.forwardBatchImpl(in, true)
}

func (c *Conv2D) forwardBatchImpl(in *tensor.Tensor, relu bool) *tensor.Tensor {
	if in.Dims() != 4 || in.Dim(0) != c.InC {
		panic(fmt.Sprintf("cnn: batched conv input shape %v, want (%d,B,H,W)", in.Shape(), c.InC))
	}
	bsz, h, w := in.Dim(1), in.Dim(2), in.Dim(3)
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: conv output collapses for input %v", in.Shape()))
	}
	c.lastInB = in
	c.outB = tensor.Ensure(c.outB, c.OutC, bsz, oh, ow)
	if c.InC == 1 && c.KH == 3 && c.KW == 3 && c.Stride == 1 && c.Pad == 1 && h >= 3 && w >= 3 {
		c.forwardDirect3x1(in.Data(), c.outB.Data(), bsz, h, w, relu)
		return c.outB
	}
	bp := bsz * oh * ow
	ckk := c.InC * c.KH * c.KW
	c.patch = tensor.Ensure(c.patch, ckk, bp)
	c.im2col(in.Data(), bsz, h, w, oh, ow)
	c.out2 = ensureView2(c.out2, c.outB.Data(), c.OutC, bp)
	c.w2 = ensureView2(c.w2, c.weight.Data(), c.OutC, ckk)
	tensor.MatMulBiasInto(c.out2, c.w2, c.patch, c.bias.Data(), relu)
	return c.outB
}

// forwardDirect3x1 is the im2col-free fast path for single-input-channel
// 3×3/stride-1/pad-1 convolutions: the nine weights stay in registers and
// slide over three input row slices per output row, writing each output (and
// its fused ReLU) in one pass with no patch matrix. Every output element
// still accumulates bias first and then its window terms in (ky, kx)
// ascending order with the padding terms skipped — the serial loop's exact
// sequence, so the result is bit-identical to the GEMM path (which adds the
// padding terms as ±0 no-ops instead).
func (c *Conv2D) forwardDirect3x1(ind, outd []float64, bsz, h, w int, relu bool) {
	chw := h * w
	wd := c.weight.Data()
	bd := c.bias.Data()
	for oc := 0; oc < c.OutC; oc++ {
		bias := bd[oc]
		k := wd[oc*9 : oc*9+9]
		k0, k1, k2 := k[0], k[1], k[2]
		k3, k4, k5 := k[3], k[4], k[5]
		k6, k7, k8 := k[6], k[7], k[8]
		for b := 0; b < bsz; b++ {
			plane := ind[b*chw : (b+1)*chw]
			od := outd[(oc*bsz+b)*chw : (oc*bsz+b+1)*chw]
			for y := 0; y < h; y++ {
				orow := od[y*w : y*w+w]
				iy := y - 1
				switch {
				case iy < 0:
					// Top row: window rows 1,2 over input rows 0,1.
					r1 := plane[:w]
					r2 := plane[w : 2*w]
					v := bias
					v += k4 * r1[0]
					v += k5 * r1[1]
					v += k7 * r2[0]
					v += k8 * r2[1]
					if relu {
						v = reluMask(v)
					}
					orow[0] = v
					for x := 1; x < w-1; x++ {
						j := x - 1
						v := bias
						v += k3 * r1[j]
						v += k4 * r1[j+1]
						v += k5 * r1[j+2]
						v += k6 * r2[j]
						v += k7 * r2[j+1]
						v += k8 * r2[j+2]
						if relu {
							v = reluMask(v)
						}
						orow[x] = v
					}
					v = bias
					v += k3 * r1[w-2]
					v += k4 * r1[w-1]
					v += k6 * r2[w-2]
					v += k7 * r2[w-1]
					if relu {
						v = reluMask(v)
					}
					orow[w-1] = v
				case iy+3 > h:
					// Bottom row: window rows 0,1 over input rows h-2,h-1.
					r0 := plane[(h-2)*w : (h-1)*w]
					r1 := plane[(h-1)*w : h*w]
					v := bias
					v += k1 * r0[0]
					v += k2 * r0[1]
					v += k4 * r1[0]
					v += k5 * r1[1]
					if relu {
						v = reluMask(v)
					}
					orow[0] = v
					for x := 1; x < w-1; x++ {
						j := x - 1
						v := bias
						v += k0 * r0[j]
						v += k1 * r0[j+1]
						v += k2 * r0[j+2]
						v += k3 * r1[j]
						v += k4 * r1[j+1]
						v += k5 * r1[j+2]
						if relu {
							v = reluMask(v)
						}
						orow[x] = v
					}
					v = bias
					v += k0 * r0[w-2]
					v += k1 * r0[w-1]
					v += k3 * r1[w-2]
					v += k4 * r1[w-1]
					if relu {
						v = reluMask(v)
					}
					orow[w-1] = v
				default:
					r0 := plane[iy*w : iy*w+w]
					r1 := plane[(iy+1)*w : (iy+2)*w]
					r2 := plane[(iy+2)*w : (iy+3)*w]
					v := bias
					v += k1 * r0[0]
					v += k2 * r0[1]
					v += k4 * r1[0]
					v += k5 * r1[1]
					v += k7 * r2[0]
					v += k8 * r2[1]
					if relu {
						v = reluMask(v)
					}
					orow[0] = v
					// Interior, two outputs per pass: windows at x and x+1
					// share four of their six loads per input row.
					x := 1
					for ; x+1 < w-1; x += 2 {
						j := x - 1
						// Highest index first: one bounds check covers the
						// row's remaining three loads.
						a3 := r0[j+3]
						a0, a1, a2 := r0[j], r0[j+1], r0[j+2]
						b3 := r1[j+3]
						b0, b1, b2 := r1[j], r1[j+1], r1[j+2]
						c3 := r2[j+3]
						c0, c1, c2 := r2[j], r2[j+1], r2[j+2]
						v := bias
						v += k0 * a0
						v += k1 * a1
						v += k2 * a2
						v += k3 * b0
						v += k4 * b1
						v += k5 * b2
						v += k6 * c0
						v += k7 * c1
						v += k8 * c2
						u := bias
						u += k0 * a1
						u += k1 * a2
						u += k2 * a3
						u += k3 * b1
						u += k4 * b2
						u += k5 * b3
						u += k6 * c1
						u += k7 * c2
						u += k8 * c3
						if relu {
							v = reluMask(v)
							u = reluMask(u)
						}
						orow[x] = v
						orow[x+1] = u
					}
					for ; x < w-1; x++ {
						j := x - 1
						v := bias
						v += k0 * r0[j]
						v += k1 * r0[j+1]
						v += k2 * r0[j+2]
						v += k3 * r1[j]
						v += k4 * r1[j+1]
						v += k5 * r1[j+2]
						v += k6 * r2[j]
						v += k7 * r2[j+1]
						v += k8 * r2[j+2]
						if relu {
							v = reluMask(v)
						}
						orow[x] = v
					}
					v = bias
					v += k0 * r0[w-2]
					v += k1 * r0[w-1]
					v += k3 * r1[w-2]
					v += k4 * r1[w-1]
					v += k6 * r2[w-2]
					v += k7 * r2[w-1]
					if relu {
						v = reluMask(v)
					}
					orow[w-1] = v
				}
			}
		}
	}
}

// backwardBatch implements batchLayer. gradB accumulates per channel over
// the flattened (b, oy, ox) gradient row; gradW and gradIn keep the serial
// sparse gather/scatter loops with samples outermost (see scatterBatch).
func (c *Conv2D) backwardBatch(gradOut *tensor.Tensor, withInGrad bool) *tensor.Tensor {
	if c.lastInB == nil {
		panic("cnn: Conv2D batched backward before forward")
	}
	in := c.lastInB
	bsz, h, w := in.Dim(1), in.Dim(2), in.Dim(3)
	oh, ow := gradOut.Dim(2), gradOut.Dim(3)
	god := gradOut.Data()
	bp := bsz * oh * ow
	gbd := c.gradB.Data()
	for oc := 0; oc < c.OutC; oc++ {
		s := gbd[oc]
		for _, g := range god[oc*bp : (oc+1)*bp] {
			s += g
		}
		gbd[oc] = s
	}
	var gid []float64
	if withInGrad {
		c.gradInB = tensor.Ensure(c.gradInB, c.InC, bsz, h, w)
		c.gradInB.Zero()
		gid = c.gradInB.Data()
	}
	c.scatterBatch(gid, god, in.Data(), bsz, h, w, oh, ow)
	if withInGrad {
		return c.gradInB
	}
	return nil
}

// scatterBatch accumulates the weight gradients (gathering from the packed
// input) and, when gid is non-nil, the input gradients (scattering through
// the shared kernel) for a packed block. Loop order is samples outermost,
// then (oy, ox, oc) exactly as backwardInto, so every gradW/gradIn element
// receives the same contributions in the same order as consecutive
// per-sample Backward calls. Positions whose gradient is zero in every
// channel are skipped before any window work, and full 3×3/stride-1 windows
// unroll.
func (c *Conv2D) scatterBatch(gid, god, ind []float64, bsz, h, w, oh, ow int) {
	khkw := c.KH * c.KW
	kcs := c.InC * khkw
	kd := c.weight.Data()
	gwd := c.gradW.Data()
	bp := bsz * oh * ow
	fast3 := c.KH == 3 && c.KW == 3 && c.Stride == 1
	chw := h * w
	for b := 0; b < bsz; b++ {
		for oy := 0; oy < oh; oy++ {
			ky0, ky1 := kernelWindow(oy, c.Stride, c.Pad, c.KH, h)
			iyBase := oy*c.Stride - c.Pad
			for ox := 0; ox < ow; ox++ {
				p := (b*oh+oy)*ow + ox
				any := false
				for oc := 0; oc < c.OutC; oc++ {
					if god[oc*bp+p] != 0 {
						any = true
						break
					}
				}
				if !any {
					continue
				}
				kx0, kx1 := kernelWindow(ox, c.Stride, c.Pad, c.KW, w)
				ixBase := ox*c.Stride - c.Pad
				if fast3 && ky0 == 0 && ky1 == 3 && kx0 == 0 && kx1 == 3 {
					for oc := 0; oc < c.OutC; oc++ {
						g := god[oc*bp+p]
						if g == 0 {
							continue
						}
						kocBase := oc * kcs
						for ic := 0; ic < c.InC; ic++ {
							o := (ic*bsz+b)*chw + iyBase*w + ixBase
							kOff := kocBase + ic*9
							i0 := ind[o : o+3]
							i1 := ind[o+w : o+w+3]
							i2 := ind[o+2*w : o+2*w+3]
							gk := gwd[kOff : kOff+9]
							gk[0] += g * i0[0]
							gk[1] += g * i0[1]
							gk[2] += g * i0[2]
							gk[3] += g * i1[0]
							gk[4] += g * i1[1]
							gk[5] += g * i1[2]
							gk[6] += g * i2[0]
							gk[7] += g * i2[1]
							gk[8] += g * i2[2]
							if gid == nil {
								continue
							}
							k := kd[kOff : kOff+9]
							g0 := gid[o : o+3]
							g1 := gid[o+w : o+w+3]
							g2 := gid[o+2*w : o+2*w+3]
							g0[0] += g * k[0]
							g0[1] += g * k[1]
							g0[2] += g * k[2]
							g1[0] += g * k[3]
							g1[1] += g * k[4]
							g1[2] += g * k[5]
							g2[0] += g * k[6]
							g2[1] += g * k[7]
							g2[2] += g * k[8]
						}
					}
					continue
				}
				for oc := 0; oc < c.OutC; oc++ {
					g := god[oc*bp+p]
					if g == 0 {
						continue
					}
					kocBase := oc * kcs
					for ic := 0; ic < c.InC; ic++ {
						icBase := (ic*bsz + b) * chw
						kicBase := kocBase + ic*khkw
						for ky := ky0; ky < ky1; ky++ {
							iOff := icBase + (iyBase+ky)*w + ixBase
							kOff := kicBase + ky*c.KW
							if gid == nil {
								for kx := kx0; kx < kx1; kx++ {
									gwd[kOff+kx] += g * ind[iOff+kx]
								}
								continue
							}
							for kx := kx0; kx < kx1; kx++ {
								gwd[kOff+kx] += g * ind[iOff+kx]
								gid[iOff+kx] += g * kd[kOff+kx]
							}
						}
					}
				}
			}
		}
	}
}

// sparseWinner is one routed max-pool gradient in a packed block: the conv
// output position that won its pooling window (channel oc, sample b, spatial
// y/x) and the gradient it carries. The emission order — oc-major, then
// sample, then (y, x) ascending after the per-plane sort — is exactly the
// per-element accumulation order of the dense scatter, which is what keeps
// the sparse handoff bit-identical.
type sparseWinner struct {
	oc, b, y, x int32
	g           float64
}

// backwardBatchSparse consumes the pooling layer's routed winner list
// directly (see MaxPool2D.backwardBatchSparse): gradB and gradW accumulate
// only the positions that actually carry gradient, in the same per-element
// order as the dense scatter, without ever materializing or re-scanning the
// zero-dominated gradient plane. Only valid as the stack's first layer (no
// input gradient is produced).
func (c *Conv2D) backwardBatchSparse(winners []sparseWinner) {
	if c.lastInB == nil {
		panic("cnn: Conv2D batched backward before forward")
	}
	in := c.lastInB
	bsz, h, w := in.Dim(1), in.Dim(2), in.Dim(3)
	ind := in.Data()
	gbd := c.gradB.Data()
	gwd := c.gradW.Data()
	khkw := c.KH * c.KW
	kcs := c.InC * khkw
	chw := h * w
	fast3 := c.KH == 3 && c.KW == 3 && c.Stride == 1
	for i := range winners {
		s := &winners[i]
		g := s.g
		oc := int(s.oc)
		gbd[oc] += g
		oy, ox := int(s.y), int(s.x)
		iyBase := oy*c.Stride - c.Pad
		ixBase := ox*c.Stride - c.Pad
		kocBase := oc * kcs
		if fast3 && iyBase >= 0 && ixBase >= 0 && iyBase+3 <= h && ixBase+3 <= w {
			for ic := 0; ic < c.InC; ic++ {
				o := (ic*bsz+int(s.b))*chw + iyBase*w + ixBase
				kOff := kocBase + ic*9
				i0 := ind[o : o+3]
				i1 := ind[o+w : o+w+3]
				i2 := ind[o+2*w : o+2*w+3]
				gk := gwd[kOff : kOff+9]
				gk[0] += g * i0[0]
				gk[1] += g * i0[1]
				gk[2] += g * i0[2]
				gk[3] += g * i1[0]
				gk[4] += g * i1[1]
				gk[5] += g * i1[2]
				gk[6] += g * i2[0]
				gk[7] += g * i2[1]
				gk[8] += g * i2[2]
			}
			continue
		}
		ky0, ky1 := kernelWindow(oy, c.Stride, c.Pad, c.KH, h)
		kx0, kx1 := kernelWindow(ox, c.Stride, c.Pad, c.KW, w)
		for ic := 0; ic < c.InC; ic++ {
			icBase := (ic*bsz + int(s.b)) * chw
			kicBase := kocBase + ic*khkw
			for ky := ky0; ky < ky1; ky++ {
				iOff := icBase + (iyBase+ky)*w + ixBase
				kOff := kicBase + ky*c.KW
				for kx := kx0; kx < kx1; kx++ {
					gwd[kOff+kx] += g * ind[iOff+kx]
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Dense

func (d *Dense) supportsBatch() bool { return true }

// forwardBatch implements batchLayer: out = in × Wᵀ + bias as one GEMM. The
// transposed weights let the GEMM stream independent output elements —
// escaping the serial dot product's add-latency chain — while each element
// still accumulates its terms in ascending feature order, then adds the
// bias last, exactly like the serial loop. The transpose is cached until the
// engine invalidates it after an optimizer step.
func (d *Dense) forwardBatch(in *tensor.Tensor) *tensor.Tensor {
	return d.forwardBatchImpl(in, false)
}

// forwardBatchReLU is forwardBatch with the following ReLU layer fused into
// the bias pass (see forwardBatchAll).
func (d *Dense) forwardBatchReLU(in *tensor.Tensor) *tensor.Tensor {
	return d.forwardBatchImpl(in, true)
}

func (d *Dense) forwardBatchImpl(in *tensor.Tensor, relu bool) *tensor.Tensor {
	if in.Dims() != 2 || in.Dim(1) != d.In {
		panic(fmt.Sprintf("cnn: batched dense input shape %v, want (B,%d)", in.Shape(), d.In))
	}
	bsz := in.Dim(0)
	d.lastInB = in
	d.wT = tensor.Ensure(d.wT, d.In, d.Out)
	if !d.wTok {
		wtd := d.wT.Data()
		wd := d.weight.Data()
		for o := 0; o < d.Out; o++ {
			row := wd[o*d.In : (o+1)*d.In]
			for i, v := range row {
				wtd[i*d.Out+o] = v
			}
		}
		d.wTok = true
	}
	d.outB = tensor.Ensure(d.outB, bsz, d.Out)
	d.outB.Zero()
	tensor.MatMulAddInto(d.outB, in, d.wT)
	od := d.outB.Data()
	bd := d.bias.Data()
	for b := 0; b < bsz; b++ {
		row := od[b*d.Out : (b+1)*d.Out]
		if relu {
			for o, bv := range bd {
				row[o] = reluMask(row[o] + bv)
			}
			continue
		}
		for o, bv := range bd {
			row[o] += bv
		}
	}
	return d.outB
}

// backwardBatch implements batchLayer. gradB reduces the block's gradient
// rows in sample order; gradW runs as one GEMM over the transposed block
// gradient (terms arrive per element in ascending sample order — the serial
// order — with the serial path's zero-skips appearing as exact ±0 no-ops);
// gradIn is gradOut × W via MatMulInto, whose zero-skip and ascending-output
// accumulation match the serial input-gradient loop term for term.
func (d *Dense) backwardBatch(gradOut *tensor.Tensor, withInGrad bool) *tensor.Tensor {
	if d.lastInB == nil {
		panic("cnn: Dense batched backward before forward")
	}
	bsz := gradOut.Dim(0)
	god := gradOut.Data()
	gbd := d.gradB.Data()
	for b := 0; b < bsz; b++ {
		row := god[b*d.Out : (b+1)*d.Out]
		for o, g := range row {
			gbd[o] += g
		}
	}
	d.godT = tensor.Ensure(d.godT, d.Out, bsz)
	gtd := d.godT.Data()
	for b := 0; b < bsz; b++ {
		row := god[b*d.Out : (b+1)*d.Out]
		for o, g := range row {
			gtd[o*bsz+b] = g
		}
	}
	d.gw2 = ensureView2(d.gw2, d.gradW.Data(), d.Out, d.In)
	tensor.MatMulAddInto(d.gw2, d.godT, d.lastInB)
	if !withInGrad {
		return nil
	}
	d.gradInB = tensor.MatMulInto(d.gradInB, gradOut, d.weight)
	return d.gradInB
}

// ---------------------------------------------------------------------------
// ReLU

func (r *ReLU) supportsBatch() bool { return true }

// reluMask is the branchless ReLU select shared by the fused kernels: v for
// v > 0, +0.0 otherwise — bit-for-bit the serial Forward's arithmetic.
func reluMask(v float64) float64 {
	t := math.Float64bits(v)
	keep := ((t | -t) >> 63) &^ (t >> 63)
	return math.Float64frombits(t & -keep)
}

// forwardBatch implements batchLayer: the element-wise branchless select of
// Forward on the packed block.
func (r *ReLU) forwardBatch(in *tensor.Tensor) *tensor.Tensor {
	r.outB = tensor.Ensure(r.outB, in.Shape()...)
	data := r.outB.Data()
	for i, v := range in.Data() {
		t := math.Float64bits(v)
		keep := ((t | -t) >> 63) &^ (t >> 63)
		data[i] = math.Float64frombits(t & -keep)
	}
	return r.outB
}

// backwardBatch implements batchLayer.
func (r *ReLU) backwardBatch(gradOut *tensor.Tensor, withInGrad bool) *tensor.Tensor {
	if !withInGrad {
		return nil
	}
	if r.outB == nil || r.outB.Size() != gradOut.Size() {
		panic(fmt.Sprintf("cnn: batched ReLU backward before forward (grad %d)", gradOut.Size()))
	}
	r.gradInB = tensor.Ensure(r.gradInB, gradOut.Shape()...)
	data := r.gradInB.Data()
	outd := r.outB.Data()
	for i, g := range gradOut.Data() {
		t := math.Float64bits(outd[i])
		mask := -((t | -t) >> 63)
		data[i] = math.Float64frombits(math.Float64bits(g) & mask)
	}
	return r.gradInB
}

// ---------------------------------------------------------------------------
// Flatten

func (f *Flatten) supportsBatch() bool { return true }

// forwardBatch implements batchLayer: (C,B,H,W) gathers to (B, C·H·W), each
// row the row-major (C,H,W) vector the serial Flatten produces; an already
// flat (B,F) block passes through unchanged.
func (f *Flatten) forwardBatch(in *tensor.Tensor) *tensor.Tensor {
	f.bInShape = append(f.bInShape[:0], in.Shape()...)
	if in.Dims() == 2 {
		return in
	}
	if in.Dims() != 4 {
		panic(fmt.Sprintf("cnn: batched flatten input shape %v, want (C,B,H,W) or (B,F)", in.Shape()))
	}
	ch, bsz, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	hw := h * w
	n := ch * hw
	f.outB = tensor.Ensure(f.outB, bsz, n)
	od := f.outB.Data()
	id := in.Data()
	for b := 0; b < bsz; b++ {
		dst := od[b*n : (b+1)*n]
		for c := 0; c < ch; c++ {
			copy(dst[c*hw:(c+1)*hw], id[(c*bsz+b)*hw:(c*bsz+b+1)*hw])
		}
	}
	return f.outB
}

// backwardBatch implements batchLayer: the inverse scatter of forwardBatch.
func (f *Flatten) backwardBatch(gradOut *tensor.Tensor, withInGrad bool) *tensor.Tensor {
	if !withInGrad {
		return nil
	}
	if len(f.bInShape) == 2 {
		return gradOut
	}
	if len(f.bInShape) != 4 {
		panic("cnn: batched Flatten backward before forward")
	}
	ch, bsz, h, w := f.bInShape[0], f.bInShape[1], f.bInShape[2], f.bInShape[3]
	hw := h * w
	n := ch * hw
	f.gradInB = tensor.Ensure(f.gradInB, ch, bsz, h, w)
	gd := f.gradInB.Data()
	god := gradOut.Data()
	for b := 0; b < bsz; b++ {
		src := god[b*n : (b+1)*n]
		for c := 0; c < ch; c++ {
			copy(gd[(c*bsz+b)*hw:(c*bsz+b+1)*hw], src[c*hw:(c+1)*hw])
		}
	}
	return f.gradInB
}

// ---------------------------------------------------------------------------
// MaxPool2D

func (p *MaxPool2D) supportsBatch() bool { return true }

// forwardBatch implements batchLayer: every (channel, sample) plane of the
// packed block is contiguous, so the serial per-plane window code runs
// unchanged over C·B planes — identical max folds in identical scan order.
func (p *MaxPool2D) forwardBatch(in *tensor.Tensor) *tensor.Tensor {
	return p.forwardBatchImpl(in, false)
}

// forwardBatchReLU is forwardBatch over a raw (pre-activation) block with the
// preceding ReLU applied to each pooled maximum at the store (see
// forwardBatchAll; relu and max commute exactly).
func (p *MaxPool2D) forwardBatchReLU(in *tensor.Tensor) *tensor.Tensor {
	return p.forwardBatchImpl(in, true)
}

func (p *MaxPool2D) forwardBatchImpl(in *tensor.Tensor, relu bool) *tensor.Tensor {
	if in.Dims() != 4 {
		panic(fmt.Sprintf("cnn: batched pool input shape %v, want (C,B,H,W)", in.Shape()))
	}
	p.bInShape = append(p.bInShape[:0], in.Shape()...)
	p.lastInB = in
	ch, bsz, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh := (h-p.Size)/p.Stride + 1
	ow := (w-p.Size)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: pool output collapses for input %v", in.Shape()))
	}
	p.outB = tensor.Ensure(p.outB, ch, bsz, oh, ow)
	ind := in.Data()
	outd := p.outB.Data()
	idx := 0
	for cb := 0; cb < ch*bsz; cb++ {
		cBase := cb * h * w
		switch {
		// The size-2/3 fast paths fold each window as a balanced max tree:
		// the builtin max is associative and commutative (NaN and ±0
		// included), so regrouping the serial left fold is exact while
		// cutting the dependency chain in half.
		case p.Size == 2:
			for oy := 0; oy < oh; oy++ {
				row := cBase + oy*p.Stride*w
				for ox := 0; ox < ow; ox++ {
					o := row + ox*p.Stride
					r0 := ind[o : o+2]
					r1 := ind[o+w : o+w+2]
					m := max(max(r0[0], r0[1]), max(r1[0], r1[1]))
					if relu {
						m = reluMask(m)
					}
					outd[idx] = m
					idx++
				}
			}
		case p.Size == 3:
			for oy := 0; oy < oh; oy++ {
				row := cBase + oy*p.Stride*w
				for ox := 0; ox < ow; ox++ {
					o := row + ox*p.Stride
					r0 := ind[o : o+3]
					r1 := ind[o+w : o+w+3]
					r2 := ind[o+2*w : o+2*w+3]
					m0 := max(max(r0[0], r0[1]), r0[2])
					m1 := max(max(r1[0], r1[1]), r1[2])
					m2 := max(max(r2[0], r2[1]), r2[2])
					m := max(max(m0, m1), m2)
					if relu {
						m = reluMask(m)
					}
					outd[idx] = m
					idx++
				}
			}
		default:
			for oy := 0; oy < oh; oy++ {
				iy0 := oy * p.Stride
				ky1 := p.Size
				if iy0+ky1 > h {
					ky1 = h - iy0
				}
				for ox := 0; ox < ow; ox++ {
					ix0 := ox * p.Stride
					kx1 := p.Size
					if ix0+kx1 > w {
						kx1 = w - ix0
					}
					best := ind[cBase+iy0*w+ix0]
					for ky := 0; ky < ky1; ky++ {
						row := cBase + (iy0+ky)*w + ix0
						for _, v := range ind[row : row+kx1] {
							best = max(best, v)
						}
					}
					if relu {
						best = reluMask(best)
					}
					outd[idx] = best
					idx++
				}
			}
		}
	}
	return p.outB
}

// backwardBatch implements batchLayer: per plane, the serial
// first-equal-to-max routing in the serial scan order.
func (p *MaxPool2D) backwardBatch(gradOut *tensor.Tensor, withInGrad bool) *tensor.Tensor {
	if !withInGrad {
		return nil
	}
	if len(p.bInShape) != 4 || p.lastInB == nil {
		panic("cnn: batched MaxPool2D backward before forward")
	}
	ch, bsz, h, w := p.bInShape[0], p.bInShape[1], p.bInShape[2], p.bInShape[3]
	oh, ow := gradOut.Dim(2), gradOut.Dim(3)
	p.gradInB = tensor.Ensure(p.gradInB, ch, bsz, h, w)
	p.gradInB.Zero()
	gi := p.gradInB.Data()
	ind := p.lastInB.Data()
	outd := p.outB.Data()
	god := gradOut.Data()
	idx := 0
	for cb := 0; cb < ch*bsz; cb++ {
		cBase := cb * h * w
		switch {
		case p.Size == 2:
			for oy := 0; oy < oh; oy++ {
				row := cBase + oy*p.Stride*w
				for ox := 0; ox < ow; ox++ {
					g := god[idx]
					if g == 0 {
						idx++
						continue
					}
					o := row + ox*p.Stride
					best := outd[idx]
					t := o
					switch {
					case ind[o] == best:
					case ind[o+1] == best:
						t = o + 1
					case ind[o+w] == best:
						t = o + w
					case ind[o+w+1] == best:
						t = o + w + 1
					}
					gi[t] += g
					idx++
				}
			}
		case p.Size == 3:
			for oy := 0; oy < oh; oy++ {
				row := cBase + oy*p.Stride*w
				for ox := 0; ox < ow; ox++ {
					g := god[idx]
					if g == 0 {
						idx++
						continue
					}
					o := row + ox*p.Stride
					best := outd[idx]
					t := o
					switch {
					case ind[o] == best:
					case ind[o+1] == best:
						t = o + 1
					case ind[o+2] == best:
						t = o + 2
					case ind[o+w] == best:
						t = o + w
					case ind[o+w+1] == best:
						t = o + w + 1
					case ind[o+w+2] == best:
						t = o + w + 2
					case ind[o+2*w] == best:
						t = o + 2*w
					case ind[o+2*w+1] == best:
						t = o + 2*w + 1
					case ind[o+2*w+2] == best:
						t = o + 2*w + 2
					}
					gi[t] += g
					idx++
				}
			}
		default:
			for oy := 0; oy < oh; oy++ {
				iy0 := oy * p.Stride
				ky1 := p.Size
				if iy0+ky1 > h {
					ky1 = h - iy0
				}
				for ox := 0; ox < ow; ox++ {
					g := god[idx]
					if g == 0 {
						idx++
						continue
					}
					ix0 := ox * p.Stride
					kx1 := p.Size
					if ix0+kx1 > w {
						kx1 = w - ix0
					}
					best := outd[idx]
					bestFlat := cBase + iy0*w + ix0
				find:
					for ky := 0; ky < ky1; ky++ {
						row := cBase + (iy0+ky)*w + ix0
						for kx := 0; kx < kx1; kx++ {
							if ind[row+kx] == best {
								bestFlat = row + kx
								break find
							}
						}
					}
					gi[bestFlat] += g
					idx++
				}
			}
		}
	}
	return p.gradInB
}

// backwardBatchReLUGated is backwardBatch with the preceding ReLU layer's
// backward fused in (see backwardBatchAll). The pool input is the ReLU
// output, so the ReLU pass mask at the winner cell is just outd != 0 (the
// winner equals the pooled max): gradient routed to a cell the serial ReLU
// backward would zero is dropped at the scatter instead of by a full-plane
// masking pass. Serial order is preserved — non-winner cells stay zero in
// both formulations, and the winner receives either the identical g or the
// identical +0 skip.
func (p *MaxPool2D) backwardBatchReLUGated(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(p.bInShape) != 4 || p.lastInB == nil {
		panic("cnn: batched MaxPool2D backward before forward")
	}
	ch, bsz, h, w := p.bInShape[0], p.bInShape[1], p.bInShape[2], p.bInShape[3]
	oh, ow := gradOut.Dim(2), gradOut.Dim(3)
	p.gradInB = tensor.Ensure(p.gradInB, ch, bsz, h, w)
	p.gradInB.Zero()
	gi := p.gradInB.Data()
	ind := p.lastInB.Data()
	outd := p.outB.Data()
	god := gradOut.Data()
	idx := 0
	for cb := 0; cb < ch*bsz; cb++ {
		cBase := cb * h * w
		switch {
		case p.Size == 2:
			for oy := 0; oy < oh; oy++ {
				row := cBase + oy*p.Stride*w
				for ox := 0; ox < ow; ox++ {
					g := god[idx]
					best := outd[idx]
					if g == 0 || best == 0 {
						idx++
						continue
					}
					o := row + ox*p.Stride
					t := o
					switch {
					case ind[o] == best:
					case ind[o+1] == best:
						t = o + 1
					case ind[o+w] == best:
						t = o + w
					case ind[o+w+1] == best:
						t = o + w + 1
					}
					gi[t] += g
					idx++
				}
			}
		case p.Size == 3:
			for oy := 0; oy < oh; oy++ {
				row := cBase + oy*p.Stride*w
				for ox := 0; ox < ow; ox++ {
					g := god[idx]
					best := outd[idx]
					if g == 0 || best == 0 {
						idx++
						continue
					}
					o := row + ox*p.Stride
					t := o
					switch {
					case ind[o] == best:
					case ind[o+1] == best:
						t = o + 1
					case ind[o+2] == best:
						t = o + 2
					case ind[o+w] == best:
						t = o + w
					case ind[o+w+1] == best:
						t = o + w + 1
					case ind[o+w+2] == best:
						t = o + w + 2
					case ind[o+2*w] == best:
						t = o + 2*w
					case ind[o+2*w+1] == best:
						t = o + 2*w + 1
					case ind[o+2*w+2] == best:
						t = o + 2*w + 2
					}
					gi[t] += g
					idx++
				}
			}
		default:
			for oy := 0; oy < oh; oy++ {
				iy0 := oy * p.Stride
				ky1 := p.Size
				if iy0+ky1 > h {
					ky1 = h - iy0
				}
				for ox := 0; ox < ow; ox++ {
					g := god[idx]
					best := outd[idx]
					if g == 0 || best == 0 {
						idx++
						continue
					}
					ix0 := ox * p.Stride
					kx1 := p.Size
					if ix0+kx1 > w {
						kx1 = w - ix0
					}
					bestFlat := cBase + iy0*w + ix0
				find:
					for ky := 0; ky < ky1; ky++ {
						row := cBase + (iy0+ky)*w + ix0
						for kx := 0; kx < kx1; kx++ {
							if ind[row+kx] == best {
								bestFlat = row + kx
								break find
							}
						}
					}
					gi[bestFlat] += g
					idx++
				}
			}
		}
	}
	return p.gradInB
}

// backwardBatchSparse is backwardBatchReLUGated emitting a sparse winner
// list instead of a dense gradient plane, for the Conv2D+ReLU+MaxPool2D
// stack prefix (see backwardBatchAll). Windows within a plane are visited in
// pool-output order, which interleaves winner rows; each plane's segment is
// restored to (y, x) ascending order — the dense scatter's per-element
// accumulation order — by bucketed emission in the unclipped 2×2/3×3 cases
// and by an insertion sort in the general case. Requires
// non-overlapping windows (Stride >= Size): an input cell winning two
// windows would need its gradients summed before the conv consumes them.
func (p *MaxPool2D) backwardBatchSparse(gradOut *tensor.Tensor) []sparseWinner {
	if len(p.bInShape) != 4 || p.lastInB == nil {
		panic("cnn: batched MaxPool2D backward before forward")
	}
	ch, bsz, h, w := p.bInShape[0], p.bInShape[1], p.bInShape[2], p.bInShape[3]
	oh, ow := gradOut.Dim(2), gradOut.Dim(3)
	ind := p.lastInB.Data()
	outd := p.outB.Data()
	god := gradOut.Data()
	winners := p.spw[:0]
	idx := 0
	oc, b := int32(0), int32(0)
	for cb := 0; cb < ch*bsz; cb++ {
		cBase := cb * h * w
		segStart := len(winners)
		switch {
		case p.Size == 2:
			for oy := 0; oy < oh; oy++ {
				iy0 := oy * p.Stride
				row := cBase + iy0*w
				p.bkts[0] = p.bkts[0][:0]
				p.bkts[1] = p.bkts[1][:0]
				for ox := 0; ox < ow; ox++ {
					g := god[idx]
					best := outd[idx]
					if g == 0 || best == 0 {
						idx++
						continue
					}
					ix0 := ox * p.Stride
					o := row + ix0
					dy, dx := int32(0), int32(0)
					if ind[o+w+1] == best {
						dy, dx = 1, 1
					}
					if ind[o+w] == best {
						dy, dx = 1, 0
					}
					if ind[o+1] == best {
						dy, dx = 0, 1
					}
					if ind[o] == best {
						dy, dx = 0, 0
					}
					p.bkts[dy] = append(p.bkts[dy], sparseWinner{oc, b, int32(iy0) + dy, int32(ix0) + dx, g})
					idx++
				}
				winners = append(winners, p.bkts[0]...)
				winners = append(winners, p.bkts[1]...)
			}
		case p.Size == 3:
			for oy := 0; oy < oh; oy++ {
				iy0 := oy * p.Stride
				row := cBase + iy0*w
				p.bkts[0] = p.bkts[0][:0]
				p.bkts[1] = p.bkts[1][:0]
				p.bkts[2] = p.bkts[2][:0]
				for ox := 0; ox < ow; ox++ {
					g := god[idx]
					best := outd[idx]
					if g == 0 || best == 0 {
						idx++
						continue
					}
					ix0 := ox * p.Stride
					o := row + ix0
					// First-equal-to-max routing, branchless: check the nine
					// cells in descending scan order with conditional
					// assignments (compiled to CMOVs — the winner cell is
					// data-dependent, so branches here mispredict), letting
					// the earliest equal cell's write land last. Winners land
					// in a per-window-row bucket indexed by their row offset
					// (again no data-dependent branch); concatenating the
					// buckets after each window row yields (y, x) ascending
					// order directly, because non-overlapping windows can't
					// interleave winners across window rows.
					dy, dx := int32(0), int32(0)
					if ind[o+2*w+2] == best {
						dy, dx = 2, 2
					}
					if ind[o+2*w+1] == best {
						dy, dx = 2, 1
					}
					if ind[o+2*w] == best {
						dy, dx = 2, 0
					}
					if ind[o+w+2] == best {
						dy, dx = 1, 2
					}
					if ind[o+w+1] == best {
						dy, dx = 1, 1
					}
					if ind[o+w] == best {
						dy, dx = 1, 0
					}
					if ind[o+2] == best {
						dy, dx = 0, 2
					}
					if ind[o+1] == best {
						dy, dx = 0, 1
					}
					if ind[o] == best {
						dy, dx = 0, 0
					}
					p.bkts[dy] = append(p.bkts[dy], sparseWinner{oc, b, int32(iy0) + dy, int32(ix0) + dx, g})
					idx++
				}
				winners = append(winners, p.bkts[0]...)
				winners = append(winners, p.bkts[1]...)
				winners = append(winners, p.bkts[2]...)
			}
		default:
			for oy := 0; oy < oh; oy++ {
				iy0 := oy * p.Stride
				ky1 := p.Size
				if iy0+ky1 > h {
					ky1 = h - iy0
				}
				for ox := 0; ox < ow; ox++ {
					g := god[idx]
					best := outd[idx]
					if g == 0 || best == 0 {
						idx++
						continue
					}
					ix0 := ox * p.Stride
					kx1 := p.Size
					if ix0+kx1 > w {
						kx1 = w - ix0
					}
					wy, wx := int32(iy0), int32(ix0)
				find:
					for ky := 0; ky < ky1; ky++ {
						row := cBase + (iy0+ky)*w + ix0
						for kx := 0; kx < kx1; kx++ {
							if ind[row+kx] == best {
								wy, wx = int32(iy0+ky), int32(ix0+kx)
								break find
							}
						}
					}
					winners = append(winners, sparseWinner{oc, b, wy, wx, g})
					idx++
				}
			}
			// Window rows may interleave winner rows here, so restore the
			// dense scatter's (y, x) ascending order with an insertion sort
			// over the plane's segment. The Size-specific cases above emit in
			// sorted order already via the row-offset buckets.
			seg := winners[segStart:]
			for i := 1; i < len(seg); i++ {
				v := seg[i]
				j := i - 1
				for j >= 0 && (seg[j].y > v.y || (seg[j].y == v.y && seg[j].x > v.x)) {
					seg[j+1] = seg[j]
					j--
				}
				seg[j+1] = v
			}
		}
		b++
		if int(b) == bsz {
			b = 0
			oc++
		}
	}
	p.spw = winners
	return winners
}

// ---------------------------------------------------------------------------
// AvgPool2D

func (p *AvgPool2D) supportsBatch() bool { return true }

// forwardBatch implements batchLayer: the serial clipped-window mean per
// contiguous (channel, sample) plane.
func (p *AvgPool2D) forwardBatch(in *tensor.Tensor) *tensor.Tensor {
	if in.Dims() != 4 {
		panic(fmt.Sprintf("cnn: batched pool input shape %v, want (C,B,H,W)", in.Shape()))
	}
	p.bInShape = append(p.bInShape[:0], in.Shape()...)
	ch, bsz, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh := (h-p.Size)/p.Stride + 1
	ow := (w-p.Size)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: pool output collapses for input %v", in.Shape()))
	}
	p.outB = tensor.Ensure(p.outB, ch, bsz, oh, ow)
	ind := in.Data()
	outd := p.outB.Data()
	if cap(p.counts) < oh*ow {
		p.counts = make([]int, oh*ow)
	}
	p.counts = p.counts[:oh*ow]
	idx := 0
	for cb := 0; cb < ch*bsz; cb++ {
		cBase := cb * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy * p.Stride
			ky1 := p.Size
			if iy0+ky1 > h {
				ky1 = h - iy0
			}
			for ox := 0; ox < ow; ox++ {
				ix0 := ox * p.Stride
				kx1 := p.Size
				if ix0+kx1 > w {
					kx1 = w - ix0
				}
				sum := 0.0
				for ky := 0; ky < ky1; ky++ {
					row := ind[cBase+(iy0+ky)*w+ix0 : cBase+(iy0+ky)*w+ix0+kx1]
					for _, v := range row {
						sum += v
					}
				}
				count := ky1 * kx1
				outd[idx] = sum / float64(count)
				if cb == 0 {
					p.counts[oy*ow+ox] = count
				}
				idx++
			}
		}
	}
	return p.outB
}

// backwardBatch implements batchLayer.
func (p *AvgPool2D) backwardBatch(gradOut *tensor.Tensor, withInGrad bool) *tensor.Tensor {
	if !withInGrad {
		return nil
	}
	if len(p.bInShape) != 4 {
		panic("cnn: batched AvgPool2D backward before forward")
	}
	ch, bsz, h, w := p.bInShape[0], p.bInShape[1], p.bInShape[2], p.bInShape[3]
	oh, ow := gradOut.Dim(2), gradOut.Dim(3)
	p.gradInB = tensor.Ensure(p.gradInB, ch, bsz, h, w)
	p.gradInB.Zero()
	gid := p.gradInB.Data()
	god := gradOut.Data()
	for cb := 0; cb < ch*bsz; cb++ {
		cBase := cb * h * w
		oBase := cb * oh * ow
		for oy := 0; oy < oh; oy++ {
			iy0 := oy * p.Stride
			ky1 := p.Size
			if iy0+ky1 > h {
				ky1 = h - iy0
			}
			for ox := 0; ox < ow; ox++ {
				ix0 := ox * p.Stride
				kx1 := p.Size
				if ix0+kx1 > w {
					kx1 = w - ix0
				}
				g := god[oBase+oy*ow+ox] / float64(p.counts[oy*ow+ox])
				for ky := 0; ky < ky1; ky++ {
					row := gid[cBase+(iy0+ky)*w+ix0 : cBase+(iy0+ky)*w+ix0+kx1]
					for i := range row {
						row[i] += g
					}
				}
			}
		}
	}
	return p.gradInB
}

// ---------------------------------------------------------------------------
// Network engine

// batchSlot is the per-block state of the batched engine: a network (the
// owner itself for slot 0, shadow stacks for concurrent blocks), the packed
// input block, the block's labels, and the cross-entropy scratch.
type batchSlot struct {
	net    *Network
	inB    *tensor.Tensor
	grad   *tensor.Tensor // (bsz, nclass) dLoss/dLogits rows
	logits *tensor.Tensor
	labels []int
	losses []float64
	bsz    int
}

// SetBatchKernel sets the block size of the batched im2col/GEMM training
// engine: Fit, FitParallel and TrainEpochParallel route through it when the
// kernel is > 1 and every layer supports batching (shared-weight stacks; a
// MicroDeep local-update model keeps its per-sample replica path). Results
// are bit-identical to the per-sample paths at any kernel size. Values <= 1
// restore the per-sample paths.
func (n *Network) SetBatchKernel(k int) {
	if k == n.batchKernel {
		return
	}
	n.batchKernel = k
	n.bslots = nil
}

// BatchKernel returns the configured batch-kernel block size.
func (n *Network) BatchKernel() int { return n.batchKernel }

// batchable reports whether the batched engine can run this stack.
func (n *Network) batchable() bool {
	if len(n.layers) == 0 {
		return false
	}
	if len(n.inShape) != 1 && len(n.inShape) != 3 {
		return false
	}
	for _, l := range n.layers {
		bl, ok := l.(batchLayer)
		if !ok || !bl.supportsBatch() {
			return false
		}
	}
	out := n.OutShape()
	return len(out) == 1
}

// prepare packs the block's samples (perm[start:start+bsz]) into the slot's
// input tensor and sizes its per-sample scratch.
func (s *batchSlot) prepare(n *Network, samples []Sample, perm []int, start, bsz, nclass int) {
	s.bsz = bsz
	if cap(s.labels) < bsz {
		s.labels = make([]int, bsz)
		s.losses = make([]float64, bsz)
	}
	s.labels = s.labels[:bsz]
	s.losses = s.losses[:bsz]
	s.grad = tensor.Ensure(s.grad, bsz, nclass)
	if len(n.inShape) == 3 {
		ch, h, w := n.inShape[0], n.inShape[1], n.inShape[2]
		hw := h * w
		s.inB = tensor.Ensure(s.inB, ch, bsz, h, w)
		dst := s.inB.Data()
		for j := 0; j < bsz; j++ {
			smp := samples[perm[start+j]]
			sd := smp.Input.Data()
			for c := 0; c < ch; c++ {
				copy(dst[(c*bsz+j)*hw:(c*bsz+j+1)*hw], sd[c*hw:(c+1)*hw])
			}
			s.labels[j] = smp.Label
		}
		return
	}
	f := n.inShape[0]
	s.inB = tensor.Ensure(s.inB, bsz, f)
	dst := s.inB.Data()
	for j := 0; j < bsz; j++ {
		smp := samples[perm[start+j]]
		copy(dst[j*f:(j+1)*f], smp.Input.Data())
		s.labels[j] = smp.Label
	}
}

// forwardBatchAll runs all layers over a packed block. Conv2D+ReLU and
// Dense+ReLU pairs run fused — the ReLU select folds into the producer's
// bias pass, skipping one full read-modify-write sweep of the activation
// block. The skipped ReLU layer's outB is aliased to the fused output so its
// backwardBatch (and the pool fusion's gate) still see the activation bits
// they key on; reluMask reproduces the serial ReLU arithmetic bit for bit,
// so the fused path stays bit-identical.
func (n *Network) forwardBatchAll(in *tensor.Tensor) *tensor.Tensor {
	x := in
	ls := n.layers
	for i := 0; i < len(ls); i++ {
		if i+1 < len(ls) {
			if r, ok := ls[i+1].(*ReLU); ok {
				switch l := ls[i].(type) {
				case *Conv2D:
					// Conv2D+ReLU+MaxPool2D: ReLU and max commute (both
					// monotone, and reluMask(m) == m bit-for-bit when m > 0),
					// so the select runs once per pooled output instead of
					// once per conv output. The pool's winner search and
					// backward gate work off the raw conv plane plus the
					// relu'd pooled max, which route gradients to exactly the
					// cells the unfused path picks.
					if i+2 < len(ls) {
						if p, ok2 := ls[i+2].(*MaxPool2D); ok2 {
							x = p.forwardBatchReLU(l.forwardBatch(x))
							i += 2
							continue
						}
					}
					x = l.forwardBatchReLU(x)
					r.outB = x
					i++
					continue
				case *Dense:
					x = l.forwardBatchReLU(x)
					r.outB = x
					i++
					continue
				}
			}
		}
		x = ls[i].(batchLayer).forwardBatch(x)
	}
	return x
}

// backwardBatchAll propagates packed dLoss/dLogits rows through all layers,
// skipping the first layer's input gradient like Backward. A ReLU feeding a
// MaxPool2D runs fused: the pool scatter gates each routed gradient on the
// winner's activation instead of materializing a full-plane masked gradient
// block. Every non-winner cell's gradient is zero either way, and the winner
// cell's serial ReLU backward mask is exactly the best != 0 test (post-ReLU
// values are never -0, and a NaN max keeps the gradient in both paths), so
// the fusion is bit-identical.
func (n *Network) backwardBatchAll(grad *tensor.Tensor) {
	g := grad
	ls := n.layers
	i := len(ls) - 1
	for i >= 1 {
		if p, ok := ls[i].(*MaxPool2D); ok && i >= 2 {
			if _, ok2 := ls[i-1].(*ReLU); ok2 {
				if c, ok3 := ls[0].(*Conv2D); ok3 && i == 2 && p.Stride >= p.Size {
					// Conv2D+ReLU+MaxPool2D stack prefix: hand the pool's
					// routed winners straight to the first layer's gradW/gradB
					// accumulation — no dense gradient plane at all.
					c.backwardBatchSparse(p.backwardBatchSparse(g))
					return
				}
				g = p.backwardBatchReLUGated(g)
				i -= 2
				continue
			}
		}
		g = ls[i].(batchLayer).backwardBatch(g, true)
		i--
	}
	if i == 0 {
		ls[0].(batchLayer).backwardBatch(g, false)
	}
}

// invalidateBatchWeights drops every per-layer derived-weight cache (the
// Dense wT transpose) across the engine's slot stacks. Must run whenever the
// underlying parameters may have changed — at epoch entry and after every
// optimizer step.
func (n *Network) invalidateBatchWeights() {
	for _, s := range n.bslots {
		for _, l := range s.net.layers {
			if d, ok := l.(*Dense); ok {
				d.wTok = false
			}
		}
	}
}

// crossEntropyRows computes per-row softmax cross-entropy over packed logits
// (bsz, nclass), writing the dLoss/dLogits rows into grad and the per-sample
// losses into losses. Per row the arithmetic is exactly CrossEntropy's.
func crossEntropyRows(logits *tensor.Tensor, labels []int, grad *tensor.Tensor, losses []float64) {
	bsz, nc := logits.Dim(0), logits.Dim(1)
	ld, gd := logits.Data(), grad.Data()
	for b := 0; b < bsz; b++ {
		row := ld[b*nc : (b+1)*nc]
		grow := gd[b*nc : (b+1)*nc]
		label := labels[b]
		if label < 0 || label >= nc {
			panic(fmt.Sprintf("cnn: label %d for %d classes", label, nc))
		}
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for i, v := range row {
			e := math.Exp(v - maxV)
			grow[i] = e
			sum += e
		}
		for i := range grow {
			grow[i] /= sum
		}
		const eps = 1e-12
		losses[b] = -math.Log(grow[label] + eps)
		grow[label] -= 1
	}
}

// trainEpochBatched is the batched engine. Mini-batches are split into
// kernel-sized blocks in ascending sample order; each block runs a packed
// forward, per-row cross-entropy, and a packed backward. With workers > 1
// the forward passes of one mini-batch's blocks run concurrently on shadow
// stacks, and the cross-entropy/backward reductions then run sequentially in
// block order — the TrainEpochParallelFunc composition, at block
// granularity. step runs at every mini-batch boundary exactly as in
// TrainEpochParallelFunc (the caller zeroes its own gradient state). Returns
// ok=false, having done nothing, when the stack cannot run batched.
func (n *Network) trainEpochBatched(samples []Sample, perm []int, batch, kernel, workers int, step func(bsz int)) (loss float64, ok bool) {
	if batch <= 0 {
		panic("cnn: non-positive batch size")
	}
	if kernel <= 1 || !n.batchable() {
		return 0, false
	}
	if kernel > batch {
		kernel = batch
	}
	nclass := n.OutShape()[0]
	maxBlocks := (batch + kernel - 1) / kernel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > maxBlocks {
		workers = maxBlocks
	}
	if len(n.bslots) == 0 {
		n.bslots = append(n.bslots, &batchSlot{net: n})
	}
	if workers > 1 {
		for len(n.bslots) < maxBlocks {
			sn := n.shadowNet()
			if sn == nil {
				workers = 1
				break
			}
			n.bslots = append(n.bslots, &batchSlot{net: sn})
		}
	}
	n.invalidateBatchWeights()
	total := 0.0
	count := 0
	for start := 0; start < len(perm); start += batch {
		end := start + batch
		if end > len(perm) {
			end = len(perm)
		}
		bsz := end - start
		nb := (bsz + kernel - 1) / kernel
		w := workers
		if w > nb {
			w = nb
		}
		if w > 1 {
			var wg sync.WaitGroup
			for g := 0; g < w; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for bi := g; bi < nb; bi += w {
						s := n.bslots[bi]
						bs := start + bi*kernel
						bn := kernel
						if bs+bn > end {
							bn = end - bs
						}
						s.prepare(n, samples, perm, bs, bn, nclass)
						s.logits = s.net.forwardBatchAll(s.inB)
					}
				}(g)
			}
			wg.Wait()
		}
		// Sequential reduction in block (= sample) order.
		for bi := 0; bi < nb; bi++ {
			s := n.bslots[0]
			if w > 1 {
				s = n.bslots[bi]
			} else {
				bs := start + bi*kernel
				bn := kernel
				if bs+bn > end {
					bn = end - bs
				}
				s.prepare(n, samples, perm, bs, bn, nclass)
				s.logits = s.net.forwardBatchAll(s.inB)
			}
			crossEntropyRows(s.logits, s.labels[:s.bsz], s.grad, s.losses[:s.bsz])
			for _, l := range s.losses[:s.bsz] {
				total += l
				count++
			}
			s.net.backwardBatchAll(s.grad)
		}
		step(bsz)
		n.invalidateBatchWeights()
	}
	if count == 0 {
		return 0, true
	}
	return total / float64(count), true
}

// TrainEpochBatched runs one epoch of mini-batch SGD through the batched
// im2col/GEMM engine with the given kernel block size, bit-identical to
// TrainEpoch at any kernel size. Stacks the engine cannot run (per-position
// kernel replicas, external layers) fall back to TrainEpoch.
func (n *Network) TrainEpochBatched(samples []Sample, perm []int, batch, kernel int, opt *SGD) float64 {
	if batch <= 0 {
		panic("cnn: non-positive batch size")
	}
	n.ZeroGrads()
	loss, ok := n.trainEpochBatched(samples, perm, batch, kernel, 1, func(bsz int) {
		opt.StepNetwork(n, bsz)
		n.ZeroGrads()
	})
	if !ok {
		return n.TrainEpoch(samples, perm, batch, opt)
	}
	return loss
}
