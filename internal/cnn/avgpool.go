package cnn

import (
	"fmt"

	"zeiot/internal/tensor"
)

// AvgPool2D is an average pooling layer over (channels, height, width)
// input. Windows clipped by the input edge average over the cells actually
// present, which keeps the operation an exact associative mean — the
// property the distributed executor's in-network aggregation relies on.
type AvgPool2D struct {
	Size, Stride int
	inShape      []int
	counts       []int // cells actually inside each output's window
}

var (
	_ Layer        = (*AvgPool2D)(nil)
	_ SpatialLayer = (*AvgPool2D)(nil)
)

// NewAvgPool2D returns an average pooling layer with the given window size
// and stride. A stride of 0 defaults to the window size.
func NewAvgPool2D(size, stride int) *AvgPool2D {
	if size <= 0 {
		panic("cnn: non-positive pool size")
	}
	if stride == 0 {
		stride = size
	}
	if stride < 0 {
		panic("cnn: negative pool stride")
	}
	return &AvgPool2D{Size: size, Stride: stride}
}

// Name implements Layer.
func (p *AvgPool2D) Name() string { return fmt.Sprintf("avgpool%dx%d", p.Size, p.Size) }

// OutShape implements Layer.
func (p *AvgPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("cnn: pool input shape %v, want 3-d", in))
	}
	oh := (in[1]-p.Size)/p.Stride + 1
	ow := (in[2]-p.Size)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: pool output collapses for input %v", in))
	}
	return []int{in[0], oh, ow}
}

// Receptive implements SpatialLayer.
func (p *AvgPool2D) Receptive(oy, ox int) (y0, y1, x0, x1 int) {
	y0 = oy * p.Stride
	x0 = ox * p.Stride
	return y0, y0 + p.Size - 1, x0, x0 + p.Size - 1
}

// Forward implements Layer.
func (p *AvgPool2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	p.inShape = append(p.inShape[:0], in.Shape()...)
	outShape := p.OutShape(in.Shape())
	ch, oh, ow := outShape[0], outShape[1], outShape[2]
	h, w := in.Dim(1), in.Dim(2)
	out := tensor.New(ch, oh, ow)
	if cap(p.counts) < oh*ow {
		p.counts = make([]int, oh*ow)
	}
	p.counts = p.counts[:oh*ow]
	for c := 0; c < ch; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum, count := 0.0, 0
				for ky := 0; ky < p.Size; ky++ {
					iy := oy*p.Stride + ky
					if iy >= h {
						break
					}
					for kx := 0; kx < p.Size; kx++ {
						ix := ox*p.Stride + kx
						if ix >= w {
							break
						}
						sum += in.At(c, iy, ix)
						count++
					}
				}
				out.Set(sum/float64(count), c, oy, ox)
				if c == 0 {
					p.counts[oy*ow+ox] = count
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(p.inShape) == 0 {
		panic("cnn: AvgPool2D backward before forward")
	}
	gradIn := tensor.New(p.inShape...)
	ch, oh, ow := gradOut.Dim(0), gradOut.Dim(1), gradOut.Dim(2)
	h, w := p.inShape[1], p.inShape[2]
	for c := 0; c < ch; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := gradOut.At(c, oy, ox) / float64(p.counts[oy*ow+ox])
				for ky := 0; ky < p.Size; ky++ {
					iy := oy*p.Stride + ky
					if iy >= h {
						break
					}
					for kx := 0; kx < p.Size; kx++ {
						ix := ox*p.Stride + kx
						if ix >= w {
							break
						}
						gradIn.Set(gradIn.At(c, iy, ix)+g, c, iy, ix)
					}
				}
			}
		}
	}
	return gradIn
}
