package cnn

import (
	"fmt"

	"zeiot/internal/tensor"
)

// AvgPool2D is an average pooling layer over (channels, height, width)
// input. Windows clipped by the input edge average over the cells actually
// present, which keeps the operation an exact associative mean — the
// property the distributed executor's in-network aggregation relies on.
type AvgPool2D struct {
	Size, Stride int
	inShape      []int
	counts       []int // cells actually inside each output's window
	out, gradIn  *tensor.Tensor
	// Batched-path scratch (see batch.go).
	bInShape      []int
	outB, gradInB *tensor.Tensor
}

var (
	_ Layer        = (*AvgPool2D)(nil)
	_ SpatialLayer = (*AvgPool2D)(nil)
)

// NewAvgPool2D returns an average pooling layer with the given window size
// and stride. A stride of 0 defaults to the window size.
func NewAvgPool2D(size, stride int) *AvgPool2D {
	if size <= 0 {
		panic("cnn: non-positive pool size")
	}
	if stride == 0 {
		stride = size
	}
	if stride < 0 {
		panic("cnn: negative pool stride")
	}
	return &AvgPool2D{Size: size, Stride: stride}
}

// Name implements Layer.
func (p *AvgPool2D) Name() string { return fmt.Sprintf("avgpool%dx%d", p.Size, p.Size) }

// shadow implements shadowLayer.
func (p *AvgPool2D) shadow() Layer { return &AvgPool2D{Size: p.Size, Stride: p.Stride} }

// OutShape implements Layer.
func (p *AvgPool2D) OutShape(in []int) []int {
	if len(in) != 3 {
		panic(fmt.Sprintf("cnn: pool input shape %v, want 3-d", in))
	}
	oh := (in[1]-p.Size)/p.Stride + 1
	ow := (in[2]-p.Size)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: pool output collapses for input %v", in))
	}
	return []int{in[0], oh, ow}
}

// Receptive implements SpatialLayer.
func (p *AvgPool2D) Receptive(oy, ox int) (y0, y1, x0, x1 int) {
	y0 = oy * p.Stride
	x0 = ox * p.Stride
	return y0, y0 + p.Size - 1, x0, x0 + p.Size - 1
}

// Forward implements Layer. The returned tensor is owned by the layer until
// its next Forward call.
func (p *AvgPool2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	if in.Dims() != 3 {
		panic(fmt.Sprintf("cnn: pool input shape %v, want 3-d", in.Shape()))
	}
	p.inShape = append(p.inShape[:0], in.Shape()...)
	ch, h, w := in.Dim(0), in.Dim(1), in.Dim(2)
	// Inline OutShape: building the shape slice would allocate per call.
	oh := (h-p.Size)/p.Stride + 1
	ow := (w-p.Size)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("cnn: pool output collapses for input %v", in.Shape()))
	}
	p.out = tensor.Ensure(p.out, ch, oh, ow)
	ind := in.Data()
	outd := p.out.Data()
	if cap(p.counts) < oh*ow {
		p.counts = make([]int, oh*ow)
	}
	p.counts = p.counts[:oh*ow]
	idx := 0
	for c := 0; c < ch; c++ {
		cBase := c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy * p.Stride
			ky1 := p.Size
			if iy0+ky1 > h {
				ky1 = h - iy0
			}
			for ox := 0; ox < ow; ox++ {
				ix0 := ox * p.Stride
				kx1 := p.Size
				if ix0+kx1 > w {
					kx1 = w - ix0
				}
				sum := 0.0
				for ky := 0; ky < ky1; ky++ {
					row := ind[cBase+(iy0+ky)*w+ix0 : cBase+(iy0+ky)*w+ix0+kx1]
					for _, v := range row {
						sum += v
					}
				}
				count := ky1 * kx1
				outd[idx] = sum / float64(count)
				if c == 0 {
					p.counts[oy*ow+ox] = count
				}
				idx++
			}
		}
	}
	return p.out
}

// Backward implements Layer. The returned gradient tensor is owned by the
// layer until its next Backward call.
func (p *AvgPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(p.inShape) == 0 {
		panic("cnn: AvgPool2D backward before forward")
	}
	p.gradIn = tensor.Ensure(p.gradIn, p.inShape...)
	p.gradIn.Zero()
	ch, oh, ow := gradOut.Dim(0), gradOut.Dim(1), gradOut.Dim(2)
	h, w := p.inShape[1], p.inShape[2]
	gid := p.gradIn.Data()
	god := gradOut.Data()
	for c := 0; c < ch; c++ {
		cBase := c * h * w
		for oy := 0; oy < oh; oy++ {
			iy0 := oy * p.Stride
			ky1 := p.Size
			if iy0+ky1 > h {
				ky1 = h - iy0
			}
			for ox := 0; ox < ow; ox++ {
				ix0 := ox * p.Stride
				kx1 := p.Size
				if ix0+kx1 > w {
					kx1 = w - ix0
				}
				g := god[(c*oh+oy)*ow+ox] / float64(p.counts[oy*ow+ox])
				for ky := 0; ky < ky1; ky++ {
					row := gid[cBase+(iy0+ky)*w+ix0 : cBase+(iy0+ky)*w+ix0+kx1]
					for i := range row {
						row[i] += g
					}
				}
			}
		}
	}
	return p.gradIn
}
