// Package intrusion implements use case (iii) of §III.C — detecting
// intrusion of wild animals and classifying humans versus animals — with a
// CNN over UWB-radar-style range–time maps, the approach of ref. [46].
//
// A monitoring radar samples the scene at a few Hz; each frame is the
// reflected energy per range bin. A moving target draws a trace through
// the range–time map whose texture differs by gait: a human's bipedal
// steps modulate the reflection at ~2 Hz with a tall, narrow range
// extent, a quadruped's trot modulates faster with a longer, lower body,
// and wind-blown clutter stays unmodulated. The classifier is the zeiot
// CNN (internal/cnn) on those maps — the same network family MicroDeep
// distributes.
package intrusion

import (
	"fmt"
	"math"

	"zeiot/internal/cnn"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// Class is a scene label.
type Class int

// Classes.
const (
	ClassEmpty Class = iota
	ClassHuman
	ClassAnimal
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassEmpty:
		return "empty"
	case ClassHuman:
		return "human"
	case ClassAnimal:
		return "animal"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// NumClasses returns the label count.
func NumClasses() int { return int(numClasses) }

// Config parameterizes map generation.
type Config struct {
	// RangeBins and Frames are the map dimensions (range × time).
	RangeBins, Frames int
	// FrameHz is the radar frame rate.
	FrameHz float64
	// Noise is the clutter noise level.
	Noise float64
	// Seed drives generation.
	Seed uint64
}

// DefaultConfig returns 24 range bins × 24 frames at 8 Hz.
func DefaultConfig() Config {
	return Config{RangeBins: 24, Frames: 24, FrameHz: 8, Noise: 0.12, Seed: 1}
}

// Generate produces one labelled range–time map.
func Generate(cfg Config, class Class, stream *rng.Stream) *tensor.Tensor {
	m := tensor.New(1, cfg.RangeBins, cfg.Frames)
	// Static clutter ridge (fence, vegetation) common to all classes.
	clutterBin := stream.Intn(cfg.RangeBins)
	for f := 0; f < cfg.Frames; f++ {
		for r := 0; r < cfg.RangeBins; r++ {
			v := stream.NormMeanStd(0, cfg.Noise)
			if r == clutterBin {
				v += 0.3
			}
			m.Set(v, 0, r, f)
		}
	}
	if class == ClassEmpty {
		return m
	}
	// A target approaches: range decreases over the window.
	startBin := float64(cfg.RangeBins-3) * (0.6 + 0.4*stream.Float64())
	speedBins := (0.15 + 0.2*stream.Float64()) // bins per frame
	var gaitHz, bodyLen, amp float64
	switch class {
	case ClassHuman:
		gaitHz = 1.8 + 0.4*stream.Float64()
		bodyLen = 1.2 // narrow in range (upright)
		amp = 0.9
	case ClassAnimal:
		gaitHz = 3.2 + 0.8*stream.Float64()
		bodyLen = 3.0 // elongated body spans more range bins
		amp = 0.8
	}
	phase := stream.Float64() * 2 * math.Pi
	for f := 0; f < cfg.Frames; f++ {
		t := float64(f) / cfg.FrameHz
		center := startBin - speedBins*float64(f)
		// Gait modulation of the reflected energy.
		mod := 1 + 0.5*math.Sin(2*math.Pi*gaitHz*t+phase)
		for r := 0; r < cfg.RangeBins; r++ {
			d := (float64(r) - center) / bodyLen
			v := m.At(0, r, f) + amp*mod*math.Exp(-d*d)
			m.Set(v, 0, r, f)
		}
	}
	return m
}

// GenerateDataset produces perClass labelled maps per class.
func GenerateDataset(cfg Config, perClass int, stream *rng.Stream) []cnn.Sample {
	var out []cnn.Sample
	for c := Class(0); c < numClasses; c++ {
		for i := 0; i < perClass; i++ {
			out = append(out, cnn.Sample{
				Input: Generate(cfg, c, stream.Split(fmt.Sprintf("%v-%d", c, i))),
				Label: int(c),
			})
		}
	}
	stream.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// NewDetector builds the CNN of ref. [46]'s scale for the configured map
// size.
func NewDetector(cfg Config, stream *rng.Stream) *cnn.Network {
	return cnn.NewNetwork([]int{1, cfg.RangeBins, cfg.Frames},
		cnn.NewConv2D(1, 6, 3, 3, 1, 1, stream.Split("c1")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(2, 2),
		cnn.NewFlatten(),
		cnn.NewDense(6*(cfg.RangeBins/2)*(cfg.Frames/2), 24, stream.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(24, NumClasses(), stream.Split("d2")),
	)
}

// TrainAndEvaluate runs the full pipeline: generate data, train the CNN,
// and return test accuracy plus the per-class recall.
func TrainAndEvaluate(cfg Config, perClass, epochs int, stream *rng.Stream) (accuracy float64, recall []float64, err error) {
	samples := GenerateDataset(cfg, perClass, stream.Split("data"))
	cut := len(samples) * 3 / 4
	train, test := samples[:cut], samples[cut:]
	net := NewDetector(cfg, stream.Split("net"))
	net.Fit(train, epochs, 16, cnn.NewSGD(0.02, 0.9), stream.Split("fit"))
	correct := 0
	hits := make([]int, NumClasses())
	totals := make([]int, NumClasses())
	for _, s := range test {
		got := net.Predict(s.Input)
		totals[s.Label]++
		if got == s.Label {
			correct++
			hits[s.Label]++
		}
	}
	recall = make([]float64, NumClasses())
	for c := range recall {
		if totals[c] > 0 {
			recall[c] = float64(hits[c]) / float64(totals[c])
		}
	}
	return float64(correct) / float64(len(test)), recall, nil
}
