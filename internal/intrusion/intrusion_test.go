package intrusion

import (
	"math"
	"testing"

	"zeiot/internal/motion"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig()
	m := Generate(cfg, ClassHuman, rng.New(1))
	sh := m.Shape()
	if sh[0] != 1 || sh[1] != cfg.RangeBins || sh[2] != cfg.Frames {
		t.Fatalf("map shape = %v", sh)
	}
}

func TestTargetsCarryMoreEnergyThanEmpty(t *testing.T) {
	cfg := DefaultConfig()
	s := rng.New(2)
	energy := func(c Class) float64 {
		total := 0.0
		for i := 0; i < 10; i++ {
			m := Generate(cfg, c, s.Split("e"))
			for _, v := range m.Data() {
				total += v * v
			}
		}
		return total
	}
	empty := energy(ClassEmpty)
	human := energy(ClassHuman)
	animal := energy(ClassAnimal)
	if human <= empty || animal <= empty {
		t.Fatalf("target energy not above clutter: empty %v human %v animal %v", empty, human, animal)
	}
}

func TestGaitModulationDiffers(t *testing.T) {
	// The time-series of total reflected energy should oscillate faster
	// for animals (trot) than humans (steps): compare dominant lag of the
	// energy autocorrelation.
	cfg := DefaultConfig()
	cfg.Frames = 64
	cfg.FrameHz = 16
	cfg.Noise = 0.02
	meanPeriod := func(c Class, seed uint64) float64 {
		sum, n := 0.0, 0
		for trial := 0; trial < 8; trial++ {
			m := Generate(cfg, c, rng.New(seed+uint64(trial)))
			series := make([]float64, cfg.Frames)
			for f := 0; f < cfg.Frames; f++ {
				for r := 0; r < cfg.RangeBins; r++ {
					series[f] += m.At(0, r, f) * m.At(0, r, f)
				}
			}
			if p := motion.DominantPeriod(series, cfg.FrameHz); p > 0 {
				sum += p
				n++
			}
		}
		if n == 0 {
			t.Fatalf("class %v: no periodicity detected", c)
		}
		return sum / float64(n)
	}
	humanPeriod := meanPeriod(ClassHuman, 100)
	animalPeriod := meanPeriod(ClassAnimal, 200)
	if animalPeriod >= humanPeriod {
		t.Fatalf("animal gait period %v not shorter than human %v", animalPeriod, humanPeriod)
	}
	if math.Abs(humanPeriod-0.5) > 0.25 {
		t.Fatalf("human gait period %v far from ~0.5 s", humanPeriod)
	}
}

func TestDatasetBalancedAndShuffled(t *testing.T) {
	cfg := DefaultConfig()
	samples := GenerateDataset(cfg, 6, rng.New(3))
	if len(samples) != 6*NumClasses() {
		t.Fatalf("dataset size = %d", len(samples))
	}
	counts := make([]int, NumClasses())
	firstRun := 0
	for i, s := range samples {
		counts[s.Label]++
		if i > 0 && samples[i].Label == samples[i-1].Label && firstRun == i-1 {
			firstRun = i
		}
	}
	for c, n := range counts {
		if n != 6 {
			t.Fatalf("class %d has %d samples", c, n)
		}
	}
}

func TestDetectorLearns(t *testing.T) {
	cfg := DefaultConfig()
	stream := rng.New(4)
	acc, recall, err := TrainAndEvaluate(cfg, 40, 8, stream)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("intrusion accuracy = %.3f", acc)
	}
	// Empty scenes must be near-perfectly rejected (false alarms are the
	// deployment killer for intrusion systems).
	if recall[ClassEmpty] < 0.9 {
		t.Fatalf("empty recall = %.3f", recall[ClassEmpty])
	}
}

func TestClassStrings(t *testing.T) {
	if ClassEmpty.String() != "empty" || ClassHuman.String() != "human" || ClassAnimal.String() != "animal" {
		t.Fatal("class strings wrong")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	cfg := DefaultConfig()
	a := Generate(cfg, ClassAnimal, rng.New(9))
	b := Generate(cfg, ClassAnimal, rng.New(9))
	if !tensor.Equal(a, b, 0) {
		t.Fatal("same seed produced different maps")
	}
}
