package ml

import (
	"fmt"
	"math"

	"zeiot/internal/rng"
)

// ConfusionMatrix accumulates per-class prediction counts.
type ConfusionMatrix struct {
	// Counts[true][pred].
	Counts [][]int
}

// NewConfusionMatrix returns a zeroed n-class confusion matrix.
func NewConfusionMatrix(n int) *ConfusionMatrix {
	c := &ConfusionMatrix{Counts: make([][]int, n)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, n)
	}
	return c
}

// Add records one prediction.
func (c *ConfusionMatrix) Add(truth, pred int) { c.Counts[truth][pred]++ }

// Total returns the number of recorded predictions.
func (c *ConfusionMatrix) Total() int {
	t := 0
	for _, row := range c.Counts {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Accuracy returns the fraction of correct predictions.
func (c *ConfusionMatrix) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(total)
}

// PrecisionRecall returns the precision and recall of class k.
func (c *ConfusionMatrix) PrecisionRecall(k int) (precision, recall float64) {
	tp := c.Counts[k][k]
	fp, fn := 0, 0
	for i := range c.Counts {
		if i == k {
			continue
		}
		fp += c.Counts[i][k]
		fn += c.Counts[k][i]
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// F1 returns the F-measure of class k.
func (c *ConfusionMatrix) F1(k int) float64 {
	p, r := c.PrecisionRecall(k)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 returns the unweighted mean F-measure over all classes — the
// "F-measure" the paper reports for three-level congestion.
func (c *ConfusionMatrix) MacroF1() float64 {
	if len(c.Counts) == 0 {
		return 0
	}
	sum := 0.0
	for k := range c.Counts {
		sum += c.F1(k)
	}
	return sum / float64(len(c.Counts))
}

// EvaluateClassifier runs m over test and returns the confusion matrix.
func EvaluateClassifier(m Classifier, test Dataset, numClasses int) *ConfusionMatrix {
	cm := NewConfusionMatrix(numClasses)
	for i, x := range test.X {
		cm.Add(test.Y[i], m.Predict(x))
	}
	return cm
}

// Standardizer rescales features to zero mean and unit variance using
// statistics from the training split only.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes feature statistics over d.
func FitStandardizer(d Dataset) *Standardizer {
	if d.Len() == 0 {
		return &Standardizer{}
	}
	nf := len(d.X[0])
	s := &Standardizer{Mean: make([]float64, nf), Std: make([]float64, nf)}
	for _, row := range d.X {
		for f, v := range row {
			s.Mean[f] += v
		}
	}
	for f := range s.Mean {
		s.Mean[f] /= float64(d.Len())
	}
	for _, row := range d.X {
		for f, v := range row {
			dv := v - s.Mean[f]
			s.Std[f] += dv * dv
		}
	}
	for f := range s.Std {
		s.Std[f] = s.Std[f] / float64(d.Len())
		if s.Std[f] < 1e-12 {
			s.Std[f] = 1
		} else {
			s.Std[f] = math.Sqrt(s.Std[f])
		}
	}
	return s
}

// Apply returns a standardized copy of d.
func (s *Standardizer) Apply(d Dataset) Dataset {
	out := Dataset{X: make([][]float64, d.Len()), Y: append([]int(nil), d.Y...)}
	for i, row := range d.X {
		r := make([]float64, len(row))
		for f, v := range row {
			r[f] = (v - s.Mean[f]) / s.Std[f]
		}
		out.X[i] = r
	}
	return out
}

// CrossValidate runs k-fold cross-validation of trainer on d with a
// deterministic shuffle from stream, returning the pooled confusion matrix.
func CrossValidate(trainer Trainer, d Dataset, k int, stream *rng.Stream) (*ConfusionMatrix, error) {
	if k < 2 || k > d.Len() {
		return nil, fmt.Errorf("ml: bad fold count %d for %d examples", k, d.Len())
	}
	nc := d.NumClasses()
	cm := NewConfusionMatrix(nc)
	perm := stream.Perm(d.Len())
	for fold := 0; fold < k; fold++ {
		var trainIdx, testIdx []int
		for i, j := range perm {
			if i%k == fold {
				testIdx = append(testIdx, j)
			} else {
				trainIdx = append(trainIdx, j)
			}
		}
		train, test := d.Subset(trainIdx), d.Subset(testIdx)
		std := FitStandardizer(train)
		model, err := trainer.Fit(std.Apply(train))
		if err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", fold, err)
		}
		stdTest := std.Apply(test)
		for i, x := range stdTest.X {
			cm.Add(stdTest.Y[i], model.Predict(x))
		}
	}
	return cm, nil
}

// TrainTestSplit partitions d into a train and test set with the given test
// fraction, shuffled by stream.
func TrainTestSplit(d Dataset, testFrac float64, stream *rng.Stream) (train, test Dataset) {
	perm := stream.Perm(d.Len())
	nTest := int(float64(d.Len()) * testFrac)
	if nTest < 1 {
		nTest = 1
	}
	return d.Subset(perm[nTest:]), d.Subset(perm[:nTest])
}
