package ml

import (
	"testing"

	"zeiot/internal/rng"
)

func TestTreeSeparableBlobs(t *testing.T) {
	s := rng.New(1)
	d := blobs(s, 60, 0.3, []float64{0, 0}, []float64{4, 0}, []float64{0, 4})
	train, test := TrainTestSplit(d, 0.3, s)
	m, err := Tree{}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	cm := EvaluateClassifier(m, test, 3)
	if cm.Accuracy() < 0.93 {
		t.Fatalf("tree accuracy = %.3f", cm.Accuracy())
	}
}

func TestTreeXORNeedsDepth(t *testing.T) {
	// XOR is not linearly separable; a depth-1 stump must fail while a
	// deeper tree solves it.
	s := rng.New(2)
	var d Dataset
	for i := 0; i < 400; i++ {
		x := float64(s.Intn(2))
		y := float64(s.Intn(2))
		d.X = append(d.X, []float64{x + 0.1*s.Norm(), y + 0.1*s.Norm()})
		label := 0
		if (x > 0.5) != (y > 0.5) {
			label = 1
		}
		d.Y = append(d.Y, label)
	}
	train, test := TrainTestSplit(d, 0.25, s)
	stump, err := Tree{MaxDepth: 1}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Tree{MaxDepth: 4}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	stumpAcc := EvaluateClassifier(stump, test, 2).Accuracy()
	deepAcc := EvaluateClassifier(deep, test, 2).Accuracy()
	if deepAcc < 0.95 {
		t.Fatalf("deep tree accuracy = %.3f on XOR", deepAcc)
	}
	if stumpAcc > 0.75 {
		t.Fatalf("depth-1 stump suspiciously good on XOR: %.3f", stumpAcc)
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	d := Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []int{1, 1, 1}}
	m, err := Tree{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{99}) != 1 {
		t.Fatal("pure dataset misclassified")
	}
}

func TestTreeValidation(t *testing.T) {
	if _, err := (Tree{}).Fit(Dataset{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if _, err := (Forest{}).Fit(Dataset{}); err == nil {
		t.Fatal("empty dataset accepted by forest")
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	s := rng.New(3)
	d := blobs(s, 80, 0.9, []float64{0, 0, 0, 0}, []float64{2, 0, 1, 0}, []float64{0, 2, 0, 1})
	train, test := TrainTestSplit(d, 0.3, s)
	tree, err := Tree{MaxDepth: 8}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := Forest{Trees: 40, MaxDepth: 8, Seed: 7}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	treeAcc := EvaluateClassifier(tree, test, 3).Accuracy()
	forestAcc := EvaluateClassifier(forest, test, 3).Accuracy()
	if forestAcc+0.03 < treeAcc {
		t.Fatalf("forest %.3f clearly worse than single tree %.3f", forestAcc, treeAcc)
	}
	if forestAcc < 0.7 {
		t.Fatalf("forest accuracy = %.3f", forestAcc)
	}
}

func TestForestDeterministicBySeed(t *testing.T) {
	s := rng.New(4)
	d := blobs(s, 40, 0.6, []float64{0, 0}, []float64{3, 3})
	a, err := Forest{Trees: 10, Seed: 5}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Forest{Trees: 10, Seed: 5}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range d.X {
		if a.Predict(x) != b.Predict(x) {
			t.Fatalf("forest not deterministic at sample %d", i)
		}
	}
}
