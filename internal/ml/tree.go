package ml

import (
	"fmt"
	"math"
	"sort"

	"zeiot/internal/rng"
)

// Tree is a CART decision-tree trainer (Gini impurity, axis-aligned
// splits).
type Tree struct {
	// MaxDepth bounds the tree (0 means 12); MinLeaf is the smallest
	// allowed leaf (0 means 2).
	MaxDepth, MinLeaf int
	// features optionally restricts candidate split features (used by
	// Forest); nil means all.
	features []int
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	label     int
	leaf      bool
}

type treeModel struct {
	root *treeNode
}

// Fit implements Trainer.
func (t Tree) Fit(d Dataset) (Classifier, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 12
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	features := t.features
	if features == nil {
		features = make([]int, len(d.X[0]))
		for f := range features {
			features[f] = f
		}
	}
	nc := d.NumClasses()
	root := growTree(d, idx, features, nc, maxDepth, minLeaf)
	return &treeModel{root: root}, nil
}

func majority(d Dataset, idx []int, nc int) int {
	counts := make([]int, nc)
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	best, bestC := 0, -1
	for c, n := range counts {
		if n > bestC {
			best, bestC = c, n
		}
	}
	return best
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, n := range counts {
		p := float64(n) / float64(total)
		g -= p * p
	}
	return g
}

func growTree(d Dataset, idx, features []int, nc, depth, minLeaf int) *treeNode {
	// Pure node or depth/leaf limits → leaf.
	pure := true
	for _, i := range idx[1:] {
		if d.Y[i] != d.Y[idx[0]] {
			pure = false
			break
		}
	}
	if pure || depth == 0 || len(idx) < 2*minLeaf {
		return &treeNode{leaf: true, label: majority(d, idx, nc)}
	}
	bestFeature, bestThreshold := -1, 0.0
	bestScore := math.Inf(1)
	order := make([]int, len(idx))
	for _, f := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return d.X[order[a]][f] < d.X[order[b]][f] })
		leftCounts := make([]int, nc)
		rightCounts := make([]int, nc)
		for _, i := range order {
			rightCounts[d.Y[i]]++
		}
		for k := 0; k+1 < len(order); k++ {
			i := order[k]
			leftCounts[d.Y[i]]++
			rightCounts[d.Y[i]]--
			if k+1 < minLeaf || len(order)-(k+1) < minLeaf {
				continue
			}
			v, next := d.X[i][f], d.X[order[k+1]][f]
			if v == next {
				continue // cannot split between equal values
			}
			nl, nr := k+1, len(order)-(k+1)
			score := (float64(nl)*gini(leftCounts, nl) + float64(nr)*gini(rightCounts, nr)) / float64(len(order))
			if score < bestScore {
				bestScore = score
				bestFeature = f
				bestThreshold = (v + next) / 2
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, label: majority(d, idx, nc)}
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][bestFeature] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      growTree(d, left, features, nc, depth-1, minLeaf),
		right:     growTree(d, right, features, nc, depth-1, minLeaf),
	}
}

// Predict implements Classifier.
func (m *treeModel) Predict(x []float64) int {
	node := m.root
	for !node.leaf {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.label
}

// Forest is a random-forest trainer: bagged CART trees over random feature
// subsets, majority vote.
type Forest struct {
	// Trees is the ensemble size (0 means 25); MaxDepth/MinLeaf per tree.
	Trees, MaxDepth, MinLeaf int
	// Seed drives bagging and feature subsampling.
	Seed uint64
}

type forestModel struct {
	trees []Classifier
	nc    int
}

// Fit implements Trainer.
func (f Forest) Fit(d Dataset) (Classifier, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	nTrees := f.Trees
	if nTrees <= 0 {
		nTrees = 25
	}
	stream := rng.New(f.Seed)
	nf := len(d.X[0])
	// √nf features per tree, the standard heuristic.
	perTree := int(math.Ceil(math.Sqrt(float64(nf))))
	model := &forestModel{nc: d.NumClasses()}
	for t := 0; t < nTrees; t++ {
		// Bootstrap sample.
		boot := Dataset{X: make([][]float64, d.Len()), Y: make([]int, d.Len())}
		for i := range boot.X {
			j := stream.Intn(d.Len())
			boot.X[i] = d.X[j]
			boot.Y[i] = d.Y[j]
		}
		perm := stream.Perm(nf)
		tree := Tree{MaxDepth: f.MaxDepth, MinLeaf: f.MinLeaf, features: perm[:perTree]}
		clf, err := tree.Fit(boot)
		if err != nil {
			return nil, fmt.Errorf("ml: forest tree %d: %w", t, err)
		}
		model.trees = append(model.trees, clf)
	}
	return model, nil
}

// Predict implements Classifier.
func (m *forestModel) Predict(x []float64) int {
	votes := make([]int, m.nc)
	for _, t := range m.trees {
		y := t.Predict(x)
		if y >= 0 && y < m.nc {
			votes[y]++
		}
	}
	best, bestV := 0, -1
	for c, v := range votes {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}
