package ml

import (
	"math"
	"testing"

	"zeiot/internal/rng"
)

// blobs generates n points per class around well-separated centroids.
func blobs(stream *rng.Stream, perClass int, spread float64, centroids ...[]float64) Dataset {
	var d Dataset
	for c, ctr := range centroids {
		for i := 0; i < perClass; i++ {
			row := make([]float64, len(ctr))
			for f, v := range ctr {
				row[f] = v + stream.NormMeanStd(0, spread)
			}
			d.X = append(d.X, row)
			d.Y = append(d.Y, c)
		}
	}
	return d
}

func TestKNNSeparableBlobs(t *testing.T) {
	s := rng.New(1)
	d := blobs(s, 60, 0.3, []float64{0, 0}, []float64{4, 0}, []float64{0, 4})
	train, test := TrainTestSplit(d, 0.3, s)
	m, err := KNN{K: 3}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	cm := EvaluateClassifier(m, test, 3)
	if cm.Accuracy() < 0.95 {
		t.Fatalf("knn accuracy = %.3f", cm.Accuracy())
	}
}

func TestKNNExactNeighbor(t *testing.T) {
	d := Dataset{X: [][]float64{{0, 0}, {10, 10}}, Y: []int{0, 1}}
	m, err := KNN{K: 1}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{1, 1}) != 0 || m.Predict([]float64{9, 9}) != 1 {
		t.Fatal("1-NN wrong on trivial data")
	}
}

func TestKNNValidation(t *testing.T) {
	if _, err := (KNN{K: 0}).Fit(Dataset{X: [][]float64{{1}}, Y: []int{0}}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := (KNN{K: 1}).Fit(Dataset{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestGaussianNBSeparableBlobs(t *testing.T) {
	s := rng.New(2)
	d := blobs(s, 80, 0.5, []float64{0, 0, 0}, []float64{5, 0, 1}, []float64{0, 5, -1})
	train, test := TrainTestSplit(d, 0.25, s)
	m, err := GaussianNB{}.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	cm := EvaluateClassifier(m, test, 3)
	if cm.Accuracy() < 0.95 {
		t.Fatalf("gnb accuracy = %.3f", cm.Accuracy())
	}
}

func TestGaussianNBUsesVariance(t *testing.T) {
	// Same means, different variances: NB must still separate.
	s := rng.New(3)
	var d Dataset
	for i := 0; i < 300; i++ {
		d.X = append(d.X, []float64{s.NormMeanStd(0, 0.1)})
		d.Y = append(d.Y, 0)
		d.X = append(d.X, []float64{s.NormMeanStd(0, 3)})
		d.Y = append(d.Y, 1)
	}
	m, err := GaussianNB{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{0.01}) != 0 {
		t.Fatal("tight sample classified as broad class")
	}
	if m.Predict([]float64{5}) != 1 {
		t.Fatal("far sample classified as tight class")
	}
}

func TestSoftmaxSeparableBlobs(t *testing.T) {
	s := rng.New(4)
	d := blobs(s, 60, 0.4, []float64{0, 0}, []float64{3, 3})
	train, test := TrainTestSplit(d, 0.3, s)
	std := FitStandardizer(train)
	m, err := Softmax{LR: 0.5, Epochs: 300}.Fit(std.Apply(train))
	if err != nil {
		t.Fatal(err)
	}
	cm := EvaluateClassifier(m, std.Apply(test), 2)
	if cm.Accuracy() < 0.95 {
		t.Fatalf("softmax accuracy = %.3f", cm.Accuracy())
	}
}

func TestConfusionMatrixMetrics(t *testing.T) {
	cm := NewConfusionMatrix(2)
	// 8 TP0, 2 FN0 (pred 1), 1 FP0 (true 1 pred 0), 9 TP1.
	for i := 0; i < 8; i++ {
		cm.Add(0, 0)
	}
	for i := 0; i < 2; i++ {
		cm.Add(0, 1)
	}
	cm.Add(1, 0)
	for i := 0; i < 9; i++ {
		cm.Add(1, 1)
	}
	if cm.Total() != 20 {
		t.Fatalf("Total = %d", cm.Total())
	}
	if math.Abs(cm.Accuracy()-0.85) > 1e-12 {
		t.Fatalf("Accuracy = %v", cm.Accuracy())
	}
	p, r := cm.PrecisionRecall(0)
	if math.Abs(p-8.0/9) > 1e-12 || math.Abs(r-0.8) > 1e-12 {
		t.Fatalf("P/R = %v/%v", p, r)
	}
	f1 := cm.F1(0)
	want := 2 * (8.0 / 9) * 0.8 / (8.0/9 + 0.8)
	if math.Abs(f1-want) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", f1, want)
	}
	macro := cm.MacroF1()
	if macro <= 0 || macro > 1 {
		t.Fatalf("MacroF1 = %v", macro)
	}
}

func TestEmptyClassF1IsZero(t *testing.T) {
	cm := NewConfusionMatrix(3)
	cm.Add(0, 0)
	if cm.F1(2) != 0 {
		t.Fatal("empty class F1 != 0")
	}
}

func TestStandardizer(t *testing.T) {
	d := Dataset{X: [][]float64{{1, 100}, {3, 300}, {5, 200}}, Y: []int{0, 0, 0}}
	std := FitStandardizer(d)
	out := std.Apply(d)
	for f := 0; f < 2; f++ {
		mean, varSum := 0.0, 0.0
		for _, row := range out.X {
			mean += row[f]
		}
		mean /= 3
		for _, row := range out.X {
			varSum += (row[f] - mean) * (row[f] - mean)
		}
		if math.Abs(mean) > 1e-9 || math.Abs(varSum/3-1) > 1e-9 {
			t.Fatalf("feature %d not standardized: mean %v var %v", f, mean, varSum/3)
		}
	}
	// Constant features must not divide by zero.
	dc := Dataset{X: [][]float64{{7}, {7}}, Y: []int{0, 0}}
	stdc := FitStandardizer(dc)
	outc := stdc.Apply(dc)
	if math.IsNaN(outc.X[0][0]) || math.IsInf(outc.X[0][0], 0) {
		t.Fatal("constant feature produced NaN/Inf")
	}
}

func TestCrossValidate(t *testing.T) {
	s := rng.New(5)
	d := blobs(s, 50, 0.3, []float64{0, 0}, []float64{5, 5})
	cm, err := CrossValidate(KNN{K: 3}, d, 5, s.Split("cv"))
	if err != nil {
		t.Fatal(err)
	}
	// Every example is tested exactly once.
	if cm.Total() != d.Len() {
		t.Fatalf("cv total = %d, want %d", cm.Total(), d.Len())
	}
	if cm.Accuracy() < 0.95 {
		t.Fatalf("cv accuracy = %.3f", cm.Accuracy())
	}
	if _, err := CrossValidate(KNN{K: 3}, d, 1, s); err == nil {
		t.Fatal("k=1 folds accepted")
	}
}

func TestTrainTestSplitDisjointAndComplete(t *testing.T) {
	s := rng.New(6)
	d := blobs(s, 25, 0.5, []float64{0}, []float64{1})
	train, test := TrainTestSplit(d, 0.2, s)
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("split sizes %d + %d != %d", train.Len(), test.Len(), d.Len())
	}
	if test.Len() != 10 {
		t.Fatalf("test size = %d", test.Len())
	}
}

func TestSubset(t *testing.T) {
	d := Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []int{0, 1, 2}}
	sub := d.Subset([]int{2, 0})
	if sub.Len() != 2 || sub.X[0][0] != 3 || sub.Y[1] != 0 {
		t.Fatalf("subset = %+v", sub)
	}
}

func TestNumClasses(t *testing.T) {
	d := Dataset{X: [][]float64{{1}, {2}}, Y: []int{0, 4}}
	if d.NumClasses() != 5 {
		t.Fatalf("NumClasses = %d", d.NumClasses())
	}
}
