// Package ml provides the classical learners and evaluation metrics the
// zeiot wireless-sensing pipelines use: k-nearest-neighbours, Gaussian
// naive Bayes, softmax (multinomial logistic) regression, confusion
// matrices with accuracy and macro F-measure, feature standardization, and
// k-fold cross-validation.
package ml

import (
	"fmt"
	"math"
	"sort"

	"zeiot/internal/rng"
)

// Dataset is a labelled feature matrix.
type Dataset struct {
	X [][]float64
	Y []int
}

// Len returns the number of examples.
func (d Dataset) Len() int { return len(d.X) }

// NumClasses returns 1 + the maximum label.
func (d Dataset) NumClasses() int {
	maxY := -1
	for _, y := range d.Y {
		if y > maxY {
			maxY = y
		}
	}
	return maxY + 1
}

// Subset returns the dataset restricted to the given indices (copying the
// index slice only; feature rows are shared).
func (d Dataset) Subset(idx []int) Dataset {
	out := Dataset{X: make([][]float64, len(idx)), Y: make([]int, len(idx))}
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// Classifier is a trained model.
type Classifier interface {
	Predict(x []float64) int
}

// Trainer fits a classifier to a dataset.
type Trainer interface {
	Fit(d Dataset) (Classifier, error)
}

// --- k-nearest neighbours ---

// KNN is a k-nearest-neighbour trainer (Euclidean distance, majority vote,
// lowest class wins ties).
type KNN struct {
	K int
}

type knnModel struct {
	k    int
	data Dataset
}

// Fit implements Trainer.
func (k KNN) Fit(d Dataset) (Classifier, error) {
	if k.K <= 0 {
		return nil, fmt.Errorf("ml: KNN k = %d", k.K)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	return &knnModel{k: k.K, data: d}, nil
}

// Predict implements Classifier.
func (m *knnModel) Predict(x []float64) int {
	type cand struct {
		dist float64
		y    int
	}
	cands := make([]cand, m.data.Len())
	for i, row := range m.data.X {
		cands[i] = cand{dist: sqDist(row, x), y: m.data.Y[i]}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].y < cands[j].y
	})
	k := m.k
	if k > len(cands) {
		k = len(cands)
	}
	votes := make(map[int]int)
	for _, c := range cands[:k] {
		votes[c.y]++
	}
	best, bestV := -1, -1
	for y, v := range votes {
		if v > bestV || (v == bestV && y < best) {
			best, bestV = y, v
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// --- Gaussian naive Bayes ---

// GaussianNB is a Gaussian naive Bayes trainer.
type GaussianNB struct {
	// VarSmoothing is added to every per-feature variance for stability.
	VarSmoothing float64
}

type gnbModel struct {
	prior []float64   // log prior per class
	mean  [][]float64 // [class][feature]
	vari  [][]float64
}

// Fit implements Trainer.
func (g GaussianNB) Fit(d Dataset) (Classifier, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	smooth := g.VarSmoothing
	if smooth <= 0 {
		smooth = 1e-9
	}
	nc := d.NumClasses()
	nf := len(d.X[0])
	m := &gnbModel{
		prior: make([]float64, nc),
		mean:  make([][]float64, nc),
		vari:  make([][]float64, nc),
	}
	counts := make([]int, nc)
	for c := 0; c < nc; c++ {
		m.mean[c] = make([]float64, nf)
		m.vari[c] = make([]float64, nf)
	}
	for i, row := range d.X {
		c := d.Y[i]
		counts[c]++
		for f, v := range row {
			m.mean[c][f] += v
		}
	}
	for c := 0; c < nc; c++ {
		if counts[c] == 0 {
			m.prior[c] = math.Inf(-1)
			continue
		}
		for f := range m.mean[c] {
			m.mean[c][f] /= float64(counts[c])
		}
		m.prior[c] = math.Log(float64(counts[c]) / float64(d.Len()))
	}
	for i, row := range d.X {
		c := d.Y[i]
		for f, v := range row {
			dv := v - m.mean[c][f]
			m.vari[c][f] += dv * dv
		}
	}
	for c := 0; c < nc; c++ {
		if counts[c] == 0 {
			continue
		}
		for f := range m.vari[c] {
			m.vari[c][f] = m.vari[c][f]/float64(counts[c]) + smooth
		}
	}
	return m, nil
}

// Predict implements Classifier.
func (m *gnbModel) Predict(x []float64) int {
	best, bestLL := -1, math.Inf(-1)
	for c := range m.prior {
		ll := m.prior[c]
		if math.IsInf(ll, -1) {
			continue
		}
		for f, v := range x {
			dv := v - m.mean[c][f]
			ll += -0.5*math.Log(2*math.Pi*m.vari[c][f]) - dv*dv/(2*m.vari[c][f])
		}
		if ll > bestLL {
			best, bestLL = c, ll
		}
	}
	return best
}

// --- softmax regression ---

// Softmax is a multinomial logistic regression trainer optimized with
// full-batch gradient descent.
type Softmax struct {
	LR     float64
	Epochs int
	L2     float64
	Seed   uint64
}

type softmaxModel struct {
	w  [][]float64 // [class][feature]
	b  []float64
	nc int
}

// Fit implements Trainer.
func (s Softmax) Fit(d Dataset) (Classifier, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	lr := s.LR
	if lr <= 0 {
		lr = 0.1
	}
	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	nc := d.NumClasses()
	nf := len(d.X[0])
	m := &softmaxModel{w: make([][]float64, nc), b: make([]float64, nc), nc: nc}
	stream := rng.New(s.Seed)
	for c := range m.w {
		m.w[c] = make([]float64, nf)
		for f := range m.w[c] {
			m.w[c][f] = stream.NormMeanStd(0, 0.01)
		}
	}
	probs := make([]float64, nc)
	gw := make([][]float64, nc)
	gb := make([]float64, nc)
	for c := range gw {
		gw[c] = make([]float64, nf)
	}
	inv := 1.0 / float64(d.Len())
	for e := 0; e < epochs; e++ {
		for c := range gw {
			gb[c] = 0
			for f := range gw[c] {
				gw[c][f] = 0
			}
		}
		for i, row := range d.X {
			m.logits(row, probs)
			softmaxInPlace(probs)
			for c := 0; c < nc; c++ {
				g := probs[c]
				if c == d.Y[i] {
					g--
				}
				gb[c] += g
				for f, v := range row {
					gw[c][f] += g * v
				}
			}
		}
		for c := 0; c < nc; c++ {
			m.b[c] -= lr * gb[c] * inv
			for f := range m.w[c] {
				m.w[c][f] -= lr * (gw[c][f]*inv + s.L2*m.w[c][f])
			}
		}
	}
	return m, nil
}

func (m *softmaxModel) logits(x []float64, out []float64) {
	for c := 0; c < m.nc; c++ {
		s := m.b[c]
		for f, v := range x {
			s += m.w[c][f] * v
		}
		out[c] = s
	}
}

func softmaxInPlace(v []float64) {
	maxV := math.Inf(-1)
	for _, x := range v {
		maxV = math.Max(maxV, x)
	}
	sum := 0.0
	for i, x := range v {
		e := math.Exp(x - maxV)
		v[i] = e
		sum += e
	}
	for i := range v {
		v[i] /= sum
	}
}

// Predict implements Classifier.
func (m *softmaxModel) Predict(x []float64) int {
	out := make([]float64, m.nc)
	m.logits(x, out)
	best, bestV := 0, math.Inf(-1)
	for c, v := range out {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}
