package harvest

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

func TestProfileNames(t *testing.T) {
	for _, p := range []Profile{ProfileRF, ProfileSolar, ProfileThermal} {
		got, err := ProfileByName(p.String())
		if err != nil || got != p {
			t.Errorf("ProfileByName(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ProfileByName("fusion"); err == nil {
		t.Error("ProfileByName accepted an unknown profile")
	}
}

// TestTraceIsPure checks PowerW is a pure function of (trace, tick):
// identical inputs agree regardless of evaluation order, and different
// nodes or seeds see different sequences.
func TestTraceIsPure(t *testing.T) {
	tr := Trace{Seed: 42, Node: 7, Profile: ProfileRF, MeanW: 100e-6}
	var forward, backward []float64
	for tick := uint64(0); tick < 1000; tick++ {
		forward = append(forward, tr.PowerW(tick))
	}
	for tick := int64(999); tick >= 0; tick-- {
		backward = append(backward, tr.PowerW(uint64(tick)))
	}
	for i := range forward {
		if forward[i] != backward[len(backward)-1-i] {
			t.Fatalf("PowerW(%d) depends on evaluation order", i)
		}
	}

	other := tr
	other.Node = 8
	same := 0
	for tick := uint64(0); tick < 1000; tick++ {
		if tr.PowerW(tick) == other.PowerW(tick) {
			same++
		}
	}
	// RF dead air makes some coincident zeros expected; full agreement is not.
	if same == 1000 {
		t.Error("two nodes share an identical power sequence")
	}
}

// TestTraceMeanCalibration checks the long-run mean of every profile lands
// near MeanW — the knob the E17 sweep varies.
func TestTraceMeanCalibration(t *testing.T) {
	const mean = 100e-6
	const horizon = 400_000 // many solar periods and RF slots
	for _, p := range []Profile{ProfileRF, ProfileSolar, ProfileThermal} {
		tr := Trace{Seed: 9, Node: 3, Profile: p, MeanW: mean}
		sum := 0.0
		for tick := uint64(0); tick < horizon; tick++ {
			sum += tr.PowerW(tick)
		}
		got := sum / horizon
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("%v: long-run mean %.3g, want %.3g ± 5%%", p, got, mean)
		}
	}
}

func TestTraceZeroMeanIsDead(t *testing.T) {
	tr := Trace{Seed: 1, Node: 0, Profile: ProfileThermal, MeanW: 0}
	for tick := uint64(0); tick < 100; tick++ {
		if tr.PowerW(tick) != 0 {
			t.Fatal("zero-mean trace produced power")
		}
	}
}

func TestCapacitorHysteresis(t *testing.T) {
	if _, err := NewCapacitor(0, 1, 0); err == nil {
		t.Error("NewCapacitor accepted zero capacity")
	}
	if _, err := NewCapacitor(10, 2, 5); err == nil {
		t.Error("NewCapacitor accepted OffJ >= OnJ")
	}

	// Integer-valued joules keep threshold comparisons exact.
	c, err := NewCapacitor(100, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.On || c.Draw(1) {
		t.Fatal("empty capacitor powered on or funded a draw")
	}
	c.Charge(49)
	if c.On {
		t.Fatal("turned on below OnJ")
	}
	c.Charge(1)
	if !c.On {
		t.Fatal("did not turn on at OnJ")
	}
	// A draw that would land below OffJ browns out without spending.
	before := c.StoredJ
	if c.Draw(45) {
		t.Fatal("funded a draw that crosses OffJ")
	}
	if c.On || c.StoredJ != before {
		t.Fatalf("refused draw changed state: on=%v stored=%v (was %v)", c.On, c.StoredJ, before)
	}
	// Off: even an affordable draw is refused until recharged past OnJ.
	if c.Draw(1) {
		t.Fatal("browned-out capacitor funded a draw")
	}
	c.StoredJ = 20 // drain below OnJ: recharging must cross the threshold again
	c.Charge(1)
	if c.On {
		t.Fatal("turned back on below OnJ after brownout")
	}
	c.Charge(29)
	if !c.On {
		t.Fatal("did not turn back on at OnJ after recharge")
	}
	// Charging clamps at capacity.
	if got := c.Charge(1000); c.StoredJ != c.CapJ {
		t.Fatalf("charge did not clamp at capacity: stored %v, accepted %v", c.StoredJ, got)
	}
	// A draw landing exactly at OffJ stays on (threshold is exclusive).
	c.StoredJ, c.On = 50, true
	if !c.Draw(40) || !c.On {
		t.Fatalf("draw to exactly OffJ should succeed and stay on: stored=%v on=%v", c.StoredJ, c.On)
	}
}

// TestNodeCheckpointRoundTrip runs a node halfway, snapshots it through gob
// (the checkpoint path), and requires the resumed copy's ledger to track the
// uninterrupted node tick for tick — the property the E17 kill/resume flow
// depends on.
func TestNodeCheckpointRoundTrip(t *testing.T) {
	mk := func() *Node {
		return &Node{
			Trace:       Trace{Seed: 1234, Node: 5, Profile: ProfileRF, MeanW: 80e-6},
			Cap:         Capacitor{CapJ: 100e-6, OnJ: 50e-6, OffJ: 10e-6},
			TickSeconds: 0.01,
			IdleDrawJ:   0.2e-6,
		}
	}
	taskJ := 30e-6

	ref := mk()
	var mid bytes.Buffer
	for i := 0; i < 20_000; i++ {
		if i == 10_000 {
			if err := gob.NewEncoder(&mid).Encode(ref); err != nil {
				t.Fatal(err)
			}
		}
		if ref.StepTick() {
			ref.TrySpend(taskJ)
		}
	}
	if ref.Brownouts == 0 || ref.ActiveTicks == 0 {
		t.Fatalf("test trace never exercised brownouts (%d) or activity (%d): recalibrate", ref.Brownouts, ref.ActiveTicks)
	}

	var resumed Node
	if err := gob.NewDecoder(bytes.NewReader(mid.Bytes())).Decode(&resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.Tick != 10_000 {
		t.Fatalf("checkpoint captured tick %d, want 10000", resumed.Tick)
	}
	for i := 0; i < 10_000; i++ {
		if resumed.StepTick() {
			resumed.TrySpend(taskJ)
		}
	}
	if resumed != *ref {
		t.Fatalf("resumed node diverged:\n resumed %+v\n ref     %+v", resumed, *ref)
	}

	if dc := ref.DutyCycle(); dc <= 0 || dc >= 1 {
		t.Errorf("duty cycle %v not in (0,1) for an intermittent trace", dc)
	}
}

// TestNodeDutyCycleScalesWithPower checks more harvest means more uptime —
// the monotonicity the E17 sweep reports.
func TestNodeDutyCycleScalesWithPower(t *testing.T) {
	duty := func(meanW float64) float64 {
		n := &Node{
			Trace:       Trace{Seed: 7, Node: 1, Profile: ProfileSolar, MeanW: meanW},
			Cap:         Capacitor{CapJ: 100e-6, OnJ: 50e-6, OffJ: 10e-6},
			TickSeconds: 0.01,
			IdleDrawJ:   0.2e-6,
		}
		for i := 0; i < 30_000; i++ {
			if n.StepTick() {
				n.TrySpend(2e-6)
			}
		}
		return n.DutyCycle()
	}
	low, high := duty(5e-6), duty(400e-6)
	if !(high > low) {
		t.Errorf("duty cycle not increasing in harvest power: %v (5µW) vs %v (400µW)", low, high)
	}
}
