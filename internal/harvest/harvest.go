// Package harvest models per-node ambient energy harvesting for the
// intermittent-power runtime: seeded harvest traces (RF, solar, thermal),
// capacitor state with turn-on/brown-out hysteresis, and a tick-driven node
// account that funds compute work.
//
// The package exists alongside backscatter.Harvester deliberately. That type
// models a single device with a *constant* harvest power and unexported
// state — fine for the closed-form duty-cycle analysis in E11, unusable for
// a checkpointed simulation that must serialize every node's charge level
// and see time-varying ambient power. Here the trace is a pure function of
// (seed, node, tick) — no stored generator state — so resuming a killed run
// needs only the tick counter and the capacitor charge, and every node's
// power sequence is independent of how many other nodes exist or in what
// order they are stepped.
package harvest

import (
	"fmt"
	"math"

	"zeiot/internal/rng"
)

// Profile selects the shape of a node's ambient power over time.
type Profile int

// Harvest profiles. The mean of PowerW over a long horizon is MeanW for
// every profile; they differ in burstiness, which is what decides whether a
// capacitor rides through or browns out.
const (
	// ProfileRF is bursty: power arrives in short random bursts (a reader
	// or WiFi transmitter duty-cycling nearby) separated by dead air.
	ProfileRF Profile = iota + 1
	// ProfileSolar is a slow periodic swell (indoor light over a work
	// cycle) with small flicker, including dark spans of zero harvest.
	ProfileSolar
	// ProfileThermal is near-constant with small jitter — a thermal
	// gradient varies slowly and never vanishes.
	ProfileThermal
)

// String returns the profile's flag-level name.
func (p Profile) String() string {
	switch p {
	case ProfileRF:
		return "rf"
	case ProfileSolar:
		return "solar"
	case ProfileThermal:
		return "thermal"
	default:
		return fmt.Sprintf("profile(%d)", int(p))
	}
}

// ProfileByName parses a profile name as used by the -harvestprofile flag.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "rf":
		return ProfileRF, nil
	case "solar":
		return ProfileSolar, nil
	case "thermal":
		return ProfileThermal, nil
	default:
		return 0, fmt.Errorf("harvest: unknown profile %q (want rf, solar, or thermal)", name)
	}
}

// Trace is a deterministic ambient-power sequence for one node. PowerW is a
// pure function of the fields and the tick — a Trace carries no generator
// state, which is what makes harvest-driven runs checkpointable without
// serializing any randomness.
type Trace struct {
	Seed    uint64
	Node    int
	Profile Profile
	// MeanW is the long-run mean harvest power in watts.
	MeanW float64
}

// u01 hashes (seed, node, tick, salt) to a uniform variate in [0, 1).
func (t Trace) u01(tick uint64, salt uint64) float64 {
	x := rng.Mix64(t.Seed ^ rng.Mix64(uint64(t.Node)+0x9e3779b97f4a7c15) ^ rng.Mix64(tick+salt))
	return float64(x>>11) / (1 << 53)
}

// RF burst geometry: bursts are burstLen ticks long and begin a slot with
// probability rfDuty, giving power 1/rfDuty times the mean inside a burst.
const (
	rfBurstLen = 8
	rfDuty     = 0.25
)

// Solar period in ticks (at the runtime's 10 ms tick: one minute of
// simulated time per light cycle — compressed "diurnal" cycling).
const solarPeriodTicks = 6000

// PowerW returns the ambient power available at the given tick, in watts.
// Identical (Seed, Node, Profile, MeanW, tick) always yields the identical
// power, regardless of call order or history.
func (t Trace) PowerW(tick uint64) float64 {
	if t.MeanW <= 0 {
		return 0
	}
	switch t.Profile {
	case ProfileRF:
		// One draw per burst slot decides whether the slot is live; a
		// second per-tick draw adds fast fading within the burst.
		slot := tick / rfBurstLen
		if t.u01(slot, 0x5f) >= rfDuty {
			return 0
		}
		fade := 0.5 + t.u01(tick, 0xfa) // mean 1.0
		return t.MeanW / rfDuty * fade
	case ProfileSolar:
		// Positive half-sine over the period (mean 1/pi of peak), dark the
		// other half, with ±20% flicker.
		phase := float64(tick%solarPeriodTicks) / solarPeriodTicks
		s := math.Sin(2 * math.Pi * phase)
		if s <= 0 {
			return 0
		}
		flicker := 0.8 + 0.4*t.u01(tick, 0x50) // mean 1.0
		return t.MeanW * math.Pi * s * flicker
	case ProfileThermal:
		jitter := 0.9 + 0.2*t.u01(tick, 0x7e) // mean 1.0
		return t.MeanW * jitter
	default:
		return 0
	}
}

// Capacitor is an energy store with turn-on/brown-out hysteresis, the
// backscatter.Harvester power model with every field exported so the state
// checkpoints through encoding/gob. Invariants: 0 <= OffJ < OnJ <= CapJ.
type Capacitor struct {
	// CapJ is the usable capacity in joules.
	CapJ float64
	// OnJ and OffJ are the turn-on and brown-out thresholds.
	OnJ, OffJ float64
	// StoredJ is the current charge; On is the power state.
	StoredJ float64
	On      bool
}

// NewCapacitor validates thresholds and returns an empty, off capacitor.
func NewCapacitor(capJ, onJ, offJ float64) (*Capacitor, error) {
	if capJ <= 0 {
		return nil, fmt.Errorf("harvest: non-positive capacity %v", capJ)
	}
	if !(offJ >= 0 && offJ < onJ && onJ <= capJ) {
		return nil, fmt.Errorf("harvest: need 0 <= offJ < onJ <= capJ, got off=%v on=%v cap=%v", offJ, onJ, capJ)
	}
	return &Capacitor{CapJ: capJ, OnJ: onJ, OffJ: offJ}, nil
}

// Charge adds harvested energy (clamped at capacity) and turns the device
// on once the store reaches OnJ. It returns the energy actually stored.
func (c *Capacitor) Charge(j float64) float64 {
	if j < 0 {
		panic("harvest: negative charge")
	}
	stored := math.Min(c.CapJ, c.StoredJ+j) - c.StoredJ
	c.StoredJ += stored
	if c.StoredJ >= c.OnJ {
		c.On = true
	}
	return stored
}

// Draw spends j joules. It returns false — drawing nothing — if the device
// is off, and browns the device out (returning false) if the draw would push
// the store below OffJ: starting work without the energy to finish it is how
// intermittent devices die, so a refused draw costs the on-state and the
// device must recharge past OnJ.
func (c *Capacitor) Draw(j float64) bool {
	if j < 0 {
		panic("harvest: negative draw")
	}
	if !c.On {
		return false
	}
	if c.StoredJ-j < c.OffJ {
		c.On = false
		return false
	}
	c.StoredJ -= j
	return true
}

// Node couples one trace with one capacitor and the accounting the
// experiments report: duty cycle, brownout count, and the energy ledger.
// All fields are exported; a Node round-trips through gob, which together
// with the stateless trace makes the whole harvest layer checkpointable.
type Node struct {
	Trace Trace
	Cap   Capacitor
	// TickSeconds is the simulation tick length.
	TickSeconds float64
	// Tick is the next tick to execute (ticks completed so far).
	Tick uint64

	// IdleDrawJ is the leakage/quiescent energy burned per tick while on —
	// without it a capacitor above OnJ could never brown out between tasks.
	IdleDrawJ float64

	HarvestedJ  float64
	SpentJ      float64
	ActiveTicks uint64
	Brownouts   uint64
}

// StepTick advances the node one tick: harvest according to the trace, then
// burn the idle draw if powered. It returns whether the node is on after the
// tick. Work done during the tick goes through TrySpend.
func (n *Node) StepTick() bool {
	wasOn := n.Cap.On
	n.HarvestedJ += n.Cap.Charge(n.Trace.PowerW(n.Tick) * n.TickSeconds)
	n.Tick++
	if n.Cap.On {
		if n.Cap.Draw(n.IdleDrawJ) {
			n.SpentJ += n.IdleDrawJ
		}
	}
	if n.Cap.On {
		n.ActiveTicks++
	} else if wasOn {
		n.Brownouts++
	}
	return n.Cap.On
}

// TrySpend draws task energy from the capacitor, recording a brownout when
// the draw kills the node. It reports whether the task ran.
func (n *Node) TrySpend(j float64) bool {
	wasOn := n.Cap.On
	if n.Cap.Draw(j) {
		n.SpentJ += j
		return true
	}
	if wasOn && !n.Cap.On {
		n.Brownouts++
	}
	return false
}

// DutyCycle returns the fraction of executed ticks the node was powered.
func (n *Node) DutyCycle() float64 {
	if n.Tick == 0 {
		return 0
	}
	return float64(n.ActiveTicks) / float64(n.Tick)
}
