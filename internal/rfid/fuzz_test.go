package rfid

import (
	"math"
	"testing"
)

// FuzzUnwrapPhases checks the unwrapping invariants on arbitrary inputs:
// same length, consecutive deltas within (-π, π], and exact preservation of
// the first element.
func FuzzUnwrapPhases(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 250, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		wrapped := make([]float64, len(data))
		for i, b := range data {
			wrapped[i] = float64(b) / 255 * 2 * math.Pi
		}
		out := UnwrapPhases(wrapped)
		if len(out) != len(wrapped) {
			t.Fatalf("length changed: %d -> %d", len(wrapped), len(out))
		}
		if len(out) == 0 {
			return
		}
		if out[0] != wrapped[0] {
			t.Fatalf("first element changed: %v -> %v", wrapped[0], out[0])
		}
		for i := 1; i < len(out); i++ {
			d := out[i] - out[i-1]
			if d <= -math.Pi-1e-9 || d > math.Pi+1e-9 {
				t.Fatalf("delta %v at %d outside (-π, π]", d, i)
			}
		}
	})
}
