package rfid

import (
	"math"
	"testing"

	"zeiot/internal/geom"
	"zeiot/internal/rng"
)

func TestPhaseWrapsAndDependsOnDistance(t *testing.T) {
	r := UHFReader(geom.Point{})
	p1 := r.Phase(geom.Point{X: 1, Y: 0}, nil)
	p2 := r.Phase(geom.Point{X: 1.01, Y: 0}, nil)
	if p1 < 0 || p1 >= 2*math.Pi || p2 < 0 || p2 >= 2*math.Pi {
		t.Fatalf("phases out of range: %v %v", p1, p2)
	}
	if p1 == p2 {
		t.Fatal("phase insensitive to distance")
	}
	// Moving by λ/2 wraps the round-trip phase by exactly 2π.
	p3 := r.Phase(geom.Point{X: 1 + r.Lambda/2, Y: 0}, nil)
	if math.Abs(p3-p1) > 1e-9 {
		t.Fatalf("λ/2 move did not wrap cleanly: %v vs %v", p1, p3)
	}
}

func TestUnwrapRecoversLinearMotion(t *testing.T) {
	r := UHFReader(geom.Point{})
	r.PhaseNoise = 0
	var wrapped []float64
	// Tag recedes from 1 m to 2 m in 2 cm steps (< λ/4 per step).
	for i := 0; i <= 50; i++ {
		d := 1.0 + 0.02*float64(i)
		wrapped = append(wrapped, r.Phase(geom.Point{X: d, Y: 0}, nil))
	}
	dd := DeltaDistances(UnwrapPhases(wrapped), r.Lambda)
	got := dd[len(dd)-1]
	if math.Abs(got-1.0) > 1e-6 {
		t.Fatalf("recovered distance change %v, want 1.0", got)
	}
}

func TestEstimateDirection(t *testing.T) {
	r := UHFReader(geom.Point{})
	r.PhaseNoise = 0.05
	s := rng.New(1)
	seq := func(from, to float64) []float64 {
		var out []float64
		steps := 50
		for i := 0; i <= steps; i++ {
			d := from + (to-from)*float64(i)/float64(steps)
			out = append(out, r.Phase(geom.Point{X: d, Y: 0}, s))
		}
		return out
	}
	if got := EstimateDirection(seq(2, 1), r.Lambda, 0.2); got != DirectionApproaching {
		t.Fatalf("approaching classified as %v", got)
	}
	if got := EstimateDirection(seq(1, 2), r.Lambda, 0.2); got != DirectionReceding {
		t.Fatalf("receding classified as %v", got)
	}
	if got := EstimateDirection(seq(1.5, 1.5), r.Lambda, 0.2); got != DirectionStationary {
		t.Fatalf("stationary classified as %v", got)
	}
	if got := EstimateDirection(nil, r.Lambda, 0.2); got != DirectionStationary {
		t.Fatalf("empty sequence classified as %v", got)
	}
}

func testReaders() []Reader {
	rs := []Reader{
		UHFReader(geom.Point{X: 0, Y: 0}),
		UHFReader(geom.Point{X: 6, Y: 0}),
		UHFReader(geom.Point{X: 3, Y: 5}),
		UHFReader(geom.Point{X: 0, Y: 5}),
	}
	for i := range rs {
		rs[i].PhaseNoise = 0.05
		rs[i].Offset = 0.5 * float64(i+1)
	}
	return rs
}

func TestTrackerValidation(t *testing.T) {
	if _, err := NewTracker(testReaders()[:2], geom.Point{}); err == nil {
		t.Fatal("two readers accepted")
	}
	tr, err := NewTracker(testReaders(), geom.Point{X: 3, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Observe([]float64{1, 2}); err == nil {
		t.Fatal("wrong phase count accepted")
	}
}

func TestTrackerFollowsPath(t *testing.T) {
	readers := testReaders()
	stream := rng.New(2)
	start := geom.Point{X: 2, Y: 2}
	tr, err := NewTracker(readers, start)
	if err != nil {
		t.Fatal(err)
	}
	// True path: an L-shaped walk in 2 cm steps.
	truth := start
	maxErr := 0.0
	step := func(dx, dy float64) {
		truth = truth.Add(geom.Point{X: dx, Y: dy})
		phases := make([]float64, len(readers))
		for i, r := range readers {
			phases[i] = r.Phase(truth, stream)
		}
		est, err := tr.Observe(phases)
		if err != nil {
			t.Fatal(err)
		}
		maxErr = math.Max(maxErr, geom.Dist(est, truth))
	}
	for i := 0; i < 80; i++ {
		step(0.02, 0)
	}
	for i := 0; i < 60; i++ {
		step(0, 0.02)
	}
	if maxErr > 0.15 {
		t.Fatalf("max tracking error %.3f m", maxErr)
	}
}

func TestTrackerRobustToReaderOffsets(t *testing.T) {
	// Offsets differ per reader and are unknown; tracking must still work
	// because it uses phase *changes*.
	readers := testReaders()
	for i := range readers {
		readers[i].Offset = float64(i) * 1.7
		readers[i].PhaseNoise = 0
	}
	truth := geom.Point{X: 2.5, Y: 2.5}
	tr, err := NewTracker(readers, truth)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		truth = truth.Add(geom.Point{X: 0.02, Y: 0.01})
		phases := make([]float64, len(readers))
		for j, r := range readers {
			phases[j] = r.Phase(truth, nil)
		}
		if _, err := tr.Observe(phases); err != nil {
			t.Fatal(err)
		}
	}
	if d := geom.Dist(tr.Pos(), truth); d > 0.05 {
		t.Fatalf("final error %.3f m with unknown offsets", d)
	}
}

func TestSkeletonTracksTwoJoints(t *testing.T) {
	readers := testReaders()
	stream := rng.New(3)
	shoulder := geom.Point{X: 3, Y: 3}
	wrist := geom.Point{X: 3.5, Y: 3}
	sk, err := NewSkeleton(readers, []string{"shoulder", "wrist"}, []geom.Point{shoulder, wrist})
	if err != nil {
		t.Fatal(err)
	}
	// Arm raise: wrist arcs around the shoulder.
	armLen := geom.Dist(shoulder, wrist)
	for i := 0; i <= 45; i++ {
		ang := float64(i) * math.Pi / 2 / 45
		wrist = geom.Point{X: shoulder.X + armLen*math.Cos(ang), Y: shoulder.Y + armLen*math.Sin(ang)}
		phases := make([][]float64, 2)
		for j, joint := range []geom.Point{shoulder, wrist} {
			phases[j] = make([]float64, len(readers))
			for k, r := range readers {
				phases[j][k] = r.Phase(joint, stream)
			}
		}
		if _, err := sk.Observe(phases); err != nil {
			t.Fatal(err)
		}
	}
	// Final limb angle should be ~90°.
	got := sk.LimbAngle(0, 1)
	if math.Abs(got-math.Pi/2) > 0.15 {
		t.Fatalf("limb angle = %.3f rad, want ~π/2", got)
	}
}

func TestSkeletonValidation(t *testing.T) {
	if _, err := NewSkeleton(testReaders(), []string{"a"}, nil); err == nil {
		t.Fatal("mismatched names/starts accepted")
	}
}
