// Package rfid implements the RFID-tag-array sensing of §III.A: phase-based
// ranging, movement-direction estimation from backscatter phase (ref. [61]),
// and RF-Kinect-style body tracking from tags attached to joints (Fig. 2(a)).
//
// A COTS reader observes the backscatter phase θ = (4π·d/λ + θ_offset) mod
// 2π of each tag — a precise but ambiguous distance measurement. Tracking
// unwraps the phase over time to recover distance *changes*, which is
// enough to follow motion from a known starting pose, exactly the
// training-free approach RF-Kinect takes.
package rfid

import (
	"fmt"
	"math"

	"zeiot/internal/geom"
	"zeiot/internal/rng"
)

// Direction of radial movement relative to a reader.
type Direction int

// Directions.
const (
	DirectionStationary Direction = iota
	DirectionApproaching
	DirectionReceding
)

func (d Direction) String() string {
	switch d {
	case DirectionStationary:
		return "stationary"
	case DirectionApproaching:
		return "approaching"
	case DirectionReceding:
		return "receding"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Reader is one RFID reader antenna.
type Reader struct {
	Pos geom.Point
	// Lambda is the carrier wavelength in metres (~0.327 m in the 915 MHz
	// UHF band).
	Lambda float64
	// PhaseNoise is the 1σ phase measurement noise in radians.
	PhaseNoise float64
	// Offset is the per-reader constant phase offset (cable lengths,
	// tag chip) — unknown to the estimator, calibrated away by differencing.
	Offset float64
}

// UHFReader returns a reader at pos with 915 MHz parameters.
func UHFReader(pos geom.Point) Reader {
	return Reader{Pos: pos, Lambda: 0.327, PhaseNoise: 0.1, Offset: 1.234}
}

// Phase returns the wrapped backscatter phase for a tag at p.
func (r Reader) Phase(p geom.Point, stream *rng.Stream) float64 {
	d := geom.Dist(r.Pos, p)
	theta := 4*math.Pi*d/r.Lambda + r.Offset
	if stream != nil {
		theta += stream.NormMeanStd(0, r.PhaseNoise)
	}
	return math.Mod(theta, 2*math.Pi)
}

// UnwrapPhases removes 2π jumps from a wrapped phase sequence, assuming the
// tag moves less than λ/4 between consecutive readings (the standard
// tracking assumption).
func UnwrapPhases(wrapped []float64) []float64 {
	out := make([]float64, len(wrapped))
	if len(wrapped) == 0 {
		return out
	}
	out[0] = wrapped[0]
	for i := 1; i < len(wrapped); i++ {
		delta := wrapped[i] - wrapped[i-1]
		for delta > math.Pi {
			delta -= 2 * math.Pi
		}
		for delta < -math.Pi {
			delta += 2 * math.Pi
		}
		out[i] = out[i-1] + delta
	}
	return out
}

// DeltaDistances converts an unwrapped phase sequence into distance changes
// relative to the first reading: Δd = Δθ·λ/(4π).
func DeltaDistances(unwrapped []float64, lambda float64) []float64 {
	out := make([]float64, len(unwrapped))
	for i, th := range unwrapped {
		out[i] = (th - unwrapped[0]) * lambda / (4 * math.Pi)
	}
	return out
}

// EstimateDirection classifies the radial movement of a tag from its
// wrapped phase sequence (ref. [61]): the slope of the unwrapped phase is
// negative while approaching and positive while receding. threshold is the
// minimum total distance change (metres) treated as movement.
func EstimateDirection(wrapped []float64, lambda, threshold float64) Direction {
	if len(wrapped) < 2 {
		return DirectionStationary
	}
	dd := DeltaDistances(UnwrapPhases(wrapped), lambda)
	total := dd[len(dd)-1]
	switch {
	case total <= -threshold:
		return DirectionApproaching
	case total >= threshold:
		return DirectionReceding
	default:
		return DirectionStationary
	}
}

// Tracker follows one tag from a known starting position using phase
// streams from ≥ 3 readers: per reader, unwrapped phase gives the distance
// change, so the tag's current distance to each reader is known and the
// position follows by Gauss–Newton trilateration seeded at the previous
// estimate.
type Tracker struct {
	Readers []Reader
	// pos is the current estimate; d0 the initial distances.
	pos  geom.Point
	d0   []float64
	last [][]float64 // per-reader wrapped phase history (len 1: latest)
	init bool
}

// NewTracker starts tracking a tag known to begin at start.
func NewTracker(readers []Reader, start geom.Point) (*Tracker, error) {
	if len(readers) < 3 {
		return nil, fmt.Errorf("rfid: tracking needs >= 3 readers, got %d", len(readers))
	}
	t := &Tracker{Readers: readers, pos: start, d0: make([]float64, len(readers))}
	for i, r := range readers {
		t.d0[i] = geom.Dist(r.Pos, start)
	}
	t.last = make([][]float64, len(readers))
	return t, nil
}

// Observe ingests one wrapped-phase reading per reader and returns the
// updated position estimate.
func (t *Tracker) Observe(phases []float64) (geom.Point, error) {
	if len(phases) != len(t.Readers) {
		return geom.Point{}, fmt.Errorf("rfid: %d phases for %d readers", len(phases), len(t.Readers))
	}
	for i, ph := range phases {
		t.last[i] = append(t.last[i], ph)
	}
	t.init = true
	// Current distance to each reader = initial distance + Δd from the
	// unwrapped phase stream.
	dists := make([]float64, len(t.Readers))
	for i, r := range t.Readers {
		dd := DeltaDistances(UnwrapPhases(t.last[i]), r.Lambda)
		dists[i] = t.d0[i] + dd[len(dd)-1]
	}
	// Gauss–Newton from the previous estimate.
	p := t.pos
	for iter := 0; iter < 10; iter++ {
		var jtj [2][2]float64
		var jtr [2]float64
		for i, r := range t.Readers {
			di := geom.Dist(r.Pos, p)
			if di < 1e-6 {
				di = 1e-6
			}
			res := di - dists[i]
			jx := (p.X - r.Pos.X) / di
			jy := (p.Y - r.Pos.Y) / di
			jtj[0][0] += jx * jx
			jtj[0][1] += jx * jy
			jtj[1][0] += jy * jx
			jtj[1][1] += jy * jy
			jtr[0] += jx * res
			jtr[1] += jy * res
		}
		det := jtj[0][0]*jtj[1][1] - jtj[0][1]*jtj[1][0]
		if math.Abs(det) < 1e-12 {
			break
		}
		dx := (jtj[1][1]*jtr[0] - jtj[0][1]*jtr[1]) / det
		dy := (jtj[0][0]*jtr[1] - jtj[1][0]*jtr[0]) / det
		p.X -= dx
		p.Y -= dy
		if math.Hypot(dx, dy) < 1e-9 {
			break
		}
	}
	t.pos = p
	return p, nil
}

// Pos returns the current estimate.
func (t *Tracker) Pos() geom.Point { return t.pos }

// Skeleton tracks a small tag array attached to body joints (Fig. 2(a)):
// one Tracker per joint, plus derived joint angles.
type Skeleton struct {
	// JointNames orders the joints; Trackers aligns with it.
	JointNames []string
	Trackers   []*Tracker
}

// NewSkeleton builds one tracker per joint from the shared reader set.
func NewSkeleton(readers []Reader, names []string, start []geom.Point) (*Skeleton, error) {
	if len(names) != len(start) {
		return nil, fmt.Errorf("rfid: %d names for %d start positions", len(names), len(start))
	}
	s := &Skeleton{JointNames: names}
	for _, p := range start {
		tr, err := NewTracker(readers, p)
		if err != nil {
			return nil, err
		}
		s.Trackers = append(s.Trackers, tr)
	}
	return s, nil
}

// Observe ingests one phase reading per (joint, reader) and returns the
// estimated joint positions.
func (s *Skeleton) Observe(phases [][]float64) ([]geom.Point, error) {
	if len(phases) != len(s.Trackers) {
		return nil, fmt.Errorf("rfid: %d phase sets for %d joints", len(phases), len(s.Trackers))
	}
	out := make([]geom.Point, len(s.Trackers))
	for i, tr := range s.Trackers {
		p, err := tr.Observe(phases[i])
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// LimbAngle returns the orientation (radians) of the limb from joint a to
// joint b under the current estimates.
func (s *Skeleton) LimbAngle(a, b int) float64 {
	pa, pb := s.Trackers[a].Pos(), s.Trackers[b].Pos()
	return math.Atan2(pb.Y-pa.Y, pb.X-pa.X)
}
