package modality

import (
	"zeiot/internal/cnn"
	"zeiot/internal/rfid"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
	"zeiot/internal/vitals"
)

// Vitals adapts the RF-ECG chest-tag-array generator (internal/vitals) as a
// binary resting/elevated modality over per-tag displacement traces: each
// tag's wrapped phase stream is unwrapped to chest-surface displacement in
// millimetres, giving a (1, Tags, samples) image whose periodicity carries
// the heart and respiration rates.
type Vitals struct {
	// Cfg is the sensing setup. The default shortens the window from the
	// e15 estimation grade (30 s) to 8 s — enough cycles for a CNN to
	// separate the rate classes at a per-sample size that trains quickly.
	Cfg vitals.Config
}

// NewVitals returns the adapter: the default 4-tag array read at 20 Hz over
// 8 s windows.
func NewVitals() *Vitals {
	cfg := vitals.DefaultConfig()
	cfg.WindowSec = 8
	return &Vitals{Cfg: cfg}
}

// Spec implements Source.
func (v *Vitals) Spec() Spec {
	n := int(v.Cfg.SampleHz * v.Cfg.WindowSec)
	return Spec{
		Name:       "vitals",
		Shape:      []int{1, v.Cfg.Tags, n},
		Classes:    2,
		ClassNames: []string{"resting", "elevated"},
	}
}

// GenerateClass implements ClassConditional: one capture window of a
// subject whose rates sit in the resting (class 0) or elevated (class 1)
// band, with the subject's exact rates drawn per sample.
func (v *Vitals) GenerateClass(class int, stream *rng.Stream) (*tensor.Tensor, error) {
	s := vitals.RestingAdult()
	if class == 1 {
		// Post-exertion: tachycardic heart, fast shallow breathing.
		s.HeartHz = 1.6 + stream.Float64()*0.4
		s.BreathHz = 0.4 + stream.Float64()*0.15
		s.HeartMM = 0.7
		s.BreathMM = 3
	} else {
		s.HeartHz = 0.9 + stream.Float64()*0.4
		s.BreathHz = 0.2 + stream.Float64()*0.1
	}
	phases := vitals.Capture(v.Cfg, s, stream)
	n := int(v.Cfg.SampleHz * v.Cfg.WindowSec)
	out := tensor.New(1, v.Cfg.Tags, n)
	for tag, p := range phases {
		dd := rfid.DeltaDistances(rfid.UnwrapPhases(p), v.Cfg.Reader.Lambda)
		for i, d := range dd {
			out.Set(d*1000, 0, tag, i) // metres → millimetres
		}
	}
	return out, nil
}

// Generate implements Source.
func (v *Vitals) Generate(n int, stream *rng.Stream) ([]cnn.Sample, error) {
	return generateBalanced(v, n, stream)
}
