package modality

import (
	"fmt"

	"zeiot/internal/cnn"
	"zeiot/internal/csi"
	"zeiot/internal/geom"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// CSILoc adapts the compressed-beamforming localization generator
// (internal/csi) as a 7-class position modality over 624-angle feature
// vectors.
type CSILoc struct {
	// Room is the simulated scene; Positions the candidate person
	// positions (one class per position).
	Room      csi.SceneConfig
	Positions []geom.Point
}

// NewCSILoc returns the adapter on the paper's best pattern —
// walking behaviour with divergent antenna orientations, the ~96% case of
// ref. [8] — over the seven candidate positions.
func NewCSILoc() *CSILoc {
	return &CSILoc{
		Room:      csi.DefaultRoom(csi.PaperPatterns()[0]),
		Positions: csi.SevenPositions(),
	}
}

// Spec implements Source.
func (c *CSILoc) Spec() Spec {
	names := make([]string, len(c.Positions))
	for i := range c.Positions {
		names[i] = fmt.Sprintf("pos%d", i)
	}
	return Spec{
		Name:       "csi",
		Shape:      []int{c.Room.Feedback.NumFeatures()},
		Classes:    len(c.Positions),
		ClassNames: names,
	}
}

// GenerateClass implements ClassConditional: one channel snapshot with the
// person at position class, compressed to the beamforming-angle features.
func (c *CSILoc) GenerateClass(class int, stream *rng.Stream) (*tensor.Tensor, error) {
	if class < 0 || class >= len(c.Positions) {
		return nil, fmt.Errorf("modality: csi position %d outside [0, %d)", class, len(c.Positions))
	}
	feats, err := c.Room.Feedback.Features(c.Room.Snapshot(c.Positions[class], stream))
	if err != nil {
		return nil, err
	}
	return tensor.FromSlice(feats, len(feats)), nil
}

// Generate implements Source.
func (c *CSILoc) Generate(n int, stream *rng.Stream) ([]cnn.Sample, error) {
	return generateBalanced(c, n, stream)
}
