package modality

import (
	"fmt"

	"zeiot/internal/cnn"
	"zeiot/internal/motion"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// Motion adapts the Motion-Fi backscatter-RSSI generator (internal/motion)
// as a 4-class exercise modality over fixed-length RSSI windows: idle tag,
// squats, steps, and arm raises, separated by their repetition periods.
type Motion struct {
	// Base is the workout template; per-class variants override the rep
	// period and count. WindowSec is the fixed window each sample is
	// cropped or zero-padded to.
	Base      motion.Workout
	WindowSec float64
}

// NewMotion returns the adapter: 6 s windows at the default 50 Hz RSSI
// rate.
func NewMotion() *Motion {
	base := motion.DefaultWorkout()
	base.LeadSec, base.TrailSec = 1, 1
	return &Motion{Base: base, WindowSec: 6}
}

// motionClasses maps class index to the exercise's nominal rep period in
// seconds; period 0 is the idle class.
var motionClasses = []struct {
	name      string
	periodSec float64
}{
	{"idle", 0},
	{"squat", 2.0},
	{"step", 0.9},
	{"armraise", 1.5},
}

// Spec implements Source.
func (m *Motion) Spec() Spec {
	names := make([]string, len(motionClasses))
	for i, c := range motionClasses {
		names[i] = c.name
	}
	return Spec{
		Name:       "motion",
		Shape:      []int{int(m.WindowSec * m.Base.SampleHz)},
		Classes:    len(motionClasses),
		ClassNames: names,
	}
}

// GenerateClass implements ClassConditional: one recording of the class's
// exercise filling the window between the lead/trail idle periods, cropped
// or zero-padded to the fixed window length (rep-duration jitter moves the
// raw recording length).
func (m *Motion) GenerateClass(class int, stream *rng.Stream) (*tensor.Tensor, error) {
	if class < 0 || class >= len(motionClasses) {
		return nil, fmt.Errorf("modality: motion class %d outside [0, %d)", class, len(motionClasses))
	}
	w := m.Base
	spec := motionClasses[class]
	exerciseSec := m.WindowSec - w.LeadSec - w.TrailSec
	if spec.periodSec == 0 {
		w.Reps = 0
		w.LeadSec = m.WindowSec // all idle
		w.TrailSec = 0
	} else {
		w.RepPeriodSec = spec.periodSec
		w.Reps = int(exerciseSec / spec.periodSec)
	}
	signal, err := motion.Generate(w, stream)
	if err != nil {
		return nil, err
	}
	n := int(m.WindowSec * w.SampleHz)
	out := make([]float64, n)
	copy(out, signal) // crop or zero-pad to the fixed window
	return tensor.FromSlice(out, n), nil
}

// Generate implements Source.
func (m *Motion) Generate(n int, stream *rng.Stream) ([]cnn.Sample, error) {
	return generateBalanced(m, n, stream)
}
