package modality

import (
	"fmt"
	"testing"

	"zeiot/internal/ml"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// TestSpecInvariants checks every registered source's contract: the spec
// name matches its registry key, the shape is positive-dimensional, and the
// class list is consistent.
func TestSpecInvariants(t *testing.T) {
	names := Names()
	if len(names) < 9 {
		t.Fatalf("registry has %d modalities, want >= 9 (8 plain + 1 fused)", len(names))
	}
	for _, name := range names {
		src, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		spec := src.Spec()
		if spec.Name != name {
			t.Errorf("%q: Spec().Name = %q, want the registry key", name, spec.Name)
		}
		if len(spec.Shape) == 0 {
			t.Errorf("%q: empty shape", name)
		}
		for _, d := range spec.Shape {
			if d <= 0 {
				t.Errorf("%q: non-positive shape dim in %v", name, spec.Shape)
			}
		}
		if spec.Classes < 2 {
			t.Errorf("%q: %d classes, want >= 2", name, spec.Classes)
		}
		if len(spec.ClassNames) != spec.Classes {
			t.Errorf("%q: %d class names for %d classes", name, len(spec.ClassNames), spec.Classes)
		}
		if spec.NumElements() <= 0 {
			t.Errorf("%q: NumElements() = %d", name, spec.NumElements())
		}
	}
}

// TestGenerateDeterministicAndSpecConformant generates a small batch from
// every registered source twice with identical stream state and checks (a)
// byte-identity, (b) every sample matches the spec's shape, (c) the batch is
// class-balanced.
func TestGenerateDeterministicAndSpecConformant(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			src, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			spec := src.Spec()
			n := 2 * spec.Classes
			a, err := src.Generate(n, rng.New(7).Split(name))
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			b, err := src.Generate(n, rng.New(7).Split(name))
			if err != nil {
				t.Fatalf("Generate (repeat): %v", err)
			}
			if len(a) != n || len(b) != n {
				t.Fatalf("got %d and %d samples, want %d", len(a), len(b), n)
			}
			counts := make([]int, spec.Classes)
			for i := range a {
				if a[i].Label != b[i].Label {
					t.Fatalf("sample %d: labels %d vs %d across identical streams", i, a[i].Label, b[i].Label)
				}
				if !tensor.Equal(a[i].Input, b[i].Input, 0) {
					t.Fatalf("sample %d: data differs across identical streams", i)
				}
				want := spec.NumElements()
				if got := len(a[i].Input.Data()); got != want {
					t.Fatalf("sample %d: %d elements, spec says %d", i, got, want)
				}
				if a[i].Label < 0 || a[i].Label >= spec.Classes {
					t.Fatalf("sample %d: label %d outside [0, %d)", i, a[i].Label, spec.Classes)
				}
				counts[a[i].Label]++
			}
			for c, got := range counts {
				if got != 2 {
					t.Errorf("class %d: %d samples, want 2 (balanced round-robin)", c, got)
				}
			}
		})
	}
}

// TestFuseAlignment checks the fused timeline property the package
// documents: each fused sample is the concatenation of both part sources'
// renderings of the same event class, reproducible from the sample stream's
// "a"/"b" sub-streams.
func TestFuseAlignment(t *testing.T) {
	ga, vi := NewGait(), NewVitals()
	f, err := Fuse(ga, vi)
	if err != nil {
		t.Fatal(err)
	}
	spec := f.Spec()
	if spec.Name != "gait+vitals" {
		t.Errorf("fused name %q, want gait+vitals", spec.Name)
	}
	wantLen := ga.Spec().NumElements() + vi.Spec().NumElements()
	if spec.NumElements() != wantLen {
		t.Errorf("fused NumElements %d, want %d", spec.NumElements(), wantLen)
	}

	const n = 6
	samples, err := f.Generate(n, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// Replay the documented derivation: sample i (pre-shuffle) has class
	// i % classes and draws from stream.Split("s-i"); its halves come from
	// that stream's "a" and "b" splits. The shuffle permutes sample order
	// only, so match each replayed sample against the generated set by
	// content.
	replayRoot := rng.New(11)
	aLen := ga.Spec().NumElements()
	for i := 0; i < n; i++ {
		class := i % spec.Classes
		s := replayRoot.Split(fmt.Sprintf("s-%d", i))
		ta, err := ga.GenerateClass(class, s.Split("a"))
		if err != nil {
			t.Fatal(err)
		}
		tb, err := vi.GenerateClass(class, s.Split("b"))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, sample := range samples {
			if sample.Label != class {
				continue
			}
			data := sample.Input.Data()
			if equalSlices(data[:aLen], ta.Data()) && equalSlices(data[aLen:], tb.Data()) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("replayed fused sample %d (class %d) not found in generated set", i, class)
		}
	}
}

func equalSlices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFuseClassMismatch checks Fuse rejects sources whose class sets cannot
// share a timeline.
func TestFuseClassMismatch(t *testing.T) {
	if _, err := Fuse(NewGait(), NewHAR()); err == nil {
		t.Fatal("Fuse(gait [2 classes], har [5 classes]) succeeded, want error")
	}
}

// TestNewUnknown checks the registry error path names the unknown key.
func TestNewUnknown(t *testing.T) {
	if _, err := New("sonar"); err == nil {
		t.Fatal("New(sonar) succeeded, want error")
	}
}

// TestFromToDatasetRoundTrip checks the ml.Dataset bridge copies data both
// ways.
func TestFromToDatasetRoundTrip(t *testing.T) {
	d := ml.Dataset{
		X: [][]float64{{1, 2, 3}, {4, 5, 6}},
		Y: []int{0, 1},
	}
	samples := FromDataset(d)
	if len(samples) != 2 {
		t.Fatalf("FromDataset: %d samples, want 2", len(samples))
	}
	samples[0].Input.Data()[0] = 99
	if d.X[0][0] != 1 {
		t.Error("FromDataset aliases the dataset rows; want a copy")
	}
	samples[0].Input.Data()[0] = 1
	back := ToDataset(samples)
	for i := range d.X {
		if back.Y[i] != d.Y[i] || !equalSlices(back.X[i], d.X[i]) {
			t.Fatalf("round trip row %d: got %v/%d want %v/%d", i, back.X[i], back.Y[i], d.X[i], d.Y[i])
		}
	}
}

// TestRegistryConstructorsIndependent checks New returns fresh adapters:
// mutating one's config must not leak into the next.
func TestRegistryConstructorsIndependent(t *testing.T) {
	a, err := New("gait")
	if err != nil {
		t.Fatal(err)
	}
	a.(*Gait).Cfg.Streams = 3
	b, err := New("gait")
	if err != nil {
		t.Fatal(err)
	}
	if b.(*Gait).Cfg.Streams == 3 {
		t.Fatal("New(gait) shares config state across calls")
	}
}
