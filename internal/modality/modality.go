// Package modality is the unified dataset abstraction over every sensing
// generator in the repo. The paper's premise is one distributed zero-energy
// substrate recognizing many contexts — falls, thermal discomfort, indoor
// position, movement direction, athlete activity, animal intrusion, vital
// signs, workout motion — yet each context historically shipped its own
// generator with its own return type and seeding convention. A Source wraps
// one such generator behind a single contract: a Spec describing the tensor
// shape and label set, and Generate producing labelled cnn.Samples from a
// caller-owned rng stream. Sources register themselves in a central registry
// (Names/New) so cross-modal tooling — the E18 benchmark matrix, the Fuse
// combinator — can enumerate every context the substrate recognizes without
// importing each generator package.
//
// Adapters also keep "campaign" entry points reproducing the historical
// experiment datasets byte-for-byte (same rng draws in the same order), so
// the e*.go files route through this package without moving a single output
// byte.
package modality

import (
	"fmt"

	"zeiot/internal/cnn"
	"zeiot/internal/ml"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// Spec describes one modality's data contract.
type Spec struct {
	// Name is the registry key ("gait", "har", "gait+vitals", ...).
	Name string
	// Shape is the per-sample tensor shape.
	Shape []int
	// Classes is the label count; ClassNames[i] names label i.
	Classes    int
	ClassNames []string
}

// NumElements returns the flattened per-sample size.
func (s Spec) NumElements() int {
	n := 1
	for _, d := range s.Shape {
		n *= d
	}
	return n
}

// Source is one registered sensing modality.
type Source interface {
	// Spec describes the samples Generate produces.
	Spec() Spec
	// Generate produces n labelled samples, class-balanced (round-robin
	// over labels before a final shuffle), drawing every variate from
	// stream. Same stream state ⇒ byte-identical samples.
	Generate(n int, stream *rng.Stream) ([]cnn.Sample, error)
}

// ClassConditional is a Source that can render a single sample of a chosen
// class — the contract Fuse needs to align two modalities on one event
// timeline, and what generateBalanced builds Generate from.
type ClassConditional interface {
	Source
	// GenerateClass renders one sample of the given class from stream.
	GenerateClass(class int, stream *rng.Stream) (*tensor.Tensor, error)
}

// generateBalanced is the shared Generate implementation for
// class-conditional sources: classes round-robin over the first n indices,
// each sample draws from its own named split (so sample i is independent of
// how many samples precede it), and the assembled set is shuffled from the
// parent stream.
func generateBalanced(src ClassConditional, n int, stream *rng.Stream) ([]cnn.Sample, error) {
	spec := src.Spec()
	if n < 0 {
		return nil, fmt.Errorf("modality: %s: negative sample count %d", spec.Name, n)
	}
	if spec.Classes < 1 {
		return nil, fmt.Errorf("modality: %s: spec has %d classes", spec.Name, spec.Classes)
	}
	out := make([]cnn.Sample, 0, n)
	for i := 0; i < n; i++ {
		class := i % spec.Classes
		in, err := src.GenerateClass(class, stream.Split(fmt.Sprintf("s-%d", i)))
		if err != nil {
			return nil, fmt.Errorf("modality: %s sample %d: %w", spec.Name, i, err)
		}
		out = append(out, cnn.Sample{Input: in, Label: class})
	}
	stream.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// FromDataset converts a labelled feature matrix into 1-D CNN samples.
// Feature rows are copied, so the samples own their data.
func FromDataset(d ml.Dataset) []cnn.Sample {
	out := make([]cnn.Sample, d.Len())
	for i, x := range d.X {
		out[i] = cnn.Sample{
			Input: tensor.FromSlice(append([]float64(nil), x...), len(x)),
			Label: d.Y[i],
		}
	}
	return out
}

// ToDataset flattens CNN samples into a labelled feature matrix — the
// inverse of FromDataset for classical-ML consumers. Sample data is copied.
func ToDataset(samples []cnn.Sample) ml.Dataset {
	var d ml.Dataset
	for _, s := range samples {
		d.X = append(d.X, append([]float64(nil), s.Input.Data()...))
		d.Y = append(d.Y, s.Label)
	}
	return d
}
