package modality

import (
	"math"

	"zeiot/internal/cnn"
	"zeiot/internal/geom"
	"zeiot/internal/rfid"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// RFIDDir adapts the backscatter-phase direction task of e10 (§III.A,
// refs [60][61]) as a 3-class modality: a tag moves radially relative to a
// UHF reader and the per-step unwrapped phase-derived distance deltas are
// the feature vector a classifier separates approaching / receding /
// stationary on.
type RFIDDir struct {
	// Reader is the observing antenna; Steps the number of phase samples
	// along the trial minus one (the feature vector has Steps+1 entries).
	Reader rfid.Reader
	Steps  int
}

// NewRFIDDir returns the adapter at the e10 trial geometry: a UHF reader
// observing 41 phase samples over a ±0.8 m radial walk starting 1–3 m out.
func NewRFIDDir() *RFIDDir {
	return &RFIDDir{Reader: rfid.UHFReader(geom.Point{}), Steps: 40}
}

// Spec implements Source.
func (r *RFIDDir) Spec() Spec {
	return Spec{
		Name:       "rfid",
		Shape:      []int{r.Steps + 1},
		Classes:    3,
		ClassNames: []string{"approaching", "receding", "stationary"},
	}
}

// GenerateClass implements ClassConditional: one radial trial of the given
// direction class. The features are the phase-derived distance deltas in
// centimetres (unwrapped, relative to the trial start), which puts them in
// a unit range a small dense net trains comfortably on.
func (r *RFIDDir) GenerateClass(class int, stream *rng.Stream) (*tensor.Tensor, error) {
	bearing := stream.Float64() * 2 * math.Pi
	unit := geom.Point{X: math.Cos(bearing), Y: math.Sin(bearing)}
	start := 1.0 + stream.Float64()*2
	var delta float64
	switch class {
	case 0:
		delta = -0.8 // approaching
	case 1:
		delta = 0.8 // receding
	default:
		delta = 0 // stationary
	}
	phases := make([]float64, 0, r.Steps+1)
	for i := 0; i <= r.Steps; i++ {
		d := start + delta*float64(i)/float64(r.Steps) + stream.NormMeanStd(0, 0.01)
		pos := r.Reader.Pos.Add(unit.Scale(d))
		phases = append(phases, r.Reader.Phase(pos, stream))
	}
	dd := rfid.DeltaDistances(rfid.UnwrapPhases(phases), r.Reader.Lambda)
	out := make([]float64, len(dd))
	for i, v := range dd {
		out[i] = v * 100 // metres → centimetres
	}
	return tensor.FromSlice(out, len(out)), nil
}

// Generate implements Source.
func (r *RFIDDir) Generate(n int, stream *rng.Stream) ([]cnn.Sample, error) {
	return generateBalanced(r, n, stream)
}
