package modality

import (
	"zeiot/internal/cnn"
	"zeiot/internal/dataset"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// Lounge adapts the thermal-field generator (internal/dataset) as a binary
// comfort/discomfort modality over temperature snapshots.
type Lounge struct {
	// Cfg parameterizes the generator; Cfg.Seed is ignored (streams come
	// from the caller).
	Cfg dataset.LoungeConfig
}

// NewLounge returns the adapter at the e2 experiment grade: the paper's
// 17×25 cell field with the realistic 0.75 °C sensor noise that keeps
// accuracies off the ceiling.
func NewLounge() *Lounge {
	cfg := dataset.DefaultLoungeConfig()
	cfg.NoiseC = 0.75
	return &Lounge{Cfg: cfg}
}

// Spec implements Source.
func (l *Lounge) Spec() Spec {
	return Spec{
		Name:       "lounge",
		Shape:      []int{1, l.Cfg.Rows, l.Cfg.Cols},
		Classes:    2,
		ClassNames: []string{"comfort", "discomfort"},
	}
}

// GenerateClass implements ClassConditional: one snapshot at a stream-drawn
// campaign time, with the anomaly blob present exactly when class is 1.
func (l *Lounge) GenerateClass(class int, stream *rng.Stream) (*tensor.Tensor, error) {
	return dataset.GenerateLoungeSnapshot(l.Cfg, class == 1, stream), nil
}

// Generate implements Source.
func (l *Lounge) Generate(n int, stream *rng.Stream) ([]cnn.Sample, error) {
	return generateBalanced(l, n, stream)
}

// Campaign reproduces the historical e2 dataset byte-for-byte: the full
// half-hourly campaign in time order, every variate drawn from stream.
func (l *Lounge) Campaign(stream *rng.Stream) ([]cnn.Sample, error) {
	return dataset.GenerateLoungeFrom(l.Cfg, stream)
}
