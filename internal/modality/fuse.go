package modality

import (
	"fmt"

	"zeiot/internal/cnn"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// Fused aligns two class-conditional sources on a shared event timeline:
// every sample draws one event class, and both sources render their view of
// that same event from sub-streams of the sample's stream. The sample is
// the concatenation of both views, flattened — the multi-channel input a
// fusion classifier trains on.
type Fused struct {
	A, B ClassConditional
}

// Fuse combines two sources whose class sets align by index (class i of a
// and class i of b are views of the same event). It errors when the class
// counts differ — there is no meaningful shared timeline then.
func Fuse(a, b ClassConditional) (*Fused, error) {
	sa, sb := a.Spec(), b.Spec()
	if sa.Classes != sb.Classes {
		return nil, fmt.Errorf("modality: cannot fuse %s (%d classes) with %s (%d classes)",
			sa.Name, sa.Classes, sb.Name, sb.Classes)
	}
	return &Fused{A: a, B: b}, nil
}

// Spec implements Source. The fused name joins the parts with '+', the
// shape is the flattened concatenation, and class i is named
// "aName+bName" from the part sources' class i names.
func (f *Fused) Spec() Spec {
	sa, sb := f.A.Spec(), f.B.Spec()
	names := make([]string, sa.Classes)
	for i := range names {
		names[i] = sa.ClassNames[i] + "+" + sb.ClassNames[i]
	}
	return Spec{
		Name:       sa.Name + "+" + sb.Name,
		Shape:      []int{sa.NumElements() + sb.NumElements()},
		Classes:    sa.Classes,
		ClassNames: names,
	}
}

// GenerateClass implements ClassConditional: both sources render the same
// event class from named sub-streams, so either view is independently
// reproducible from the sample's stream.
func (f *Fused) GenerateClass(class int, stream *rng.Stream) (*tensor.Tensor, error) {
	ta, err := f.A.GenerateClass(class, stream.Split("a"))
	if err != nil {
		return nil, err
	}
	tb, err := f.B.GenerateClass(class, stream.Split("b"))
	if err != nil {
		return nil, err
	}
	da, db := ta.Data(), tb.Data()
	out := make([]float64, 0, len(da)+len(db))
	out = append(out, da...)
	out = append(out, db...)
	return tensor.FromSlice(out, len(out)), nil
}

// Generate implements Source.
func (f *Fused) Generate(n int, stream *rng.Stream) ([]cnn.Sample, error) {
	return generateBalanced(f, n, stream)
}
