package modality

import (
	"fmt"
	"sort"
)

// The registry maps modality names to constructors. Registration order is
// preserved by names so enumeration (and therefore E18's matrix row order)
// is deterministic and matches the order sources registered in.
var (
	registryNames []string
	registryByKey = map[string]func() Source{}
)

// Register adds a modality constructor under name. It panics on duplicate
// names — registration happens in init functions, where a duplicate is a
// programming error, not a runtime condition.
func Register(name string, ctor func() Source) {
	if _, dup := registryByKey[name]; dup {
		panic(fmt.Sprintf("modality: duplicate registration of %q", name))
	}
	registryByKey[name] = ctor
	registryNames = append(registryNames, name)
}

// Names returns every registered modality name in registration order.
func Names() []string {
	return append([]string(nil), registryNames...)
}

// New constructs a fresh Source for name. Constructors return independent
// values, so callers may mutate the returned adapter's config without
// affecting other users of the registry.
func New(name string) (Source, error) {
	ctor, ok := registryByKey[name]
	if !ok {
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("modality: unknown modality %q (registered: %v)", name, known)
	}
	return ctor(), nil
}

func init() {
	Register("gait", func() Source { return NewGait() })
	Register("lounge", func() Source { return NewLounge() })
	Register("csi", func() Source { return NewCSILoc() })
	Register("rfid", func() Source { return NewRFIDDir() })
	Register("har", func() Source { return NewHAR() })
	Register("intrusion", func() Source { return NewIntrusion() })
	Register("vitals", func() Source { return NewVitals() })
	Register("motion", func() Source { return NewMotion() })
	// One fused pair ships by default: fall detection corroborated by
	// chest-tag vitals — the cross-modal fusion the paper's shared substrate
	// makes possible. Both sources are binary with aligned event semantics
	// (class 0 = nominal, class 1 = alarm).
	Register("gait+vitals", func() Source {
		f, err := Fuse(NewGait(), NewVitals())
		if err != nil {
			panic(fmt.Sprintf("modality: registering gait+vitals: %v", err))
		}
		return f
	})
}
