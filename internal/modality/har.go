package modality

import (
	"zeiot/internal/cnn"
	"zeiot/internal/har"
	"zeiot/internal/ml"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// HAR adapts the zero-energy resonator-bank activity recognizer
// (internal/har) as a 5-class modality over chatter-rate feature vectors.
type HAR struct {
	// Cfg parameterizes the waveform generator and the sensor bank.
	Cfg har.Config
}

// NewHAR returns the adapter at the e13 experiment grade: the default
// 4-resonator bank over 4 s windows.
func NewHAR() *HAR {
	return &HAR{Cfg: har.DefaultConfig()}
}

// Spec implements Source.
func (h *HAR) Spec() Spec {
	names := make([]string, har.NumActivities())
	for a := 0; a < har.NumActivities(); a++ {
		names[a] = har.Activity(a).String()
	}
	return Spec{
		Name:       "har",
		Shape:      []int{len(h.Cfg.BankHz)},
		Classes:    har.NumActivities(),
		ClassNames: names,
	}
}

// GenerateClass implements ClassConditional: one activity window through
// the resonator bank.
func (h *HAR) GenerateClass(class int, stream *rng.Stream) (*tensor.Tensor, error) {
	feat, err := har.ClassFeatures(h.Cfg, har.Activity(class), stream)
	if err != nil {
		return nil, err
	}
	return tensor.FromSlice(feat, len(feat)), nil
}

// Generate implements Source.
func (h *HAR) Generate(n int, stream *rng.Stream) ([]cnn.Sample, error) {
	return generateBalanced(h, n, stream)
}

// Campaign reproduces the historical e13 feature matrix byte-for-byte:
// windowsPerClass windows per activity in class-major order, each drawn
// from the generator's historical per-window named splits.
func (h *HAR) Campaign(windowsPerClass int, stream *rng.Stream) (ml.Dataset, error) {
	return har.GenerateDataset(h.Cfg, windowsPerClass, stream)
}
