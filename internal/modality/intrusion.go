package modality

import (
	"zeiot/internal/cnn"
	"zeiot/internal/intrusion"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// Intrusion adapts the UWB range–time map generator (internal/intrusion) as
// a 3-class empty/human/animal modality.
type Intrusion struct {
	// Cfg parameterizes map generation; Cfg.Seed is ignored (streams come
	// from the caller).
	Cfg intrusion.Config
}

// NewIntrusion returns the adapter at the e14 experiment grade: 24×24
// range–time maps at 8 Hz.
func NewIntrusion() *Intrusion {
	return &Intrusion{Cfg: intrusion.DefaultConfig()}
}

// Spec implements Source.
func (n *Intrusion) Spec() Spec {
	names := make([]string, intrusion.NumClasses())
	for c := 0; c < intrusion.NumClasses(); c++ {
		names[c] = intrusion.Class(c).String()
	}
	return Spec{
		Name:       "intrusion",
		Shape:      []int{1, n.Cfg.RangeBins, n.Cfg.Frames},
		Classes:    intrusion.NumClasses(),
		ClassNames: names,
	}
}

// GenerateClass implements ClassConditional: one labelled range–time map.
func (n *Intrusion) GenerateClass(class int, stream *rng.Stream) (*tensor.Tensor, error) {
	return intrusion.Generate(n.Cfg, intrusion.Class(class), stream), nil
}

// Generate implements Source.
func (n *Intrusion) Generate(count int, stream *rng.Stream) ([]cnn.Sample, error) {
	return generateBalanced(n, count, stream)
}

// Campaign reproduces the historical e14 dataset byte-for-byte: perClass
// maps per class from the generator's historical per-map named splits,
// shuffled from stream.
func (n *Intrusion) Campaign(perClass int, stream *rng.Stream) []cnn.Sample {
	return intrusion.GenerateDataset(n.Cfg, perClass, stream)
}
