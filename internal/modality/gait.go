package modality

import (
	"zeiot/internal/cnn"
	"zeiot/internal/dataset"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// Gait adapts the film-type IR-array gait generator (internal/dataset) as a
// binary walk/fall modality over stacked-frame windows.
type Gait struct {
	// Cfg parameterizes the generator; Cfg.Seed is ignored (streams come
	// from the caller).
	Cfg dataset.GaitConfig
}

// NewGait returns the adapter at the e1 experiment grade: the paper's
// campaign dimensions with the realistic 0.55 sensor-noise level that keeps
// the task non-trivial, as on the real film array.
func NewGait() *Gait {
	cfg := dataset.DefaultGaitConfig()
	cfg.NoiseLevel = 0.55
	return &Gait{Cfg: cfg}
}

// Spec implements Source.
func (g *Gait) Spec() Spec {
	return Spec{
		Name:       "gait",
		Shape:      []int{g.Cfg.WindowFrames, g.Cfg.Rows, g.Cfg.Cols},
		Classes:    2,
		ClassNames: []string{"walk", "fall"},
	}
}

// GenerateClass implements ClassConditional: one window, rendered directly
// without the surrounding recording campaign.
func (g *Gait) GenerateClass(class int, stream *rng.Stream) (*tensor.Tensor, error) {
	return dataset.GenerateGaitWindow(g.Cfg, class == 1, stream), nil
}

// Generate implements Source.
func (g *Gait) Generate(n int, stream *rng.Stream) ([]cnn.Sample, error) {
	return generateBalanced(g, n, stream)
}

// Campaign reproduces the historical e1 dataset byte-for-byte: the full
// recording campaign drawn from campaign, cut into windows and balanced at
// ratio walk windows per fall window drawn from balance.
func (g *Gait) Campaign(ratio float64, campaign, balance *rng.Stream) ([]cnn.Sample, error) {
	streams, err := dataset.GenerateGaitStreamsFrom(g.Cfg, campaign)
	if err != nil {
		return nil, err
	}
	return dataset.BalancedWindows(g.Cfg, streams, ratio, balance), nil
}
