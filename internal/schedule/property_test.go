package schedule

import (
	"testing"
	"testing/quick"

	"zeiot/internal/microdeep"
	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

// TestPropertyRandomPlansValidate: random synthetic transfer plans over
// random grids always produce schedules that pass Validate, for any channel
// count and interference range.
func TestPropertyRandomPlansValidate(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(gridSel, planSeed, chSel, ihSel uint8) bool {
		rows := 2 + int(gridSel%4)
		cols := 2 + int(gridSel/4%4)
		w := wsn.NewGrid(rows, cols, 1)
		stream := rng.New(uint64(planSeed) + 1)
		// Random plan: transfers over random links across 1-3 stages.
		var plan []microdeep.Transfer
		n := 5 + stream.Intn(40)
		for i := 0; i < n; i++ {
			from := stream.Intn(w.NumNodes())
			neighbors := w.Neighbors(from)
			if len(neighbors) == 0 {
				continue
			}
			to := neighbors[stream.Intn(len(neighbors))]
			plan = append(plan, microdeep.Transfer{
				From:    from,
				To:      to,
				Scalars: 1 + stream.Intn(6),
				Stage:   1 + stream.Intn(3),
			})
		}
		opts := Options{Channels: 1 + int(chSel%4), InterferenceHops: int(ihSel % 3)}
		s, err := Build(plan, w, opts)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		if err := s.Validate(plan, w, opts); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
