package schedule

import (
	"testing"

	"zeiot/internal/cnn"
	"zeiot/internal/microdeep"
	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

func testPlan(t *testing.T, rows, cols int) ([]microdeep.Transfer, *wsn.Network) {
	t.Helper()
	s := rng.New(1)
	net := cnn.NewNetwork([]int{1, rows, cols},
		cnn.NewConv2D(1, 3, 3, 3, 1, 1, s.Split("c")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(2, 2),
		cnn.NewFlatten(),
		cnn.NewDense(3*(rows/2)*(cols/2), 4, s.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(4, 2, s.Split("d2")),
	)
	g, err := microdeep.BuildGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	w := wsn.NewGrid(rows, cols, 1)
	a, err := microdeep.AssignBalanced(g, w, microdeep.DefaultBalanceOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := microdeep.Plan(g, a, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	return plan, w
}

func TestBuildValidates(t *testing.T) {
	plan, w := testPlan(t, 6, 6)
	for _, channels := range []int{1, 2, 4} {
		opts := Options{Channels: channels, InterferenceHops: 1}
		s, err := Build(plan, w, opts)
		if err != nil {
			t.Fatalf("channels=%d: %v", channels, err)
		}
		if err := s.Validate(plan, w, opts); err != nil {
			t.Fatalf("channels=%d: %v", channels, err)
		}
		if len(s.Entries) != len(plan) {
			t.Fatalf("channels=%d: %d entries for %d transfers", channels, len(s.Entries), len(plan))
		}
	}
}

func TestMoreChannelsNeverLengthen(t *testing.T) {
	plan, w := testPlan(t, 6, 6)
	prev := -1
	for _, channels := range []int{1, 2, 4, 8} {
		s, err := Build(plan, w, Options{Channels: channels, InterferenceHops: 1})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && s.Slots > prev {
			t.Fatalf("%d channels needs %d slots, more than fewer channels (%d)", channels, s.Slots, prev)
		}
		prev = s.Slots
	}
	// And multi-channel must actually help on a dense plan.
	one, err := Build(plan, w, Options{Channels: 1, InterferenceHops: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Build(plan, w, Options{Channels: 4, InterferenceHops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if four.Slots >= one.Slots {
		t.Fatalf("4 channels (%d slots) no better than 1 (%d slots)", four.Slots, one.Slots)
	}
}

func TestStageCausality(t *testing.T) {
	plan, w := testPlan(t, 6, 6)
	s, err := Build(plan, w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Max slot of each stage strictly below min slot of the next
	// scheduled stage.
	minSlot := map[int]int{}
	maxSlot := map[int]int{}
	for _, e := range s.Entries {
		st := e.Transfer.Stage
		if _, ok := minSlot[st]; !ok {
			minSlot[st] = e.Slot
			maxSlot[st] = e.Slot
			continue
		}
		if e.Slot < minSlot[st] {
			minSlot[st] = e.Slot
		}
		if e.Slot > maxSlot[st] {
			maxSlot[st] = e.Slot
		}
	}
	prevMax := -1
	for st := 0; st <= 10; st++ {
		if _, ok := minSlot[st]; !ok {
			continue
		}
		if minSlot[st] <= prevMax {
			t.Fatalf("stage %d starts at %d, before previous stage ended at %d", st, minSlot[st], prevMax)
		}
		prevMax = maxSlot[st]
	}
}

func TestInterferenceRangeMatters(t *testing.T) {
	plan, w := testPlan(t, 6, 6)
	tight, err := Build(plan, w, Options{Channels: 1, InterferenceHops: 0})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Build(plan, w, Options{Channels: 1, InterferenceHops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Slots < tight.Slots {
		t.Fatalf("larger interference range gave shorter schedule: %d vs %d", loose.Slots, tight.Slots)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	plan, w := testPlan(t, 4, 4)
	opts := DefaultOptions()
	s, err := Build(plan, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Collapse everything into slot 0: must violate half-duplex (or
	// interference) somewhere.
	broken := &Schedule{Channels: s.Channels, Slots: 1, StageEnd: s.StageEnd}
	for _, e := range s.Entries {
		e.Slot = 0
		broken.Entries = append(broken.Entries, e)
	}
	if err := broken.Validate(plan, w, opts); err == nil {
		t.Fatal("corrupted schedule validated")
	}
	// Dropping an entry must be caught too.
	missing := &Schedule{Channels: s.Channels, Slots: s.Slots, Entries: s.Entries[1:], StageEnd: s.StageEnd}
	if err := missing.Validate(plan, w, opts); err == nil {
		t.Fatal("missing entry not caught")
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	_, w := testPlan(t, 4, 4)
	if _, err := Build(nil, w, Options{Channels: 0}); err == nil {
		t.Fatal("zero channels accepted")
	}
	bad := []microdeep.Transfer{{From: 0, To: 15, Scalars: 1, Stage: 1}} // not a link on 4x4 grid
	if _, err := Build(bad, w, DefaultOptions()); err == nil {
		t.Fatal("non-link transfer accepted")
	}
	self := []microdeep.Transfer{{From: 3, To: 3, Scalars: 1, Stage: 1}}
	if _, err := Build(self, w, DefaultOptions()); err == nil {
		t.Fatal("self transfer accepted")
	}
}

func TestFeasibility(t *testing.T) {
	plan, w := testPlan(t, 6, 6)
	s, err := Build(plan, w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	slotSec := 0.001
	rep := s.Feasibility(slotSec, 1.0) // 1 sample/second
	if rep.RoundSec <= 0 || rep.MaxRateHz <= 0 {
		t.Fatalf("degenerate feasibility: %+v", rep)
	}
	if !rep.CycleOK {
		t.Fatalf("1 Hz infeasible with %d ms round", int(rep.RoundSec*1000))
	}
	fast := s.Feasibility(slotSec, 10*rep.MaxRateHz)
	if fast.CycleOK {
		t.Fatal("10x over max rate reported feasible")
	}
	empty := &Schedule{Channels: 1}
	if rep := empty.Feasibility(slotSec, 5); !rep.CycleOK {
		t.Fatal("empty schedule must always be feasible")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	plan, w := testPlan(t, 6, 6)
	a, err := Build(plan, w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(plan, w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Slots != b.Slots || len(a.Entries) != len(b.Entries) {
		t.Fatal("schedule not deterministic")
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestPipelinedRateBeatsRoundRate(t *testing.T) {
	plan, w := testPlan(t, 6, 6)
	s, err := Build(plan, w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const slotSec = 0.001
	round := s.Feasibility(slotSec, 1).MaxRateHz
	pipelined := s.PipelinedRate(slotSec)
	if pipelined < round {
		t.Fatalf("pipelined rate %.2f below round rate %.2f", pipelined, round)
	}
	// Multi-stage plans must genuinely pipeline (strictly faster).
	if len(s.StageEnd) > 1 && pipelined <= round {
		t.Fatalf("multi-stage schedule did not pipeline: %.2f vs %.2f", pipelined, round)
	}
	// Empty schedule: bounded by slotting only.
	empty := &Schedule{Channels: 1, StageEnd: map[int]int{}}
	if empty.PipelinedRate(slotSec) != 1/slotSec {
		t.Fatal("empty schedule pipelined rate wrong")
	}
}
