package schedule_test

import (
	"fmt"

	"zeiot/internal/cnn"
	"zeiot/internal/microdeep"
	"zeiot/internal/rng"
	"zeiot/internal/schedule"
	"zeiot/internal/wsn"
)

// Example generates the collection schedule for a small MicroDeep
// deployment and checks a 1 Hz collection cycle is feasible.
func Example() {
	s := rng.New(1)
	net := cnn.NewNetwork([]int{1, 4, 4},
		cnn.NewConv2D(1, 2, 3, 3, 1, 1, s.Split("c")),
		cnn.NewFlatten(),
		cnn.NewDense(32, 2, s.Split("d")),
	)
	grid := wsn.NewGrid(4, 4, 1)
	model, err := microdeep.Build(net, grid, microdeep.StrategyBalanced)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	plan, err := microdeep.Plan(model.Graph, model.Assign, grid)
	if err != nil {
		fmt.Println("plan:", err)
		return
	}
	opts := schedule.Options{Channels: 2, InterferenceHops: 1}
	sched, err := schedule.Build(plan, grid, opts)
	if err != nil {
		fmt.Println("schedule:", err)
		return
	}
	fmt.Println("valid:", sched.Validate(plan, grid, opts) == nil)
	rep := sched.Feasibility(0.004, 1.0)
	fmt.Println("1 Hz feasible:", rep.CycleOK)
	// Output:
	// valid: true
	// 1 Hz feasible: true
}
