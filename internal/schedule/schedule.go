// Package schedule generates collision-free TDMA transmission schedules
// for the data-collection traffic of a zero-energy IoT device network —
// the §III.B/§V design-support challenge the paper poses: given the device
// network and the required information-collection pattern, "automatically
// generate the necessary information collection algorithm", including
// multi-channel operation and per-slot timing a designer would otherwise
// specify by hand.
//
// The input is the link-level transfer plan of a distributed computation
// (microdeep.Plan, or any []Transfer-shaped workload); the output assigns
// every transfer a (slot, channel) such that
//
//   - half-duplex: a node transmits or receives at most once per slot
//     (regardless of channel — one radio per node);
//   - interference: two same-channel, same-slot transmissions must not
//     collide at either receiver (the sender of one must not be within
//     interference range of the other's receiver);
//   - causality: a transfer of stage s is scheduled strictly after every
//     transfer of stages < s it depends on, by scheduling stages in
//     separate slot phases.
//
// More channels shorten the schedule; the Validate method re-checks every
// constraint so property tests can assert correctness independently of the
// construction.
package schedule

import (
	"fmt"
	"sort"

	"zeiot/internal/microdeep"
	"zeiot/internal/wsn"
)

// Entry is one scheduled transmission.
type Entry struct {
	Transfer microdeep.Transfer
	Slot     int
	Channel  int
}

// Schedule is a complete TDMA plan for one collection round.
type Schedule struct {
	Entries  []Entry
	Slots    int
	Channels int
	// StageEnd[s] is the first slot after stage s's transfers.
	StageEnd map[int]int
}

// Options configures the generator.
type Options struct {
	// Channels is the number of orthogonal radio channels (≥ 1).
	Channels int
	// InterferenceHops is the carrier-sense range in hops: a transmission
	// collides with a same-channel reception when the interfering sender
	// is within this many hops of the receiver. 1 models standard
	// one-cell reuse.
	InterferenceHops int
}

// DefaultOptions returns single-channel operation with one-hop
// interference.
func DefaultOptions() Options {
	return Options{Channels: 1, InterferenceHops: 1}
}

// Build schedules the transfer plan over w. Transfers must reference valid
// adjacent nodes (as microdeep.Plan produces).
func Build(plan []microdeep.Transfer, w *wsn.Network, opts Options) (*Schedule, error) {
	if opts.Channels < 1 {
		return nil, fmt.Errorf("schedule: need at least one channel, got %d", opts.Channels)
	}
	if opts.InterferenceHops < 0 {
		return nil, fmt.Errorf("schedule: negative interference range")
	}
	s := &Schedule{Channels: opts.Channels, StageEnd: make(map[int]int)}
	// Group transfers by stage; stages run in disjoint slot phases so all
	// inputs of a stage are delivered before its outputs ship.
	stages := make(map[int][]microdeep.Transfer)
	maxStage := 0
	for _, tr := range plan {
		if tr.From == tr.To {
			return nil, fmt.Errorf("schedule: self transfer at node %d", tr.From)
		}
		if !w.Linked(tr.From, tr.To) {
			return nil, fmt.Errorf("schedule: transfer %d->%d is not a link", tr.From, tr.To)
		}
		stages[tr.Stage] = append(stages[tr.Stage], tr)
		if tr.Stage > maxStage {
			maxStage = tr.Stage
		}
	}
	base := 0
	for stage := 0; stage <= maxStage; stage++ {
		transfers := stages[stage]
		if len(transfers) == 0 {
			continue
		}
		// slotUse[slot][channel] lists the transmissions placed there
		// during this stage.
		slotUse := []map[int][]placed{}
		for _, tr := range transfers {
			assigned := false
			for slot := 0; !assigned; slot++ {
				if slot == len(slotUse) {
					slotUse = append(slotUse, make(map[int][]placed))
				}
				// Half-duplex: neither endpoint may appear anywhere in
				// this slot on any channel.
				busy := false
				for _, chEntries := range slotUse[slot] {
					for _, p := range chEntries {
						if p.from == tr.From || p.to == tr.From || p.from == tr.To || p.to == tr.To {
							busy = true
						}
					}
				}
				if busy {
					continue
				}
				for ch := 0; ch < opts.Channels; ch++ {
					if collides(w, slotUse[slot][ch], tr, opts.InterferenceHops) {
						continue
					}
					slotUse[slot][ch] = append(slotUse[slot][ch], placed{tr.From, tr.To})
					s.Entries = append(s.Entries, Entry{Transfer: tr, Slot: base + slot, Channel: ch})
					assigned = true
					break
				}
			}
		}
		base += len(slotUse)
		s.StageEnd[stage] = base
	}
	s.Slots = base
	return s, nil
}

// placed is one transmission already assigned to a (slot, channel).
type placed struct {
	from, to int
}

func collides(w *wsn.Network, existing []placed, tr microdeep.Transfer, ihops int) bool {
	for _, p := range existing {
		// New sender too close to an existing receiver, or existing
		// sender too close to the new receiver.
		if within(w, tr.From, p.to, ihops) || within(w, p.from, tr.To, ihops) {
			return true
		}
	}
	return false
}

func within(w *wsn.Network, a, b, hops int) bool {
	h := w.Hops(a, b)
	return h >= 0 && h <= hops
}

// Validate re-checks every constraint of the schedule against the network
// and the original plan; it returns the first violation found.
func (s *Schedule) Validate(plan []microdeep.Transfer, w *wsn.Network, opts Options) error {
	if len(s.Entries) != len(plan) {
		return fmt.Errorf("schedule: %d entries for %d transfers", len(s.Entries), len(plan))
	}
	// Every transfer scheduled exactly once (multiset match by value).
	counts := make(map[microdeep.Transfer]int)
	for _, tr := range plan {
		counts[tr]++
	}
	for _, e := range s.Entries {
		counts[e.Transfer]--
		if counts[e.Transfer] < 0 {
			return fmt.Errorf("schedule: transfer %+v scheduled more often than planned", e.Transfer)
		}
		if e.Channel < 0 || e.Channel >= s.Channels {
			return fmt.Errorf("schedule: entry uses channel %d of %d", e.Channel, s.Channels)
		}
		if e.Slot < 0 || e.Slot >= s.Slots {
			return fmt.Errorf("schedule: entry uses slot %d of %d", e.Slot, s.Slots)
		}
	}
	for tr, c := range counts {
		if c != 0 {
			return fmt.Errorf("schedule: transfer %+v missing from schedule", tr)
		}
	}
	// Per-slot constraints.
	bySlot := make(map[int][]Entry)
	for _, e := range s.Entries {
		bySlot[e.Slot] = append(bySlot[e.Slot], e)
	}
	for slot, entries := range bySlot {
		for i := 0; i < len(entries); i++ {
			for j := i + 1; j < len(entries); j++ {
				a, b := entries[i], entries[j]
				nodes := map[int]bool{a.Transfer.From: true, a.Transfer.To: true}
				if nodes[b.Transfer.From] || nodes[b.Transfer.To] {
					return fmt.Errorf("schedule: slot %d violates half-duplex (%+v vs %+v)", slot, a.Transfer, b.Transfer)
				}
				if a.Channel != b.Channel {
					continue
				}
				if within(w, a.Transfer.From, b.Transfer.To, opts.InterferenceHops) ||
					within(w, b.Transfer.From, a.Transfer.To, opts.InterferenceHops) {
					return fmt.Errorf("schedule: slot %d channel %d interference (%+v vs %+v)", slot, a.Channel, a.Transfer, b.Transfer)
				}
			}
		}
	}
	// Stage causality: all entries of stage s precede entries of stage t>s.
	maxEnd := -1
	lastStage := -1
	stageSlots := make(map[int][2]int) // stage -> [minSlot, maxSlot]
	for _, e := range s.Entries {
		st := e.Transfer.Stage
		mm, ok := stageSlots[st]
		if !ok {
			stageSlots[st] = [2]int{e.Slot, e.Slot}
			continue
		}
		if e.Slot < mm[0] {
			mm[0] = e.Slot
		}
		if e.Slot > mm[1] {
			mm[1] = e.Slot
		}
		stageSlots[st] = mm
	}
	for st := 0; st <= maxStageOf(stageSlots); st++ {
		mm, ok := stageSlots[st]
		if !ok {
			continue
		}
		if mm[0] <= maxEnd {
			return fmt.Errorf("schedule: stage %d starts at slot %d before stage %d finished at %d", st, mm[0], lastStage, maxEnd)
		}
		maxEnd = mm[1]
		lastStage = st
	}
	return nil
}

func maxStageOf(m map[int][2]int) int {
	maxS := 0
	for s := range m {
		if s > maxS {
			maxS = s
		}
	}
	return maxS
}

// CollectionReport summarizes whether a required collection cycle is
// feasible under the schedule.
type CollectionReport struct {
	Slots        int
	SlotsPerSec  float64
	RoundSec     float64
	MaxRateHz    float64
	CycleOK      bool
	RequiredHz   float64
	UtilizationP float64 // fraction of the cycle the schedule occupies
}

// PipelinedRate returns the maximum sustainable sample rate (Hz) when
// consecutive samples are pipelined through the stage phases: while stage 2
// of sample k is in the air, stage 1 of sample k+1 can run, so the
// steady-state bottleneck is the longest stage phase rather than the whole
// round.
func (s *Schedule) PipelinedRate(slotSec float64) float64 {
	if slotSec <= 0 {
		panic("schedule: non-positive slot duration")
	}
	if s.Slots == 0 {
		return 1 / slotSec
	}
	longest := 0
	prevEnd := 0
	// StageEnd is cumulative; reconstruct per-stage phase lengths.
	stages := make([]int, 0, len(s.StageEnd))
	for st := range s.StageEnd {
		stages = append(stages, st)
	}
	sort.Ints(stages)
	for _, st := range stages {
		length := s.StageEnd[st] - prevEnd
		if length > longest {
			longest = length
		}
		prevEnd = s.StageEnd[st]
	}
	if longest == 0 {
		return 1 / slotSec
	}
	return 1 / (float64(longest) * slotSec)
}

// Feasibility reports whether the schedule can sustain the required
// collection rate (samples per second) given the slot duration.
func (s *Schedule) Feasibility(slotSec, requiredHz float64) CollectionReport {
	round := float64(s.Slots) * slotSec
	r := CollectionReport{
		Slots:       s.Slots,
		SlotsPerSec: 1 / slotSec,
		RoundSec:    round,
		RequiredHz:  requiredHz,
	}
	if round > 0 {
		r.MaxRateHz = 1 / round
		r.UtilizationP = requiredHz * round
	} else {
		r.MaxRateHz = 0
		if s.Slots == 0 {
			r.MaxRateHz = 1 / slotSec // nothing to send; bounded by slotting only
		}
	}
	r.CycleOK = requiredHz <= r.MaxRateHz || s.Slots == 0
	return r
}
