package backscatter

import (
	"math"
	"testing"
	"time"

	"zeiot/internal/geom"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
)

func testLink() radio.BackscatterLink {
	return radio.BackscatterLink{
		Model:       radio.LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2.5},
		TagLossDB:   8,
		SourceTxDBm: 20,
	}
}

func TestTransmitPacketNearSucceedsFarFails(t *testing.T) {
	tag := NewTag(1, geom.Point{}, testLink())
	noise := radio.ThermalNoiseDBm(2e6, 6)
	near := tag.TransmitPacket(2, 2, 3, 256, noise, 80, nil)
	if !near.Delivered {
		t.Fatalf("near packet lost: SNR=%v BER=%v", near.SNR, near.BER)
	}
	far := tag.TransmitPacket(40, 40, 3, 256, noise, 80, nil)
	if far.Delivered {
		t.Fatalf("far packet delivered: SNR=%v BER=%v", far.SNR, far.BER)
	}
	if far.BER <= near.BER {
		t.Fatal("BER did not grow with distance")
	}
}

func TestPacketEnergyIsMicrojoules(t *testing.T) {
	tag := NewTag(1, geom.Point{}, testLink())
	res := tag.TransmitPacket(2, 2, 3, 250, -95, 80, nil)
	// 250 bits at 250 kbps = 1 ms at 10 µW = 10 nJ.
	want := 10e-6 * 1e-3
	if math.Abs(res.EnergyJ-want) > 1e-15 {
		t.Fatalf("packet energy = %v J, want %v", res.EnergyJ, want)
	}
}

func TestTransmitDeterministicWithSeed(t *testing.T) {
	tag := NewTag(1, geom.Point{}, testLink())
	a := tag.TransmitPacket(8, 8, 3, 512, -95, 60, rng.New(7))
	b := tag.TransmitPacket(8, 8, 3, 512, -95, 60, rng.New(7))
	if a != b {
		t.Fatal("same seed produced different packet results")
	}
}

func TestDeliveryRateMatchesPER(t *testing.T) {
	tag := NewTag(1, geom.Point{}, testLink())
	s := rng.New(9)
	// Pick a geometry with PER strictly between 0 and 1.
	probe := tag.TransmitPacket(10, 10, 3, 512, -95, 52, nil)
	per := radio.PacketErrorRate(probe.BER, 512)
	if per < 0.05 || per > 0.95 {
		t.Skipf("geometry gives degenerate PER %v; adjust test", per)
	}
	const n = 5000
	delivered := 0
	for i := 0; i < n; i++ {
		if tag.TransmitPacket(10, 10, 3, 512, -95, 52, s).Delivered {
			delivered++
		}
	}
	got := float64(delivered) / n
	if math.Abs(got-(1-per)) > 0.03 {
		t.Fatalf("delivery rate %v, want %v", got, 1-per)
	}
}

func TestHarvesterValidation(t *testing.T) {
	cases := []struct{ capJ, on, off, hw float64 }{
		{0, 1, 0, 1},     // no capacity
		{1, 0.5, 0.6, 1}, // off above on
		{1, 2, 0.1, 1},   // on above capacity
		{1, 0.5, 0.1, -1},
	}
	for _, c := range cases {
		if _, err := NewHarvester(c.capJ, c.on, c.off, c.hw); err == nil {
			t.Fatalf("invalid harvester accepted: %+v", c)
		}
	}
}

func TestHarvesterHysteresis(t *testing.T) {
	h, err := NewHarvester(1e-3, 5e-4, 1e-4, 1e-4) // 100 µW harvest
	if err != nil {
		t.Fatal(err)
	}
	if h.On() {
		t.Fatal("starts on")
	}
	// 100 µW for 4 s = 400 µJ < 500 µJ threshold: still off.
	h.Harvest(4 * time.Second)
	if h.On() {
		t.Fatal("turned on below threshold")
	}
	if h.Consume(1e-5) {
		t.Fatal("consumed while off")
	}
	// Another 2 s crosses the 500 µJ turn-on.
	h.Harvest(2 * time.Second)
	if !h.On() {
		t.Fatal("did not turn on")
	}
	// Drain down to the brown-out threshold.
	for h.Consume(1e-4) {
	}
	if h.On() {
		t.Fatal("still on after brown-out")
	}
	if h.StoredJ() < 0 {
		t.Fatal("negative stored energy")
	}
	// Must re-charge past OnJ again, not just OffJ.
	h.Harvest(1 * time.Second) // +100 µJ: above OffJ but below OnJ
	if h.On() {
		t.Fatal("re-enabled below turn-on threshold (hysteresis broken)")
	}
}

func TestHarvesterCapacityClamp(t *testing.T) {
	h, err := NewHarvester(1e-3, 5e-4, 1e-4, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.Harvest(time.Hour)
	if h.StoredJ() != 1e-3 {
		t.Fatalf("stored %v exceeds capacity", h.StoredJ())
	}
}

func TestEnergyConservation(t *testing.T) {
	h, err := NewHarvester(1, 0.5, 0.0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	h.Harvest(2 * time.Second) // +0.5 J, turns on
	drawn := 0.0
	for h.Consume(0.05) {
		drawn += 0.05
	}
	if math.Abs(drawn+h.StoredJ()-0.5) > 1e-12 {
		t.Fatalf("energy not conserved: drawn %v + stored %v != 0.5", drawn, h.StoredJ())
	}
}

func TestRFHarvestPower(t *testing.T) {
	model := radio.LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2}
	near := RFHarvestPowerW(model, 30, 1, 0.2)
	far := RFHarvestPowerW(model, 30, 4, 0.2)
	if near <= far {
		t.Fatal("harvest power should fall with distance")
	}
	// 30 dBm - 40 dB = -10 dBm = 0.1 mW incident; 20% → 20 µW.
	if math.Abs(near-20e-6) > 1e-9 {
		t.Fatalf("near harvest = %v W", near)
	}
}

func TestIntermittentDeviceThroughputScalesWithHarvest(t *testing.T) {
	run := func(harvestW float64) int {
		h, err := NewHarvester(1e-3, 5e-5, 0, harvestW)
		if err != nil {
			t.Fatal(err)
		}
		d := &IntermittentDevice{Harvester: h, TaskEnergyJ: 5e-5}
		return d.Step(10*time.Second, 10*time.Millisecond)
	}
	low := run(1e-5)
	high := run(1e-4)
	if low == 0 {
		t.Fatal("low-harvest device never ran")
	}
	ratio := float64(high) / float64(low)
	if ratio < 8 || ratio > 12 {
		t.Fatalf("10x harvest gave %.1fx executions (low=%d high=%d)", ratio, low, high)
	}
	// Long-run execution rate matches energy balance: harvest/taskEnergy.
	wantPerSec := 1e-4 / 5e-5
	if math.Abs(float64(high)/10-wantPerSec) > 0.3*wantPerSec {
		t.Fatalf("execution rate %v/s, want ~%v", float64(high)/10, wantPerSec)
	}
}

func TestDutyCycle(t *testing.T) {
	h, err := NewHarvester(1e-3, 2e-4, 0, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	d := &IntermittentDevice{Harvester: h, TaskEnergyJ: 1e-4}
	// Task wants 1e-4 J per second = 100 µW demand; harvesting 10 µW → 10%.
	if dc := d.DutyCycle(time.Second); math.Abs(dc-0.1) > 1e-9 {
		t.Fatalf("duty cycle = %v", dc)
	}
	d.TaskEnergyJ = 1e-6 // trivial task → capped at 1
	if dc := d.DutyCycle(time.Second); dc != 1 {
		t.Fatalf("duty cycle = %v, want 1", dc)
	}
}
