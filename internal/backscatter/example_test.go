package backscatter_test

import (
	"fmt"
	"time"

	"zeiot/internal/backscatter"
	"zeiot/internal/geom"
	"zeiot/internal/radio"
)

// Example shows the zero-energy device lifecycle: a tag on the product
// channel and an intermittent harvester-powered duty cycle.
func Example() {
	link := radio.BackscatterLink{
		Model:       radio.LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2},
		TagLossDB:   8,
		SourceTxDBm: 30,
	}
	tag := backscatter.NewTag(1, geom.Point{}, link)
	noise := radio.ThermalNoiseDBm(250e3, 6)
	res := tag.TransmitPacket(5, 5, 5, 256, noise, 80, nil)
	fmt.Println("5 m packet delivered:", res.Delivered)
	fmt.Printf("packet energy: %.1f nJ\n", res.EnergyJ*1e9)

	h, err := backscatter.NewHarvester(1e-3, 1e-4, 0, 50e-6) // 50 µW harvest
	if err != nil {
		fmt.Println("harvester:", err)
		return
	}
	dev := &backscatter.IntermittentDevice{Harvester: h, TaskEnergyJ: 1e-4}
	ran := dev.Step(10*time.Second, 10*time.Millisecond)
	fmt.Println("tasks in 10 s on 50 µW:", ran)
	// Output:
	// 5 m packet delivered: true
	// packet energy: 10.2 nJ
	// tasks in 10 s on 50 µW: 4
}
