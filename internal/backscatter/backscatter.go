// Package backscatter models the zero-energy IoT devices of the paper: an
// RF-switch tag that communicates by toggling its antenna impedance (OOK
// over the ambient-backscatter product channel), a capacitor-based energy
// harvester with turn-on/turn-off hysteresis, and the intermittent
// execution model that results — devices that accumulate µW-scale harvested
// power and burst through sensing/compute/communicate tasks when their
// storage crosses the operating threshold.
//
// The paper's own prototypes are STM32 + RF-switch hardware; per DESIGN.md
// this package is the simulated substitute that exercises the same code
// paths (link budget, bit errors, energy accounting).
package backscatter

import (
	"fmt"
	"math"
	"time"

	"zeiot/internal/geom"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
)

// Tag is one zero-energy backscatter tag.
type Tag struct {
	ID  int
	Pos geom.Point
	// Link is the product channel the tag modulates.
	Link radio.BackscatterLink
	// BitRate of the tag's OOK modulation in bits/s (ambient backscatter
	// prototypes run 1 kbps–1 Mbps).
	BitRate float64
	// SwitchPowerW is the power the RF switch and control logic draw while
	// modulating (~10 µW, the paper's "about 1/10,000" figure).
	SwitchPowerW float64
	// SpreadingGain is the DSSS chips-per-bit of the modulation. The
	// paper's testbed backscatters IEEE 802.15.4 frames, whose direct
	// sequence spread spectrum is exactly why "communication distance is
	// long due to spread gain" (§IV.A). 1 or less means plain OOK.
	SpreadingGain float64
}

// NewTag returns a tag with the nominal parameters of the paper's 2.4 GHz
// prototype: 250 kbps ZigBee-compatible chipping with spreading gain 8,
// 10 µW switching power.
func NewTag(id int, pos geom.Point, link radio.BackscatterLink) *Tag {
	return &Tag{ID: id, Pos: pos, Link: link, BitRate: 250e3, SwitchPowerW: 10e-6, SpreadingGain: 8}
}

// PacketResult describes one attempted backscatter packet.
type PacketResult struct {
	Delivered bool
	BER       float64
	SNR       float64
	EnergyJ   float64
}

// TransmitPacket attempts to deliver a packet of the given bit length from
// the tag to a receiver. dSourceTag/dTagRx/dSourceRx are the geometry of the
// product channel; noiseDBm the receiver noise floor; cancellationDB the
// receiver's carrier suppression. The draw from stream decides delivery
// against the packet error rate; a nil stream returns the deterministic
// expectation (Delivered = PER < 0.5).
func (t *Tag) TransmitPacket(dSourceTag, dTagRx, dSourceRx float64, bits int, noiseDBm, cancellationDB float64, stream *rng.Stream) PacketResult {
	if bits <= 0 {
		panic("backscatter: non-positive packet length")
	}
	snr := t.Link.SNR(dSourceTag, dTagRx, dSourceRx, noiseDBm, cancellationDB, stream)
	var ber float64
	if t.SpreadingGain > 1 {
		ber = radio.BERDSSS(snr, t.SpreadingGain)
	} else {
		ber = radio.BEROOK(snr)
	}
	per := radio.PacketErrorRate(ber, bits)
	res := PacketResult{
		BER:     ber,
		SNR:     snr,
		EnergyJ: t.SwitchPowerW * float64(bits) / t.BitRate,
	}
	if stream != nil {
		res.Delivered = !stream.Bool(per)
	} else {
		res.Delivered = per < 0.5
	}
	return res
}

// Harvester is a capacitor-based energy store with hysteresis: the device
// turns on when the stored energy reaches OnJ and browns out below OffJ —
// the standard intermittent-computing power model.
type Harvester struct {
	// CapacityJ is the usable energy capacity of the capacitor.
	CapacityJ float64
	// OnJ and OffJ are the turn-on and brown-out thresholds (OnJ > OffJ).
	OnJ, OffJ float64
	// HarvestW is the ambient harvest power (light/vibration/RF), in watts.
	HarvestW float64

	storedJ float64
	on      bool
}

// NewHarvester validates and returns a harvester. The capacitor starts
// empty and off.
func NewHarvester(capacityJ, onJ, offJ, harvestW float64) (*Harvester, error) {
	if capacityJ <= 0 || harvestW < 0 {
		return nil, fmt.Errorf("backscatter: invalid capacity %v or harvest %v", capacityJ, harvestW)
	}
	if !(offJ >= 0 && offJ < onJ && onJ <= capacityJ) {
		return nil, fmt.Errorf("backscatter: need 0 <= offJ < onJ <= capacity, got on=%v off=%v cap=%v", onJ, offJ, capacityJ)
	}
	return &Harvester{CapacityJ: capacityJ, OnJ: onJ, OffJ: offJ, HarvestW: harvestW}, nil
}

// StoredJ returns the energy currently stored.
func (h *Harvester) StoredJ() float64 { return h.storedJ }

// On reports whether the device is currently powered.
func (h *Harvester) On() bool { return h.on }

// Harvest accumulates ambient energy over dt, updating the power state.
func (h *Harvester) Harvest(dt time.Duration) {
	h.storedJ = math.Min(h.CapacityJ, h.storedJ+h.HarvestW*dt.Seconds())
	if h.storedJ >= h.OnJ {
		h.on = true
	}
}

// Consume draws energyJ from the capacitor. It returns false (and draws
// nothing) if the device is off, or browns the device out if the draw would
// push the store below the brown-out threshold — attempting work without
// the energy to finish it is exactly how intermittent devices die, so a
// refused draw costs the on-state and the device must recharge past OnJ.
func (h *Harvester) Consume(energyJ float64) bool {
	if energyJ < 0 {
		panic("backscatter: negative energy draw")
	}
	if !h.on {
		return false
	}
	if h.storedJ-energyJ < h.OffJ {
		h.on = false
		return false
	}
	h.storedJ -= energyJ
	if h.storedJ < h.OffJ {
		h.on = false
	}
	return true
}

// RFHarvestPowerW returns the power a tag harvests from an RF source of
// txDBm at distance d under model, with the given rectifier efficiency
// (typ. 0.1–0.3).
func RFHarvestPowerW(model radio.LogDistance, txDBm, d, efficiency float64) float64 {
	incidentMw := radio.DBmToMilliwatts(txDBm - model.PathLossDB(d))
	return incidentMw / 1000 * efficiency
}

// IntermittentDevice couples a harvester with a recurring task (sense +
// compute + backscatter) of fixed energy cost. Step advances time and
// reports how many task executions completed — the effective sampling rate
// any zero-energy sensing application sees.
type IntermittentDevice struct {
	Harvester *Harvester
	// TaskEnergyJ is the energy one sense-process-transmit cycle costs.
	TaskEnergyJ float64

	executions int
}

// Step advances the device by dt in tick-sized increments, harvesting and
// executing the task greedily whenever energy allows. It returns the number
// of executions completed during this step.
func (d *IntermittentDevice) Step(dt, tick time.Duration) int {
	if tick <= 0 {
		panic("backscatter: non-positive tick")
	}
	ran := 0
	for elapsed := time.Duration(0); elapsed < dt; elapsed += tick {
		d.Harvester.Harvest(tick)
		for d.Harvester.Consume(d.TaskEnergyJ) {
			ran++
		}
	}
	d.executions += ran
	return ran
}

// Executions returns the lifetime task-execution count.
func (d *IntermittentDevice) Executions() int { return d.executions }

// DutyCycle returns the steady-state fraction of task demand an
// intermittent device can sustain: harvested power divided by the power the
// task would need to run back-to-back (capped at 1).
func (d *IntermittentDevice) DutyCycle(taskPeriod time.Duration) float64 {
	if d.TaskEnergyJ <= 0 {
		return 1
	}
	demandW := d.TaskEnergyJ / taskPeriod.Seconds()
	return math.Min(1, d.Harvester.HarvestW/demandW)
}
