// Package jobs is the scheduling core of the simulation-as-a-service
// daemon (cmd/zeiotd): a bounded job queue in front of a fixed worker pool,
// with per-job cancellable contexts, queryable status for every job ever
// accepted, and a graceful drain for shutdown.
//
// The package is deliberately ignorant of experiments and configs — a job
// carries an opaque payload and the pool calls one RunFunc — so the
// scheduling semantics are testable without training a single CNN:
//
//   - Backpressure is explicit: Submit fails fast with ErrQueueFull when the
//     queue is at capacity (the daemon maps it to HTTP 429) instead of
//     blocking the acceptor.
//   - Status is never dropped: every accepted job stays queryable through
//     its terminal state until the process exits, including jobs canceled
//     by a drain.
//   - Shutdown is two-phase: stop accepting (Submit returns ErrDraining),
//     give running jobs a grace window, then cancel their contexts and wait
//     for the workers to record terminal states.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a job's lifecycle position. Transitions are strictly
// queued → running → {done, failed, canceled}, except that a queued job can
// move straight to canceled when a drain empties the queue.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Submit/Shutdown error conditions. The daemon maps ErrQueueFull to
// HTTP 429 and ErrDraining to HTTP 503.
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrDraining  = errors.New("jobs: pool is draining, not accepting jobs")
)

// Work is the immutable slice of a job handed to the RunFunc: everything a
// runner may read. The mutable lifecycle state stays inside the pool.
type Work struct {
	// ID is the pool-assigned job id ("j1", "j2", ...).
	ID string
	// Experiment and Key identify what to run and its canonical config
	// hash; the pool treats both as opaque labels.
	Experiment string
	Key        string
	// Payload is whatever the submitter attached (the daemon stores the
	// parsed RunConfig here).
	Payload any
}

// RunFunc executes one job. The context is canceled by Shutdown once the
// grace window expires; implementations must return promptly after
// cancellation (the experiment engine honours ctx at stage boundaries). The
// returned bytes become the job's result.
type RunFunc func(ctx context.Context, w Work) ([]byte, error)

// Snapshot is a point-in-time copy of one job's status, safe to retain.
// Result aliases the job's result bytes; callers must treat it as
// read-only. The daemon defines its own wire format on top of this, so the
// struct carries no JSON contract.
type Snapshot struct {
	ID         string
	Experiment string
	Key        string
	State      State
	CacheHit   bool
	Error      string
	Result     []byte
	Submitted  time.Time
	Started    time.Time
	Finished   time.Time
}

// job is the pool-internal record behind a Snapshot.
type job struct {
	work      Work
	state     State
	cacheHit  bool
	err       string
	result    []byte
	submitted time.Time
	started   time.Time
	finished  time.Time
}

func (j *job) snapshot() Snapshot {
	return Snapshot{
		ID:         j.work.ID,
		Experiment: j.work.Experiment,
		Key:        j.work.Key,
		State:      j.state,
		CacheHit:   j.cacheHit,
		Error:      j.err,
		Result:     j.result,
		Submitted:  j.submitted,
		Started:    j.started,
		Finished:   j.finished,
	}
}

// Summary is what Shutdown reports: terminal-state counts over every job
// the pool ever accepted.
type Summary struct {
	Done     int
	Failed   int
	Canceled int
}

// Pool is a bounded queue feeding a fixed set of workers. Create with
// NewPool; the zero value is not usable.
type Pool struct {
	run   RunFunc
	queue chan *job

	ctx    context.Context // parent of every job context
	cancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // insertion order, for List
	seq      int
	queued   int // accepted, not yet picked up by a worker
	running  int
	draining bool

	wg sync.WaitGroup // workers
}

// NewPool starts workers goroutines behind a queue of capacity queueCap.
// workers and queueCap floor at 1.
func NewPool(workers, queueCap int, run RunFunc) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		run:    run,
		queue:  make(chan *job, queueCap),
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*job),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Submit accepts a job for execution and returns its queued snapshot.
// It fails fast with ErrQueueFull when the queue is at capacity and
// ErrDraining once Shutdown has begun.
func (p *Pool) Submit(experiment, key string, payload any) (Snapshot, error) {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		return Snapshot{}, ErrDraining
	}
	p.seq++
	j := &job{
		work:      Work{ID: fmt.Sprintf("j%d", p.seq), Experiment: experiment, Key: key, Payload: payload},
		state:     StateQueued,
		submitted: time.Now(),
	}
	select {
	case p.queue <- j:
	default:
		p.seq-- // not accepted; reuse the id
		p.mu.Unlock()
		return Snapshot{}, ErrQueueFull
	}
	p.jobs[j.work.ID] = j
	p.order = append(p.order, j.work.ID)
	p.queued++
	snap := j.snapshot()
	p.mu.Unlock()
	return snap, nil
}

// Complete records a job that never needs a worker — the daemon's cache
// hits: the job is born in StateDone carrying the cached result bytes, so
// job history and status queries treat served-from-cache submissions like
// any other job.
func (p *Pool) Complete(experiment, key string, result []byte) (Snapshot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return Snapshot{}, ErrDraining
	}
	p.seq++
	now := time.Now()
	j := &job{
		work:      Work{ID: fmt.Sprintf("j%d", p.seq), Experiment: experiment, Key: key},
		state:     StateDone,
		cacheHit:  true,
		result:    result,
		submitted: now,
		started:   now,
		finished:  now,
	}
	p.jobs[j.work.ID] = j
	p.order = append(p.order, j.work.ID)
	return j.snapshot(), nil
}

// Get returns the status of one job.
func (p *Pool) Get(id string) (Snapshot, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// List returns every job's status in submission order.
func (p *Pool) List() []Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Snapshot, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.jobs[id].snapshot())
	}
	return out
}

// Depth returns the current queue occupancy and running-job count — the
// daemon exports both as gauges.
func (p *Pool) Depth() (queued, running int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued, p.running
}

// worker drains the queue until it is closed by Shutdown. Jobs canceled
// while still queued are skipped — their terminal state was already
// recorded by the drain.
func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.mu.Lock()
		if j.state != StateQueued {
			p.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(p.ctx)
		j.state = StateRunning
		j.started = time.Now()
		p.queued--
		p.running++
		p.mu.Unlock()

		result, err := p.run(ctx, j.work)
		canceled := ctx.Err() != nil // read before our own cancel below
		cancel()

		p.mu.Lock()
		j.finished = time.Now()
		p.running--
		switch {
		case err == nil:
			j.state = StateDone
			j.result = result
		case errors.Is(err, context.Canceled) || canceled:
			j.state = StateCanceled
			j.err = err.Error()
		default:
			j.state = StateFailed
			j.err = err.Error()
		}
		p.mu.Unlock()
	}
}

// Shutdown drains the pool: it stops accepting submissions, cancels every
// job still waiting in the queue (terminal state recorded, never dropped),
// gives running jobs up to grace to finish naturally, then cancels their
// contexts and waits for the workers to record terminal states. It returns
// the terminal-state counts over every job ever accepted. Shutdown is
// idempotent; concurrent calls both wait for the same drain.
func (p *Pool) Shutdown(grace time.Duration) Summary {
	p.mu.Lock()
	already := p.draining
	p.draining = true
	if !already {
		// Cancel everything still queued. The channel keeps the *job
		// pointers; workers skip entries that left StateQueued.
		now := time.Now()
		for _, id := range p.order {
			j := p.jobs[id]
			if j.state == StateQueued {
				j.state = StateCanceled
				j.err = "canceled: server draining"
				j.finished = now
				p.queued--
			}
		}
		close(p.queue)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	if grace > 0 {
		t := time.NewTimer(grace)
		select {
		case <-done:
			t.Stop()
		case <-t.C:
		}
	}
	// Cancel whatever is still running (no-op if everything finished) and
	// wait for the workers to write terminal states.
	p.cancel()
	<-done

	p.mu.Lock()
	defer p.mu.Unlock()
	var s Summary
	for _, j := range p.jobs {
		switch j.state {
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCanceled:
			s.Canceled++
		}
	}
	return s
}
