package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// blockingRun returns a RunFunc that parks every job on gate until released
// (or its context is canceled), then returns its payload as the result.
func blockingRun(gate chan struct{}) RunFunc {
	return func(ctx context.Context, w Work) ([]byte, error) {
		select {
		case <-gate:
			return []byte(w.Payload.(string)), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func waitState(t *testing.T, p *Pool, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s, ok := p.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if s.State == want {
			return s
		}
		if s.State.Terminal() && !want.Terminal() {
			t.Fatalf("job %s reached terminal state %s while waiting for %s (err %q)", id, s.State, want, s.Error)
		}
		time.Sleep(time.Millisecond)
	}
	s, _ := p.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, s.State, want)
	return Snapshot{}
}

// TestLifecycle walks one job through queued → running → done and checks
// the snapshot's fields at each step.
func TestLifecycle(t *testing.T) {
	gate := make(chan struct{})
	p := NewPool(1, 4, blockingRun(gate))
	defer p.Shutdown(0)

	s, err := p.Submit("e1", "k1", "payload-bytes")
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != "j1" || s.Experiment != "e1" || s.Key != "k1" || s.Submitted.IsZero() {
		t.Errorf("queued snapshot = %+v", s)
	}
	running := waitState(t, p, s.ID, StateRunning)
	if running.Started.IsZero() {
		t.Error("running job has no start time")
	}
	close(gate)
	done := waitState(t, p, s.ID, StateDone)
	if string(done.Result) != "payload-bytes" {
		t.Errorf("result = %q", done.Result)
	}
	if done.Finished.Before(done.Started) {
		t.Errorf("finished %v before started %v", done.Finished, done.Started)
	}
	if done.CacheHit {
		t.Error("worker-run job marked as cache hit")
	}
}

// TestBackpressure fills the queue behind a blocked worker and checks the
// overflow submission fails fast with ErrQueueFull — the 429 contract.
func TestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	p := NewPool(1, 2, blockingRun(gate))
	defer func() { close(gate); p.Shutdown(time.Second) }()

	// First job occupies the worker; two more fill the queue.
	first, err := p.Submit("e1", "k", "a")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, first.ID, StateRunning)
	for i := 0; i < 2; i++ {
		if _, err := p.Submit("e1", "k", "b"); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if q, _ := p.Depth(); q != 2 {
		t.Errorf("queued depth = %d, want 2", q)
	}
	if _, err := p.Submit("e1", "k", "c"); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow submit: err = %v, want ErrQueueFull", err)
	}
}

// TestFailure: a failing RunFunc lands the job in StateFailed with the
// error preserved.
func TestFailure(t *testing.T) {
	p := NewPool(1, 1, func(ctx context.Context, w Work) ([]byte, error) {
		return nil, fmt.Errorf("boom %s", w.ID)
	})
	defer p.Shutdown(time.Second)
	s, err := p.Submit("e1", "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, p, s.ID, StateFailed)
	if failed.Error != "boom j1" {
		t.Errorf("error = %q", failed.Error)
	}
}

// TestComplete records a cache hit: born done, result attached, no worker
// involved.
func TestComplete(t *testing.T) {
	p := NewPool(1, 1, blockingRun(make(chan struct{})))
	defer p.Shutdown(0)
	s, err := p.Complete("e1", "k1", []byte("cached"))
	if err != nil {
		t.Fatal(err)
	}
	if s.State != StateDone || !s.CacheHit || string(s.Result) != "cached" {
		t.Errorf("cache-hit snapshot = %+v", s)
	}
	got, ok := p.Get(s.ID)
	if !ok || got.State != StateDone || !got.CacheHit {
		t.Errorf("Get(%s) = %+v, %v", s.ID, got, ok)
	}
}

// TestShutdownDrain is the drain contract: queued jobs cancel immediately
// with status retained, running jobs get their contexts canceled after the
// grace window, Submit starts failing with ErrDraining, and no job's status
// is dropped.
func TestShutdownDrain(t *testing.T) {
	gate := make(chan struct{}) // never released: jobs finish only via cancel
	p := NewPool(1, 4, blockingRun(gate))

	running, err := p.Submit("e1", "k", "r")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, p, running.ID, StateRunning)
	queued, err := p.Submit("e1", "k", "q")
	if err != nil {
		t.Fatal(err)
	}

	sum := p.Shutdown(10 * time.Millisecond)
	if sum.Canceled != 2 || sum.Done != 0 || sum.Failed != 0 {
		t.Errorf("summary = %+v, want 2 canceled", sum)
	}
	for _, id := range []string{running.ID, queued.ID} {
		s, ok := p.Get(id)
		if !ok {
			t.Fatalf("job %s status dropped by drain", id)
		}
		if s.State != StateCanceled || s.Finished.IsZero() {
			t.Errorf("job %s = %+v, want canceled with a finish time", id, s)
		}
	}
	if _, err := p.Submit("e1", "k", "late"); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after shutdown: err = %v, want ErrDraining", err)
	}
	if _, err := p.Complete("e1", "k", nil); !errors.Is(err, ErrDraining) {
		t.Errorf("complete after shutdown: err = %v, want ErrDraining", err)
	}
}

// TestShutdownGraceful: running jobs that finish inside the grace window
// land in StateDone, not canceled.
func TestShutdownGraceful(t *testing.T) {
	started := make(chan struct{}, 2)
	p := NewPool(2, 4, func(ctx context.Context, w Work) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-time.After(20 * time.Millisecond):
			return []byte("ok"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	for i := 0; i < 2; i++ {
		if _, err := p.Submit("e1", "k", nil); err != nil {
			t.Fatal(err)
		}
	}
	// Both workers must have picked their job up before the drain begins,
	// or it legally cancels them while queued.
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("workers never started the jobs")
		}
	}
	sum := p.Shutdown(5 * time.Second)
	if sum.Done != 2 || sum.Failed != 0 || sum.Canceled != 0 {
		t.Errorf("summary = %+v, want 2 done", sum)
	}
	// Shutdown is idempotent.
	if again := p.Shutdown(0); again != sum {
		t.Errorf("second Shutdown = %+v, first = %+v", again, sum)
	}
}

// TestConcurrentSubmitters hammers Submit/Get/List/Depth from many
// goroutines while workers churn; run under -race (ci.sh does) this is the
// pool's data-race gate.
func TestConcurrentSubmitters(t *testing.T) {
	p := NewPool(4, 64, func(ctx context.Context, w Work) ([]byte, error) {
		return []byte(w.ID), nil
	})
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if s, err := p.Submit("e1", "k", nil); err == nil {
					mu.Lock()
					accepted++
					mu.Unlock()
					p.Get(s.ID)
				}
				p.List()
				p.Depth()
			}
		}()
	}
	wg.Wait()
	sum := p.Shutdown(5 * time.Second)
	if total := sum.Done + sum.Failed + sum.Canceled; total != accepted {
		t.Errorf("terminal states %d != accepted %d", total, accepted)
	}
	if len(p.List()) != accepted {
		t.Errorf("List has %d jobs, accepted %d", len(p.List()), accepted)
	}
}
