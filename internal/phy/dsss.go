// Package phy implements an IEEE 802.15.4-style direct-sequence
// spread-spectrum baseband: 4-bit symbols spread to 32-chip sequences, an
// AWGN/interference channel, and a maximum-correlation receiver.
//
// §IV.A picks ZigBee backscatter exactly because "IEEE 802.15.4 realizes
// 250 kbps communication speed using direct sequence spread spectrum,
// communication distance is long due to spread gain"; this package makes
// that spreading gain measurable at chip level: the correlation receiver
// decodes far below the per-chip SNR an unspread link needs, and rejects
// narrowband interferers that flatten an unspread signal.
//
// The codebook is 16 deterministic pseudo-random 32-chip sequences with a
// guaranteed pairwise-distance floor (the standard's exact chip map is a
// rotated/conjugated m-sequence family with the same geometry).
package phy

import (
	"fmt"
	"math"

	"zeiot/internal/rng"
)

// Symbols is the alphabet size (4 bits/symbol) and ChipsPerSymbol the
// spreading factor, both per IEEE 802.15.4.
const (
	Symbols        = 16
	ChipsPerSymbol = 32
)

// Codebook holds one chip sequence per symbol, chips in ±1.
type Codebook struct {
	chips [Symbols][ChipsPerSymbol]float64
}

// NewCodebook generates the deterministic codebook: random ±1 sequences
// re-drawn until every pair differs in at least minDist chip positions.
func NewCodebook() *Codebook {
	const minDist = 13
	stream := rng.New(0x802154)
	cb := &Codebook{}
	for s := 0; s < Symbols; {
		var cand [ChipsPerSymbol]float64
		for c := range cand {
			if stream.Bool(0.5) {
				cand[c] = 1
			} else {
				cand[c] = -1
			}
		}
		ok := true
		for prev := 0; prev < s; prev++ {
			if hamming(cb.chips[prev], cand) < minDist {
				ok = false
				break
			}
		}
		if ok {
			cb.chips[s] = cand
			s++
		}
	}
	return cb
}

func hamming(a, b [ChipsPerSymbol]float64) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// MinDistance returns the smallest pairwise chip distance of the codebook.
func (cb *Codebook) MinDistance() int {
	minD := ChipsPerSymbol
	for i := 0; i < Symbols; i++ {
		for j := i + 1; j < Symbols; j++ {
			if d := hamming(cb.chips[i], cb.chips[j]); d < minD {
				minD = d
			}
		}
	}
	return minD
}

// Spread maps symbols (values 0..15) to a chip waveform.
func (cb *Codebook) Spread(symbols []int) ([]float64, error) {
	out := make([]float64, 0, len(symbols)*ChipsPerSymbol)
	for i, s := range symbols {
		if s < 0 || s >= Symbols {
			return nil, fmt.Errorf("phy: symbol %d at %d out of range", s, i)
		}
		out = append(out, cb.chips[s][:]...)
	}
	return out, nil
}

// Despread decodes a chip waveform by maximum correlation per symbol slot.
// Waveform length must be a multiple of ChipsPerSymbol.
func (cb *Codebook) Despread(waveform []float64) ([]int, error) {
	if len(waveform)%ChipsPerSymbol != 0 {
		return nil, fmt.Errorf("phy: waveform length %d not a multiple of %d", len(waveform), ChipsPerSymbol)
	}
	n := len(waveform) / ChipsPerSymbol
	out := make([]int, n)
	for i := 0; i < n; i++ {
		slot := waveform[i*ChipsPerSymbol : (i+1)*ChipsPerSymbol]
		best, bestCorr := 0, math.Inf(-1)
		for s := 0; s < Symbols; s++ {
			corr := 0.0
			for c := 0; c < ChipsPerSymbol; c++ {
				corr += slot[c] * cb.chips[s][c]
			}
			if corr > bestCorr {
				best, bestCorr = s, corr
			}
		}
		out[i] = best
	}
	return out, nil
}

// Channel perturbs a chip waveform.
type Channel struct {
	// NoiseStd is the per-chip AWGN standard deviation (chip amplitude
	// is 1).
	NoiseStd float64
	// InterfererAmp and InterfererHz add a continuous-wave jammer sampled
	// at chip rate ChipRateHz.
	InterfererAmp float64
	InterfererHz  float64
	ChipRateHz    float64
}

// Apply returns the received waveform.
func (ch Channel) Apply(waveform []float64, stream *rng.Stream) []float64 {
	out := make([]float64, len(waveform))
	for i, v := range waveform {
		rx := v
		if ch.NoiseStd > 0 {
			rx += stream.NormMeanStd(0, ch.NoiseStd)
		}
		if ch.InterfererAmp > 0 {
			rate := ch.ChipRateHz
			if rate <= 0 {
				rate = 2e6 // 802.15.4 chip rate
			}
			rx += ch.InterfererAmp * math.Sin(2*math.Pi*ch.InterfererHz*float64(i)/rate)
		}
		out[i] = rx
	}
	return out
}

// SymbolErrorRate measures the empirical SER over trials random symbols
// through the channel.
func SymbolErrorRate(cb *Codebook, ch Channel, trials int, stream *rng.Stream) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("phy: non-positive trials")
	}
	errs := 0
	symbols := make([]int, trials)
	for i := range symbols {
		symbols[i] = stream.Intn(Symbols)
	}
	tx, err := cb.Spread(symbols)
	if err != nil {
		return 0, err
	}
	rx, err := cb.Despread(ch.Apply(tx, stream))
	if err != nil {
		return 0, err
	}
	for i := range symbols {
		if rx[i] != symbols[i] {
			errs++
		}
	}
	return float64(errs) / float64(trials), nil
}

// UnspreadErrorRate is the baseline: the same 4 bits per symbol sent as
// four raw ±1 chips (no spreading), hard-sliced at the receiver. Used to
// demonstrate what the spreading gain buys under noise and jamming.
func UnspreadErrorRate(ch Channel, trials int, stream *rng.Stream) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("phy: non-positive trials")
	}
	errs := 0
	const bitsPerSymbol = 4
	tx := make([]float64, trials*bitsPerSymbol)
	bits := make([]float64, len(tx))
	for i := range tx {
		if stream.Bool(0.5) {
			bits[i] = 1
		} else {
			bits[i] = -1
		}
		tx[i] = bits[i]
	}
	rx := ch.Apply(tx, stream)
	for i := 0; i < trials; i++ {
		for b := 0; b < bitsPerSymbol; b++ {
			v := rx[i*bitsPerSymbol+b]
			if (v >= 0) != (bits[i*bitsPerSymbol+b] > 0) {
				errs++
				break // one bad bit corrupts the symbol
			}
		}
	}
	return float64(errs) / float64(trials), nil
}
