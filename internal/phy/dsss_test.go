package phy

import (
	"testing"

	"zeiot/internal/rng"
)

func TestCodebookGeometry(t *testing.T) {
	cb := NewCodebook()
	if d := cb.MinDistance(); d < 13 {
		t.Fatalf("codebook min distance = %d, want >= 13", d)
	}
	// Chips are ±1 only.
	for s := 0; s < Symbols; s++ {
		for c := 0; c < ChipsPerSymbol; c++ {
			if v := cb.chips[s][c]; v != 1 && v != -1 {
				t.Fatalf("chip (%d,%d) = %v", s, c, v)
			}
		}
	}
}

func TestCodebookDeterministic(t *testing.T) {
	a := NewCodebook()
	b := NewCodebook()
	for s := 0; s < Symbols; s++ {
		if a.chips[s] != b.chips[s] {
			t.Fatalf("codebook not deterministic at symbol %d", s)
		}
	}
}

func TestNoiselessRoundTrip(t *testing.T) {
	cb := NewCodebook()
	stream := rng.New(1)
	symbols := make([]int, 500)
	for i := range symbols {
		symbols[i] = stream.Intn(Symbols)
	}
	tx, err := cb.Spread(symbols)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx) != len(symbols)*ChipsPerSymbol {
		t.Fatalf("waveform length = %d", len(tx))
	}
	rx, err := cb.Despread(tx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range symbols {
		if rx[i] != symbols[i] {
			t.Fatalf("symbol %d decoded as %d, sent %d", i, rx[i], symbols[i])
		}
	}
}

func TestSpreadValidation(t *testing.T) {
	cb := NewCodebook()
	if _, err := cb.Spread([]int{16}); err == nil {
		t.Fatal("out-of-range symbol accepted")
	}
	if _, err := cb.Despread(make([]float64, 33)); err == nil {
		t.Fatal("ragged waveform accepted")
	}
}

func TestSERMonotoneInNoise(t *testing.T) {
	cb := NewCodebook()
	prev := -1.0
	for _, noise := range []float64{1.0, 2.0, 3.0, 4.0} {
		ser, err := SymbolErrorRate(cb, Channel{NoiseStd: noise}, 3000, rng.New(uint64(noise*10)))
		if err != nil {
			t.Fatal(err)
		}
		if ser < prev-0.02 {
			t.Fatalf("SER not monotone: %v at noise %v after %v", ser, noise, prev)
		}
		prev = ser
	}
	// Moderate noise (chip SNR ≈ −3.5 dB): theory for a distance-13
	// codebook puts SER at a few percent; the unspread baseline is
	// unusable here (see TestSpreadingGainUnderNoise).
	ser, err := SymbolErrorRate(cb, Channel{NoiseStd: 1.5}, 3000, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if ser > 0.08 {
		t.Fatalf("SER at noise 1.5 = %v, want a few percent", ser)
	}
}

func TestSpreadingGainUnderNoise(t *testing.T) {
	// At per-chip SNR where raw bits fail badly, the correlation receiver
	// still decodes: the paper's "communication distance is long due to
	// spread gain".
	cb := NewCodebook()
	ch := Channel{NoiseStd: 2.0}
	spread, err := SymbolErrorRate(cb, ch, 4000, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := UnspreadErrorRate(ch, 4000, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if raw < 0.5 {
		t.Fatalf("raw link unexpectedly healthy: %v", raw)
	}
	if spread > 0.25 {
		t.Fatalf("spread link SER = %v at the same chip SNR", spread)
	}
	if spread > raw/2 {
		t.Fatalf("spreading gain too small: spread %v vs raw %v", spread, raw)
	}
}

func TestJammingRejection(t *testing.T) {
	// A strong CW interferer destroys the unspread link but barely moves
	// the despread one (the correlation averages the tone out).
	cb := NewCodebook()
	ch := Channel{
		NoiseStd:      0.3,
		InterfererAmp: 2.0,
		InterfererHz:  153e3, // off the chip rate, non-harmonic
		ChipRateHz:    2e6,
	}
	spread, err := SymbolErrorRate(cb, ch, 3000, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := UnspreadErrorRate(ch, 3000, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	if raw < 0.3 {
		t.Fatalf("jammer did not hurt the raw link: %v", raw)
	}
	if spread > raw/3 {
		t.Fatalf("spreading rejected too little jamming: spread %v vs raw %v", spread, raw)
	}
}

func TestErrorRateValidation(t *testing.T) {
	cb := NewCodebook()
	if _, err := SymbolErrorRate(cb, Channel{}, 0, rng.New(1)); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := UnspreadErrorRate(Channel{}, -1, rng.New(1)); err == nil {
		t.Fatal("negative trials accepted")
	}
}
