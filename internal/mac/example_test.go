package mac_test

import (
	"fmt"
	"time"

	"zeiot/internal/mac"
)

// Example compares the proposed cycle-registered MAC against the
// uncoordinated baseline on a quiet channel, where the scheduler's dummy
// packets make the difference.
func Example() {
	base := mac.DefaultConfig()
	base.NumDevices = 10
	base.WLANRate = 10 // quiet WLAN
	base.Seed = 1

	scheduled := base
	scheduled.Mode = mac.ModeScheduled
	ms, err := mac.Run(scheduled, 5*time.Second)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	aloha := base
	aloha.Mode = mac.ModeAloha
	ma, err := mac.Run(aloha, 5*time.Second)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println("scheduled delivers >99%:", ms.BSDeliveryRatio() > 0.99)
	fmt.Println("aloha delivers <50%:", ma.BSDeliveryRatio() < 0.5)
	fmt.Println("only scheduled inserts dummies:", ms.DummyFrames > 0 && ma.DummyFrames == 0)
	// Output:
	// scheduled delivers >99%: true
	// aloha delivers <50%: true
	// only scheduled inserts dummies: true
}
