// Package mac simulates the coexistence of IEEE 802.11-style WLAN traffic
// and ambient backscatter devices on one channel, reproducing the
// backscatter MAC protocol of ref. [64] (§IV.A of the paper).
//
// Two MAC modes are modelled:
//
//   - ModeScheduled — the proposed protocol: every IoT device registers its
//     data-acquisition cycle with the access point; the AP picks one
//     pending device per WLAN frame (earliest deadline first) and, when a
//     deadline approaches with no WLAN traffic to ride on, transmits a
//     dummy packet purely to give the tag a carrier. The full-duplex AP
//     decodes the backscatter cleanly, so WLAN frames are unharmed.
//
//   - ModeAloha — the uncoordinated baseline: a device backscatters on the
//     next WLAN frame after its reading is generated, without coordination.
//     Two riders on the same frame collide (both readings lost), any rider
//     corrupts the host WLAN frame with CorruptProb (forcing a WLAN
//     retransmission), and a reading with no frame before its deadline is
//     missed.
//
// The simulation is event-driven on sim.Kernel and fully deterministic for
// a given seed.
package mac

import (
	"fmt"
	"time"

	"zeiot/internal/rng"
	"zeiot/internal/sim"
)

// Mode selects the backscatter MAC.
type Mode int

// MAC modes.
const (
	ModeScheduled Mode = iota + 1
	ModeAloha
)

func (m Mode) String() string {
	switch m {
	case ModeScheduled:
		return "scheduled"
	case ModeAloha:
		return "aloha"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes one coexistence simulation.
type Config struct {
	Mode Mode
	// NumDevices is the number of backscatter IoT devices.
	NumDevices int
	// Period is each device's data-acquisition cycle (the registered
	// cycle of ref. [64]); device i's phase is staggered deterministically.
	Period time.Duration
	// Periods optionally gives heterogeneous cycles — the paper's point
	// that cycles "vary depending on target applications". Device i uses
	// Periods[i%len(Periods)]; empty means every device uses Period.
	Periods []time.Duration
	// WLANRate is the mean arrival rate of WLAN frames in frames/second
	// (Poisson).
	WLANRate float64
	// FrameDur is the airtime of one WLAN frame (also the airtime of a
	// dummy frame and the carrier window a backscatter packet needs).
	FrameDur time.Duration
	// FrameBits is the payload of one WLAN frame, for throughput.
	FrameBits int
	// CorruptProb is the probability an uncoordinated backscatter rider
	// corrupts its host WLAN frame (ModeAloha only).
	CorruptProb float64
	// DisableDummy turns off dummy-packet insertion in ModeScheduled —
	// the ablation showing the paper's low-traffic failure mode.
	DisableDummy bool
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig returns a config matching the paper's ZigBee-grade
// backscatter testbed: 1 ms frames, 10 devices on a 100 ms cycle.
func DefaultConfig() Config {
	return Config{
		Mode:        ModeScheduled,
		NumDevices:  10,
		Period:      100 * time.Millisecond,
		WLANRate:    200,
		FrameDur:    time.Millisecond,
		FrameBits:   12000,
		CorruptProb: 0.5,
	}
}

// Metrics summarizes one simulation run.
type Metrics struct {
	// WLAN side.
	WLANOffered        int // frames generated
	WLANDelivered      int // frames delivered (after retries)
	WLANRetries        int // retransmissions caused by backscatter corruption
	DummyFrames        int // dummy frames the AP inserted
	WLANThroughputBps  float64
	MeanWLANDelay      time.Duration // enqueue→delivery
	ChannelUtilization float64

	// Backscatter side.
	BSGenerated int // readings produced by devices
	BSDelivered int
	BSCollided  int // lost to rider collisions (ModeAloha)
	BSMissed    int // deadline passed without any carrier
}

// BSDeliveryRatio returns delivered/generated (1 when nothing generated).
func (m Metrics) BSDeliveryRatio() float64 {
	if m.BSGenerated == 0 {
		return 1
	}
	return float64(m.BSDelivered) / float64(m.BSGenerated)
}

// WLANDeliveryRatio returns delivered/offered (1 when nothing offered).
func (m Metrics) WLANDeliveryRatio() float64 {
	if m.WLANOffered == 0 {
		return 1
	}
	return float64(m.WLANDelivered) / float64(m.WLANOffered)
}

type frame struct {
	enqueued time.Duration
	dummy    bool
	// dummyFor is the device a dummy frame was inserted for.
	dummyFor int
	retries  int
}

type device struct {
	id       int
	period   time.Duration
	pending  bool
	deadline time.Duration
}

type simulator struct {
	cfg     Config
	k       *sim.Kernel
	stream  *rng.Stream
	queue   []*frame
	busy    bool
	devices []*device
	m       Metrics
	busyFor time.Duration // accumulated airtime
	horizon time.Duration
}

// Run simulates the channel for the given duration and returns metrics.
func Run(cfg Config, duration time.Duration) (Metrics, error) {
	if cfg.NumDevices < 0 || cfg.Period <= 0 || cfg.FrameDur <= 0 || cfg.WLANRate < 0 {
		return Metrics{}, fmt.Errorf("mac: invalid config %+v", cfg)
	}
	if cfg.Mode != ModeScheduled && cfg.Mode != ModeAloha {
		return Metrics{}, fmt.Errorf("mac: unknown mode %v", cfg.Mode)
	}
	s := &simulator{
		cfg:     cfg,
		k:       sim.New(),
		stream:  rng.New(cfg.Seed),
		horizon: duration,
	}
	for i := 0; i < cfg.NumDevices; i++ {
		period := cfg.Period
		if len(cfg.Periods) > 0 {
			period = cfg.Periods[i%len(cfg.Periods)]
			if period <= 0 {
				return Metrics{}, fmt.Errorf("mac: non-positive period for device %d", i)
			}
		}
		s.devices = append(s.devices, &device{id: i, period: period})
		// Stagger generation phases across the period.
		phase := time.Duration(int64(period) * int64(i) / int64(maxInt(cfg.NumDevices, 1)))
		s.scheduleReading(s.devices[i], phase)
	}
	if cfg.WLANRate > 0 {
		s.k.After(s.nextArrival(), s.wlanArrival)
	}
	if err := s.k.Run(duration); err != nil {
		return Metrics{}, err
	}
	s.finalize(duration)
	return s.m, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (s *simulator) nextArrival() time.Duration {
	return time.Duration(s.stream.Exp(s.cfg.WLANRate) * float64(time.Second))
}

func (s *simulator) wlanArrival() {
	s.m.WLANOffered++
	s.enqueue(&frame{enqueued: s.k.Now()})
	s.k.After(s.nextArrival(), s.wlanArrival)
}

func (s *simulator) enqueue(f *frame) {
	s.queue = append(s.queue, f)
	if !s.busy {
		s.startNext()
	}
}

func (s *simulator) startNext() {
	if s.busy || len(s.queue) == 0 {
		return
	}
	f := s.queue[0]
	s.queue = s.queue[1:]
	s.busy = true
	s.busyFor += s.cfg.FrameDur
	riders := s.pickRiders(f)
	s.k.After(s.cfg.FrameDur, func() { s.finishFrame(f, riders) })
}

// pickRiders decides which pending devices backscatter on this frame.
func (s *simulator) pickRiders(f *frame) []*device {
	switch s.cfg.Mode {
	case ModeScheduled:
		if f.dummy {
			// A dummy frame carries exactly the device it was sent for.
			d := s.devices[f.dummyFor]
			if d.pending {
				return []*device{d}
			}
			return nil
		}
		// Earliest-deadline-first over pending devices.
		var best *device
		for _, d := range s.devices {
			if !d.pending {
				continue
			}
			if best == nil || d.deadline < best.deadline {
				best = d
			}
		}
		if best == nil {
			return nil
		}
		return []*device{best}
	case ModeAloha:
		var riders []*device
		for _, d := range s.devices {
			if d.pending {
				riders = append(riders, d)
			}
		}
		return riders
	default:
		panic("mac: unreachable mode")
	}
}

func (s *simulator) finishFrame(f *frame, riders []*device) {
	s.busy = false
	switch {
	case len(riders) == 1:
		riders[0].pending = false
		s.m.BSDelivered++
	case len(riders) > 1:
		// Collision: every rider's reading is lost.
		for _, d := range riders {
			d.pending = false
			s.m.BSCollided++
		}
	}
	corrupted := false
	if s.cfg.Mode == ModeAloha && len(riders) > 0 && !f.dummy {
		p := 1.0
		for range riders {
			p *= 1 - s.cfg.CorruptProb
		}
		corrupted = s.stream.Bool(1 - p)
	}
	if corrupted {
		s.m.WLANRetries++
		f.retries++
		s.queue = append([]*frame{f}, s.queue...)
	} else if !f.dummy {
		s.m.WLANDelivered++
		s.m.MeanWLANDelay += s.k.Now() - f.enqueued // finalized later
	}
	s.startNext()
}

func (s *simulator) scheduleReading(d *device, at time.Duration) {
	s.k.At(at, func() {
		// Generating a new reading while the previous one is still pending
		// means the previous one missed its deadline.
		if d.pending {
			d.pending = false
			s.m.BSMissed++
		}
		s.m.BSGenerated++
		d.pending = true
		d.deadline = s.k.Now() + d.period
		if s.cfg.Mode == ModeScheduled && !s.cfg.DisableDummy {
			// Guard slot: if the reading is still pending close to its
			// deadline, insert a dummy frame to provide a carrier.
			guard := d.period - 2*s.cfg.FrameDur
			if guard < 0 {
				guard = 0
			}
			s.k.After(guard, func() {
				if d.pending && s.k.Now()+s.cfg.FrameDur <= s.horizon {
					s.m.DummyFrames++
					s.enqueue(&frame{enqueued: s.k.Now(), dummy: true, dummyFor: d.id})
				}
			})
		}
		next := s.k.Now() + d.period
		if next <= s.horizon {
			s.scheduleReading(d, next)
		}
	})
}

func (s *simulator) finalize(duration time.Duration) {
	if s.m.WLANDelivered > 0 {
		s.m.MeanWLANDelay /= time.Duration(s.m.WLANDelivered)
	}
	if duration > 0 {
		s.m.WLANThroughputBps = float64(s.m.WLANDelivered*s.cfg.FrameBits) / duration.Seconds()
		s.m.ChannelUtilization = float64(s.busyFor) / float64(duration)
	}
	// Readings still pending at the horizon are neither delivered nor
	// missed; exclude them from the generated count so ratios compare
	// completed cycles only.
	for _, d := range s.devices {
		if d.pending {
			s.m.BSGenerated--
		}
	}
}
