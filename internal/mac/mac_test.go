package mac

import (
	"testing"
	"time"
)

func TestScheduledDeliversUnderAmpleTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 1
	m, err := Run(cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.BSGenerated < 900 {
		t.Fatalf("BSGenerated = %d, want ~1000", m.BSGenerated)
	}
	if r := m.BSDeliveryRatio(); r < 0.99 {
		t.Fatalf("scheduled delivery ratio = %.3f", r)
	}
	if m.BSCollided != 0 {
		t.Fatalf("scheduled mode collided %d times", m.BSCollided)
	}
	if m.WLANRetries != 0 {
		t.Fatalf("scheduled mode caused %d WLAN retries", m.WLANRetries)
	}
}

func TestAlohaCollidesAndCorrupts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeAloha
	cfg.NumDevices = 30
	cfg.WLANRate = 60 // scarce frames → riders pile up
	cfg.Seed = 2
	m, err := Run(cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.BSCollided == 0 {
		t.Fatal("no collisions despite 30 uncoordinated devices")
	}
	if m.WLANRetries == 0 {
		t.Fatal("no WLAN corruption despite uncoordinated riders")
	}
	if r := m.BSDeliveryRatio(); r > 0.8 {
		t.Fatalf("aloha delivery ratio suspiciously high: %.3f", r)
	}
}

func TestScheduledBeatsAloha(t *testing.T) {
	base := DefaultConfig()
	base.NumDevices = 20
	base.WLANRate = 100
	base.Seed = 3

	sched := base
	sched.Mode = ModeScheduled
	ms, err := Run(sched, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	aloha := base
	aloha.Mode = ModeAloha
	ma, err := Run(aloha, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ms.BSDeliveryRatio() <= ma.BSDeliveryRatio() {
		t.Fatalf("scheduled %.3f <= aloha %.3f", ms.BSDeliveryRatio(), ma.BSDeliveryRatio())
	}
	if ms.MeanWLANDelay > ma.MeanWLANDelay {
		t.Fatalf("scheduled WLAN delay %v > aloha %v", ms.MeanWLANDelay, ma.MeanWLANDelay)
	}
}

func TestDummyPacketsRescueIdleChannel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WLANRate = 0 // dead-quiet WLAN
	cfg.Seed = 4
	m, err := Run(cfg, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.DummyFrames == 0 {
		t.Fatal("no dummy frames on an idle channel")
	}
	if r := m.BSDeliveryRatio(); r < 0.95 {
		t.Fatalf("delivery ratio with dummies = %.3f", r)
	}
}

func TestDisableDummyFailsOnIdleChannel(t *testing.T) {
	// The paper's stated failure mode: backscatter error rate rises when
	// there is not enough WLAN traffic. Without dummy packets and with no
	// WLAN frames, every reading must miss its deadline.
	cfg := DefaultConfig()
	cfg.WLANRate = 0
	cfg.DisableDummy = true
	cfg.Seed = 5
	m, err := Run(cfg, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.DummyFrames != 0 {
		t.Fatal("dummy frames despite DisableDummy")
	}
	if m.BSDelivered != 0 {
		t.Fatalf("delivered %d packets with no carrier at all", m.BSDelivered)
	}
	if m.BSMissed == 0 {
		t.Fatal("no missed readings recorded")
	}
}

func TestDummiesShrinkWithTraffic(t *testing.T) {
	run := func(rate float64) Metrics {
		cfg := DefaultConfig()
		cfg.WLANRate = rate
		cfg.Seed = 6
		m, err := Run(cfg, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	quiet := run(5)
	busy := run(500)
	if busy.DummyFrames >= quiet.DummyFrames {
		t.Fatalf("dummies busy=%d >= quiet=%d", busy.DummyFrames, quiet.DummyFrames)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeAloha
	cfg.Seed = 7
	a, err := Run(cfg, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestUtilizationBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WLANRate = 2000 // saturating
	cfg.Seed = 8
	m, err := Run(cfg, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.ChannelUtilization < 0.9 || m.ChannelUtilization > 1.01 {
		t.Fatalf("saturated utilization = %v", m.ChannelUtilization)
	}
}

func TestThroughputMatchesOfferedLoadWhenUnderloaded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WLANRate = 100
	cfg.Seed = 9
	m, err := Run(cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 100 frames/s × 12000 bits = 1.2 Mbps offered; all should deliver.
	if m.WLANDeliveryRatio() < 0.99 {
		t.Fatalf("underloaded WLAN delivery = %.3f", m.WLANDeliveryRatio())
	}
	if m.WLANThroughputBps < 1.0e6 || m.WLANThroughputBps > 1.4e6 {
		t.Fatalf("throughput = %v bps", m.WLANThroughputBps)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Period = 0
	if _, err := Run(bad, time.Second); err == nil {
		t.Fatal("zero period accepted")
	}
	bad = DefaultConfig()
	bad.Mode = Mode(9)
	if _, err := Run(bad, time.Second); err == nil {
		t.Fatal("unknown mode accepted")
	}
	bad = DefaultConfig()
	bad.NumDevices = -1
	if _, err := Run(bad, time.Second); err == nil {
		t.Fatal("negative devices accepted")
	}
}

func TestZeroDevices(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumDevices = 0
	cfg.Seed = 10
	m, err := Run(cfg, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.BSGenerated != 0 || m.BSDeliveryRatio() != 1 {
		t.Fatalf("zero-device metrics: %+v", m)
	}
	if m.WLANDeliveryRatio() < 0.99 {
		t.Fatalf("WLAN alone should deliver: %.3f", m.WLANDeliveryRatio())
	}
}

func TestHeterogeneousCycles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumDevices = 9
	cfg.Periods = []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	cfg.WLANRate = 300
	cfg.Seed = 11
	m, err := Run(cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Expected generation: 3 devices per period class over 10 s:
	// 3*(200 + 100 + 50) = 1050, minus in-flight tails.
	if m.BSGenerated < 950 || m.BSGenerated > 1060 {
		t.Fatalf("generated = %d, want ~1050", m.BSGenerated)
	}
	if r := m.BSDeliveryRatio(); r < 0.99 {
		t.Fatalf("heterogeneous delivery ratio = %.3f", r)
	}
}

func TestHeterogeneousCyclesValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Periods = []time.Duration{0}
	if _, err := Run(cfg, time.Second); err == nil {
		t.Fatal("zero heterogeneous period accepted")
	}
}
