package vitals_test

import (
	"fmt"

	"zeiot/internal/rng"
	"zeiot/internal/vitals"
)

// Example senses a resting adult's vitals through a chest tag array.
func Example() {
	cfg := vitals.DefaultConfig()
	subject := vitals.RestingAdult()
	phases := vitals.Capture(cfg, subject, rng.New(1))
	heart, breath, err := vitals.Estimate(cfg, phases)
	if err != nil {
		fmt.Println("estimate:", err)
		return
	}
	fmt.Printf("heart ~%.0f bpm (truth %.0f)\n", vitals.BPM(heart), vitals.BPM(subject.HeartHz))
	fmt.Printf("breath ~%.0f /min (truth %.0f)\n", vitals.BPM(breath), vitals.BPM(subject.BreathHz))
	// Output:
	// heart ~67 bpm (truth 66)
	// breath ~15 /min (truth 15)
}
