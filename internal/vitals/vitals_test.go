package vitals

import (
	"math"
	"testing"

	"zeiot/internal/rng"
)

func TestEstimateRestingAdult(t *testing.T) {
	cfg := DefaultConfig()
	s := RestingAdult()
	phases := Capture(cfg, s, rng.New(1))
	heart, breath, err := Estimate(cfg, phases)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(heart-s.HeartHz) > 0.15 {
		t.Fatalf("heart rate %.2f Hz, want ~%.2f", heart, s.HeartHz)
	}
	if math.Abs(breath-s.BreathHz) > 0.06 {
		t.Fatalf("respiration %.2f Hz, want ~%.2f", breath, s.BreathHz)
	}
}

func TestEstimateAcrossSubjects(t *testing.T) {
	cfg := DefaultConfig()
	stream := rng.New(2)
	subjects := []Subject{
		{HeartHz: 0.9, BreathHz: 0.2, HeartMM: 0.5, BreathMM: 4, Jitter: 0.03},
		{HeartHz: 1.3, BreathHz: 0.3, HeartMM: 0.45, BreathMM: 3.5, Jitter: 0.04},
		{HeartHz: 1.7, BreathHz: 0.4, HeartMM: 0.55, BreathMM: 3, Jitter: 0.03},
	}
	for i, s := range subjects {
		phases := Capture(cfg, s, stream.Split("subject"))
		heart, breath, err := Estimate(cfg, phases)
		if err != nil {
			t.Fatalf("subject %d: %v", i, err)
		}
		if math.Abs(heart-s.HeartHz) > 0.2 {
			t.Fatalf("subject %d: heart %.2f want %.2f", i, heart, s.HeartHz)
		}
		if math.Abs(breath-s.BreathHz) > 0.08 {
			t.Fatalf("subject %d: breath %.2f want %.2f", i, breath, s.BreathHz)
		}
	}
}

func TestArrayBeatsSingleTag(t *testing.T) {
	// The tag array's averaging should estimate at least as well as a
	// single tag on a noisy reader.
	noisy := DefaultConfig()
	noisy.Reader.PhaseNoise = 0.04
	s := RestingAdult()
	errOf := func(tags int, seed uint64) float64 {
		cfg := noisy
		cfg.Tags = tags
		total, n := 0.0, 0
		for trial := uint64(0); trial < 6; trial++ {
			phases := Capture(cfg, s, rng.New(seed+trial))
			heart, _, err := Estimate(cfg, phases)
			if err != nil {
				total += 1 // count failures as large error
				n++
				continue
			}
			total += math.Abs(heart - s.HeartHz)
			n++
		}
		return total / float64(n)
	}
	single := errOf(1, 100)
	array := errOf(4, 200)
	if array > single+0.02 {
		t.Fatalf("4-tag array error %.3f worse than single tag %.3f", array, single)
	}
}

func TestEstimateValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, _, err := Estimate(cfg, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	// Pure noise must not produce confident vitals.
	stream := rng.New(3)
	noise := make([][]float64, 2)
	for i := range noise {
		noise[i] = make([]float64, int(cfg.SampleHz*cfg.WindowSec))
		for j := range noise[i] {
			noise[i][j] = stream.Float64() * 2 * math.Pi
		}
	}
	if _, _, err := Estimate(cfg, noise); err == nil {
		t.Fatal("pure noise produced vitals")
	}
}

func TestBPM(t *testing.T) {
	if BPM(1.1) != 66 {
		t.Fatalf("BPM(1.1) = %v", BPM(1.1))
	}
}

func TestCaptureDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := Capture(cfg, RestingAdult(), rng.New(5))
	b := Capture(cfg, RestingAdult(), rng.New(5))
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different captures")
			}
		}
	}
}
