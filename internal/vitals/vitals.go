// Package vitals implements use case (i) of §III.C — monitoring elderly
// people's sleep and context changes — with RF-ECG-style vital sensing
// (ref [58]): an array of passive RFID tags on the chest backscatters a
// phase stream whose micro-motion carries respiration (~0.2–0.5 Hz chest
// wall excursion, millimetres) and heartbeat (~0.8–2 Hz precordial motion,
// tens of micrometres).
//
// The estimator splits the phase-derived displacement into the two
// physiological bands with moving-average filters, measures each band's
// periodicity by autocorrelation (reusing motion.DominantPeriod), and
// fuses the tag array by averaging band signals across tags, which
// suppresses per-tag phase noise the way RF-ECG's tag array does.
package vitals

import (
	"fmt"
	"math"

	"zeiot/internal/geom"
	"zeiot/internal/motion"
	"zeiot/internal/rfid"
	"zeiot/internal/rng"
)

// Subject is the ground truth being sensed.
type Subject struct {
	// HeartHz is the heart rate (0.8–2 Hz); BreathHz the respiration rate
	// (0.15–0.5 Hz).
	HeartHz, BreathHz float64
	// HeartMM and BreathMM are the chest-surface displacement amplitudes
	// in millimetres.
	HeartMM, BreathMM float64
	// Jitter is the beat-to-beat variability (fractional).
	Jitter float64
}

// RestingAdult returns typical resting vitals: 66 bpm, 15 breaths/min.
func RestingAdult() Subject {
	return Subject{HeartHz: 1.1, BreathHz: 0.25, HeartMM: 0.5, BreathMM: 4, Jitter: 0.03}
}

// Config describes the sensing setup.
type Config struct {
	// Tags is the chest-array size; Reader the observing antenna.
	Tags   int
	Reader rfid.Reader
	// SampleHz is the tag interrogation rate; WindowSec the estimation
	// window.
	SampleHz  float64
	WindowSec float64
}

// DefaultConfig returns a 4-tag array read at 20 Hz over 30 s windows.
func DefaultConfig() Config {
	r := rfid.UHFReader(geom.Point{X: 0, Y: 0})
	r.PhaseNoise = 0.01 // coherent averaging at the reader
	return Config{Tags: 4, Reader: r, SampleHz: 20, WindowSec: 30}
}

// Capture simulates one window of wrapped phase streams, one per tag. The
// subject sits ~1.5 m from the reader; each tag rides the chest wall with
// its own motion coupling.
func Capture(cfg Config, s Subject, stream *rng.Stream) [][]float64 {
	n := int(cfg.SampleHz * cfg.WindowSec)
	out := make([][]float64, cfg.Tags)
	// The chest wall moves as one surface: motion phase is shared across
	// the array (small per-tag lags), which is why array averaging adds
	// coherently for the signal and incoherently for the noise.
	heartPhase0 := stream.Float64() * 2 * math.Pi
	breathPhase0 := stream.Float64() * 2 * math.Pi
	for tag := 0; tag < cfg.Tags; tag++ {
		base := 1.5 + 0.05*float64(tag)
		// Tags closer to the heart couple more heart motion.
		heartGain := 0.6 + 0.8*stream.Float64()
		breathGain := 0.8 + 0.4*stream.Float64()
		phases := make([]float64, n)
		heartPhase := heartPhase0 + stream.NormMeanStd(0, 0.2)
		breathPhase := breathPhase0 + stream.NormMeanStd(0, 0.1)
		for i := 0; i < n; i++ {
			t := float64(i) / cfg.SampleHz
			// Bounded rate variability: a slow phase wobble, not a drift.
			wobble := 2 * math.Pi * s.Jitter * math.Sin(2*math.Pi*0.05*t)
			disp := s.BreathMM*1e-3*breathGain*math.Sin(2*math.Pi*s.BreathHz*t+breathPhase+wobble) +
				s.HeartMM*1e-3*heartGain*math.Sin(2*math.Pi*s.HeartHz*t+heartPhase+wobble)
			pos := geom.Point{X: base + disp, Y: 0}
			phases[i] = cfg.Reader.Phase(pos, stream)
		}
		out[tag] = phases
	}
	return out
}

// Estimate recovers heart and respiration rates (Hz) from the tag-array
// phase streams. It returns an error when no periodicity is found in a
// band.
func Estimate(cfg Config, phases [][]float64) (heartHz, breathHz float64, err error) {
	if len(phases) == 0 {
		return 0, 0, fmt.Errorf("vitals: no tag streams")
	}
	n := len(phases[0])
	// Phase → displacement per tag, then array-average.
	mean := make([]float64, n)
	for _, p := range phases {
		dd := rfid.DeltaDistances(rfid.UnwrapPhases(p), cfg.Reader.Lambda)
		for i := range mean {
			mean[i] += dd[i] / float64(len(phases))
		}
	}
	// Band split: respiration = low-pass (≈0.7 s moving average); heart =
	// band-pass via difference of moving averages (short MA suppresses
	// noise, long MA removes respiration and baseline).
	breathBand := movingAverage(mean, int(0.7*cfg.SampleHz))
	short := movingAverage(mean, int(0.08*cfg.SampleHz))
	long := movingAverage(mean, int(0.45*cfg.SampleHz))
	heartBand := make([]float64, n)
	for i := range heartBand {
		heartBand[i] = short[i] - long[i]
	}
	breathPeriod := motion.DominantPeriod(breathBand, cfg.SampleHz)
	if breathPeriod < 1.2 { // breaths slower than 50/min
		return 0, 0, fmt.Errorf("vitals: no respiratory periodicity found")
	}
	// Cardiac search is band-limited to 0.7–2.5 Hz so respiratory residue
	// in the heart band cannot win.
	heartPeriod := bandPeriod(heartBand, cfg.SampleHz, 1/2.5, 1/0.7)
	if heartPeriod <= 0 {
		return 0, 0, fmt.Errorf("vitals: no cardiac periodicity found")
	}
	return 1 / heartPeriod, 1 / breathPeriod, nil
}

// bandPeriod returns the period (seconds) of the strongest autocorrelation
// peak with period in [minSec, maxSec], or 0 when nothing in the band
// correlates above threshold.
func bandPeriod(signal []float64, sampleHz, minSec, maxSec float64) float64 {
	n := len(signal)
	mean := 0.0
	for _, v := range signal {
		mean += v
	}
	mean /= float64(n)
	centered := make([]float64, n)
	power := 0.0
	for i, v := range signal {
		centered[i] = v - mean
		power += centered[i] * centered[i]
	}
	if power == 0 {
		return 0
	}
	minLag := int(minSec * sampleHz)
	maxLag := int(maxSec * sampleHz)
	if maxLag >= n/2 {
		maxLag = n/2 - 1
	}
	bestLag, bestCorr := 0, 0.2
	for lag := minLag; lag <= maxLag; lag++ {
		c := 0.0
		for i := 0; i+lag < n; i++ {
			c += centered[i] * centered[i+lag]
		}
		c /= power
		if c > bestCorr {
			bestLag, bestCorr = lag, c
		}
	}
	if bestLag == 0 {
		return 0
	}
	return float64(bestLag) / sampleHz
}

func movingAverage(signal []float64, half int) []float64 {
	out := make([]float64, len(signal))
	for i := range signal {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(signal) {
			hi = len(signal) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += signal[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// BPM converts Hz to beats (or breaths) per minute.
func BPM(hz float64) float64 { return hz * 60 }
