package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as `# TYPE <name> counter`, gauges and
// series as gauges, with series points labelled by their append index
// (`name{i="3"} v`). Every metric name is prefixed with prefix and sanitized
// to the Prometheus charset. Output is fully deterministic: metrics emit in
// sorted name order and values use the shortest round-trip float encoding
// (NaN and ±Inf render as the format's literal NaN, +Inf and -Inf).
//
// Sanitization can collide: two raw names that differ only in runes outside
// the charset (`a.b` and `a/b`) map to one series name, which used to emit
// duplicate `# TYPE` lines — invalid exposition format that scrapers
// reject. Collisions are now an error naming both raw metrics, so the
// writer never produces an export a scraper cannot ingest.
func (s *Snapshot) WritePrometheus(w io.Writer, prefix string) error {
	seen := make(map[string]string, len(s.Counters)+len(s.Gauges)+len(s.Series))
	claim := func(raw string) (string, error) {
		name := SanitizeName(prefix + raw)
		if prev, dup := seen[name]; dup {
			return "", fmt.Errorf("obs: metrics %q and %q both export as %q; rename one", prev, raw, name)
		}
		seen[name] = raw
		return name, nil
	}
	for _, k := range sortedKeys(s.Counters) {
		name, err := claim(k)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		name, err := claim(k)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(s.Gauges[k])); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Series) {
		name, err := claim(k)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
			return err
		}
		for i, v := range s.Series[k] {
			if _, err := fmt.Fprintf(w, "%s{i=\"%d\"} %s\n", name, i, formatFloat(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat is the shortest decimal encoding that round-trips, so exports
// carry full precision and identical values render identically.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SanitizeName maps an arbitrary metric name onto the Prometheus charset
// [a-zA-Z0-9_:], replacing every other rune with '_' and prefixing a '_'
// when the first rune would be a digit.
func SanitizeName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
