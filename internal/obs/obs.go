// Package obs is the repository's observability layer: a tiny metrics
// registry the experiment engine threads through RunConfig into every
// subsystem that has something worth watching — per-node Tx/Rx traffic and
// route-cache behaviour in the WSN simulator, per-epoch training curves and
// delivery rollups in MicroDeep, per-stage timings in the harness.
//
// The design constraints come straight from the reproduction contract:
//
//   - Zero overhead when disabled. Every instrumented call site guards on a
//     nil Recorder (the RunConfig default), so the fault-free, metrics-free
//     path allocates and branches exactly as before.
//   - Observation never perturbs results. A Recorder only ever reads values
//     the computation already produced; no rng stream is consumed and no
//     reduction is reordered, so experiment summaries are byte-identical
//     with the recorder disabled and enabled.
//   - Deterministic exports. Snapshots marshal with sorted keys, and the
//     Prometheus text writer emits metrics in sorted order, so two runs at
//     the same seed produce identical output once wall-time metrics are
//     stripped.
//
// Nondeterministic metrics — anything derived from the wall clock — must be
// named with the WallTimePrefix ("walltime_") so Snapshot.Deterministic and
// downstream golden checks can strip them mechanically.
package obs

import (
	"sort"
	"sync"
)

// WallTimePrefix is the mandatory name prefix for metrics whose values are
// not deterministic (stage durations, run times). Snapshot.Deterministic
// drops every metric carrying it.
const WallTimePrefix = "walltime_"

// Recorder receives metric updates. Implementations must be safe for
// concurrent use: parallel experiment runs may legally share one recorder.
//
// Three shapes cover everything the experiments emit:
//
//   - Add accumulates a named counter (route-cache hits, gossip rounds).
//   - Gauge sets a named scalar to its latest value (per-node snapshots,
//     cache sizes, stage seconds).
//   - Observe appends one point to a named series (per-epoch loss curves,
//     per-node Tx/Rx sweeps); points retain append order.
type Recorder interface {
	Add(name string, delta int64)
	Gauge(name string, value float64)
	Observe(series string, value float64)
}

// Snapshotter is implemented by recorders that can export their state; the
// experiment harness uses it to attach a Metrics block to Result without
// widening the Recorder interface every call site depends on.
type Snapshotter interface {
	Snapshot() *Snapshot
}

// Nop is a Recorder that discards everything. Call sites that want to avoid
// nil checks can substitute it; the experiment engine itself keeps nil as
// "disabled" so the hot paths skip the interface call entirely.
var Nop Recorder = nop{}

type nop struct{}

func (nop) Add(string, int64)       {}
func (nop) Gauge(string, float64)   {}
func (nop) Observe(string, float64) {}

// RunSequencer is implemented by recorders that can number the runs sharing
// them. The experiment harness claims a run number at the start of every run
// and, from the second run on, prefixes that run's metric names with
// "run<N>_", so two runs sharing one recorder — the documented
// RunConfig.Clone behaviour — can never clobber each other's config gauges
// or interleave their series. The first run keeps unprefixed names, so a
// single-run registry (the common case) exports exactly the bytes it always
// did.
type RunSequencer interface {
	// NextRun returns 1 on the first call and counts up; each call claims
	// one run. Implementations must be safe for concurrent use.
	NextRun() int
}

// Registry is the standard Recorder: mutex-guarded maps of counters, gauges,
// and series. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	runs     int
	counters map[string]int64
	gauges   map[string]float64
	series   map[string][]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		series:   make(map[string][]float64),
	}
}

// Add accumulates delta into the named counter.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Gauge sets the named gauge to value.
func (r *Registry) Gauge(name string, value float64) {
	r.mu.Lock()
	r.gauges[name] = value
	r.mu.Unlock()
}

// Observe appends value to the named series.
func (r *Registry) Observe(series string, value float64) {
	r.mu.Lock()
	r.series[series] = append(r.series[series], value)
	r.mu.Unlock()
}

// NextRun implements RunSequencer: it claims and returns the next run
// number for a registry shared by several runs.
func (r *Registry) NextRun() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs++
	return r.runs
}

// WithPrefix returns a Recorder that prepends prefix to every metric name
// before forwarding to inner. Wall-time metrics keep their WallTimePrefix
// outermost — "walltime_stage_total_seconds" becomes
// "walltime_<prefix>stage_total_seconds" — so Snapshot.Deterministic still
// strips every nondeterministic metric of a prefixed run. The wrapper
// forwards Snapshot and NextRun to inner when inner implements them, so a
// prefixed view of a registry still exports the whole registry and still
// numbers runs globally.
func WithPrefix(inner Recorder, prefix string) Recorder {
	return &prefixed{inner: inner, prefix: prefix}
}

type prefixed struct {
	inner  Recorder
	prefix string
}

func (p *prefixed) name(n string) string {
	if hasWallTimePrefix(n) {
		return WallTimePrefix + p.prefix + n[len(WallTimePrefix):]
	}
	return p.prefix + n
}

func (p *prefixed) Add(name string, delta int64)     { p.inner.Add(p.name(name), delta) }
func (p *prefixed) Gauge(name string, value float64) { p.inner.Gauge(p.name(name), value) }
func (p *prefixed) Observe(series string, v float64) { p.inner.Observe(p.name(series), v) }

// Snapshot forwards to the wrapped recorder, so the harness's Result.Metrics
// attachment works unchanged for prefixed runs. It returns nil when inner
// cannot snapshot; the harness type-asserts Snapshotter first.
func (p *prefixed) Snapshot() *Snapshot {
	if s, ok := p.inner.(Snapshotter); ok {
		return s.Snapshot()
	}
	return nil
}

// NextRun forwards run numbering to the wrapped recorder, so runs handed an
// already-prefixed view still share the underlying registry's sequence.
func (p *prefixed) NextRun() int {
	if s, ok := p.inner.(RunSequencer); ok {
		return s.NextRun()
	}
	return 1
}

// Snapshot returns a deep copy of the registry's current state; the registry
// keeps accumulating independently afterwards.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, v := range r.counters {
			s.Counters[k] = v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			s.Gauges[k] = v
		}
	}
	if len(r.series) > 0 {
		s.Series = make(map[string][]float64, len(r.series))
		for k, v := range r.series {
			s.Series[k] = append([]float64(nil), v...)
		}
	}
	return s
}

// Snapshot is an exported point-in-time view of a registry. It marshals to
// JSON with sorted keys (encoding/json sorts map keys), so identical runs
// produce identical bytes; it is the type behind Result.Metrics.
type Snapshot struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Gauges   map[string]float64   `json:"gauges,omitempty"`
	Series   map[string][]float64 `json:"series,omitempty"`
}

// Deterministic returns a copy of the snapshot with every wall-time metric
// (names starting with WallTimePrefix) removed — the form golden checks
// compare across runs.
func (s *Snapshot) Deterministic() *Snapshot {
	keep := &Snapshot{}
	for k, v := range s.Counters {
		if !hasWallTimePrefix(k) {
			if keep.Counters == nil {
				keep.Counters = make(map[string]int64)
			}
			keep.Counters[k] = v
		}
	}
	for k, v := range s.Gauges {
		if !hasWallTimePrefix(k) {
			if keep.Gauges == nil {
				keep.Gauges = make(map[string]float64)
			}
			keep.Gauges[k] = v
		}
	}
	for k, v := range s.Series {
		if !hasWallTimePrefix(k) {
			if keep.Series == nil {
				keep.Series = make(map[string][]float64)
			}
			keep.Series[k] = append([]float64(nil), v...)
		}
	}
	return keep
}

func hasWallTimePrefix(name string) bool {
	return len(name) >= len(WallTimePrefix) && name[:len(WallTimePrefix)] == WallTimePrefix
}

// sortedKeys returns the keys of m in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
