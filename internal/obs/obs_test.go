package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Add("hits", 2)
	r.Add("hits", 3)
	r.Gauge("nodes", 50)
	r.Gauge("nodes", 49) // latest value wins
	r.Observe("loss", 0.5)
	r.Observe("loss", 0.25)

	s := r.Snapshot()
	if s.Counters["hits"] != 5 {
		t.Errorf("counter hits = %d, want 5", s.Counters["hits"])
	}
	if s.Gauges["nodes"] != 49 {
		t.Errorf("gauge nodes = %g, want 49", s.Gauges["nodes"])
	}
	if len(s.Series["loss"]) != 2 || s.Series["loss"][0] != 0.5 || s.Series["loss"][1] != 0.25 {
		t.Errorf("series loss = %v", s.Series["loss"])
	}

	// The snapshot is a deep copy: later registry activity must not leak in.
	r.Add("hits", 100)
	r.Observe("loss", 9)
	if s.Counters["hits"] != 5 || len(s.Series["loss"]) != 2 {
		t.Error("snapshot aliases live registry state")
	}
}

func TestNopDiscards(t *testing.T) {
	Nop.Add("a", 1)
	Nop.Gauge("b", 2)
	Nop.Observe("c", 3)
}

func TestDeterministicStripsWallTime(t *testing.T) {
	r := NewRegistry()
	r.Add("transfers", 7)
	r.Add(WallTimePrefix+"ticks", 3)
	r.Gauge("acc", 0.9)
	r.Gauge(WallTimePrefix+"stage_train_seconds", 1.23)
	r.Observe("loss", 0.5)
	r.Observe(WallTimePrefix+"epoch_seconds", 0.1)

	d := r.Snapshot().Deterministic()
	if _, ok := d.Counters[WallTimePrefix+"ticks"]; ok {
		t.Error("wall-time counter survived Deterministic")
	}
	if _, ok := d.Gauges[WallTimePrefix+"stage_train_seconds"]; ok {
		t.Error("wall-time gauge survived Deterministic")
	}
	if _, ok := d.Series[WallTimePrefix+"epoch_seconds"]; ok {
		t.Error("wall-time series survived Deterministic")
	}
	if d.Counters["transfers"] != 7 || d.Gauges["acc"] != 0.9 || len(d.Series["loss"]) != 1 {
		t.Errorf("deterministic snapshot lost real metrics: %+v", d)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRegistry()
		r.Add("b_counter", 2)
		r.Add("a_counter", 1)
		r.Gauge("z", 26)
		r.Gauge("a", 1)
		r.Observe("s", 0.5)
		out, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !bytes.Equal(build(), build()) {
		t.Error("identical registries marshal to different JSON")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Add("cache_hits", 12)
	r.Gauge("max cost", 360) // space must sanitize to '_'
	r.Observe("loss", 0.5)
	r.Observe("loss", 0.125)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b, "zeiot_e1_"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE zeiot_e1_cache_hits counter\nzeiot_e1_cache_hits 12\n",
		"# TYPE zeiot_e1_max_cost gauge\nzeiot_e1_max_cost 360\n",
		"zeiot_e1_loss{i=\"0\"} 0.5\n",
		"zeiot_e1_loss{i=\"1\"} 0.125\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}

	// Byte-stable across renders.
	var b2 strings.Builder
	if err := r.Snapshot().WritePrometheus(&b2, "zeiot_e1_"); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Error("two renders of one snapshot differ")
	}
}

// TestWritePrometheusCollision: two raw names that sanitize to one series
// used to emit duplicate # TYPE lines — invalid exposition format that
// scrapers reject. The writer must refuse, naming both offenders.
func TestWritePrometheusCollision(t *testing.T) {
	build := map[string]func(*Registry){
		"gauge/gauge": func(r *Registry) {
			r.Gauge("a.b", 1)
			r.Gauge("a/b", 2)
		},
		"counter/gauge": func(r *Registry) {
			r.Add("a.b", 1)
			r.Gauge("a b", 2)
		},
		"gauge/series": func(r *Registry) {
			r.Gauge("a-b", 1)
			r.Observe("a.b", 2)
		},
	}
	for name, fill := range build {
		r := NewRegistry()
		fill(r)
		var b strings.Builder
		err := r.Snapshot().WritePrometheus(&b, "p_")
		if err == nil {
			t.Errorf("%s: collision on p_a_b not rejected; output:\n%s", name, b.String())
			continue
		}
		if !strings.Contains(err.Error(), "p_a_b") {
			t.Errorf("%s: error %q does not name the colliding series", name, err)
		}
	}

	// Distinct sanitized names must keep working.
	r := NewRegistry()
	r.Gauge("a.b", 1)
	r.Gauge("a_c", 2)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b, "p_"); err != nil {
		t.Errorf("non-colliding names rejected: %v", err)
	}
}

// TestWritePrometheusNonFinite pins the exposition-format rendering of the
// non-finite gauge values: NaN, +Inf and -Inf are the literal spellings the
// text format defines, and they must round-trip byte-stably.
func TestWritePrometheusNonFinite(t *testing.T) {
	r := NewRegistry()
	r.Gauge("nan", math.NaN())
	r.Gauge("pinf", math.Inf(1))
	r.Gauge("ninf", math.Inf(-1))
	r.Observe("series_nan", math.NaN())

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"nan NaN\n",
		"pinf +Inf\n",
		"ninf -Inf\n",
		"series_nan{i=\"0\"} NaN\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestWithPrefix covers the run-scoped prefix wrapper the harness uses for
// runs sharing one registry: names gain the prefix, wall-time names keep
// WallTimePrefix outermost (so Deterministic still strips them), and
// Snapshot/NextRun forward to the wrapped registry.
func TestWithPrefix(t *testing.T) {
	r := NewRegistry()
	p := WithPrefix(r, "run2_")
	p.Add("hits", 3)
	p.Gauge("config_seed", 7)
	p.Observe("loss", 0.5)
	p.Gauge(WallTimePrefix+"stage_total_seconds", 1.5)

	s := r.Snapshot()
	if s.Counters["run2_hits"] != 3 || s.Gauges["run2_config_seed"] != 7 || len(s.Series["run2_loss"]) != 1 {
		t.Errorf("prefixed metrics misrouted: %+v", s)
	}
	if _, ok := s.Gauges[WallTimePrefix+"run2_stage_total_seconds"]; !ok {
		t.Errorf("wall-time gauge lost its outermost walltime_ prefix: %v", s.Gauges)
	}
	if d := s.Deterministic(); len(d.Gauges) != 1 {
		t.Errorf("Deterministic kept a prefixed wall-time gauge: %v", d.Gauges)
	}

	if snap, ok := p.(Snapshotter); !ok || snap.Snapshot() == nil {
		t.Error("prefixed recorder does not forward Snapshot")
	}
	seq, ok := p.(RunSequencer)
	if !ok {
		t.Fatal("prefixed recorder does not forward NextRun")
	}
	if r.NextRun() != 1 || seq.NextRun() != 2 || r.NextRun() != 3 {
		t.Error("run numbering not shared through the prefix wrapper")
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"plain_name":     "plain_name",
		"with space":     "with_space",
		"dots.and-dash":  "dots_and_dash",
		"5leading_digit": "_5leading_digit",
		"colon:ok":       "colon:ok",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; run
// under -race (ci.sh does) it proves recorder sharing across parallel runs
// is safe.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add("c", 1)
				r.Gauge("g", float64(i))
				r.Observe("s", float64(i))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 8*500 {
		t.Errorf("counter c = %d, want %d", s.Counters["c"], 8*500)
	}
	if len(s.Series["s"]) != 8*500 {
		t.Errorf("series s has %d points, want %d", len(s.Series["s"]), 8*500)
	}
}
