// Package motion implements Motion-Fi-style sensing (§II.B, ref [37]):
// recognizing and counting repetitive motions — squats, steps, arm raises —
// from the RSSI of a passive backscatter tag worn by the exerciser.
//
// Each repetition sweeps the tag through the same spatial arc, producing
// one period of a quasi-periodic RSSI waveform. The counter detrends the
// signal, finds the dominant period by autocorrelation, and counts peaks
// with a period-derived refractory interval, so rep-duration jitter and
// pauses do not double-count.
//
// To serve several exercisers at once without collisions, Motion-Fi gives
// each tag a distinct backscatter frequency shift; Demultiplex recovers
// each tag's motion envelope from the composite received signal by
// quadrature demodulation at the tag's shift frequency.
package motion

import (
	"fmt"
	"math"

	"zeiot/internal/rng"
)

// Workout describes one recording of repetitive exercise.
type Workout struct {
	// Reps is the ground-truth repetition count.
	Reps int
	// RepPeriodSec is the nominal duration of one repetition.
	RepPeriodSec float64
	// PeriodJitter is the per-rep fractional duration jitter (0.1 = ±10%).
	PeriodJitter float64
	// Amplitude is the RSSI swing of one rep (dB); NoiseStd the
	// measurement noise.
	Amplitude float64
	NoiseStd  float64
	// SampleHz is the RSSI sampling rate.
	SampleHz float64
	// LeadSec and TrailSec are idle periods around the exercise.
	LeadSec, TrailSec float64
}

// DefaultWorkout returns a 20-squat recording at 50 Hz.
func DefaultWorkout() Workout {
	return Workout{
		Reps:         20,
		RepPeriodSec: 2.0,
		PeriodJitter: 0.12,
		Amplitude:    4,
		NoiseStd:     0.4,
		SampleHz:     50,
		LeadSec:      2,
		TrailSec:     2,
	}
}

// Generate synthesizes the RSSI waveform of a workout.
func Generate(w Workout, stream *rng.Stream) ([]float64, error) {
	if w.Reps < 0 || w.RepPeriodSec <= 0 || w.SampleHz <= 0 {
		return nil, fmt.Errorf("motion: invalid workout %+v", w)
	}
	var signal []float64
	appendIdle := func(sec float64) {
		n := int(sec * w.SampleHz)
		for i := 0; i < n; i++ {
			signal = append(signal, stream.NormMeanStd(0, w.NoiseStd))
		}
	}
	appendIdle(w.LeadSec)
	for rep := 0; rep < w.Reps; rep++ {
		period := w.RepPeriodSec * (1 + stream.NormMeanStd(0, w.PeriodJitter))
		if period < 0.2*w.RepPeriodSec {
			period = 0.2 * w.RepPeriodSec
		}
		n := int(period * w.SampleHz)
		for i := 0; i < n; i++ {
			phase := 2 * math.Pi * float64(i) / float64(n)
			// One rep: down-and-up — a single dominant dip per period.
			v := -w.Amplitude * (0.5 - 0.5*math.Cos(phase))
			v += stream.NormMeanStd(0, w.NoiseStd)
			signal = append(signal, v)
		}
	}
	appendIdle(w.TrailSec)
	return signal, nil
}

// smooth applies a centered moving average of the given half-width.
func smooth(signal []float64, half int) []float64 {
	out := make([]float64, len(signal))
	for i := range signal {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(signal) {
			hi = len(signal) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += signal[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// DominantPeriod estimates the repetition period in seconds by the first
// strong peak of the autocorrelation. It returns 0 when no periodicity is
// found.
func DominantPeriod(signal []float64, sampleHz float64) float64 {
	n := len(signal)
	if n < 8 {
		return 0
	}
	mean := 0.0
	for _, v := range signal {
		mean += v
	}
	mean /= float64(n)
	centered := make([]float64, n)
	var power float64
	for i, v := range signal {
		centered[i] = v - mean
		power += centered[i] * centered[i]
	}
	if power == 0 {
		return 0
	}
	minLag := int(0.25 * sampleHz) // ≥ 0.25 s per rep
	maxLag := n / 2
	bestLag, bestCorr := 0, 0.35 // periodicity threshold
	prev := math.Inf(1)
	rising := false
	for lag := minLag; lag < maxLag; lag++ {
		c := 0.0
		for i := 0; i+lag < n; i++ {
			c += centered[i] * centered[i+lag]
		}
		c /= power
		// First local maximum above the threshold wins.
		if c > prev && !rising {
			rising = true
		}
		if rising && c < prev && prev > bestCorr {
			bestLag = lag - 1
			break
		}
		prev = c
	}
	if bestLag == 0 {
		return 0
	}
	return float64(bestLag) / sampleHz
}

// CountReps counts repetitions in an RSSI recording: it smooths the
// signal, estimates the dominant period, and counts downward excursions
// below an adaptive threshold separated by at least 60% of a period.
func CountReps(signal []float64, sampleHz float64) int {
	if len(signal) == 0 {
		return 0
	}
	sm := smooth(signal, int(sampleHz/10))
	period := DominantPeriod(sm, sampleHz)
	if period == 0 {
		return 0
	}
	// Adaptive threshold: halfway between median and minimum.
	minV, mean := math.Inf(1), 0.0
	for _, v := range sm {
		minV = math.Min(minV, v)
		mean += v
	}
	mean /= float64(len(sm))
	threshold := mean + 0.45*(minV-mean)
	refractory := int(0.6 * period * sampleHz)
	count := 0
	last := -refractory
	for i, v := range sm {
		if v < threshold && i-last >= refractory {
			count++
			last = i
		}
	}
	return count
}

// TagChannel is one exerciser's backscatter subcarrier.
type TagChannel struct {
	ShiftHz float64
	Workout Workout
}

// Composite synthesizes the receiver's combined signal from several tags,
// each backscattering its motion waveform on its own frequency shift, plus
// receiver noise. All workouts must share the sample rate. It returns the
// composite signal and each tag's ground-truth waveform.
func Composite(tags []TagChannel, noiseStd float64, stream *rng.Stream) (composite []float64, truth [][]float64, err error) {
	if len(tags) == 0 {
		return nil, nil, fmt.Errorf("motion: no tags")
	}
	sampleHz := tags[0].Workout.SampleHz
	maxLen := 0
	truth = make([][]float64, len(tags))
	for i, tag := range tags {
		if tag.Workout.SampleHz != sampleHz {
			return nil, nil, fmt.Errorf("motion: tag %d sample rate %v != %v", i, tag.Workout.SampleHz, sampleHz)
		}
		if tag.ShiftHz <= 0 || tag.ShiftHz >= sampleHz/2 {
			return nil, nil, fmt.Errorf("motion: tag %d shift %v outside (0, %v)", i, tag.ShiftHz, sampleHz/2)
		}
		sig, err := Generate(tag.Workout, stream.Split(fmt.Sprintf("tag-%d", i)))
		if err != nil {
			return nil, nil, err
		}
		truth[i] = sig
		if len(sig) > maxLen {
			maxLen = len(sig)
		}
	}
	composite = make([]float64, maxLen)
	for i := range composite {
		composite[i] = stream.NormMeanStd(0, noiseStd)
	}
	for ti, tag := range tags {
		for i, v := range truth[ti] {
			carrier := math.Cos(2 * math.Pi * tag.ShiftHz * float64(i) / sampleHz)
			// The motion waveform amplitude-modulates the shifted
			// subcarrier around a DC reflection level.
			composite[i] += (tag.Workout.Amplitude + v) * carrier
		}
	}
	return composite, truth, nil
}

// Demultiplex recovers one tag's motion envelope from the composite by
// quadrature demodulation at shiftHz followed by low-pass smoothing.
func Demultiplex(composite []float64, shiftHz, sampleHz float64) []float64 {
	n := len(composite)
	i2 := make([]float64, n)
	q2 := make([]float64, n)
	for i, v := range composite {
		ph := 2 * math.Pi * shiftHz * float64(i) / sampleHz
		i2[i] = v * math.Cos(ph)
		q2[i] = v * math.Sin(ph)
	}
	// Low-pass with a window of one subcarrier cycle.
	half := int(sampleHz / shiftHz)
	iLP := smooth(i2, half)
	qLP := smooth(q2, half)
	out := make([]float64, n)
	for i := range out {
		// ×2 undoes the mixing loss; envelope sign-corrected around DC.
		out[i] = 2 * math.Sqrt(iLP[i]*iLP[i]+qLP[i]*qLP[i])
	}
	// Remove the DC reflection level so reps appear as dips around zero.
	mean := 0.0
	for _, v := range out {
		mean += v
	}
	mean /= float64(n)
	for i := range out {
		out[i] -= mean
	}
	return out
}
