package motion

import (
	"math"
	"testing"

	"zeiot/internal/rng"
)

func TestGenerateLength(t *testing.T) {
	w := DefaultWorkout()
	sig, err := Generate(w, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// 2s lead + ~20×2s reps + 2s trail at 50 Hz ≈ 2200 samples ±jitter.
	if len(sig) < 1800 || len(sig) > 2700 {
		t.Fatalf("signal length = %d", len(sig))
	}
}

func TestGenerateValidation(t *testing.T) {
	w := DefaultWorkout()
	w.RepPeriodSec = 0
	if _, err := Generate(w, rng.New(1)); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestDominantPeriod(t *testing.T) {
	w := DefaultWorkout()
	w.PeriodJitter = 0.03
	sig, err := Generate(w, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	period := DominantPeriod(sig, w.SampleHz)
	if math.Abs(period-w.RepPeriodSec) > 0.4 {
		t.Fatalf("period = %.2f s, want ~%.2f", period, w.RepPeriodSec)
	}
}

func TestDominantPeriodRejectsNoise(t *testing.T) {
	s := rng.New(3)
	noise := make([]float64, 2000)
	for i := range noise {
		noise[i] = s.NormMeanStd(0, 1)
	}
	if p := DominantPeriod(noise, 50); p != 0 {
		t.Fatalf("pure noise reported period %v", p)
	}
	if p := DominantPeriod(nil, 50); p != 0 {
		t.Fatal("empty signal reported a period")
	}
}

func TestCountRepsAcrossWorkouts(t *testing.T) {
	s := rng.New(4)
	for _, reps := range []int{5, 12, 20, 40} {
		w := DefaultWorkout()
		w.Reps = reps
		sig, err := Generate(w, s.Split("w"))
		if err != nil {
			t.Fatal(err)
		}
		got := CountReps(sig, w.SampleHz)
		if got < reps-1 || got > reps+1 {
			t.Fatalf("reps=%d counted %d", reps, got)
		}
	}
}

func TestCountRepsFasterMotion(t *testing.T) {
	w := DefaultWorkout()
	w.Reps = 30
	w.RepPeriodSec = 0.8 // steps rather than squats
	sig, err := Generate(w, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	got := CountReps(sig, w.SampleHz)
	if got < 28 || got > 32 {
		t.Fatalf("fast reps counted %d of 30", got)
	}
}

func TestCountRepsIdleSignalIsZero(t *testing.T) {
	w := DefaultWorkout()
	w.Reps = 0
	sig, err := Generate(w, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if got := CountReps(sig, w.SampleHz); got != 0 {
		t.Fatalf("idle recording counted %d reps", got)
	}
	if CountReps(nil, 50) != 0 {
		t.Fatal("empty signal counted reps")
	}
}

func TestCompositeValidation(t *testing.T) {
	if _, _, err := Composite(nil, 0.1, rng.New(1)); err == nil {
		t.Fatal("no tags accepted")
	}
	w := DefaultWorkout()
	bad := []TagChannel{{ShiftHz: 30, Workout: w}} // above Nyquist/2 of 50 Hz
	if _, _, err := Composite(bad, 0.1, rng.New(1)); err == nil {
		t.Fatal("shift above Nyquist accepted")
	}
}

func TestDemultiplexSeparatesTwoTags(t *testing.T) {
	wa := DefaultWorkout()
	wa.Reps = 10
	wa.SampleHz = 200
	wa.NoiseStd = 0.2
	wb := wa
	wb.Reps = 16
	wb.RepPeriodSec = 1.3
	tags := []TagChannel{
		{ShiftHz: 20, Workout: wa},
		{ShiftHz: 45, Workout: wb},
	}
	composite, _, err := Composite(tags, 0.3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	ca := CountReps(Demultiplex(composite, 20, wa.SampleHz), wa.SampleHz)
	cb := CountReps(Demultiplex(composite, 45, wb.SampleHz), wb.SampleHz)
	// Demultiplexed envelopes are noisier than direct recordings; ±2 reps.
	if ca < 8 || ca > 12 {
		t.Fatalf("tag A counted %d of 10", ca)
	}
	if cb < 14 || cb > 18 {
		t.Fatalf("tag B counted %d of 16", cb)
	}
}
