package motion

import (
	"testing"
)

// FuzzCountReps feeds arbitrary signals to the counter: it must never
// panic and must return a sane, bounded count.
func FuzzCountReps(f *testing.F) {
	f.Add([]byte{}, float64(50))
	f.Add([]byte{0, 255, 0, 255, 0, 255, 0, 255}, float64(8))
	f.Fuzz(func(t *testing.T, data []byte, sampleHz float64) {
		// Bound the domain: physical sampling rates and recording
		// lengths, so the smoothing window stays small and runs fast.
		if sampleHz < 1 || sampleHz > 1000 || len(data) > 4096 {
			return
		}
		signal := make([]float64, len(data))
		for i, b := range data {
			signal[i] = float64(b)/32 - 4
		}
		count := CountReps(signal, sampleHz)
		if count < 0 {
			t.Fatalf("negative count %d", count)
		}
		// A rep needs at least 0.25 s, so the count is bounded by the
		// recording length.
		maxReps := int(float64(len(signal))/(0.25*sampleHz)) + 1
		if count > maxReps {
			t.Fatalf("count %d exceeds physical bound %d", count, maxReps)
		}
	})
}
