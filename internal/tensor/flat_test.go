package tensor

import (
	"testing"
)

func TestStridesRowMajor(t *testing.T) {
	tn := New(2, 3, 4)
	want := []int{12, 4, 1}
	for i, s := range tn.Strides() {
		if s != want[i] {
			t.Fatalf("strides = %v, want %v", tn.Strides(), want)
		}
	}
	if tn.Stride(1) != 4 {
		t.Fatalf("Stride(1) = %d", tn.Stride(1))
	}
	r := tn.Reshape(6, 4)
	if r.Stride(0) != 4 || r.Stride(1) != 1 {
		t.Fatalf("reshaped strides = %v", r.Strides())
	}
}

func TestFlatAccessorsMatchAt(t *testing.T) {
	tn := New(2, 3, 4)
	for i := range tn.Data() {
		tn.Data()[i] = float64(i)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				if tn.At3(i, j, k) != tn.At(i, j, k) {
					t.Fatalf("At3(%d,%d,%d) = %v, At = %v", i, j, k, tn.At3(i, j, k), tn.At(i, j, k))
				}
				if tn.Off3(i, j, k) != (i*3+j)*4+k {
					t.Fatalf("Off3(%d,%d,%d) = %d", i, j, k, tn.Off3(i, j, k))
				}
			}
		}
	}
	tn.Set3(99, 1, 2, 3)
	if tn.At(1, 2, 3) != 99 {
		t.Fatal("Set3 did not write through")
	}

	m := New(3, 5)
	m.Set2(7, 2, 4)
	if m.At(2, 4) != 7 || m.At2(2, 4) != 7 || m.Off2(2, 4) != 14 {
		t.Fatal("2-d flat accessors broken")
	}

	q := New(2, 3, 4, 5)
	q.Set4(-1, 1, 2, 3, 4)
	if q.At(1, 2, 3, 4) != -1 || q.At4(1, 2, 3, 4) != -1 {
		t.Fatal("4-d flat accessors broken")
	}
	if q.Off4(1, 2, 3, 4) != ((1*3+2)*4+3)*5+4 {
		t.Fatalf("Off4 = %d", q.Off4(1, 2, 3, 4))
	}
}

func TestEnsureReusesStorage(t *testing.T) {
	a := New(4, 4)
	a.Fill(3)
	b := Ensure(a, 2, 8)
	if b != a {
		t.Fatal("Ensure did not reuse a same-volume tensor")
	}
	if b.Dim(0) != 2 || b.Dim(1) != 8 || b.Stride(0) != 8 {
		t.Fatalf("Ensure shape/strides = %v/%v", b.Shape(), b.Strides())
	}
	if b.At2(0, 0) != 3 {
		t.Fatal("Ensure clobbered contents")
	}
	// Smaller volume reuses the same backing array.
	c := Ensure(b, 3)
	if c != b || c.Size() != 3 {
		t.Fatalf("Ensure shrink failed: %v", c.Shape())
	}
	// Larger volume must allocate.
	d := Ensure(c, 100)
	if d == c {
		t.Fatal("Ensure reused too-small storage")
	}
	for _, v := range d.Data() {
		if v != 0 {
			t.Fatal("fresh Ensure tensor not zero-filled")
		}
	}
	// Nil receiver allocates.
	e := Ensure(nil, 2, 2)
	if e == nil || e.Size() != 4 {
		t.Fatal("Ensure(nil) failed")
	}
}

func TestMatVecIntoMatchesMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, -1, 2}, 3)
	want := MatVec(a, x)
	buf := New(2)
	got := MatVecInto(buf, a, x)
	if got != buf {
		t.Fatal("MatVecInto did not reuse dst")
	}
	if !Equal(want, got, 0) {
		t.Fatalf("MatVecInto = %v, want %v", got, want)
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{0, 1, 1, 0}, 2, 2)
	want := MatMul(a, b)
	buf := New(2, 2)
	buf.Fill(42) // must be cleared by MatMulInto
	got := MatMulInto(buf, a, b)
	if got != buf || !Equal(want, got, 0) {
		t.Fatalf("MatMulInto = %v, want %v", got, want)
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := New(3)
	b.CopyFrom(a)
	if !Equal(a, b, 0) {
		t.Fatal("CopyFrom did not copy")
	}
	b.Data()[0] = 9
	if a.Data()[0] == 9 {
		t.Fatal("CopyFrom aliased storage")
	}
}
