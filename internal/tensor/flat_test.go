package tensor

import (
	"math"
	"testing"
)

func TestStridesRowMajor(t *testing.T) {
	tn := New(2, 3, 4)
	want := []int{12, 4, 1}
	for i, s := range tn.Strides() {
		if s != want[i] {
			t.Fatalf("strides = %v, want %v", tn.Strides(), want)
		}
	}
	if tn.Stride(1) != 4 {
		t.Fatalf("Stride(1) = %d", tn.Stride(1))
	}
	r := tn.Reshape(6, 4)
	if r.Stride(0) != 4 || r.Stride(1) != 1 {
		t.Fatalf("reshaped strides = %v", r.Strides())
	}
}

func TestFlatAccessorsMatchAt(t *testing.T) {
	tn := New(2, 3, 4)
	for i := range tn.Data() {
		tn.Data()[i] = float64(i)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				if tn.At3(i, j, k) != tn.At(i, j, k) {
					t.Fatalf("At3(%d,%d,%d) = %v, At = %v", i, j, k, tn.At3(i, j, k), tn.At(i, j, k))
				}
				if tn.Off3(i, j, k) != (i*3+j)*4+k {
					t.Fatalf("Off3(%d,%d,%d) = %d", i, j, k, tn.Off3(i, j, k))
				}
			}
		}
	}
	tn.Set3(99, 1, 2, 3)
	if tn.At(1, 2, 3) != 99 {
		t.Fatal("Set3 did not write through")
	}

	m := New(3, 5)
	m.Set2(7, 2, 4)
	if m.At(2, 4) != 7 || m.At2(2, 4) != 7 || m.Off2(2, 4) != 14 {
		t.Fatal("2-d flat accessors broken")
	}

	q := New(2, 3, 4, 5)
	q.Set4(-1, 1, 2, 3, 4)
	if q.At(1, 2, 3, 4) != -1 || q.At4(1, 2, 3, 4) != -1 {
		t.Fatal("4-d flat accessors broken")
	}
	if q.Off4(1, 2, 3, 4) != ((1*3+2)*4+3)*5+4 {
		t.Fatalf("Off4 = %d", q.Off4(1, 2, 3, 4))
	}
}

func TestEnsureReusesStorage(t *testing.T) {
	a := New(4, 4)
	a.Fill(3)
	b := Ensure(a, 2, 8)
	if b != a {
		t.Fatal("Ensure did not reuse a same-volume tensor")
	}
	if b.Dim(0) != 2 || b.Dim(1) != 8 || b.Stride(0) != 8 {
		t.Fatalf("Ensure shape/strides = %v/%v", b.Shape(), b.Strides())
	}
	if b.At2(0, 0) != 3 {
		t.Fatal("Ensure clobbered contents")
	}
	// Smaller volume reuses the same backing array.
	c := Ensure(b, 3)
	if c != b || c.Size() != 3 {
		t.Fatalf("Ensure shrink failed: %v", c.Shape())
	}
	// Larger volume must allocate.
	d := Ensure(c, 100)
	if d == c {
		t.Fatal("Ensure reused too-small storage")
	}
	for _, v := range d.Data() {
		if v != 0 {
			t.Fatal("fresh Ensure tensor not zero-filled")
		}
	}
	// Nil receiver allocates.
	e := Ensure(nil, 2, 2)
	if e == nil || e.Size() != 4 {
		t.Fatal("Ensure(nil) failed")
	}
}

// TestEnsureRankChangeResetsStrides pins the scratch-reuse contract the
// batched CNN kernels depend on: reusing a backing array under a shape of
// equal volume but different rank must leave canonical row-major strides,
// so the flat accessors (Off3/At3/...) address the new layout and not the
// old one.
func TestEnsureRankChangeResetsStrides(t *testing.T) {
	a := New(24)
	for i := range a.Data() {
		a.Data()[i] = float64(i)
	}
	b := Ensure(a, 2, 3, 4) // 1-d -> 3-d, same volume
	if b != a {
		t.Fatal("Ensure did not reuse equal-volume storage across a rank change")
	}
	if b.Dims() != 3 || b.Stride(0) != 12 || b.Stride(1) != 4 || b.Stride(2) != 1 {
		t.Fatalf("rank-up strides = %v, want [12 4 1]", b.Strides())
	}
	if b.At3(1, 2, 3) != 23 || b.Off3(1, 0, 2) != 14 {
		t.Fatalf("flat accessors wrong after rank change: At3(1,2,3)=%v Off3(1,0,2)=%d",
			b.At3(1, 2, 3), b.Off3(1, 0, 2))
	}
	c := Ensure(b, 4, 6) // 3-d -> 2-d, same volume
	if c != b || c.Dims() != 2 || c.Stride(0) != 6 || c.Stride(1) != 1 {
		t.Fatalf("rank-down strides = %v, want [6 1]", c.Strides())
	}
	if c.At2(3, 5) != 23 {
		t.Fatalf("At2(3,5) = %v after rank change, want 23", c.At2(3, 5))
	}
	d := Ensure(c, 24) // back to 1-d
	if d != c || d.Dims() != 1 || d.Stride(0) != 1 {
		t.Fatalf("rank-down to 1-d strides = %v, want [1]", d.Strides())
	}
}

// TestEnsureSameRankReshapeAllocFree pins the in-place meta rewrite: a
// scratch buffer alternating between same-rank shapes (the im2col patch on
// a partial final block) must not allocate.
func TestEnsureSameRankReshapeAllocFree(t *testing.T) {
	buf := New(6, 8)
	allocs := testing.AllocsPerRun(100, func() {
		buf = Ensure(buf, 6, 5)
		buf = Ensure(buf, 6, 8)
	})
	if allocs != 0 {
		t.Fatalf("same-rank Ensure reshape allocated %v times per run", allocs)
	}
	if buf.Stride(0) != 8 {
		t.Fatalf("stride after alternating reshapes = %d, want 8", buf.Stride(0))
	}
}

func TestMatMulAddIntoAccumulates(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{1, 0, -1, 2, 0.5, -3}, 3, 2)
	dst := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	got := MatMulAddInto(dst, a, b)
	if got != dst {
		t.Fatal("MatMulAddInto did not return dst")
	}
	// dst + a×b computed by the reference scalar loop.
	want := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	for i := 0; i < 2; i++ {
		for p := 0; p < 3; p++ {
			for j := 0; j < 2; j++ {
				want.Set2(want.At2(i, j)+a.At2(i, p)*b.At2(p, j), i, j)
			}
		}
	}
	if !Equal(want, got, 0) {
		t.Fatalf("MatMulAddInto = %v, want %v", got, want)
	}
}

// TestMatMulAddIntoMatchesScalarOrder verifies the unrolled kernel is
// bit-identical to the naive p-ascending scalar loop on awkward inner sizes
// (k not a multiple of the unroll factor) and adversarial values.
func TestMatMulAddIntoMatchesScalarOrder(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 9, 13} {
		m, n := 3, 4
		a, b := New(m, k), New(k, n)
		for i := range a.Data() {
			a.Data()[i] = math.Sin(float64(3*i+1)) * 1e3
		}
		for i := range b.Data() {
			b.Data()[i] = math.Cos(float64(7*i+2)) / 3
		}
		ref := New(m, n)
		for i := range ref.Data() {
			ref.Data()[i] = float64(i) - 5.5
		}
		dst := ref.Clone()
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				av := a.At2(i, p)
				for j := 0; j < n; j++ {
					ref.Set2(ref.At2(i, j)+av*b.At2(p, j), i, j)
				}
			}
		}
		MatMulAddInto(dst, a, b)
		if !Equal(ref, dst, 0) {
			t.Fatalf("k=%d: MatMulAddInto diverged from scalar order:\n got %v\nwant %v", k, dst, ref)
		}
	}
}

func TestMatVecIntoMatchesMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, -1, 2}, 3)
	want := MatVec(a, x)
	buf := New(2)
	got := MatVecInto(buf, a, x)
	if got != buf {
		t.Fatal("MatVecInto did not reuse dst")
	}
	if !Equal(want, got, 0) {
		t.Fatalf("MatVecInto = %v, want %v", got, want)
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{0, 1, 1, 0}, 2, 2)
	want := MatMul(a, b)
	buf := New(2, 2)
	buf.Fill(42) // must be cleared by MatMulInto
	got := MatMulInto(buf, a, b)
	if got != buf || !Equal(want, got, 0) {
		t.Fatalf("MatMulInto = %v, want %v", got, want)
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := New(3)
	b.CopyFrom(a)
	if !Equal(a, b, 0) {
		t.Fatal("CopyFrom did not copy")
	}
	b.Data()[0] = 9
	if a.Data()[0] == 9 {
		t.Fatal("CopyFrom aliased storage")
	}
}
