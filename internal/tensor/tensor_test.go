package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d", x.Size())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	x.Set(7.5, 2, 1, 3)
	if got := x.At(2, 1, 3); got != 7.5 {
		t.Fatalf("At = %v", got)
	}
	// Row-major layout: offset = (2*4+1)*5 + 3 = 48.
	if x.Data()[48] != 7.5 {
		t.Fatal("row-major offset wrong")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceLengthChecked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched FromSlice")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 1)
	if x.At(0, 1) != 42 {
		t.Fatal("Reshape does not view the same data")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !Equal(c, want, 1e-12) {
		t.Fatalf("MatMul = %v", c)
	}
}

func TestMatMulIdentity(t *testing.T) {
	err := quick.Check(func(vals [9]float64) bool {
		data := make([]float64, 9)
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			data[i] = math.Mod(v, 100)
		}
		a := FromSlice(data, 3, 3)
		id := New(3, 3)
		for i := 0; i < 3; i++ {
			id.Set(1, i, i)
		}
		return Equal(MatMul(a, id), a, 1e-9) && Equal(MatMul(id, a), a, 1e-9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 0, -1}, 3)
	y := MatVec(a, x)
	if y.At(0) != -2 || y.At(1) != -2 {
		t.Fatalf("MatVec = %v", y)
	}
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	a.AddInPlace(b)
	if a.At(2) != 33 {
		t.Fatalf("AddInPlace: %v", a)
	}
	a.SubInPlace(b)
	if a.At(0) != 1 {
		t.Fatalf("SubInPlace: %v", a)
	}
	a.ScaleInPlace(2)
	if a.At(1) != 4 {
		t.Fatalf("ScaleInPlace: %v", a)
	}
	a.AxpyInPlace(0.5, b)
	if a.At(0) != 7 {
		t.Fatalf("AxpyInPlace: %v", a)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	New(2, 2).AddInPlace(New(4))
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{3, -1, 4, 1}, 4)
	if x.Sum() != 7 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1.75 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Argmax() != 2 {
		t.Fatalf("Argmax = %d", x.Argmax())
	}
	if x.Max() != 4 {
		t.Fatalf("Max = %v", x.Max())
	}
}

func TestDotAndL2(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	if Dot(a, a) != 25 {
		t.Fatalf("Dot = %v", Dot(a, a))
	}
	if a.L2() != 5 {
		t.Fatalf("L2 = %v", a.L2())
	}
}

func TestApplyInPlace(t *testing.T) {
	x := FromSlice([]float64{-1, 2, -3}, 3)
	x.ApplyInPlace(math.Abs)
	if x.At(0) != 1 || x.At(2) != 3 {
		t.Fatalf("ApplyInPlace = %v", x)
	}
}

func TestEqualTolerance(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1.0005, 2}, 2)
	if !Equal(a, b, 1e-3) {
		t.Fatal("Equal too strict")
	}
	if Equal(a, b, 1e-6) {
		t.Fatal("Equal too lax")
	}
	if Equal(a, New(2, 1), 1) {
		t.Fatal("Equal ignores shape")
	}
}

// Property: MatMul is associative for random small matrices.
func TestMatMulAssociative(t *testing.T) {
	err := quick.Check(func(av, bv, cv [4]float64) bool {
		clip := func(vals [4]float64) []float64 {
			out := make([]float64, 4)
			for i, v := range vals {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0.5
				}
				out[i] = math.Mod(v, 10)
			}
			return out
		}
		a := FromSlice(clip(av), 2, 2)
		b := FromSlice(clip(bv), 2, 2)
		c := FromSlice(clip(cv), 2, 2)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return Equal(left, right, 1e-6)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
