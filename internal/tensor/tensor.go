// Package tensor implements a small dense float64 tensor used as the
// numeric substrate for the zeiot CNN stack.
//
// Tensors are row-major with explicit shapes and cached strides; the package
// provides only the operations the CNN and the sensing pipelines need
// (element access, arithmetic, matrix multiply, argmax, simple reductions).
// It favours clarity and determinism over BLAS-grade speed, but the flat
// accessors (Off/At2..At4, Data) and the *Into variants let hot loops index
// storage directly without per-element variadic calls or allocation.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float64 array with an explicit shape.
type Tensor struct {
	shape   []int
	strides []int
	data    []float64
}

// shapeMeta builds the shape and stride slices in one backing array.
func shapeMeta(shape []int) (s, st []int) {
	meta := make([]int, 2*len(shape))
	s = meta[:len(shape):len(shape)]
	st = meta[len(shape):]
	copy(s, shape)
	stride := 1
	for i := len(shape) - 1; i >= 0; i-- {
		st[i] = stride
		stride *= shape[i]
	}
	return s, st
}

func volume(shape []int) int {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return n
}

// New returns a zero-filled tensor with the given shape. Dimensions must be
// positive.
func New(shape ...int) *Tensor {
	n := volume(shape)
	s, st := shapeMeta(shape)
	return &Tensor{shape: s, strides: st, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	s, st := shapeMeta(shape)
	t := &Tensor{shape: s, strides: st, data: data}
	if len(data) != t.Size() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return t
}

// Ensure returns a tensor of the given shape for use as a reusable scratch
// buffer: when t is non-nil and its storage capacity suffices, t is reshaped
// in place and returned (existing contents are preserved up to the new
// length; callers needing zeros must Zero it). Otherwise a fresh zero-filled
// tensor is allocated. Typical use: `buf = tensor.Ensure(buf, shape...)`.
func Ensure(t *Tensor, shape ...int) *Tensor {
	// Compute the volume without calling volume(): its panic path would
	// make shape escape and force a heap allocation of the variadic temp
	// on every call from the CNN hot loops.
	n := 1
	bad := false
	for _, d := range shape {
		if d <= 0 {
			bad = true
		}
		n *= d
	}
	if bad || t == nil || cap(t.data) < n {
		// Cold path: copy shape so the caller's variadic temp stays on the
		// stack; New validates the dimensions.
		return New(append([]int(nil), shape...)...)
	}
	if !shapeEq(t.shape, shape) {
		t.shape, t.strides = shapeMeta(shape)
	}
	t.data = t.data[:n]
	return t
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Strides returns the row-major stride of each dimension (cached at
// construction). The returned slice must not be modified.
func (t *Tensor) Strides() []int { return t.strides }

// Stride returns the row-major stride of dimension i.
func (t *Tensor) Stride(i int) int { return t.strides[i] }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.shape {
		n *= d
	}
	return n
}

// Data returns the underlying storage. Mutations are visible to the tensor.
func (t *Tensor) Data() []float64 { return t.data }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", v, i, t.shape[i]))
		}
		off = off*t.shape[i] + v
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Off2 returns the flat offset of (i, j) in a 2-d tensor. Like the other
// flat accessors it performs no per-dimension bounds checks — only the final
// slice access is checked — so callers must pass in-range indices.
func (t *Tensor) Off2(i, j int) int { return i*t.strides[0] + j }

// Off3 returns the flat offset of (i, j, k) in a 3-d tensor.
func (t *Tensor) Off3(i, j, k int) int { return i*t.strides[0] + j*t.strides[1] + k }

// Off4 returns the flat offset of (i, j, k, l) in a 4-d tensor.
func (t *Tensor) Off4(i, j, k, l int) int {
	return i*t.strides[0] + j*t.strides[1] + k*t.strides[2] + l
}

// At2 returns the element at (i, j) of a 2-d tensor without per-dimension
// bounds checks.
func (t *Tensor) At2(i, j int) float64 { return t.data[i*t.strides[0]+j] }

// Set2 stores v at (i, j) of a 2-d tensor without per-dimension bounds
// checks.
func (t *Tensor) Set2(v float64, i, j int) { t.data[i*t.strides[0]+j] = v }

// At3 returns the element at (i, j, k) of a 3-d tensor without per-dimension
// bounds checks.
func (t *Tensor) At3(i, j, k int) float64 { return t.data[i*t.strides[0]+j*t.strides[1]+k] }

// Set3 stores v at (i, j, k) of a 3-d tensor without per-dimension bounds
// checks.
func (t *Tensor) Set3(v float64, i, j, k int) { t.data[i*t.strides[0]+j*t.strides[1]+k] = v }

// At4 returns the element at (i, j, k, l) of a 4-d tensor without
// per-dimension bounds checks.
func (t *Tensor) At4(i, j, k, l int) float64 {
	return t.data[i*t.strides[0]+j*t.strides[1]+k*t.strides[2]+l]
}

// Set4 stores v at (i, j, k, l) of a 4-d tensor without per-dimension bounds
// checks.
func (t *Tensor) Set4(v float64, i, j, k, l int) {
	t.data[i*t.strides[0]+j*t.strides[1]+k*t.strides[2]+l] = v
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies other's elements into t. Shapes must match exactly.
func (t *Tensor) CopyFrom(other *Tensor) {
	t.mustSameShape(other)
	copy(t.data, other.data)
}

// Reshape returns a view of the same data with a new shape of equal volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s, st := shapeMeta(shape)
	r := &Tensor{shape: s, strides: st, data: t.data}
	if r.Size() != t.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return r
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	clear(t.data)
}

// AddInPlace adds other element-wise into t. Shapes must match exactly.
func (t *Tensor) AddInPlace(other *Tensor) {
	t.mustSameShape(other)
	for i := range t.data {
		t.data[i] += other.data[i]
	}
}

// SubInPlace subtracts other element-wise from t.
func (t *Tensor) SubInPlace(other *Tensor) {
	t.mustSameShape(other)
	for i := range t.data {
		t.data[i] -= other.data[i]
	}
}

// ScaleInPlace multiplies every element by a.
func (t *Tensor) ScaleInPlace(a float64) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// AxpyInPlace performs t += a*other element-wise.
func (t *Tensor) AxpyInPlace(a float64, other *Tensor) {
	t.mustSameShape(other)
	for i := range t.data {
		t.data[i] += a * other.data[i]
	}
}

func (t *Tensor) mustSameShape(other *Tensor) {
	if !SameShape(t, other) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, other.shape))
	}
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool { return shapeEq(a.shape, b.shape) }

// MatMul returns a×b for 2-D tensors of shapes (m,k) and (k,n).
func MatMul(a, b *Tensor) *Tensor {
	return MatMulInto(nil, a, b)
}

// MatMulInto computes a×b into dst, reusing dst's storage when possible
// (pass nil to allocate). It returns the result tensor.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul requires 2-d tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := Ensure(dst, m, n)
	out.Zero()
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatVec returns a×x for a 2-D tensor (m,k) and 1-D tensor (k,).
func MatVec(a, x *Tensor) *Tensor {
	return MatVecInto(nil, a, x)
}

// MatVecInto computes a×x into dst, reusing dst's storage when possible
// (pass nil to allocate). It returns the result tensor.
func MatVecInto(dst, a, x *Tensor) *Tensor {
	if a.Dims() != 2 || x.Dims() != 1 {
		panic("tensor: MatVec requires (2-d, 1-d) tensors")
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dims (m=%d,k=%d) × %d", m, k, x.shape[0]))
	}
	out := Ensure(dst, m)
	xd := x.data
	for i := 0; i < m; i++ {
		sum := 0.0
		row := a.data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			sum += row[p] * xd[p]
		}
		out.data[i] = sum
	}
	return out
}

// Argmax returns the flat index of the maximum element.
func (t *Tensor) Argmax() int {
	best, bestIdx := math.Inf(-1), 0
	for i, v := range t.data {
		if v > best {
			best, bestIdx = v, i
		}
	}
	return bestIdx
}

// Max returns the maximum element.
func (t *Tensor) Max() float64 { return t.data[t.Argmax()] }

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(t.Size()) }

// Dot returns the inner product of two tensors of identical shape.
func Dot(a, b *Tensor) float64 {
	a.mustSameShape(b)
	s := 0.0
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// L2 returns the Euclidean norm of all elements.
func (t *Tensor) L2() float64 { return math.Sqrt(Dot(t, t)) }

// ApplyInPlace replaces every element x with f(x).
func (t *Tensor) ApplyInPlace(f func(float64) float64) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Equal reports whether two tensors have the same shape and all elements
// within tol of each other.
func Equal(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description, truncating large tensors.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	limit := t.Size()
	if limit > 8 {
		limit = 8
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if t.Size() > limit {
		b.WriteString(" …")
	}
	b.WriteString("]")
	return b.String()
}
