// Package tensor implements a small dense float64 tensor used as the
// numeric substrate for the zeiot CNN stack.
//
// Tensors are row-major with explicit shapes and cached strides; the package
// provides only the operations the CNN and the sensing pipelines need
// (element access, arithmetic, matrix multiply, argmax, simple reductions).
// It favours clarity and determinism over BLAS-grade speed, but the flat
// accessors (Off/At2..At4, Data) and the *Into variants let hot loops index
// storage directly without per-element variadic calls or allocation.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float64 array with an explicit shape.
type Tensor struct {
	shape   []int
	strides []int
	data    []float64
}

// shapeMeta builds the shape and stride slices in one backing array.
func shapeMeta(shape []int) (s, st []int) {
	meta := make([]int, 2*len(shape))
	s = meta[:len(shape):len(shape)]
	st = meta[len(shape):]
	copy(s, shape)
	stride := 1
	for i := len(shape) - 1; i >= 0; i-- {
		st[i] = stride
		stride *= shape[i]
	}
	return s, st
}

func volume(shape []int) int {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return n
}

// New returns a zero-filled tensor with the given shape. Dimensions must be
// positive.
func New(shape ...int) *Tensor {
	n := volume(shape)
	s, st := shapeMeta(shape)
	return &Tensor{shape: s, strides: st, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	s, st := shapeMeta(shape)
	t := &Tensor{shape: s, strides: st, data: data}
	if len(data) != t.Size() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return t
}

// Ensure returns a tensor of the given shape for use as a reusable scratch
// buffer: when t is non-nil and its storage capacity suffices, t is reshaped
// in place and returned (existing contents are preserved up to the new
// length; callers needing zeros must Zero it). Otherwise a fresh zero-filled
// tensor is allocated. Typical use: `buf = tensor.Ensure(buf, shape...)`.
func Ensure(t *Tensor, shape ...int) *Tensor {
	// Compute the volume without calling volume(): its panic path would
	// make shape escape and force a heap allocation of the variadic temp
	// on every call from the CNN hot loops.
	n := 1
	bad := false
	for _, d := range shape {
		if d <= 0 {
			bad = true
		}
		n *= d
	}
	if bad || t == nil || cap(t.data) < n {
		// Cold path: copy shape so the caller's variadic temp stays on the
		// stack; New validates the dimensions.
		return New(append([]int(nil), shape...)...)
	}
	if !shapeEq(t.shape, shape) {
		if len(shape) == len(t.shape) {
			// Same rank: rewrite the cached meta in place. Scratch buffers
			// that alternate between shapes (e.g. an im2col patch whose
			// batch dimension shrinks on the final partial block) stay
			// allocation-free, and the strides are always recomputed for
			// the new dimensions.
			copy(t.shape, shape)
			stride := 1
			for i := len(shape) - 1; i >= 0; i-- {
				t.strides[i] = stride
				stride *= shape[i]
			}
		} else {
			// Rank change: the stride slice lengths no longer match, so a
			// fresh meta array is required. Both shape and strides must be
			// replaced together — stale strides on a reused backing array
			// would silently corrupt every flat accessor.
			t.shape, t.strides = shapeMeta(shape)
		}
	}
	t.data = t.data[:n]
	return t
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Strides returns the row-major stride of each dimension (cached at
// construction). The returned slice must not be modified.
func (t *Tensor) Strides() []int { return t.strides }

// Stride returns the row-major stride of dimension i.
func (t *Tensor) Stride(i int) int { return t.strides[i] }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.shape {
		n *= d
	}
	return n
}

// Data returns the underlying storage. Mutations are visible to the tensor.
func (t *Tensor) Data() []float64 { return t.data }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", v, i, t.shape[i]))
		}
		off = off*t.shape[i] + v
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Off2 returns the flat offset of (i, j) in a 2-d tensor. Like the other
// flat accessors it performs no per-dimension bounds checks — only the final
// slice access is checked — so callers must pass in-range indices.
func (t *Tensor) Off2(i, j int) int { return i*t.strides[0] + j }

// Off3 returns the flat offset of (i, j, k) in a 3-d tensor.
func (t *Tensor) Off3(i, j, k int) int { return i*t.strides[0] + j*t.strides[1] + k }

// Off4 returns the flat offset of (i, j, k, l) in a 4-d tensor.
func (t *Tensor) Off4(i, j, k, l int) int {
	return i*t.strides[0] + j*t.strides[1] + k*t.strides[2] + l
}

// At2 returns the element at (i, j) of a 2-d tensor without per-dimension
// bounds checks.
func (t *Tensor) At2(i, j int) float64 { return t.data[i*t.strides[0]+j] }

// Set2 stores v at (i, j) of a 2-d tensor without per-dimension bounds
// checks.
func (t *Tensor) Set2(v float64, i, j int) { t.data[i*t.strides[0]+j] = v }

// At3 returns the element at (i, j, k) of a 3-d tensor without per-dimension
// bounds checks.
func (t *Tensor) At3(i, j, k int) float64 { return t.data[i*t.strides[0]+j*t.strides[1]+k] }

// Set3 stores v at (i, j, k) of a 3-d tensor without per-dimension bounds
// checks.
func (t *Tensor) Set3(v float64, i, j, k int) { t.data[i*t.strides[0]+j*t.strides[1]+k] = v }

// At4 returns the element at (i, j, k, l) of a 4-d tensor without
// per-dimension bounds checks.
func (t *Tensor) At4(i, j, k, l int) float64 {
	return t.data[i*t.strides[0]+j*t.strides[1]+k*t.strides[2]+l]
}

// Set4 stores v at (i, j, k, l) of a 4-d tensor without per-dimension bounds
// checks.
func (t *Tensor) Set4(v float64, i, j, k, l int) {
	t.data[i*t.strides[0]+j*t.strides[1]+k*t.strides[2]+l] = v
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies other's elements into t. Shapes must match exactly.
func (t *Tensor) CopyFrom(other *Tensor) {
	t.mustSameShape(other)
	copy(t.data, other.data)
}

// Reshape returns a view of the same data with a new shape of equal volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s, st := shapeMeta(shape)
	r := &Tensor{shape: s, strides: st, data: t.data}
	if r.Size() != t.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return r
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	clear(t.data)
}

// AddInPlace adds other element-wise into t. Shapes must match exactly.
func (t *Tensor) AddInPlace(other *Tensor) {
	t.mustSameShape(other)
	for i := range t.data {
		t.data[i] += other.data[i]
	}
}

// SubInPlace subtracts other element-wise from t.
func (t *Tensor) SubInPlace(other *Tensor) {
	t.mustSameShape(other)
	for i := range t.data {
		t.data[i] -= other.data[i]
	}
}

// ScaleInPlace multiplies every element by a.
func (t *Tensor) ScaleInPlace(a float64) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// AxpyInPlace performs t += a*other element-wise.
func (t *Tensor) AxpyInPlace(a float64, other *Tensor) {
	t.mustSameShape(other)
	for i := range t.data {
		t.data[i] += a * other.data[i]
	}
}

func (t *Tensor) mustSameShape(other *Tensor) {
	if !SameShape(t, other) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, other.shape))
	}
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool { return shapeEq(a.shape, b.shape) }

// MatMul returns a×b for 2-D tensors of shapes (m,k) and (k,n).
func MatMul(a, b *Tensor) *Tensor {
	return MatMulInto(nil, a, b)
}

// MatMulInto computes a×b into dst, reusing dst's storage when possible
// (pass nil to allocate). It returns the result tensor.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul requires 2-d tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := Ensure(dst, m, n)
	out.Zero()
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulAddInto accumulates a×b into dst for 2-D tensors of shapes (m,k),
// (k,n) and (m,n): dst is NOT zeroed first, so callers can seed it (e.g. with
// a broadcast bias) before the product is added. Unlike MatMulInto it does
// not skip zero elements of a: every one of the k terms is added, in
// ascending p order, one term at a time per output element. That makes the
// per-element accumulation order identical to a scalar loop
// `for p { dst[i][j] += a[i][p]*b[p][j] }`, which is what the batched CNN
// kernels rely on for bit-identity with the per-sample path.
func MatMulAddInto(dst, a, b *Tensor) *Tensor {
	if dst.Dims() != 2 || a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulAddInto requires 2-d tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulAddInto inner dims %d vs %d", k, k2))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAddInto dst shape %v, want (%d,%d)", dst.shape, m, n))
	}
	bd := b.data
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := dst.data[i*n : (i+1)*n]
		p := 0
		// Unroll by 4 over the inner dimension: four a-coefficients are held
		// in registers and each output element receives its four terms as
		// sequential dependent adds, so the per-element order matches the
		// scalar loop exactly while each pass streams b only once per four
		// terms' worth of work.
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			b0 := bd[p*n : p*n+n]
			b1 := bd[(p+1)*n : (p+1)*n+n]
			b2 := bd[(p+2)*n : (p+2)*n+n]
			b3 := bd[(p+3)*n : (p+3)*n+n]
			for j := range orow {
				v := orow[j]
				v += a0 * b0[j]
				v += a1 * b1[j]
				v += a2 * b2[j]
				v += a3 * b3[j]
				orow[j] = v
			}
		}
		for ; p < k; p++ {
			av := arow[p]
			brow := bd[p*n : p*n+n]
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
	return dst
}

// reluBits is the branchless ReLU select used by the CNN layers: v for
// v > 0, +0.0 otherwise (negatives, ±0 and negative NaNs all map to +0).
func reluBits(v float64) float64 {
	t := math.Float64bits(v)
	keep := ((t | -t) >> 63) &^ (t >> 63)
	return math.Float64frombits(t & -keep)
}

// MatMulBiasInto computes dst = bias + a×b for 2-D tensors of shapes (m,k),
// (k,n) and (m,n), with bias[i] broadcast across row i. Each output element
// is seeded with its bias and then receives its k terms in ascending p
// order, one term at a time — the same per-element elementary order as
// seeding dst with the bias and calling MatMulAddInto, so the batched conv
// kernel stays bit-identical to the per-sample path. When relu is true the
// finished value is passed through the ReLU bit-mask select as it is stored,
// fusing the activation into the GEMM's final write.
//
// k == 9 (a 3×3 single-channel convolution row) keeps the whole chain in
// registers: one pass over dst instead of three, which is where the batched
// conv forward spends its time.
func MatMulBiasInto(dst, a, b *Tensor, bias []float64, relu bool) *Tensor {
	if dst.Dims() != 2 || a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMulBiasInto requires 2-d tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulBiasInto inner dims %d vs %d", k, k2))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulBiasInto dst shape %v, want (%d,%d)", dst.shape, m, n))
	}
	if len(bias) != m {
		panic(fmt.Sprintf("tensor: MatMulBiasInto bias length %d, want %d", len(bias), m))
	}
	bd := b.data
	if k == 9 {
		b0, b1, b2 := bd[0:n], bd[n:2*n], bd[2*n:3*n]
		b3, b4, b5 := bd[3*n:4*n], bd[4*n:5*n], bd[5*n:6*n]
		b6, b7, b8 := bd[6*n:7*n], bd[7*n:8*n], bd[8*n:9*n]
		for i := 0; i < m; i++ {
			arow := a.data[i*9 : i*9+9]
			orow := dst.data[i*n : (i+1)*n]
			bv := bias[i]
			a0, a1, a2 := arow[0], arow[1], arow[2]
			a3, a4, a5 := arow[3], arow[4], arow[5]
			a6, a7, a8 := arow[6], arow[7], arow[8]
			if relu {
				for j := range orow {
					v := bv
					v += a0 * b0[j]
					v += a1 * b1[j]
					v += a2 * b2[j]
					v += a3 * b3[j]
					v += a4 * b4[j]
					v += a5 * b5[j]
					v += a6 * b6[j]
					v += a7 * b7[j]
					v += a8 * b8[j]
					orow[j] = reluBits(v)
				}
				continue
			}
			for j := range orow {
				v := bv
				v += a0 * b0[j]
				v += a1 * b1[j]
				v += a2 * b2[j]
				v += a3 * b3[j]
				v += a4 * b4[j]
				v += a5 * b5[j]
				v += a6 * b6[j]
				v += a7 * b7[j]
				v += a8 * b8[j]
				orow[j] = v
			}
		}
		return dst
	}
	// Generic inner dimensions: seed the bias, accumulate like MatMulAddInto,
	// then apply the fused activation in place.
	for i := 0; i < m; i++ {
		orow := dst.data[i*n : (i+1)*n]
		bv := bias[i]
		for j := range orow {
			orow[j] = bv
		}
	}
	MatMulAddInto(dst, a, b)
	if relu {
		od := dst.data[:m*n]
		for j, v := range od {
			od[j] = reluBits(v)
		}
	}
	return dst
}

// MatVec returns a×x for a 2-D tensor (m,k) and 1-D tensor (k,).
func MatVec(a, x *Tensor) *Tensor {
	return MatVecInto(nil, a, x)
}

// MatVecInto computes a×x into dst, reusing dst's storage when possible
// (pass nil to allocate). It returns the result tensor.
func MatVecInto(dst, a, x *Tensor) *Tensor {
	if a.Dims() != 2 || x.Dims() != 1 {
		panic("tensor: MatVec requires (2-d, 1-d) tensors")
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dims (m=%d,k=%d) × %d", m, k, x.shape[0]))
	}
	out := Ensure(dst, m)
	xd := x.data
	for i := 0; i < m; i++ {
		sum := 0.0
		row := a.data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			sum += row[p] * xd[p]
		}
		out.data[i] = sum
	}
	return out
}

// Argmax returns the flat index of the maximum element.
func (t *Tensor) Argmax() int {
	best, bestIdx := math.Inf(-1), 0
	for i, v := range t.data {
		if v > best {
			best, bestIdx = v, i
		}
	}
	return bestIdx
}

// Max returns the maximum element.
func (t *Tensor) Max() float64 { return t.data[t.Argmax()] }

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(t.Size()) }

// Dot returns the inner product of two tensors of identical shape.
func Dot(a, b *Tensor) float64 {
	a.mustSameShape(b)
	s := 0.0
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// L2 returns the Euclidean norm of all elements.
func (t *Tensor) L2() float64 { return math.Sqrt(Dot(t, t)) }

// ApplyInPlace replaces every element x with f(x).
func (t *Tensor) ApplyInPlace(f func(float64) float64) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Equal reports whether two tensors have the same shape and all elements
// within tol of each other.
func Equal(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description, truncating large tensors.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	limit := t.Size()
	if limit > 8 {
		limit = 8
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if t.Size() > limit {
		b.WriteString(" …")
	}
	b.WriteString("]")
	return b.String()
}
