// Package tensor implements a small dense float64 tensor used as the
// numeric substrate for the zeiot CNN stack.
//
// Tensors are row-major with explicit shapes; the package provides only the
// operations the CNN and the sensing pipelines need (element access,
// arithmetic, matrix multiply, argmax, simple reductions). It favours
// clarity and determinism over BLAS-grade speed.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float64 array with an explicit shape.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. Dimensions must be
// positive.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{shape: append([]int(nil), shape...), data: data}
	if len(data) != t.Size() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.shape {
		n *= d
	}
	return n
}

// Data returns the underlying storage. Mutations are visible to the tensor.
func (t *Tensor) Data() []float64 { return t.data }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", v, i, t.shape[i]))
		}
		off = off*t.shape[i] + v
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the same data with a new shape of equal volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	r := &Tensor{shape: append([]int(nil), shape...), data: t.data}
	if r.Size() != t.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return r
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// AddInPlace adds other element-wise into t. Shapes must match exactly.
func (t *Tensor) AddInPlace(other *Tensor) {
	t.mustSameShape(other)
	for i := range t.data {
		t.data[i] += other.data[i]
	}
}

// SubInPlace subtracts other element-wise from t.
func (t *Tensor) SubInPlace(other *Tensor) {
	t.mustSameShape(other)
	for i := range t.data {
		t.data[i] -= other.data[i]
	}
}

// ScaleInPlace multiplies every element by a.
func (t *Tensor) ScaleInPlace(a float64) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// AxpyInPlace performs t += a*other element-wise.
func (t *Tensor) AxpyInPlace(a float64, other *Tensor) {
	t.mustSameShape(other)
	for i := range t.data {
		t.data[i] += a * other.data[i]
	}
}

func (t *Tensor) mustSameShape(other *Tensor) {
	if !SameShape(t, other) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, other.shape))
	}
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// MatMul returns a×b for 2-D tensors of shapes (m,k) and (k,n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul requires 2-d tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatVec returns a×x for a 2-D tensor (m,k) and 1-D tensor (k,).
func MatVec(a, x *Tensor) *Tensor {
	if a.Dims() != 2 || x.Dims() != 1 {
		panic("tensor: MatVec requires (2-d, 1-d) tensors")
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dims (m=%d,k=%d) × %d", m, k, x.shape[0]))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		sum := 0.0
		row := a.data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			sum += row[p] * x.data[p]
		}
		out.data[i] = sum
	}
	return out
}

// Argmax returns the flat index of the maximum element.
func (t *Tensor) Argmax() int {
	best, bestIdx := math.Inf(-1), 0
	for i, v := range t.data {
		if v > best {
			best, bestIdx = v, i
		}
	}
	return bestIdx
}

// Max returns the maximum element.
func (t *Tensor) Max() float64 { return t.data[t.Argmax()] }

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(t.Size()) }

// Dot returns the inner product of two tensors of identical shape.
func Dot(a, b *Tensor) float64 {
	a.mustSameShape(b)
	s := 0.0
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// L2 returns the Euclidean norm of all elements.
func (t *Tensor) L2() float64 { return math.Sqrt(Dot(t, t)) }

// ApplyInPlace replaces every element x with f(x).
func (t *Tensor) ApplyInPlace(f func(float64) float64) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Equal reports whether two tensors have the same shape and all elements
// within tol of each other.
func Equal(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description, truncating large tensors.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	limit := t.Size()
	if limit > 8 {
		limit = 8
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if t.Size() > limit {
		b.WriteString(" …")
	}
	b.WriteString("]")
	return b.String()
}
