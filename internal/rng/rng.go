// Package rng provides deterministic, splittable pseudo-random number
// streams for the zeiot simulators.
//
// Every experiment in the repository takes a single root seed. Substreams
// derived from that seed with Split are statistically independent, so adding
// a new consumer of randomness to one subsystem never perturbs the draws
// seen by another — a property the reproducibility story in EXPERIMENTS.md
// relies on.
//
// The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014), chosen
// because it is tiny, passes BigCrush, and supports O(1) splitting.
package rng

import (
	"math"
)

// Stream is a deterministic pseudo-random stream. The zero value is a valid
// stream seeded with 0; prefer New to make the seed explicit.
//
// Stream is not safe for concurrent use; Split off one stream per goroutine.
type Stream struct {
	state uint64
	// spare holds a cached second Gaussian variate from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// New returns a stream seeded with seed.
func New(seed uint64) *Stream {
	return &Stream{state: seed}
}

// State is an exact, serializable snapshot of a Stream's position: the
// SplitMix64 counter plus the Box-Muller spare cache. All fields are exported
// so a State round-trips through encoding/gob unchanged — it is the unit the
// checkpointed-training formats persist so a resumed run draws exactly the
// variates an uninterrupted run would have drawn.
type State struct {
	PRNG    uint64
	Spare   float64
	SpareOK bool
}

// State snapshots the stream's position. Restoring it with SetState (or
// FromState) reproduces the stream's future output exactly.
func (s *Stream) State() State {
	return State{PRNG: s.state, Spare: s.spare, SpareOK: s.spareOK}
}

// SetState rewinds (or fast-forwards) the stream to a snapshot taken with
// State.
func (s *Stream) SetState(st State) {
	s.state = st.PRNG
	s.spare = st.Spare
	s.spareOK = st.SpareOK
}

// FromState returns a new stream positioned at st.
func FromState(st State) *Stream {
	s := &Stream{}
	s.SetState(st)
	return s
}

// golden is the SplitMix64 increment (odd, close to 2^64/phi).
const golden = 0x9e3779b97f4a7c15

// Mix64 applies the SplitMix64 output finalizer to x: a bijective
// avalanche mix in which every input bit affects every output bit. Seed
// derivations that combine a base seed with structured values (a drop rate,
// a link identity) should run the combination through Mix64 so nearby or
// degenerate inputs — in particular an xor with zero, which would otherwise
// be the identity — land far apart in state space.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent substream labelled by key, advancing the
// parent. Splits with different keys are independent of each other and of
// the parent's subsequent output; splitting the SAME key twice from the
// same parent yields two different, independent streams (the parent state
// advances), so `stream.Split("worker")` inside a loop is safe.
func (s *Stream) Split(key string) *Stream {
	h := s.Uint64()
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001b3
	}
	// Run the mixed value through one SplitMix64 round so adjacent keys
	// land far apart in state space.
	child := New(h)
	child.Uint64()
	return child
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Norm returns a standard Gaussian variate via the Box-Muller transform.
func (s *Stream) Norm() float64 {
	if s.spareOK {
		s.spareOK = false
		return s.spare
	}
	var u, v float64
	for {
		u = s.Float64()
		if u > 0 {
			break
		}
	}
	v = s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	s.spare = r * math.Sin(2*math.Pi*v)
	s.spareOK = true
	return r * math.Cos(2*math.Pi*v)
}

// NormMeanStd returns a Gaussian variate with the given mean and standard
// deviation.
func (s *Stream) NormMeanStd(mean, std float64) float64 {
	return mean + std*s.Norm()
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// method for small means and a Gaussian approximation above 30.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(s.NormMeanStd(mean, math.Sqrt(mean))))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// Choice returns a uniformly random index weighted by weights. Weights must
// be non-negative with a positive sum; otherwise Choice panics.
func (s *Stream) Choice(weights []float64) int {
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("rng: negative weight in Choice")
		}
		total += w
		_ = i
	}
	if total <= 0 {
		panic("rng: Choice with non-positive total weight")
	}
	target := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
