package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d equal draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split("alpha")
	b := root.Split("beta")
	if a.Uint64() == b.Uint64() {
		t.Fatal("substreams with different keys produced equal first draws")
	}
	// Splitting must be deterministic given parent state and key.
	a2 := New(7).Split("alpha")
	a3 := New(7).Split("alpha")
	if a2.Uint64() != a3.Uint64() {
		t.Fatal("splitting is not deterministic")
	}
}

func TestSplitSameKeyTwiceDiffers(t *testing.T) {
	// Splitting advances the parent, so re-using a key in a loop yields
	// fresh independent streams instead of silently repeating draws.
	root := New(7)
	a := root.Split("worker")
	b := root.Split("worker")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("same-key splits repeated %d of 64 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(9)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("gaussian variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("exp(rate=2) mean = %v, want ~0.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 12, 50} {
		s := New(uint64(100 * lambda))
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	if err := quick.Check(func(raw uint8) bool {
		n := int(raw%32) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	s := New(23)
	counts := [3]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		counts[s.Choice([]float64{1, 2, 1})]++
	}
	// Expect roughly 25% / 50% / 25%.
	if math.Abs(float64(counts[1])/n-0.5) > 0.02 {
		t.Fatalf("middle weight drew %d of %d", counts[1], n)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(29)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", got)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Stream
	_ = s.Uint64() // must not panic
	_ = s.Float64()
}

// TestStateRoundTrip pins the checkpointing contract: a stream restored from
// a State snapshot reproduces the original stream's future draws exactly,
// including the cached Box-Muller spare (snapshotting between the two halves
// of a Gaussian pair must not drop or replay the spare).
func TestStateRoundTrip(t *testing.T) {
	s := New(42)
	s.Norm() // leaves a valid spare cached
	snap := s.State()
	if !snap.SpareOK {
		t.Fatal("expected a cached Box-Muller spare after one Norm draw")
	}
	r := FromState(snap)
	for i := 0; i < 1000; i++ {
		if a, b := s.Norm(), r.Norm(); a != b {
			t.Fatalf("draw %d: original %v, restored %v", i, a, b)
		}
		if a, b := s.Uint64(), r.Uint64(); a != b {
			t.Fatalf("draw %d: Uint64 diverged", i)
		}
	}
	// SetState rewinds: replaying from the snapshot repeats the same perm.
	s.SetState(snap)
	r.SetState(snap)
	p1, p2 := s.Perm(257), r.Perm(257)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("perm diverged at %d after SetState", i)
		}
	}
}
