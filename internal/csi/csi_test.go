package csi

import (
	"math"
	"math/cmplx"
	"testing"

	"zeiot/internal/rng"
)

func randomMatrix(s *rng.Stream, rows, cols int) Matrix {
	m := NewMatrix(rows, cols)
	for i := range m {
		for j := range m[i] {
			m[i][j] = complex(s.NormMeanStd(0, 1), s.NormMeanStd(0, 1))
		}
	}
	return m
}

func maxAbsDiff(a, b Matrix) float64 {
	d := 0.0
	for i := range a {
		for j := range a[i] {
			d = math.Max(d, cmplx.Abs(a[i][j]-b[i][j]))
		}
	}
	return d
}

func TestHermitianEigReconstruction(t *testing.T) {
	s := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := 2 + s.Intn(4)
		h := randomMatrix(s, n+1, n)
		a := h.ConjTranspose().Mul(h) // Hermitian PSD
		vals, vecs := HermitianEig(a)
		// Eigenvalues descending and non-negative.
		for i := 0; i < n; i++ {
			if vals[i] < -1e-9 {
				t.Fatalf("negative eigenvalue %v of PSD matrix", vals[i])
			}
			if i > 0 && vals[i] > vals[i-1]+1e-9 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
		// V unitary: VᴴV = I.
		ident := vecs.ConjTranspose().Mul(vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := complex(0, 0)
				if i == j {
					want = 1
				}
				if cmplx.Abs(ident[i][j]-want) > 1e-8 {
					t.Fatalf("VᴴV not identity at (%d,%d): %v", i, j, ident[i][j])
				}
			}
		}
		// A V = V Λ.
		av := a.Mul(vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if cmplx.Abs(av[i][j]-vecs[i][j]*complex(vals[j], 0)) > 1e-7 {
					t.Fatalf("AV != VΛ at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestBeamformingVOrthonormal(t *testing.T) {
	s := rng.New(2)
	h := randomMatrix(s, 3, 4)
	v := BeamformingV(h, 3)
	if v.Rows() != 4 || v.Cols() != 3 {
		t.Fatalf("V shape %dx%d", v.Rows(), v.Cols())
	}
	g := v.ConjTranspose().Mul(v)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(g[i][j]-want) > 1e-8 {
				t.Fatalf("V columns not orthonormal at (%d,%d): %v", i, j, g[i][j])
			}
		}
	}
}

func TestNumAngles(t *testing.T) {
	cases := []struct{ m, n, phi, psi int }{
		{2, 1, 1, 1},
		{2, 2, 1, 1},
		{3, 2, 3, 3},
		{4, 2, 5, 5},
		{4, 3, 6, 6},
		{4, 4, 6, 6},
	}
	for _, c := range cases {
		phi, psi := NumAngles(c.m, c.n)
		if phi != c.phi || psi != c.psi {
			t.Fatalf("NumAngles(%d,%d) = (%d,%d), want (%d,%d)", c.m, c.n, phi, psi, c.phi, c.psi)
		}
	}
}

// TestCompressReconstructRoundTrip is the core 802.11ac correctness
// property: decomposing a beamforming matrix into Givens angles and
// rebuilding it recovers the matrix up to the per-column common phases.
func TestCompressReconstructRoundTrip(t *testing.T) {
	s := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		nr := 2 + s.Intn(3) // 2..4
		nt := nr + 1
		nc := 1 + s.Intn(nr)
		h := randomMatrix(s, nr, nt)
		v := BeamformingV(h, nc)
		// Normalize columns like Compress step 0 so comparison is direct.
		v0 := v.Clone()
		for j := 0; j < nc; j++ {
			rot := cmplx.Exp(complex(0, -cmplx.Phase(v0[nt-1][j])))
			for i := 0; i < nt; i++ {
				v0[i][j] *= rot
			}
		}
		a := Compress(v)
		got := Reconstruct(a)
		if d := maxAbsDiff(v0, got); d > 1e-8 {
			t.Fatalf("trial %d (%dx%d): reconstruction error %v", trial, nt, nc, d)
		}
	}
}

func TestAngleRanges(t *testing.T) {
	s := rng.New(4)
	for trial := 0; trial < 20; trial++ {
		h := randomMatrix(s, 3, 4)
		a := Compress(BeamformingV(h, 3))
		phiN, psiN := NumAngles(4, 3)
		if len(a.Phi) != phiN || len(a.Psi) != psiN {
			t.Fatalf("angle counts %d/%d, want %d/%d", len(a.Phi), len(a.Psi), phiN, psiN)
		}
		for _, p := range a.Phi {
			if p < 0 || p >= 2*math.Pi+1e-12 {
				t.Fatalf("phi out of range: %v", p)
			}
		}
		for _, p := range a.Psi {
			if p < -1e-9 || p > math.Pi/2+1e-9 {
				t.Fatalf("psi out of range: %v", p)
			}
		}
	}
}

func TestPaperFeedbackIs624Features(t *testing.T) {
	fb := PaperFeedback()
	if got := fb.NumFeatures(); got != 624 {
		t.Fatalf("NumFeatures = %d, want 624 (the paper's extraction)", got)
	}
}

func TestFeaturesShapeAndDeterminism(t *testing.T) {
	p := PaperPatterns()[0]
	sc := DefaultRoom(p)
	pos := SevenPositions()[2]
	f1, err := sc.Feedback.Features(sc.Snapshot(pos, rng.New(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != 624 {
		t.Fatalf("feature length = %d", len(f1))
	}
	f2, err := sc.Feedback.Features(sc.Snapshot(pos, rng.New(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("same seed produced different features")
		}
	}
	for _, v := range f1 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("NaN/Inf feature")
		}
	}
}

func TestFeaturesValidation(t *testing.T) {
	fb := PaperFeedback()
	if _, err := fb.Features(nil); err == nil {
		t.Fatal("wrong subcarrier count accepted")
	}
	bad := make([]Matrix, fb.Subcarriers)
	for i := range bad {
		bad[i] = NewMatrix(2, 2)
	}
	if _, err := fb.Features(bad); err == nil {
		t.Fatal("wrong channel shape accepted")
	}
}

func TestPositionsSeparableInFeatureSpace(t *testing.T) {
	// Different person positions must move the features more than repeated
	// snapshots at the same position (walking pattern).
	p := PaperPatterns()[0]
	sc := DefaultRoom(p)
	s := rng.New(10)
	pos := SevenPositions()
	f := func(i int, str *rng.Stream) []float64 {
		feat, err := sc.Feedback.Features(sc.Snapshot(pos[i], str))
		if err != nil {
			t.Fatal(err)
		}
		return feat
	}
	dist := func(a, b []float64) float64 {
		d := 0.0
		for i := range a {
			// Angles wrap; compare on the circle.
			dd := math.Abs(a[i] - b[i])
			if dd > math.Pi {
				dd = 2*math.Pi - dd
			}
			d += dd * dd
		}
		return math.Sqrt(d)
	}
	same := dist(f(0, s.Split("a")), f(0, s.Split("b")))
	diff := dist(f(0, s.Split("c")), f(4, s.Split("d")))
	if diff <= same {
		t.Fatalf("cross-position distance %v <= same-position %v", diff, same)
	}
}

func TestSixPatterns(t *testing.T) {
	ps := PaperPatterns()
	if len(ps) != 6 {
		t.Fatalf("patterns = %d, want 6", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Fatalf("duplicate pattern %q", p.Name)
		}
		seen[p.Name] = true
	}
}
