// Package csi implements the IEEE 802.11ac explicit-feedback channel state
// information pipeline of ref. [8] (§IV.B): a complex Hermitian
// eigensolver recovers the beamforming matrix V from a simulated multipath
// channel, V is compressed into Givens-rotation angles (φ, ψ) exactly as a
// VHT compressed beamforming report does, and the angles across subcarriers
// form the feature vector the learning system consumes — 624 features for
// the paper's 4×3 feedback over 52 subcarriers.
package csi

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a dense complex matrix, row major.
type Matrix [][]complex128

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) Matrix {
	m := make(Matrix, rows)
	for i := range m {
		m[i] = make([]complex128, cols)
	}
	return m
}

// Rows returns the row count.
func (m Matrix) Rows() int { return len(m) }

// Cols returns the column count (0 for an empty matrix).
func (m Matrix) Cols() int {
	if len(m) == 0 {
		return 0
	}
	return len(m[0])
}

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	c := NewMatrix(m.Rows(), m.Cols())
	for i := range m {
		copy(c[i], m[i])
	}
	return c
}

// ConjTranspose returns mᴴ.
func (m Matrix) ConjTranspose() Matrix {
	t := NewMatrix(m.Cols(), m.Rows())
	for i := range m {
		for j := range m[i] {
			t[j][i] = cmplx.Conj(m[i][j])
		}
	}
	return t
}

// Mul returns m×b.
func (m Matrix) Mul(b Matrix) Matrix {
	if m.Cols() != b.Rows() {
		panic(fmt.Sprintf("csi: mul dims %dx%d × %dx%d", m.Rows(), m.Cols(), b.Rows(), b.Cols()))
	}
	out := NewMatrix(m.Rows(), b.Cols())
	for i := range m {
		for k := 0; k < m.Cols(); k++ {
			v := m[i][k]
			if v == 0 {
				continue
			}
			for j := 0; j < b.Cols(); j++ {
				out[i][j] += v * b[k][j]
			}
		}
	}
	return out
}

// HermitianEig diagonalizes a Hermitian matrix with cyclic complex Jacobi
// rotations, returning eigenvalues (descending) and the matching
// orthonormal eigenvectors as matrix columns.
func HermitianEig(a Matrix) (vals []float64, vecs Matrix) {
	n := a.Rows()
	if n == 0 || a.Cols() != n {
		panic("csi: HermitianEig needs a square matrix")
	}
	work := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += cmplx.Abs(work[p][q])
			}
		}
		if off < 1e-13 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				x := work[p][q]
				r := cmplx.Abs(x)
				if r < 1e-15 {
					continue
				}
				theta := cmplx.Phase(x)
				app := real(work[p][p])
				aqq := real(work[q][q])
				phi := 0.5 * math.Atan2(2*r, app-aqq)
				c := math.Cos(phi)
				s := math.Sin(phi)
				eit := cmplx.Exp(complex(0, theta))
				// Right-multiply by J: columns p, q.
				for k := 0; k < n; k++ {
					kp, kq := work[k][p], work[k][q]
					work[k][p] = complex(c, 0)*kp + complex(s, 0)*cmplx.Conj(eit)*kq
					work[k][q] = -complex(s, 0)*eit*kp + complex(c, 0)*kq
					vp, vq := v[k][p], v[k][q]
					v[k][p] = complex(c, 0)*vp + complex(s, 0)*cmplx.Conj(eit)*vq
					v[k][q] = -complex(s, 0)*eit*vp + complex(c, 0)*vq
				}
				// Left-multiply by Jᴴ: rows p, q.
				for k := 0; k < n; k++ {
					pk, qk := work[p][k], work[q][k]
					work[p][k] = complex(c, 0)*pk + complex(s, 0)*eit*qk
					work[q][k] = -complex(s, 0)*cmplx.Conj(eit)*pk + complex(c, 0)*qk
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = real(work[i][i])
	}
	// Sort descending, permuting eigenvector columns alongside.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if vals[order[j]] > vals[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range order {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs[r][newCol] = v[r][oldCol]
		}
	}
	return sortedVals, sortedVecs
}

// BeamformingV returns the Nt×nc beamforming matrix for a channel H
// (rows = receive antennas, cols = transmit antennas): the top-nc
// eigenvectors of HᴴH, the matrix a VHT beamformee feeds back.
func BeamformingV(h Matrix, nc int) Matrix {
	gram := h.ConjTranspose().Mul(h)
	_, vecs := HermitianEig(gram)
	nt := gram.Rows()
	if nc > nt {
		panic(fmt.Sprintf("csi: nc %d > nt %d", nc, nt))
	}
	v := NewMatrix(nt, nc)
	for r := 0; r < nt; r++ {
		for c := 0; c < nc; c++ {
			v[r][c] = vecs[r][c]
		}
	}
	return v
}

// Angles is one subcarrier's compressed beamforming report.
type Angles struct {
	M, N int
	// Phi are the φ angles in feedback order, in [0, 2π).
	Phi []float64
	// Psi are the ψ angles in feedback order, in [0, π/2].
	Psi []float64
}

// NumAngles returns the angle count for an M×N compressed report:
// 2·Σ_{i=1}^{min(N,M-1)} (M−i).
func NumAngles(m, n int) (phi, psi int) {
	k := n
	if m-1 < k {
		k = m - 1
	}
	for i := 1; i <= k; i++ {
		phi += m - i
		psi += m - i
	}
	return phi, psi
}

// Compress performs the 802.11ac Givens decomposition of a beamforming
// matrix with orthonormal columns, returning the φ/ψ angle sets.
func Compress(v Matrix) Angles {
	m, n := v.Rows(), v.Cols()
	w := v.Clone()
	// Step 0: rotate each column so the last row is real non-negative
	// (these common phases are not fed back).
	for j := 0; j < n; j++ {
		ph := cmplx.Phase(w[m-1][j])
		rot := cmplx.Exp(complex(0, -ph))
		for i := 0; i < m; i++ {
			w[i][j] *= rot
		}
	}
	k := n
	if m-1 < k {
		k = m - 1
	}
	a := Angles{M: m, N: n}
	for i := 0; i < k; i++ {
		// φ angles make column i real (rows i..m-2; the last row is
		// already real).
		for l := i; l < m-1; l++ {
			phi := cmplx.Phase(w[l][i])
			if phi < 0 {
				phi += 2 * math.Pi
			}
			a.Phi = append(a.Phi, phi)
			rot := cmplx.Exp(complex(0, -phi))
			for j := i; j < n; j++ {
				w[l][j] *= rot
			}
		}
		// ψ Givens rotations zero column i below the diagonal.
		for l := i + 1; l < m; l++ {
			psi := math.Atan2(real(w[l][i]), real(w[i][i]))
			a.Psi = append(a.Psi, psi)
			c, s := complex(math.Cos(psi), 0), complex(math.Sin(psi), 0)
			for j := i; j < n; j++ {
				wi, wl := w[i][j], w[l][j]
				w[i][j] = c*wi + s*wl
				w[l][j] = -s*wi + c*wl
			}
		}
	}
	return a
}

// Reconstruct rebuilds the beamforming matrix (up to the per-column common
// phases removed in step 0) from a compressed report.
func Reconstruct(a Angles) Matrix {
	m, n := a.M, a.N
	v := NewMatrix(m, n)
	for i := 0; i < n; i++ {
		v[i][i] = 1
	}
	k := n
	if m-1 < k {
		k = m - 1
	}
	// Walk the decomposition backwards, applying inverse operations.
	phiIdx := len(a.Phi)
	psiIdx := len(a.Psi)
	for i := k - 1; i >= 0; i-- {
		nPsi := m - 1 - i
		nPhi := m - 1 - i
		psis := a.Psi[psiIdx-nPsi : psiIdx]
		psiIdx -= nPsi
		phis := a.Phi[phiIdx-nPhi : phiIdx]
		phiIdx -= nPhi
		for li := len(psis) - 1; li >= 0; li-- {
			l := i + 1 + li
			c := complex(math.Cos(psis[li]), 0)
			s := complex(math.Sin(psis[li]), 0)
			for j := 0; j < n; j++ {
				vi, vl := v[i][j], v[l][j]
				v[i][j] = c*vi - s*vl
				v[l][j] = s*vi + c*vl
			}
		}
		for li := len(phis) - 1; li >= 0; li-- {
			l := i + li
			rot := cmplx.Exp(complex(0, phis[li]))
			for j := 0; j < n; j++ {
				v[l][j] *= rot
			}
		}
	}
	return v
}
