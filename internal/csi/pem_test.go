package csi

import (
	"testing"

	"zeiot/internal/rng"
)

func TestPEMBasics(t *testing.T) {
	// Constant CSI → PEM 0; alternating large swings → PEM 1.
	flat := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	if PEM(flat, 0.1) != 0 {
		t.Fatal("flat CSI has nonzero PEM")
	}
	swing := [][]float64{{0, 0}, {1, 1}, {0, 0}}
	if PEM(swing, 0.1) != 1 {
		t.Fatal("swinging CSI PEM != 1")
	}
	if PEM(nil, 0.1) != 0 || PEM(swing[:1], 0.1) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestPEMGrowsWithCrowd(t *testing.T) {
	cfg := DefaultCrowdConfig()
	stream := rng.New(1)
	mean := func(n int) float64 {
		sum := 0.0
		for r := 0; r < 5; r++ {
			sum += PEM(SimulateCrowdCSI(cfg, n, stream.Split("m")), cfg.Threshold)
		}
		return sum / 5
	}
	empty := mean(0)
	few := mean(3)
	many := mean(12)
	if !(empty < few && few < many) {
		t.Fatalf("PEM not increasing with crowd: %v %v %v", empty, few, many)
	}
	if empty > 0.1 {
		t.Fatalf("empty-hall PEM = %v", empty)
	}
}

func TestCrowdCounterAccuracy(t *testing.T) {
	cfg := DefaultCrowdConfig()
	stream := rng.New(2)
	counter, err := CalibrateCrowd(cfg, 10, 6, stream.Split("cal"))
	if err != nil {
		t.Fatal(err)
	}
	// Exact counting saturates (single-link PEM); the reliable target is
	// the three-level congestion class.
	correct, total := 0, 0
	for n := 0; n <= 10; n += 2 {
		for trial := 0; trial < 6; trial++ {
			if counter.CountLevel(n, 3, stream.Split("eval")) == LevelForCount(n) {
				correct++
			}
			total++
		}
	}
	frac := float64(correct) / float64(total)
	if frac < 0.75 {
		t.Fatalf("level accuracy = %.2f", frac)
	}
}

func TestLevelForCount(t *testing.T) {
	cases := map[int]CrowdLevel{0: CrowdEmpty, 1: CrowdSparse, 2: CrowdSparse, 3: CrowdBusy, 10: CrowdBusy}
	for n, want := range cases {
		if got := LevelForCount(n); got != want {
			t.Fatalf("LevelForCount(%d) = %v, want %v", n, got, want)
		}
	}
	if CrowdEmpty.String() != "empty" || CrowdBusy.String() != "busy" {
		t.Fatal("level strings wrong")
	}
}

func TestCrowdCounterCurveMonotone(t *testing.T) {
	cfg := DefaultCrowdConfig()
	counter, err := CalibrateCrowd(cfg, 8, 4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	curve := counter.Curve()
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("calibration curve not monotone at %d: %v", i, curve)
		}
	}
}

func TestCalibrateCrowdValidation(t *testing.T) {
	if _, err := CalibrateCrowd(DefaultCrowdConfig(), 0, 3, rng.New(1)); err == nil {
		t.Fatal("zero people accepted")
	}
	if _, err := CalibrateCrowd(DefaultCrowdConfig(), 5, 0, rng.New(1)); err == nil {
		t.Fatal("zero runs accepted")
	}
}
