package csi

import (
	"fmt"
	"math/cmplx"
	"sort"

	"zeiot/internal/geom"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
)

// PEM computes the Percentage of nonzero Elements of ref. [29] (Electronic
// Frog Eye): the fraction of (time, subcarrier) cells whose CSI magnitude
// moved by more than threshold between consecutive snapshots. More people
// moving in the monitored area perturb more propagation paths, so PEM
// grows (and saturates) with crowd size.
func PEM(mags [][]float64, threshold float64) float64 {
	if len(mags) < 2 {
		return 0
	}
	nonzero, total := 0, 0
	for t := 1; t < len(mags); t++ {
		for s := range mags[t] {
			d := mags[t][s] - mags[t-1][s]
			if d < 0 {
				d = -d
			}
			if d > threshold {
				nonzero++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(nonzero) / float64(total)
}

// CrowdConfig parameterizes the crowd-counting simulation: a Wi-Fi link
// across a hall with people random-walking through it.
type CrowdConfig struct {
	TX, RX      geom.Point
	CenterHz    float64
	Subcarriers int
	SpacingHz   float64
	// Snapshots per measurement window and StepM the per-snapshot walk.
	Snapshots int
	StepM     float64
	// Threshold is the PEM variation threshold relative to the mean CSI
	// magnitude.
	Threshold float64
}

// DefaultCrowdConfig returns a 10×8 m hall monitored by one link.
func DefaultCrowdConfig() CrowdConfig {
	return CrowdConfig{
		TX: geom.Point{X: 0, Y: 4}, RX: geom.Point{X: 10, Y: 4},
		CenterHz: 2.437e9, Subcarriers: 52, SpacingHz: 312.5e3,
		Snapshots: 40, StepM: 0.25, Threshold: 0.6,
	}
}

// SimulateCrowdCSI produces one measurement window's CSI magnitudes
// (snapshots × subcarriers) with the given number of people walking.
func SimulateCrowdCSI(cfg CrowdConfig, people int, stream *rng.Stream) [][]float64 {
	positions := make([]geom.Point, people)
	for i := range positions {
		positions[i] = geom.Point{X: stream.Float64() * 10, Y: stream.Float64() * 8}
	}
	mags := make([][]float64, cfg.Snapshots)
	for t := 0; t < cfg.Snapshots; t++ {
		for i := range positions {
			positions[i].X = geom.Clamp(positions[i].X+stream.NormMeanStd(0, cfg.StepM), 0, 10)
			positions[i].Y = geom.Clamp(positions[i].Y+stream.NormMeanStd(0, cfg.StepM), 0, 8)
		}
		scene := radio.Scene{TX: cfg.TX, RX: cfg.RX, CenterHz: cfg.CenterHz}
		for _, p := range positions {
			scene.Scatterers = append(scene.Scatterers, radio.Scatterer{Pos: p, Reflectivity: 0.6})
		}
		resp := scene.Channel(stream).SubcarrierResponse(cfg.CenterHz, cfg.SpacingHz, cfg.Subcarriers)
		row := make([]float64, cfg.Subcarriers)
		for s, h := range resp {
			row[s] = cmplx.Abs(h)
		}
		mags[t] = row
	}
	// Normalize magnitudes so the PEM threshold is scale-free.
	mean := 0.0
	for _, row := range mags {
		for _, v := range row {
			mean += v
		}
	}
	mean /= float64(cfg.Snapshots * cfg.Subcarriers)
	if mean > 0 {
		for _, row := range mags {
			for s := range row {
				row[s] /= mean
			}
		}
	}
	return mags
}

// CrowdCounter maps PEM values to crowd counts through a monotone
// calibration curve, the estimation model of ref. [29].
type CrowdCounter struct {
	cfg CrowdConfig
	// pem[i] is the mean calibrated PEM for count i.
	pem []float64
}

// CalibrateCrowd builds the PEM→count curve from runs windows per count.
func CalibrateCrowd(cfg CrowdConfig, maxPeople, runs int, stream *rng.Stream) (*CrowdCounter, error) {
	if maxPeople < 1 || runs < 1 {
		return nil, fmt.Errorf("csi: invalid crowd calibration (%d people, %d runs)", maxPeople, runs)
	}
	c := &CrowdCounter{cfg: cfg, pem: make([]float64, maxPeople+1)}
	for n := 0; n <= maxPeople; n++ {
		sum := 0.0
		for r := 0; r < runs; r++ {
			sum += PEM(SimulateCrowdCSI(cfg, n, stream.Split(fmt.Sprintf("cal-%d-%d", n, r))), cfg.Threshold)
		}
		c.pem[n] = sum / float64(runs)
	}
	// Enforce monotonicity (pool adjacent violators) so inversion is
	// well defined even with calibration noise.
	for i := 1; i < len(c.pem); i++ {
		if c.pem[i] < c.pem[i-1] {
			avg := (c.pem[i] + c.pem[i-1]) / 2
			c.pem[i] = avg
			c.pem[i-1] = avg
		}
	}
	sort.Float64s(c.pem)
	return c, nil
}

// Curve returns the calibrated mean PEM per count.
func (c *CrowdCounter) Curve() []float64 { return c.pem }

// Estimate inverts the calibration curve: the count whose calibrated PEM
// is nearest the observed one.
func (c *CrowdCounter) Estimate(pem float64) int {
	best, bestD := 0, -1.0
	for n, v := range c.pem {
		d := pem - v
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = n, d
		}
	}
	return best
}

// Count measures windows observation windows (PEM averaged, as Frog Eye's
// longer observations do) and estimates the crowd size. windows < 1 is
// treated as 1.
func (c *CrowdCounter) Count(people, windows int, stream *rng.Stream) int {
	if windows < 1 {
		windows = 1
	}
	sum := 0.0
	for i := 0; i < windows; i++ {
		sum += PEM(SimulateCrowdCSI(c.cfg, people, stream), c.cfg.Threshold)
	}
	return c.Estimate(sum / float64(windows))
}

// CrowdLevel is the three-level congestion class a single-link PEM can
// resolve reliably: the feature saturates once a handful of people move,
// so exact counting beyond that is not physical (see EXPERIMENTS.md).
type CrowdLevel int

// Crowd levels.
const (
	CrowdEmpty CrowdLevel = iota
	CrowdSparse
	CrowdBusy
)

func (l CrowdLevel) String() string {
	switch l {
	case CrowdEmpty:
		return "empty"
	case CrowdSparse:
		return "sparse"
	case CrowdBusy:
		return "busy"
	default:
		return fmt.Sprintf("CrowdLevel(%d)", int(l))
	}
}

// LevelForCount maps a person count to its congestion level (0 / 1–2 / 3+).
func LevelForCount(n int) CrowdLevel {
	switch {
	case n == 0:
		return CrowdEmpty
	case n <= 2:
		return CrowdSparse
	default:
		return CrowdBusy
	}
}

// CountLevel measures and classifies the congestion level.
func (c *CrowdCounter) CountLevel(people, windows int, stream *rng.Stream) CrowdLevel {
	return LevelForCount(c.Count(people, windows, stream))
}
