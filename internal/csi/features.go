package csi

import (
	"fmt"

	"zeiot/internal/geom"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
)

// FeedbackConfig describes the VHT compressed beamforming geometry.
type FeedbackConfig struct {
	// TxAntennas (Nt) at the beamformer, RxAntennas (Nr) at the beamformee.
	TxAntennas, RxAntennas int
	// Nc is the number of feedback columns.
	Nc int
	// Subcarriers carried in one report.
	Subcarriers int
	// CenterHz and SpacingHz position the subcarriers.
	CenterHz, SpacingHz float64
}

// PaperFeedback returns the configuration matching ref. [8]'s 624-feature
// extraction: 4×3 feedback (12 angles) over 52 subcarriers at 5.2 GHz.
func PaperFeedback() FeedbackConfig {
	return FeedbackConfig{
		TxAntennas:  4,
		RxAntennas:  3,
		Nc:          3,
		Subcarriers: 52,
		CenterHz:    5.2e9,
		SpacingHz:   312.5e3,
	}
}

// NumFeatures returns the feature-vector length the config produces.
func (c FeedbackConfig) NumFeatures() int {
	phi, psi := NumAngles(c.TxAntennas, c.Nc)
	return (phi + psi) * c.Subcarriers
}

// Features converts per-subcarrier channel matrices (each Nr×Nt) into the
// learning system's feature vector: the φ and ψ angles of every
// subcarrier's compressed beamforming report, concatenated.
func (c FeedbackConfig) Features(channels []Matrix) ([]float64, error) {
	if len(channels) != c.Subcarriers {
		return nil, fmt.Errorf("csi: %d channel matrices, want %d", len(channels), c.Subcarriers)
	}
	var out []float64
	for k, h := range channels {
		if h.Rows() != c.RxAntennas || h.Cols() != c.TxAntennas {
			return nil, fmt.Errorf("csi: subcarrier %d channel is %dx%d, want %dx%d",
				k, h.Rows(), h.Cols(), c.RxAntennas, c.TxAntennas)
		}
		v := BeamformingV(h, c.Nc)
		a := Compress(v)
		out = append(out, a.Phi...)
		out = append(out, a.Psi...)
	}
	return out, nil
}

// SceneConfig builds the simulated room of the localization experiment:
// an AP with TxAntennas antennas, a capture client, fixed furniture
// scatterers, and a person standing or walking at one of the candidate
// positions.
type SceneConfig struct {
	Feedback FeedbackConfig
	// AP and Client are the antenna-array centres.
	AP, Client geom.Point
	// AntennaSpread is the AP antenna separation in metres: large spreads
	// model the paper's "divergent" antenna orientations, small spreads
	// the degenerate parallel case.
	AntennaSpread float64
	// ClientSpread is the client antenna separation.
	ClientSpread float64
	// Furniture are the static scatterers of the room.
	Furniture []radio.Scatterer
	// PersonReflectivity scales the person's radar cross-section (walking
	// bodies modulate the channel far more strongly than still ones).
	PersonReflectivity float64
	// MotionJitter is the per-snapshot random displacement of the person
	// in metres (within-capture micro-motion).
	MotionJitter float64
	// NoiseRel is the receiver noise floor, expressed as a fraction of the
	// direct-path amplitude, added per subcarrier and antenna pair. It is
	// what makes weakly-scattering (still) people hard to localize.
	NoiseRel float64
}

// Pattern is one behaviour × antenna-orientation combination of the
// paper's six evaluation patterns.
type Pattern struct {
	Name               string
	Walking            bool
	AntennaSpread      float64
	PersonReflectivity float64
	MotionJitter       float64
}

// PaperPatterns returns the six behaviour/orientation combinations of
// ref. [8]'s evaluation: {walking, standing} × {divergent, mixed,
// parallel} antenna orientations.
func PaperPatterns() []Pattern {
	spreads := []struct {
		name  string
		value float64
	}{
		{"divergent", 0.40},
		{"mixed", 0.12},
		{"parallel", 0.02},
	}
	var out []Pattern
	for _, sp := range spreads {
		// A walking body is a strong, constantly re-oriented scatterer
		// (high effective RCS); a still body reflects weakly. Per-frame
		// displacement stays small — one VHT capture is milliseconds —
		// so the jitter below is within-frame micro-motion, not stride
		// length.
		out = append(out,
			Pattern{Name: "walk/" + sp.name, Walking: true, AntennaSpread: sp.value, PersonReflectivity: 0.9, MotionJitter: 0.01},
			Pattern{Name: "stand/" + sp.name, Walking: false, AntennaSpread: sp.value, PersonReflectivity: 0.12, MotionJitter: 0.005},
		)
	}
	return out
}

// DefaultRoom returns a 8×6 m room with AP and client in opposite corners
// and three furniture scatterers.
func DefaultRoom(p Pattern) SceneConfig {
	return SceneConfig{
		Feedback:      PaperFeedback(),
		AP:            geom.Point{X: 0.5, Y: 0.5},
		Client:        geom.Point{X: 7.5, Y: 5.5},
		AntennaSpread: p.AntennaSpread,
		ClientSpread:  0.06,
		Furniture: []radio.Scatterer{
			{Pos: geom.Point{X: 2.0, Y: 4.5}, Reflectivity: 0.5},
			{Pos: geom.Point{X: 6.0, Y: 1.0}, Reflectivity: 0.4},
			{Pos: geom.Point{X: 4.0, Y: 3.0}, Reflectivity: 0.3},
		},
		PersonReflectivity: p.PersonReflectivity,
		MotionJitter:       p.MotionJitter,
		NoiseRel:           0.12,
	}
}

// SevenPositions returns the candidate person positions of the
// localization task.
func SevenPositions() []geom.Point {
	return []geom.Point{
		{X: 1.5, Y: 1.5}, {X: 4.0, Y: 1.0}, {X: 6.5, Y: 1.5},
		{X: 2.0, Y: 3.0}, {X: 6.0, Y: 4.0},
		{X: 1.5, Y: 5.0}, {X: 4.5, Y: 5.0},
	}
}

// Snapshot generates the per-subcarrier channel matrices for a person near
// pos, drawing motion jitter and measurement noise from stream.
func (sc SceneConfig) Snapshot(pos geom.Point, stream *rng.Stream) []Matrix {
	fb := sc.Feedback
	person := radio.Scatterer{
		Pos: geom.Point{
			X: pos.X + stream.NormMeanStd(0, sc.MotionJitter),
			Y: pos.Y + stream.NormMeanStd(0, sc.MotionJitter),
		},
		Reflectivity: sc.PersonReflectivity,
	}
	txPos := antennaLine(sc.AP, sc.AntennaSpread, fb.TxAntennas)
	rxPos := antennaLine(sc.Client, sc.ClientSpread, fb.RxAntennas)
	channels := make([]Matrix, fb.Subcarriers)
	// Build per-antenna-pair multipath channels once, then sample each
	// subcarrier frequency.
	pairs := make([][]radio.MultipathChannel, fb.RxAntennas)
	for r := 0; r < fb.RxAntennas; r++ {
		pairs[r] = make([]radio.MultipathChannel, fb.TxAntennas)
		for t := 0; t < fb.TxAntennas; t++ {
			scene := radio.Scene{
				TX:         txPos[t],
				RX:         rxPos[r],
				CenterHz:   fb.CenterHz,
				Scatterers: append(append([]radio.Scatterer(nil), sc.Furniture...), person),
			}
			pairs[r][t] = scene.Channel(stream)
		}
	}
	// Receiver noise floor, absolute: scaled to the direct-path amplitude.
	direct := radio.SpeedOfLight / fb.CenterHz / (4 * 3.141592653589793 * geom.Dist(sc.AP, sc.Client))
	sigma := sc.NoiseRel * direct
	for k := 0; k < fb.Subcarriers; k++ {
		f := fb.CenterHz + (float64(k)-float64(fb.Subcarriers-1)/2)*fb.SpacingHz
		h := NewMatrix(fb.RxAntennas, fb.TxAntennas)
		for r := 0; r < fb.RxAntennas; r++ {
			for t := 0; t < fb.TxAntennas; t++ {
				h[r][t] = pairs[r][t].FrequencyResponse(f) +
					complex(stream.NormMeanStd(0, sigma), stream.NormMeanStd(0, sigma))
			}
		}
		channels[k] = h
	}
	return channels
}

func antennaLine(center geom.Point, spread float64, n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		off := (float64(i) - float64(n-1)/2) * spread
		out[i] = geom.Point{X: center.X + off, Y: center.Y + off/2}
	}
	return out
}
