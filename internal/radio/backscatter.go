package radio

import (
	"zeiot/internal/rng"
)

// BackscatterLink models the two-segment "product channel" of an ambient
// backscatter link: carrier source → tag → receiver. The tag re-radiates a
// fraction of the incident power (its differential radar cross-section /
// modulation efficiency), so the received backscatter power is
//
//	P_rx = P_tx − PL(source→tag) − L_tag − PL(tag→rx)
//
// which falls off with the product of the two distances — the defining
// property that limits ambient backscatter range.
type BackscatterLink struct {
	// Model is the per-segment path-loss model.
	Model LogDistance
	// TagLossDB is the tag's backscatter conversion loss (modulation +
	// antenna mismatch), typically 5–15 dB for an RF-switch tag.
	TagLossDB float64
	// SourceTxDBm is the ambient carrier transmit power (e.g. 20 dBm for a
	// Wi-Fi AP, 30 dBm+ for TV towers).
	SourceTxDBm float64
}

// ReceivedDBm returns the backscattered signal power at the receiver for a
// tag at distance dSourceTag from the carrier source and dTagRx from the
// receiver. stream adds shadowing to each segment independently; nil gives
// the deterministic link budget.
func (l BackscatterLink) ReceivedDBm(dSourceTag, dTagRx float64, stream *rng.Stream) float64 {
	p := l.SourceTxDBm
	p -= l.Model.SampleLossDB(dSourceTag, stream)
	p -= l.TagLossDB
	p -= l.Model.SampleLossDB(dTagRx, stream)
	return p
}

// DirectInterferenceDBm returns the power of the un-modulated carrier
// arriving directly at the receiver — the self-interference an ambient
// backscatter receiver must reject (or cancel, for an in-band full-duplex
// AP as in the paper's Fig. 4).
func (l BackscatterLink) DirectInterferenceDBm(dSourceRx float64, stream *rng.Stream) float64 {
	return l.SourceTxDBm - l.Model.SampleLossDB(dSourceRx, stream)
}

// SNR returns the linear post-cancellation SNR of the backscatter signal.
// cancellationDB is how much of the direct carrier the receiver suppresses
// (ambient receivers exploit the rate difference; full-duplex APs actively
// cancel ~60+ dB). The residual carrier is treated as additional noise.
func (l BackscatterLink) SNR(dSourceTag, dTagRx, dSourceRx, noiseDBm, cancellationDB float64, stream *rng.Stream) float64 {
	sig := DBmToMilliwatts(l.ReceivedDBm(dSourceTag, dTagRx, stream))
	residual := DBmToMilliwatts(l.DirectInterferenceDBm(dSourceRx, stream) - cancellationDB)
	noise := DBmToMilliwatts(noiseDBm)
	return sig / (noise + residual)
}

// EnergyPerBit describes the energy cost of transmitting one bit with a
// given radio technology. Values reproduce the paper's Section I claim that
// backscatter cuts communication power by ~1/10,000 relative to
// conventional radios.
type EnergyPerBit struct {
	Tech    string
	PowerW  float64 // active power while transmitting
	BitRate float64 // bits per second
}

// JoulesPerBit returns the energy to send one bit.
func (e EnergyPerBit) JoulesPerBit() float64 { return e.PowerW / e.BitRate }

// StandardRadios returns the radio technologies compared in the paper's
// introduction: conventional Wi-Fi (~100s of mW), BLE (~mW), and ambient
// backscatter (~10 µW).
func StandardRadios() []EnergyPerBit {
	return []EnergyPerBit{
		{Tech: "wifi", PowerW: 0.5, BitRate: 6e6},
		{Tech: "zigbee", PowerW: 0.06, BitRate: 250e3},
		{Tech: "ble", PowerW: 0.01, BitRate: 1e6},
		{Tech: "backscatter", PowerW: 10e-6, BitRate: 1e6},
	}
}
