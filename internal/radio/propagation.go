// Package radio implements the RF propagation models underlying every
// zeiot simulator: log-distance path loss with lognormal shadowing,
// Rayleigh/Rician small-scale fading, thermal noise and BER curves, a
// multipath OFDM channel used for CSI generation, and the two-segment
// product channel of ambient backscatter links.
//
// Conventions: powers are dBm unless a name says milliwatts; gains and
// losses are dB; distances are metres; frequencies are Hz.
package radio

import (
	"math"

	"zeiot/internal/rng"
)

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0

// DBmToMilliwatts converts dBm to mW.
func DBmToMilliwatts(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattsToDBm converts mW to dBm.
func MilliwattsToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// FreeSpacePathLoss returns the Friis free-space loss in dB at distance d
// metres and frequency freq Hz.
func FreeSpacePathLoss(d, freq float64) float64 {
	if d <= 0 {
		d = 1e-3
	}
	lambda := SpeedOfLight / freq
	return 20 * math.Log10(4*math.Pi*d/lambda)
}

// LogDistance is the classic log-distance path-loss model with lognormal
// shadowing: PL(d) = PL(d0) + 10·n·log10(d/d0) + X_sigma.
type LogDistance struct {
	// RefLossDB is the path loss at the reference distance RefDist.
	RefLossDB float64
	// RefDist is the reference distance in metres (typically 1 m).
	RefDist float64
	// Exponent is the path-loss exponent n (2 free space, 2.5–4 indoors).
	Exponent float64
	// ShadowSigmaDB is the lognormal shadowing standard deviation; 0
	// disables shadowing.
	ShadowSigmaDB float64
}

// Indoor24GHz returns a log-distance model calibrated for 2.4 GHz indoor
// environments: 40 dB loss at 1 m, exponent 3.0, 4 dB shadowing.
func Indoor24GHz() LogDistance {
	return LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 3.0, ShadowSigmaDB: 4}
}

// PathLossDB returns the deterministic (no shadowing) loss at distance d.
func (m LogDistance) PathLossDB(d float64) float64 {
	if d < m.RefDist {
		d = m.RefDist
	}
	return m.RefLossDB + 10*m.Exponent*math.Log10(d/m.RefDist)
}

// SampleLossDB returns the loss at distance d with one shadowing draw from
// stream. A nil stream yields the deterministic loss.
func (m LogDistance) SampleLossDB(d float64, stream *rng.Stream) float64 {
	loss := m.PathLossDB(d)
	if stream != nil && m.ShadowSigmaDB > 0 {
		loss += stream.NormMeanStd(0, m.ShadowSigmaDB)
	}
	return loss
}

// RSSI returns received power in dBm for a transmit power, antenna gains,
// and one sampled loss.
func (m LogDistance) RSSI(txDBm, txGainDB, rxGainDB, d float64, stream *rng.Stream) float64 {
	return txDBm + txGainDB + rxGainDB - m.SampleLossDB(d, stream)
}

// RayleighGain draws a Rayleigh-faded power gain (linear, mean 1). The
// amplitude is |h| with h ~ CN(0,1).
func RayleighGain(stream *rng.Stream) float64 {
	re := stream.NormMeanStd(0, math.Sqrt2/2)
	im := stream.NormMeanStd(0, math.Sqrt2/2)
	return re*re + im*im
}

// RicianGain draws a Rician-faded power gain (linear, mean 1) with K-factor
// k (ratio of LoS to scattered power).
func RicianGain(k float64, stream *rng.Stream) float64 {
	if k < 0 {
		k = 0
	}
	// LoS component amplitude and scattered sigma chosen so E[gain]=1.
	los := math.Sqrt(k / (k + 1))
	sigma := math.Sqrt(1 / (2 * (k + 1)))
	re := los + stream.NormMeanStd(0, sigma)
	im := stream.NormMeanStd(0, sigma)
	return re*re + im*im
}

// ThermalNoiseDBm returns the thermal noise floor for bandwidth Hz at 290 K
// with the given receiver noise figure: -174 dBm/Hz + 10log10(B) + NF.
func ThermalNoiseDBm(bandwidthHz, noiseFigureDB float64) float64 {
	return -174 + 10*math.Log10(bandwidthHz) + noiseFigureDB
}

// qFunc is the Gaussian tail probability Q(x).
func qFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// BERBPSK returns the bit error rate of coherent BPSK at the given linear
// SNR per bit.
func BERBPSK(snr float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	return qFunc(math.Sqrt(2 * snr))
}

// BEROOK returns the bit error rate of non-coherent on-off keying (the
// modulation of ambient backscatter tags) at the given linear SNR.
func BEROOK(snr float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	return 0.5 * math.Exp(-snr/4)
}

// BERDSSS returns the effective BER of an IEEE 802.15.4-style DSSS link:
// the spreading gain (chips per bit) is applied to the SNR before a BPSK
// decision.
func BERDSSS(snr float64, spreadingGain float64) float64 {
	return BERBPSK(snr * spreadingGain)
}

// PacketErrorRate returns 1-(1-ber)^bits, the probability at least one bit
// of a bits-long packet is corrupted (no FEC).
func PacketErrorRate(ber float64, bits int) float64 {
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	return 1 - math.Pow(1-ber, float64(bits))
}

// SNRLinear converts received signal and noise powers in dBm to a linear
// SNR.
func SNRLinear(rssiDBm, noiseDBm float64) float64 {
	return math.Pow(10, (rssiDBm-noiseDBm)/10)
}
