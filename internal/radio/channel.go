package radio

import (
	"math"
	"math/cmplx"

	"zeiot/internal/geom"
	"zeiot/internal/rng"
)

// Tap is one resolvable multipath component.
type Tap struct {
	// DelaySec is the excess propagation delay in seconds.
	DelaySec float64
	// Gain is the complex amplitude of the path.
	Gain complex128
}

// MultipathChannel is a tapped-delay-line channel between one transmit
// antenna and one receive antenna. Its frequency response across OFDM
// subcarriers is what Wi-Fi CSI measures.
type MultipathChannel struct {
	Taps []Tap
}

// FrequencyResponse returns H(f) at the given absolute frequency.
func (c MultipathChannel) FrequencyResponse(freqHz float64) complex128 {
	var h complex128
	for _, t := range c.Taps {
		phase := -2 * math.Pi * freqHz * t.DelaySec
		h += t.Gain * cmplx.Exp(complex(0, phase))
	}
	return h
}

// SubcarrierResponse returns H over n subcarriers centred on centerHz with
// the given spacing (312.5 kHz for Wi-Fi).
func (c MultipathChannel) SubcarrierResponse(centerHz, spacingHz float64, n int) []complex128 {
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		f := centerHz + (float64(k)-float64(n-1)/2)*spacingHz
		out[k] = c.FrequencyResponse(f)
	}
	return out
}

// Scatterer is a reflecting object in a scene (furniture, walls, a human
// torso). Humans are scatterers whose position changes between snapshots —
// that movement is exactly what makes CSI informative about people.
type Scatterer struct {
	Pos geom.Point
	// Reflectivity is the fraction of incident amplitude re-radiated
	// (0..1).
	Reflectivity float64
}

// Scene is a 2-D radio environment: a transmitter, a receiver, and a set of
// scatterers. SceneChannel ray-traces the direct path plus one bounce off
// every scatterer into a tapped-delay-line channel.
type Scene struct {
	TX, RX     geom.Point
	CenterHz   float64
	Scatterers []Scatterer
	// LoSBlocked attenuates the direct path by 0.2 amplitude when true
	// (e.g. a person standing on the line of sight).
	LoSBlocked bool
}

// Channel builds the multipath channel for the scene. stream adds a small
// complex perturbation per tap modelling measurement noise and micro-motion;
// nil disables it.
func (s Scene) Channel(stream *rng.Stream) MultipathChannel {
	lambda := SpeedOfLight / s.CenterHz
	var taps []Tap
	addPath := func(length, amp float64) {
		if length <= 0 {
			length = 1e-3
		}
		// Amplitude rolls off as 1/d; phase by path length.
		a := amp * lambda / (4 * math.Pi * length)
		phase := -2 * math.Pi * length / lambda
		g := complex(a*math.Cos(phase), a*math.Sin(phase))
		if stream != nil {
			g += complex(stream.NormMeanStd(0, a*0.02), stream.NormMeanStd(0, a*0.02))
		}
		taps = append(taps, Tap{DelaySec: length / SpeedOfLight, Gain: g})
	}
	direct := geom.Dist(s.TX, s.RX)
	dirAmp := 1.0
	if s.LoSBlocked {
		dirAmp = 0.2
	}
	addPath(direct, dirAmp)
	for _, sc := range s.Scatterers {
		length := geom.Dist(s.TX, sc.Pos) + geom.Dist(sc.Pos, s.RX)
		addPath(length, sc.Reflectivity)
	}
	return MultipathChannel{Taps: taps}
}

// BodyAttenuationDB is the extra loss a link suffers for each human body
// intersecting its line of sight. Measurements at 2.4 GHz report 3–10 dB per
// body; we use 6 dB as the nominal value, matching the congestion
// estimators' likelihood models.
const BodyAttenuationDB = 6.0

// ObstructionLossDB counts how many of the given obstacle positions (each a
// person with the given body radius) intersect the a→b link and returns the
// total body attenuation in dB.
func ObstructionLossDB(a, b geom.Point, people []geom.Point, bodyRadius float64) float64 {
	loss := 0.0
	for _, p := range people {
		if geom.SegmentIntersectsCircle(a, b, p, bodyRadius) {
			loss += BodyAttenuationDB
		}
	}
	return loss
}
