package radio

import (
	"math"
	"math/cmplx"
	"testing"

	"zeiot/internal/geom"
	"zeiot/internal/rng"
)

func TestDBmConversionsRoundTrip(t *testing.T) {
	for _, dbm := range []float64{-90, -30, 0, 20} {
		mw := DBmToMilliwatts(dbm)
		back := MilliwattsToDBm(mw)
		if math.Abs(back-dbm) > 1e-9 {
			t.Fatalf("round trip %v -> %v", dbm, back)
		}
	}
	if DBmToMilliwatts(0) != 1 {
		t.Fatal("0 dBm != 1 mW")
	}
	if !math.IsInf(MilliwattsToDBm(0), -1) {
		t.Fatal("0 mW should be -inf dBm")
	}
}

func TestFreeSpacePathLoss(t *testing.T) {
	// At 2.4 GHz and 1 m, FSPL is about 40.05 dB.
	got := FreeSpacePathLoss(1, 2.4e9)
	if math.Abs(got-40.05) > 0.1 {
		t.Fatalf("FSPL(1m, 2.4GHz) = %v", got)
	}
	// Doubling distance adds 6.02 dB.
	if d := FreeSpacePathLoss(2, 2.4e9) - got; math.Abs(d-6.02) > 0.01 {
		t.Fatalf("doubling distance added %v dB", d)
	}
}

func TestLogDistanceMonotonic(t *testing.T) {
	m := Indoor24GHz()
	prev := math.Inf(-1)
	for d := 1.0; d <= 64; d *= 2 {
		loss := m.PathLossDB(d)
		if loss <= prev {
			t.Fatalf("loss not increasing at %v m", d)
		}
		prev = loss
	}
	// Exponent 3 → 30 dB per decade.
	if diff := m.PathLossDB(10) - m.PathLossDB(1); math.Abs(diff-30) > 1e-9 {
		t.Fatalf("per-decade loss = %v", diff)
	}
}

func TestLogDistanceBelowReference(t *testing.T) {
	m := Indoor24GHz()
	if m.PathLossDB(0.1) != m.PathLossDB(1) {
		t.Fatal("distances below reference must clamp")
	}
}

func TestShadowingStatistics(t *testing.T) {
	m := Indoor24GHz()
	s := rng.New(1)
	const n = 20000
	sum, sumSq := 0.0, 0.0
	det := m.PathLossDB(10)
	for i := 0; i < n; i++ {
		v := m.SampleLossDB(10, s) - det
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.1 {
		t.Fatalf("shadowing mean = %v", mean)
	}
	if math.Abs(std-m.ShadowSigmaDB) > 0.1 {
		t.Fatalf("shadowing std = %v, want %v", std, m.ShadowSigmaDB)
	}
}

func TestRSSIDeterministicWithoutStream(t *testing.T) {
	m := Indoor24GHz()
	a := m.RSSI(0, 2, 2, 5, nil)
	b := m.RSSI(0, 2, 2, 5, nil)
	if a != b {
		t.Fatal("nil stream RSSI not deterministic")
	}
	want := 0 + 4 - m.PathLossDB(5)
	if math.Abs(a-want) > 1e-12 {
		t.Fatalf("RSSI = %v, want %v", a, want)
	}
}

func TestFadingMeansAreUnity(t *testing.T) {
	s := rng.New(2)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += RayleighGain(s)
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("rayleigh mean gain = %v", mean)
	}
	for _, k := range []float64{0, 3, 10} {
		sum = 0
		for i := 0; i < n; i++ {
			sum += RicianGain(k, s)
		}
		if mean := sum / n; math.Abs(mean-1) > 0.02 {
			t.Fatalf("rician(k=%v) mean gain = %v", k, mean)
		}
	}
}

func TestRicianVarianceShrinksWithK(t *testing.T) {
	s := rng.New(3)
	variance := func(k float64) float64 {
		const n = 50000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := RicianGain(k, s)
			sum += v
			sumSq += v * v
		}
		m := sum / n
		return sumSq/n - m*m
	}
	if variance(10) >= variance(0.5) {
		t.Fatal("stronger LoS should reduce fading variance")
	}
}

func TestThermalNoise(t *testing.T) {
	// 20 MHz, NF 6 dB → about -95 dBm.
	got := ThermalNoiseDBm(20e6, 6)
	if math.Abs(got-(-94.99)) > 0.1 {
		t.Fatalf("noise floor = %v", got)
	}
}

func TestBERCurves(t *testing.T) {
	// All BER functions: 0.5 at zero SNR, monotone decreasing, tiny at
	// high SNR.
	curves := map[string]func(float64) float64{
		"bpsk": BERBPSK,
		"ook":  BEROOK,
		"dsss": func(snr float64) float64 { return BERDSSS(snr, 8) },
	}
	for name, f := range curves {
		if f(0) != 0.5 {
			t.Fatalf("%s BER(0) = %v", name, f(0))
		}
		prev := 0.5
		for snr := 0.5; snr < 64; snr *= 2 {
			b := f(snr)
			if b > prev {
				t.Fatalf("%s BER not monotone at snr %v", name, snr)
			}
			prev = b
		}
		if f(100) > 1e-6 {
			t.Fatalf("%s BER(100) = %v", name, f(100))
		}
	}
	// Spreading gain must help: DSSS beats plain BPSK at equal SNR.
	if BERDSSS(1, 8) >= BERBPSK(1) {
		t.Fatal("spreading gain did not reduce BER")
	}
}

func TestPacketErrorRate(t *testing.T) {
	if PacketErrorRate(0, 1000) != 0 {
		t.Fatal("PER(0) != 0")
	}
	if PacketErrorRate(1, 10) != 1 {
		t.Fatal("PER(ber=1) != 1")
	}
	per := PacketErrorRate(1e-3, 1000)
	if math.Abs(per-(1-math.Pow(0.999, 1000))) > 1e-12 {
		t.Fatalf("PER = %v", per)
	}
	if PacketErrorRate(1e-3, 100) >= per {
		t.Fatal("shorter packets must have lower PER")
	}
}

func TestMultipathFrequencySelectivity(t *testing.T) {
	// Two taps with different delays create frequency-selective fading:
	// the response must vary across subcarriers.
	ch := MultipathChannel{Taps: []Tap{
		{DelaySec: 0, Gain: 1},
		{DelaySec: 50e-9, Gain: 0.6},
	}}
	resp := ch.SubcarrierResponse(2.437e9, 312.5e3, 52)
	minMag, maxMag := math.Inf(1), math.Inf(-1)
	for _, h := range resp {
		m := cmplx.Abs(h)
		minMag = math.Min(minMag, m)
		maxMag = math.Max(maxMag, m)
	}
	if maxMag-minMag < 0.1 {
		t.Fatalf("channel not frequency selective: [%v, %v]", minMag, maxMag)
	}
}

func TestSingleTapIsFlat(t *testing.T) {
	ch := MultipathChannel{Taps: []Tap{{DelaySec: 0, Gain: complex(0.5, 0.2)}}}
	resp := ch.SubcarrierResponse(2.437e9, 312.5e3, 16)
	for _, h := range resp {
		if cmplx.Abs(h-complex(0.5, 0.2)) > 1e-12 {
			t.Fatal("zero-delay single tap should be flat across frequency")
		}
	}
}

func TestSceneChannelMovementChangesResponse(t *testing.T) {
	base := Scene{
		TX: geom.Point{X: 0, Y: 0}, RX: geom.Point{X: 5, Y: 0}, CenterHz: 2.437e9,
		Scatterers: []Scatterer{{Pos: geom.Point{X: 2, Y: 2}, Reflectivity: 0.5}},
	}
	moved := base
	moved.Scatterers = []Scatterer{{Pos: geom.Point{X: 2.5, Y: 1.5}, Reflectivity: 0.5}}
	r1 := base.Channel(nil).SubcarrierResponse(2.437e9, 312.5e3, 52)
	r2 := moved.Channel(nil).SubcarrierResponse(2.437e9, 312.5e3, 52)
	diff := 0.0
	for i := range r1 {
		diff += cmplx.Abs(r1[i] - r2[i])
	}
	if diff < 1e-6 {
		t.Fatal("moving a scatterer did not change the channel")
	}
}

func TestLoSBlockingWeakensDirectPath(t *testing.T) {
	s := Scene{TX: geom.Point{X: 0, Y: 0}, RX: geom.Point{X: 5, Y: 0}, CenterHz: 2.437e9}
	open := cmplx.Abs(s.Channel(nil).FrequencyResponse(2.437e9))
	s.LoSBlocked = true
	blocked := cmplx.Abs(s.Channel(nil).FrequencyResponse(2.437e9))
	if blocked >= open {
		t.Fatalf("blocked LoS (%v) not weaker than open (%v)", blocked, open)
	}
}

func TestObstructionLoss(t *testing.T) {
	a, b := geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 0}
	people := []geom.Point{{X: 3, Y: 0}, {X: 7, Y: 0.1}, {X: 5, Y: 5}}
	got := ObstructionLossDB(a, b, people, 0.3)
	if got != 2*BodyAttenuationDB {
		t.Fatalf("obstruction loss = %v", got)
	}
}

func TestBackscatterProductChannel(t *testing.T) {
	link := BackscatterLink{Model: LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2}, TagLossDB: 10, SourceTxDBm: 20}
	// Symmetric in the two segment distances.
	if link.ReceivedDBm(2, 8, nil) != link.ReceivedDBm(8, 2, nil) {
		t.Fatal("product channel not symmetric")
	}
	// Moving the tag away from both ends must reduce power sharply: with
	// exponent 2, doubling both distances costs 12 dB.
	near := link.ReceivedDBm(1, 1, nil)
	far := link.ReceivedDBm(2, 2, nil)
	want := 40 * math.Log10(2) // 2 segments x 20*log10(2) each
	if math.Abs((near-far)-want) > 1e-9 {
		t.Fatalf("product rolloff = %v dB, want %v", near-far, want)
	}
}

func TestBackscatterSNRImprovesWithCancellation(t *testing.T) {
	link := BackscatterLink{Model: LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2.5}, TagLossDB: 8, SourceTxDBm: 20}
	noise := ThermalNoiseDBm(2e6, 6)
	low := link.SNR(3, 3, 5, noise, 20, nil)
	high := link.SNR(3, 3, 5, noise, 80, nil)
	if high <= low {
		t.Fatal("more cancellation should raise SNR")
	}
}

func TestEnergyPerBitRatios(t *testing.T) {
	radios := StandardRadios()
	byTech := map[string]EnergyPerBit{}
	for _, r := range radios {
		byTech[r.Tech] = r
	}
	wifi := byTech["wifi"].JoulesPerBit()
	back := byTech["backscatter"].JoulesPerBit()
	ratio := wifi / back
	// Paper: backscatter cuts power ~1/10,000 vs conventional radio.
	if ratio < 1000 || ratio > 100000 {
		t.Fatalf("wifi/backscatter energy ratio = %v, want order 10^4", ratio)
	}
	ble := byTech["ble"].JoulesPerBit()
	if !(back < ble && ble < wifi) {
		t.Fatal("energy ordering backscatter < ble < wifi violated")
	}
}
