package dataset

import (
	"fmt"
	"math"

	"zeiot/internal/cnn"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// GaitConfig parameterizes the IR-sensor-array gait generator. The
// defaults reproduce the paper's second MicroDeep experiment: 55 gait
// streams from 5 subjects, each a stream of 66 frames at 5 fps over the
// film-type IR array, cut into 2-second (10-frame) windows.
type GaitConfig struct {
	// Rows, Cols are the IR pixel grid (the prototyped array of Fig. 9).
	Rows, Cols int
	// Streams is the number of gait recordings; Subjects how many
	// distinct walkers produced them (walking speed/height vary per
	// subject).
	Streams, Subjects int
	// FramesPerStream and WindowFrames follow the paper: 66 frames,
	// 10-frame windows.
	FramesPerStream, WindowFrames int
	// FallFraction of the streams contain a fall.
	FallFraction float64
	// NoiseLevel is per-pixel IR noise.
	NoiseLevel float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultGaitConfig matches the paper's recording campaign.
func DefaultGaitConfig() GaitConfig {
	return GaitConfig{
		Rows: 8, Cols: 8,
		Streams: 55, Subjects: 5,
		FramesPerStream: 66, WindowFrames: 10,
		FallFraction: 0.5,
		NoiseLevel:   0.05,
		Seed:         1,
	}
}

// minFallFrames is the minimum number of post-onset frames a window must
// show to be labelled a fall (see Windows and GenerateGaitWindow).
const minFallFrames = 3

// GaitStream is one recording with per-frame fall ground truth.
type GaitStream struct {
	// Frames[f] is the IR image at frame f, shape (Rows, Cols).
	Frames []*tensor.Tensor
	// FallAt is the frame index where the fall begins, or -1 for a normal
	// walk.
	FallAt int
	// Subject identifies the walker.
	Subject int
}

// GenerateGaitStreamsFrom simulates the recording campaign drawing every
// variate from the given stream: a warm body blob crosses the array; in
// fall streams it collapses mid-passage — dropping to the floor rows and
// spreading horizontally, the signature the real array sees. cfg.Seed is
// ignored: seeding is the caller's (the experiment harness's) business, so
// one root seed can derive this stream by name like every other generator.
func GenerateGaitStreamsFrom(cfg GaitConfig, stream *rng.Stream) ([]GaitStream, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 || cfg.Streams <= 0 || cfg.Subjects <= 0 {
		return nil, fmt.Errorf("dataset: invalid gait config %+v", cfg)
	}
	if cfg.WindowFrames > cfg.FramesPerStream {
		return nil, fmt.Errorf("dataset: window %d exceeds stream length %d", cfg.WindowFrames, cfg.FramesPerStream)
	}
	out := make([]GaitStream, 0, cfg.Streams)
	for si := 0; si < cfg.Streams; si++ {
		subject := si % cfg.Subjects
		// Subjects differ in walking speed and body height; the paper
		// notes walking speed is not uniform across persons.
		speed := (0.6 + 0.15*float64(subject)) * (0.85 + 0.3*stream.Float64())
		fallAt := -1
		if stream.Bool(cfg.FallFraction) {
			fallAt = cfg.FramesPerStream/3 + stream.Intn(cfg.FramesPerStream/3)
		}
		out = append(out, renderGaitStream(cfg, subject, speed, fallAt, cfg.FramesPerStream, stream))
	}
	return out, nil
}

// GenerateGaitStreams simulates the recording campaign seeded by cfg.Seed.
//
// Deprecated: GenerateGaitStreams is the one generator that takes its seed
// through the config struct instead of a harness-owned *rng.Stream. New
// code should call GenerateGaitStreamsFrom(cfg, stream); this shim is
// exactly GenerateGaitStreamsFrom(cfg, rng.New(cfg.Seed)).
func GenerateGaitStreams(cfg GaitConfig) ([]GaitStream, error) {
	return GenerateGaitStreamsFrom(cfg, rng.New(cfg.Seed))
}

// renderGaitStream renders one recording of frames frames: the walk
// kinematics (pacing, bounce) and — when fallAt >= 0 — the collapse, with
// per-pixel IR noise drawn from stream. The start position and pacing
// direction draws happen here, after the caller's per-stream draws, so the
// campaign path keeps its historical draw order exactly.
func renderGaitStream(cfg GaitConfig, subject int, speed float64, fallAt, frames int, stream *rng.Stream) GaitStream {
	height := 0.55 + 0.07*float64(subject%3)
	gs := GaitStream{FallAt: fallAt, Subject: subject}
	// The subject paces back and forth across the array (one passage
	// takes ~10 frames, matching the paper's 2-second window choice).
	x := stream.Float64() * float64(cfg.Cols-1)
	dir := 1.0
	if stream.Bool(0.5) {
		dir = -1
	}
	for f := 0; f < frames; f++ {
		img := tensor.New(cfg.Rows, cfg.Cols)
		bodyY := (1 - height) * float64(cfg.Rows-1)
		sigmaY, sigmaX := 1.6, 0.9
		fallen := gs.FallAt >= 0 && f >= gs.FallAt
		if fallen {
			// Collapse: centroid drops to the floor and the blob
			// spreads horizontally over ~3 frames.
			progress := math.Min(1, float64(f-gs.FallAt)/3)
			bodyY = bodyY + progress*(float64(cfg.Rows-1)-bodyY)
			sigmaY = 1.6 - progress*1.0
			sigmaX = 0.9 + progress*1.8
		} else {
			x += speed * dir
			if x >= float64(cfg.Cols-1) {
				x = float64(cfg.Cols - 1)
				dir = -1
			} else if x <= 0 {
				x = 0
				dir = 1
			}
			// Gait bounce.
			bodyY += 0.4 * math.Sin(float64(f)*1.1)
		}
		for yy := 0; yy < cfg.Rows; yy++ {
			for xx := 0; xx < cfg.Cols; xx++ {
				dy := (float64(yy) - bodyY) / sigmaY
				dx := (float64(xx) - x) / sigmaX
				heat := math.Exp(-(dy*dy + dx*dx) / 2)
				heat += stream.NormMeanStd(0, cfg.NoiseLevel)
				img.Set(heat, yy, xx)
			}
		}
		gs.Frames = append(gs.Frames, img)
	}
	return gs
}

// GenerateGaitWindow renders one labelled window directly, without the
// surrounding recording campaign — the per-sample path the unified modality
// layer uses. fall=true places the collapse onset uniformly so at least
// minFallFrames post-onset frames are visible, matching the labelling rule
// Windows applies to campaign recordings. The returned tensor is shaped
// (WindowFrames, Rows, Cols).
func GenerateGaitWindow(cfg GaitConfig, fall bool, stream *rng.Stream) *tensor.Tensor {
	subject := stream.Intn(cfg.Subjects)
	speed := (0.6 + 0.15*float64(subject)) * (0.85 + 0.3*stream.Float64())
	fallAt := -1
	if fall {
		fallAt = stream.Intn(cfg.WindowFrames - minFallFrames + 1)
	}
	gs := renderGaitStream(cfg, subject, speed, fallAt, cfg.WindowFrames, stream)
	out := tensor.New(cfg.WindowFrames, cfg.Rows, cfg.Cols)
	for f := 0; f < cfg.WindowFrames; f++ {
		dst := out.Data()[f*cfg.Rows*cfg.Cols : (f+1)*cfg.Rows*cfg.Cols]
		copy(dst, gs.Frames[f].Data())
	}
	return out
}

// Windows cuts every stream into sliding windows of cfg.WindowFrames
// frames (stride 1) and stacks each window's frames as input channels —
// the 3-D arrays the paper feeds its CNN.
//
// Labelling: a window is a fall (1) when the onset lies inside it with at
// least three post-onset frames visible; windows fully before the onset
// are walks (0). Windows where the onset enters only in the last two
// frames are ambiguous and skipped, as are post-fall windows (the subject
// lying still is the alarm state, not a walking sample).
func Windows(cfg GaitConfig, streams []GaitStream) []cnn.Sample {
	var out []cnn.Sample
	for _, gs := range streams {
		for start := 0; start+cfg.WindowFrames <= len(gs.Frames); start++ {
			label := 0
			if gs.FallAt >= 0 {
				switch {
				case start > gs.FallAt:
					continue // post-fall lying period
				case gs.FallAt <= start+cfg.WindowFrames-minFallFrames:
					label = 1
				case gs.FallAt < start+cfg.WindowFrames:
					continue // onset only grazes the window
				}
			}
			in := tensor.New(cfg.WindowFrames, cfg.Rows, cfg.Cols)
			for f := 0; f < cfg.WindowFrames; f++ {
				src := gs.Frames[start+f].Data()
				dst := in.Data()[f*cfg.Rows*cfg.Cols : (f+1)*cfg.Rows*cfg.Cols]
				copy(dst, src)
			}
			out = append(out, cnn.Sample{Input: in, Label: label})
		}
	}
	return out
}

// BalancedWindows subsamples the negative class so falls are not swamped:
// it keeps every fall window and ratio× as many walk windows, drawn
// deterministically from stream.
func BalancedWindows(cfg GaitConfig, streams []GaitStream, ratio float64, stream *rng.Stream) []cnn.Sample {
	all := Windows(cfg, streams)
	var falls, walks []cnn.Sample
	for _, s := range all {
		if s.Label == 1 {
			falls = append(falls, s)
		} else {
			walks = append(walks, s)
		}
	}
	want := int(float64(len(falls)) * ratio)
	if want > len(walks) {
		want = len(walks)
	}
	perm := stream.Perm(len(walks))
	out := append([]cnn.Sample(nil), falls...)
	for _, idx := range perm[:want] {
		out = append(out, walks[idx])
	}
	stream.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
