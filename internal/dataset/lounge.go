// Package dataset generates the synthetic stand-ins for the paper's
// proprietary measurement campaigns (see the substitution table in
// DESIGN.md): the lounge temperature field of the first MicroDeep
// experiment and the film-type IR-sensor gait streams of the second.
// Both generators are deterministic for a given seed and produce data in
// exactly the tensor shapes the paper's CNNs consume.
package dataset

import (
	"fmt"
	"math"

	"zeiot/internal/cnn"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// LoungeConfig parameterizes the thermal-field generator. The defaults
// reproduce the paper's campaign: a >1,400 m² lounge divided into 25×17
// cells, sampled every 30 minutes for 2,961 samples (Aug 26–Oct 27 2016),
// labelled comfortable/uncomfortable.
type LoungeConfig struct {
	// Rows, Cols are the cell grid dimensions.
	Rows, Cols int
	// Samples is the number of snapshots to generate.
	Samples int
	// EventProb is the per-snapshot probability of a thermal discomfort
	// event (a failing AC zone or sun-heated window region).
	EventProb float64
	// NoiseC is the per-cell sensor noise in °C.
	NoiseC float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultLoungeConfig matches the paper's campaign dimensions.
func DefaultLoungeConfig() LoungeConfig {
	return LoungeConfig{Rows: 17, Cols: 25, Samples: 2961, EventProb: 0.5, NoiseC: 0.25, Seed: 1}
}

// GenerateLoungeFrom produces labelled temperature snapshots drawing every
// variate from the given stream. Label 1 means discomfort: the snapshot
// contains a thermal anomaly region (≥ 3 °C deviation blob) on top of the
// diurnal/seasonal base field. The CNN's job — like the paper's — is to
// recognize the spatial anomaly pattern through the confounding smooth
// background variation. cfg.Seed is ignored: seeding is the caller's (the
// experiment harness's) business, so one root seed can derive this stream
// by name like every other generator.
func GenerateLoungeFrom(cfg LoungeConfig, stream *rng.Stream) ([]cnn.Sample, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 || cfg.Samples <= 0 {
		return nil, fmt.Errorf("dataset: invalid lounge config %+v", cfg)
	}
	samples := make([]cnn.Sample, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		label := 0
		var event blob
		if stream.Bool(cfg.EventProb) {
			label = 1
			event = drawLoungeEvent(cfg, stream)
		}
		field := renderLoungeSnapshot(cfg, i, label, event, stream)
		samples = append(samples, cnn.Sample{Input: field, Label: label})
	}
	return samples, nil
}

// GenerateLounge produces labelled temperature snapshots seeded by
// cfg.Seed.
//
// Deprecated: GenerateLounge is the one generator besides the gait
// campaign that takes its seed through the config struct instead of a
// harness-owned *rng.Stream. New code should call GenerateLoungeFrom(cfg,
// stream); this shim is exactly GenerateLoungeFrom(cfg, rng.New(cfg.Seed)).
func GenerateLounge(cfg LoungeConfig) ([]cnn.Sample, error) {
	return GenerateLoungeFrom(cfg, rng.New(cfg.Seed))
}

// drawLoungeEvent draws one thermal anomaly: a hot or cold blob of 3–6 °C
// placed uniformly over the field.
func drawLoungeEvent(cfg LoungeConfig, stream *rng.Stream) blob {
	event := blob{
		y:     stream.Float64() * float64(cfg.Rows-1),
		x:     stream.Float64() * float64(cfg.Cols-1),
		sigma: 1.5 + stream.Float64()*2,
	}
	// Hot or cold anomaly, 3–6 °C.
	event.amp = 3 + stream.Float64()*3
	if stream.Bool(0.5) {
		event.amp = -event.amp
	}
	return event
}

// renderLoungeSnapshot renders campaign sample i: the diurnal/seasonal base
// field, the fixed building features, the anomaly blob when label is 1, and
// per-cell sensor noise drawn from stream, standardized in place.
func renderLoungeSnapshot(cfg LoungeConfig, i, label int, event blob, stream *rng.Stream) *tensor.Tensor {
	// Fixed building features: a window strip along one edge and two AC
	// vents, so the background has realistic persistent structure.
	ventA := blob{y: float64(cfg.Rows) * 0.25, x: float64(cfg.Cols) * 0.3, sigma: 4}
	ventB := blob{y: float64(cfg.Rows) * 0.75, x: float64(cfg.Cols) * 0.7, sigma: 4}
	// 48 half-hour samples per day; a smooth diurnal swing plus a slow
	// seasonal cool-down across the campaign.
	day := float64(i) / 48
	hour := math.Mod(float64(i), 48) / 2
	base := 24 + 2.5*math.Sin((hour-14)/24*2*math.Pi) - 2.5*day/62
	acStrength := 0.5 + 0.2*math.Sin(day/7*2*math.Pi)

	field := tensor.New(1, cfg.Rows, cfg.Cols)
	for y := 0; y < cfg.Rows; y++ {
		for x := 0; x < cfg.Cols; x++ {
			t := base
			// Window edge (x = 0) warms with the sun at midday.
			t += 0.5 * math.Exp(-float64(x)/3) * math.Max(0, math.Sin((hour-13)/24*2*math.Pi))
			t -= acStrength * ventA.at(y, x)
			t -= acStrength * ventB.at(y, x)
			if label == 1 {
				t += event.amp * event.at(y, x)
			}
			t += stream.NormMeanStd(0, cfg.NoiseC)
			field.Set(t, 0, y, x)
		}
	}
	normalizeField(field)
	return field
}

// GenerateLoungeSnapshot renders one labelled snapshot at a stream-drawn
// campaign time — the per-sample path the unified modality layer uses. The
// returned tensor is shaped (1, Rows, Cols).
func GenerateLoungeSnapshot(cfg LoungeConfig, discomfort bool, stream *rng.Stream) *tensor.Tensor {
	i := stream.Intn(cfg.Samples)
	label := 0
	var event blob
	if discomfort {
		label = 1
		event = drawLoungeEvent(cfg, stream)
	}
	return renderLoungeSnapshot(cfg, i, label, event, stream)
}

type blob struct {
	y, x, sigma, amp float64
}

func (b blob) at(y, x int) float64 {
	dy := float64(y) - b.y
	dx := float64(x) - b.x
	return math.Exp(-(dy*dy + dx*dx) / (2 * b.sigma * b.sigma))
}

// normalizeField standardizes one snapshot in place (zero mean, unit
// variance) — each sensor node can do this locally from the broadcast mean,
// and it removes the uninformative base temperature.
func normalizeField(t *tensor.Tensor) {
	data := t.Data()
	mean := 0.0
	for _, v := range data {
		mean += v
	}
	mean /= float64(len(data))
	variance := 0.0
	for _, v := range data {
		variance += (v - mean) * (v - mean)
	}
	std := math.Sqrt(variance/float64(len(data))) + 1e-9
	for i, v := range data {
		data[i] = (v - mean) / std
	}
}
