package dataset

import (
	"math"
	"testing"

	"zeiot/internal/cnn"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

func TestLoungeDimensionsMatchPaper(t *testing.T) {
	cfg := DefaultLoungeConfig()
	samples, err := GenerateLounge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2961 {
		t.Fatalf("samples = %d, want 2961", len(samples))
	}
	shape := samples[0].Input.Shape()
	if shape[0] != 1 || shape[1] != 17 || shape[2] != 25 {
		t.Fatalf("snapshot shape = %v, want (1,17,25)", shape)
	}
}

func TestLoungeLabelsBalancedAndBinary(t *testing.T) {
	cfg := DefaultLoungeConfig()
	cfg.Samples = 600
	samples, err := GenerateLounge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, s := range samples {
		if s.Label != 0 && s.Label != 1 {
			t.Fatalf("label = %d", s.Label)
		}
		ones += s.Label
	}
	frac := float64(ones) / float64(len(samples))
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("positive fraction = %.3f", frac)
	}
}

func TestLoungeFieldsNormalized(t *testing.T) {
	cfg := DefaultLoungeConfig()
	cfg.Samples = 10
	samples, err := GenerateLounge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if m := s.Input.Mean(); math.Abs(m) > 1e-6 {
			t.Fatalf("field mean = %v", m)
		}
	}
}

func TestLoungeDeterministicBySeed(t *testing.T) {
	cfg := DefaultLoungeConfig()
	cfg.Samples = 20
	a, err := GenerateLounge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateLounge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Label != b[i].Label || !tensor.Equal(a[i].Input, b[i].Input, 0) {
			t.Fatal("same seed produced different lounge data")
		}
	}
	cfg.Seed = 2
	c, err := GenerateLounge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if !tensor.Equal(a[i].Input, c[i].Input, 1e-12) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical lounge data")
	}
}

func TestLoungeValidation(t *testing.T) {
	cfg := DefaultLoungeConfig()
	cfg.Rows = 0
	if _, err := GenerateLounge(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestLoungeLearnable(t *testing.T) {
	// A small CNN must beat chance clearly on the generated data —
	// otherwise the substitution would not exercise the paper's task.
	cfg := DefaultLoungeConfig()
	cfg.Samples = 400
	samples, err := GenerateLounge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(7)
	net := cnn.NewNetwork([]int{1, 17, 25},
		cnn.NewConv2D(1, 4, 3, 3, 1, 1, s.Split("c")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(3, 3),
		cnn.NewFlatten(),
		cnn.NewDense(4*5*8, 2, s.Split("d")),
	)
	train, test := samples[:320], samples[320:]
	net.Fit(train, 8, 16, cnn.NewSGD(0.03, 0.9), s.Split("fit"))
	if acc := net.Evaluate(test); acc < 0.8 {
		t.Fatalf("lounge test accuracy = %.3f, want >= 0.8", acc)
	}
}

func TestGaitStreamDimensions(t *testing.T) {
	cfg := DefaultGaitConfig()
	streams, err := GenerateGaitStreams(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 55 {
		t.Fatalf("streams = %d, want 55", len(streams))
	}
	subjects := map[int]bool{}
	for _, gs := range streams {
		if len(gs.Frames) != 66 {
			t.Fatalf("frames = %d, want 66", len(gs.Frames))
		}
		subjects[gs.Subject] = true
		sh := gs.Frames[0].Shape()
		if sh[0] != 8 || sh[1] != 8 {
			t.Fatalf("frame shape = %v", sh)
		}
	}
	if len(subjects) != 5 {
		t.Fatalf("subjects = %d, want 5", len(subjects))
	}
}

func TestWindowsCountAndLabels(t *testing.T) {
	cfg := DefaultGaitConfig()
	streams, err := GenerateGaitStreams(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wins := Windows(cfg, streams)
	shape := wins[0].Input.Shape()
	if shape[0] != 10 || shape[1] != 8 || shape[2] != 8 {
		t.Fatalf("window shape = %v", shape)
	}
	// Expected counts per the labelling rule: walk streams contribute all
	// 57 windows; fall streams contribute FallAt+1 windows minus the two
	// ambiguous onset-grazing ones, exactly 8 of them labelled fall.
	wantTotal, wantFalls := 0, 0
	for _, gs := range streams {
		if gs.FallAt < 0 {
			wantTotal += 57
			continue
		}
		wantTotal += gs.FallAt + 1 - 2
		wantFalls += 8
	}
	gotFalls := 0
	for _, w := range wins {
		gotFalls += w.Label
	}
	if len(wins) != wantTotal {
		t.Fatalf("windows = %d, want %d", len(wins), wantTotal)
	}
	if gotFalls != wantFalls {
		t.Fatalf("fall windows = %d, want %d", gotFalls, wantFalls)
	}
}

func TestFallChangesFrames(t *testing.T) {
	cfg := DefaultGaitConfig()
	cfg.NoiseLevel = 0
	streams, err := GenerateGaitStreams(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fall *GaitStream
	for i := range streams {
		if streams[i].FallAt > 5 && streams[i].FallAt < 55 {
			fall = &streams[i]
			break
		}
	}
	if fall == nil {
		t.Skip("no suitable fall stream in this seed")
	}
	// After the fall completes, the heat centroid must be near the floor.
	post := fall.Frames[fall.FallAt+5]
	rows := post.Dim(0)
	centroid, total := 0.0, 0.0
	for y := 0; y < rows; y++ {
		for x := 0; x < post.Dim(1); x++ {
			v := post.At(y, x)
			centroid += v * float64(y)
			total += v
		}
	}
	centroid /= total
	if centroid < float64(rows)*0.6 {
		t.Fatalf("post-fall centroid at row %.2f of %d, want near floor", centroid, rows)
	}
}

func TestBalancedWindows(t *testing.T) {
	cfg := DefaultGaitConfig()
	streams, err := GenerateGaitStreams(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bal := BalancedWindows(cfg, streams, 1.0, rng.New(3))
	falls, walks := 0, 0
	for _, s := range bal {
		if s.Label == 1 {
			falls++
		} else {
			walks++
		}
	}
	if falls == 0 || walks != falls {
		t.Fatalf("balance: %d falls, %d walks", falls, walks)
	}
}

func TestGaitValidation(t *testing.T) {
	cfg := DefaultGaitConfig()
	cfg.WindowFrames = 100
	if _, err := GenerateGaitStreams(cfg); err == nil {
		t.Fatal("window longer than stream accepted")
	}
	cfg = DefaultGaitConfig()
	cfg.Streams = 0
	if _, err := GenerateGaitStreams(cfg); err == nil {
		t.Fatal("zero streams accepted")
	}
}

func TestGaitLearnable(t *testing.T) {
	// The paper's CNN (1 conv + 1 pool + 2 FC) must detect falls well
	// above chance on the synthetic streams.
	cfg := DefaultGaitConfig()
	cfg.Streams = 30
	streams, err := GenerateGaitStreams(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(5)
	samples := BalancedWindows(cfg, streams, 1.0, s.Split("bal"))
	net := cnn.NewNetwork([]int{10, 8, 8},
		cnn.NewConv2D(10, 6, 3, 3, 1, 1, s.Split("c")),
		cnn.NewReLU(),
		cnn.NewMaxPool2D(2, 2),
		cnn.NewFlatten(),
		cnn.NewDense(6*4*4, 16, s.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(16, 2, s.Split("d2")),
	)
	cut := len(samples) * 3 / 4
	net.Fit(samples[:cut], 10, 16, cnn.NewSGD(0.03, 0.9), s.Split("fit"))
	if acc := net.Evaluate(samples[cut:]); acc < 0.85 {
		t.Fatalf("fall detection accuracy = %.3f", acc)
	}
}
