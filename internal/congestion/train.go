// Package congestion implements the paper's two RSSI-based congestion
// estimators (§IV.B): car-level positioning and three-level congestion
// estimation for railway trips from Bluetooth RSSI among smartphones
// (ref. [65]), and room-scale people counting from the synchronized
// inter-node and surrounding RSSI of an already-deployed IEEE 802.15.4
// sensor network (ref. [66]).
package congestion

import (
	"fmt"
	"math"

	"zeiot/internal/geom"
	"zeiot/internal/ml"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
)

// Level is a three-level congestion class.
type Level int

// Congestion levels.
const (
	LevelLow Level = iota
	LevelMedium
	LevelHigh
)

func (l Level) String() string {
	switch l {
	case LevelLow:
		return "low"
	case LevelMedium:
		return "medium"
	case LevelHigh:
		return "high"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// TrainConfig describes the train geometry and radio environment.
type TrainConfig struct {
	// Cars is the number of cars; CarLength/CarWidth their size in metres.
	Cars      int
	CarLength float64
	CarWidth  float64
	// DoorLossDB is the attenuation added per inter-car door a link
	// crosses — the signal feature that makes car-level positioning work.
	DoorLossDB float64
	// Model is the in-car propagation model; PhoneTxDBm the Bluetooth
	// transmit power of phones and reference nodes.
	Model      radio.LogDistance
	PhoneTxDBm float64
	// BodyRadius models passengers as attenuating cylinders.
	BodyRadius float64
	// MediumAt and HighAt are the per-car passenger counts where
	// congestion becomes medium and high.
	MediumAt, HighAt int
}

// DefaultTrainConfig returns a six-car commuter train.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Cars:       6,
		CarLength:  20,
		CarWidth:   3,
		DoorLossDB: 14,
		Model:      radio.LogDistance{RefLossDB: 45, RefDist: 1, Exponent: 2.2, ShadowSigmaDB: 3.5},
		PhoneTxDBm: 0,
		BodyRadius: 0.35,
		MediumAt:   12,
		HighAt:     28,
	}
}

// LevelFor returns the congestion level for a per-car passenger count.
func (c TrainConfig) LevelFor(count int) Level {
	switch {
	case count >= c.HighAt:
		return LevelHigh
	case count >= c.MediumAt:
		return LevelMedium
	default:
		return LevelLow
	}
}

// refPos returns the reference node position of car i (ceiling centre).
func (c TrainConfig) refPos(car int) geom.Point {
	return geom.Point{X: (float64(car) + 0.5) * c.CarLength, Y: c.CarWidth / 2}
}

// Scenario is one train snapshot with ground truth.
type Scenario struct {
	Config TrainConfig
	// Users holds every phone-carrying passenger's true position; Car is
	// derived ground truth.
	Users []geom.Point
	Car   []int
}

// Generate creates a scenario with the given passenger count per car,
// placing passengers uniformly inside their car.
func Generate(cfg TrainConfig, perCar []int, stream *rng.Stream) (Scenario, error) {
	if len(perCar) != cfg.Cars {
		return Scenario{}, fmt.Errorf("congestion: %d car counts for %d cars", len(perCar), cfg.Cars)
	}
	s := Scenario{Config: cfg}
	for car, n := range perCar {
		for i := 0; i < n; i++ {
			p := geom.Point{
				X: (float64(car) + stream.Float64()) * cfg.CarLength,
				Y: stream.Float64() * cfg.CarWidth,
			}
			s.Users = append(s.Users, p)
			s.Car = append(s.Car, car)
		}
	}
	return s, nil
}

// Measurements holds one RSSI sweep of a scenario.
type Measurements struct {
	// UserRef[u][r] is user u's RSSI from car r's reference node, dBm.
	UserRef [][]float64
	// PeerCount[u] is the number of peers heard above the audibility
	// threshold; PeerMean[u] the mean RSSI of those peers; StrongPeers[u]
	// the count above the strong threshold (almost surely same-car);
	// BestRef[u] the strongest reference-node RSSI (crowding attenuates
	// it).
	PeerCount   []int
	PeerMean    []float64
	StrongPeers []int
	BestRef     []float64
}

// audibleDBm is the Bluetooth scan sensitivity; strongDBm marks peers
// close enough to almost surely share the car.
const (
	audibleDBm = -90
	strongDBm  = -72
)

// linkRSSI computes one link's RSSI including door and body losses.
func linkRSSI(cfg TrainConfig, a, b geom.Point, people []geom.Point, stream *rng.Stream) float64 {
	d := geom.Dist(a, b)
	rssi := cfg.Model.RSSI(cfg.PhoneTxDBm, 0, 0, d, stream)
	doors := int(math.Abs(float64(cfg.carOfX(a.X) - cfg.carOfX(b.X))))
	rssi -= float64(doors) * cfg.DoorLossDB
	rssi -= radio.ObstructionLossDB(a, b, people, cfg.BodyRadius)
	return rssi
}

func (c TrainConfig) carOfX(x float64) int {
	return geom.ClampInt(int(x/c.CarLength), 0, c.Cars-1)
}

// Measure performs one synchronized RSSI sweep over a scenario.
func Measure(s Scenario, stream *rng.Stream) Measurements {
	cfg := s.Config
	m := Measurements{
		UserRef:     make([][]float64, len(s.Users)),
		PeerCount:   make([]int, len(s.Users)),
		PeerMean:    make([]float64, len(s.Users)),
		StrongPeers: make([]int, len(s.Users)),
		BestRef:     make([]float64, len(s.Users)),
	}
	for u, up := range s.Users {
		m.UserRef[u] = make([]float64, cfg.Cars)
		for r := 0; r < cfg.Cars; r++ {
			m.UserRef[u][r] = linkRSSI(cfg, up, cfg.refPos(r), s.Users, stream)
		}
	}
	for u, up := range s.Users {
		sum, n, strong := 0.0, 0, 0
		for v, vp := range s.Users {
			if u == v {
				continue
			}
			rssi := linkRSSI(cfg, up, vp, s.Users, stream)
			if rssi >= audibleDBm {
				sum += rssi
				n++
			}
			if rssi >= strongDBm {
				strong++
			}
		}
		m.PeerCount[u] = n
		m.StrongPeers[u] = strong
		if n > 0 {
			m.PeerMean[u] = sum / float64(n)
		} else {
			m.PeerMean[u] = audibleDBm
		}
		best := audibleDBm * 2.0
		for _, v := range m.UserRef[u] {
			if v > best {
				best = v
			}
		}
		m.BestRef[u] = best
	}
	return m
}

// Estimator holds the likelihood models of ref. [65], built from
// calibration scenarios ("preliminary experiments" in the paper).
type Estimator struct {
	cfg TrainConfig
	// mu[c][r], sigma[c][r]: Gaussian likelihood of the RSSI from
	// reference r observed by a user in car c.
	mu, sigma [][]float64
	// level is the per-user congestion classifier over
	// (peerCount, peerMean) features.
	level ml.Classifier
}

// Calibrate builds an estimator by simulating calibration rides across
// congestion levels.
func Calibrate(cfg TrainConfig, rides int, stream *rng.Stream) (*Estimator, error) {
	if rides < 4 {
		return nil, fmt.Errorf("congestion: need at least 4 calibration rides, got %d", rides)
	}
	e := &Estimator{cfg: cfg}
	sums := make([][]float64, cfg.Cars)
	sqs := make([][]float64, cfg.Cars)
	counts := make([][]int, cfg.Cars)
	for c := range sums {
		sums[c] = make([]float64, cfg.Cars)
		sqs[c] = make([]float64, cfg.Cars)
		counts[c] = make([]int, cfg.Cars)
	}
	var levelData ml.Dataset
	for ride := 0; ride < rides; ride++ {
		perCar := make([]int, cfg.Cars)
		for c := range perCar {
			switch stream.Intn(3) {
			case 0:
				perCar[c] = 2 + stream.Intn(cfg.MediumAt-2)
			case 1:
				perCar[c] = cfg.MediumAt + stream.Intn(cfg.HighAt-cfg.MediumAt)
			default:
				perCar[c] = cfg.HighAt + stream.Intn(cfg.HighAt)
			}
		}
		sc, err := Generate(cfg, perCar, stream)
		if err != nil {
			return nil, err
		}
		meas := Measure(sc, stream)
		for u, car := range sc.Car {
			for r := 0; r < cfg.Cars; r++ {
				v := meas.UserRef[u][r]
				sums[car][r] += v
				sqs[car][r] += v * v
				counts[car][r]++
			}
			levelData.X = append(levelData.X, levelFeatures(meas, u))
			levelData.Y = append(levelData.Y, int(cfg.LevelFor(perCar[car])))
		}
	}
	e.mu = make([][]float64, cfg.Cars)
	e.sigma = make([][]float64, cfg.Cars)
	for c := 0; c < cfg.Cars; c++ {
		e.mu[c] = make([]float64, cfg.Cars)
		e.sigma[c] = make([]float64, cfg.Cars)
		for r := 0; r < cfg.Cars; r++ {
			n := float64(counts[c][r])
			mean := sums[c][r] / n
			variance := sqs[c][r]/n - mean*mean
			e.mu[c][r] = mean
			e.sigma[c][r] = math.Sqrt(math.Max(variance, 1))
		}
	}
	clf, err := ml.GaussianNB{}.Fit(levelData)
	if err != nil {
		return nil, fmt.Errorf("congestion: fitting level model: %w", err)
	}
	e.level = clf
	return e, nil
}

// Positions estimates each user's car and a reliability weight (the
// posterior probability of the chosen car).
func (e *Estimator) Positions(m Measurements) (cars []int, reliability []float64) {
	nUsers := len(m.UserRef)
	cars = make([]int, nUsers)
	reliability = make([]float64, nUsers)
	for u := 0; u < nUsers; u++ {
		logp := make([]float64, e.cfg.Cars)
		for c := 0; c < e.cfg.Cars; c++ {
			ll := 0.0
			for r := 0; r < e.cfg.Cars; r++ {
				dv := m.UserRef[u][r] - e.mu[c][r]
				s := e.sigma[c][r]
				ll += -0.5*math.Log(2*math.Pi*s*s) - dv*dv/(2*s*s)
			}
			logp[c] = ll
		}
		// Softmax over cars for the posterior.
		maxLL := math.Inf(-1)
		for _, v := range logp {
			maxLL = math.Max(maxLL, v)
		}
		sum := 0.0
		for i, v := range logp {
			logp[i] = math.Exp(v - maxLL)
			sum += logp[i]
		}
		best, bestP := 0, -1.0
		for c, v := range logp {
			p := v / sum
			if p > bestP {
				best, bestP = c, p
			}
		}
		cars[u] = best
		reliability[u] = bestP
	}
	return cars, reliability
}

// CarCongestion estimates each car's congestion level by majority voting of
// per-user estimates, weighted by positioning reliability — the method of
// ref. [65]. Cars with no assigned users report LevelLow.
func (e *Estimator) CarCongestion(m Measurements, cars []int, reliability []float64) []Level {
	votes := make([][3]float64, e.cfg.Cars)
	for u := range m.PeerCount {
		lvl := e.level.Predict(levelFeatures(m, u))
		if lvl < 0 || lvl > 2 {
			continue
		}
		votes[cars[u]][lvl] += reliability[u]
	}
	out := make([]Level, e.cfg.Cars)
	for c := range votes {
		best, bestW := LevelLow, 0.0
		for lvl, w := range votes[c] {
			if w > bestW {
				best, bestW = Level(lvl), w
			}
		}
		out[c] = best
	}
	return out
}

// levelFeatures builds the per-user congestion feature vector.
func levelFeatures(m Measurements, u int) []float64 {
	return []float64{
		float64(m.PeerCount[u]),
		m.PeerMean[u],
		float64(m.StrongPeers[u]),
		m.BestRef[u],
	}
}
