package congestion

import (
	"fmt"

	"zeiot/internal/geom"
	"zeiot/internal/ml"
	"zeiot/internal/radio"
	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

// RoomConfig describes the already-deployed IEEE 802.15.4 WSN of ref. [66]
// and the room it monitors.
type RoomConfig struct {
	// Rows, Cols, Spacing lay out the sensor grid.
	Rows, Cols int
	Spacing    float64
	// Model is the propagation model; NodeTxDBm the sensor transmit
	// power; PhoneTxDBm the power of the Wi-Fi devices people carry.
	Model      radio.LogDistance
	NodeTxDBm  float64
	PhoneTxDBm float64
	// BodyRadius models people as attenuating cylinders on sensor links.
	BodyRadius float64
	// MaxPeople bounds the counting range.
	MaxPeople int
	// NoiseDBm is the surrounding-RSSI noise floor.
	NoiseDBm float64
	// Sweeps is the number of synchronized measurement rounds averaged
	// into one sample (Choco's simultaneous transmissions make repeated
	// sweeps cheap; averaging suppresses shadowing noise).
	Sweeps int
	// Mode selects which measurements feed the estimator. Ref. [66]
	// estimates the number of PEOPLE from the inter-node RSSI (bodies
	// block links) and the number of DEVICES from the surrounding RSSI
	// (phones add power); fusing both is this repository's default.
	Mode RoomFeatureMode
}

// RoomFeatureMode selects the measurement subset.
type RoomFeatureMode int

// Feature modes.
const (
	// RoomFused uses both measurement kinds (default).
	RoomFused RoomFeatureMode = iota
	// RoomLinksOnly uses inter-node RSSI attenuation only — the paper's
	// people counter.
	RoomLinksOnly
	// RoomSurroundingOnly uses surrounding RSSI only — the paper's
	// device counter.
	RoomSurroundingOnly
)

// DefaultRoomConfig returns the laboratory-scale deployment of ref. [66]:
// a 4×4 grid at 2 m spacing counting up to 10 people.
func DefaultRoomConfig() RoomConfig {
	return RoomConfig{
		Rows: 4, Cols: 4, Spacing: 2,
		Model:      radio.LogDistance{RefLossDB: 40, RefDist: 1, Exponent: 2.8, ShadowSigmaDB: 2.5},
		NodeTxDBm:  0,
		PhoneTxDBm: 5,
		BodyRadius: 0.3,
		MaxPeople:  10,
		NoiseDBm:   -95,
		Sweeps:     5,
	}
}

// RoomSample is one synchronized measurement sweep with ground truth.
type RoomSample struct {
	People   int
	Features []float64
}

// roomFeatures condenses cfg.Sweeps synchronized rounds into the
// estimator's feature vector: mean and variance of inter-node RSSI
// attenuation relative to the empty-room expectation (people block links),
// the fraction of links attenuated by more than half a body loss, the mean
// surrounding RSSI in dBm, and the mean surrounding power in linear µW —
// device power adds linearly per phone, making the linear feature nearly
// proportional to the device count.
func roomFeatures(cfg RoomConfig, net *wsn.Network, people []geom.Point, stream *rng.Stream) []float64 {
	sweeps := cfg.Sweeps
	if sweeps < 1 {
		sweeps = 1
	}
	acc := make([]float64, 5)
	for sweep := 0; sweep < sweeps; sweep++ {
		links := net.MeasureInterNode(cfg.Model, cfg.NodeTxDBm, people, cfg.BodyRadius, stream)
		meanAtt, varAtt, blocked := 0.0, 0.0, 0.0
		for _, l := range links {
			expect := cfg.Model.RSSI(cfg.NodeTxDBm, 0, 0, geom.Dist(net.Node(l.From).Pos, net.Node(l.To).Pos), nil)
			att := expect - l.DBm
			meanAtt += att
			varAtt += att * att
			if att > radio.BodyAttenuationDB/2 {
				blocked++
			}
		}
		n := float64(len(links))
		if n > 0 {
			meanAtt /= n
			varAtt = varAtt/n - meanAtt*meanAtt
			blocked /= n
		}
		sur := net.MeasureSurrounding(cfg.Model, cfg.PhoneTxDBm, people, cfg.NoiseDBm, stream)
		meanSur, meanPowerUW := 0.0, 0.0
		for _, v := range sur {
			meanSur += v
			meanPowerUW += radio.DBmToMilliwatts(v) * 1000
		}
		if len(sur) > 0 {
			meanSur /= float64(len(sur))
			meanPowerUW /= float64(len(sur))
		}
		acc[0] += meanAtt
		acc[1] += varAtt
		acc[2] += blocked
		acc[3] += meanSur
		acc[4] += meanPowerUW
	}
	for i := range acc {
		acc[i] /= float64(sweeps)
	}
	switch cfg.Mode {
	case RoomLinksOnly:
		return acc[:3:3]
	case RoomSurroundingOnly:
		return acc[3:5:5]
	default:
		return acc
	}
}

// GenerateRoomSample draws nPeople uniform positions and measures one
// sweep.
func GenerateRoomSample(cfg RoomConfig, net *wsn.Network, nPeople int, stream *rng.Stream) RoomSample {
	people := make([]geom.Point, nPeople)
	w := float64(cfg.Cols-1) * cfg.Spacing
	h := float64(cfg.Rows-1) * cfg.Spacing
	for i := range people {
		people[i] = geom.Point{X: stream.Float64() * w, Y: stream.Float64() * h}
	}
	return RoomSample{People: nPeople, Features: roomFeatures(cfg, net, people, stream)}
}

// RoomEstimator counts people from synchronized RSSI sweeps.
type RoomEstimator struct {
	cfg RoomConfig
	net *wsn.Network
	std *ml.Standardizer
	clf ml.Classifier
}

// TrainRoomEstimator builds the counting model from samplesPerCount
// simulated sweeps at every occupancy 0..MaxPeople.
func TrainRoomEstimator(cfg RoomConfig, samplesPerCount int, stream *rng.Stream) (*RoomEstimator, error) {
	if samplesPerCount < 2 {
		return nil, fmt.Errorf("congestion: need >= 2 samples per count, got %d", samplesPerCount)
	}
	net := wsn.NewGrid(cfg.Rows, cfg.Cols, cfg.Spacing)
	var data ml.Dataset
	for n := 0; n <= cfg.MaxPeople; n++ {
		for i := 0; i < samplesPerCount; i++ {
			s := GenerateRoomSample(cfg, net, n, stream)
			data.X = append(data.X, s.Features)
			data.Y = append(data.Y, s.People)
		}
	}
	std := ml.FitStandardizer(data)
	clf, err := ml.KNN{K: 5}.Fit(std.Apply(data))
	if err != nil {
		return nil, fmt.Errorf("congestion: fitting room model: %w", err)
	}
	return &RoomEstimator{cfg: cfg, net: net, std: std, clf: clf}, nil
}

// Network returns the estimator's sensor network (useful for generating
// test sweeps on the identical deployment).
func (e *RoomEstimator) Network() *wsn.Network { return e.net }

// Count estimates the number of people from a feature vector.
func (e *RoomEstimator) Count(features []float64) int {
	one := ml.Dataset{X: [][]float64{features}, Y: []int{0}}
	return e.clf.Predict(e.std.Apply(one).X[0])
}

// RoomResult summarizes an evaluation of the counting estimator.
type RoomResult struct {
	Exact    float64 // fraction with zero error
	Within2  float64 // fraction with |error| <= 2 (the paper's bound)
	MeanAbs  float64
	MaxError int
}

// EvaluateRoom scores the estimator over trials fresh sweeps per count.
func EvaluateRoom(e *RoomEstimator, trials int, stream *rng.Stream) RoomResult {
	var res RoomResult
	total := 0
	for n := 0; n <= e.cfg.MaxPeople; n++ {
		for i := 0; i < trials; i++ {
			s := GenerateRoomSample(e.cfg, e.net, n, stream)
			got := e.Count(s.Features)
			err := got - n
			if err < 0 {
				err = -err
			}
			if err == 0 {
				res.Exact++
			}
			if err <= 2 {
				res.Within2++
			}
			res.MeanAbs += float64(err)
			if err > res.MaxError {
				res.MaxError = err
			}
			total++
		}
	}
	if total > 0 {
		res.Exact /= float64(total)
		res.Within2 /= float64(total)
		res.MeanAbs /= float64(total)
	}
	return res
}
