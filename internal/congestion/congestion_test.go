package congestion

import (
	"math"
	"testing"

	"zeiot/internal/geom"
	"zeiot/internal/rng"
	"zeiot/internal/wsn"
)

func TestLevelFor(t *testing.T) {
	cfg := DefaultTrainConfig()
	if cfg.LevelFor(0) != LevelLow || cfg.LevelFor(cfg.MediumAt-1) != LevelLow {
		t.Fatal("low thresholds wrong")
	}
	if cfg.LevelFor(cfg.MediumAt) != LevelMedium || cfg.LevelFor(cfg.HighAt-1) != LevelMedium {
		t.Fatal("medium thresholds wrong")
	}
	if cfg.LevelFor(cfg.HighAt) != LevelHigh || cfg.LevelFor(100) != LevelHigh {
		t.Fatal("high thresholds wrong")
	}
}

func TestGenerateScenario(t *testing.T) {
	cfg := DefaultTrainConfig()
	s, err := Generate(cfg, []int{3, 0, 10, 5, 1, 7}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Users) != 26 {
		t.Fatalf("users = %d", len(s.Users))
	}
	for u, p := range s.Users {
		car := cfg.carOfX(p.X)
		if car != s.Car[u] {
			t.Fatalf("user %d at x=%.1f labelled car %d, geometric car %d", u, p.X, s.Car[u], car)
		}
		if p.Y < 0 || p.Y > cfg.CarWidth {
			t.Fatalf("user %d outside car width: %v", u, p)
		}
	}
	if _, err := Generate(cfg, []int{1, 2}, rng.New(1)); err == nil {
		t.Fatal("wrong car-count length accepted")
	}
}

func TestDoorAttenuationVisibleInMeasurements(t *testing.T) {
	cfg := DefaultTrainConfig()
	cfg.Model.ShadowSigmaDB = 0
	// One user in car 0, nobody else.
	s, err := Generate(cfg, []int{1, 0, 0, 0, 0, 0}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(s, nil)
	// RSSI from own-car reference must exceed far references, and each
	// door adds loss on top of distance.
	own := m.UserRef[0][0]
	for r := 1; r < cfg.Cars; r++ {
		if m.UserRef[0][r] >= own {
			t.Fatalf("ref %d RSSI %v >= own-car %v", r, m.UserRef[0][r], own)
		}
	}
	if m.UserRef[0][5] >= m.UserRef[0][2] {
		t.Fatal("five-door RSSI not below two-door RSSI")
	}
}

func TestCrowdingDepressesPeerRSSI(t *testing.T) {
	cfg := DefaultTrainConfig()
	cfg.Model.ShadowSigmaDB = 0
	stream := rng.New(3)
	sparse, err := Generate(cfg, []int{4, 0, 0, 0, 0, 0}, stream)
	if err != nil {
		t.Fatal(err)
	}
	crowded, err := Generate(cfg, []int{40, 0, 0, 0, 0, 0}, stream)
	if err != nil {
		t.Fatal(err)
	}
	ms := Measure(sparse, nil)
	mc := Measure(crowded, nil)
	meanOf := func(m Measurements) float64 {
		s := 0.0
		for _, c := range m.PeerCount {
			s += float64(c)
		}
		return s / float64(len(m.PeerCount))
	}
	// A crowded car has many more audible peers.
	if meanOf(mc) <= meanOf(ms) {
		t.Fatal("crowding did not raise peer count")
	}
}

func TestPositioningAccuracy(t *testing.T) {
	cfg := DefaultTrainConfig()
	stream := rng.New(4)
	est, err := Calibrate(cfg, 10, stream.Split("cal"))
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for trial := 0; trial < 5; trial++ {
		perCar := make([]int, cfg.Cars)
		for c := range perCar {
			perCar[c] = 3 + stream.Intn(30)
		}
		s, err := Generate(cfg, perCar, stream)
		if err != nil {
			t.Fatal(err)
		}
		m := Measure(s, stream)
		cars, rel := est.Positions(m)
		for u := range cars {
			if cars[u] == s.Car[u] {
				correct++
			}
			if rel[u] < 0 || rel[u] > 1+1e-9 {
				t.Fatalf("reliability out of range: %v", rel[u])
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	// Paper reports 83%; require comfortably above chance (1/6) and a
	// plausible floor for the method.
	if acc < 0.6 {
		t.Fatalf("car positioning accuracy = %.3f", acc)
	}
}

func TestCongestionEstimation(t *testing.T) {
	cfg := DefaultTrainConfig()
	stream := rng.New(5)
	est, err := Calibrate(cfg, 12, stream.Split("cal"))
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for trial := 0; trial < 6; trial++ {
		perCar := make([]int, cfg.Cars)
		for c := range perCar {
			switch (trial + c) % 3 {
			case 0:
				perCar[c] = 3 + stream.Intn(cfg.MediumAt-3)
			case 1:
				perCar[c] = cfg.MediumAt + stream.Intn(cfg.HighAt-cfg.MediumAt)
			default:
				perCar[c] = cfg.HighAt + stream.Intn(20)
			}
		}
		s, err := Generate(cfg, perCar, stream)
		if err != nil {
			t.Fatal(err)
		}
		m := Measure(s, stream)
		cars, rel := est.Positions(m)
		levels := est.CarCongestion(m, cars, rel)
		for c := range levels {
			if levels[c] == cfg.LevelFor(perCar[c]) {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.55 {
		t.Fatalf("car congestion accuracy = %.3f", acc)
	}
}

func TestCalibrateValidation(t *testing.T) {
	if _, err := Calibrate(DefaultTrainConfig(), 1, rng.New(1)); err == nil {
		t.Fatal("too few rides accepted")
	}
}

func TestRoomFeaturesRespondToPeople(t *testing.T) {
	cfg := DefaultRoomConfig()
	cfg.Model.ShadowSigmaDB = 0
	est, err := TrainRoomEstimator(cfg, 2, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	empty := GenerateRoomSample(cfg, est.Network(), 0, rng.New(7))
	full := GenerateRoomSample(cfg, est.Network(), 10, rng.New(8))
	// Mean attenuation and surrounding RSSI must both rise with people.
	if full.Features[0] <= empty.Features[0] {
		t.Fatalf("attenuation did not rise: %v vs %v", full.Features[0], empty.Features[0])
	}
	if full.Features[3] <= empty.Features[3] {
		t.Fatalf("surrounding RSSI did not rise: %v vs %v", full.Features[3], empty.Features[3])
	}
}

func TestRoomCountingWithinTwo(t *testing.T) {
	cfg := DefaultRoomConfig()
	stream := rng.New(9)
	est, err := TrainRoomEstimator(cfg, 40, stream.Split("train"))
	if err != nil {
		t.Fatal(err)
	}
	res := EvaluateRoom(est, 10, stream.Split("eval"))
	// Paper: ~79% exact accuracy with errors up to two people.
	if res.Exact < 0.5 {
		t.Fatalf("exact counting accuracy = %.3f", res.Exact)
	}
	if res.Within2 < 0.9 {
		t.Fatalf("within-2 fraction = %.3f", res.Within2)
	}
	if res.MeanAbs > 1.5 {
		t.Fatalf("mean abs error = %.3f", res.MeanAbs)
	}
}

func TestRoomEstimatorValidation(t *testing.T) {
	if _, err := TrainRoomEstimator(DefaultRoomConfig(), 1, rng.New(1)); err == nil {
		t.Fatal("too few samples accepted")
	}
}

func TestRoomDeterminism(t *testing.T) {
	cfg := DefaultRoomConfig()
	net := wsn.NewGrid(cfg.Rows, cfg.Cols, cfg.Spacing)
	a := GenerateRoomSample(cfg, net, 3, rng.New(11))
	b := GenerateRoomSample(cfg, net, 3, rng.New(11))
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			t.Fatal("same seed produced different room features")
		}
	}
}

func TestLevelString(t *testing.T) {
	if LevelLow.String() != "low" || LevelMedium.String() != "medium" || LevelHigh.String() != "high" {
		t.Fatal("level strings wrong")
	}
	if Level(9).String() == "" {
		t.Fatal("unknown level has empty string")
	}
}

func TestLinkRSSIMonotoneInDistance(t *testing.T) {
	cfg := DefaultTrainConfig()
	cfg.Model.ShadowSigmaDB = 0
	a := geom.Point{X: 1, Y: 1}
	near := linkRSSI(cfg, a, geom.Point{X: 3, Y: 1}, nil, nil)
	far := linkRSSI(cfg, a, geom.Point{X: 15, Y: 1}, nil, nil)
	if far >= near {
		t.Fatal("RSSI not monotone in distance")
	}
	if math.IsNaN(near) || math.IsNaN(far) {
		t.Fatal("NaN RSSI")
	}
}

func TestRoomFeatureModes(t *testing.T) {
	cfg := DefaultRoomConfig()
	net := wsn.NewGrid(cfg.Rows, cfg.Cols, cfg.Spacing)
	fused := GenerateRoomSample(cfg, net, 4, rng.New(31))
	if len(fused.Features) != 5 {
		t.Fatalf("fused features = %d", len(fused.Features))
	}
	cfg.Mode = RoomLinksOnly
	links := GenerateRoomSample(cfg, net, 4, rng.New(31))
	if len(links.Features) != 3 {
		t.Fatalf("links-only features = %d", len(links.Features))
	}
	cfg.Mode = RoomSurroundingOnly
	sur := GenerateRoomSample(cfg, net, 4, rng.New(31))
	if len(sur.Features) != 2 {
		t.Fatalf("surrounding-only features = %d", len(sur.Features))
	}
}

func TestRoomModesBothCount(t *testing.T) {
	// Each measurement kind alone must count well above chance — people
	// block links AND carry devices, the two §IV.B estimators of [66].
	stream := rng.New(32)
	for _, mode := range []RoomFeatureMode{RoomLinksOnly, RoomSurroundingOnly} {
		cfg := DefaultRoomConfig()
		cfg.Mode = mode
		est, err := TrainRoomEstimator(cfg, 40, stream.Split("train"))
		if err != nil {
			t.Fatal(err)
		}
		res := EvaluateRoom(est, 8, stream.Split("eval"))
		if res.Within2 < 0.8 {
			t.Fatalf("mode %d: within-2 = %.3f", mode, res.Within2)
		}
	}
}
