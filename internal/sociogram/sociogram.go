// Package sociogram implements use case (iv) of §III.C: estimating the
// friendship graph of a kindergarten group from RFID tag sightings at
// area-limited Wi-Fi base stations.
//
// Children wear backscatter tags; each play area (play equipment,
// classroom, corridor) has a base station whose signal only covers that
// area and which logs the tag IDs present per time slot. Friends tend to
// play in the same area at the same time, so co-occurrence counts estimate
// friendship strength. The package provides the generative simulator (a
// ground-truth friendship graph drives where children go), the inference
// (co-occurrence → weighted sociogram), isolation detection, and scoring
// against the ground truth.
package sociogram

import (
	"fmt"
	"math"
	"sort"

	"zeiot/internal/rng"
)

// Graph is an undirected weighted graph over n children.
type Graph struct {
	n       int
	weights map[[2]int]float64
}

// NewGraph returns an empty graph over n children.
func NewGraph(n int) *Graph {
	return &Graph{n: n, weights: make(map[[2]int]float64)}
}

// Size returns the number of children.
func (g *Graph) Size() int { return g.n }

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// SetEdge sets the weight of edge (a, b). Self-edges are rejected.
func (g *Graph) SetEdge(a, b int, w float64) {
	if a == b {
		panic("sociogram: self edge")
	}
	if w == 0 {
		delete(g.weights, edgeKey(a, b))
		return
	}
	g.weights[edgeKey(a, b)] = w
}

// AddEdge accumulates w onto edge (a, b).
func (g *Graph) AddEdge(a, b int, w float64) {
	g.weights[edgeKey(a, b)] += w
}

// Edge returns the weight of edge (a, b) (0 when absent).
func (g *Graph) Edge(a, b int) float64 {
	return g.weights[edgeKey(a, b)]
}

// Edges returns the number of non-zero edges.
func (g *Graph) Edges() int { return len(g.weights) }

// Degree returns the weighted degree of child a.
func (g *Graph) Degree(a int) float64 {
	d := 0.0
	for k, w := range g.weights {
		if k[0] == a || k[1] == a {
			d += w
		}
	}
	return d
}

// Friends returns the neighbours of a sorted by descending weight.
func (g *Graph) Friends(a int) []int {
	type fw struct {
		id int
		w  float64
	}
	var out []fw
	for k, w := range g.weights {
		switch a {
		case k[0]:
			out = append(out, fw{k[1], w})
		case k[1]:
			out = append(out, fw{k[0], w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].w != out[j].w {
			return out[i].w > out[j].w
		}
		return out[i].id < out[j].id
	})
	ids := make([]int, len(out))
	for i, f := range out {
		ids[i] = f.id
	}
	return ids
}

// CommunityConfig parameterizes the ground-truth generator.
type CommunityConfig struct {
	// Children is the group size; CliqueSize the typical friend-circle
	// size.
	Children, CliqueSize int
	// IsolatedCount children have no friends at all (the children the
	// sociogram should surface).
	IsolatedCount int
}

// GenerateFriendships builds a ground-truth graph of friend cliques plus a
// few cross-clique friendships, leaving IsolatedCount children with no
// edges. It returns the graph and the isolated children's IDs.
func GenerateFriendships(cfg CommunityConfig, stream *rng.Stream) (*Graph, []int, error) {
	if cfg.Children < 2 || cfg.CliqueSize < 2 {
		return nil, nil, fmt.Errorf("sociogram: invalid community config %+v", cfg)
	}
	if cfg.IsolatedCount >= cfg.Children {
		return nil, nil, fmt.Errorf("sociogram: %d isolated of %d children", cfg.IsolatedCount, cfg.Children)
	}
	g := NewGraph(cfg.Children)
	perm := stream.Perm(cfg.Children)
	isolated := append([]int(nil), perm[:cfg.IsolatedCount]...)
	sort.Ints(isolated)
	social := perm[cfg.IsolatedCount:]
	// Partition social children into cliques.
	for start := 0; start < len(social); start += cfg.CliqueSize {
		end := start + cfg.CliqueSize
		if end > len(social) {
			end = len(social)
		}
		clique := social[start:end]
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				g.SetEdge(clique[i], clique[j], 1)
			}
		}
	}
	// A few weak cross-clique ties.
	for i := 0; i < cfg.Children/5; i++ {
		a := social[stream.Intn(len(social))]
		b := social[stream.Intn(len(social))]
		if a != b && g.Edge(a, b) == 0 {
			g.SetEdge(a, b, 0.5)
		}
	}
	return g, isolated, nil
}

// ObservationConfig parameterizes the play-session simulator.
type ObservationConfig struct {
	// Areas is the number of base-station-covered play areas.
	Areas int
	// Sessions is the number of observed time slots.
	Sessions int
	// FollowProb is the probability a child joins the area its friend
	// circle chose (otherwise it wanders to a random area).
	FollowProb float64
	// DetectionProb is the probability a present tag is actually logged
	// (backscatter reads are lossy).
	DetectionProb float64
}

// DefaultObservationConfig returns a school-day-scale observation run.
func DefaultObservationConfig() ObservationConfig {
	return ObservationConfig{Areas: 5, Sessions: 200, FollowProb: 0.8, DetectionProb: 0.9}
}

// Sighting is one base-station log entry: the set of children seen in an
// area during a session.
type Sighting struct {
	Session, Area int
	Children      []int
}

// Simulate produces base-station logs: per session every friend circle
// picks an area, members follow with FollowProb, isolated children wander
// uniformly, and each present tag is logged with DetectionProb.
func Simulate(truth *Graph, cfg ObservationConfig, stream *rng.Stream) ([]Sighting, error) {
	if cfg.Areas < 2 || cfg.Sessions < 1 {
		return nil, fmt.Errorf("sociogram: invalid observation config %+v", cfg)
	}
	n := truth.Size()
	// Friend circles = connected components over STRONG ties only
	// (weight >= strongTie); the weak cross-clique acquaintances do not
	// pull whole cliques together every session.
	const strongTie = 0.75
	circle := make([]int, n)
	for i := range circle {
		circle[i] = -1
	}
	nextCircle := 0
	var stack []int
	for i := 0; i < n; i++ {
		if circle[i] != -1 || truth.Degree(i) == 0 {
			continue
		}
		stack = append(stack[:0], i)
		circle[i] = nextCircle
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range truth.Friends(u) {
				if circle[v] == -1 && truth.Edge(u, v) >= strongTie {
					circle[v] = nextCircle
					stack = append(stack, v)
				}
			}
		}
		nextCircle++
	}
	var logs []Sighting
	for s := 0; s < cfg.Sessions; s++ {
		choice := make([]int, nextCircle)
		for c := range choice {
			choice[c] = stream.Intn(cfg.Areas)
		}
		where := make([]int, n)
		for i := 0; i < n; i++ {
			if circle[i] >= 0 && stream.Bool(cfg.FollowProb) {
				where[i] = choice[circle[i]]
			} else {
				where[i] = stream.Intn(cfg.Areas)
			}
		}
		for a := 0; a < cfg.Areas; a++ {
			var seen []int
			for i := 0; i < n; i++ {
				if where[i] == a && stream.Bool(cfg.DetectionProb) {
					seen = append(seen, i)
				}
			}
			if len(seen) > 0 {
				logs = append(logs, Sighting{Session: s, Area: a, Children: seen})
			}
		}
	}
	return logs, nil
}

// Infer builds the estimated sociogram from base-station logs: edge weight
// = number of sessions two children were sighted in the same area,
// normalized by sessions observed.
func Infer(n, sessions int, logs []Sighting) *Graph {
	g := NewGraph(n)
	for _, s := range logs {
		for i := 0; i < len(s.Children); i++ {
			for j := i + 1; j < len(s.Children); j++ {
				g.AddEdge(s.Children[i], s.Children[j], 1)
			}
		}
	}
	for k, w := range g.weights {
		g.weights[k] = w / float64(sessions)
	}
	return g
}

// Threshold returns a copy keeping only edges with weight >= minW.
func (g *Graph) Threshold(minW float64) *Graph {
	out := NewGraph(g.n)
	for k, w := range g.weights {
		if w >= minW {
			out.weights[k] = w
		}
	}
	return out
}

// Score compares an inferred friendship graph against the truth, treating
// any truth edge as positive.
type Score struct {
	Precision, Recall, F1 float64
}

// Evaluate scores inferred against truth.
func Evaluate(truth, inferred *Graph) Score {
	tp, fp, fn := 0, 0, 0
	for k := range inferred.weights {
		if truth.Edge(k[0], k[1]) > 0 {
			tp++
		} else {
			fp++
		}
	}
	for k := range truth.weights {
		if inferred.Edge(k[0], k[1]) == 0 {
			fn++
		}
	}
	var s Score
	if tp+fp > 0 {
		s.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		s.Recall = float64(tp) / float64(tp+fn)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

// DetectIsolated returns children whose strongest inferred tie falls below
// frac of the group's median strongest tie — the "some children might be
// isolated" signal the paper wants the sociogram to surface.
func DetectIsolated(g *Graph, frac float64) []int {
	maxW := make([]float64, g.n)
	for k, w := range g.weights {
		maxW[k[0]] = math.Max(maxW[k[0]], w)
		maxW[k[1]] = math.Max(maxW[k[1]], w)
	}
	sorted := append([]float64(nil), maxW...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	var out []int
	for i, w := range maxW {
		if w < frac*median {
			out = append(out, i)
		}
	}
	return out
}
