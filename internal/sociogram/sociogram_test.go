package sociogram

import (
	"sort"
	"testing"

	"zeiot/internal/rng"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.SetEdge(0, 1, 2)
	g.SetEdge(2, 1, 1)
	if g.Edge(1, 0) != 2 || g.Edge(0, 1) != 2 {
		t.Fatal("edge not symmetric")
	}
	if g.Edges() != 2 {
		t.Fatalf("Edges = %d", g.Edges())
	}
	if g.Degree(1) != 3 {
		t.Fatalf("Degree(1) = %v", g.Degree(1))
	}
	friends := g.Friends(1)
	if len(friends) != 2 || friends[0] != 0 || friends[1] != 2 {
		t.Fatalf("Friends(1) = %v", friends)
	}
	g.SetEdge(0, 1, 0)
	if g.Edges() != 1 {
		t.Fatal("zero weight did not remove edge")
	}
	g.AddEdge(3, 0, 0.5)
	g.AddEdge(0, 3, 0.5)
	if g.Edge(3, 0) != 1 {
		t.Fatal("AddEdge did not accumulate")
	}
}

func TestSelfEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self edge accepted")
		}
	}()
	NewGraph(2).SetEdge(1, 1, 1)
}

func TestGenerateFriendships(t *testing.T) {
	cfg := CommunityConfig{Children: 30, CliqueSize: 4, IsolatedCount: 3}
	g, isolated, err := GenerateFriendships(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(isolated) != 3 {
		t.Fatalf("isolated = %v", isolated)
	}
	for _, c := range isolated {
		if g.Degree(c) != 0 {
			t.Fatalf("isolated child %d has degree %v", c, g.Degree(c))
		}
	}
	// Social children all have at least one friend.
	isoSet := map[int]bool{}
	for _, c := range isolated {
		isoSet[c] = true
	}
	for i := 0; i < cfg.Children; i++ {
		if !isoSet[i] && g.Degree(i) == 0 {
			t.Fatalf("social child %d has no friends", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, _, err := GenerateFriendships(CommunityConfig{Children: 1, CliqueSize: 4}, rng.New(1)); err == nil {
		t.Fatal("1 child accepted")
	}
	if _, _, err := GenerateFriendships(CommunityConfig{Children: 5, CliqueSize: 4, IsolatedCount: 5}, rng.New(1)); err == nil {
		t.Fatal("all isolated accepted")
	}
}

func TestSimulateLogsRespectConfig(t *testing.T) {
	cfg := CommunityConfig{Children: 20, CliqueSize: 4, IsolatedCount: 2}
	truth, _, err := GenerateFriendships(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	obs := DefaultObservationConfig()
	obs.Sessions = 50
	logs, err := Simulate(truth, obs, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) == 0 {
		t.Fatal("no sightings")
	}
	for _, s := range logs {
		if s.Area < 0 || s.Area >= obs.Areas || s.Session < 0 || s.Session >= obs.Sessions {
			t.Fatalf("sighting out of range: %+v", s)
		}
		seen := map[int]bool{}
		for _, c := range s.Children {
			if c < 0 || c >= cfg.Children {
				t.Fatalf("unknown child %d", c)
			}
			if seen[c] {
				t.Fatalf("child %d logged twice in one sighting", c)
			}
			seen[c] = true
		}
	}
}

func TestInferRecoversCliques(t *testing.T) {
	cfg := CommunityConfig{Children: 30, CliqueSize: 5, IsolatedCount: 3}
	stream := rng.New(4)
	truth, _, err := GenerateFriendships(cfg, stream.Split("gen"))
	if err != nil {
		t.Fatal(err)
	}
	obs := DefaultObservationConfig()
	logs, err := Simulate(truth, obs, stream.Split("sim"))
	if err != nil {
		t.Fatal(err)
	}
	raw := Infer(cfg.Children, obs.Sessions, logs)
	// With 5 areas, random co-occurrence ≈ 1/5 of sessions; friends
	// co-occur ≈ FollowProb²+. Threshold between the two.
	inferred := raw.Threshold(0.4)
	score := Evaluate(truth, inferred)
	if score.F1 < 0.8 {
		t.Fatalf("sociogram F1 = %.3f (P=%.3f R=%.3f)", score.F1, score.Precision, score.Recall)
	}
}

func TestDetectIsolated(t *testing.T) {
	cfg := CommunityConfig{Children: 25, CliqueSize: 4, IsolatedCount: 2}
	stream := rng.New(5)
	truth, isolated, err := GenerateFriendships(cfg, stream.Split("gen"))
	if err != nil {
		t.Fatal(err)
	}
	obs := DefaultObservationConfig()
	logs, err := Simulate(truth, obs, stream.Split("sim"))
	if err != nil {
		t.Fatal(err)
	}
	inferred := Infer(cfg.Children, obs.Sessions, logs)
	got := DetectIsolated(inferred, 0.6)
	sort.Ints(got)
	// Every truly isolated child must be flagged, with at most two false
	// alarms.
	found := map[int]bool{}
	for _, c := range got {
		found[c] = true
	}
	for _, c := range isolated {
		if !found[c] {
			t.Fatalf("isolated child %d not detected (got %v, want %v)", c, got, isolated)
		}
	}
	if len(got) > len(isolated)+2 {
		t.Fatalf("too many false isolation alarms: %v (truth %v)", got, isolated)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	truth := NewGraph(3)
	inferred := NewGraph(3)
	s := Evaluate(truth, inferred)
	if s.Precision != 0 || s.Recall != 0 || s.F1 != 0 {
		t.Fatalf("empty graphs scored %+v", s)
	}
	truth.SetEdge(0, 1, 1)
	inferred.SetEdge(0, 1, 1)
	s = Evaluate(truth, inferred)
	if s.F1 != 1 {
		t.Fatalf("perfect inference scored %+v", s)
	}
}

func TestSimulateValidation(t *testing.T) {
	truth := NewGraph(3)
	if _, err := Simulate(truth, ObservationConfig{Areas: 1, Sessions: 5}, rng.New(1)); err == nil {
		t.Fatal("1 area accepted")
	}
}

func TestDeterministicPipeline(t *testing.T) {
	run := func() Score {
		cfg := CommunityConfig{Children: 20, CliqueSize: 4, IsolatedCount: 2}
		stream := rng.New(6)
		truth, _, err := GenerateFriendships(cfg, stream.Split("gen"))
		if err != nil {
			t.Fatal(err)
		}
		logs, err := Simulate(truth, DefaultObservationConfig(), stream.Split("sim"))
		if err != nil {
			t.Fatal(err)
		}
		return Evaluate(truth, Infer(cfg.Children, DefaultObservationConfig().Sessions, logs).Threshold(0.4))
	}
	if run() != run() {
		t.Fatal("pipeline not deterministic")
	}
}
