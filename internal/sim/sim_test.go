package sim

import (
	"errors"
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	k := New()
	var order []int
	k.At(30*time.Millisecond, func() { order = append(order, 3) })
	k.At(10*time.Millisecond, func() { order = append(order, 1) })
	k.At(20*time.Millisecond, func() { order = append(order, 2) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTiesBreakByInsertionOrder(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Second, func() { order = append(order, i) })
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	k := New()
	var at time.Duration
	k.At(42*time.Millisecond, func() { at = k.Now() })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != 42*time.Millisecond {
		t.Fatalf("Now inside event = %v", at)
	}
}

func TestAfterIsRelative(t *testing.T) {
	k := New()
	var second time.Duration
	k.At(10*time.Millisecond, func() {
		k.After(5*time.Millisecond, func() { second = k.Now() })
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if second != 15*time.Millisecond {
		t.Fatalf("After fired at %v, want 15ms", second)
	}
}

func TestCancel(t *testing.T) {
	k := New()
	fired := false
	e := k.At(time.Second, func() { fired = true })
	e.Cancel()
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestHorizonStopsExecution(t *testing.T) {
	k := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		k.At(d, func() { fired = append(fired, d) })
	}
	if err := k.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1s and 2s only", fired)
	}
	if k.Now() != 2*time.Second {
		t.Fatalf("clock = %v after horizon run", k.Now())
	}
	// Resuming must execute the remaining event.
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("resume did not run remaining events: %v", fired)
	}
}

func TestStop(t *testing.T) {
	k := New()
	count := 0
	k.At(time.Second, func() { count++; k.Stop() })
	k.At(2*time.Second, func() { count++ })
	err := k.RunAll()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestSchedulingInsideEvents(t *testing.T) {
	k := New()
	hops := 0
	var step func()
	step = func() {
		hops++
		if hops < 100 {
			k.After(time.Millisecond, step)
		}
	}
	k.At(0, step)
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if hops != 100 {
		t.Fatalf("hops = %d", hops)
	}
	if k.Now() != 99*time.Millisecond {
		t.Fatalf("final clock = %v", k.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	k := New()
	k.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(500*time.Millisecond, func() {})
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestPending(t *testing.T) {
	k := New()
	k.At(time.Second, func() {})
	k.At(2*time.Second, func() {})
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d", k.Pending())
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending after run = %d", k.Pending())
	}
}
