// Package sim implements a minimal discrete-event simulation kernel.
//
// The zeiot MAC coexistence simulator and the WSN message layer run on this
// kernel: events are closures scheduled at virtual timestamps, executed in
// time order with a deterministic tiebreak (insertion order), so simulations
// are exactly reproducible for a given seed.
package sim

import (
	"container/heap"
	"errors"
	"time"
)

// ErrStopped is returned by Run when the simulation was halted explicitly
// via Stop before the horizon was reached.
var ErrStopped = errors.New("sim: stopped")

// Event is a scheduled action.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	dead bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*Event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Kernel is a discrete-event scheduler. The zero value is ready to use.
//
// Kernel is not safe for concurrent use; a simulation is a single logical
// thread of control.
type Kernel struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	stopped bool
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel { return &Kernel{} }

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (k *Kernel) At(at time.Duration, fn func()) *Event {
	if at < k.now {
		panic("sim: scheduling event in the past")
	}
	e := &Event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run delay after the current virtual time.
func (k *Kernel) After(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		panic("sim: negative delay")
	}
	return k.At(k.now+delay, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (k *Kernel) Stop() { k.stopped = true }

// Pending returns the number of events waiting in the queue, including
// cancelled events that have not yet been discarded.
func (k *Kernel) Pending() int { return len(k.queue) }

// Run executes events in timestamp order until the queue drains or virtual
// time would exceed horizon. Events scheduled exactly at the horizon still
// run. It returns ErrStopped if Stop was called, otherwise nil.
func (k *Kernel) Run(horizon time.Duration) error {
	k.stopped = false
	for len(k.queue) > 0 {
		if k.stopped {
			return ErrStopped
		}
		next := k.queue[0]
		if next.at > horizon {
			// Leave future events queued; advance the clock to the
			// horizon so repeated Run calls resume consistently.
			k.now = horizon
			return nil
		}
		heap.Pop(&k.queue)
		if next.dead {
			continue
		}
		k.now = next.at
		next.fn()
	}
	if k.stopped {
		return ErrStopped
	}
	return nil
}

// RunAll executes events until the queue drains, with no horizon. Use only
// for simulations that are known to terminate.
func (k *Kernel) RunAll() error {
	const forever = time.Duration(1<<63 - 1)
	return k.Run(forever)
}
