// Package har implements use case (ii) of §III.C — activity recognition of
// athletes — with zero-energy hardware only: the athlete wears a small bank
// of spring accelerometers (internal/sensors) with staggered resonant
// frequencies, each backscattering a 1-bit contact state. The fraction of
// time each resonator chatters during a window is a mechanical, battery-free
// band-power estimate of the movement, and a classical classifier on those
// chatter rates recognizes the activity.
//
// The pipeline is: activity → acceleration waveform → resonator bank →
// chatter-rate feature vector → classifier. Everything before the
// classifier costs zero electrical energy.
package har

import (
	"fmt"
	"math"

	"zeiot/internal/ml"
	"zeiot/internal/rng"
	"zeiot/internal/sensors"
)

// Activity is one recognized movement class.
type Activity int

// Activities.
const (
	ActivityStand Activity = iota
	ActivityWalk
	ActivityRun
	ActivityJump
	ActivitySquat
	numActivities
)

func (a Activity) String() string {
	switch a {
	case ActivityStand:
		return "stand"
	case ActivityWalk:
		return "walk"
	case ActivityRun:
		return "run"
	case ActivityJump:
		return "jump"
	case ActivitySquat:
		return "squat"
	default:
		return fmt.Sprintf("Activity(%d)", int(a))
	}
}

// NumActivities returns the class count.
func NumActivities() int { return int(numActivities) }

// Config parameterizes waveform generation and the sensor bank.
type Config struct {
	// SampleHz is the acceleration sampling/simulation rate.
	SampleHz float64
	// WindowSec is the classification window length.
	WindowSec float64
	// BankHz are the resonant frequencies of the accelerometer bank.
	BankHz []float64
	// NoiseG is the acceleration noise floor (in g units).
	NoiseG float64
}

// DefaultConfig returns a 4-resonator bank covering the human movement
// band.
func DefaultConfig() Config {
	return Config{
		SampleHz:  200,
		WindowSec: 4,
		BankHz:    []float64{1.2, 2.2, 3.5, 6.0},
		NoiseG:    0.05,
	}
}

// waveform returns the vertical acceleration (in g) of one window of the
// activity, with per-subject tempo/intensity variation drawn from stream.
func waveform(cfg Config, a Activity, stream *rng.Stream) []float64 {
	n := int(cfg.SampleHz * cfg.WindowSec)
	out := make([]float64, n)
	tempo := 1 + stream.NormMeanStd(0, 0.08)
	intensity := 1 + stream.NormMeanStd(0, 0.1)
	for i := 0; i < n; i++ {
		t := float64(i) / cfg.SampleHz
		v := 0.0
		switch a {
		case ActivityStand:
			// Postural sway only.
			v = 0.02 * math.Sin(2*math.Pi*0.3*tempo*t)
		case ActivityWalk:
			// ~2 Hz steps with a heel-strike harmonic.
			f := 1.9 * tempo
			v = intensity * (0.35*math.Sin(2*math.Pi*f*t) + 0.12*math.Sin(2*math.Pi*2*f*t))
		case ActivityRun:
			// ~3 Hz strides, much larger impacts.
			f := 2.9 * tempo
			v = intensity * (1.1*math.Sin(2*math.Pi*f*t) + 0.4*math.Sin(2*math.Pi*2*f*t))
		case ActivityJump:
			// Repeated ~0.7 Hz jumps: ballistic burst + landing spike.
			f := 0.7 * tempo
			phase := math.Mod(f*t, 1)
			if phase < 0.15 {
				v = 2.2 * intensity * math.Sin(math.Pi*phase/0.15)
			}
		case ActivitySquat:
			// Slow ~0.5 Hz deep oscillation, no impacts.
			f := 0.5 * tempo
			v = 0.5 * intensity * math.Sin(2*math.Pi*f*t)
		}
		out[i] = v + stream.NormMeanStd(0, cfg.NoiseG)
	}
	return out
}

// Features runs the acceleration window through a fresh resonator bank and
// returns each resonator's chatter rate — the zero-energy feature vector.
func Features(cfg Config, accel []float64) ([]float64, error) {
	out := make([]float64, len(cfg.BankHz))
	tick := 1 / cfg.SampleHz
	for i, f := range cfg.BankHz {
		res, err := sensors.NewSpringAccelerometer(f, 0.08, 0.004, tick)
		if err != nil {
			return nil, fmt.Errorf("har: resonator %v Hz: %w", f, err)
		}
		closed := 0
		for _, a := range accel {
			closed += res.Step(a)
		}
		out[i] = float64(closed) / float64(len(accel))
	}
	return out, nil
}

// ClassFeatures draws one window of activity a and returns its chatter-rate
// feature vector — the per-sample class-conditional path the unified
// modality layer uses.
func ClassFeatures(cfg Config, a Activity, stream *rng.Stream) ([]float64, error) {
	return Features(cfg, waveform(cfg, a, stream))
}

// GenerateDataset produces windowsPerClass labelled feature vectors per
// activity.
func GenerateDataset(cfg Config, windowsPerClass int, stream *rng.Stream) (ml.Dataset, error) {
	var d ml.Dataset
	for a := Activity(0); a < numActivities; a++ {
		for i := 0; i < windowsPerClass; i++ {
			accel := waveform(cfg, a, stream.Split(fmt.Sprintf("w-%d-%d", a, i)))
			feat, err := Features(cfg, accel)
			if err != nil {
				return ml.Dataset{}, err
			}
			d.X = append(d.X, feat)
			d.Y = append(d.Y, int(a))
		}
	}
	return d, nil
}

// Recognizer is a trained activity classifier over chatter-rate features.
type Recognizer struct {
	cfg Config
	std *ml.Standardizer
	clf ml.Classifier
}

// Train builds a recognizer from windowsPerClass training windows per
// activity.
func Train(cfg Config, windowsPerClass int, stream *rng.Stream) (*Recognizer, error) {
	if windowsPerClass < 2 {
		return nil, fmt.Errorf("har: need >= 2 windows per class, got %d", windowsPerClass)
	}
	data, err := GenerateDataset(cfg, windowsPerClass, stream)
	if err != nil {
		return nil, err
	}
	std := ml.FitStandardizer(data)
	clf, err := ml.KNN{K: 5}.Fit(std.Apply(data))
	if err != nil {
		return nil, fmt.Errorf("har: fitting classifier: %w", err)
	}
	return &Recognizer{cfg: cfg, std: std, clf: clf}, nil
}

// Classify recognizes the activity of one acceleration window.
func (r *Recognizer) Classify(accel []float64) (Activity, error) {
	feat, err := Features(r.cfg, accel)
	if err != nil {
		return 0, err
	}
	one := ml.Dataset{X: [][]float64{feat}, Y: []int{0}}
	return Activity(r.clf.Predict(r.std.Apply(one).X[0])), nil
}

// Evaluate scores the recognizer over trials fresh windows per activity and
// returns the confusion matrix.
func (r *Recognizer) Evaluate(trials int, stream *rng.Stream) (*ml.ConfusionMatrix, error) {
	cm := ml.NewConfusionMatrix(NumActivities())
	for a := Activity(0); a < numActivities; a++ {
		for i := 0; i < trials; i++ {
			accel := waveform(r.cfg, a, stream.Split(fmt.Sprintf("e-%d-%d", a, i)))
			got, err := r.Classify(accel)
			if err != nil {
				return nil, err
			}
			cm.Add(int(a), int(got))
		}
	}
	return cm, nil
}
