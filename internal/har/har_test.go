package har

import (
	"testing"

	"zeiot/internal/rng"
)

func TestActivityStrings(t *testing.T) {
	want := map[Activity]string{
		ActivityStand: "stand", ActivityWalk: "walk", ActivityRun: "run",
		ActivityJump: "jump", ActivitySquat: "squat",
	}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
	if NumActivities() != 5 {
		t.Fatalf("NumActivities = %d", NumActivities())
	}
}

func TestFeaturesShapeAndRange(t *testing.T) {
	cfg := DefaultConfig()
	accel := waveform(cfg, ActivityRun, rng.New(1))
	feat, err := Features(cfg, accel)
	if err != nil {
		t.Fatal(err)
	}
	if len(feat) != len(cfg.BankHz) {
		t.Fatalf("features = %d, want %d", len(feat), len(cfg.BankHz))
	}
	for i, f := range feat {
		if f < 0 || f > 1 {
			t.Fatalf("chatter rate %d = %v out of [0,1]", i, f)
		}
	}
}

func TestFeaturesSeparateIntensity(t *testing.T) {
	cfg := DefaultConfig()
	s := rng.New(2)
	sum := func(a Activity) float64 {
		feat, err := Features(cfg, waveform(cfg, a, s.Split("x")))
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, f := range feat {
			total += f
		}
		return total
	}
	stand := sum(ActivityStand)
	run := sum(ActivityRun)
	if run <= stand {
		t.Fatalf("running chatter %v not above standing %v", run, stand)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(DefaultConfig(), 1, rng.New(1)); err == nil {
		t.Fatal("1 window per class accepted")
	}
}

func TestRecognizerAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	stream := rng.New(3)
	r, err := Train(cfg, 12, stream.Split("train"))
	if err != nil {
		t.Fatal(err)
	}
	cm, err := r.Evaluate(8, stream.Split("eval"))
	if err != nil {
		t.Fatal(err)
	}
	if acc := cm.Accuracy(); acc < 0.8 {
		t.Fatalf("activity recognition accuracy = %.3f", acc)
	}
}

func TestRecognizerDistinguishesWalkRun(t *testing.T) {
	cfg := DefaultConfig()
	stream := rng.New(4)
	r, err := Train(cfg, 12, stream.Split("train"))
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		gotWalk, err := r.Classify(waveform(cfg, ActivityWalk, stream.Split("w")))
		if err != nil {
			t.Fatal(err)
		}
		gotRun, err := r.Classify(waveform(cfg, ActivityRun, stream.Split("r")))
		if err != nil {
			t.Fatal(err)
		}
		if gotWalk == ActivityWalk && gotRun == ActivityRun {
			hits++
		}
	}
	if hits < trials*7/10 {
		t.Fatalf("walk/run pair recognized in only %d of %d trials", hits, trials)
	}
}

func TestDatasetBalanced(t *testing.T) {
	cfg := DefaultConfig()
	d, err := GenerateDataset(cfg, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4*NumActivities() {
		t.Fatalf("dataset size = %d", d.Len())
	}
	counts := make([]int, NumActivities())
	for _, y := range d.Y {
		counts[y]++
	}
	for a, c := range counts {
		if c != 4 {
			t.Fatalf("class %d has %d samples", a, c)
		}
	}
}
