// Package geom provides the small amount of 2-D geometry shared by the
// zeiot simulators: points, distances, and segment/circle intersection used
// to model humans as attenuating obstacles on radio links.
package geom

import "math"

// Point is a position in metres.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by a.
func (p Point) Scale(a float64) Point { return Point{a * p.X, a * p.Y} }

// Norm returns the Euclidean norm of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// SegmentPointDist returns the distance from point c to segment ab.
func SegmentPointDist(a, b, c Point) float64 {
	ab := b.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return Dist(a, c)
	}
	t := ((c.X-a.X)*ab.X + (c.Y-a.Y)*ab.Y) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	closest := a.Add(ab.Scale(t))
	return Dist(closest, c)
}

// SegmentIntersectsCircle reports whether segment ab passes within radius r
// of centre c — the test used to decide whether a person standing at c
// shadows the radio link a→b.
func SegmentIntersectsCircle(a, b, c Point, r float64) bool {
	return SegmentPointDist(a, b, c) <= r
}

// orient returns the orientation of the triple (a, b, c): positive for
// counter-clockwise, negative for clockwise, zero for collinear.
func orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X)-1e-12 <= p.X && p.X <= math.Max(a.X, b.X)+1e-12 &&
		math.Min(a.Y, b.Y)-1e-12 <= p.Y && p.Y <= math.Max(a.Y, b.Y)+1e-12
}

// SegmentsIntersect reports whether segments ab and cd intersect
// (including touching endpoints and collinear overlap) — the test used to
// decide whether a wall blocks a radio link.
func SegmentsIntersect(a, b, c, d Point) bool {
	o1 := orient(a, b, c)
	o2 := orient(a, b, d)
	o3 := orient(c, d, a)
	o4 := orient(c, d, b)
	if ((o1 > 0 && o2 < 0) || (o1 < 0 && o2 > 0)) &&
		((o3 > 0 && o4 < 0) || (o3 < 0 && o4 > 0)) {
		return true
	}
	switch {
	case o1 == 0 && onSegment(a, b, c):
		return true
	case o2 == 0 && onSegment(a, b, d):
		return true
	case o3 == 0 && onSegment(c, d, a):
		return true
	case o4 == 0 && onSegment(c, d, b):
		return true
	}
	return false
}

// ClampInt limits v to [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
