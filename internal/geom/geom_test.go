package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	if d := Dist(Point{0, 0}, Point{3, 4}); d != 5 {
		t.Fatalf("Dist = %v", d)
	}
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if n := (Point{3, 4}).Norm(); n != 5 {
		t.Fatalf("Norm = %v", n)
	}
}

func TestSegmentPointDist(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 0}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{5, 3}, 3},  // perpendicular inside
		{Point{-4, 3}, 5}, // beyond a
		{Point{13, 4}, 5}, // beyond b
		{Point{5, 0}, 0},  // on segment
		{Point{0, 0}, 0},  // at endpoint
	}
	for _, tc := range cases {
		if got := SegmentPointDist(a, b, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("SegmentPointDist(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestDegenerateSegment(t *testing.T) {
	a := Point{2, 2}
	if got := SegmentPointDist(a, a, Point{5, 6}); got != 5 {
		t.Fatalf("degenerate segment dist = %v", got)
	}
}

func TestSegmentIntersectsCircle(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 0}
	if !SegmentIntersectsCircle(a, b, Point{5, 0.2}, 0.3) {
		t.Fatal("person on link not detected")
	}
	if SegmentIntersectsCircle(a, b, Point{5, 2}, 0.3) {
		t.Fatal("person far from link detected")
	}
	if SegmentIntersectsCircle(a, b, Point{-2, 0}, 0.3) {
		t.Fatal("person behind endpoint detected")
	}
}

func TestSegmentPointDistSymmetry(t *testing.T) {
	// Property: distance is symmetric under swapping segment endpoints.
	err := quick.Check(func(ax, ay, bx, by, cx, cy float64) bool {
		clip := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 100)
		}
		a := Point{clip(ax), clip(ay)}
		b := Point{clip(bx), clip(by)}
		c := Point{clip(cx), clip(cy)}
		d1 := SegmentPointDist(a, b, c)
		d2 := SegmentPointDist(b, a, c)
		return math.Abs(d1-d2) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp wrong")
	}
}
