package zeiot

import (
	"fmt"

	"zeiot/internal/harvest"
)

// HarvestConfig enables the intermittent-power dimension of the experiments
// (RunConfig.Harvest, zeiotbench -harvest/-harvestprofile). Only E17 reads
// it; the zero value leaves every other experiment's power model untouched,
// so default summaries keep their bytes.
type HarvestConfig struct {
	// PowerScale multiplies E17's mean-harvest-power sweep (25–200 µW by
	// default). 0 or 1 keeps the paper-scale defaults; 4 quadruples every
	// node's ambient power, 0.5 halves it.
	PowerScale float64
	// Profile selects the harvest trace shape: "rf", "solar", "thermal", or
	// "mixed"/"" (the default) which sweeps all three.
	Profile string
}

// powerScale resolves the effective sweep multiplier.
func (c HarvestConfig) powerScale() float64 {
	if c.PowerScale == 0 {
		return 1
	}
	return c.PowerScale
}

// profiles resolves the configured profile name to the trace profiles E17
// sweeps. Validate has already rejected unknown names.
func (c HarvestConfig) profiles() []harvest.Profile {
	switch c.Profile {
	case "", "mixed":
		return []harvest.Profile{harvest.ProfileRF, harvest.ProfileSolar, harvest.ProfileThermal}
	default:
		p, err := harvest.ProfileByName(c.Profile)
		if err != nil {
			panic(err) // unreachable after Validate
		}
		return []harvest.Profile{p}
	}
}

// validHarvestProfile reports whether name is accepted by HarvestConfig.
func validHarvestProfile(name string) bool {
	if name == "" || name == "mixed" {
		return true
	}
	_, err := harvest.ProfileByName(name)
	return err == nil
}

// CheckpointConfig drives E17's kill/resume flow (RunConfig.Checkpoint,
// zeiotbench -checkpoint/-killafter/-resume): the mechanism that proves a
// harvest-powered run killed by power loss resumes bit-identically.
type CheckpointConfig struct {
	// Path is the checkpoint file. Required when KillAfterBatches or Resume
	// is set; ignored otherwise.
	Path string
	// KillAfterBatches, when > 0, simulates a power failure: the run saves a
	// checkpoint to Path after that many training batches (counted across
	// the whole sweep, in this process) and returns ErrKilled.
	KillAfterBatches int
	// Resume restarts from the checkpoint at Path instead of from scratch.
	// The finished result is byte-identical to an uninterrupted run of the
	// same config.
	Resume bool
}

// enabled reports whether any checkpoint behaviour is requested.
func (c CheckpointConfig) enabled() bool { return c.KillAfterBatches > 0 || c.Resume }

// ErrKilled is returned by an experiment run that stopped at the configured
// kill point after writing its checkpoint. Callers treat it as the simulated
// power failure it is: the process "dies" (zeiotbench exits nonzero) and a
// later -resume run picks the work back up.
var ErrKilled = fmt.Errorf("zeiot: run killed at checkpoint (simulated power loss)")
