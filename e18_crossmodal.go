package zeiot

import (
	"context"
	"fmt"
	"math"
	"strings"

	"zeiot/internal/cnn"
	"zeiot/internal/modality"
	"zeiot/internal/rng"
	"zeiot/internal/tensor"
)

// e18SamplesPerModality is the default per-modality dataset size (3/4
// train, 1/4 test); RunConfig.SampleScale moves it.
const e18SamplesPerModality = 240

// e18Epochs is the training budget each matrix cell gets. One CNN family,
// one budget, every modality — the matrix compares contexts, not tunings.
const e18Epochs = 8

// Deterministic inference-cost model for the matrix's latency and energy
// columns. Wall time is nondeterministic, so both derive from the exact MAC
// count of a forward pass: an MSP430-class harvested MCU sustains ~2 MMAC/s
// (e18MACRateHz) at ~0.5 nJ/MAC (e18NanojoulePerMAC), and acquiring one
// input element over the backscatter sensing chain costs ~10 nJ
// (e18NanojoulePerInput) — the same order as the per-scalar radio charges
// of internal/wsn.
const (
	e18MACRateHz         = 2e6
	e18NanojoulePerMAC   = 0.5
	e18NanojoulePerInput = 10.0
)

// e18Net builds the matrix's shared CNN family for one modality: image-like
// shapes (3-D with pool-able spatial dims) get the conv+pool+2-dense family
// every CNN experiment in the repo uses; feature vectors get a 3-layer
// dense net of the e13 quant-ablation scale.
func e18Net(spec modality.Spec, stream *rng.Stream) *cnn.Network {
	shape := spec.Shape
	if len(shape) == 3 && shape[1] >= 4 && shape[2] >= 4 {
		conv := cnn.NewConv2D(shape[0], 6, 3, 3, 1, 1, stream.Split("c1"))
		pool := cnn.NewMaxPool2D(2, 2)
		pooled := pool.OutShape(conv.OutShape(shape))
		flat := pooled[0] * pooled[1] * pooled[2]
		return cnn.NewNetwork(shape,
			conv,
			cnn.NewReLU(),
			pool,
			cnn.NewFlatten(),
			cnn.NewDense(flat, 24, stream.Split("d1")),
			cnn.NewReLU(),
			cnn.NewDense(24, spec.Classes, stream.Split("d2")),
		)
	}
	in := spec.NumElements()
	return cnn.NewNetwork([]int{in},
		cnn.NewDense(in, 32, stream.Split("d1")),
		cnn.NewReLU(),
		cnn.NewDense(32, 24, stream.Split("d2")),
		cnn.NewReLU(),
		cnn.NewDense(24, spec.Classes, stream.Split("d3")),
	)
}

// opsPerInference counts the multiply-accumulates of one forward pass by
// walking the layer graph with shape tracking. Pooling and activations are
// comparisons, not MACs, and are not counted.
func opsPerInference(net *cnn.Network) int {
	shape := net.InShape()
	ops := 0
	for _, layer := range net.Layers() {
		switch l := layer.(type) {
		case *cnn.Conv2D:
			out := l.OutShape(shape)
			ops += out[0] * out[1] * out[2] * l.InC * l.KH * l.KW
		case *cnn.Dense:
			ops += l.In * l.Out
		}
		shape = layer.OutShape(shape)
	}
	return ops
}

// e18Standardize maps train and test to per-feature zero mean / unit
// variance using statistics fitted on train only — the one preprocessing
// step the matrix shares across modalities, since raw feature scales span
// four orders of magnitude (chatter rates ~0.1, beamforming angles ~π,
// distance deltas ~80 cm). Fully deterministic: no rng draws, and the
// returned samples own fresh tensors.
func e18Standardize(spec modality.Spec, train, test []cnn.Sample) (strain, stest []cnn.Sample) {
	n := spec.NumElements()
	mean := make([]float64, n)
	for _, s := range train {
		for i, v := range s.Input.Data() {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(len(train))
	}
	std := make([]float64, n)
	for _, s := range train {
		for i, v := range s.Input.Data() {
			d := v - mean[i]
			std[i] += d * d
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i]/float64(len(train))) + 1e-9
	}
	apply := func(in []cnn.Sample) []cnn.Sample {
		out := make([]cnn.Sample, len(in))
		for j, s := range in {
			data := make([]float64, n)
			for i, v := range s.Input.Data() {
				data[i] = (v - mean[i]) / std[i]
			}
			out[j] = cnn.Sample{Input: tensor.FromSlice(data, spec.Shape...), Label: s.Label}
		}
		return out
	}
	return apply(train), apply(test)
}

// e18ModalityNames resolves the matrix's row set: RunConfig.Modalities when
// given (already validated against the registry), else every registered
// modality in registration order.
func e18ModalityNames(cfg *RunConfig) []string {
	if len(cfg.Modalities) > 0 {
		return cfg.Modalities
	}
	return modality.Names()
}

// RunE18CrossModal trains the same CNN family across every registered
// sensing modality — the benchmark matrix the paper's one-substrate vision
// implies: falls, thermal discomfort, indoor position, movement direction,
// athlete activity, animal intrusion, vitals, workout motion, plus the
// gait+vitals fused pair. Each matrix row reports accuracy and the
// deterministic per-inference cost (MACs, latency and energy on a harvested
// µW budget). Per-modality rng streams are derived by name, so the
// -modalities filter changes which rows appear, never the values of the
// rows that remain.
func RunE18CrossModal(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	names := e18ModalityNames(h.cfg)
	n := h.cfg.scaled(e18SamplesPerModality)

	res := &Result{
		ID:         "e18",
		Title:      "Cross-modal benchmark matrix: one CNN family, every modality",
		PaperClaim: "one distributed zero-energy substrate recognizes many contexts (§III.C) — measured as a matrix here",
		Header:     []string{"modality", "classes", "shape", "accuracy", "kMAC/inf", "latency", "energy/inf"},
		Summary:    map[string]float64{},
		Notes: fmt.Sprintf("%d samples/modality (3/4 train, train-fitted standardization), %d epochs, SGD(0.02, 0.9); cost model: %.1f nJ/MAC + %.0f nJ/input element at %.1f MMAC/s",
			n, e18Epochs, e18NanojoulePerMAC, e18NanojoulePerInput, e18MACRateHz/1e6),
	}

	fused := 0
	for _, name := range names {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		src, err := modality.New(name)
		if err != nil {
			return nil, err
		}
		spec := src.Spec()
		if strings.Contains(name, "+") {
			fused++
		}
		// Split advances its parent, so deriving all rows from one shared
		// root would make each row's stream depend on which rows precede
		// it. A fresh seed-rooted parent per row makes the stream a pure
		// function of (seed, modality name) — the filter-invariance
		// contract above.
		s := rng.New(h.cfg.Seed).Split("mod-" + name)
		samples, err := src.Generate(n, s.Split("data"))
		if err != nil {
			return nil, err
		}
		cut := len(samples) * 3 / 4
		train, test := e18Standardize(spec, samples[:cut], samples[cut:])
		h.mark(StageDataset)

		key := sanitizeKey(name)
		net := e18Net(spec, s.Split("net"))
		net.SetBatchKernel(h.cfg.BatchKernel)
		net.SetRecorder(h.cfg.Recorder, "e18_"+key+"_", test)
		net.FitParallel(train, e18Epochs, 16, h.cfg.workers(), cnn.NewSGD(0.02, 0.9), s.Split("fit"))
		h.mark(StageTrain)
		acc := net.Evaluate(test)

		ops := opsPerInference(net)
		latencyMS := float64(ops) / e18MACRateHz * 1e3
		energyUJ := (float64(ops)*e18NanojoulePerMAC + float64(spec.NumElements())*e18NanojoulePerInput) / 1e3

		res.Rows = append(res.Rows, []string{
			name,
			fi(spec.Classes),
			shapeString(spec.Shape),
			pct(acc),
			f1(float64(ops) / 1e3),
			fmt.Sprintf("%.1f ms", latencyMS),
			fmt.Sprintf("%.1f uJ", energyUJ),
		})
		res.Summary["acc_"+key] = acc
		res.Summary["ops_"+key] = float64(ops)
		res.Summary["latency_ms_"+key] = latencyMS
		res.Summary["energy_uj_"+key] = energyUJ
		if rec := h.cfg.Recorder; rec != nil {
			rec.Gauge("e18_"+key+"_accuracy", acc)
			rec.Gauge("e18_"+key+"_ops_per_inference", float64(ops))
			rec.Gauge("e18_"+key+"_energy_uj", energyUJ)
		}
		h.mark(StageEval)
	}
	res.Summary["modalities"] = float64(len(names))
	res.Summary["fused_pairs"] = float64(fused)
	return h.finish(res), nil
}

// shapeString renders a tensor shape as "10x8x8".
func shapeString(shape []int) string {
	parts := make([]string, len(shape))
	for i, d := range shape {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return strings.Join(parts, "x")
}
