module zeiot

go 1.23
