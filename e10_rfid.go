package zeiot

import (
	"context"
	"fmt"
	"math"

	"zeiot/internal/geom"
	"zeiot/internal/rfid"
	"zeiot/internal/rng"
)

// RunE10RFIDTracking regenerates the §III.A tag-array sensing claims
// (Fig. 2(a), refs [60][61]): movement-direction estimation accuracy from
// backscatter phase and RF-Kinect-style tag tracking error over walking
// paths and an arm-raise gesture.
func RunE10RFIDTracking(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	root := rng.New(h.cfg.Seed)
	readers := []rfid.Reader{
		rfid.UHFReader(geom.Point{X: 0, Y: 0}),
		rfid.UHFReader(geom.Point{X: 6, Y: 0}),
		rfid.UHFReader(geom.Point{X: 3, Y: 5}),
		rfid.UHFReader(geom.Point{X: 0, Y: 5}),
	}

	// Direction estimation over radial walks relative to the observing
	// reader (direction is a per-reader radial notion).
	dirStream := root.Split("direction")
	dirTrials := h.cfg.scaled(150)
	correct := 0
	for trial := 0; trial < dirTrials; trial++ {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		r := readers[trial%len(readers)]
		bearing := dirStream.Float64() * 2 * math.Pi
		unit := geom.Point{X: math.Cos(bearing), Y: math.Sin(bearing)}
		start := 1.0 + dirStream.Float64()*2
		var truth rfid.Direction
		var delta float64
		switch trial % 3 {
		case 0:
			truth, delta = rfid.DirectionApproaching, -0.8
		case 1:
			truth, delta = rfid.DirectionReceding, 0.8
		default:
			truth, delta = rfid.DirectionStationary, 0
		}
		var phases []float64
		const steps = 40
		for i := 0; i <= steps; i++ {
			d := start + delta*float64(i)/steps + dirStream.NormMeanStd(0, 0.01)
			pos := r.Pos.Add(unit.Scale(d))
			phases = append(phases, r.Phase(pos, dirStream))
		}
		if rfid.EstimateDirection(phases, r.Lambda, 0.3) == truth {
			correct++
		}
	}
	dirAcc := float64(correct) / float64(dirTrials)
	h.mark(StageEval)

	// Walking-path tracking error.
	trackStream := root.Split("track")
	meanErr, maxErr, n := 0.0, 0.0, 0
	trackTrials := h.cfg.scaled(5)
	for trial := 0; trial < trackTrials; trial++ {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		truth := geom.Point{X: 1.5 + trackStream.Float64()*2, Y: 1.5 + trackStream.Float64()*2}
		tracker, err := rfid.NewTracker(readers, truth)
		if err != nil {
			return nil, err
		}
		heading := trackStream.Float64() * 2 * math.Pi
		for step := 0; step < 120; step++ {
			if trackStream.Bool(0.05) {
				heading += trackStream.NormMeanStd(0, 0.8)
			}
			next := truth.Add(geom.Point{X: 0.02 * math.Cos(heading), Y: 0.02 * math.Sin(heading)})
			if next.X < 0.5 || next.X > 5.5 || next.Y < 0.5 || next.Y > 4.5 {
				heading += math.Pi / 2
				continue
			}
			truth = next
			phases := make([]float64, len(readers))
			for i, r := range readers {
				phases[i] = r.Phase(truth, trackStream)
			}
			est, err := tracker.Observe(phases)
			if err != nil {
				return nil, err
			}
			e := geom.Dist(est, truth)
			meanErr += e
			maxErr = math.Max(maxErr, e)
			n++
		}
	}
	meanErr /= float64(n)
	h.mark(StageEval)

	// Arm-raise gesture: final limb-angle error.
	skelStream := root.Split("skeleton")
	shoulder := geom.Point{X: 3, Y: 3}
	wrist := geom.Point{X: 3.5, Y: 3}
	sk, err := rfid.NewSkeleton(readers, []string{"shoulder", "wrist"}, []geom.Point{shoulder, wrist})
	if err != nil {
		return nil, err
	}
	armLen := geom.Dist(shoulder, wrist)
	for i := 0; i <= 45; i++ {
		ang := float64(i) * math.Pi / 2 / 45
		wrist = geom.Point{X: shoulder.X + armLen*math.Cos(ang), Y: shoulder.Y + armLen*math.Sin(ang)}
		phases := make([][]float64, 2)
		for j, joint := range []geom.Point{shoulder, wrist} {
			phases[j] = make([]float64, len(readers))
			for k, r := range readers {
				phases[j][k] = r.Phase(joint, skelStream)
			}
		}
		if _, err := sk.Observe(phases); err != nil {
			return nil, err
		}
	}
	angleErr := math.Abs(sk.LimbAngle(0, 1) - math.Pi/2)

	res := &Result{
		ID:         "e10",
		Title:      "RFID phase sensing: direction, tracking, skeleton",
		PaperClaim: "qualitative §III.A claims (RF-Kinect-style tracking, movement direction)",
		Header:     []string{"metric", "measured"},
		Rows: [][]string{
			{"movement direction accuracy", pct(dirAcc)},
			{"tracking mean error", fmt.Sprintf("%.3f m", meanErr)},
			{"tracking max error", fmt.Sprintf("%.3f m", maxErr)},
			{"arm-raise final angle error", fmt.Sprintf("%.3f rad", angleErr)},
		},
		Summary: map[string]float64{
			"direction_acc":  dirAcc,
			"track_mean_err": meanErr,
			"track_max_err":  maxErr,
			"angle_err":      angleErr,
		},
		Notes: "4 UHF readers, λ=0.327 m, 0.1 rad phase noise; tracking from a known start pose",
	}
	h.mark(StageEval)
	return h.finish(res), nil
}
