package zeiot

// Shared int8-quantization evaluation used by the CNN experiments when
// RunConfig.Quantize is on. Everything here runs strictly after an
// experiment's float results are computed and only adds summary keys and
// table rows, so default-config outputs keep their bytes.

import (
	"zeiot/internal/cnn"
)

// quantEval lowers a trained float CNN to int8 fixed point (calibrating the
// activation scales on calib), scores it over test, and publishes
// quantized-vs-float agreement counters under prefix on the run's recorder.
// It returns the quantized accuracy and the fraction of test inputs where
// int8 and float inference pick the same class.
func (h *harness) quantEval(prefix string, net *cnn.Network, calib, test []cnn.Sample) (qacc, agree float64, err error) {
	qn, err := cnn.QuantizeNetwork(net, calib)
	if err != nil {
		return 0, 0, err
	}
	correct, same := 0, 0
	for _, s := range test {
		qc := qn.Classify(s.Input)
		if qc == s.Label {
			correct++
		}
		if qc == net.Predict(s.Input) {
			same++
		}
	}
	n := len(test)
	if n == 0 {
		return 0, 1, nil
	}
	qacc = float64(correct) / float64(n)
	agree = float64(same) / float64(n)
	if rec := h.cfg.Recorder; rec != nil {
		rec.Add(prefix+"quant_agree_total", int64(same))
		rec.Add(prefix+"quant_disagree_total", int64(n-same))
		rec.Gauge(prefix+"quant_accuracy", qacc)
	}
	return qacc, agree, nil
}
