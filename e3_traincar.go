package zeiot

import (
	"context"
	"fmt"

	"zeiot/internal/congestion"
	"zeiot/internal/ml"
	"zeiot/internal/rng"
)

// RunE3TrainCar regenerates the §IV.B train-car results of ref. [65]:
// car-level positioning accuracy (paper: 83%) and three-level congestion
// F-measure (paper: 0.82), from Bluetooth RSSI among phones plus per-car
// reference nodes.
func RunE3TrainCar(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	seed := h.cfg.Seed
	root := rng.New(seed)
	cfg := congestion.DefaultTrainConfig()
	est, err := congestion.Calibrate(cfg, h.cfg.scaled(12), root.Split("calibrate"))
	if err != nil {
		return nil, err
	}
	h.mark(StageTrain)

	trials := h.cfg.scaled(12)
	posCorrect, posTotal := 0, 0
	carCM := ml.NewConfusionMatrix(3)
	stream := root.Split("eval")
	for trial := 0; trial < trials; trial++ {
		perCar := make([]int, cfg.Cars)
		for c := range perCar {
			switch (trial + c) % 3 {
			case 0:
				perCar[c] = 3 + stream.Intn(cfg.MediumAt-3)
			case 1:
				perCar[c] = cfg.MediumAt + stream.Intn(cfg.HighAt-cfg.MediumAt)
			default:
				perCar[c] = cfg.HighAt + stream.Intn(20)
			}
		}
		scenario, err := congestion.Generate(cfg, perCar, stream)
		if err != nil {
			return nil, err
		}
		meas := congestion.Measure(scenario, stream)
		cars, rel := est.Positions(meas)
		for u := range cars {
			if cars[u] == scenario.Car[u] {
				posCorrect++
			}
			posTotal++
		}
		levels := est.CarCongestion(meas, cars, rel)
		for c, lvl := range levels {
			carCM.Add(int(cfg.LevelFor(perCar[c])), int(lvl))
		}
	}
	posAcc := float64(posCorrect) / float64(posTotal)
	h.mark(StageEval)
	res := &Result{
		ID:         "e3",
		Title:      "Train-car positioning and three-level congestion",
		PaperClaim: "83% car-level positioning; congestion F-measure 0.82",
		Header:     []string{"metric", "measured", "paper"},
		Rows: [][]string{
			{"car-level positioning accuracy", pct(posAcc), "83%"},
			{"congestion accuracy", pct(carCM.Accuracy()), "-"},
			{"congestion macro F-measure", f3(carCM.MacroF1()), "0.82"},
			{"F1 low", f3(carCM.F1(0)), "-"},
			{"F1 medium", f3(carCM.F1(1)), "-"},
			{"F1 high", f3(carCM.F1(2)), "-"},
		},
		Summary: map[string]float64{
			"positioning_acc": posAcc,
			"congestion_f1":   carCM.MacroF1(),
			"congestion_acc":  carCM.Accuracy(),
		},
		Notes: fmt.Sprintf("%d evaluation rides on a %d-car train, %d positioned users", trials, cfg.Cars, posTotal),
	}
	return h.finish(res), nil
}
