package zeiot

import (
	"context"
	"fmt"

	"zeiot/internal/rng"
	"zeiot/internal/sociogram"
)

// RunE9Sociogram implements §III.C use case (iv): building the sociogram of
// a kindergarten group from tag sightings at area-limited base stations,
// which the paper sketches qualitatively. We score the inferred friendship
// graph against ground truth as observation time grows and check that
// isolated children are surfaced.
func RunE9Sociogram(ctx context.Context, rc *RunConfig) (*Result, error) {
	h, err := beginRun(ctx, rc)
	if err != nil {
		return nil, err
	}
	root := rng.New(h.cfg.Seed)
	community := sociogram.CommunityConfig{Children: 30, CliqueSize: 5, IsolatedCount: 3}
	truth, isolated, err := sociogram.GenerateFriendships(community, root.Split("friends"))
	if err != nil {
		return nil, err
	}
	h.mark(StageDataset)
	res := &Result{
		ID:         "e9",
		Title:      "Kindergarten sociogram from area-limited tag sightings",
		PaperClaim: "qualitative use case (iv): estimate friendships, find isolated children",
		Header:     []string{"sessions", "precision", "recall", "F1", "isolated found"},
		Summary:    map[string]float64{},
	}
	for _, sessions := range []int{25, 50, 100, 200} {
		if err := h.ctx.Err(); err != nil {
			return nil, err
		}
		obs := sociogram.DefaultObservationConfig()
		obs.Sessions = sessions
		logs, err := sociogram.Simulate(truth, obs, root.Split(fmt.Sprintf("sim-%d", sessions)))
		if err != nil {
			return nil, err
		}
		h.mark(StageDataset)
		inferred := sociogram.Infer(community.Children, sessions, logs)
		score := sociogram.Evaluate(truth, inferred.Threshold(0.4))
		found := sociogram.DetectIsolated(inferred, 0.6)
		hits := 0
		isoSet := make(map[int]bool, len(isolated))
		for _, c := range isolated {
			isoSet[c] = true
		}
		for _, c := range found {
			if isoSet[c] {
				hits++
			}
		}
		res.Rows = append(res.Rows, []string{
			fi(sessions), f3(score.Precision), f3(score.Recall), f3(score.F1),
			fmt.Sprintf("%d/%d (+%d false)", hits, len(isolated), len(found)-hits),
		})
		res.Summary[fmt.Sprintf("f1_%d", sessions)] = score.F1
		res.Summary[fmt.Sprintf("isolated_hits_%d", sessions)] = float64(hits)
		h.mark(StageEval)
	}
	res.Summary["isolated_total"] = float64(len(isolated))
	res.Notes = fmt.Sprintf("%d children in cliques of %d, %d truly isolated, 5 play areas, lossy tag reads (90%%)",
		community.Children, community.CliqueSize, community.IsolatedCount)
	return h.finish(res), nil
}
